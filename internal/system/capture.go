package system

import (
	"encoding/json"
	"io"
	"sync"

	"tako/internal/stats"
	"tako/internal/trace"
)

// This file is the observability capture point: the CLI tools arm a
// process-wide capture (StartCapture) before running experiments, every
// System built afterwards attaches a tracer streaming into the shared
// exporter, and each run labels itself (LabelRun, called by the study
// drivers once the study/variant is known) to record its metrics
// snapshot. StopCapture closes the exporter and hands back the run
// records for -metrics / -bench reports.
//
// When no capture is armed — every test and library use — all of this is
// a single mutex-guarded nil check per System, and runs record nothing.

// CaptureConfig configures a capture session.
type CaptureConfig struct {
	// Sink receives every traced event; nil captures metrics only.
	Sink trace.MultiSink
	// TraceKinds filters traced event kinds ("cb.*", "dram.*"; empty =
	// all). TraceMinSpan drops spans shorter than that many cycles.
	TraceKinds   []string
	TraceMinSpan uint64
	// TraceCapacity sizes each run's in-memory ring (default 4096).
	TraceCapacity int
}

// RunRecord is one simulated system's captured run.
type RunRecord struct {
	Label        string         `json:"label"`
	Cycles       uint64         `json:"cycles"`
	Ops          uint64         `json:"ops"` // core + engine instrs + DRAM accesses
	KernelEvents uint64         `json:"kernel_events"`
	Metrics      stats.Snapshot `json:"metrics"`
}

type capture struct {
	cfg     CaptureConfig
	runs    []RunRecord
	nextPid int
}

var (
	captureMu sync.Mutex
	active    *capture
)

// StartCapture arms observability capture for all Systems built until
// StopCapture. Panics if a capture is already active (captures don't
// nest; the CLI tools arm exactly one).
func StartCapture(cfg CaptureConfig) {
	captureMu.Lock()
	defer captureMu.Unlock()
	if active != nil {
		panic("system: capture already active")
	}
	active = &capture{cfg: cfg}
}

// StopCapture disarms the capture, closes the trace sink, and returns
// every recorded run in execution order.
func StopCapture() ([]RunRecord, error) {
	captureMu.Lock()
	defer captureMu.Unlock()
	if active == nil {
		return nil, nil
	}
	runs := active.runs
	var err error
	if active.cfg.Sink != nil {
		err = active.cfg.Sink.Close()
	}
	active = nil
	return runs, err
}

// attachCapture wires a freshly built System into the active capture (if
// any): a tracer streaming into the shared sink, and a pid for LabelRun.
func (s *System) attachCapture() {
	captureMu.Lock()
	defer captureMu.Unlock()
	if active == nil {
		return
	}
	s.capPid = active.nextPid
	active.nextPid++
	s.captured = true
	if active.cfg.Sink != nil {
		capacity := active.cfg.TraceCapacity
		if capacity == 0 {
			capacity = 4096
		}
		tr := trace.New(capacity)
		tr.Filter(active.cfg.TraceKinds...)
		tr.SetMinSpan(active.cfg.TraceMinSpan)
		tr.AttachSink(active.cfg.Sink.Process(s.capPid))
		s.H.AttachTracer(tr)
	}
}

// LabelRun records a completed run under the given label ("study/variant")
// — its cycle count, architectural op count, and a deterministic metrics
// snapshot — and names the run's track group in the trace output. No-op
// unless a capture armed before the System was built is still active.
func LabelRun(s *System, label string, ops uint64) {
	if !s.captured {
		return
	}
	captureMu.Lock()
	defer captureMu.Unlock()
	if active == nil {
		return
	}
	if active.cfg.Sink != nil {
		active.cfg.Sink.SetProcessName(s.capPid, label)
	}
	active.runs = append(active.runs, RunRecord{
		Label:        label,
		Cycles:       s.K.Now(),
		Ops:          ops,
		KernelEvents: s.K.Events(),
		Metrics:      s.H.Metrics.Snapshot(),
	})
}

// MetricsReport is the JSON document written by takosim -metrics and
// takoreport -bench: every captured run with its metrics snapshot.
type MetricsReport struct {
	Runs []RunRecord `json:"runs"`
}

// WriteMetricsReport serializes the runs as indented, deterministic JSON.
func WriteMetricsReport(w io.Writer, runs []RunRecord) error {
	if runs == nil {
		runs = []RunRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(MetricsReport{Runs: runs})
}
