// Package tlb models translation lookaside buffers. The simulator's
// virtual and physical addresses coincide, so TLBs exist for timing and
// capacity effects: a bounded number of page entries with LRU
// replacement, a page-walk penalty on misses, and shootdown flushes when
// Morph registrations change (täkō §6).
//
// The engine's reverse TLB (rTLB) — which recovers the virtual address of
// a cache tag when a callback is scheduled — is the same structure; its
// small reach suffices because it only needs to cover data currently in
// the cache (§6), which the rTLB sensitivity sweep (§9) demonstrates.
package tlb

import (
	"fmt"

	"tako/internal/mem"
	"tako/internal/sim"
)

// Config describes one TLB.
type Config struct {
	Name        string
	Entries     int
	PageBits    uint      // log2 of page size: 12 for 4 KB, 21 for 2 MB
	HitLatency  sim.Cycle // lookup cost
	WalkLatency sim.Cycle // miss (page walk / tag probe) cost
	// Ways sets the associativity of the entry array. 0 (the default)
	// means fully associative — one set holding every entry with exact
	// LRU, the paper's model. Set-associative configurations (Ways <
	// Entries) restrict each page to one set of Ways entries with
	// per-set LRU; Entries must then be divisible by Ways with a
	// power-of-two set count.
	Ways int
}

// DefaultRTLBConfig returns the paper's engine rTLB: 256 entries, 2 MB
// pages (§9).
func DefaultRTLBConfig() Config {
	return Config{Name: "rtlb", Entries: 256, PageBits: 21, HitLatency: 1, WalkLatency: 30}
}

// entry is one translation: the page base and its last-use tick.
// use == 0 marks the slot empty (the tick counter starts at 1).
type entry struct {
	page mem.Addr
	use  uint64
}

// TLB is a bounded page-translation cache with LRU replacement, stored
// as a flat set-associative array (one contiguous entry slab, sets of
// `ways` consecutive slots). Ticks strictly increase, so each entry's
// last-use is unique and the LRU victim is deterministic.
type TLB struct {
	cfg     Config
	entries []entry
	mru     []int32 // per-set slot hint: 2 MB pages make same-page runs long
	ways    int
	numSets int
	tick    uint64
	live    int

	Hits, Misses uint64
	Shootdowns   uint64
}

// New builds a TLB.
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 {
		panic("tlb: need at least one entry")
	}
	if cfg.PageBits < mem.LineShift {
		panic("tlb: page smaller than a line")
	}
	ways := cfg.Ways
	if ways <= 0 || ways >= cfg.Entries {
		ways = cfg.Entries // fully associative
	}
	if cfg.Entries%ways != 0 {
		panic(fmt.Sprintf("tlb %s: %d entries not divisible by %d ways", cfg.Name, cfg.Entries, ways))
	}
	numSets := cfg.Entries / ways
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("tlb %s: %d sets is not a power of two", cfg.Name, numSets))
	}
	return &TLB{
		cfg:     cfg,
		entries: make([]entry, cfg.Entries),
		mru:     make([]int32, numSets),
		ways:    ways,
		numSets: numSets,
	}
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

func (t *TLB) pageOf(a mem.Addr) mem.Addr {
	return a &^ (mem.Addr(1)<<t.cfg.PageBits - 1)
}

// setBase returns the slab offset of the set holding page.
func (t *TLB) setBase(page mem.Addr) int {
	return int(uint64(page)>>t.cfg.PageBits&uint64(t.numSets-1)) * t.ways
}

// Lookup translates a, returning the latency charged and whether it hit.
// Misses install the entry, evicting the set's LRU entry when full.
func (t *TLB) Lookup(a mem.Addr) (latency sim.Cycle, hit bool) {
	page := t.pageOf(a)
	t.tick++
	base := t.setBase(page)
	set := t.entries[base : base+t.ways]
	// MRU fast path: consecutive accesses overwhelmingly share a (huge)
	// page, so the previous hit's slot usually answers in one compare.
	if m := t.mru[base/t.ways]; set[m].use != 0 && set[m].page == page {
		set[m].use = t.tick
		t.Hits++
		return t.cfg.HitLatency, true
	}
	victim, empty := 0, -1
	for i := range set {
		if set[i].use == 0 {
			if empty < 0 {
				empty = i
			}
			continue
		}
		if set[i].page == page {
			set[i].use = t.tick
			t.mru[base/t.ways] = int32(i)
			t.Hits++
			return t.cfg.HitLatency, true
		}
		if set[victim].use == 0 || set[i].use < set[victim].use {
			victim = i
		}
	}
	t.Misses++
	if empty >= 0 {
		victim = empty
		t.live++
	}
	set[victim] = entry{page: page, use: t.tick}
	t.mru[base/t.ways] = int32(victim)
	return t.cfg.HitLatency + t.cfg.WalkLatency, false
}

// Warm installs the translation covering a without touching the
// hit/miss statistics: warm-state pre-seeding for analytical
// fast-forward. Warming never evicts — it returns false when the set is
// full — and refreshes recency when the page is already resident, so
// callers warm in least-recent-first order.
func (t *TLB) Warm(a mem.Addr) bool {
	page := t.pageOf(a)
	base := t.setBase(page)
	set := t.entries[base : base+t.ways]
	empty := -1
	for i := range set {
		if set[i].use == 0 {
			if empty < 0 {
				empty = i
			}
			continue
		}
		if set[i].page == page {
			t.tick++
			set[i].use = t.tick
			t.mru[base/t.ways] = int32(i)
			return true
		}
	}
	if empty < 0 {
		return false
	}
	t.tick++
	set[empty] = entry{page: page, use: t.tick}
	t.mru[base/t.ways] = int32(empty)
	t.live++
	return true
}

// FlushRegion removes entries overlapping r (a shootdown, issued when a
// Morph is registered or unregistered on the range).
func (t *TLB) FlushRegion(r mem.Region) {
	t.Shootdowns++
	lo := t.pageOf(r.Base)
	for i := range t.entries {
		if e := &t.entries[i]; e.use != 0 && e.page >= lo && e.page < r.End() {
			*e = entry{}
			t.live--
		}
	}
}

// Entries returns the number of live entries.
func (t *TLB) Entries() int { return t.live }

// HitRate returns hits/(hits+misses), or 1 with no traffic.
func (t *TLB) HitRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 1
	}
	return float64(t.Hits) / float64(total)
}
