// Side-channel example (paper §8.4): a prime+probe attacker on one core
// monitors shared-cache sets to learn which AES-table lines a victim
// touches. Without täkō the attack silently succeeds; with an
// onEviction Morph on the table, the victim is interrupted during the
// prime phase — before any secret leaks — and defends itself.
//
// Run with: go run ./examples/sidechannel
package main

import (
	"fmt"
	"os"
	"strings"

	"tako/internal/morphs"
)

func main() {
	prm := morphs.DefaultSideChannelParams()
	fmt.Printf("prime+probe on a %d-line AES table (%d secret hot lines), %d rounds\n\n",
		prm.TableLines, prm.HotLines, prm.Rounds)

	for _, v := range morphs.AllSideChannelVariants {
		r, err := morphs.RunSideChannel(v, prm)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sidechannel:", err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n", v)
		fmt.Printf("attacker identified %d/%d hot lines (%d false positives)\n",
			r.TruePositives, prm.HotLines, r.FalsePositives)
		if r.Detected {
			fmt.Printf("victim DETECTED the attack at cycle %d (%d eviction interrupts) and defended\n",
				r.DetectionCycle, int(r.Extra["interrupts"]))
		} else {
			fmt.Println("victim never noticed anything")
		}
		fmt.Println("attacker's eviction trace (slow probes per table line):")
		fmt.Println(renderTrace(r.EvictionTrace))
		fmt.Println()
	}
}

// renderTrace draws the Fig 21-style eviction trace as a sparkline.
func renderTrace(trace []int) string {
	glyphs := []rune(" .:-=+*#")
	max := 1
	for _, n := range trace {
		if n > max {
			max = n
		}
	}
	var b strings.Builder
	b.WriteString("  [")
	for _, n := range trace {
		idx := n * (len(glyphs) - 1) / max
		b.WriteRune(glyphs[idx])
	}
	b.WriteString("]")
	return b.String()
}
