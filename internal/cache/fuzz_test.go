package cache

import (
	"testing"

	"tako/internal/mem"
)

// FuzzCacheOps drives a small trrîp cache with arbitrary
// insert/touch/extract sequences against a flat residency model: every
// line that goes in must come out (via eviction or extraction) with the
// same data, lookups must return what was inserted, and the structural
// and §5.2 morph invariants must hold after every step.
func FuzzCacheOps(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 2, 3, 1, 1, 0, 2, 1, 0})
	f.Add([]byte{0, 5, 6, 0, 5, 2, 3, 5, 0, 0, 9, 1})
	f.Fuzz(func(t *testing.T, script []byte) {
		c := New(Config{Name: "fuzz", SizeBytes: 4 * 8 * mem.LineSize, Ways: 8, Policy: NewTRRIP()})
		model := make(map[mem.Addr]uint64)
		verify := func(step int) {
			if err := c.CheckReplacementState(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if err := c.CheckMorphInvariant(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if c.ValidLines() != len(model) {
				t.Fatalf("step %d: cache holds %d lines, model %d", step, c.ValidLines(), len(model))
			}
		}
		var stamp uint64
		for i := 0; i+3 <= len(script); i += 3 {
			op, idx, flags := script[i], script[i+1], script[i+2]
			a := mem.Addr(0x4000 + uint64(idx%64)*mem.LineSize)
			switch op % 4 {
			case 0: // insert
				if c.Lookup(a) != nil {
					break // FillAt rejects duplicate tags by design
				}
				opts := FillOpts{
					Dirty:      flags&1 != 0,
					Morph:      flags&2 != 0,
					Phantom:    flags&2 != 0 && flags&4 != 0,
					EngineFill: flags&8 != 0,
				}
				way, ok := c.ChooseVictimForInsert(a, opts, VictimConstraint{CallbackFree: flags&16 != 0})
				if !ok {
					break
				}
				stamp++
				var line mem.Line
				line.SetWord(0, stamp)
				evicted := c.FillAt(a, way, &line, opts)
				if evicted.Valid {
					want, ok := model[evicted.Tag]
					if !ok {
						t.Fatalf("step %d: evicted untracked line %v", i, evicted.Tag)
					}
					if evicted.Data.Word(0) != want {
						t.Fatalf("step %d: evicted %v data %d, want %d", i, evicted.Tag, evicted.Data.Word(0), want)
					}
					delete(model, evicted.Tag)
				}
				model[a] = stamp
			case 1: // touch (hit promotion)
				if c.Lookup(a) != nil {
					c.Touch(a)
				}
			case 2: // extract
				if ls, ok := c.ExtractLine(a); ok {
					want, tracked := model[a]
					if !tracked {
						t.Fatalf("step %d: extracted untracked line %v", i, a)
					}
					if ls.Data.Word(0) != want {
						t.Fatalf("step %d: extracted %v data %d, want %d", i, a, ls.Data.Word(0), want)
					}
					delete(model, a)
				} else if _, tracked := model[a]; tracked {
					t.Fatalf("step %d: model holds %v but cache lost it", i, a)
				}
			case 3: // lookup
				ls := c.Lookup(a)
				want, tracked := model[a]
				if tracked != (ls != nil) {
					t.Fatalf("step %d: residency of %v: cache=%v model=%v", i, a, ls != nil, tracked)
				}
				if ls != nil && ls.Data.Word(0) != want {
					t.Fatalf("step %d: lookup %v data %d, want %d", i, a, ls.Data.Word(0), want)
				}
			}
			verify(i)
		}
	})
}
