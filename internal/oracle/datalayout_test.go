package oracle

import (
	"testing"
)

// These tests target the data-layout substrate under the hierarchy: the
// open-addressed directory and lock tables (tombstone-free backshift
// deletion, growth under load), the page-granular memory arena, and the
// flat cache/TLB arrays. The oracle's shadow memory and the periodic
// invariant checker cross-check every structure against reference
// semantics while the trace churns them.

// TestDataLayoutTableChurn runs a scripted trace engineered to cycle
// directory and lock-table entries: sweep every line of a region (each
// fill inserts a directory entry), then flush it (each eviction deletes
// one, exercising backshift deletion), repeatedly and from multiple
// tiles. A frequent invariant-check period makes the checker walk the
// tables between rounds, so a corrupted probe chain or a lost entry
// surfaces immediately rather than only at the final sweep.
func TestDataLayoutTableChurn(t *testing.T) {
	var script []byte
	emit := func(kind opKind, region, line, word int, val byte) {
		script = append(script,
			byte(kind), byte(region), byte(line), byte(line>>8), byte(word), val)
	}
	const rounds = 6
	for r := 0; r < rounds; r++ {
		// Fill phase: touch every line of both real regions so the
		// directory and MSHR tables grow well past their initial size.
		for l := 0; l < int(regionLines[rRealA]); l++ {
			emit(opStore, rRealA, l, l%8, byte(r+1))
		}
		for l := 0; l < int(regionLines[rRealB]); l++ {
			emit(opStoreLine, rRealB, l, 0, byte(r+3))
		}
		// Contention phase: hammer a hot set so lock-table entries are
		// created and conditionally released under real contention.
		for i := 0; i < 32; i++ {
			emit(opRemoteAdd, rRealA, i%4, 0, byte(i+1))
			emit(opAtomicAdd, rRealB, i%4, 2, byte(i+1))
		}
		emit(opDrain, rRealA, 0, 0, 1)
		// Drain phase: mass-delete directory entries via flushes. The
		// open-addressed tables shrink back through backshift deletion;
		// a stale tombstone-style artifact would corrupt later probes.
		emit(opFlush, rRealA, 0, 0, 1)
		emit(opFlush, rRealB, 0, 0, 1)
	}
	cfg := TraceConfig{
		Tiles:      4,
		CacheScale: 32,
		CheckEvery: 64,
		Script:     script,
	}
	res, err := RunTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Oracle.Err(); err != nil {
		t.Fatal(err)
	}
	t.Logf("churn: %d ops in %d cycles, %s", res.Ops, res.Cycles, res.Oracle.Fingerprint())
}

// TestDataLayoutArenaSpread uses randomized traces with a wide line
// distribution (half the picks span a 64K-line range, far beyond any
// region — legalized by modulo into region-relative offsets) across
// extra seeds beyond the main oracle test, under the heaviest cache
// pressure the harness supports. This keeps the memory arena allocating
// and revisiting pages in a sparse pattern while evictions stream
// through the flat cache arrays.
func TestDataLayoutArenaSpread(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy randomized trace")
	}
	for _, seed := range []int64{11, 13} {
		cfg := DefaultTraceConfig(seed)
		cfg.CacheScale = 64 // smallest caches: maximal fill/evict churn
		cfg.OpsPerTile = 1500
		cfg.CheckEvery = 128
		res, err := RunTrace(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Oracle.Err(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		t.Logf("seed %d: %d ops in %d cycles", seed, res.Ops, res.Cycles)
	}
}
