package hier

import (
	"math/rand"
	"testing"

	"tako/internal/cache"
	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/sim"
)

// ffWorkload drives a deterministic multi-tile mix of every fast-path
// operation: per-tile private store/load round-trips (value-checked
// inline), commutative atomic adds to a shared region (schedule-
// independent final state), line loads/stores, and exchanges on
// tile-private words. Returns the expected shared-region totals.
func ffWorkload(t *testing.T, k *sim.Kernel, h *Hierarchy, tiles, ops int) []uint64 {
	t.Helper()
	const (
		privBase   = mem.Addr(0x10000)
		privStride = mem.Addr(0x8000)
		sharedBase = mem.Addr(0x1000)
		sharedLen  = 64 // words
	)
	expected := make([]uint64, sharedLen)
	for tile := 0; tile < tiles; tile++ {
		rng := rand.New(rand.NewSource(int64(100 + tile)))
		for i := 0; i < ops; i++ {
			if rng.Intn(4) == 0 {
				w := rng.Intn(sharedLen)
				expected[w] += uint64(1 + rng.Intn(16))
			} else {
				rng.Intn(64)
				rng.Intn(5)
			}
		}
	}
	for tile := 0; tile < tiles; tile++ {
		tile := tile
		rng := rand.New(rand.NewSource(int64(100 + tile)))
		base := privBase + mem.Addr(tile)*privStride
		k.Go("ffwork", func(p *sim.Proc) {
			last := map[mem.Addr]uint64{}
			for i := 0; i < ops; i++ {
				if rng.Intn(4) == 0 {
					w := rng.Intn(sharedLen)
					delta := uint64(1 + rng.Intn(16))
					h.AtomicAddLocal(p, tile, sharedBase+mem.Addr(w)*8, delta)
					continue
				}
				a := base + mem.Addr(rng.Intn(64))*8
				switch rng.Intn(5) {
				case 0:
					v := uint64(i)<<8 | uint64(tile)
					h.Store(p, tile, a, v)
					last[a] = v
				case 1:
					if want, ok := last[a]; ok {
						if got := h.Load(p, tile, a); got != want {
							t.Errorf("tile %d: load %v = %d, want %d", tile, a, got, want)
						}
					} else {
						h.Load(p, tile, a)
					}
				case 2:
					line := h.LoadLine(p, tile, a)
					h.StoreLine(p, tile, a, &line)
				case 3:
					var line mem.Line
					for w := uint64(0); w < mem.WordsPerLine; w++ {
						line.SetU64(w*8, uint64(i))
					}
					h.StoreLineNT(p, tile, a.Line(), &line)
					for w := uint64(0); w < mem.WordsPerLine; w++ {
						last[a.Line()+mem.Addr(w*8)] = uint64(i)
					}
				case 4:
					h.AtomicExchange(p, tile, a, uint64(i))
					last[a] = uint64(i)
				}
			}
		})
	}
	return expected
}

// TestFFFunctionalExactness runs the workload fully simulated and
// fast-forwarded and checks both reach the same architectural memory
// state: per-tile round-trips are value-checked inline, and the shared
// region (updated only by commutative atomics, so schedule-independent)
// must equal the closed-form totals in both runs.
func TestFFFunctionalExactness(t *testing.T) {
	const tiles, ops = 4, 1500
	run := func(ffBudget uint64) (*Hierarchy, []uint64) {
		k := sim.NewKernel()
		h := New(k, DefaultConfig(tiles), energy.NewMeter(), nil, nil)
		if ffBudget > 0 {
			h.EnableFastForward(ffBudget, false, nil)
		}
		expected := ffWorkload(t, k, h, tiles, ops)
		k.Run()
		h.FinishFF()
		return h, expected
	}

	hSim, expected := run(0)
	hFF, _ := run(1 << 62) // entire run inside the warmup window
	hMix, _ := run(2000)   // switches over mid-run

	for _, tc := range []struct {
		name string
		h    *Hierarchy
	}{{"sim", hSim}, {"ff", hFF}, {"mixed", hMix}} {
		for w, want := range expected {
			a := mem.Addr(0x1000) + mem.Addr(w)*8
			if got := tc.h.DebugReadWord(a); got != want {
				t.Fatalf("%s: shared word %d = %d, want %d", tc.name, w, got, want)
			}
		}
	}
	if hFF.FFAccesses() == 0 || hMix.FFAccesses() == 0 {
		t.Fatalf("fast-forward never engaged: ff=%d mixed=%d", hFF.FFAccesses(), hMix.FFAccesses())
	}
	if est, ok := hFF.FFEstimate(); !ok || est.Accesses != hFF.FFAccesses() {
		t.Fatalf("estimate accesses %v (ok=%v) != %d", est.Accesses, ok, hFF.FFAccesses())
	}
}

// TestFFSwitchoverSeedsWarmState checks the switchover contract: the
// event kernel takes over mid-run against caches, TLBs, and a directory
// that satisfy every hierarchy invariant, with warm state actually
// installed (seeded lines, post-switch L1 hits, directory entries for
// every seeded private copy).
func TestFFSwitchoverSeedsWarmState(t *testing.T) {
	const tiles, ops = 4, 2000
	k := sim.NewKernel()
	h := New(k, DefaultConfig(tiles), energy.NewMeter(), nil, nil)
	h.EnableFastForward(3000, false, nil)
	ffWorkload(t, k, h, tiles, ops)
	k.Run()

	f := h.ff
	if f == nil || !f.switched {
		t.Fatalf("switchover did not happen: %s", h.FFString())
	}
	if f.seeded.L1 == 0 || f.seeded.L2 == 0 || f.seeded.L3 == 0 || f.seeded.TLB == 0 {
		t.Fatalf("warm state not seeded: %+v", f.seeded)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("invariants after seeding: %v", err)
	}
	if hits := h.Metrics.Get("l1.hits"); hits == 0 {
		t.Fatalf("no post-switch L1 hits despite seeded warm state")
	}
	// Every private copy must be directory-tracked (the classic
	// hasExclusive trap: a missing entry reads as exclusive, so an
	// untracked seeded copy could go stale under a remote write).
	for ti, tile := range h.tiles {
		for _, c := range []*cache.Cache{tile.l1, tile.l2} {
			c.Walk(func(ls *cache.LineState) {
				sharers, _ := h.DirSharers(ls.Tag)
				if sharers&(1<<uint(ti)) == 0 {
					t.Errorf("tile %d: private line %v has no directory sharer bit", ti, ls.Tag)
				}
			})
		}
	}
}
