// Package prof wires the standard runtime profilers into the CLIs:
// -cpuprofile / -memprofile / -blockprofile / -mutexprofile flags map
// onto runtime/pprof's CPU, heap, blocking, and mutex-contention
// profiles, written as files for `go tool pprof`. Block and mutex
// profiles are what show where the sharded engine's worker pool and the
// capture/export locks actually contend.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the requested profiles and returns a stop function that
// finishes and writes them. Empty names disable the corresponding
// profile. Block and mutex profiling are sampled at full rate while
// armed (SetBlockProfileRate(1) / SetMutexProfileFraction(1)) and reset
// to off by stop. Call stop at the end of the run, before any os.Exit on
// the success path.
func Start(cpu, mem, block, mutex string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	if block != "" {
		runtime.SetBlockProfileRate(1)
	}
	if mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if block != "" {
			runtime.SetBlockProfileRate(0)
			if err := writeLookup("block", block); err != nil {
				return err
			}
		}
		if mutex != "" {
			runtime.SetMutexProfileFraction(0)
			if err := writeLookup("mutex", mutex); err != nil {
				return err
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				return err
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}

// writeLookup writes a named runtime profile ("block", "mutex") to path.
func writeLookup(name, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
