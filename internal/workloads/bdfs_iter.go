package workloads

// TouchKind classifies the logical memory touches a BDFS traversal makes,
// so callers (a software baseline on a core, or the HATS Morph on an
// engine) can charge them to the right memory port.
type TouchKind int

// Touch kinds emitted by BDFSIter.
const (
	TouchOffset   TouchKind = iota // CSR offsets[v] (vertex push / cursor init)
	TouchNeighbor                  // CSR neighbors[e] (per edge)
	TouchRank                      // ranks[src] (when the source changes)
	TouchVisited                   // visited bitmap word for a vertex
	TouchCursor                    // per-vertex next-edge cursor
)

// BDFSIter is a resumable bounded-depth-first traversal (HATS [92]): it
// yields every edge exactly once, visiting communities together. The
// Touch hook is called with the index of each array element the
// traversal logically reads or writes; passing nil skips accounting.
type BDFSIter struct {
	g        *Graph
	ranks    []uint64
	maxDepth int

	Touch func(kind TouchKind, index int)

	visited  []bool
	nextEdge []uint64
	stack    []bdfsFrame
	root     int
	emitted  int
}

type bdfsFrame struct {
	v     int
	depth int
}

// NewBDFSIter builds an iterator over g using ranks for contributions.
func NewBDFSIter(g *Graph, ranks []uint64, maxDepth int) *BDFSIter {
	it := &BDFSIter{g: g, ranks: ranks, maxDepth: maxDepth}
	it.visited = make([]bool, g.V)
	it.nextEdge = make([]uint64, g.V)
	copy(it.nextEdge, g.Offsets[:g.V])
	return it
}

func (it *BDFSIter) touch(kind TouchKind, index int) {
	if it.Touch != nil {
		it.Touch(kind, index)
	}
}

func (it *BDFSIter) contrib(src int) uint64 {
	deg := it.g.OutDegree(src)
	if deg == 0 {
		return 0
	}
	return it.ranks[src] / uint64(deg)
}

// Emitted returns the number of edges produced so far.
func (it *BDFSIter) Emitted() int { return it.emitted }

// Next yields the next edge visit, or ok=false when every edge has been
// visited.
func (it *BDFSIter) Next() (EdgeVisit, bool) {
	for {
		// Refill the stack from the next unvisited root.
		for len(it.stack) == 0 {
			if it.root >= it.g.V {
				return EdgeVisit{}, false
			}
			v := it.root
			it.root++
			it.touch(TouchVisited, v)
			if it.visited[v] {
				continue
			}
			it.visited[v] = true
			it.touch(TouchOffset, v)
			it.touch(TouchRank, v)
			it.stack = append(it.stack, bdfsFrame{v, 0})
		}
		f := &it.stack[len(it.stack)-1]
		it.touch(TouchCursor, f.v)
		if it.nextEdge[f.v] >= it.g.Offsets[f.v+1] {
			it.stack = it.stack[:len(it.stack)-1]
			continue
		}
		e := it.nextEdge[f.v]
		it.nextEdge[f.v]++
		it.touch(TouchNeighbor, int(e))
		dst := int(it.g.Neighbors[e])
		ev := EdgeVisit{Src: f.v, Dst: dst, Contrib: it.contrib(f.v)}
		it.touch(TouchVisited, dst)
		if !it.visited[dst] && f.depth < it.maxDepth {
			it.visited[dst] = true
			depth := f.depth + 1
			it.touch(TouchOffset, dst)
			it.touch(TouchRank, dst)
			it.stack = append(it.stack, bdfsFrame{dst, depth})
		}
		it.emitted++
		return ev, true
	}
}
