package hier

import (
	"fmt"

	"tako/internal/flat"
	"tako/internal/mem"
	"tako/internal/sim"
)

// lockTable serializes per-line operations (in-flight fills, callback
// locks, home-bank operations). It replaces the map[mem.Addr]*sim.Future
// design with an open-addressed table of inline entries and two hot-path
// refinements that keep behavior identical:
//
//   - Futures are created lazily, on the first waiter. The uncontended
//     lock/unlock cycle — the overwhelmingly common case — allocates
//     nothing. Waiters are registered on the entry's future in arrival
//     order and woken at the unlock cycle, exactly as when the future
//     was created eagerly at lock time.
//
//   - Locks are identified by a sequence token instead of future
//     pointer equality, so the conditional-release idiom ("delete only
//     if the entry is still mine") ports directly.
type lockTable struct {
	k    *sim.Kernel
	name string // diagnostic identity, e.g. "pending@3" or "home@3"
	tbl  flat.Table[lockEntry]
	seq  uint64
}

// lockEntry is one held line lock: the identifying token and the future
// waiters block on (nil until someone waits).
type lockEntry struct {
	seq uint64
	fut *sim.Future
}

func (lt *lockTable) init(k *sim.Kernel, name string) {
	lt.k = k
	lt.name = name
}

// locked reports whether la is currently locked.
func (lt *lockTable) locked(la mem.Addr) bool {
	return lt.tbl.Ref(uint64(la)) != nil
}

// waitIfLocked blocks p until la's current lock releases, reporting
// whether it waited (callers loop: the lock may be retaken before p
// runs again).
func (lt *lockTable) waitIfLocked(p *sim.Proc, la mem.Addr) bool {
	e := lt.tbl.Ref(uint64(la))
	if e == nil {
		return false
	}
	if e.fut == nil {
		// Lazily materialized only when contention actually happens, and
		// pool-originated: the unlocker completes it via completeLock,
		// which recycles it — no reference survives the wake.
		e.fut = lt.k.GetFuture()
	}
	p.Wait(e.fut)
	return true
}

// lock takes la's lock (which must be free — callers drain waiters with
// waitIfLocked first) and returns the token that releases it. Taking an
// already-held lock is a protocol bug, not a race to tolerate: the
// holder's unlock would silently miss and strand its waiters.
func (lt *lockTable) lock(la mem.Addr) uint64 {
	if e := lt.tbl.Ref(uint64(la)); e != nil {
		panic(fmt.Sprintf(
			"hier: %s: lock of line %v at cycle %d, but token %d already holds it",
			lt.name, la, lt.k.Now(), e.seq))
	}
	return lt.lockWith(la, nil)
}

// lockWith takes la's lock, storing fut as the future waiters block on
// (nil defers creation to the first waiter). An existing entry is
// overwritten — the callback-lock paths replace an in-flight fill's
// entry deliberately, matching the map's assignment semantics.
func (lt *lockTable) lockWith(la mem.Addr, fut *sim.Future) uint64 {
	lt.seq++
	lt.tbl.Put(uint64(la), lockEntry{seq: lt.seq, fut: fut})
	return lt.seq
}

// unlock releases la's lock if tok still identifies it, returning the
// entry's future — which the caller must Complete to wake waiters —
// or nil when no waiter ever materialized (or the lock was overwritten).
// Use mustUnlock on paths where the lock cannot legitimately have been
// replaced; this tolerant form is for the conditional-release idiom
// ("delete only if the entry is still mine") on the private pending
// table, whose fill entries callback locks deliberately supersede.
func (lt *lockTable) unlock(la mem.Addr, tok uint64) *sim.Future {
	e := lt.tbl.Ref(uint64(la))
	if e == nil || e.seq != tok {
		return nil
	}
	fut := e.fut
	lt.tbl.Delete(uint64(la))
	return fut
}

// mustUnlock is unlock for locks that are never superseded (the home
// tables): a missing entry or token mismatch means two operations
// believed they owned the same line, so it panics with enough context —
// table, line, cycle, both tokens — to reconstruct the interleaving.
func (lt *lockTable) mustUnlock(la mem.Addr, tok uint64) *sim.Future {
	e := lt.tbl.Ref(uint64(la))
	if e == nil {
		panic(fmt.Sprintf(
			"hier: %s: unlock of line %v with token %d at cycle %d, but the line is not locked",
			lt.name, la, tok, lt.k.Now()))
	}
	if e.seq != tok {
		panic(fmt.Sprintf(
			"hier: %s: unlock of line %v with token %d at cycle %d, but token %d holds the lock (lock was retaken or clobbered)",
			lt.name, la, tok, lt.k.Now(), e.seq))
	}
	fut := e.fut
	lt.tbl.Delete(uint64(la))
	return fut
}

// dirTable is the coherence directory: line address → inline dirEntry,
// open-addressed. Entries are created on first touch and deleted when
// their sharer set drains, so the table churns with every eviction —
// tombstone-free deletion keeps that free.
type dirTable struct {
	tbl flat.Table[dirEntry]
}

// get returns la's entry, or nil if untracked. The pointer is
// invalidated by the next directory insert or delete (table growth and
// backward-shift deletion move entries); callers finish with it before
// the next create/delete, and the access paths do.
func (d *dirTable) get(la mem.Addr) *dirEntry {
	return d.tbl.Ref(uint64(la))
}

// getOrCreate returns la's entry, creating an ownerless one if needed.
// Same pointer-validity rule as get.
func (d *dirTable) getOrCreate(la mem.Addr) *dirEntry {
	e, _ := d.tbl.GetOrPut(uint64(la), dirEntry{owner: -1})
	return e
}

// delete removes la's entry.
func (d *dirTable) delete(la mem.Addr) {
	d.tbl.Delete(uint64(la))
}

// forEach visits every entry (deterministic slot order). fn must not
// mutate the directory.
func (d *dirTable) forEach(fn func(la mem.Addr, e *dirEntry) bool) {
	d.tbl.Range(func(key uint64, e *dirEntry) bool {
		return fn(mem.Addr(key), e)
	})
}
