// Package exp contains one driver per table and figure of the paper's
// evaluation (§3, §8, §9). Each driver runs the workload(s) on the
// modeled system and prints the same rows or series the paper reports;
// EXPERIMENTS.md records paper-vs-measured for each.
package exp

import (
	"fmt"
	"sort"

	"tako/internal/stats"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string // e.g. "fig6", "table2"
	Title string
	Paper string // the paper's headline claim for this artifact
	// Run executes the experiment; quick uses the scaled-down
	// configuration (seconds), !quick a larger one (minutes).
	Run func(quick bool) (*stats.Table, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment, in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

func order(id string) int {
	for i, k := range []string{
		"fig6", "fig7", "table2", "table3", "fig13", "fig14", "fig16",
		"fig17", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
		"fig25", "fig25full", "ffcheck", "sweep-cbbuf", "sweep-rtlb", "sharded",
	} {
		if k == id {
			return i
		}
	}
	return 99
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

func pct(x float64) string { return fmt.Sprintf("%.0f%%", 100*x) }
