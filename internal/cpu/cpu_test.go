package cpu

import (
	"testing"

	"tako/internal/energy"
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/sim"
)

func newCore(cfg Config) (*sim.Kernel, *Core) {
	k := sim.NewKernel()
	h := hier.New(k, hier.DefaultConfig(2), energy.NewMeter(), nil, nil)
	return k, New(h, 0, cfg, energy.NewMeter())
}

func TestComputeThroughput(t *testing.T) {
	k, c := newCore(Goldmont()) // IPC 2
	var took sim.Cycle
	k.Go("t", func(p *sim.Proc) {
		t0 := p.Now()
		c.Compute(p, 100)
		took = p.Now() - t0
	})
	k.Run()
	if took != 50 {
		t.Fatalf("100 instrs at IPC 2 took %d cycles, want 50", took)
	}
	if c.Instrs != 100 {
		t.Fatalf("instrs = %d", c.Instrs)
	}
}

func TestOOOOverlapsIndependentMisses(t *testing.T) {
	run := func(cfg Config) sim.Cycle {
		k, c := newCore(cfg)
		var end sim.Cycle
		k.Go("t", func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				c.LoadAsync(p, mem.Addr(0x10000+i*4096)) // distinct pages/streams
			}
			c.Drain(p)
			end = p.Now()
		})
		k.Run()
		return end
	}
	ooo := run(Goldmont())
	ino := run(LittleInOrder())
	if ooo*2 > ino {
		t.Fatalf("OOO (%d) should be ≪ in-order (%d) on independent misses", ooo, ino)
	}
}

func TestBranchMispredictPenalty(t *testing.T) {
	k, c := newCore(Goldmont())
	var took sim.Cycle
	k.Go("t", func(p *sim.Proc) {
		t0 := p.Now()
		c.Branch(p, false)
		c.Branch(p, true)
		took = p.Now() - t0
	})
	k.Run()
	if took != Goldmont().MispredictPenalty {
		t.Fatalf("penalty = %d, want %d", took, Goldmont().MispredictPenalty)
	}
	if c.Mispredicts != 1 {
		t.Fatalf("mispredicts = %d", c.Mispredicts)
	}
}

func TestAtomicExchangeCountsTwoInstrs(t *testing.T) {
	k, c := newCore(Goldmont())
	k.Go("t", func(p *sim.Proc) {
		c.Store(p, 0x100, 1)
		c.AtomicExchange(p, 0x100, 2)
	})
	k.Run()
	if c.Instrs != 3 {
		t.Fatalf("instrs = %d, want 3", c.Instrs)
	}
}

func TestWindowBoundsOutstanding(t *testing.T) {
	cfg := Goldmont()
	cfg.MLP = 2
	k, c := newCore(cfg)
	k.Go("t", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			c.LoadAsync(p, mem.Addr(0x20000+i*64))
			if len(c.window) > 2 {
				t.Errorf("window grew to %d", len(c.window))
			}
		}
		c.Drain(p)
	})
	k.Run()
}
