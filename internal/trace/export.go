package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// This file implements the structured trace exporters: newline-delimited
// JSON (one event per line, for jq/pandas-style analysis) and the Chrome
// trace-event format that chrome://tracing and Perfetto load directly.
//
// Both exporters are multi-process: an experiment can run several
// simulated systems (baseline, UB, täkō, ideal), and each run registers
// itself as one "process" whose components become named tracks. Process
// views are obtained with Process(pid); SetProcessName labels them once
// the run's variant is known. Each call to an exporter takes an internal
// lock, so distinct runs may emit concurrently; events within one run
// arrive in deterministic order because the simulation kernel is
// single-threaded.

// MultiSink is implemented by both exporters: a shared output file
// receiving events from several simulated systems.
type MultiSink interface {
	// Process returns the Sink view for one simulated system. Calling
	// it twice with the same pid returns equivalent views.
	Process(pid int) Sink
	// SetProcessName labels a process (e.g. "phi/tako") in the output.
	SetProcessName(pid int, name string)
	// Close flushes and finalizes the output.
	Close() error
}

// jsonlLine is the wire format of one JSONL event.
type jsonlLine struct {
	Run       int    `json:"run"`
	Cycle     uint64 `json:"cycle"`
	Dur       uint64 `json:"dur,omitempty"`
	Component string `json:"component"`
	Kind      string `json:"kind"`
	Detail    string `json:"detail,omitempty"`
}

// jsonlLabel is the wire format of a run-label record.
type jsonlLabel struct {
	Run   int    `json:"run"`
	Label string `json:"label"`
}

// JSONL streams events as newline-delimited JSON objects.
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONL returns a JSONL exporter writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w)}
}

func (j *JSONL) writeLine(v interface{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(b); err != nil {
		j.err = err
		return
	}
	j.err = j.w.WriteByte('\n')
}

// Process returns the Sink view for run pid.
func (j *JSONL) Process(pid int) Sink { return &jsonlProc{j: j, pid: pid} }

// SetProcessName records a {"run":pid,"label":name} line.
func (j *JSONL) SetProcessName(pid int, name string) {
	j.writeLine(jsonlLabel{Run: pid, Label: name})
}

// Close flushes the output.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); j.err == nil {
		j.err = err
	}
	return j.err
}

type jsonlProc struct {
	j   *JSONL
	pid int
}

func (p *jsonlProc) Emit(e Event) {
	p.j.writeLine(jsonlLine{
		Run: p.pid, Cycle: e.Cycle, Dur: e.Dur,
		Component: e.Component, Kind: e.Kind, Detail: e.Detail,
	})
}

func (p *jsonlProc) Close() error { return nil }

// Chrome streams events in the Chrome trace-event JSON format, loadable
// by chrome://tracing and https://ui.perfetto.dev. Each simulated system
// is a process; each component (core.N, l2.N, l3.N, engine.N, dram.N,
// noc) is a named thread, so it renders as its own track. Spans become
// complete ("X") events — a callback's schedule → execute → fill life
// nests visually on its engine track — and instant events become
// thread-scoped "i" events. Simulated cycles are reported as
// microseconds, so 1 ms of viewer time is 1000 cycles.
type Chrome struct {
	mu      sync.Mutex
	w       *bufio.Writer
	err     error
	started bool
	closed  bool
	// tids assigns one viewer thread per (pid, component), in
	// first-seen order (deterministic given a deterministic run).
	tids    map[int]map[string]int
	nextTid map[int]int
}

// NewChrome returns a Chrome trace-event exporter writing to w.
func NewChrome(w io.Writer) *Chrome {
	return &Chrome{
		w:       bufio.NewWriter(w),
		tids:    make(map[int]map[string]int),
		nextTid: make(map[int]int),
	}
}

// Process returns the Sink view for run pid.
func (c *Chrome) Process(pid int) Sink { return &chromeProc{c: c, pid: pid} }

// SetProcessName emits process_name metadata for run pid.
func (c *Chrome) SetProcessName(pid int, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.record(fmt.Sprintf(
		`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
		pid, quote(name)))
}

// tid returns the viewer thread for (pid, component), emitting
// thread_name metadata the first time a component appears. Caller holds
// the lock.
func (c *Chrome) tid(pid int, component string) int {
	m, ok := c.tids[pid]
	if !ok {
		m = make(map[string]int)
		c.tids[pid] = m
	}
	if t, ok := m[component]; ok {
		return t
	}
	t := c.nextTid[pid]
	c.nextTid[pid] = t + 1
	m[component] = t
	c.record(fmt.Sprintf(
		`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
		pid, t, quote(component)))
	// Keep track order stable in the viewer regardless of first-seen
	// order within a kind: sort by component name.
	c.record(fmt.Sprintf(
		`{"name":"thread_sort_index","ph":"M","pid":%d,"tid":%d,"args":{"sort_index":%d}}`,
		pid, t, sortIndex(component)))
	return t
}

// sortIndex orders tracks by hierarchy layer, then instance: cores,
// caches, engines, NoC, DRAM, everything else.
func sortIndex(component string) int {
	base, inst := component, 0
	if i := strings.LastIndexByte(component, '.'); i >= 0 {
		base = component[:i]
		fmt.Sscanf(component[i+1:], "%d", &inst)
	}
	layer := map[string]int{
		"core": 0, "l1": 1, "el1": 2, "l2": 3, "l3": 4,
		"engine": 5, "noc": 6, "dram": 7,
	}
	l, ok := layer[base]
	if !ok {
		l = 8
	}
	return l*1024 + inst
}

// record appends one raw JSON event object. Caller holds the lock.
func (c *Chrome) record(obj string) {
	if c.err != nil || c.closed {
		return
	}
	if !c.started {
		if _, err := c.w.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
			c.err = err
			return
		}
		c.started = true
	} else {
		if _, err := c.w.WriteString(",\n"); err != nil {
			c.err = err
			return
		}
	}
	if _, err := c.w.WriteString(obj); err != nil {
		c.err = err
	}
}

// Close terminates the JSON document and flushes.
func (c *Chrome) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.err
	}
	if !c.started {
		// No events: still produce a valid document with an empty
		// traceEvents array (the blank line between [ and ] is fine).
		c.record("")
	}
	if c.err == nil {
		if _, err := c.w.WriteString("\n]}\n"); err != nil {
			c.err = err
		}
	}
	c.closed = true
	if err := c.w.Flush(); c.err == nil {
		c.err = err
	}
	return c.err
}

type chromeProc struct {
	c   *Chrome
	pid int
}

func (p *chromeProc) Emit(e Event) {
	c := p.c
	c.mu.Lock()
	defer c.mu.Unlock()
	tid := c.tid(p.pid, e.Component)
	cat := e.Kind
	if i := strings.IndexByte(cat, '.'); i > 0 {
		cat = cat[:i]
	}
	args := ""
	if e.Detail != "" {
		args = fmt.Sprintf(`,"args":{"detail":%s}`, quote(e.Detail))
	}
	if e.Dur > 0 {
		c.record(fmt.Sprintf(
			`{"name":%s,"cat":%s,"ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d%s}`,
			quote(e.Kind), quote(cat), e.Cycle, e.Dur, p.pid, tid, args))
	} else {
		c.record(fmt.Sprintf(
			`{"name":%s,"cat":%s,"ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d%s}`,
			quote(e.Kind), quote(cat), e.Cycle, p.pid, tid, args))
	}
}

func (p *chromeProc) Close() error { return nil }

// quote JSON-encodes a string.
func quote(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `"?"`
	}
	return string(b)
}

// keepOpen wraps a MultiSink so Close is a no-op; the real sink is
// closed once by whoever owns the file.
type keepOpen struct{ MultiSink }

func (keepOpen) Close() error { return nil }

// KeepOpen returns a view of sink whose Close does nothing. StopCapture
// closes its sink, which finalizes a Chrome document — a driver running
// several capture windows into one shared trace file (takoreport, one
// window per experiment) hands each window a KeepOpen view and closes
// the underlying sink itself after the last window.
func KeepOpen(sink MultiSink) MultiSink { return keepOpen{sink} }

// SinkFor returns the named exporter ("jsonl" or "chrome") writing to w.
func SinkFor(format string, w io.Writer) (MultiSink, error) {
	switch format {
	case "jsonl":
		return NewJSONL(w), nil
	case "chrome":
		return NewChrome(w), nil
	default:
		return nil, fmt.Errorf("trace: unknown format %q (want jsonl or chrome)", format)
	}
}

// SortEvents orders events by (start cycle, component, kind) — a stable
// order for golden-file tests over small event sets.
func SortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Cycle != evs[j].Cycle {
			return evs[i].Cycle < evs[j].Cycle
		}
		if evs[i].Component != evs[j].Component {
			return evs[i].Component < evs[j].Component
		}
		return evs[i].Kind < evs[j].Kind
	})
}
