// Package cache models set-associative cache arrays: tags, data,
// replacement state, Morph registration bits, and per-line callback
// locks. Timing and the protocol between levels live in internal/hier;
// this package is the functional array plus replacement policy.
//
// täkō-specific pieces (paper §5.2):
//   - one tag bit per line records whether a Morph is registered for the
//     line at this cache level;
//   - the trrîp replacement policy inserts engine-issued fills at distant
//     re-reference priority to avoid cache pollution from callbacks;
//   - victim selection can be restricted to callback-free lines, and
//     inserts maintain the invariant that every set keeps at least one
//     line that can be evicted without triggering a callback (deadlock
//     avoidance).
package cache

import (
	"fmt"

	"tako/internal/mem"
	"tako/internal/sim"
)

// Config describes one cache array.
type Config struct {
	Name        string
	SizeBytes   int
	Ways        int
	TagLatency  sim.Cycle
	DataLatency sim.Cycle
	// IndexShift skips address bits above the line offset before set
	// indexing; shared-cache banks use it to index within a bank after
	// line-interleaving across tiles.
	IndexShift uint
	Policy     Policy
}

// LineState is the full state of one cache line (tag + data + metadata).
type LineState struct {
	Valid bool
	Tag   mem.Addr // line-aligned address
	Dirty bool
	// Morph records that a Morph is registered for this line at this
	// cache level: its eviction must invoke onEviction/onWriteback.
	Morph bool
	// EngineFill records that the line was inserted by an engine
	// (callback) access, for trrîp's pollution-avoidance accounting.
	EngineFill bool
	// Locked marks a line currently owned by a running callback; it
	// may not be selected as a victim.
	Locked bool
	// Phantom marks a line from a phantom range (never written back to
	// the next level; discarded after its eviction callback).
	Phantom bool

	RRPV uint8  // RRIP re-reference prediction value
	LRU  uint64 // LRU timestamp

	Data mem.Line
}

// Stats are per-array counters.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Writebacks  uint64 // dirty evictions
	MorphEvicts uint64 // evictions that will trigger callbacks
	Fills       uint64
}

// Cache is one set-associative array.
//
// Line state lives in one contiguous slab indexed by set*ways+way (no
// per-set slice headers or pointer indirection: a lookup is one index
// computation into a single allocation). Two small per-set sidecars
// accelerate the hot scans without changing any outcome: valid[s] counts
// valid ways (a full set skips the find-an-invalid-way scan, which would
// find nothing), and mru[s] remembers the last way hit so the common
// re-reference probe is a single tag compare.
type Cache struct {
	cfg      Config
	lines    []LineState // slab: numSets * ways entries
	ways     int
	numSets  int
	valid    []int16 // per-set count of valid ways
	mru      []int16 // per-set way of the last hit/fill
	lruClock uint64
	Stats    Stats

	// Victim-scan scratch: allowedFn is built once and reads vcSet /
	// vcConstraint, which ChooseVictim binds per call, so passing the
	// eligibility predicate through the Policy interface never allocates
	// a closure. Policies must not re-enter ChooseVictim (none do — they
	// are pure scans over the set).
	vcSet        []LineState
	vcConstraint VictimConstraint
	allowedFn    func(int) bool
}

// set returns the way array of set s as a slice of the slab.
func (c *Cache) set(s int) []LineState {
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// New builds a cache array from cfg. Size must be divisible by
// Ways*LineSize and the set count must be a power of two.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic("cache: bad geometry")
	}
	lines := cfg.SizeBytes / mem.LineSize
	if lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by %d ways", cfg.Name, lines, cfg.Ways))
	}
	numSets := lines / cfg.Ways
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets is not a power of two", cfg.Name, numSets))
	}
	if cfg.Policy == nil {
		cfg.Policy = NewTRRIP()
	}
	c := &Cache{cfg: cfg, ways: cfg.Ways, numSets: numSets}
	c.lines = make([]LineState, numSets*cfg.Ways)
	c.valid = make([]int16, numSets)
	c.mru = make([]int16, numSets)
	c.allowedFn = func(i int) bool {
		l := &c.vcSet[i]
		if l.Locked {
			return false
		}
		if c.vcConstraint.CallbackFree && l.Morph {
			return false
		}
		if c.vcConstraint.Busy != nil && c.vcConstraint.Busy(l.Tag) {
			return false
		}
		if c.vcConstraint.Avoid != nil && c.vcConstraint.Avoid(l.Tag) {
			return false
		}
		return true
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// SetIndex returns the set index for address a.
func (c *Cache) SetIndex(a mem.Addr) int {
	return int((uint64(a) >> (mem.LineShift + c.cfg.IndexShift)) % uint64(c.numSets))
}

// Lookup returns the line holding a, or nil on miss. It does not update
// replacement state; callers use Touch on hits so that probes (directory
// lookups, flush walks) do not perturb the policy.
func (c *Cache) Lookup(a mem.Addr) *LineState {
	idx := c.SetIndex(a)
	set := c.set(idx)
	la := a.Line()
	// MRU fast path: tags are unique per set, so a hint hit is the
	// unique answer and a full scan is equivalent when it misses.
	if m := c.mru[idx]; set[m].Valid && set[m].Tag == la {
		return &set[m]
	}
	for i := range set {
		if set[i].Valid && set[i].Tag == la {
			c.mru[idx] = int16(i)
			return &set[i]
		}
	}
	return nil
}

// Contains reports whether a is cached.
func (c *Cache) Contains(a mem.Addr) bool { return c.Lookup(a) != nil }

// Touch records a demand hit on a's line for the replacement policy.
func (c *Cache) Touch(a mem.Addr) {
	idx := c.SetIndex(a)
	set := c.set(idx)
	la := a.Line()
	i := int(c.mru[idx])
	if !set[i].Valid || set[i].Tag != la {
		i = -1
		for w := range set {
			if set[w].Valid && set[w].Tag == la {
				i = w
				break
			}
		}
		if i < 0 {
			return
		}
		c.mru[idx] = int16(i)
	}
	c.lruClock++
	set[i].LRU = c.lruClock
	c.cfg.Policy.OnHit(set, i)
}

// VictimConstraint restricts victim selection.
type VictimConstraint struct {
	// CallbackFree requires a victim whose eviction triggers no
	// callback (no Morph bit). Used when callback resources are
	// saturated (§5.2 deadlock avoidance).
	CallbackFree bool
	// Avoid excludes lines software asked to protect — the
	// onReplacement extension (§4.5): Morphs may bias the eviction
	// policy for their lines. Callers fall back to unconstrained
	// selection when every candidate is avoided.
	Avoid func(tag mem.Addr) bool
	// Busy excludes lines with an in-flight transaction the cache array
	// cannot see (a held home-line lock). Unlike Avoid it is a hard
	// correctness constraint, never relaxed: victimizing a line mid
	// transaction lets its eviction snapshot race the transaction's
	// update.
	Busy func(tag mem.Addr) bool
}

// ChooseVictim picks a victim way in a's set for an incoming fill.
// Invalid ways are preferred. It returns ok=false if every candidate is
// excluded (all locked, or no callback-free line under the constraint —
// the insert invariant makes the latter impossible for CallbackFree).
func (c *Cache) ChooseVictim(a mem.Addr, constraint VictimConstraint) (way int, ok bool) {
	idx := c.SetIndex(a)
	set := c.set(idx)
	// The invalid-way scan returns the first invalid way; when the valid
	// count says the set is full it would find nothing, so skip it.
	if int(c.valid[idx]) < c.ways {
		for i := range set {
			if !set[i].Valid {
				return i, true
			}
		}
	}
	c.vcSet, c.vcConstraint = set, constraint
	allowed := c.allowedFn
	any := false
	for i := range set {
		if allowed(i) {
			any = true
			break
		}
	}
	if !any {
		c.vcSet, c.vcConstraint = nil, VictimConstraint{}
		return -1, false
	}
	way = c.cfg.Policy.Victim(set, allowed)
	// Unbind the scratch so pooled state never pins a caller's Avoid hook
	// or outlives the call.
	c.vcSet, c.vcConstraint = nil, VictimConstraint{}
	return way, true
}

// FillOpts describes an incoming line.
type FillOpts struct {
	Dirty      bool
	Morph      bool
	Phantom    bool
	EngineFill bool
	Locked     bool
}

// EvictWay removes the line in set idx/way and returns its prior state.
func (c *Cache) evictWay(setIdx, way int) LineState {
	set := c.set(setIdx)
	old := set[way]
	set[way] = LineState{}
	if old.Valid {
		c.valid[setIdx]--
		c.Stats.Evictions++
		if old.Dirty {
			c.Stats.Writebacks++
		}
		if old.Morph {
			c.Stats.MorphEvicts++
		}
	}
	return old
}

// FillAt installs a line for address a into the given way (previously
// chosen by ChooseVictim and already drained by the caller), returning
// the evicted line state (Valid=false if the way was empty).
//
// FillAt maintains the deadlock-avoidance invariant: if installing a
// Morph line would leave no callback-free line in the set, it refuses
// and the caller must evict a Morph line first (see Insert, which handles
// this automatically).
func (c *Cache) FillAt(a mem.Addr, way int, data *mem.Line, opts FillOpts) LineState {
	setIdx := c.SetIndex(a)
	evicted := c.evictWay(setIdx, way)
	set := c.set(setIdx)
	for w := range set {
		if set[w].Valid && set[w].Tag == a.Line() {
			panic(fmt.Sprintf("cache %s: duplicate fill of line %v (already in way %d)",
				c.cfg.Name, a.Line(), w))
		}
	}
	c.lruClock++
	set[way] = LineState{
		Valid:      true,
		Tag:        a.Line(),
		Dirty:      opts.Dirty,
		Morph:      opts.Morph,
		Phantom:    opts.Phantom,
		EngineFill: opts.EngineFill,
		Locked:     opts.Locked,
		LRU:        c.lruClock,
	}
	if data != nil {
		set[way].Data = *data
	}
	c.valid[setIdx]++
	c.mru[setIdx] = int16(way)
	c.cfg.Policy.OnInsert(set, way, opts.EngineFill)
	c.Stats.Fills++
	return evicted
}

// Seed installs a clean line into an invalid way of a's set without
// touching the hit/miss/fill statistics: warm-state pre-seeding for
// analytical fast-forward (hier/seed.go). It returns false — and
// installs nothing — when the line is already present or the set has no
// invalid way (seeding never evicts). Recency follows the shared fill
// clock, so callers seed in least-recent-first order; the replacement
// policy's insertion hook runs so policy metadata stays legal.
func (c *Cache) Seed(a mem.Addr, data *mem.Line) bool {
	setIdx := c.SetIndex(a)
	set := c.set(setIdx)
	if int(c.valid[setIdx]) >= c.ways {
		return false
	}
	way := -1
	for w := range set {
		if set[w].Valid {
			if set[w].Tag == a.Line() {
				return false
			}
			continue
		}
		if way < 0 {
			way = w
		}
	}
	c.lruClock++
	set[way] = LineState{Valid: true, Tag: a.Line(), LRU: c.lruClock}
	if data != nil {
		set[way].Data = *data
	}
	c.valid[setIdx]++
	c.mru[setIdx] = int16(way)
	c.cfg.Policy.OnInsert(set, way, false)
	return true
}

// CanInsertMorph reports whether inserting a Morph line into a's set,
// evicting victimWay, preserves the per-set invariant of ≥1 callback-free
// line (counting invalid lines as callback-free).
func (c *Cache) CanInsertMorph(a mem.Addr, victimWay int) bool {
	set := c.set(c.SetIndex(a))
	for i := range set {
		if i == victimWay {
			continue // being replaced by the Morph line
		}
		if !set[i].Valid || !set[i].Morph {
			return true
		}
	}
	return false
}

// ChooseVictimForInsert picks a victim for a fill with the given options,
// honoring both the caller's constraint and the Morph-insert invariant:
// when the new line carries a Morph and only one callback-free line
// remains, a Morph line is victimized instead so the set always retains
// an evictable, callback-free line (§5.2).
func (c *Cache) ChooseVictimForInsert(a mem.Addr, opts FillOpts, constraint VictimConstraint) (way int, ok bool) {
	way, ok = c.ChooseVictim(a, constraint)
	if !ok {
		return -1, false
	}
	if opts.Morph && !c.CanInsertMorph(a, way) {
		// Must evict a Morph line instead. This victim triggers a
		// callback, so it is incompatible with CallbackFree.
		if constraint.CallbackFree {
			return -1, false
		}
		set := c.set(c.SetIndex(a))
		allowed := func(i int) bool {
			if set[i].Locked || !set[i].Morph {
				return false
			}
			if constraint.Busy != nil && constraint.Busy(set[i].Tag) {
				return false
			}
			if constraint.Avoid != nil && constraint.Avoid(set[i].Tag) {
				return false
			}
			return true
		}
		any := false
		for i := range set {
			if allowed(i) {
				any = true
				break
			}
		}
		if !any {
			if constraint.Avoid == nil {
				return -1, false
			}
			// All Morph candidates are protected: the hint is
			// advisory, so retry without it.
			relaxed := constraint
			relaxed.Avoid = nil
			return c.ChooseVictimForInsert(a, opts, relaxed)
		}
		return c.cfg.Policy.Victim(set, allowed), true
	}
	return way, ok
}

// ExtractLine invalidates a's line and returns its state (for flushes and
// back-invalidations). ok=false if the line is not present.
func (c *Cache) ExtractLine(a mem.Addr) (LineState, bool) {
	setIdx := c.SetIndex(a)
	set := c.set(setIdx)
	la := a.Line()
	for i := range set {
		if set[i].Valid && set[i].Tag == la {
			return c.evictWay(setIdx, i), true
		}
	}
	return LineState{}, false
}

// Walk calls fn for every valid line; fn may mutate the line state but
// must not invalidate it (use ExtractLine afterwards).
func (c *Cache) Walk(fn func(*LineState)) {
	// Slab order is (set, way) order, matching the old nested loops.
	for i := range c.lines {
		if c.lines[i].Valid {
			fn(&c.lines[i])
		}
	}
}

// WalkSets calls fn for every set with its full way array (valid and
// invalid lines), exposing replacement state to invariant checkers and
// verification harnesses. fn must not mutate the slice.
func (c *Cache) WalkSets(fn func(setIdx int, set []LineState)) {
	for s := 0; s < c.numSets; s++ {
		fn(s, c.set(s))
	}
}

// CheckReplacementState verifies the structural sanity of every set: no
// duplicate tags, line-aligned tags indexing to their own set, RRPV
// within the 2-bit range, and invalid lines carrying no stale metadata
// bits. Used by the hierarchy-wide invariant checker.
func (c *Cache) CheckReplacementState() error {
	for s := 0; s < c.numSets; s++ {
		set := c.set(s)
		valid := 0
		for w := range set {
			l := &set[w]
			if !l.Valid {
				if l.Dirty || l.Morph || l.Locked || l.Phantom {
					return fmt.Errorf("cache %s: set %d way %d invalid but carries state bits", c.cfg.Name, s, w)
				}
				continue
			}
			valid++
			if l.Tag != l.Tag.Line() {
				return fmt.Errorf("cache %s: set %d way %d tag %v not line-aligned", c.cfg.Name, s, w, l.Tag)
			}
			if c.SetIndex(l.Tag) != s {
				return fmt.Errorf("cache %s: line %v stored in set %d, indexes to %d",
					c.cfg.Name, l.Tag, s, c.SetIndex(l.Tag))
			}
			if l.RRPV > rrpvMax {
				return fmt.Errorf("cache %s: line %v RRPV %d beyond max %d", c.cfg.Name, l.Tag, l.RRPV, rrpvMax)
			}
			for w2 := w + 1; w2 < len(set); w2++ {
				if set[w2].Valid && set[w2].Tag == l.Tag {
					return fmt.Errorf("cache %s: duplicate tag %v in set %d (ways %d, %d)",
						c.cfg.Name, l.Tag, s, w, w2)
				}
			}
		}
		if valid != int(c.valid[s]) {
			return fmt.Errorf("cache %s: set %d valid-count sidecar says %d, actual %d",
				c.cfg.Name, s, c.valid[s], valid)
		}
	}
	return nil
}

// LinesInRegion returns the addresses of cached lines within r, in
// deterministic (set, way) order. Used by flushData tag walks (§4.4).
func (c *Cache) LinesInRegion(r mem.Region) []mem.Addr {
	var out []mem.Addr
	c.Walk(func(l *LineState) {
		if r.Contains(l.Tag) {
			out = append(out, l.Tag)
		}
	})
	return out
}

// CheckMorphInvariant verifies every set retains at least one
// callback-free (invalid or Morph-less) line. Returns an error naming the
// first violating set. Used by property tests and the deadlock study.
func (c *Cache) CheckMorphInvariant() error {
	for s := 0; s < c.numSets; s++ {
		set := c.set(s)
		free := false
		for w := range set {
			l := &set[w]
			if !l.Valid || !l.Morph {
				free = true
				break
			}
		}
		if !free {
			return fmt.Errorf("cache %s: set %d has no callback-free line", c.cfg.Name, s)
		}
	}
	return nil
}

// ValidLines returns the number of valid lines.
func (c *Cache) ValidLines() int {
	n := 0
	c.Walk(func(*LineState) { n++ })
	return n
}
