package oracle

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// This file implements the deterministic interleaving explorer: small
// multi-tile scenarios run under systematically permuted event orderings
// via the kernel's Chooser hook (sim.Kernel.SetChooser).
//
// Same-cycle events model concurrent hardware whose relative order the
// architecture leaves undefined, so every schedule the explorer tries is
// a legal timing — and each one must still satisfy the reference memory
// model and every hierarchy invariant. The scenarios are seeded with the
// access patterns of the six coherence races fixed during development
// (see docs/coherence.md): the explorer keeps them fixed by continually
// re-running those patterns under adversarial schedules.

// schedChooser drives one exploration run: it replays a fixed prefix of
// choices, takes the kernel default (0) after the prefix ends, and
// records the arity of every choice point so the driver can expand the
// schedule tree. It stays dormant (always 0, nothing recorded) until
// Arm() fires at the end of Morph setup.
type schedChooser struct {
	prefix []int
	taken  []int
	arity  []int
	armed  bool
}

func (c *schedChooser) Arm() { c.armed = true }

func (c *schedChooser) Choose(n int) int {
	if !c.armed {
		return 0
	}
	i := len(c.taken)
	pick := 0
	if i < len(c.prefix) && c.prefix[i] < n {
		// (An out-of-range replay value means this schedule reshaped the
		// event pattern before the divergence point; fall back to 0.)
		pick = c.prefix[i]
	}
	c.taken = append(c.taken, pick)
	c.arity = append(c.arity, n)
	return pick
}

// byteChooser resolves each choice point from a fuzz-provided byte
// stream (modulo the arity), defaulting to 0 when the stream runs out.
// FuzzExploreSchedule uses it to let the fuzzer drive raw schedules.
type byteChooser struct {
	data  []byte
	i     int
	armed bool
}

func (c *byteChooser) Arm() { c.armed = true }

func (c *byteChooser) Choose(n int) int {
	if !c.armed || c.i >= len(c.data) {
		return 0
	}
	pick := int(c.data[c.i]) % n
	c.i++
	return pick
}

// scenario is one explorer workload: a scripted two-tile operation mix
// shaped to revisit a historical race's access pattern.
type scenario struct {
	name  string
	race  string // the historical race this pattern regression-tests
	tiles int
	scale int // CacheScale: larger = smaller caches = more evictions
	ops   []byte
	// realMorph enables the harness's identity PRIVATE Morph over
	// realA, opening the fill-in-flight window (TraceConfig.RealMorph).
	realMorph bool
}

// sop encodes one scripted operation in the 6-byte trace format
// (tracegen.go buildOps); op i runs on tile i % tiles.
func sop(k opKind, region, line, word int, vb byte) []byte {
	return []byte{byte(k), byte(region), byte(line & 0xff), byte(line >> 8), byte(word), vb}
}

func script(ops ...[]byte) []byte {
	var out []byte
	for _, o := range ops {
		out = append(out, o...)
	}
	return out
}

// Scenarios returns the explorer's workload set. Each is small enough
// that one run takes milliseconds, so hundreds of schedules fit in an
// interactive budget.
func Scenarios() []scenario {
	var ss []scenario

	// 1. Non-temporal supersede vs. in-flight sharers: NT stores to a
	// line two other tiles keep re-fetching. Guards the fix where
	// StoreLineNT invalidated directory sharers before taking the
	// home-line lock. Three tiles matter: the failing interleaving needs
	// the NT store parked on the home lock (already past its too-early
	// invalidate) while a second fetch is parked behind the same lock —
	// the unlock then wakes both in the same cycle, and the schedule that
	// runs the fetch first re-registers a sharer the supersede never
	// sees. With only two tiles each core's next op issues strictly after
	// its previous one retires, so that wake tie never forms.
	{
		var ops [][]byte
		for i := 0; i < 12; i++ {
			ops = append(ops,
				sop(opStoreLineNT, rRealB, 0, 0, byte(10+i)), // tile 0
				sop(opLoad, rRealB, 0, i%8, 1),               // tile 1
				sop(opLoad, rRealB, 0, (i+3)%8, 1),           // tile 2
				// Tile 0 yield: an L1-hit load parks the tile-0 proc for a
				// cycle, releasing the event loop so fetch waiters can
				// claim the home lock between consecutive NT stores (a
				// back-to-back NT pair relocks synchronously and would
				// starve them, closing the race window the scenario aims
				// at).
				sop(opLoad, rRealA, int(1+i), 0, 1), // tile 0
				sop(opLoad, rRealB, 0, (i+5)%8, 1),  // tile 1
				sop(opLoad, rRealB, 0, (i+6)%8, 1),  // tile 2
			)
		}
		ops = append(ops,
			sop(opLoadLine, rRealB, 0, 0, 1),
			sop(opLoadLine, rRealB, 0, 0, 1),
			sop(opLoadLine, rRealB, 0, 0, 1))
		ss = append(ss, scenario{
			name:  "nt-supersede",
			race:  "StoreLineNT invalidated sharers before locking the home line",
			tiles: 3, scale: 32, ops: script(ops...),
		})
	}

	// 2. Shared-phantom eviction vs. re-store: both tiles store across
	// more SHARED phantom lines than the shrunken L3 holds, with the
	// strides phased so every line is stored twice at widely-separated
	// times. The second store's fetch re-materializes a line whose
	// eviction callback is still in flight; if the eviction failed to
	// lock the home line first, the store lands between the eviction
	// snapshot and the writeback callback, and the callback persists the
	// older data over it (the onWriteback shadow check sees data from
	// one store generation behind).
	{
		// 20 lines at stride 4 co-map to one L3 set (16 ways at this
		// scale), so the constantly re-stored hot set evicts itself —
		// plain streaming would only displace its own distant-priority
		// (trrîp) lines and never victimize the reused hot lines. The
		// round-robin next store target tracks the LRU victim, keeping a
		// fetch of the just-evicted line in flight at most evictions.
		var ops [][]byte
		for i := 0; i < 80; i++ {
			ops = append(ops,
				sop(opStoreLine, rPhantomS, 4*(i%20), 0, byte(1+i)),       // tile 0
				sop(opStoreLine, rPhantomS, 4*((i+7)%20), 0, byte(128+i)), // tile 1
			)
		}
		ss = append(ss, scenario{
			name:  "shared-evict-lock",
			race:  "morphEvictShared extracted the victim before locking its home line",
			tiles: 2, scale: 256, ops: script(ops...),
		})
	}

	// 3. Flush vs. engine-resident dirty lines: stores to the journaling
	// SHARED phantom trigger writeback callbacks that engine-store into
	// the journal (dirty lines living only in the engine L1d, around the
	// L2), then both tiles flush the journal while one keeps loading it.
	// Guards the fix where flushPrivate dropped dirty above-L2 lines.
	{
		var ops [][]byte
		for i := 0; i < 12; i++ {
			ops = append(ops,
				sop(opStoreLine, rPhantomS, (i*11)%96, 0, byte(1+i)), // tile 0
				sop(opLoadLine, rJournal, (i*5)%128, 0, 1),           // tile 1
			)
		}
		ops = append(ops,
			sop(opFlush, rPhantomS, 0, 0, 1), // tile 0: force writebacks/journaling
			sop(opLoadLine, rJournal, 3, 0, 1),
			sop(opFlush, rJournal, 0, 0, 1), // tile 0: flush the journal itself
			sop(opFlush, rJournal, 0, 0, 1), // tile 1: and concurrently from tile 1
			sop(opLoadLine, rJournal, 7, 0, 1),
			sop(opLoadLine, rJournal, 11, 0, 1),
		)
		ss = append(ss, scenario{
			name:  "flush-engine-dirty",
			race:  "flushPrivate dropped dirty lines cached only above the L2",
			tiles: 2, scale: 32, ops: script(ops...),
		})
	}

	// 4. L2-hit write vs. concurrent revocation. Writes only take the
	// L2-hit path when they miss the L1 but hit the L2, so tile 0
	// round-robins stores over 24 lines: more than the scaled L1 holds
	// (16 lines), fewer than the L2 (64 lines). Every store after the
	// first pass misses the thrashed L1 and hits the still-owned L2
	// copy, then sleeps on the data array — and tile 1, loading and
	// storing the same line in lockstep, can downgrade or invalidate
	// that copy inside the sleep. Guards the fix where such a write
	// committed without re-validating the hit.
	{
		// Phase sweep: both tiles run fixed latency chains, so the cycle
		// offset between tile 1's directory action and tile 0's
		// data-array sleep would otherwise be constant (and the chooser
		// can only permute same-cycle ties, not shift timing). Unequal
		// per-iteration counts of 1-cycle L1-hit scratch loads (i%2 on
		// tile 0 vs i%3 on tile 1) accumulate relative drift in 1-cycle
		// steps, so revocations sweep through every offset of the window.
		var t0, t1 [][]byte
		for i := 0; i < 72; i++ {
			l := i % 24
			t0 = append(t0, sop(opStore, rRealA, l, i%8, byte(1+i)))
			for j := 0; j < i%2; j++ {
				t0 = append(t0, sop(opLoad, rRealB, 30, 0, 1))
			}
			for j := 0; j < i%3; j++ {
				t1 = append(t1, sop(opLoad, rRealB, 31, 0, 1))
			}
			if i%3 == 2 {
				t1 = append(t1, sop(opStore, rRealA, l, (i+1)%8, byte(128+i)))
			} else {
				t1 = append(t1, sop(opLoad, rRealA, l, i%8, 1))
			}
		}
		// Zip to the positional tile assignment (op i runs on tile i%2),
		// tail-padding the shorter stream with scratch loads.
		var ops [][]byte
		for i := 0; i < len(t0) || i < len(t1); i++ {
			if i < len(t0) {
				ops = append(ops, t0[i])
			} else {
				ops = append(ops, sop(opLoad, rRealB, 30, 0, 1))
			}
			if i < len(t1) {
				ops = append(ops, t1[i])
			} else {
				ops = append(ops, sop(opLoad, rRealB, 31, 0, 1))
			}
		}
		ops = append(ops, sop(opDrain, 0, 0, 0, 1), sop(opDrain, 0, 0, 0, 1))
		ss = append(ss, scenario{
			name:  "l2-hit-write-race",
			race:  "an L2-hit write lost ownership across its data-array sleep",
			tiles: 2, scale: 32, ops: script(ops...), realMorph: true,
		})
	}

	// 5. Sibling migration: writeback callbacks engine-store journal
	// lines into the engine L1d of the phantom line's home tile, so a
	// core load of that journal slot on the same tile migrates the dirty
	// line between sibling L1s via the snoop path — while the other
	// tile's load of the same slot downgrades it through the directory.
	// Guards the fix where a sibling-extracted dirty line was held in a
	// buffer across a sleep instead of being re-inserted atomically.
	//
	// Each round: both tiles churn phantomS, then both flush it
	// concurrently (keeping them time-aligned while the writeback
	// callbacks journal every dirty line), then both sweep the whole
	// journal range in lockstep. A dirty slot's first core touch on its
	// home tile is a sibling snoop; the other tile touching the same
	// slot at the same moment is the downgrade. The snoop window is one
	// cycle, so unequal pad counts (j%2 vs j%3 scratch loads) drift the
	// tiles' relative phase through every offset across the sweep.
	{
		var t0, t1 [][]byte
		for r := 0; r < 2; r++ {
			for i := 0; i < 24; i++ {
				t0 = append(t0, sop(opStoreLine, rPhantomS, (r*24+i)%96, 0, byte(1+r*24+i)))
				t1 = append(t1, sop(opStoreLine, rPhantomS, (r*24+i+12)%96, 0, byte(128+r*24+i)))
			}
			t0 = append(t0, sop(opFlush, rPhantomS, 0, 0, 1))
			t1 = append(t1, sop(opFlush, rPhantomS, 0, 0, 1))
			for j := 0; j < 128; j++ {
				t0 = append(t0, sop(opLoadLine, rJournal, j, 0, 1))
				for k := 0; k < j%5; k++ {
					t0 = append(t0, sop(opLoad, rRealB, 40, 0, 1))
				}
				t1 = append(t1, sop(opLoadLine, rJournal, j, 0, 1))
				for k := 0; k < j%7; k++ {
					t1 = append(t1, sop(opLoad, rRealB, 41, 0, 1))
				}
			}
		}
		var ops [][]byte
		for i := 0; i < len(t0) || i < len(t1); i++ {
			if i < len(t0) {
				ops = append(ops, t0[i])
			} else {
				ops = append(ops, sop(opLoad, rRealB, 40, 0, 1))
			}
			if i < len(t1) {
				ops = append(ops, t1[i])
			} else {
				ops = append(ops, sop(opLoad, rRealB, 41, 0, 1))
			}
		}
		ss = append(ss, scenario{
			name:  "sibling-migration",
			race:  "sibling snoop held an extracted dirty line across a sleep",
			tiles: 2, scale: 64, ops: script(ops...),
		})
	}

	// 6. Miss fill vs. mid-flight revocation: one tile load-misses on
	// lines the other is superseding with NT stores and remote adds, so
	// fills can arrive after the directory revoked the requester. Guards
	// the dirStillGrants fix: a fill whose grant was revoked mid-install
	// must be dropped and retried, not kept.
	{
		var ops [][]byte
		for i := 0; i < 10; i++ {
			l := i % 4
			ops = append(ops,
				sop(opLoadLine, rRealA, l, 0, 1),                // tile 0
				sop(opStoreLineNT, rRealA, l, 0, byte(1+i)),     // tile 1
				sop(opLoad, rRealA, l, i%8, 1),                  // tile 0
				sop(opRemoteAdd, rRealA, l, (i+1)%8, byte(7+i)), // tile 1
			)
		}
		ops = append(ops, sop(opDrain, 0, 0, 0, 1), sop(opDrain, 0, 0, 0, 1))
		ss = append(ss, scenario{
			name:  "miss-vs-revoke",
			race:  "a miss fill was kept after the directory revoked it mid-install",
			tiles: 2, scale: 32, ops: script(ops...), realMorph: true,
		})
	}

	return ss
}

// ExploreConfig bounds an exploration.
type ExploreConfig struct {
	// Scenario restricts the run to scenarios whose name contains this
	// substring; empty runs all of them.
	Scenario string
	// MaxRuns caps schedules tried per scenario (including the default
	// schedule). 0 means DefaultExploreConfig's value.
	MaxRuns int
	// Horizon is how many post-setup choice points may branch; choices
	// beyond it always take the default. 0 means the default.
	Horizon int
	// MaxBranch caps the alternatives tried at one choice point. 0
	// means the default.
	MaxBranch int
	// CheckEvery is the oracle invariant period in hierarchy events.
	CheckEvery int
	// Workers is the number of schedules evaluated concurrently. Every
	// schedule is an independent simulation, so the explorer evaluates
	// each breadth-first generation as a parallel batch and then replays
	// the sequential bookkeeping over the memoized results — the run
	// count, expansion order, and findings are byte-identical to
	// Workers ≤ 1 (which evaluates inline, exactly the sequential
	// explorer). 0/1 means sequential.
	Workers int
	// TilePar partitions each schedule's event kernel into tile-sharded
	// queues (TraceConfig.TilePar); results are byte-identical at every
	// width. 0 inherits the process default.
	TilePar int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultExploreConfig bounds a full sweep to a few seconds (each
// scenario run is ~1-2ms, so the budget is schedules, not wall clock).
func DefaultExploreConfig() ExploreConfig {
	return ExploreConfig{MaxRuns: 250, Horizon: 96, MaxBranch: 3, CheckEvery: 32}
}

// Finding is one schedule that broke the model.
type Finding struct {
	Scenario string
	Schedule []int // choice prefix to replay the failure
	Err      string
}

// ExploreResult summarizes an exploration sweep.
type ExploreResult struct {
	Scenarios []string
	Runs      int
	// ChoicePoints is the largest number of armed choice points seen in
	// one run (a feel for how much scheduling freedom the sweep had).
	ChoicePoints int
	Findings     []Finding
}

// Explore runs each selected scenario under its default schedule and
// then under systematically perturbed ones: breadth-first over choice
// prefixes, flipping one choice at a time within the horizon, expanding
// passing schedules until the per-scenario run budget is spent. Any
// schedule that panics, violates an invariant, or disagrees with the
// reference model is reported as a Finding.
func Explore(cfg ExploreConfig) (*ExploreResult, error) {
	def := DefaultExploreConfig()
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = def.MaxRuns
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = def.Horizon
	}
	if cfg.MaxBranch <= 0 {
		cfg.MaxBranch = def.MaxBranch
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = def.CheckEvery
	}
	res := &ExploreResult{}
	for _, sc := range Scenarios() {
		if cfg.Scenario != "" && !strings.Contains(sc.name, cfg.Scenario) {
			continue
		}
		res.Scenarios = append(res.Scenarios, sc.name)
		if cfg.Logf != nil {
			cfg.Logf("explore %s: %s", sc.name, sc.race)
		}
		runs, cps, findings := exploreScenario(sc, cfg)
		res.Runs += runs
		if cps > res.ChoicePoints {
			res.ChoicePoints = cps
		}
		res.Findings = append(res.Findings, findings...)
		if cfg.Logf != nil {
			cfg.Logf("explore %s: %d schedules, %d findings", sc.name, runs, len(findings))
		}
	}
	if len(res.Scenarios) == 0 {
		return nil, fmt.Errorf("oracle: no scenario matches %q", cfg.Scenario)
	}
	return res, nil
}

// exploreScenario searches one scenario's schedule tree breadth-first.
// Each frontier entry is a choice prefix; prefixes are unique by
// construction (every explicit prefix ends in a nonzero choice at a
// position its parent had not branched), so no dedup set is needed.
//
// A schedule's outcome is a pure function of its prefix, so with
// cfg.Workers > 1 each breadth-first generation — the runnable slice of
// the current frontier — is evaluated as one parallel batch, and the
// loop below then consumes the memoized results in the original
// sequential order. Only runSchedule moves off-thread; every counter,
// expansion, and finding is appended by this goroutine exactly as the
// sequential explorer would, so the full ExploreResult is byte-identical
// at any worker count (TestExploreParallelMatchesSequential pins this).
func exploreScenario(sc scenario, cfg ExploreConfig) (runs, maxCPs int, findings []Finding) {
	frontier := [][]int{nil}
	var batch []*schedChooser
	var batchFail []string
	batched := 0 // results of the current generation already consumed
	for len(frontier) > 0 && runs < cfg.MaxRuns {
		if batched == len(batch) {
			// Evaluate the next generation: every frontier entry the run
			// budget still admits.
			n := len(frontier)
			if rem := cfg.MaxRuns - runs; n > rem {
				n = rem
			}
			batch = make([]*schedChooser, n)
			batchFail = make([]string, n)
			batched = 0
			runBatch(n, cfg.Workers, func(i int) {
				ch := &schedChooser{prefix: frontier[i]}
				batch[i] = ch
				batchFail[i] = runSchedule(sc, cfg, ch)
			})
		}
		prefix := frontier[0]
		frontier = frontier[1:]
		ch, failure := batch[batched], batchFail[batched]
		batched++
		runs++
		if n := len(ch.arity); n > maxCPs {
			maxCPs = n
		}
		if failure != "" {
			findings = append(findings, Finding{
				Scenario: sc.name,
				Schedule: append([]int(nil), ch.taken...),
				Err:      failure,
			})
			if cfg.Logf != nil {
				cfg.Logf("explore %s: FAILED schedule %v: %s", sc.name, trimSchedule(ch.taken), failure)
			}
			continue // don't expand a failing schedule
		}
		// Expand: branch each not-yet-branched choice point within the
		// horizon. The budget check keeps the frontier from outgrowing
		// what we can ever run.
		lim := min(len(ch.arity), cfg.Horizon)
		for i := len(prefix); i < lim && runs+len(frontier) < cfg.MaxRuns; i++ {
			alts := ch.arity[i] - 1
			if alts > cfg.MaxBranch {
				alts = cfg.MaxBranch
			}
			for c := 1; c <= alts && runs+len(frontier) < cfg.MaxRuns; c++ {
				np := append(append([]int(nil), ch.taken[:i]...), c)
				frontier = append(frontier, np)
			}
		}
	}
	return runs, maxCPs, findings
}

// runBatch runs fn(0..n-1) on up to w concurrent goroutines (inline in
// index order when w ≤ 1, matching the sequential explorer exactly).
func runBatch(n, w int, fn func(i int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// runSchedule executes one scenario under one schedule and returns a
// non-empty description if the run failed.
func runSchedule(sc scenario, cfg ExploreConfig, ch *schedChooser) string {
	tc := TraceConfig{
		Tiles:         sc.tiles,
		CacheScale:    sc.scale,
		CheckEvery:    cfg.CheckEvery,
		Script:        sc.ops,
		Chooser:       ch,
		RecoverPanics: true,
		RealMorph:     sc.realMorph,
		TilePar:       cfg.TilePar,
	}
	res, err := RunTrace(tc)
	if err != nil {
		return err.Error()
	}
	if err := res.Oracle.Err(); err != nil {
		return err.Error()
	}
	return ""
}

// trimSchedule drops the trailing default choices from a recorded
// schedule for readable logs (replaying a short prefix reproduces it).
func trimSchedule(s []int) []int {
	n := len(s)
	for n > 0 && s[n-1] == 0 {
		n--
	}
	return s[:n]
}
