package dram

import (
	"testing"

	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/sim"
)

func newDRAM(cfg Config) (*sim.Kernel, *DRAM, *energy.Meter) {
	k := sim.NewKernel()
	meter := energy.NewMeter()
	d := New(k, cfg, mem.NewMemory(), meter)
	return k, d, meter
}

func TestReadLatency(t *testing.T) {
	k, d, _ := newDRAM(DefaultConfig())
	var l mem.Line
	f := d.ReadLine(0x1000, &l)
	k.Run()
	if !f.Done() || f.When() != 100 {
		t.Fatalf("read completed at %d, want 100", f.When())
	}
}

func TestDataRoundTrip(t *testing.T) {
	k, d, _ := newDRAM(DefaultConfig())
	var w mem.Line
	w.SetWord(0, 0xabcd)
	d.WriteLine(0x40, &w)
	var r mem.Line
	d.ReadLine(0x40, &r)
	k.Run()
	if r.Word(0) != 0xabcd {
		t.Fatalf("readback = %x", r.Word(0))
	}
}

func TestBandwidthSerializesOneController(t *testing.T) {
	cfg := Config{Controllers: 1, Latency: 100, CyclesPerLine: 13}
	k, d, _ := newDRAM(cfg)
	var l mem.Line
	f1 := d.ReadLine(0x00, &l)
	f2 := d.ReadLine(0x40, &l)
	f3 := d.ReadLine(0x80, &l)
	k.Run()
	if f1.When() != 100 || f2.When() != 113 || f3.When() != 126 {
		t.Fatalf("completion times %d %d %d, want 100 113 126",
			f1.When(), f2.When(), f3.When())
	}
	if d.StallCycles != 13+26 {
		t.Fatalf("stall cycles = %d, want 39", d.StallCycles)
	}
}

func TestInterleavingSpreadsControllers(t *testing.T) {
	k, d, _ := newDRAM(DefaultConfig())
	var l mem.Line
	// Four consecutive lines hit four different controllers: all
	// complete at the unloaded latency.
	var futs []*sim.Future
	for i := 0; i < 4; i++ {
		futs = append(futs, d.ReadLine(mem.Addr(i*64), &l))
	}
	k.Run()
	for i, f := range futs {
		if f.When() != 100 {
			t.Fatalf("line %d completed at %d, want 100 (parallel ctrls)", i, f.When())
		}
	}
	for i, n := range d.PerCtrl {
		if n != 1 {
			t.Fatalf("controller %d served %d, want 1", i, n)
		}
	}
}

func TestEnergyAndStats(t *testing.T) {
	k, d, meter := newDRAM(DefaultConfig())
	var l mem.Line
	d.ReadLine(0, &l)
	d.WriteLine(64, &l)
	k.Run()
	if d.Reads != 1 || d.Writes != 1 || d.Accesses() != 2 {
		t.Fatalf("reads=%d writes=%d", d.Reads, d.Writes)
	}
	if meter.Count(energy.DRAMAccess) != 2 {
		t.Fatalf("dram energy events = %d", meter.Count(energy.DRAMAccess))
	}
	if meter.Count(energy.NVMWrite) != 0 {
		t.Fatal("non-NVM write charged NVM energy")
	}
}

func TestNVMAccounting(t *testing.T) {
	k, d, meter := newDRAM(DefaultConfig())
	r := mem.Region{Name: "nvm", Base: 0x1000, Size: 4096}
	d.MarkNVM(r)
	var l mem.Line
	d.WriteLine(0x1000, &l)
	d.WriteLine(0x0040, &l) // volatile
	k.Run()
	if meter.Count(energy.NVMWrite) != 1 {
		t.Fatalf("nvm writes = %d, want 1", meter.Count(energy.NVMWrite))
	}
	if !d.Persisted(0x1008) {
		t.Fatal("NVM line not marked persisted")
	}
	if d.Persisted(0x0040) {
		t.Fatal("volatile line marked persisted")
	}
	if !d.IsNVM(0x1fff) || d.IsNVM(0x2000) {
		t.Fatal("IsNVM bounds wrong")
	}
}

func TestPhaseBreakdown(t *testing.T) {
	k, d, _ := newDRAM(DefaultConfig())
	var l mem.Line
	d.SetPhase("edge")
	d.ReadLine(0, &l)
	d.ReadLine(64, &l)
	d.SetPhase("vertex")
	d.WriteLine(128, &l)
	k.Run()
	if d.PhaseAccesses["edge"] != 2 || d.PhaseAccesses["vertex"] != 1 {
		t.Fatalf("phase accesses = %v", d.PhaseAccesses)
	}
	if d.Phase() != "vertex" {
		t.Fatalf("phase = %q", d.Phase())
	}
}
