package morphs

import (
	"fmt"

	"tako/internal/core"
	"tako/internal/cpu"
	"tako/internal/engine"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/system"
)

// LayoutVariant selects an implementation of the array-of-structs →
// struct-of-arrays study. The paper mentions this Morph when motivating
// trrîp (§5.2): "in a simple Morph that maps array-of-structs to
// struct-of-arrays, we have observed speedup of > 4×". The workload
// makes several passes summing one field of a large struct array.
type LayoutVariant string

// Layout variants.
const (
	LayoutBaseline LayoutVariant = "baseline"  // scan the AoS directly every pass
	LayoutGather   LayoutVariant = "sw-gather" // software pre-packs the field first
	LayoutTako     LayoutVariant = "tako"      // phantom SoA view; onMiss gathers
	LayoutIdeal    LayoutVariant = "ideal"     // täkō with the idealized engine
)

// AllLayoutVariants lists the comparison order.
var AllLayoutVariants = []LayoutVariant{LayoutBaseline, LayoutGather, LayoutTako, LayoutIdeal}

// LayoutParams sizes the study: N structs of StructWords 64-bit fields;
// the AoS must exceed the LLC while the packed field array fits it.
type LayoutParams struct {
	Structs     int
	StructWords int
	Field       int
	Passes      int
	Tiles       int
	Seed        int64
}

// DefaultLayoutParams returns the study configuration: a 4 MB AoS versus
// a 512 KB packed field on a 4-tile (2 MB LLC) machine.
func DefaultLayoutParams() LayoutParams {
	return LayoutParams{
		Structs:     64 * 1024,
		StructWords: mem.WordsPerLine, // one struct per line: worst-case AoS
		Field:       3,
		Passes:      3,
		Tiles:       4,
		Seed:        5,
	}
}

type layoutView struct{ base mem.Addr }

// RunLayout executes one variant, verifying every pass's field sum.
// Runs are memoized under the run cache when enabled (SetRunCache).
func RunLayout(v LayoutVariant, prm LayoutParams) (Result, error) {
	return cachedRun("layout", string(v), prm, func() (Result, error) {
		return runLayout(v, prm)
	})
}

func runLayout(v LayoutVariant, prm LayoutParams) (Result, error) {
	cfg := system.Default(prm.Tiles)
	if v == LayoutBaseline || v == LayoutGather {
		cfg.NoTako = true
	}
	if v == LayoutIdeal {
		cfg.Engine = engine.IdealConfig()
	}
	s := system.New(cfg)

	aos := s.Alloc("aos", uint64(prm.Structs*prm.StructWords)*8)
	fieldAddr := func(i int) mem.Addr {
		return aos.Word(uint64(i*prm.StructWords + prm.Field))
	}
	var wantSum uint64
	for i := 0; i < prm.Structs; i++ {
		val := uint64(i)*2654435761 + 17 // deterministic, non-trivial
		s.H.DRAM.Store().WriteU64(fieldAddr(i), val)
		wantSum += val
	}

	var gotSums []uint64
	var runErr error
	var handles []*cpu.LoadHandle
	sumPass := func(p *sim.Proc, c *cpu.Core, addrOf func(i int) mem.Addr) {
		var sum uint64
		for i := 0; i < prm.Structs; i++ {
			c.Compute(p, 1)
			handles = append(handles, c.LoadAsyncV(p, addrOf(i)))
		}
		c.Drain(p)
		for _, h := range handles {
			sum += h.Value
		}
		handles = handles[:0]
		gotSums = append(gotSums, sum)
	}

	switch v {
	case LayoutBaseline:
		s.Go(0, "scan", func(p *sim.Proc, c *cpu.Core) {
			for pass := 0; pass < prm.Passes; pass++ {
				sumPass(p, c, fieldAddr)
			}
		})

	case LayoutGather:
		packed := s.Alloc("packed", uint64(prm.Structs)*8)
		s.Go(0, "scan", func(p *sim.Proc, c *cpu.Core) {
			// Pre-pack the field, then scan the dense copy.
			for i := 0; i < prm.Structs; i += mem.WordsPerLine {
				var line mem.Line
				for j := 0; j < mem.WordsPerLine; j++ {
					line.SetWord(j, c.Load(p, fieldAddr(i+j)))
					c.Compute(p, 1)
				}
				c.StoreLine(p, packed.Word(uint64(i)), &line)
			}
			for pass := 0; pass < prm.Passes; pass++ {
				sumPass(p, c, func(i int) mem.Addr { return packed.Word(uint64(i)) })
			}
		})

	case LayoutTako, LayoutIdeal:
		spec := core.MorphSpec{
			Name: "aos-to-soa",
			// onMiss gathers the field for the 8 structs this phantom
			// line covers (8 strided loads + packing).
			OnMiss: &core.Callback{
				Instrs: 18, CritPath: 5,
				Fn: func(ctx *engine.Ctx) {
					first := int((ctx.Addr - ctx.View().(*layoutView).base) / 8)
					for j := 0; j < mem.WordsPerLine; j++ {
						ctx.Line.SetWord(j, ctx.LoadWord(fieldAddr(first+j)))
					}
				},
			},
			NewView: func(tile int) interface{} { return &layoutView{} },
		}
		s.Go(0, "scan", func(p *sim.Proc, c *cpu.Core) {
			m, err := s.Tako.RegisterPhantom(p, spec, core.Shared, uint64(prm.Structs)*8, 0)
			if err != nil {
				runErr = err
				return
			}
			for i := 0; i < s.H.Tiles(); i++ {
				m.View(i).(*layoutView).base = m.Region.Base
			}
			for pass := 0; pass < prm.Passes; pass++ {
				sumPass(p, c, func(i int) mem.Addr { return m.Region.Word(uint64(i)) })
			}
			s.Tako.Unregister(p, m)
		})

	default:
		return Result{}, fmt.Errorf("unknown layout variant %q", v)
	}

	cycles := s.Run()
	if runErr != nil {
		return Result{}, runErr
	}
	if len(gotSums) != prm.Passes {
		return Result{}, fmt.Errorf("%s: %d passes ran, want %d", v, len(gotSums), prm.Passes)
	}
	for pass, sum := range gotSums {
		if sum != wantSum {
			return Result{}, fmt.Errorf("%s pass %d: sum %d, want %d", v, pass, sum, wantSum)
		}
	}
	return collect(s, "layout", string(v), cycles), nil
}

// RunLayoutAll runs every variant of the AoS→SoA study, fanning
// independent variants across the scheduler's workers.
func RunLayoutAll(prm LayoutParams) (map[LayoutVariant]Result, error) {
	return runAllVariants(AllLayoutVariants, func(v LayoutVariant) (Result, error) {
		return RunLayout(v, prm)
	})
}
