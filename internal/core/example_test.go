package core_test

import (
	"fmt"

	"tako/internal/core"
	"tako/internal/cpu"
	"tako/internal/engine"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/system"
)

// Example demonstrates the täkō programming model end to end: register a
// Morph whose onMiss defines the contents of a phantom address range,
// read through it (misses invoke the callback, hits are free), then
// flush and unregister.
func Example() {
	s := system.New(system.Default(2))

	doubler := core.MorphSpec{
		Name: "doubler",
		OnMiss: &core.Callback{
			Instrs: 6, CritPath: 3,
			Fn: func(ctx *engine.Ctx) {
				base := ctx.View().(*exampleView).base
				first := uint64(ctx.Addr-base) / 8
				for i := 0; i < mem.WordsPerLine; i++ {
					ctx.Line.SetWord(i, 2*(first+uint64(i)))
				}
			},
		},
		NewView: func(tile int) interface{} { return &exampleView{} },
	}

	s.Go(0, "main", func(p *sim.Proc, c *cpu.Core) {
		m, err := s.Tako.RegisterPhantom(p, doubler, core.Private, 4096, 0)
		if err != nil {
			panic(err)
		}
		m.View(0).(*exampleView).base = m.Region.Base

		fmt.Println("doubler[21] =", c.Load(p, m.Region.Word(21)))
		fmt.Println("doubler[21] =", c.Load(p, m.Region.Word(21)), "(cache hit)")

		s.Tako.FlushData(p, m)
		s.Tako.Unregister(p, m)
	})
	s.Run()

	// Output:
	// doubler[21] = 42
	// doubler[21] = 42 (cache hit)
}

type exampleView struct{ base mem.Addr }
