package sim

import (
	"fmt"
	"runtime/debug"
)

// Proc is a simulated software thread. Procs run as goroutines, but the
// kernel admits only one at a time: when a Proc blocks (Sleep, Wait), it
// parks its goroutine and control returns to the kernel's event loop.
//
// Finished Procs are pooled: their goroutines park on the resume channel
// and the next Go/GoArgs reuses the whole structure (struct, channels,
// goroutine) instead of allocating. This is safe because every park has
// exactly one wake scheduled (Sleep, Future completion, Semaphore
// handoff, WaitGroup drain, Barrier release), so no stale wake event can
// ever target a recycled Proc. Kernel.Release tears idle pool goroutines
// down when a run is over.
//
// All Proc methods must be called from the Proc's own goroutine (i.e.,
// inside the function passed to Kernel.Go), except Done.
type Proc struct {
	k       *Kernel
	name    string
	shard   int // queue affinity on a partitioned kernel (0 otherwise)
	resume  chan struct{}
	parked  chan struct{}
	started bool
	done    bool
	exit    bool // set by Kernel.Release to retire the pooled goroutine
	abort   bool // set by Kernel.Shutdown: block() unwinds the task

	// Task slots: exactly one of fn/fnArgs is set while the proc runs.
	// They live on the Proc so a pooled goroutine picks up its next task
	// without a per-spawn closure; fnArgs carries two scalar arguments so
	// hot spawn sites (prefetches, writeback timing) can share one
	// long-lived function value instead of closing over their operands.
	fn     func(*Proc)
	fnArgs func(*Proc, uint64, uint64)
	a0, a1 uint64
}

// Go creates a simulated process named name running fn, and schedules it
// to start at the current cycle. fn runs on its own goroutine; it blocks
// the simulation only while actively computing between blocking calls.
// On a partitioned kernel the process inherits the shard affinity of the
// event that spawned it; use GoOn to pin it explicitly.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	return k.GoOn(k.cur, name, fn)
}

// GoOn is Go with an explicit shard affinity: the process's wake events
// live in queue shard of a partitioned kernel (system drivers pin each
// tile's threads to that tile's queue). Out-of-range shards — including
// any shard on an unpartitioned kernel — fall back to queue 0.
func (k *Kernel) GoOn(shard int, name string, fn func(p *Proc)) *Proc {
	p := k.spawn(shard, name)
	p.fn = fn
	k.scheduleStart(p)
	return p
}

// GoArgs is Go for allocation-sensitive spawn sites: fn is a shared,
// long-lived function value and a0/a1 carry the operands, so issuing a
// process allocates nothing once the proc pool is warm.
func (k *Kernel) GoArgs(name string, fn func(p *Proc, a0, a1 uint64), a0, a1 uint64) *Proc {
	p := k.spawn(k.cur, name)
	p.fnArgs, p.a0, p.a1 = fn, a0, a1
	k.scheduleStart(p)
	return p
}

// spawn returns a ready-to-start Proc pinned to shard, recycling a
// pooled one when available. Recycled procs are already in k.procs;
// fresh ones are appended and their worker goroutine started.
func (k *Kernel) spawn(shard int, name string) *Proc {
	shard = k.shardFor(shard)
	if n := len(k.freeProcs); n > 0 {
		p := k.freeProcs[n-1]
		k.freeProcs[n-1] = nil
		k.freeProcs = k.freeProcs[:n-1]
		p.name = name
		p.shard = shard
		p.started, p.done = false, false
		return p
	}
	p := &Proc{
		k:      k,
		name:   name,
		shard:  shard,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	go p.loop()
	return p
}

// scheduleStart queues the proc's first dispatch at the current cycle,
// carried directly on the event (no closure).
func (k *Kernel) scheduleStart(p *Proc) {
	k.seq++
	k.push(p.shard, event{when: k.now, seq: k.seq, proc: p, start: true})
}

// loop is the pooled worker body: run a task, return to the free list,
// park for the next one. The free-list append is safe without locking
// because the kernel goroutine is blocked in dispatch (on p.parked) for
// the whole time the proc runs.
func (p *Proc) loop() {
	for {
		<-p.resume
		if p.exit {
			return
		}
		p.runTask()
		p.fn, p.fnArgs = nil, nil
		p.done = true
		p.k.freeProcs = append(p.k.freeProcs, p)
		p.parked <- struct{}{}
	}
}

// ProcPanic wraps a panic raised on a Proc's goroutine. Procs run on
// goroutines of their own, where an escaped panic would kill the whole
// process unrecoverably; the worker loop captures it instead, and
// dispatch re-raises the wrapped value on the kernel goroutine, where
// drivers (tests, the interleaving explorer) can recover it. The
// panicking goroutine's stack is preserved for crash reports.
type ProcPanic struct {
	Proc  string // name of the panicking process
	Value any    // the original panic value
	Stack []byte // stack of the panicking goroutine at capture
}

func (e *ProcPanic) Error() string {
	return fmt.Sprintf("panic in proc %q: %v\n\n%s", e.Proc, e.Value, e.Stack)
}

// procAbort is the sentinel block() throws during Kernel.Shutdown to
// unwind a parked task; runTask swallows it.
type procAbort struct{}

// runTask runs the proc's task, converting an escaping panic into a
// captured ProcPanic for dispatch to re-raise.
func (p *Proc) runTask() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(procAbort); ok {
				return
			}
			p.k.procPanic = &ProcPanic{Proc: p.name, Value: r, Stack: debug.Stack()}
		}
	}()
	if p.fn != nil {
		p.fn(p)
	} else {
		p.fnArgs(p, p.a0, p.a1)
	}
}

// dispatch hands control to the process and waits for it to park or
// finish. Must be called from the kernel's event loop. A panic captured
// while the process ran is re-raised here, on the kernel goroutine.
func (p *Proc) dispatch() {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.parked
	if pp := p.k.procPanic; pp != nil {
		p.k.procPanic = nil
		panic(pp)
	}
}

// block parks the calling process until something dispatches it again.
func (p *Proc) block() {
	p.parked <- struct{}{}
	<-p.resume
	if p.abort {
		panic(procAbort{})
	}
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated cycle.
func (p *Proc) Now() Cycle { return p.k.now }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep advances the process by d cycles of simulated time.
func (p *Proc) Sleep(d Cycle) {
	p.k.wakeAfter(d, p)
	p.block()
}

// Wait blocks the process until f completes. If f is already complete it
// returns immediately without advancing time.
func (p *Proc) Wait(f *Future) {
	if f.done {
		return
	}
	if f.waiters == nil {
		f.waiters = f.k.getWaiters()
	}
	f.waiters = append(f.waiters, p)
	p.block()
}

// Future is a one-shot completion signal that processes can Wait on and
// events can Watch.
type Future struct {
	k       *Kernel
	done    bool
	pooled  bool // from Kernel.GetFuture: recyclable once complete
	when    Cycle
	waiters []*Proc
	watches []func()
}

// NewFuture returns an incomplete future on kernel k.
func NewFuture(k *Kernel) *Future {
	return &Future{k: k}
}

// Complete marks the future done at the current cycle and wakes all
// waiters (in registration order, at the current cycle). Completing twice
// panics.
func (f *Future) Complete() {
	if f.done {
		panic("sim: future completed twice")
	}
	f.done = true
	f.when = f.k.now
	for _, p := range f.waiters {
		f.k.wakeAfter(0, p)
	}
	f.k.putWaiters(f.waiters)
	f.waiters = nil
	for _, fn := range f.watches {
		f.k.After(0, fn)
	}
	f.watches = nil
}

// CompleteAt schedules the future to complete at absolute cycle t.
func (f *Future) CompleteAt(t Cycle) {
	f.k.completeAt(t, f)
}

// Done reports whether the future has completed.
func (f *Future) Done() bool { return f.done }

// When returns the cycle at which the future completed; valid only if
// Done.
func (f *Future) When() Cycle { return f.when }

// Watch registers fn to run (as an event) when the future completes. If
// the future is already complete, fn is scheduled immediately.
func (f *Future) Watch(fn func()) {
	if f.done {
		f.k.After(0, fn)
		return
	}
	f.watches = append(f.watches, fn)
}

// CompletedFuture returns an already-completed future, useful for
// zero-latency fast paths.
func CompletedFuture(k *Kernel) *Future {
	return &Future{k: k, done: true, when: k.now}
}

// WaitAll blocks the process until every future in fs is complete.
func (p *Proc) WaitAll(fs ...*Future) {
	for _, f := range fs {
		p.Wait(f)
	}
}
