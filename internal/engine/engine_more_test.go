package engine

import (
	"testing"

	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/sim"
)

func TestBitstreamCacheEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BitstreamSlots = 1
	spec := Spec{Cost: CallbackCost{Instrs: 1, CritPath: 1}, Fn: func(*Ctx) {}}
	k, e := setup(cfg, spec)
	var line mem.Line
	// Two morphs alternate: each reuse evicts the other's bitstream.
	b1 := hier.Binding{MorphID: 1, Level: hier.LevelPrivate, HasMiss: true}
	b2 := hier.Binding{MorphID: 2, Level: hier.LevelPrivate, HasMiss: true}
	for i := 0; i < 3; i++ {
		e.Run(0, hier.CbMiss, b1, mem.Addr(0x1000+i*64), &line)
		k.Run()
		e.Run(0, hier.CbMiss, b2, mem.Addr(0x8000+i*64), &line)
		k.Run()
	}
	if got := e.Stats(0).BitLoads; got != 6 {
		t.Fatalf("bitstream loads = %d, want 6 (thrash with 1 slot)", got)
	}
}

func TestTotalStatsAggregates(t *testing.T) {
	spec := Spec{Cost: CallbackCost{Instrs: 5, CritPath: 2}, Fn: func(*Ctx) {}}
	k, e := setup(DefaultConfig(), spec)
	var line mem.Line
	e.Run(0, hier.CbMiss, binding(), 0x1000, &line)
	e.Run(1, hier.CbMiss, binding(), 0x2000, &line)
	k.Run()
	total := e.TotalStats()
	if total.Callbacks != 2 || total.Instrs != 10 {
		t.Fatalf("total stats: %+v", total)
	}
}

func TestFabricOccupancyContention(t *testing.T) {
	// Two concurrent callbacks with heavy instruction counts contend
	// for issue bandwidth: the second finishes later than it would
	// alone even though the callback buffer admits both.
	cfg := DefaultConfig()
	cfg.BitstreamLoad = 0
	heavy := Spec{Cost: CallbackCost{Instrs: 150, CritPath: 2}, Fn: func(*Ctx) {}}
	k, e := setup(cfg, heavy)
	var line mem.Line
	_, d1 := e.Run(0, hier.CbMiss, binding(), 0x1000, &line)
	_, d2 := e.Run(0, hier.CbMiss, binding(), 0x2000, &line)
	k.Run()
	// occupancy = ceil(150/15) = 10 cycles each; one callback's issue
	// window queues behind the other's.
	last := d1.When()
	if d2.When() > last {
		last = d2.When()
	}
	if d1.When() == d2.When() {
		t.Fatalf("no fabric contention: both finished at %d", d1.When())
	}

	// Alone, the same callback completes in its own occupancy.
	k2, e2 := setup(cfg, heavy)
	_, alone := e2.Run(0, hier.CbMiss, binding(), 0x1000, &line)
	k2.Run()
	if last <= alone.When() {
		t.Fatalf("contended (%d) should exceed uncontended (%d)", last, alone.When())
	}
}

func TestViewPlumbedToCallback(t *testing.T) {
	type vstate struct{ n int }
	spec := Spec{
		Cost: CallbackCost{Instrs: 1, CritPath: 1},
		Fn: func(ctx *Ctx) {
			if v, ok := ctx.View().(*vstate); ok {
				v.n++
			}
		},
	}
	k := sim.NewKernel()
	prog := &fakeProg{spec: spec, views: map[int]interface{}{0: &vstate{}}}
	e := New(k, DefaultConfig(), 1, prog, nil)
	h := hier.New(k, hier.DefaultConfig(1), nil, nil, nil)
	e.AttachHierarchy(h)
	var line mem.Line
	e.Run(0, hier.CbMiss, binding(), 0x1000, &line)
	e.Run(0, hier.CbMiss, binding(), 0x2000, &line)
	k.Run()
	if prog.views[0].(*vstate).n != 2 {
		t.Fatalf("view state n = %d", prog.views[0].(*vstate).n)
	}
}

func TestConfigGeometry(t *testing.T) {
	c := DefaultConfig()
	if c.IntPEs() != 15 {
		t.Fatalf("int PEs = %d, want 15", c.IntPEs())
	}
	if c.TotalInstrSlots() != 400 {
		t.Fatalf("instr slots = %d, want 400 (Table 2)", c.TotalInstrSlots())
	}
	if c.TotalTokenSlots() != 200 {
		t.Fatalf("token slots = %d, want 200", c.TotalTokenSlots())
	}
	tiny := Config{FabricW: 1, FabricH: 1, MemPEs: 5}
	if tiny.IntPEs() != 1 {
		t.Fatal("IntPEs should floor at 1")
	}
}
