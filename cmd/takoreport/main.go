// Command takoreport regenerates every table and figure of the paper's
// evaluation, printing each and optionally writing a combined report.
//
// Usage:
//
//	takoreport [-full] [-out report.txt] [-skip fig25,fig22]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tako/internal/exp"
)

func main() {
	var (
		full = flag.Bool("full", false, "run at full (slow) scale")
		out  = flag.String("out", "", "also write the report to this file")
		skip = flag.String("skip", "", "comma-separated experiment ids to skip")
	)
	flag.Parse()

	skipped := map[string]bool{}
	for _, id := range strings.Split(*skip, ",") {
		if id != "" {
			skipped[id] = true
		}
	}

	var report strings.Builder
	emit := func(format string, args ...interface{}) {
		s := fmt.Sprintf(format, args...)
		fmt.Print(s)
		report.WriteString(s)
	}

	emit("täkō reproduction report — every table and figure of the evaluation\n")
	emit("scale: quick=%v\n\n", !*full)
	failures := 0
	for _, e := range exp.All() {
		if skipped[e.ID] {
			emit("== %s: SKIPPED ==\n\n", e.ID)
			continue
		}
		emit("== %s: %s ==\npaper: %s\n", e.ID, e.Title, e.Paper)
		start := time.Now()
		tbl, err := e.Run(!*full)
		if err != nil {
			emit("ERROR: %v\n\n", err)
			failures++
			continue
		}
		emit("%s(%s)\n\n", tbl.String(), time.Since(start).Round(time.Millisecond))
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "takoreport: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "takoreport: %d experiments failed\n", failures)
		os.Exit(1)
	}
}
