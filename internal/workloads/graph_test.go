package workloads

import (
	"math/rand"
	"reflect"
	"testing"
)

// Reference adjacency-list generators: the pre-streaming implementations,
// kept verbatim so the two-pass CSR builders are pinned byte-identical to
// the graphs every existing golden was produced with.

func refFromAdjacency(adj [][]uint64) *Graph {
	v := len(adj)
	g := &Graph{V: v, Offsets: make([]uint64, v+1)}
	for i, ns := range adj {
		g.Offsets[i+1] = g.Offsets[i] + uint64(len(ns))
		g.Neighbors = append(g.Neighbors, ns...)
	}
	g.E = len(g.Neighbors)
	return g
}

func refGenUniform(v, e int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]uint64, v)
	for i := 0; i < e; i++ {
		src := rng.Intn(v)
		dst := rng.Intn(v)
		adj[src] = append(adj[src], uint64(dst))
	}
	return refFromAdjacency(adj)
}

func refGenCommunity(v, e, communities int, pIntra float64, seed int64) *Graph {
	if communities < 1 {
		communities = 1
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(v)
	commOf := make([]int, v)
	members := make([][]int, communities)
	for i, p := range perm {
		c := i * communities / v
		commOf[p] = c
		members[c] = append(members[c], p)
	}
	adj := make([][]uint64, v)
	for i := 0; i < e; i++ {
		src := rng.Intn(v)
		var dst int
		if rng.Float64() < pIntra {
			m := members[commOf[src]]
			dst = m[rng.Intn(len(m))]
		} else {
			dst = rng.Intn(v)
		}
		adj[src] = append(adj[src], uint64(dst))
	}
	return refFromAdjacency(adj)
}

func refSymmetrize(g *Graph) *Graph {
	adj := make([][]uint64, g.V)
	for src := 0; src < g.V; src++ {
		for _, d := range g.Neigh(src) {
			adj[src] = append(adj[src], d)
			adj[int(d)] = append(adj[int(d)], uint64(src))
		}
	}
	return refFromAdjacency(adj)
}

func sameGraph(t *testing.T, got, want *Graph, what string) {
	t.Helper()
	if got.V != want.V || got.E != want.E {
		t.Fatalf("%s: shape (%d,%d) != reference (%d,%d)", what, got.V, got.E, want.V, want.E)
	}
	if !reflect.DeepEqual(got.Offsets, want.Offsets) {
		t.Fatalf("%s: offsets differ from reference", what)
	}
	if len(got.Neighbors) != len(want.Neighbors) {
		t.Fatalf("%s: neighbor count differs", what)
	}
	for i := range got.Neighbors {
		if got.Neighbors[i] != want.Neighbors[i] {
			t.Fatalf("%s: neighbor[%d] = %d, reference %d", what, i, got.Neighbors[i], want.Neighbors[i])
		}
	}
}

// TestStreamingGeneratorsByteIdentical pins the two-pass streaming CSR
// builders against the old adjacency-list implementations across seeds —
// every neighbor in the same position, so all graph-dependent goldens
// are untouched by the rewrite.
func TestStreamingGeneratorsByteIdentical(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		sameGraph(t, GenUniform(500, 4000, seed), refGenUniform(500, 4000, seed), "GenUniform")
		g := GenCommunity(600, 5000, 12, 0.85, seed)
		ref := refGenCommunity(600, 5000, 12, 0.85, seed)
		sameGraph(t, g, ref, "GenCommunity")
		sameGraph(t, Symmetrize(g), refSymmetrize(ref), "Symmetrize")
	}
}

// TestGeneratorAllocsBounded is the alloc gate for the streaming
// rewrite: edge count must not show up as an allocation count. The old
// adjacency-list builder cost thousands of appends per graph; the
// streaming builder allocates a fixed handful of arrays.
func TestGeneratorAllocsBounded(t *testing.T) {
	const v, e = 4096, 32768
	allocs := testing.AllocsPerRun(3, func() {
		GenUniform(v, e, 42)
	})
	// rng + deg + offsets + neighbors + cursors + a few rand internals.
	if allocs > 16 {
		t.Fatalf("GenUniform(%d,%d): %v allocs/run, want <= 16 (edge-proportional allocation?)", v, e, allocs)
	}
	g := GenUniform(v, e, 42)
	allocs = testing.AllocsPerRun(3, func() {
		Symmetrize(g)
	})
	if allocs > 8 {
		t.Fatalf("Symmetrize(%d,%d): %v allocs/run, want <= 8", v, e, allocs)
	}
}

// TestEdgeStream checks the lazy paper-scale graph: closed-form offsets
// and degrees must be consistent (offset deltas == degrees, total == E),
// destinations deterministic and in range.
func TestEdgeStream(t *testing.T) {
	for _, s := range []EdgeStream{
		{V: 7, E: 23, Seed: 1},
		{V: 1000, E: 16000, Seed: 99},
		{V: 8 << 20, E: 128 << 20, Seed: 2002}, // full-tier shape, O(1) memory
	} {
		probe := s.V
		if probe > 4096 {
			probe = 4096
		}
		var total uint64
		for v := 0; v < probe; v++ {
			if got := s.Offset(v+1) - s.Offset(v); got != uint64(s.OutDegree(v)) {
				t.Fatalf("V=%d v=%d: offset delta %d != degree %d", s.V, v, got, s.OutDegree(v))
			}
			total += uint64(s.OutDegree(v))
		}
		if probe == s.V && total != uint64(s.E) {
			t.Fatalf("V=%d: degree sum %d != E %d", s.V, total, s.E)
		}
		if got := s.Offset(s.V); got != uint64(s.E) {
			t.Fatalf("V=%d: Offset(V) = %d, want E = %d", s.V, got, s.E)
		}
		for _, i := range []uint64{0, 1, uint64(s.E) - 1, uint64(s.E) / 2} {
			d := s.Dst(i)
			if d >= uint64(s.V) {
				t.Fatalf("V=%d: Dst(%d) = %d out of range", s.V, i, d)
			}
			if d2 := s.Dst(i); d2 != d {
				t.Fatalf("V=%d: Dst(%d) nondeterministic", s.V, i)
			}
		}
	}
	// Destinations should be roughly uniform: over many draws no vertex
	// bucket should be empty at coarse granularity.
	s := EdgeStream{V: 16, E: 1 << 14, Seed: 5}
	var counts [16]int
	for i := uint64(0); i < uint64(s.E); i++ {
		counts[s.Dst(i)]++
	}
	for v, n := range counts {
		if n == 0 {
			t.Fatalf("dst bucket %d empty over %d edges", v, s.E)
		}
	}
}
