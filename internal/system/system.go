// Package system assembles a complete täkō machine: event kernel, energy
// meter, address space, cache hierarchy, engines, cores, and the täkō
// runtime, wired together per Table 3. Experiments and examples build a
// System, spawn software threads on its cores, and run the kernel.
package system

import (
	"fmt"

	"tako/internal/core"
	"tako/internal/cpu"
	"tako/internal/energy"
	"tako/internal/engine"
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/noc"
	"tako/internal/sim"
	"tako/internal/trace"
)

// Config selects the machine configuration.
type Config struct {
	Tiles  int
	Hier   hier.Config
	Engine engine.Config
	Core   cpu.Config
	// NoTako disables Morph support entirely (baseline machine): the
	// hierarchy runs with no registry or engines.
	NoTako bool
	// TilePar, when > 1, partitions the event kernel into tile-sharded
	// queues (min(TilePar, Tiles) tile queues plus a home queue for
	// shared/uncore events). Partitioning changes only where events are
	// stored — dispatch still merges all queues by the global
	// (cycle, sequence) key — so every simulated outcome is byte-identical
	// to TilePar ≤ 1 at any width; sim.TestPartitionedKernelMatchesSingleQueue
	// and exp.TestTileParMatchesSequential pin this. 0 means
	// DefaultTilePar(); 1 forces the single-queue kernel.
	TilePar int
	// Sharded hosts the machine on a sim.Sharded engine — one shard (its
	// own kernel and clock) per tile, cross-tile interactions carried by
	// lookahead-respecting messages — for real parallel speedup on a
	// single simulation. Baseline and täkō machines both shard: the Morph
	// registry is partitioned per tile, engines run on their tile's shard
	// kernel, and registration/flush/persist traffic rides the message
	// protocol. Unlike TilePar, which only re-buckets events under one
	// global clock, sharded execution changes the timing model: cross-tile
	// operations pay real message round trips, so cycle counts differ
	// from the classic engine. Results are still byte-identical across
	// ShardWorkers values (and to the sequenced schedule), which is what
	// the determinism battery pins.
	Sharded bool
	// ShardWorkers is the worker-goroutine count for a Sharded run.
	// ≤ 1 runs the deterministic sequenced schedule inline; n ≥ 2 runs n
	// workers with identical simulated results. Ignored unless Sharded.
	ShardWorkers int
	// FastForward, when > 0, runs the machine's first N core memory
	// accesses through the analytical fast-forward engine (hier/ff.go):
	// functionally exact execution against the backing store feeding a
	// reuse-distance collector, then warm-state seeding when the event
	// kernel switches on. Classic-kernel baseline (NoTako) machines
	// only; ignored (with full simulation instead) on täkō and sharded
	// machines. Warmup timing is estimated rather than simulated, so
	// cycle counts differ from a full run — default off, and
	// fast-forwarded configurations carry their own goldens.
	FastForward uint64
	// FFAuto lets fast-forward end as soon as the analytical per-level
	// miss ratios converge (two consecutive 1M-access chunks within
	// 0.5% absolute), bounded by FastForward (or a 256M-access cap when
	// FastForward is 0).
	FFAuto bool
}

// defaultTilePar is the package-wide default for Config.TilePar when a
// config leaves it 0, mirroring hier.SetVerifyDefaults: the -tile-par
// CLI flag sets it once and every system built afterwards (including by
// experiment code that never sees the flag) picks it up.
var defaultTilePar = 1

// SetDefaultTilePar sets the kernel shard width used when a Config
// leaves TilePar at 0. n ≤ 1 selects the sequential single-queue kernel.
func SetDefaultTilePar(n int) {
	if n < 1 {
		n = 1
	}
	defaultTilePar = n
}

// DefaultTilePar returns the current package-wide shard-width default.
func DefaultTilePar() int { return defaultTilePar }

// defaultSharded, when armed via SetDefaultSharded, hosts every baseline
// (NoTako) machine whose Config left the kernel organization unspecified
// (TilePar == 0, Sharded false) on the tile-sharded engine. The -sharded
// CLI flag sets it once; täkō machines and configs that pick an engine
// explicitly are unaffected.
var (
	defaultSharded      = false
	defaultShardWorkers = 0
)

// SetDefaultSharded arms (or disarms) sharded-by-default execution for
// baseline machines, with the given worker count (≤ 1: the deterministic
// sequenced schedule; results are byte-identical either way).
func SetDefaultSharded(on bool, workers int) {
	defaultSharded = on
	if workers < 0 {
		workers = 0
	}
	defaultShardWorkers = workers
}

// DefaultSharded reports the package-wide sharded default.
func DefaultSharded() (bool, int) { return defaultSharded, defaultShardWorkers }

// defaultFF mirrors SetDefaultTilePar/SetDefaultSharded for the
// analytical fast-forward warmup: the -ff / -ff-auto CLI flags set it
// once and every baseline machine built afterwards picks it up, unless
// its Config chose explicitly.
var (
	defaultFFAccesses uint64
	defaultFFAuto     bool
)

// SetDefaultFastForward arms (or disarms, with 0/false) fast-forward
// warmup for baseline machines whose Config left FastForward/FFAuto
// unset.
func SetDefaultFastForward(accesses uint64, auto bool) {
	defaultFFAccesses = accesses
	defaultFFAuto = auto
}

// DefaultFastForward reports the package-wide fast-forward default.
func DefaultFastForward() (uint64, bool) { return defaultFFAccesses, defaultFFAuto }

// Default returns the paper's Table 3 machine with the given tile count.
func Default(tiles int) Config {
	return Config{
		Tiles:  tiles,
		Hier:   hier.DefaultConfig(tiles),
		Engine: engine.DefaultConfig(),
		Core:   cpu.Goldmont(),
	}
}

// Scaled returns the Table 3 machine with caches shrunk by factor, for
// small-scale experiments that need data ≫ cache.
func Scaled(tiles, factor int) Config {
	c := Default(tiles)
	c.Hier = hier.ScaledConfig(tiles, factor)
	return c
}

// System is an assembled machine.
type System struct {
	K     *sim.Kernel  // nil on a sharded build (each shard owns a kernel)
	Sh    *sim.Sharded // non-nil on a sharded build
	Meter *energy.Meter
	Space *mem.Space
	Tako  *core.Tako
	H     *hier.Hierarchy
	E     *engine.Engines
	Cores []*cpu.Core

	threads int
	workers int // Sharded run's worker count (≤ 1: sequenced)
	shards  int // tile queues on a partitioned kernel (0: unpartitioned)

	// Capture state (capture.go): set when a process-wide observability
	// capture was armed before this System was built.
	captured bool
	capPid   int
}

// New builds and wires a System.
func New(cfg Config) *System {
	if !cfg.Sharded && defaultSharded && cfg.TilePar == 0 &&
		cfg.FastForward == 0 && !cfg.FFAuto && defaultFFAccesses == 0 && !defaultFFAuto {
		// The -sharded default applies to any machine — baseline or täkō —
		// that left the kernel organization unspecified; a config that
		// chose an engine explicitly (TilePar ≥ 1, or Sharded itself)
		// wins — as does fast-forward warmup (the config's or the -ff
		// flags'), which needs the classic kernel.
		cfg.Sharded = true
		if cfg.ShardWorkers == 0 {
			cfg.ShardWorkers = defaultShardWorkers
		}
		cfg.Hier.FreshChecks = false
	}
	if cfg.Sharded {
		return newSharded(cfg)
	}
	k := sim.NewKernel()
	meter := energy.NewMeter()
	space := mem.NewSpace()
	s := &System{K: k, Meter: meter, Space: space}

	tilePar := cfg.TilePar
	if tilePar == 0 {
		tilePar = defaultTilePar
	}
	if tilePar > 1 {
		// Partition before anything is scheduled: queue 0 stays the home
		// queue for shared/uncore events, queues 1..shards hold tile-affine
		// events (tile t → queue 1+t%shards). The partition must happen
		// first — Partition panics once events exist.
		s.shards = tilePar
		if s.shards > cfg.Tiles {
			s.shards = cfg.Tiles
		}
		k.Partition(1 + s.shards)
	}

	if cfg.NoTako {
		s.H = hier.New(k, cfg.Hier, meter, nil, nil)
	} else {
		s.Tako = core.New(k, space)
		s.E = engine.New(k, cfg.Engine, cfg.Tiles, s.Tako, meter)
		s.H = hier.New(k, cfg.Hier, meter, s.Tako, s.E)
		s.E.AttachHierarchy(s.H)
		s.Tako.Attach(s.H, s.E)
	}
	if cfg.NoTako {
		ffAcc, ffAuto := cfg.FastForward, cfg.FFAuto
		if ffAcc == 0 && !ffAuto {
			ffAcc, ffAuto = defaultFFAccesses, defaultFFAuto
		}
		if ffAcc > 0 || ffAuto {
			s.H.EnableFastForward(ffAcc, ffAuto, space)
		}
	}
	for i := 0; i < cfg.Tiles; i++ {
		s.Cores = append(s.Cores, cpu.New(s.H, i, cfg.Core, meter))
	}
	s.attachCapture()
	return s
}

// newSharded assembles a machine hosted on a sim.Sharded engine: one
// shard per tile, each with its own kernel and clock, synchronized in
// conservative lookahead-wide epochs. The hierarchy's cross-tile paths
// (directory actions, home-line locks, snoops, remote DRAM) run as
// messages between shards; everything tile-private — cores, private
// caches, MSHRs, the transaction state machine — runs undisturbed on its
// tile's shard. täkō machines shard too: the Morph registry keeps one
// view per tile, engines run on their tile's shard kernel, and
// registration broadcasts, flushes, and persists ride the same message
// protocol.
func newSharded(cfg Config) *System {
	if cfg.FastForward > 0 || cfg.FFAuto {
		panic("system: -sharded with -ff/-ff-auto is unsupported (the analytical warmup replays on the " +
			"classic global-clock kernel); drop -sharded, or drop the fast-forward flags for a full sharded run")
	}
	meter := energy.NewMeter()
	space := mem.NewSpace()
	// The epoch width is the mesh's minimum cross-tile latency: no
	// message can arrive sooner, so shards may run that far apart.
	lookahead := noc.NewMesh(cfg.Hier.NoC, nil).MinCrossTileLatency()
	eng := sim.NewSharded(cfg.Tiles, lookahead)
	s := &System{Sh: eng, Meter: meter, Space: space, workers: cfg.ShardWorkers}
	if cfg.NoTako {
		s.H = hier.NewSharded(eng, cfg.Hier, meter, nil, nil)
	} else {
		s.Tako = core.NewSharded(eng, space)
		s.E = engine.NewSharded(eng, cfg.Engine, cfg.Tiles, s.Tako, meter)
		s.H = hier.NewSharded(eng, cfg.Hier, meter, s.Tako, s.E)
		s.E.AttachHierarchy(s.H)
		s.Tako.Attach(s.H, s.E)
	}
	for i := 0; i < cfg.Tiles; i++ {
		s.Cores = append(s.Cores, cpu.New(s.H, i, cfg.Core, meter))
	}
	s.attachCapture()
	return s
}

// Ops returns the run's architectural operation count — committed core
// instructions, engine instructions, and DRAM line transfers. Unlike
// cycle counts, this is insensitive to pure timing-model changes, which
// makes it the quantity CI gates on.
func (s *System) Ops() uint64 {
	return s.TotalInstrs() + s.EngineInstrs() + s.H.DRAMAccesses()
}

// Alloc reserves a real region and returns it.
func (s *System) Alloc(name string, size uint64) mem.Region {
	return s.Space.Alloc(name, size)
}

// Go spawns a software thread on the given tile's core. On a partitioned
// kernel the thread's wake events live in its tile's queue; on a sharded
// build the thread runs on its tile's shard kernel.
func (s *System) Go(tile int, name string, fn func(p *sim.Proc, c *cpu.Core)) {
	c := s.Cores[tile]
	s.threads++
	run := func(p *sim.Proc) { fn(p, c) }
	if s.Sh != nil {
		s.Sh.Shard(tile).K.Go(fmt.Sprintf("%s@%d", name, tile), run)
		return
	}
	s.K.GoOn(s.TileShard(tile), fmt.Sprintf("%s@%d", name, tile), run)
}

// Barrier returns a rendezvous for n software threads that works on
// either engine: a classic kernel barrier, or an epoch-coordinated
// barrier homed on shard 0 of a sharded build. Both sides satisfy
// sim.Rendezvous (Arrive blocks until all n arrived).
func (s *System) Barrier(n int) sim.Rendezvous {
	if s.Sh != nil {
		return sim.NewShardedBarrier(s.Sh, 0, n)
	}
	return sim.NewBarrier(s.K, n)
}

// RunUntil advances the machine to the given cycle at most and returns
// with the event queues intact; crash harnesses (§8.3) use it to cut a
// run at a precise point. On a sharded build every shard clock reaches
// limit (the epoch schedule stays deterministic at any worker count).
func (s *System) RunUntil(limit sim.Cycle) {
	if s.Sh != nil {
		s.Sh.RunUntil(limit, s.workers)
		return
	}
	s.K.RunUntil(limit)
}

// TileShard returns the kernel queue holding tile's events: 0 (the home
// queue) when the kernel is unpartitioned, 1+tile%shards otherwise.
func (s *System) TileShard(tile int) int {
	if s.shards == 0 {
		return 0
	}
	return 1 + tile%s.shards
}

// Shards returns the number of tile queues the kernel is partitioned
// into (0 when running the sequential single-queue kernel).
func (s *System) Shards() int { return s.shards }

// Run executes until the machine quiesces and returns the cycle count.
// It panics if any thread is still blocked (a modeling deadlock). On a
// sharded build the returned count is the maximum shard clock, and
// Config.ShardWorkers picks between the sequenced reference schedule
// (≤ 1) and parallel workers (≥ 2) — simulated results are identical.
func (s *System) Run() sim.Cycle {
	if s.Sh != nil {
		if s.workers > 1 {
			s.Sh.Run(s.workers)
		} else {
			s.Sh.RunSequenced()
		}
		if blocked := s.Sh.Blocked(); len(blocked) > 0 {
			panic(fmt.Sprintf("system: deadlocked processes after run: %v", blocked))
		}
		s.H.FinishStats()
		s.Sh.Release()
		return s.Cycles()
	}
	s.K.Run()
	if blocked := s.K.Blocked(); len(blocked) > 0 {
		panic(fmt.Sprintf("system: deadlocked processes after run: %v", blocked))
	}
	// Settle fast-forward accounting for workloads that finished inside
	// the warmup window (no-op when off or already switched over).
	s.H.FinishFF()
	// Retire the kernel's pooled worker goroutines: report generation
	// runs thousands of systems in one process, and parked goroutines
	// from finished kernels would otherwise accumulate.
	s.K.Release()
	return s.K.Now()
}

// Cycles returns the current simulated time: the kernel clock, or the
// maximum across shard clocks on a sharded build.
func (s *System) Cycles() sim.Cycle {
	if s.Sh == nil {
		return s.K.Now()
	}
	var now sim.Cycle
	for i := 0; i < s.Sh.Shards(); i++ {
		if n := s.Sh.Shard(i).K.Now(); n > now {
			now = n
		}
	}
	return now
}

// KernelEvents returns the total dispatched event count, summed across
// shard kernels on a sharded build.
func (s *System) KernelEvents() uint64 {
	if s.Sh == nil {
		return s.K.Events()
	}
	var n uint64
	for i := 0; i < s.Sh.Shards(); i++ {
		n += s.Sh.Shard(i).K.Events()
	}
	return n
}

// Trace attaches (and returns) a structured event tracer recording the
// given event kinds ("cb.*", "flush.*", ... — empty records everything).
func (s *System) Trace(capacity int, kinds ...string) *trace.Tracer {
	tr := trace.New(capacity)
	tr.Filter(kinds...)
	s.H.AttachTracer(tr)
	return tr
}

// TotalInstrs sums committed instructions across cores.
func (s *System) TotalInstrs() uint64 {
	var n uint64
	for _, c := range s.Cores {
		n += c.Instrs
	}
	return n
}

// EngineInstrs sums instructions executed on engines (0 without täkō).
func (s *System) EngineInstrs() uint64 {
	if s.E == nil {
		return 0
	}
	return s.E.TotalStats().Instrs
}

// Mispredicts sums branch mispredictions across cores.
func (s *System) Mispredicts() uint64 {
	var n uint64
	for _, c := range s.Cores {
		n += c.Mispredicts
	}
	return n
}
