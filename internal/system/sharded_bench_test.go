package system

import (
	"runtime"
	"testing"

	"tako/internal/cpu"
	"tako/internal/mem"
	"tako/internal/sim"
)

// benchMachineWorkload runs the shared-counter coherence workload (the
// same shape the determinism battery pins) once on the given config:
// every tile stores a stripe, joins an atomic counter barrier, then
// reads back every stripe cross-tile.
func benchMachineWorkload(cfg Config, words int) sim.Cycle {
	tiles := cfg.Tiles
	s := New(cfg)
	data := s.Alloc("data", uint64(tiles*words*8+4096))
	ctr := data.Base + mem.Addr(tiles*words*8+512)
	for i := 0; i < tiles; i++ {
		i := i
		s.Go(i, "worker", func(p *sim.Proc, c *cpu.Core) {
			for j := 0; j < words; j++ {
				c.Store(p, data.Base+mem.Addr((i*words+j)*8), uint64(i*1000+j))
			}
			c.AtomicAddSync(p, ctr, 1)
			for c.Load(p, ctr) != uint64(tiles) {
				p.Sleep(50)
			}
			var sink uint64
			for k := 0; k < tiles*words; k++ {
				sink += c.Load(p, data.Base+mem.Addr(k*8))
			}
			_ = sink
		})
	}
	return s.Run()
}

// BenchmarkShardedVsPartitioned is the single-simulation speedup
// benchmark: one machine, one workload, hosted on the partitioned
// classic kernel (the fastest sequential engine) and on the sharded
// engine at several worker widths. cmd/benchtraj pairs the sub-benchmark
// names to emit a sharded-vs-partitioned speedup column; the cpus and
// gomaxprocs metrics let it annotate sweeps from single-core runners,
// where every worker width degenerates to sequenced execution plus
// barrier overhead, instead of folding them into speedup trends.
func BenchmarkShardedVsPartitioned(b *testing.B) {
	const (
		tiles = 4
		words = 256
	)
	run := func(b *testing.B, cfg Config) {
		b.ReportAllocs()
		var cycles sim.Cycle
		for i := 0; i < b.N; i++ {
			cycles = benchMachineWorkload(cfg, words)
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()*float64(b.N), "sim-cycles/s")
		b.ReportMetric(float64(runtime.NumCPU()), "cpus")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	}
	b.Run("partitioned", func(b *testing.B) {
		cfg := Default(tiles)
		cfg.NoTako = true
		cfg.TilePar = tiles
		run(b, cfg)
	})
	for _, workers := range []int{1, 2, 4} {
		cfg := shardedConfig(tiles, workers)
		b.Run(map[int]string{1: "sharded-w1", 2: "sharded-w2", 4: "sharded-w4"}[workers], func(b *testing.B) {
			run(b, cfg)
		})
	}
}
