package system

import (
	"runtime"
	"testing"

	"tako/internal/core"
	"tako/internal/cpu"
	"tako/internal/engine"
	"tako/internal/mem"
	"tako/internal/sim"
)

// benchMachineWorkload runs the shared-counter coherence workload (the
// same shape the determinism battery pins) once on the given config:
// every tile stores a stripe, joins an atomic counter barrier, then
// reads back every stripe cross-tile.
func benchMachineWorkload(cfg Config, words int) sim.Cycle {
	tiles := cfg.Tiles
	s := New(cfg)
	data := s.Alloc("data", uint64(tiles*words*8+4096))
	ctr := data.Base + mem.Addr(tiles*words*8+512)
	for i := 0; i < tiles; i++ {
		i := i
		s.Go(i, "worker", func(p *sim.Proc, c *cpu.Core) {
			for j := 0; j < words; j++ {
				c.Store(p, data.Base+mem.Addr((i*words+j)*8), uint64(i*1000+j))
			}
			c.AtomicAddSync(p, ctr, 1)
			for c.Load(p, ctr) != uint64(tiles) {
				p.Sleep(50)
			}
			var sink uint64
			for k := 0; k < tiles*words; k++ {
				sink += c.Load(p, data.Base+mem.Addr(k*8))
			}
			_ = sink
		})
	}
	return s.Run()
}

// BenchmarkShardedVsPartitioned is the single-simulation speedup
// benchmark: one machine, one workload, hosted on the partitioned
// classic kernel (the fastest sequential engine) and on the sharded
// engine at several worker widths. cmd/benchtraj pairs the sub-benchmark
// names to emit a sharded-vs-partitioned speedup column; the cpus and
// gomaxprocs metrics let it annotate sweeps from single-core runners,
// where every worker width degenerates to sequenced execution plus
// barrier overhead, instead of folding them into speedup trends.
func BenchmarkShardedVsPartitioned(b *testing.B) {
	const (
		tiles = 4
		words = 256
	)
	run := func(b *testing.B, cfg Config) {
		b.ReportAllocs()
		var cycles sim.Cycle
		for i := 0; i < b.N; i++ {
			cycles = benchMachineWorkload(cfg, words)
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()*float64(b.N), "sim-cycles/s")
		b.ReportMetric(float64(runtime.NumCPU()), "cpus")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	}
	b.Run("partitioned", func(b *testing.B) {
		cfg := Default(tiles)
		cfg.NoTako = true
		cfg.TilePar = tiles
		run(b, cfg)
	})
	for _, workers := range []int{1, 2, 4} {
		cfg := shardedConfig(tiles, workers)
		b.Run(map[int]string{1: "sharded-w1", 2: "sharded-w2", 4: "sharded-w4"}[workers], func(b *testing.B) {
			run(b, cfg)
		})
	}
}

// benchTakoWorkload drives a täkō machine: tile 0 registers a phantom
// morph whose onMiss callback materializes lines in the engine, the
// registration barrier doubles as the publish edge, and every tile then
// demand-loads its own stripe plus a cross-tile sample — each miss runs
// a callback on the home tile's engine.
func benchTakoWorkload(cfg Config, words int) sim.Cycle {
	tiles := cfg.Tiles
	s := New(cfg)
	spec := core.MorphSpec{
		Name: "bench-fill",
		OnMiss: &core.Callback{
			Instrs: 3, CritPath: 1,
			Fn: func(ctx *engine.Ctx) {
				for i := 0; i < mem.WordsPerLine; i++ {
					ctx.Line.SetWord(i, uint64(ctx.Addr)+uint64(i))
				}
			},
		},
	}
	bar := s.Barrier(tiles)
	var morph *core.Morph
	var regErr error
	for i := 0; i < tiles; i++ {
		i := i
		s.Go(i, "worker", func(p *sim.Proc, c *cpu.Core) {
			if i == 0 {
				morph, regErr = s.Tako.RegisterPhantom(p, spec, core.Shared, uint64(tiles*words*8), 0)
			}
			bar.Arrive(p)
			if regErr != nil {
				return
			}
			var sink uint64
			for j := 0; j < words; j++ {
				sink += c.Load(p, morph.Region.Word(uint64(i*words+j)))
			}
			bar.Arrive(p)
			for k := (i + 1) % tiles * words; k < tiles*words; k += 8 {
				sink += c.Load(p, morph.Region.Word(uint64(k%(tiles*words))))
			}
			_ = sink
		})
	}
	return s.Run()
}

// BenchmarkShardedTakoVsPartitioned is the täkō-machine companion of
// BenchmarkShardedVsPartitioned: the same speedup question asked of a
// machine with live engines — every miss on the morph region runs an
// onMiss callback at the line's home tile, so the sharded variants pay
// engine scheduling and cross-tile callback messages, not just
// coherence. cmd/benchtraj pairs the sub-benchmarks into the
// sharded-täkō speedup column of the trajectory artifact.
func BenchmarkShardedTakoVsPartitioned(b *testing.B) {
	const (
		tiles = 4
		words = 256
	)
	run := func(b *testing.B, cfg Config) {
		b.ReportAllocs()
		var cycles sim.Cycle
		for i := 0; i < b.N; i++ {
			cycles = benchTakoWorkload(cfg, words)
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()*float64(b.N), "sim-cycles/s")
		b.ReportMetric(float64(runtime.NumCPU()), "cpus")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	}
	b.Run("partitioned", func(b *testing.B) {
		cfg := Default(tiles)
		cfg.TilePar = tiles
		run(b, cfg)
	})
	for _, workers := range []int{1, 2, 4} {
		cfg := shardedConfig(tiles, workers)
		cfg.NoTako = false
		b.Run(map[int]string{1: "sharded-w1", 2: "sharded-w2", 4: "sharded-w4"}[workers], func(b *testing.B) {
			run(b, cfg)
		})
	}
}
