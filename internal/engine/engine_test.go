package engine

import (
	"testing"

	"tako/internal/energy"
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/sim"
)

// fakeProg serves one spec for all morphs/kinds.
type fakeProg struct {
	spec  Spec
	views map[int]interface{}
}

func (f *fakeProg) Spec(morphID, tile int, kind hier.CallbackKind) (Spec, bool) {
	if f.spec.Fn == nil {
		return Spec{}, false
	}
	return f.spec, true
}

func (f *fakeProg) View(morphID, tile int) interface{} {
	if f.views == nil {
		return nil
	}
	return f.views[tile]
}

func binding() hier.Binding {
	return hier.Binding{MorphID: 1, Level: hier.LevelPrivate, Phantom: true, HasMiss: true}
}

func setup(cfg Config, spec Spec) (*sim.Kernel, *Engines) {
	k := sim.NewKernel()
	meter := energy.NewMeter()
	e := New(k, cfg, 2, &fakeProg{spec: spec}, meter)
	h := hier.New(k, hier.DefaultConfig(2), meter, nil, nil)
	e.AttachHierarchy(h)
	return k, e
}

func runOne(k *sim.Kernel, e *Engines, spec Spec) sim.Cycle {
	var line mem.Line
	_, done := e.Run(0, hier.CbMiss, binding(), 0x1000, &line)
	k.Run()
	return done.When()
}

func TestCallbackFillsLineAndCompletes(t *testing.T) {
	spec := Spec{
		Cost: CallbackCost{Instrs: 10, CritPath: 5},
		Fn:   func(ctx *Ctx) { ctx.Line.SetWord(0, 7) },
	}
	k, e := setup(DefaultConfig(), spec)
	var line mem.Line
	_, done := e.Run(0, hier.CbMiss, binding(), 0x1000, &line)
	k.Run()
	if !done.Done() {
		t.Fatal("callback never completed")
	}
	if line.Word(0) != 7 {
		t.Fatal("callback did not fill line")
	}
	// 5-cycle critical path at 1-cycle PEs, 10 instrs over 15 int PEs
	// (occupancy 1): latency = 5, plus first-use bitstream load (64).
	if got := done.When(); got != 69 {
		t.Fatalf("completion at %d, want 69", got)
	}
	if e.Stats(0).Callbacks != 1 || e.Stats(0).Instrs != 10 {
		t.Fatalf("stats: %+v", e.Stats(0))
	}
}

func TestBitstreamCachedAfterFirstUse(t *testing.T) {
	spec := Spec{Cost: CallbackCost{Instrs: 1, CritPath: 1}, Fn: func(*Ctx) {}}
	k, e := setup(DefaultConfig(), spec)
	var line mem.Line
	_, d1 := e.Run(0, hier.CbMiss, binding(), 0x1000, &line)
	k.Run()
	t1 := d1.When()
	_, d2 := e.Run(0, hier.CbMiss, binding(), 0x2000, &line)
	k.Run()
	t2 := d2.When() - t1
	if t2 >= t1 {
		t.Fatalf("second invocation (%d) not faster than first (%d): bitstream not cached", t2, t1)
	}
	if e.Stats(0).BitLoads != 1 {
		t.Fatalf("bitstream loads = %d, want 1", e.Stats(0).BitLoads)
	}
}

func TestPELatencyScalesCritPath(t *testing.T) {
	mk := func(peLat sim.Cycle) sim.Cycle {
		cfg := DefaultConfig()
		cfg.PELatency = peLat
		cfg.BitstreamLoad = 0
		spec := Spec{Cost: CallbackCost{Instrs: 10, CritPath: 8}, Fn: func(*Ctx) {}}
		k, e := setup(cfg, spec)
		return runOne(k, e, spec)
	}
	if t1, t8 := mk(1), mk(8); t8 != 8*t1 {
		t.Fatalf("PE latency scaling: %d vs %d", t1, t8)
	}
}

func TestInOrderCoreMuchSlower(t *testing.T) {
	spec := Spec{Cost: CallbackCost{Instrs: 40, CritPath: 10}, Fn: func(*Ctx) {}}
	cfgF := DefaultConfig()
	cfgF.BitstreamLoad = 0
	kf, ef := setup(cfgF, spec)
	fabric := runOne(kf, ef, spec)

	cfgI := DefaultConfig()
	cfgI.InOrderCore = true
	ki, ei := setup(cfgI, spec)
	inorder := runOne(ki, ei, spec)
	if inorder < 10*fabric {
		t.Fatalf("in-order (%d) should be ≫ fabric (%d)", inorder, fabric)
	}
}

func TestIdealEngineZeroCompute(t *testing.T) {
	spec := Spec{Cost: CallbackCost{Instrs: 1000, CritPath: 500}, Fn: func(*Ctx) {}}
	k, e := setup(IdealConfig(), spec)
	if got := runOne(k, e, spec); got != 0 {
		t.Fatalf("ideal engine took %d cycles, want 0", got)
	}
}

func TestCallbackBufferBoundsConcurrency(t *testing.T) {
	// Long callbacks; buffer of 2; 4 requests on distinct addrs.
	cfg := DefaultConfig()
	cfg.CallbackBuffer = 2
	cfg.BitstreamLoad = 0
	spec := Spec{
		Cost: CallbackCost{Instrs: 1, CritPath: 1},
		Fn:   func(ctx *Ctx) { ctx.P.Sleep(100) },
	}
	k, e := setup(cfg, spec)
	var line mem.Line
	var dones []*sim.Future
	for i := 0; i < 4; i++ {
		_, d := e.Run(0, hier.CbMiss, binding(), mem.Addr(0x1000+i*64), &line)
		dones = append(dones, d)
	}
	k.Run()
	// First two finish ~101; second two wait for buffer slots: ~202.
	if dones[0].When() >= dones[3].When() {
		t.Fatal("no buffer backpressure observed")
	}
	if dones[3].When() < 200 {
		t.Fatalf("4th callback at %d, want ≥200 (buffer of 2)", dones[3].When())
	}
}

func TestSaturated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CallbackBuffer = 1
	cfg.BitstreamLoad = 0
	spec := Spec{Cost: CallbackCost{Instrs: 1, CritPath: 1}, Fn: func(ctx *Ctx) { ctx.P.Sleep(50) }}
	k, e := setup(cfg, spec)
	var line mem.Line
	e.Run(0, hier.CbMiss, binding(), 0x1000, &line)
	sawSaturated := false
	k.At(25, func() { sawSaturated = e.Saturated(0) })
	k.Run()
	if !sawSaturated {
		t.Fatal("engine not saturated mid-callback with 1-entry buffer")
	}
	if e.Saturated(0) {
		t.Fatal("engine still saturated after drain")
	}
}

func TestSameAddrSerializes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BitstreamLoad = 0
	spec := Spec{Cost: CallbackCost{Instrs: 1, CritPath: 1}, Fn: func(ctx *Ctx) { ctx.P.Sleep(100) }}
	k, e := setup(cfg, spec)
	var line mem.Line
	_, d1 := e.Run(0, hier.CbMiss, binding(), 0x1000, &line)
	_, d2 := e.Run(0, hier.CbMiss, binding(), 0x1000, &line)
	_, d3 := e.Run(0, hier.CbMiss, binding(), 0x2000, &line) // different addr
	k.Run()
	if d2.When() <= d1.When() {
		t.Fatalf("same-addr callbacks overlapped: %d, %d", d1.When(), d2.When())
	}
	if d3.When() > d1.When()+5 {
		t.Fatalf("different-addr callback serialized: %d vs %d", d3.When(), d1.When())
	}
}

func TestSequentialSerializesAcrossAddrs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BitstreamLoad = 0
	spec := Spec{
		Cost:       CallbackCost{Instrs: 1, CritPath: 1},
		Sequential: true,
		Fn:         func(ctx *Ctx) { ctx.P.Sleep(100) },
	}
	k, e := setup(cfg, spec)
	var line mem.Line
	_, d1 := e.Run(0, hier.CbMiss, binding(), 0x1000, &line)
	_, d2 := e.Run(0, hier.CbMiss, binding(), 0x2000, &line)
	k.Run()
	if d2.When() <= d1.When() {
		t.Fatal("sequential callbacks overlapped across addresses")
	}
}

func TestValidateFit(t *testing.T) {
	cfg := DefaultConfig() // 25 PEs * 16 = 400 slots
	k := sim.NewKernel()
	e := New(k, cfg, 1, &fakeProg{}, nil)
	if err := e.ValidateFit(94); err != nil {
		t.Fatalf("HATS-sized Morph rejected: %v", err)
	}
	if err := e.ValidateFit(401); err == nil {
		t.Fatal("oversized Morph accepted")
	}
}

func TestInterruptHook(t *testing.T) {
	spec := Spec{Cost: CallbackCost{Instrs: 1, CritPath: 1}, Fn: func(ctx *Ctx) { ctx.RaiseInterrupt() }}
	k, e := setup(DefaultConfig(), spec)
	var gotTile, gotMorph int
	var gotAddr mem.Addr
	e.Interrupt = func(tile, morphID int, addr mem.Addr) {
		gotTile, gotMorph, gotAddr = tile, morphID, addr
	}
	var line mem.Line
	e.Run(1, hier.CbEviction, binding(), 0x1040, &line)
	k.Run()
	if gotTile != 1 || gotMorph != 1 || gotAddr != 0x1040 {
		t.Fatalf("interrupt: tile=%d morph=%d addr=%v", gotTile, gotMorph, gotAddr)
	}
	if e.Stats(1).Interrupts != 1 {
		t.Fatal("interrupt not counted")
	}
}

func TestCtxMemoryOpsThroughHierarchy(t *testing.T) {
	spec := Spec{
		Cost: CallbackCost{Instrs: 4, CritPath: 2},
		Fn: func(ctx *Ctx) {
			v := ctx.LoadWord(0x8000)
			ctx.StoreWord(0x8008, v+1)
			ctx.AtomicAddWord(0x8010, 5)
		},
	}
	k, e := setup(DefaultConfig(), spec)
	// Seed backing memory via the attached hierarchy's DRAM.
	// (setup built its own hierarchy; rebuild with access to it.)
	kk := sim.NewKernel()
	meter := energy.NewMeter()
	ee := New(kk, DefaultConfig(), 2, &fakeProg{spec: spec}, meter)
	h := hier.New(kk, hier.DefaultConfig(2), meter, nil, nil)
	ee.AttachHierarchy(h)
	h.DRAM.Store().WriteU64(0x8000, 41)
	var line mem.Line
	_, done := ee.Run(0, hier.CbMiss, binding(), 0x1000, &line)
	kk.Run()
	if !done.Done() {
		t.Fatal("callback hung")
	}
	if got := h.DebugReadWord(0x8008); got != 42 {
		t.Fatalf("engine store result = %d, want 42", got)
	}
	if got := h.DebugReadWord(0x8010); got != 5 {
		t.Fatalf("engine add result = %d, want 5", got)
	}
	if ee.Stats(0).MemAccesses != 3 {
		t.Fatalf("mem accesses = %d, want 3", ee.Stats(0).MemAccesses)
	}
	_ = k
	_ = e
}

func TestAsyncLoadsOverlap(t *testing.T) {
	// A callback fetching 4 distinct DRAM lines asynchronously should
	// be much faster than fetching them synchronously.
	mkSpec := func(async bool) Spec {
		return Spec{
			Cost: CallbackCost{Instrs: 4, CritPath: 2},
			Fn: func(ctx *Ctx) {
				if async {
					for i := 0; i < 4; i++ {
						ctx.LoadLineAsync(mem.Addr(0x10000 + i*64))
					}
					ctx.Drain()
				} else {
					for i := 0; i < 4; i++ {
						ctx.LoadLine(mem.Addr(0x10000 + i*64))
					}
				}
			},
		}
	}
	run := func(async bool) sim.Cycle {
		k, e := setup(DefaultConfig(), mkSpec(async))
		var line mem.Line
		_, done := e.Run(0, hier.CbMiss, binding(), 0x1000, &line)
		k.Run()
		return done.When()
	}
	a, s := run(true), run(false)
	if a >= s {
		t.Fatalf("async (%d) not faster than sync (%d)", a, s)
	}
}
