package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite exporter golden files")

// emitFixture drives a fixed synthetic event sequence through a tracer
// attached to one process view of the given exporter: two runs, nested
// callback spans, instants, details needing JSON escaping.
func emitFixture(ms MultiSink) {
	ms.SetProcessName(0, "phi/base")
	ms.SetProcessName(1, "phi/tako")
	for pid := 0; pid < 2; pid++ {
		tr := New(64)
		tr.AttachSink(ms.Process(pid))
		tr.Emit(5, "core.0", "load", `addr="0x40"`)
		tr.Emit(12, "l2.0", "miss", "0x40")
		// Nested callback life on the engine track: total span
		// enclosing queue + exec sub-spans (emitted at completion, so
		// starts are non-monotonic).
		tr.EmitSpan(12, 20, "engine.0", "cb.queue", "")
		tr.EmitSpan(20, 47, "engine.0", "cb.exec", "onMiss")
		tr.EmitSpan(12, 47, "engine.0", "cb.onMiss", "0x40")
		tr.EmitSpan(21, 44, "dram.1", "dram.read", "0x40")
		tr.Emit(47, "l2.0", "fill", "0x40")
	}
	ms.Close()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	emitFixture(NewJSONL(&buf))
	checkGolden(t, "fixture.jsonl", buf.Bytes())

	// Every line is a standalone JSON object.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2+2*7 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, ln := range lines {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
	}
}

func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	emitFixture(NewChrome(&buf))
	checkGolden(t, "fixture.chrome.json", buf.Bytes())

	// The whole document must parse as Chrome trace-event JSON.
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var spans, instants, meta int
	threadNames := map[[2]int]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
		case "i":
			instants++
		case "M":
			meta++
			if e.Name == "thread_name" {
				threadNames[[2]int{e.Pid, e.Tid}] = true
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	// 4 spans + 3 instants per run.
	if spans != 8 || instants != 6 {
		t.Fatalf("spans = %d instants = %d", spans, instants)
	}
	// 4 components per run, each with thread_name metadata.
	if len(threadNames) != 8 {
		t.Fatalf("thread_name tracks = %d", len(threadNames))
	}
}

// Satellite (c): byte determinism — two identical runs through each
// exporter produce identical bytes.
func TestExportersByteDeterministic(t *testing.T) {
	for _, format := range []string{"jsonl", "chrome"} {
		var b1, b2 bytes.Buffer
		s1, err := SinkFor(format, &b1)
		if err != nil {
			t.Fatal(err)
		}
		s2, _ := SinkFor(format, &b2)
		emitFixture(s1)
		emitFixture(s2)
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("%s export not deterministic", format)
		}
	}
}

func TestChromeEmptyTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	c := NewChrome(&buf)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty chrome trace invalid: %v\n%s", err, buf.String())
	}
}

func TestSinkForUnknownFormat(t *testing.T) {
	if _, err := SinkFor("csv", &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestMinSpanThreshold(t *testing.T) {
	tr := New(16)
	tr.SetMinSpan(10)
	tr.EmitSpan(0, 5, "l1.0", "hit", "")     // dropped: 5 < 10
	tr.EmitSpan(0, 50, "dram.0", "read", "") // kept
	tr.Emit(3, "l2.0", "miss", "")           // instants unaffected
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Kind != "read" || evs[1].Kind != "miss" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestSortEvents(t *testing.T) {
	evs := []Event{
		{Cycle: 9, Component: "b", Kind: "k"},
		{Cycle: 3, Component: "b", Kind: "z"},
		{Cycle: 3, Component: "a", Kind: "k"},
		{Cycle: 3, Component: "b", Kind: "a"},
	}
	SortEvents(evs)
	if evs[0].Component != "a" || evs[1].Kind != "a" || evs[3].Cycle != 9 {
		t.Fatalf("sorted = %+v", evs)
	}
}

// Satellite (a): after the ring wraps, Dump replays oldest-first and the
// header reports total vs retained.
func TestDumpAfterWrapReportsDrops(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emitf(uint64(i), "c", "k", "n=%d", i)
	}
	dump := tr.Dump()
	if !strings.Contains(dump, "# trace: 10 events total, 4 retained (6 oldest dropped)") {
		t.Fatalf("header wrong:\n%s", dump)
	}
	// Oldest-first replay: n=6 appears before n=9, and dropped events
	// (n=0..5) are absent.
	i6, i9 := strings.Index(dump, "n=6"), strings.Index(dump, "n=9")
	if i6 < 0 || i9 < 0 || i6 > i9 {
		t.Fatalf("replay order wrong:\n%s", dump)
	}
	if strings.Contains(dump, "n=5") {
		t.Fatalf("dropped event present:\n%s", dump)
	}
	// Without wrap, no drop note.
	tr2 := New(8)
	tr2.Emit(1, "c", "k", "")
	if d := tr2.Dump(); !strings.Contains(d, "# trace: 1 events total, 1 retained\n") {
		t.Fatalf("unwrapped header wrong:\n%s", d)
	}
}

func TestTracerForwardsToSink(t *testing.T) {
	var buf bytes.Buffer
	js := NewJSONL(&buf)
	tr := New(2) // tiny ring: sink must still see everything
	tr.AttachSink(js.Process(0))
	for i := 0; i < 5; i++ {
		tr.Emit(uint64(i), "c", "k", "")
	}
	js.Close()
	if n := strings.Count(buf.String(), "\n"); n != 5 {
		t.Fatalf("sink saw %d events, want 5", n)
	}
	if tr.Retained() != 2 {
		t.Fatalf("retained = %d", tr.Retained())
	}
}
