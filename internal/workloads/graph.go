// Package workloads provides the inputs the paper's evaluation runs on:
// synthetic graphs with and without community structure (standing in for
// uk-2002 and the 160M-edge synthetic graphs, scaled down per DESIGN.md),
// push-style PageRank reference implementations, Zipfian index streams
// for the decompression study [21], and base+delta compressed data sets.
package workloads

import (
	"math/rand"

	"tako/internal/mem"
)

// Graph is a directed graph in CSR form.
type Graph struct {
	V, E      int
	Offsets   []uint64 // V+1 entries into Neighbors
	Neighbors []uint64 // E destination vertex ids
}

// OutDegree returns vertex v's out-degree.
func (g *Graph) OutDegree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neigh returns v's adjacency slice.
func (g *Graph) Neigh(v int) []uint64 {
	return g.Neighbors[g.Offsets[v]:g.Offsets[v+1]]
}

// fromAdjacency builds CSR from an adjacency list.
func fromAdjacency(adj [][]uint64) *Graph {
	v := len(adj)
	g := &Graph{V: v, Offsets: make([]uint64, v+1)}
	for i, ns := range adj {
		g.Offsets[i+1] = g.Offsets[i] + uint64(len(ns))
		g.Neighbors = append(g.Neighbors, ns...)
	}
	g.E = len(g.Neighbors)
	return g
}

// GenUniform generates a graph with e edges whose endpoints are chosen
// uniformly at random: no community structure, the worst case for
// locality-oriented traversal scheduling.
func GenUniform(v, e int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]uint64, v)
	for i := 0; i < e; i++ {
		src := rng.Intn(v)
		dst := rng.Intn(v)
		adj[src] = append(adj[src], uint64(dst))
	}
	return fromAdjacency(adj)
}

// GenCommunity generates a graph with strong community structure
// ([13, 78]; the property HATS exploits, §8.2): vertices are partitioned
// into communities and each edge stays inside its source's community
// with probability pIntra. Vertex ids are shuffled so memory order does
// not coincide with community order — exactly the situation where
// vertex-ordered traversal loses locality and BDFS recovers it.
func GenCommunity(v, e, communities int, pIntra float64, seed int64) *Graph {
	if communities < 1 {
		communities = 1
	}
	rng := rand.New(rand.NewSource(seed))
	// Assign shuffled ids to communities.
	perm := rng.Perm(v)
	commOf := make([]int, v)
	members := make([][]int, communities)
	for i, p := range perm {
		c := i * communities / v
		commOf[p] = c
		members[c] = append(members[c], p)
	}
	adj := make([][]uint64, v)
	for i := 0; i < e; i++ {
		src := rng.Intn(v)
		var dst int
		if rng.Float64() < pIntra {
			m := members[commOf[src]]
			dst = m[rng.Intn(len(m))]
		} else {
			dst = rng.Intn(v)
		}
		adj[src] = append(adj[src], uint64(dst))
	}
	return fromAdjacency(adj)
}

// Symmetrize returns a graph with every edge duplicated in reverse, so
// directed scatter along its edges propagates information both ways
// (how undirected algorithms like connected components run on push
// frameworks).
func Symmetrize(g *Graph) *Graph {
	adj := make([][]uint64, g.V)
	for src := 0; src < g.V; src++ {
		for _, d := range g.Neigh(src) {
			adj[src] = append(adj[src], d)
			adj[int(d)] = append(adj[int(d)], uint64(src))
		}
	}
	return fromAdjacency(adj)
}

// GraphMem is a graph laid out in simulated memory: 8-byte words for
// offsets, neighbor ids, and per-vertex data.
type GraphMem struct {
	G          *Graph
	Offsets    mem.Region
	Neighbors  mem.Region
	VertexData mem.Region
}

// Layout writes the graph into the simulated address space and backing
// store. Vertex data is allocated zeroed.
func (g *Graph) Layout(space *mem.Space, store *mem.Memory) *GraphMem {
	gm := &GraphMem{
		G:          g,
		Offsets:    space.Alloc("graph.offsets", uint64(g.V+1)*8),
		Neighbors:  space.Alloc("graph.neighbors", uint64(maxI(g.E, 1))*8),
		VertexData: space.Alloc("graph.vertexdata", uint64(g.V)*8),
	}
	for i, off := range g.Offsets {
		store.WriteU64(gm.Offsets.Word(uint64(i)), off)
	}
	for i, n := range g.Neighbors {
		store.WriteU64(gm.Neighbors.Word(uint64(i)), n)
	}
	return gm
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// OffsetAddr returns the address of vertex v's CSR offset.
func (gm *GraphMem) OffsetAddr(v int) mem.Addr { return gm.Offsets.Word(uint64(v)) }

// NeighborAddr returns the address of the i-th neighbor entry.
func (gm *GraphMem) NeighborAddr(i uint64) mem.Addr { return gm.Neighbors.Word(i) }

// VertexAddr returns the address of vertex v's data word.
func (gm *GraphMem) VertexAddr(v int) mem.Addr { return gm.VertexData.Word(uint64(v)) }
