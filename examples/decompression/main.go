// Decompression example (paper §3): compare five implementations of
// "average a Zipfian stream of reads over base+delta compressed data" —
// software baseline, vectorized pre-computation, near-data offload, täkō,
// and the idealized engine — reproducing Fig 6 and Fig 7.
//
// Run with: go run ./examples/decompression [-values N] [-reads N]
package main

import (
	"flag"
	"fmt"
	"os"

	"tako/internal/morphs"
)

func main() {
	var (
		values = flag.Int("values", 16*1024, "compressed values in the data set")
		reads  = flag.Int("reads", 32*1024, "Zipfian reads to perform")
		tiles  = flag.Int("tiles", 4, "tiles in the simulated machine")
	)
	flag.Parse()

	prm := morphs.DefaultDecompParams()
	prm.NumValues = *values
	prm.NumIndices = *reads
	prm.Tiles = *tiles

	fmt.Printf("averaging %d Zipfian reads over %d base+delta values (paper §3)\n\n", *reads, *values)
	res, err := morphs.RunDecompressionAll(prm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "decompression:", err)
		os.Exit(1)
	}
	base := res[morphs.DecompBaseline]
	fmt.Printf("%-12s %12s %9s %14s %16s %14s\n",
		"variant", "cycles", "speedup", "energy(nJ)", "decompressions", "extra memory")
	for _, v := range morphs.AllDecompVariants {
		r := res[v]
		fmt.Printf("%-12s %12d %8.2fx %14.1f %16d %13dB\n",
			v, r.Cycles, r.Speedup(base), r.EnergyPJ/1000,
			int(r.Extra["decompressions"]), int(r.Extra["extra_memory_bytes"]))
	}
	tako := res[morphs.DecompTako]
	fmt.Printf("\ntäkō memoizes decompression in the cache: %.2fx faster than the baseline, %.0f%% less energy.\n",
		tako.Speedup(base), 100*tako.EnergySaving(base))
	fmt.Println("Near-data offload (NDC) LOSES: it repeats the work on every access and pays the round trip.")
}
