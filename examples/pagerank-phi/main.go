// PageRank/PHI example (paper §8.1): run one push iteration of PageRank
// four ways — direct atomics, software update batching (propagation
// blocking), PHI on täkō, and the idealized engine — reproducing the
// Fig 13 / Fig 14 comparison, with the result verified against a
// functional reference.
//
// Run with: go run ./examples/pagerank-phi [-v N] [-e N] [-threads N]
package main

import (
	"flag"
	"fmt"
	"os"

	"tako/internal/morphs"
)

func main() {
	var (
		v       = flag.Int("v", 16*1024, "vertices")
		e       = flag.Int("e", 160*1024, "edges")
		threads = flag.Int("threads", 8, "threads (= tiles)")
	)
	flag.Parse()

	prm := morphs.DefaultPHIParams()
	prm.V, prm.E = *v, *e
	prm.Tiles, prm.Threads = *threads, *threads

	fmt.Printf("PageRank scatter on %d vertices / %d edges, %d threads (caches scaled 1/%d)\n\n",
		prm.V, prm.E, prm.Threads, prm.CacheScale)
	res, err := morphs.RunPHIAll(prm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phi:", err)
		os.Exit(1)
	}
	base := res[morphs.PHIBaseline]
	fmt.Printf("%-9s %10s %9s %8s %8s %8s %10s\n",
		"variant", "cycles", "speedup", "edgeDRAM", "binDRAM", "vtxDRAM", "energy(nJ)")
	for _, v := range morphs.AllPHIVariants {
		r := res[v]
		fmt.Printf("%-9s %10d %8.2fx %8d %8d %8d %10.0f\n",
			v, r.Cycles, r.Speedup(base),
			r.DRAMPhase["edge"], r.DRAMPhase["bin"], r.DRAMPhase["vertex"], r.EnergyPJ/1000)
	}
	tako := res[morphs.PHITako]
	fmt.Printf("\nPHI on täkō buffers commutative updates in-cache (onMiss fills the identity),\n")
	fmt.Printf("and onWriteback applies dense lines in place (%d updates) or logs sparse ones (%d).\n",
		int(tako.Extra["updates.inplace"]), int(tako.Extra["updates.binned"]))
	fmt.Printf("Every variant's final ranks matched the functional reference exactly.\n")
}
