package hier

import "testing"

// TestLookaheadMatchesTable3 pins the conservative lookahead the
// tile-sharded kernel derives from the Table 3 mesh: a 2-cycle router
// plus a 1-cycle link means no cross-tile interaction lands in under 3
// cycles, at any tile count, and even a single-tile hierarchy yields a
// positive (trivially safe) lookahead.
func TestLookaheadMatchesTable3(t *testing.T) {
	for _, tiles := range []int{4, 16, 64} {
		_, h := newH(tiles)
		if la := h.Lookahead(); la != 3 {
			t.Errorf("%d tiles: lookahead = %d, want 3", tiles, la)
		}
	}
	_, h := newH(1)
	if la := h.Lookahead(); la < 1 {
		t.Errorf("single tile: lookahead = %d, want ≥ 1", la)
	}
}
