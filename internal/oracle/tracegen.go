package oracle

import (
	"fmt"
	"math/rand"

	"tako/internal/core"
	"tako/internal/cpu"
	"tako/internal/engine"
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/system"
)

// TraceConfig sizes a randomized verification run.
type TraceConfig struct {
	Seed       int64
	Tiles      int
	OpsPerTile int
	// CacheScale shrinks caches (hier.ScaledConfig) so the working set
	// far exceeds them, forcing evictions and Morph callback churn.
	CacheScale int
	// CheckEvery is the oracle's invariant-check period in hierarchy
	// events (0 disables periodic checks; the final check always runs).
	CheckEvery int
	// Script, when non-empty, replaces the seeded generator: each 6
	// bytes decode one operation (fuzzing entry point).
	Script []byte
	// Chooser, when non-nil, is installed on the kernel to resolve
	// same-cycle scheduling ties (the interleaving explorer's hook). If
	// it implements Arm(), it is armed once Morph setup completes, so
	// choice points cover the operation mix rather than setup plumbing.
	Chooser sim.Chooser
	// RecoverPanics converts a panic raised during the run (coherence
	// assertion, invariant check, illegal transaction transition) into
	// an error return instead of crashing, after unwinding the
	// simulation's processes. Exploration runs set this.
	RecoverPanics bool
	// RealMorph additionally registers an identity PRIVATE Morph over
	// the realA region: values are unchanged (the oracle still checks
	// them against the shadow), but every miss now runs an onMiss
	// callback between the home grant and the private install — the
	// in-flight window that mid-install revocation races live in.
	RealMorph bool
	// TilePar partitions the system's event kernel into tile-sharded
	// queues (system.Config.TilePar). The schedule — and therefore the
	// fingerprint — is byte-identical at every width; 0 inherits the
	// process-wide default (system.SetDefaultTilePar, the -tile-par flag).
	TilePar int
}

// DefaultTraceConfig returns a config exercising 4 tiles with heavy
// cache pressure.
func DefaultTraceConfig(seed int64) TraceConfig {
	return TraceConfig{Seed: seed, Tiles: 4, OpsPerTile: 2000, CacheScale: 32, CheckEvery: 256}
}

// TraceResult reports one verification run.
type TraceResult struct {
	Cycles sim.Cycle
	Ops    int
	Oracle *Oracle
	// Fingerprint is byte-identical across equal-seed runs (the
	// determinism property).
	Fingerprint string
}

type opKind int

const (
	opLoad opKind = iota
	opStore
	opLoadLine
	opStoreLine
	opStoreLineNT
	opAtomicAdd // local RMW add
	opAtomicRMO // local RMW min/max
	opExchange
	opRemoteAdd // async RMO add
	opRemoteRMO // async RMO min/max
	opDrain
	opFlush
	nOpKinds
)

type op struct {
	kind   opKind
	region int
	line   int
	word   int
	val    uint64
}

// Harness region table indices.
const (
	rRealA    = iota // shared read-write real data
	rRealB           // second real region (different home-bank spread)
	rSrcC            // read-only real source for the derived phantom
	rDerived         // read-only SHARED phantom computed from rSrcC
	rPhantomS        // read-write SHARED phantom backed by the shadow
	rPhantomP        // per-tile PRIVATE phantom backed by the shadow
	rJournal         // writeback journal (untracked; flush/load only)
	nRegions
)

// Region sizes in cache lines. With CacheScale 32 the per-tile L2 holds
// 64 lines and an L3 bank 256, so the combined working set overflows
// both and every path (fills, evictions, callbacks, writebacks) runs
// constantly.
var regionLines = [nRegions]uint64{64, 128, 32, 32, 96, 32, 128}

const derivedXOR = 0x5ee0_5ee0_5ee0_5ee0

type hregion struct {
	r        mem.Region
	writable bool
	remoteOK bool // legal target for home-bank RMOs
	level    hier.Level
}

type harness struct {
	cfg     TraceConfig
	sys     *system.System
	o       *Oracle
	regs    [nRegions]hregion
	phanP   []mem.Region // per-tile PRIVATE phantom regions
	morphs  []*core.Morph
	journal mem.Region
}

// RunTrace builds a system with the harness Morphs attached, runs the
// generated (or scripted) operation mix on every tile, then flushes,
// quiesces, and sweeps the final state. The returned result's Oracle
// holds any mismatches or invariant violations.
func RunTrace(cfg TraceConfig) (*TraceResult, error) {
	if cfg.Tiles < 1 {
		cfg.Tiles = 1
	}
	if cfg.CacheScale < 1 {
		cfg.CacheScale = 32
	}
	scfg := system.Scaled(cfg.Tiles, cfg.CacheScale)
	scfg.Hier.FreshChecks = true
	scfg.TilePar = cfg.TilePar
	s := system.New(scfg)
	if cfg.Chooser != nil {
		s.K.SetChooser(cfg.Chooser)
	}
	o := New(s.H)
	o.CheckEvery = cfg.CheckEvery

	hn := &harness{cfg: cfg, sys: s, o: o}
	hn.layout()

	ops := hn.buildOps()
	nops := 0
	for _, tops := range ops {
		nops += len(tops)
	}

	setupDone := sim.NewFuture(s.K)
	var regErr error
	s.Go(0, "oracle-setup", func(p *sim.Proc, c *cpu.Core) {
		regErr = hn.register(p)
		setupDone.Complete()
	})
	bar := sim.NewBarrier(s.K, cfg.Tiles)
	for t := 0; t < cfg.Tiles; t++ {
		t := t
		s.Go(t, "oracle-trace", func(p *sim.Proc, c *cpu.Core) {
			p.Wait(setupDone)
			if regErr != nil {
				return
			}
			// Arm the chooser (idempotent) only once setup is done:
			// exploration budgets then cover the operation mix, drain,
			// and flush phases instead of registration plumbing.
			if a, ok := cfg.Chooser.(interface{ Arm() }); ok {
				a.Arm()
			}
			for _, one := range ops[t] {
				hn.exec(p, c, t, one)
			}
			c.DrainRMOs(p)
			bar.Arrive(p)
			if t == 0 {
				if cfg.RealMorph {
					// The identity Morph is PRIVATE to tile 0, but other
					// tiles' fills of realA also carried the Morph bit;
					// Unregister's flush covers only tile 0's domain, so
					// sweep the remaining private domains explicitly —
					// and BEFORE Unregister drops the binding, or the
					// periodic invariant check can observe those tiles'
					// Morph-bit lines with no live binding.
					for tt := 1; tt < cfg.Tiles; tt++ {
						s.H.FlushRegion(p, tt, hn.regs[rRealA].r, hier.LevelPrivate)
					}
				}
				// Unregister flushes every Morph's data (callbacks
				// verify evicted lines against the shadow) before
				// the final sweep.
				for _, m := range hn.morphs {
					s.Tako.Unregister(p, m)
				}
			}
		})
	}
	cycles, runErr := runSystem(s, cfg.RecoverPanics)
	if runErr != nil {
		return nil, runErr
	}
	if regErr != nil {
		return nil, regErr
	}
	o.VerifyFinal()
	res := &TraceResult{
		Cycles: cycles,
		Ops:    nops,
		Oracle: o,
		Fingerprint: fmt.Sprintf("cycles=%d %s\n%s",
			cycles, o.Fingerprint(), s.H.Metrics.String()),
	}
	return res, nil
}

// runSystem runs the simulation to completion. With recoverPanics set,
// a panic raised during the run — a coherence assertion, an invariant
// check, an illegal transaction transition — is converted into an error
// after Kernel.Shutdown unwinds the abandoned processes, so exploration
// can treat "this schedule crashed" as a finding rather than dying.
func runSystem(s *system.System, recoverPanics bool) (cycles sim.Cycle, err error) {
	if recoverPanics {
		defer func() {
			if r := recover(); r != nil {
				s.K.Shutdown()
				if pp, ok := r.(*sim.ProcPanic); ok {
					err = fmt.Errorf("panic in proc %q: %v", pp.Proc, pp.Value)
				} else {
					err = fmt.Errorf("panic: %v", r)
				}
			}
		}()
	}
	return s.Run(), nil
}

// layout allocates the real regions, seeds memory and shadow with a
// deterministic pattern, and tracks everything with the oracle.
func (hn *harness) layout() {
	s, o := hn.sys, hn.o
	alloc := func(name string, idx int) mem.Region {
		return s.Alloc(name, regionLines[idx]*mem.LineSize)
	}
	realA := alloc("oracle.realA", rRealA)
	realB := alloc("oracle.realB", rRealB)
	srcC := alloc("oracle.srcC", rSrcC)
	hn.journal = alloc("oracle.journal", rJournal)

	seed := func(r mem.Region, salt uint64) {
		for i := uint64(0); i < r.Size/8; i++ {
			v := (i*0x9e3779b97f4a7c15 + salt) | 1
			s.H.DRAM.Store().WriteU64(r.Word(i), v)
			o.Shadow().WriteU64(r.Word(i), v)
		}
	}
	seed(realA, 0xa)
	seed(realB, 0xb)
	seed(srcC, 0xc)

	hn.regs[rRealA] = hregion{realA, true, true, hier.LevelNone}
	hn.regs[rRealB] = hregion{realB, true, true, hier.LevelNone}
	hn.regs[rSrcC] = hregion{srcC, false, false, hier.LevelNone}
	// The journal is flushable and loadable but never a direct store
	// target: callbacks own its contents (engine stores around the L2),
	// so core ops against it exercise the around-L2 flush and sibling
	// migration paths without confusing the shadow.
	hn.regs[rJournal] = hregion{hn.journal, false, false, hier.LevelNone}
	o.Track(realA, Plain)
	o.Track(realB, Plain)
	o.Track(srcC, Plain)
	// Journal kind: loads are unchecked (they race the callback's
	// store/mirror pair) but the final sweep verifies that no journaled
	// write was dropped — each phantom line maps to its own slot, and
	// writebacks of one line are serialized by its line lock.
	o.Track(hn.journal, Journal)
}

// register installs the harness Morphs: the shadow-backed SHARED and
// per-tile PRIVATE phantoms, and the derived read-only phantom.
func (hn *harness) register(p *sim.Proc) error {
	s, o := hn.sys, hn.o

	m, err := s.Tako.RegisterPhantom(p, hn.shadowSpec("oracle.phantomS", true),
		core.Shared, regionLines[rPhantomS]*mem.LineSize, 0)
	if err != nil {
		return err
	}
	hn.morphs = append(hn.morphs, m)
	hn.regs[rPhantomS] = hregion{m.Region, true, true, hier.LevelShared}
	o.Track(m.Region, ShadowPhantom)
	hn.seedShadow(m.Region, 0x51)

	srcC := hn.regs[rSrcC].r
	derivedRegion := new(mem.Region) // late-bound: callbacks run only after registration
	dm, err := s.Tako.RegisterPhantom(p, hn.derivedSpec("oracle.derived", srcC, derivedRegion),
		core.Shared, regionLines[rDerived]*mem.LineSize, 0)
	if err != nil {
		return err
	}
	*derivedRegion = dm.Region
	hn.morphs = append(hn.morphs, dm)
	hn.regs[rDerived] = hregion{dm.Region, false, false, hier.LevelShared}
	o.Track(dm.Region, Derived)
	// Precompute the transform into the shadow: derived loads must
	// observe transform(source) exactly.
	for i := uint64(0); i < dm.Region.Size/8; i++ {
		o.Shadow().WriteU64(dm.Region.Word(i), o.Shadow().ReadU64(srcC.Word(i))^derivedXOR)
	}

	// One PRIVATE shadow phantom per tile; tile t touches only its own
	// (private phantoms are untracked by the directory, so cross-tile
	// copies would legitimately diverge — and the flat shadow could not
	// model that).
	hn.phanP = make([]mem.Region, hn.cfg.Tiles)
	for t := 0; t < hn.cfg.Tiles; t++ {
		pm, err := s.Tako.RegisterPhantom(p, hn.shadowSpec(fmt.Sprintf("oracle.phantomP%d", t), false),
			core.Private, regionLines[rPhantomP]*mem.LineSize, t)
		if err != nil {
			return err
		}
		hn.morphs = append(hn.morphs, pm)
		hn.phanP[t] = pm.Region
		o.Track(pm.Region, ShadowPhantom)
		hn.seedShadow(pm.Region, 0x70+uint64(t))
	}
	hn.regs[rPhantomP] = hregion{mem.Region{}, true, false, hier.LevelPrivate}

	if hn.cfg.RealMorph {
		// Identity PRIVATE Morph over realA: onMiss leaves the fetched
		// line untouched, so coherence and values are those of plain
		// memory — but fills now sleep in the callback while the line
		// is in flight between the home grant and the install.
		rm, err := s.Tako.RegisterReal(p, core.MorphSpec{
			Name:   "oracle.realIdent",
			OnMiss: &core.Callback{Instrs: 6, CritPath: 3, Fn: func(c *engine.Ctx) {}},
		}, core.Private, hn.regs[rRealA].r, 0)
		if err != nil {
			return err
		}
		hn.morphs = append(hn.morphs, rm)
	}
	return nil
}

func (hn *harness) seedShadow(r mem.Region, salt uint64) {
	for i := uint64(0); i < r.Size/8; i++ {
		hn.o.Shadow().WriteU64(r.Word(i), (i*0x2545f4914f6cdd1d+salt)|1)
	}
}

// shadowSpec builds a ShadowPhantom Morph: the flat shadow is the
// region's backing truth. onMiss materializes lines from it; eviction
// callbacks verify the outgoing data against it (every store already
// committed there, and the line stays locked until the callback ends).
// The SHARED variant also journals writebacks through the engine port,
// exercising callback-issued stores and around-the-L2 writebacks.
func (hn *harness) shadowSpec(name string, journal bool) core.MorphSpec {
	o := hn.o
	spec := core.MorphSpec{
		Name: name,
		OnMiss: &core.Callback{Instrs: 8, CritPath: 4, Fn: func(c *engine.Ctx) {
			o.Shadow().PeekLine(c.Addr, c.Line)
		}},
		OnEviction: &core.Callback{Instrs: 4, CritPath: 2, Fn: func(c *engine.Ctx) {
			o.CheckEvictedLine(name+".onEviction", c.Tile, c.Addr, c.Line)
		}},
		OnWriteback: &core.Callback{Instrs: 12, CritPath: 6, Fn: func(c *engine.Ctx) {
			o.CheckEvictedLine(name+".onWriteback", c.Tile, c.Addr, c.Line)
			o.Shadow().WriteLine(c.Addr, c.Line)
		}},
	}
	if journal {
		j := hn.journal
		spec.OnWriteback.Fn = func(c *engine.Ctx) {
			o.CheckEvictedLine(name+".onWriteback", c.Tile, c.Addr, c.Line)
			o.Shadow().WriteLine(c.Addr, c.Line)
			slot := (uint64(c.Addr) / mem.LineSize) % j.Lines()
			c.StoreLine(j.At(slot*mem.LineSize), c.Line)
			// Mirror into the shadow (engine stores bypass the
			// observer): the line lock serializes this pair against
			// other writebacks of the same phantom line.
			o.Shadow().WriteLine(j.At(slot*mem.LineSize), c.Line)
		}
	}
	return spec
}

// derivedSpec builds the read-only Derived Morph: onMiss loads the
// corresponding source line through the engine port and applies a
// word-wise transform. No eviction callbacks: clean lines are simply
// discarded and re-derived on the next miss.
func (hn *harness) derivedSpec(name string, src mem.Region, region *mem.Region) core.MorphSpec {
	return core.MorphSpec{
		Name: name,
		OnMiss: &core.Callback{Instrs: 16, CritPath: 8, Fn: func(c *engine.Ctx) {
			off := uint64(c.Addr - region.Base)
			line := c.LoadLine(src.At(off % src.Size))
			for w := 0; w < mem.WordsPerLine; w++ {
				c.Line.SetWord(w, line.Word(w)^derivedXOR)
			}
		}},
	}
}

// buildOps produces each tile's operation sequence, either from the
// seeded generator or by decoding the fuzz script.
func (hn *harness) buildOps() [][]op {
	ops := make([][]op, hn.cfg.Tiles)
	if len(hn.cfg.Script) > 0 {
		for i := 0; i+6 <= len(hn.cfg.Script); i += 6 {
			b := hn.cfg.Script[i : i+6]
			one := op{
				kind:   opKind(b[0]) % nOpKinds,
				region: int(b[1]) % nRegions,
				line:   int(b[2]) | int(b[3])<<8,
				word:   int(b[4]) % mem.WordsPerLine,
				val:    (uint64(b[5]) + 1) * 0x0101_0101,
			}
			t := (i / 6) % hn.cfg.Tiles
			ops[t] = append(ops[t], one)
		}
		return ops
	}
	for t := 0; t < hn.cfg.Tiles; t++ {
		rng := rand.New(rand.NewSource(hn.cfg.Seed + int64(t)*1_000_003))
		ops[t] = make([]op, hn.cfg.OpsPerTile)
		for i := range ops[t] {
			ops[t][i] = op{
				kind:   pickKind(rng),
				region: pickRegion(rng),
				line:   pickLine(rng),
				word:   rng.Intn(mem.WordsPerLine),
				val:    rng.Uint64() | 1,
			}
		}
	}
	return ops
}

// pickKind draws an operation with fixed weights (loads dominate, like
// real workloads; flushes are rare but present).
func pickKind(rng *rand.Rand) opKind {
	weights := [nOpKinds]int{24, 16, 8, 6, 3, 8, 4, 4, 10, 4, 2, 1}
	total := 0
	for _, w := range weights {
		total += w
	}
	n := rng.Intn(total)
	for k, w := range weights {
		if n < w {
			return opKind(k)
		}
		n -= w
	}
	return opLoad
}

func pickRegion(rng *rand.Rand) int {
	// rJournal's weight is zero: the seeded generator predates it, and
	// keeping it out preserves every seeded trace byte-for-byte. Scripts
	// (fuzzing, exploration scenarios) target it explicitly.
	weights := [nRegions]int{25, 15, 10, 10, 25, 15, 0}
	total := 0
	for _, w := range weights {
		total += w
	}
	n := rng.Intn(total)
	for r, w := range weights {
		if n < w {
			return r
		}
		n -= w
	}
	return rRealA
}

// pickLine biases half the accesses into a hot set of 8 lines so the
// trace mixes heavy line contention with broad eviction pressure.
func pickLine(rng *rand.Rand) int {
	if rng.Intn(2) == 0 {
		return rng.Intn(8)
	}
	return rng.Intn(1 << 16)
}

// exec runs one operation, first legalizing it: writes to read-only
// regions demote to loads, home-bank RMOs retarget to RMO-legal
// regions, and non-temporal stores stay on memory-backed data (an NT
// store to a non-resident phantom line would bypass its Morph).
func (hn *harness) exec(p *sim.Proc, c *cpu.Core, tile int, one op) {
	k := one.kind
	reg := hn.regs[one.region]
	if one.region == rPhantomP {
		reg.r = hn.phanP[tile]
	}
	if !reg.writable {
		switch k {
		case opStore, opAtomicAdd, opAtomicRMO, opExchange:
			k = opLoad
		case opStoreLine, opStoreLineNT:
			k = opLoadLine
		}
	}
	if (k == opRemoteAdd || k == opRemoteRMO) && !reg.remoteOK {
		reg = hn.regs[rRealA]
	}
	if k == opStoreLineNT && one.region != rRealA && one.region != rRealB {
		reg = hn.regs[rRealB]
	}
	a := reg.r.At((uint64(one.line)%reg.r.Lines())*mem.LineSize + uint64(one.word)*8)

	rmoOp := hier.RMOMin
	if one.val&2 != 0 {
		rmoOp = hier.RMOMax
	}
	switch k {
	case opLoad:
		c.Load(p, a)
	case opStore:
		c.Store(p, a, one.val)
	case opLoadLine:
		c.LoadLine(p, a)
	case opStoreLine:
		var line mem.Line
		for w := 0; w < mem.WordsPerLine; w++ {
			line.SetWord(w, one.val+uint64(w))
		}
		c.StoreLine(p, a, &line)
	case opStoreLineNT:
		var line mem.Line
		for w := 0; w < mem.WordsPerLine; w++ {
			line.SetWord(w, one.val^uint64(w))
		}
		c.StoreLineNT(p, a, &line)
	case opAtomicAdd:
		c.AtomicAddLocal(p, a, one.val&0xffff)
	case opAtomicRMO:
		c.AtomicRMOLocal(p, a, rmoOp, one.val)
	case opExchange:
		c.AtomicExchange(p, a, one.val)
	case opRemoteAdd:
		c.AtomicAdd(p, a, one.val&0xffff)
	case opRemoteRMO:
		c.AtomicRMO(p, a, rmoOp, one.val)
	case opDrain:
		c.DrainRMOs(p)
	case opFlush:
		hn.sys.H.FlushRegion(p, tile, reg.r, reg.level)
	}
}
