package energy

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter()
	m.Add(DRAMAccess, 10)
	m.Add(CoreInstr, 100)
	if m.Count(DRAMAccess) != 10 {
		t.Fatalf("count = %d", m.Count(DRAMAccess))
	}
	costs := DefaultCosts()
	want := 10*costs[DRAMAccess] + 100*costs[CoreInstr]
	if m.TotalPJ() != want {
		t.Fatalf("total = %v, want %v", m.TotalPJ(), want)
	}
}

func TestDRAMDominates(t *testing.T) {
	// Sanity-check the constants encode the paper's premise: data
	// movement costs dominate compute. One DRAM line access must cost
	// more than 100 core instructions and 1000 engine ops.
	costs := DefaultCosts()
	if costs[DRAMAccess] <= 100*costs[CoreInstr] {
		t.Fatal("DRAM access should dwarf core instructions")
	}
	if costs[DRAMAccess] <= 1000*costs[EngineInstr] {
		t.Fatal("DRAM access should dwarf engine ops")
	}
	if costs[EngineInstr] >= costs[CoreInstr] {
		t.Fatal("dataflow op should be cheaper than an OOO core instruction")
	}
	if costs[NVMWrite] <= costs[DRAMAccess] {
		t.Fatal("persistent writes should cost more than DRAM")
	}
}

func TestMeterResetAndAddFrom(t *testing.T) {
	a, b := NewMeter(), NewMeter()
	a.Add(L2Access, 5)
	b.Add(L2Access, 7)
	a.AddFrom(b)
	if a.Count(L2Access) != 12 {
		t.Fatalf("AddFrom: %d", a.Count(L2Access))
	}
	a.Reset()
	if a.TotalPJ() != 0 {
		t.Fatal("reset left energy behind")
	}
}

func TestBreakdownRendersOnlyNonzero(t *testing.T) {
	m := NewMeter()
	m.Add(L3Access, 3)
	s := m.Breakdown()
	if !strings.Contains(s, "l3-access") || strings.Contains(s, "l1-access") {
		t.Fatalf("breakdown:\n%s", s)
	}
	if !strings.Contains(s, "total") {
		t.Fatal("no total line")
	}
}

func TestKindString(t *testing.T) {
	if CoreInstr.String() != "core-instr" {
		t.Fatalf("CoreInstr = %q", CoreInstr.String())
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("out-of-range kind should render numerically")
	}
}

func TestQuickEnergyLinear(t *testing.T) {
	f := func(n uint16) bool {
		m := NewMeter()
		m.Add(NoCFlitHop, uint64(n))
		return m.TotalPJ() == float64(n)*DefaultCosts()[NoCFlitHop]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
