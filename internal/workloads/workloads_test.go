package workloads

import (
	"testing"
	"testing/quick"

	"tako/internal/mem"
)

func TestGenUniformShape(t *testing.T) {
	g := GenUniform(100, 1000, 1)
	if g.V != 100 || g.E != 1000 {
		t.Fatalf("V=%d E=%d", g.V, g.E)
	}
	if int(g.Offsets[g.V]) != g.E {
		t.Fatalf("offsets end = %d", g.Offsets[g.V])
	}
	for _, n := range g.Neighbors {
		if n >= uint64(g.V) {
			t.Fatalf("neighbor %d out of range", n)
		}
	}
}

func TestGenCommunityLocality(t *testing.T) {
	const v, e, comms = 1000, 10000, 20
	g := GenCommunity(v, e, comms, 0.95, 7)
	if g.E != e {
		t.Fatalf("E=%d", g.E)
	}
	// Community graphs must have far more "nearby" edges after BDFS
	// grouping than uniform graphs. Proxy check: count distinct
	// destination blocks visited per window of 100 BDFS edge visits,
	// community should be lower than uniform.
	spread := func(g *Graph) float64 {
		ranks := make([]uint64, g.V)
		var windows, total int
		seen := map[int]bool{}
		i := 0
		BDFSEdges(g, ranks, 8, func(ev EdgeVisit) {
			seen[ev.Dst/64] = true
			i++
			if i%100 == 0 {
				total += len(seen)
				windows++
				seen = map[int]bool{}
			}
		})
		if windows == 0 {
			return 0
		}
		return float64(total) / float64(windows)
	}
	u := GenUniform(v, e, 7)
	if spread(g) >= spread(u) {
		t.Fatalf("community BDFS spread %.1f not tighter than uniform %.1f", spread(g), spread(u))
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := GenCommunity(100, 500, 5, 0.9, 3)
	b := GenCommunity(100, 500, 5, 0.9, 3)
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}

func TestPageRankRefConservesMass(t *testing.T) {
	g := GenUniform(50, 400, 2)
	ranks := PageRankRef(g, 1)
	// Total pushed mass = sum over vertices with outdeg>0 of
	// deg*(rank/deg); with integer division this is ≤ initial total.
	var total uint64
	for _, r := range ranks {
		total += r
	}
	if total == 0 || total > uint64(g.V)*InitialRank {
		t.Fatalf("total rank %d out of bounds", total)
	}
}

func TestTraversalsCoverEveryEdgeOnce(t *testing.T) {
	g := GenCommunity(200, 2000, 8, 0.9, 5)
	ranks := make([]uint64, g.V)
	vo := CountEdges(func(f func(EdgeVisit)) { VertexOrderedEdges(g, ranks, f) })
	bd := CountEdges(func(f func(EdgeVisit)) { BDFSEdges(g, ranks, 8, f) })
	if vo != g.E || bd != g.E {
		t.Fatalf("edge visits: vertex-ordered %d, bdfs %d, want %d", vo, bd, g.E)
	}
}

func TestBDFSMatchesVertexOrderedSemantics(t *testing.T) {
	g := GenCommunity(100, 1500, 4, 0.9, 11)
	ranks := PageRankRef(g, 1)
	a := ApplyVisits(g, func(f func(EdgeVisit)) { VertexOrderedEdges(g, ranks, f) })
	b := ApplyVisits(g, func(f func(EdgeVisit)) { BDFSEdges(g, ranks, 6, f) })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank[%d]: vertex-ordered %d vs bdfs %d", i, a[i], b[i])
		}
	}
}

// Property: BDFS visits each edge exactly once on arbitrary graphs.
func TestQuickBDFSEdgeCoverage(t *testing.T) {
	f := func(seed int64, vRaw, eRaw uint8) bool {
		v := int(vRaw)%50 + 2
		e := int(eRaw)%200 + 1
		g := GenUniform(v, e, seed)
		ranks := make([]uint64, g.V)
		return CountEdges(func(fn func(EdgeVisit)) { BDFSEdges(g, ranks, 5, fn) }) == g.E
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphLayoutRoundTrip(t *testing.T) {
	g := GenUniform(20, 100, 9)
	space := mem.NewSpace()
	store := mem.NewMemory()
	gm := g.Layout(space, store)
	for v := 0; v <= g.V; v++ {
		if got := store.ReadU64(gm.Offsets.Word(uint64(v))); got != g.Offsets[v] {
			t.Fatalf("offset[%d] = %d, want %d", v, got, g.Offsets[v])
		}
	}
	for i := 0; i < g.E; i++ {
		if got := store.ReadU64(gm.NeighborAddr(uint64(i))); got != g.Neighbors[i] {
			t.Fatalf("neighbor[%d] = %d", i, got)
		}
	}
	if store.ReadU64(gm.VertexAddr(3)) != 0 {
		t.Fatal("vertex data not zeroed")
	}
}

func TestCompressedValues(t *testing.T) {
	d := GenCompressed(1000, 8, 4)
	space := mem.NewSpace()
	store := mem.NewMemory()
	cm := d.Layout(space, store)
	for i := 0; i < d.N; i += 97 {
		base := store.ReadU64(cm.Bases.Word(uint64(i / d.BlockSize)))
		delta := store.ReadU64(cm.Deltas.Word(uint64(i)))
		if base+delta != d.Value(i) {
			t.Fatalf("value[%d] mismatch", i)
		}
	}
}

func TestZipfIndicesSkewed(t *testing.T) {
	idx := ZipfIndices(32*1024, 16*1024, 1)
	counts := map[int]int{}
	for _, i := range idx {
		if i < 0 || i >= 16*1024 {
			t.Fatalf("index %d out of range", i)
		}
		counts[i]++
	}
	// Zipfian skew: far fewer distinct values than draws.
	if len(counts) >= len(idx)/2 {
		t.Fatalf("distribution not skewed: %d distinct of %d", len(counts), len(idx))
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Fatalf("hottest value only %d hits; not Zipfian", max)
	}
}

func TestBDFSIterMatchesBDFSEdges(t *testing.T) {
	g := GenCommunity(300, 3000, 10, 0.9, 17)
	ranks := PageRankRef(g, 1)
	var fromEnum []EdgeVisit
	BDFSEdges(g, ranks, 6, func(ev EdgeVisit) { fromEnum = append(fromEnum, ev) })
	it := NewBDFSIter(g, ranks, 6)
	for i := 0; ; i++ {
		ev, ok := it.Next()
		if !ok {
			if i != len(fromEnum) {
				t.Fatalf("iterator stopped at %d, want %d", i, len(fromEnum))
			}
			break
		}
		if i >= len(fromEnum) || ev != fromEnum[i] {
			t.Fatalf("visit %d: iter %+v vs enum %+v", i, ev, fromEnum[i])
		}
	}
	if it.Emitted() != g.E {
		t.Fatalf("emitted %d, want %d", it.Emitted(), g.E)
	}
}

func TestBDFSIterTouchHook(t *testing.T) {
	g := GenUniform(50, 400, 3)
	ranks := make([]uint64, g.V)
	it := NewBDFSIter(g, ranks, 4)
	counts := map[TouchKind]int{}
	it.Touch = func(k TouchKind, idx int) { counts[k]++ }
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if n != g.E {
		t.Fatalf("emitted %d edges, want %d", n, g.E)
	}
	// Every edge touches its neighbor entry exactly once.
	if counts[TouchNeighbor] != g.E {
		t.Fatalf("neighbor touches = %d, want %d", counts[TouchNeighbor], g.E)
	}
	if counts[TouchOffset] == 0 || counts[TouchVisited] == 0 || counts[TouchCursor] == 0 {
		t.Fatalf("touch counts: %v", counts)
	}
}

func TestSymmetrize(t *testing.T) {
	g := GenUniform(40, 200, 13)
	sg := Symmetrize(g)
	if sg.E != 2*g.E {
		t.Fatalf("symmetrized E = %d, want %d", sg.E, 2*g.E)
	}
	// Every original edge exists in both directions.
	has := func(g *Graph, u, v int) bool {
		for _, d := range g.Neigh(u) {
			if int(d) == v {
				return true
			}
		}
		return false
	}
	for src := 0; src < g.V; src++ {
		for _, d := range g.Neigh(src) {
			if !has(sg, src, int(d)) || !has(sg, int(d), src) {
				t.Fatalf("edge %d->%d not symmetric", src, d)
			}
		}
	}
}
