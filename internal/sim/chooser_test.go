package sim

import "testing"

// fixedChooser replays a list of picks, then defaults to 0.
type fixedChooser struct {
	picks []int
	i     int
	calls int
}

func (c *fixedChooser) Choose(n int) int {
	c.calls++
	if c.i >= len(c.picks) {
		return 0
	}
	p := c.picks[c.i]
	c.i++
	return p
}

func tieKernel(got *[]int) *Kernel {
	k := NewKernel()
	for i := 0; i < 4; i++ {
		i := i
		k.At(5, func() { *got = append(*got, i) })
	}
	k.At(9, func() { *got = append(*got, 99) })
	return k
}

// TestChooserDefaultOrderPreserved: a chooser that always picks 0 must
// reproduce the kernel's FIFO schedule exactly.
func TestChooserDefaultOrderPreserved(t *testing.T) {
	var got []int
	k := tieKernel(&got)
	k.SetChooser(&fixedChooser{})
	k.Run()
	want := []int{0, 1, 2, 3, 99}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("default-choice schedule diverged: got %v want %v", got, want)
		}
	}
}

// TestChooserReorders: picking index 2 of a 4-way tie runs that event
// first and keeps the remaining events' relative order.
func TestChooserReorders(t *testing.T) {
	var got []int
	k := tieKernel(&got)
	ch := &fixedChooser{picks: []int{2}}
	k.SetChooser(ch)
	k.Run()
	want := []int{2, 0, 1, 3, 99}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reordered schedule: got %v want %v", got, want)
		}
	}
	if ch.calls == 0 {
		t.Fatal("chooser never consulted")
	}
}

// TestChooserSingletonNotConsulted: with no tie there is no choice.
func TestChooserSingletonNotConsulted(t *testing.T) {
	k := NewKernel()
	ch := &fixedChooser{picks: []int{1, 1, 1}}
	k.SetChooser(ch)
	k.At(1, func() {})
	k.At(2, func() {})
	k.Run()
	if ch.calls != 0 {
		t.Fatalf("chooser consulted %d times for singleton steps", ch.calls)
	}
}

// TestProcPanicRecoverable: a panic inside a Proc must surface on the
// kernel goroutine as a *ProcPanic that the driver can recover, and
// Shutdown must unwind the remaining parked processes.
func TestProcPanicRecoverable(t *testing.T) {
	k := NewKernel()
	k.Go("bystander", func(p *Proc) {
		p.Sleep(100) // parked when the panic fires
		p.Sleep(100)
	})
	k.Go("victim", func(p *Proc) {
		p.Sleep(1)
		panic("model assertion")
	})
	var pp *ProcPanic
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("proc panic did not propagate to the driver")
			}
			var ok bool
			if pp, ok = r.(*ProcPanic); !ok {
				t.Fatalf("recovered %T, want *ProcPanic", r)
			}
		}()
		k.Run()
	}()
	if pp.Proc != "victim" {
		t.Fatalf("panic attributed to %q, want victim", pp.Proc)
	}
	if pp.Value != "model assertion" {
		t.Fatalf("panic value %v", pp.Value)
	}
	if len(pp.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	k.Shutdown() // must not hang or panic with "bystander" parked mid-sleep
}

// TestShutdownAfterCleanRun: Shutdown on a completed kernel is a no-op
// beyond releasing pooled goroutines.
func TestShutdownAfterCleanRun(t *testing.T) {
	k := NewKernel()
	ran := false
	k.Go("p", func(p *Proc) { p.Sleep(3); ran = true })
	k.Run()
	k.Shutdown()
	if !ran {
		t.Fatal("proc did not run")
	}
}
