package hier

import (
	"fmt"

	"tako/internal/cache"
	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/sim"
)

// fillMeta describes an incoming line to the insert paths.
type fillMeta struct {
	morph   bool // Morph registered at the receiving level
	phantom bool
	engine  bool // engine-issued fill (trrîp demotion)
	dirty   bool
}

func (m fillMeta) opts() cache.FillOpts {
	return cache.FillOpts{
		Dirty:      m.dirty,
		Morph:      m.morph,
		Phantom:    m.phantom,
		EngineFill: m.engine,
	}
}

// insertL2 installs a line into tile's private L2, handling the evicted
// victim. It never sleeps (functional effects are immediate; eviction
// timing runs on spawned processes), so callers may treat it as atomic.
// It returns false when every candidate way is locked; callers retry.
func (h *Hierarchy) insertL2(tileID int, a mem.Addr, data *mem.Line, meta fillMeta) bool {
	t := h.tiles[tileID]
	opts := meta.opts()
	// When writeback-buffer entries are exhausted, evicting a Morph
	// line would stall on callback resources; prefer a callback-free
	// victim instead (§5.2 deadlock avoidance). Software replacement
	// hints (the onReplacement extension) are honored when possible.
	constraint := cache.VictimConstraint{
		CallbackFree: t.wbbuf.Saturated(),
		Avoid:        h.protectedHint(tileID),
	}
	way, ok := t.l2.ChooseVictimForInsert(a, opts, constraint)
	if !ok {
		way, ok = t.l2.ChooseVictimForInsert(a, opts, cache.VictimConstraint{})
	}
	if !ok {
		return false
	}
	evicted := t.l2.FillAt(a, way, data, opts)
	if evicted.Valid {
		h.handleL2Eviction(tileID, evicted, nil)
	}
	h.event("l2.insert")
	return true
}

// handleL2Eviction processes a line evicted from tile's L2:
// back-invalidates L1 copies, triggers Morph callbacks, and writes dirty
// data back to the shared level. Functional state changes happen
// immediately; latency and buffer occupancy are charged on a spawned
// process. If futs is non-nil, a future completing when the eviction's
// callback finishes is appended (used by flushData).
func (h *Hierarchy) handleL2Eviction(tileID int, ev cache.LineState, futs *[]*sim.Future) {
	t := h.tiles[tileID]
	la := ev.Tag
	// Back-invalidate the tile's L1 copies (inclusion), merging dirty
	// data into the evicted line.
	for _, c := range [2]*cache.Cache{t.l1, t.el1} {
		if ls, ok := c.ExtractLine(la); ok && ls.Dirty {
			ev.Data = ls.Data
			ev.Dirty = true
		}
	}
	if ev.Morph && h.registry != nil {
		if b, ok := h.registry.Binding(tileID, la); ok {
			h.morphEvictPrivate(tileID, ev, b, futs)
			return
		}
	}
	if ev.Phantom {
		// A phantom line without a live Morph can only appear if a
		// Morph was unregistered without flushing — a core-package
		// bug.
		panic(fmt.Sprintf("hier: phantom line %v evicted with no Morph bound", la))
	}
	if ev.Dirty {
		h.writebackToShared(tileID, la, ev.Data)
	} else {
		h.removeSharerIfNoCopies(tileID, la)
	}
}

// morphEvictPrivate runs the eviction/writeback callback for a
// Morph-registered line leaving a private L2 (Table 1 semantics):
// onWriteback for dirty lines, onEviction for clean ones; phantom lines
// are then discarded, real lines written back (§4.3). The address stays
// locked (pending) until the callback completes.
func (h *Hierarchy) morphEvictPrivate(tileID int, ev cache.LineState, b Binding, futs *[]*sim.Future) {
	t := h.tiles[tileID]
	la := ev.Tag
	kind := CbEviction
	has := b.HasEviction
	if ev.Dirty {
		kind, has = CbWriteback, b.HasWriteback
	}
	// Real-address Morph lines keep load-store semantics: the dirty
	// data reaches the backing store regardless of the callback.
	if !b.Phantom && ev.Dirty {
		h.writebackToShared(tileID, la, ev.Data)
	}
	if !has || h.runner == nil {
		h.hot.cbSkipped.Inc()
		return
	}
	h.hot.cb[kind].Inc()
	if h.tracer != nil {
		h.TraceAt(tileID, h.comp.l2[tileID], "cb."+kind.String(), la.String())
	}
	// The callback proc, its lock future, and the inflight group all live
	// on the tile's own kernel, so the whole eviction callback is
	// shard-local work on a sharded build.
	lock := sim.NewFuture(t.K)
	tok := t.pending.lockWith(la, lock)
	if futs != nil {
		*futs = append(*futs, lock)
	}
	data := ev.Data
	t.cbInflight.Add(1)
	t.K.Go(fmt.Sprintf("evict-cb@%d", tileID), func(p *sim.Proc) {
		t.wbbuf.Acquire(p)
		accepted, done := h.runner.Run(tileID, kind, b, la, &data)
		p.Wait(accepted)
		t.wbbuf.Release()
		p.Wait(done)
		t.pending.unlock(la, tok)
		lock.Complete()
		t.cbInflight.Done()
	})
}

// writebackToShared applies a dirty private line to its home L3 bank (or
// DRAM if the L3 no longer holds it), immediately; transfer latency and
// energy are charged asynchronously.
func (h *Hierarchy) writebackToShared(tileID int, la mem.Addr, data mem.Line) {
	home := h.HomeTile(la)
	t := h.tiles[tileID]
	if h.sharded {
		// The dirty data travels to the home shard as a Put message; the
		// home applies it to its L3 bank (or DRAM) and updates the
		// directory when it arrives. Timing (one transfer + writeback
		// buffer occupancy) is still charged by the tile-side wb-timing
		// proc, exactly like the classic path.
		h.sendPutDirty(t, la, &data)
		h.event("l2.writeback")
		h.hot.l2Writebacks.Inc()
		h.Meter.Add(energy.L3Access, 1)
		t.K.GoArgs("wb-timing", h.wbTimingFn, uint64(tileID), uint64(home))
		return
	}
	hm := h.tiles[home]
	if ls3 := hm.l3.Lookup(la); ls3 != nil {
		ls3.Data = data
		ls3.Dirty = true
		if h.freshChecks {
			h.debugLogHome(la, fmt.Sprintf("writebackToShared(from=%d)", tileID), data.U64(16))
		}
	} else {
		h.DRAM.WriteLineNoWait(la, &data)
	}
	if e := h.dirT(la).get(la); e != nil && e.owner == tileID {
		e.owner = -1
	}
	h.removeSharerIfNoCopies(tileID, la)
	h.event("l2.writeback")
	h.hot.l2Writebacks.Inc()
	h.Meter.Add(energy.L3Access, 1)
	t.K.GoArgs("wb-timing", h.wbTimingFn, uint64(tileID), uint64(home))
}

// insertL3 installs a line into its home bank (tile homeID), handling
// the victim: back-invalidation of private copies, Morph callbacks at
// the home engine, and DRAM writeback. Non-blocking classically; on a
// sharded build the victim's back-invalidations are real message round
// trips, so p (the home-side transaction proc) parks while they drain.
func (h *Hierarchy) insertL3(p *sim.Proc, homeID int, a mem.Addr, data *mem.Line, meta fillMeta) bool {
	hm := h.tiles[homeID]
	opts := meta.opts()
	constraint := cache.VictimConstraint{
		CallbackFree: hm.wbbuf.Saturated(),
		Avoid:        h.protectedHint(homeID),
		Busy:         hm.l3Busy,
	}
	way, ok := hm.l3.ChooseVictimForInsert(a, opts, constraint)
	if !ok {
		// Retry without the advisory protection hint; Busy is a hard
		// constraint and stays. Failing outright is safe — the filling
		// transaction retries after a cycle.
		way, ok = hm.l3.ChooseVictimForInsert(a, opts, cache.VictimConstraint{Busy: hm.l3Busy})
	}
	if !ok {
		return false
	}
	evicted := hm.l3.FillAt(a, way, data, opts)
	h.debugLogHome(a.Line(), "insertL3", data.U64(16))
	if evicted.Valid {
		h.debugLogHome(evicted.Tag, "l3-evict", evicted.Data.U64(16))
		h.handleL3Eviction(p, homeID, evicted, nil)
	}
	h.event("l3.insert")
	return true
}

// handleL3Eviction processes a line leaving the shared cache:
// back-invalidate all private copies (inclusive hierarchy), run the
// SHARED Morph callback if registered, write dirty data to memory.
func (h *Hierarchy) handleL3Eviction(p *sim.Proc, homeID int, ev cache.LineState, futs *[]*sim.Future) {
	la := ev.Tag
	if h.sharded {
		// backInvalSharded owns the whole eviction: it writes dirty data
		// to DRAM (early, before recalls, so a racing fetch of the victim
		// cannot read stale memory) and counts the writeback itself.
		h.backInvalSharded(p, homeID, &ev)
		return
	}
	if e := h.dirT(la).get(la); e != nil {
		for s := 0; s < h.cfg.Tiles; s++ {
			if !e.has(s) {
				continue
			}
			data, dirty, present := h.invalidatePrivate(s, la)
			if dirty {
				ev.Data = data
				ev.Dirty = true
			}
			if present {
				h.hot.l3Backinval.Inc()
				h.Mesh.Transfer(homeID, s, 8)
				bytes := 8
				if dirty {
					bytes = mem.LineSize
				}
				h.Mesh.Transfer(s, homeID, bytes)
			}
		}
		h.dirT(la).delete(la)
	}
	if ev.Morph && h.registry != nil {
		if b, ok := h.registry.Binding(homeID, la); ok {
			h.morphEvictShared(homeID, ev, b, futs)
			return
		}
	}
	if ev.Phantom {
		panic(fmt.Sprintf("hier: phantom line %v in L3 with no Morph bound", la))
	}
	if ev.Dirty {
		h.hot.l3Writebacks.Inc()
		h.DRAM.WriteLineNoWait(la, &ev.Data) // timing tracked inside DRAM
	}
}

// morphEvictShared is the L3 counterpart of morphEvictPrivate.
func (h *Hierarchy) morphEvictShared(homeID int, ev cache.LineState, b Binding, futs *[]*sim.Future) {
	hm := h.tiles[homeID]
	la := ev.Tag
	kind := CbEviction
	has := b.HasEviction
	if ev.Dirty {
		kind, has = CbWriteback, b.HasWriteback
	}
	if !b.Phantom && ev.Dirty {
		h.dramAt(homeID).WriteLineNoWait(la, &ev.Data)
	}
	if !has || h.runner == nil {
		h.hot.cbSkipped.Inc()
		return
	}
	h.hot.cb[kind].Inc()
	if h.tracer != nil {
		h.TraceAt(homeID, h.comp.l3[homeID], "cb."+kind.String(), la.String())
	}
	// Home-side callback machinery lives on the home tile's kernel.
	lock := sim.NewFuture(hm.K)
	if futs != nil {
		*futs = append(*futs, lock)
	}
	data := ev.Data
	// Lock the home line synchronously when it is free, matching
	// morphEvictPrivate: the callback now owns this line's data, and a
	// fetch re-materializing the line (and accepting stores) before the
	// writeback callback ran would have its updates clobbered when the
	// callback finally persisted the older evicted data.
	var tok uint64
	locked := !hm.l3pending.locked(la)
	if locked {
		tok = hm.l3pending.lockWith(la, lock)
	}
	hm.cbInflight.Add(1)
	hm.K.Go(fmt.Sprintf("l3evict-cb@%d", homeID), func(p *sim.Proc) {
		if !locked {
			// An in-flight home-side operation held the line at
			// eviction time; queue politely behind it rather than
			// clobbering its lock.
			for hm.l3pending.waitIfLocked(p, la) {
			}
			tok = hm.l3pending.lockWith(la, lock)
		}
		hm.wbbuf.Acquire(p)
		accepted, done := h.runner.Run(homeID, kind, b, la, &data)
		p.Wait(accepted)
		hm.wbbuf.Release()
		p.Wait(done)
		hm.l3pending.mustUnlock(la, tok)
		lock.Complete()
		hm.cbInflight.Done()
	})
}

// fillTop installs a line into the core (or engine) L1, merging any
// evicted dirty victim into the L2 (inclusion guarantees the L2 holds
// it, except for engine lines fetched around the L2, which write back to
// the shared level).
func (h *Hierarchy) fillTop(tileID int, a mem.Addr, data *mem.Line, meta fillMeta, engine bool) {
	t := h.tiles[tileID]
	top := t.l1
	if engine {
		top = t.el1
	}
	// A racing access on this tile may have installed the line while
	// we slept at a lower level: update in place rather than creating
	// a duplicate. A dirty resident copy is newer than anything we
	// fetched — keep it.
	if ls := top.Lookup(a); ls != nil {
		if !ls.Dirty {
			ls.Data = *data
			ls.Dirty = meta.dirty
		}
		return
	}
	opts := cache.FillOpts{Dirty: meta.dirty, Phantom: meta.phantom, EngineFill: engine}
	way, ok := top.ChooseVictim(a, cache.VictimConstraint{})
	if !ok {
		return // pathological: every way locked; line stays in L2 only
	}
	evicted := top.FillAt(a, way, data, opts)
	if !evicted.Valid {
		return
	}
	if evicted.Dirty {
		if ls2 := t.l2.Lookup(evicted.Tag); ls2 != nil {
			ls2.Data = evicted.Data
			ls2.Dirty = true
		} else {
			// Engine line fetched around the L2 (shared-callback
			// path): write back to the shared level directly.
			h.writebackToShared(tileID, evicted.Tag, evicted.Data)
		}
	} else {
		h.removeSharerIfNoCopies(tileID, evicted.Tag)
	}
}

// protectedHint returns tile's victim-selection Avoid hook from Morph
// replacement hints (the onReplacement extension, §4.5) — pre-built in
// buildTile against the tile's own registry view, nil when no registry
// is attached — so insert paths don't allocate a closure per fill.
func (h *Hierarchy) protectedHint(tile int) func(mem.Addr) bool {
	return h.tiles[tile].protectedFn
}
