package morphs

import (
	"fmt"
	"math/rand"

	"tako/internal/core"
	"tako/internal/cpu"
	"tako/internal/engine"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/system"
)

// SideChannelVariant selects the prime+probe study configuration (§8.4,
// Fig 21): an attacker on one core monitors shared-LLC sets to learn
// which AES-table lines a victim touches.
type SideChannelVariant string

// Side-channel variants (Fig 21a vs 21b).
const (
	SCBaseline SideChannelVariant = "baseline" // victim unprotected: attack succeeds
	SCTako     SideChannelVariant = "tako"     // onEviction Morph on the tables: attack detected
)

// AllSideChannelVariants lists Fig 21's two scenarios.
var AllSideChannelVariants = []SideChannelVariant{SCBaseline, SCTako}

// SideChannelParams sizes the study.
type SideChannelParams struct {
	Tiles      int
	TableLines int // AES table size in lines (4 KB = 64)
	HotLines   int // lines the victim's key selects
	Rounds     int // prime+probe rounds over the table's sets
	Seed       int64
}

// DefaultSideChannelParams returns the study configuration.
func DefaultSideChannelParams() SideChannelParams {
	return SideChannelParams{Tiles: 4, TableLines: 64, HotLines: 12, Rounds: 6, Seed: 11}
}

// SideChannelResult extends Result with attack-specific outcomes.
type SideChannelResult struct {
	Result
	// Detected reports whether the victim observed its data being
	// evicted (täkō's onEviction interrupt).
	Detected bool
	// DetectionCycle is when the first interrupt fired (0 if never).
	DetectionCycle sim.Cycle
	// TruePositives / FalsePositives: hot lines the attacker correctly
	// / incorrectly identified from probe timing.
	TruePositives, FalsePositives int
	// EvictionTrace[line] counts slow probes the attacker observed per
	// table line (Fig 21's trace).
	EvictionTrace []int
}

// RunSideChannel runs the prime+probe scenario and reports whether the
// attack succeeded and whether the victim detected it.
func RunSideChannel(v SideChannelVariant, prm SideChannelParams) (SideChannelResult, error) {
	cfg := system.Default(prm.Tiles)
	if v == SCBaseline {
		cfg.NoTako = true
	}
	s := system.New(cfg)
	hcfg := s.H.Config()

	table := s.Alloc("aes.tables", uint64(prm.TableLines)*mem.LineSize)
	// Collision stride: addresses equal modulo stride map to the same
	// L3 bank and set.
	numSets := hcfg.L3BankSize / (hcfg.L3Ways * mem.LineSize)
	stride := uint64(mem.LineSize * prm.Tiles * numSets)
	ways := hcfg.L3Ways
	attackBuf := s.Alloc("attack.buf", uint64(ways+3)*stride)

	// collide returns the k-th attacker address colliding with table
	// line ln in the shared cache.
	collide := func(ln, k int) mem.Addr {
		target := uint64(table.Base) + uint64(ln)*mem.LineSize
		base := uint64(attackBuf.Base)
		aligned := base - base%stride + stride // first stride boundary inside the buffer
		return mem.Addr(aligned + target%stride + uint64(k)*stride)
	}

	// The victim's secret: which table lines its key makes it touch.
	rng := rand.New(rand.NewSource(prm.Seed))
	hot := map[int]bool{}
	for len(hot) < prm.HotLines {
		hot[rng.Intn(prm.TableLines)] = true
	}

	var detected bool
	var detectionCycle sim.Cycle
	var interrupts int
	defended := false
	// The attacker signals completion through coherent memory rather
	// than a shared Go bool: the victim and attacker live on different
	// shards, and loads/stores are the only cross-shard channel with a
	// deterministic order.
	doneFlag := s.Alloc("sc.done", mem.LineSize)

	if v == SCTako {
		// Victim registers an onEviction Morph over its real table
		// addresses at the SHARED cache (Table 7). Eviction callbacks run
		// at the evicted line's home bank — any shard — so each interrupt
		// is shipped to the victim's shard (tile 0) as a message; the
		// detection state is only ever touched there, and the timestamp is
		// the delivery shard's clock. On the classic build delivery is
		// inline on the global kernel.
		deliver := func(now sim.Cycle) {
			interrupts++
			if !detected {
				detected = true
				detectionCycle = now
			}
		}
		s.E.Interrupt = func(tile, morphID int, addr mem.Addr) {
			if s.Sh == nil {
				deliver(s.K.Now())
				return
			}
			victim := s.Sh.Shard(0)
			s.Sh.Shard(tile).Send(0, s.H.Mesh.Latency(tile, 0, 8), func() {
				deliver(victim.K.Now())
			})
		}
	}

	// Victim (tile 0): repeated "encryptions" touching its hot table
	// lines; defends (stops using the table) once interrupted.
	s.Go(0, "victim", func(p *sim.Proc, c *cpu.Core) {
		if v == SCTako {
			spec := core.MorphSpec{
				Name: "aes-guard",
				OnEviction: &core.Callback{
					Instrs: 3, CritPath: 2,
					Fn: func(ctx *engine.Ctx) { ctx.RaiseInterrupt() },
				},
			}
			if _, err := s.Tako.RegisterReal(p, spec, core.Shared, table, 0); err != nil {
				panic(err)
			}
		}
		for c.Load(p, doneFlag.Word(0)) == 0 {
			if detected && !defended {
				p.Sleep(200) // user-space interrupt delivery
				defended = true
			}
			if defended {
				// Defense: stop touching the secret tables (e.g.,
				// switch to a constant-time path [12, 102, 125]).
				c.Compute(p, 64)
				continue
			}
			// One encryption: 16 secret-dependent table reads.
			for i := 0; i < 16; i++ {
				ln := rng.Intn(prm.TableLines)
				if !hot[ln] {
					continue
				}
				c.Load(p, table.Base+mem.Addr(ln*mem.LineSize))
				c.Compute(p, 4)
			}
			c.Compute(p, 32)
		}
	})

	trace := make([]int, prm.TableLines)
	// Attacker (tile 1): prime+probe every table line's set.
	s.Go(1, "attacker", func(p *sim.Proc, c *cpu.Core) {
		for round := 0; round < prm.Rounds; round++ {
			for ln := 0; ln < prm.TableLines; ln++ {
				// Prime: fill the set with our own lines.
				for k := 0; k < ways; k++ {
					c.Load(p, collide(ln, k))
				}
				// Let the victim run.
				p.Sleep(2000)
				// Probe: time each of our lines; a miss means the
				// victim touched this set.
				slow := 0
				for k := 0; k < ways; k++ {
					t0 := p.Now()
					c.Load(p, collide(ln, k))
					if p.Now()-t0 > 60 {
						slow++
					}
				}
				if round > 0 && slow > 0 { // round 0 warms the buffer
					trace[ln] += slow
				}
			}
		}
		c.Store(p, doneFlag.Word(0), 1)
	})

	cycles := s.Run()

	// Attack analysis: lines with repeated slow probes are identified
	// as the victim's hot lines.
	tp, fp := 0, 0
	for ln, n := range trace {
		if n >= prm.Rounds-1 {
			if hot[ln] {
				tp++
			} else {
				fp++
			}
		}
	}
	r := collect(s, "sidechannel", string(v), cycles)
	r.Extra["interrupts"] = float64(interrupts)
	out := SideChannelResult{
		Result:         r,
		Detected:       detected,
		DetectionCycle: detectionCycle,
		TruePositives:  tp,
		FalsePositives: fp,
		EvictionTrace:  trace,
	}
	if v == SCBaseline && detected {
		return out, fmt.Errorf("baseline run cannot detect anything")
	}
	return out, nil
}
