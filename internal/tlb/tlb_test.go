package tlb

import (
	"testing"
	"testing/quick"

	"tako/internal/mem"
)

func small() *TLB {
	return New(Config{Name: "t", Entries: 2, PageBits: 12, HitLatency: 1, WalkLatency: 30})
}

func TestMissThenHit(t *testing.T) {
	tl := small()
	lat, hit := tl.Lookup(0x1234)
	if hit || lat != 31 {
		t.Fatalf("first lookup: lat=%d hit=%v", lat, hit)
	}
	lat, hit = tl.Lookup(0x1FFF) // same 4 KB page
	if !hit || lat != 1 {
		t.Fatalf("second lookup: lat=%d hit=%v", lat, hit)
	}
	if tl.Hits != 1 || tl.Misses != 1 {
		t.Fatalf("stats: %d/%d", tl.Hits, tl.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	tl := small()
	tl.Lookup(0x0000) // page 0
	tl.Lookup(0x1000) // page 1
	tl.Lookup(0x0000) // touch page 0: page 1 is now LRU
	tl.Lookup(0x2000) // page 2 evicts page 1
	if tl.Entries() != 2 {
		t.Fatalf("entries = %d", tl.Entries())
	}
	if _, hit := tl.Lookup(0x0000); !hit {
		t.Fatal("MRU page evicted")
	}
	if _, hit := tl.Lookup(0x1000); hit {
		t.Fatal("LRU page survived")
	}
}

func TestFlushRegion(t *testing.T) {
	tl := New(Config{Name: "t", Entries: 8, PageBits: 12, HitLatency: 1, WalkLatency: 30})
	tl.Lookup(0x1000)
	tl.Lookup(0x2000)
	tl.Lookup(0x9000)
	tl.FlushRegion(mem.Region{Base: 0x1000, Size: 0x2000}) // pages 1,2
	if _, hit := tl.Lookup(0x1000); hit {
		t.Fatal("flushed page still present")
	}
	if _, hit := tl.Lookup(0x9000); !hit {
		t.Fatal("unrelated page flushed")
	}
	if tl.Shootdowns != 1 {
		t.Fatalf("shootdowns = %d", tl.Shootdowns)
	}
}

func TestHugePages(t *testing.T) {
	tl := New(DefaultRTLBConfig())
	tl.Lookup(0x0)
	if _, hit := tl.Lookup(0x1F_FFFF); !hit {
		t.Fatal("same 2MB page missed")
	}
	if _, hit := tl.Lookup(0x20_0000); hit {
		t.Fatal("next 2MB page hit")
	}
}

func TestHitRate(t *testing.T) {
	tl := small()
	if tl.HitRate() != 1 {
		t.Fatal("empty TLB hit rate should be 1")
	}
	tl.Lookup(0)
	tl.Lookup(0)
	tl.Lookup(0)
	if hr := tl.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate = %v", hr)
	}
}

// Property: entry count never exceeds capacity.
func TestQuickCapacityBound(t *testing.T) {
	tl := New(Config{Name: "q", Entries: 4, PageBits: 12, HitLatency: 1, WalkLatency: 10})
	f := func(pages []uint16) bool {
		for _, p := range pages {
			tl.Lookup(mem.Addr(p) << 12)
			if tl.Entries() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
