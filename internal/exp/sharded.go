package exp

import (
	"fmt"
	"time"

	"tako/internal/cpu"
	"tako/internal/mem"
	"tako/internal/morphs"
	"tako/internal/sim"
	"tako/internal/stats"
	"tako/internal/system"
)

// The "sharded" experiment is simulator engineering rather than a paper
// artifact: it runs one cross-tile coherence workload on the baseline
// machine under every engine the simulator offers — the classic
// single-queue kernel, the partitioned kernel (TilePar), and the
// tile-sharded message-passing engine at several worker counts — and
// tabulates cycles and op counts side by side.
//
// Two properties are asserted, not just printed:
//
//   - the sharded rows are byte-identical at every worker count
//     (sequenced, 2, 4): same cycles, same ops, same metrics snapshot;
//   - every engine commits the same architectural values (each tile's
//     readback of every stripe after the counter barrier).
//
// Cycle counts legitimately differ between the sharded engine and the
// classic kernels: cross-tile operations pay real message round trips
// on the sharded build, while the classic engine resolves directory and
// home-bank state under one clock. The table shows that divergence
// honestly instead of hiding it.

type shardedVariant struct {
	name    string
	cfg     func(tiles int) system.Config
	sharded bool
}

func shardedVariants(tiles int) []shardedVariant {
	classic := func(tilePar int) func(int) system.Config {
		return func(tiles int) system.Config {
			cfg := system.Default(tiles)
			cfg.NoTako = true
			cfg.TilePar = tilePar
			return cfg
		}
	}
	shard := func(workers int) func(int) system.Config {
		return func(tiles int) system.Config {
			cfg := system.Default(tiles)
			cfg.NoTako = true
			cfg.Sharded = true
			cfg.ShardWorkers = workers
			cfg.Hier.FreshChecks = false
			return cfg
		}
	}
	return []shardedVariant{
		{"classic", classic(1), false},
		{fmt.Sprintf("tilepar-%d", tiles), classic(tiles), false},
		{"sharded-seq", shard(0), true},
		{"sharded-w2", shard(2), true},
		{"sharded-w4", shard(4), true},
	}
}

// runShardedVariant executes the shared-counter workload on one engine
// variant: every tile stores a stripe, announces through an atomic
// counter at the home bank, spins until all tiles have, then reads back
// every stripe. The readback is returned alongside the result so the
// driver can cross-check architectural values between engines.
func runShardedVariant(v shardedVariant, tiles, words int) (morphs.Result, [][]uint64, error) {
	start := time.Now()
	s := system.New(v.cfg(tiles))
	data := s.Alloc("data", uint64(tiles*words*8+4096))
	ctr := data.Base + mem.Addr(tiles*words*8+512)
	out := make([][]uint64, tiles)
	for i := 0; i < tiles; i++ {
		out[i] = make([]uint64, tiles*words)
		i := i
		s.Go(i, "worker", func(p *sim.Proc, c *cpu.Core) {
			for j := 0; j < words; j++ {
				c.Store(p, data.Base+mem.Addr((i*words+j)*8), uint64(i*1000+j))
			}
			c.AtomicAddSync(p, ctr, 1)
			for c.Load(p, ctr) != uint64(tiles) {
				p.Sleep(50)
			}
			for k := 0; k < tiles*words; k++ {
				out[i][k] = c.Load(p, data.Base+mem.Addr(k*8))
			}
		})
	}
	cycles := s.Run()
	r := morphs.Result{
		Record:       system.LabelRun(s, "sharded/"+v.name, s.Ops()),
		Study:        "sharded",
		Variant:      v.name,
		Cycles:       cycles,
		EnergyPJ:     s.Meter.TotalPJ(),
		CoreInstrs:   s.TotalInstrs(),
		DRAMAccesses: s.H.DRAMAccesses(),
		WallMS:       float64(time.Since(start)) / float64(time.Millisecond),
	}
	return r, out, nil
}

func init() {
	register(Experiment{
		ID:    "sharded",
		Title: "Engine comparison: classic vs partitioned vs tile-sharded kernels",
		Paper: "not in the paper — simulator engineering: one simulation parallelized across tile shards, byte-identical at any worker count",
		Run: func(quick bool) (*stats.Table, error) {
			tiles, words := 4, 192
			if quick {
				words = 48
			}
			variants := shardedVariants(tiles)
			t := stats.NewTable("Engine comparison — shared-counter workload",
				"engine", "cycles", "ops", "dram", "deterministic")
			type outcome struct {
				r   morphs.Result
				out [][]uint64
			}
			outs := make([]outcome, len(variants))
			_, err := runResults(len(variants), func(i int) (morphs.Result, error) {
				r, out, err := runShardedVariant(variants[i], tiles, words)
				outs[i] = outcome{r, out}
				return r, err
			})
			if err != nil {
				return nil, err
			}
			// Every engine must commit the same architectural values.
			for i, o := range outs {
				for tile := range o.out {
					for k, v := range o.out[tile] {
						if want := uint64((k/words)*1000 + k%words); v != want {
							return nil, fmt.Errorf("%s: tile %d read word %d = %d, want %d",
								variants[i].name, tile, k, v, want)
						}
					}
				}
			}
			// The sharded rows must be identical at every worker count.
			var ref *morphs.Result
			for i, v := range variants {
				if !v.sharded {
					continue
				}
				r := &outs[i].r
				if ref == nil {
					ref = r
					continue
				}
				if r.Cycles != ref.Cycles || recordOps(r) != recordOps(ref) {
					return nil, fmt.Errorf("sharded determinism violated: %s ran %d cycles / %d ops, %s ran %d / %d",
						v.name, r.Cycles, recordOps(r), variants[2].name, ref.Cycles, recordOps(ref))
				}
				if r.Record != nil && ref.Record != nil &&
					fmt.Sprint(r.Record.Metrics) != fmt.Sprint(ref.Record.Metrics) {
					return nil, fmt.Errorf("sharded determinism violated: %s metrics diverge from %s",
						v.name, variants[2].name)
				}
			}
			for i, v := range variants {
				det := "n/a"
				if v.sharded {
					det = "✓ (= sharded-seq)"
				}
				r := outs[i].r
				t.AddRowf(v.name, r.Cycles, recordOps(&r), r.DRAMAccesses, det)
			}
			return t, nil
		},
	})
}

func recordOps(r *morphs.Result) uint64 {
	if r.Record != nil {
		return r.Record.Ops
	}
	return r.CoreInstrs + r.EngineInstrs + r.DRAMAccesses
}
