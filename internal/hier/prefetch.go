package hier

import (
	"tako/internal/mem"
	"tako/internal/sim"
)

// notifyPrefetcher trains the tile's strided L2 prefetcher (Table 3) on
// a demand L2 miss and issues prefetches for confident streams.
//
// Prefetches of phantom ranges trigger onMiss callbacks ahead of the
// core — this is how täkō's HATS stream stays decoupled (§8.2): "while
// the core processes one part of the stream, the prefetcher triggers
// onMiss for subsequent edges."
func (h *Hierarchy) notifyPrefetcher(p *sim.Proc, tileID int, a mem.Addr) {
	if h.cfg.PrefetchDegree <= 0 {
		return
	}
	t := h.tiles[tileID]
	la := a.Line()
	t.streamTick++

	// Match an existing stream whose next expected line is la.
	for i := range t.streams {
		s := &t.streams[i]
		if s.stride != 0 && s.lastLine+mem.Addr(s.stride) == la {
			s.lastLine = la
			s.lastUse = t.streamTick
			if s.confidence < 4 {
				s.confidence++
			}
			if s.confidence >= 2 {
				for d := 1; d <= h.cfg.PrefetchDegree; d++ {
					h.issuePrefetch(tileID, la+mem.Addr(int64(d)*s.stride))
				}
			}
			return
		}
	}
	// Train: a miss within 4 lines of a stream's last miss sets its
	// stride.
	for i := range t.streams {
		s := &t.streams[i]
		delta := int64(la) - int64(s.lastLine)
		if delta != 0 && delta >= -4*mem.LineSize && delta <= 4*mem.LineSize {
			s.stride = delta
			s.lastLine = la
			s.confidence = 1
			s.lastUse = t.streamTick
			return
		}
	}
	// Allocate a stream, replacing the least recently used.
	if len(t.streams) < h.cfg.PrefetchStreams {
		t.streams = append(t.streams, stream{lastLine: la, lastUse: t.streamTick})
		return
	}
	victim := 0
	for i := range t.streams {
		if t.streams[i].lastUse < t.streams[victim].lastUse {
			victim = i
		}
	}
	t.streams[victim] = stream{lastLine: la, lastUse: t.streamTick}
}

// issuePrefetch launches an asynchronous prefetch of la into the tile's
// L2, bounded by an in-flight limit and deduplicated against present and
// pending lines.
func (h *Hierarchy) issuePrefetch(tileID int, la mem.Addr) {
	t := h.tiles[tileID]
	if t.prefetchInflight >= h.cfg.PrefetchDegree*2 {
		return
	}
	if t.l2.Contains(la) || t.pending.locked(la) {
		return
	}
	t.prefetchInflight++
	h.hot.prefetchIssued.Inc()
	t.K.GoArgs("prefetch", h.prefetchFn, uint64(tileID), uint64(la))
}
