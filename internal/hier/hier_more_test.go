package hier

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/trace"
)

func TestLoadLineStoreLineRoundTrip(t *testing.T) {
	k, h := newH(2)
	k.Go("core", func(p *sim.Proc) {
		var line mem.Line
		for i := 0; i < mem.WordsPerLine; i++ {
			line.SetWord(i, uint64(100+i))
		}
		h.StoreLine(p, 0, 0x7000, &line)
		got := h.LoadLine(p, 1, 0x7000) // cross-tile vector read
		for i := 0; i < mem.WordsPerLine; i++ {
			if got.Word(i) != uint64(100+i) {
				t.Errorf("word %d = %d", i, got.Word(i))
			}
		}
	})
	k.Run()
}

func TestStoreLineNTBypassesAndSupersedes(t *testing.T) {
	k, h := newH(2)
	k.Go("core", func(p *sim.Proc) {
		// Tile 1 caches the line first.
		h.Store(p, 1, 0x8000, 5)
		var line mem.Line
		line.SetWord(0, 99)
		h.StoreLineNT(p, 0, 0x8000, &line)
		// The NT store superseded tile 1's dirty copy.
		if v := h.Load(p, 1, 0x8000); v != 99 {
			t.Errorf("after NT store, read %d, want 99", v)
		}
	})
	k.Run()
	if h.Metrics.Get("nt.stores") != 1 {
		t.Fatalf("nt.stores = %d", h.Metrics.Get("nt.stores"))
	}
}

func TestStoreLineNTToUncachedGoesToDRAM(t *testing.T) {
	k, h := newH(2)
	k.Go("core", func(p *sim.Proc) {
		var line mem.Line
		line.SetWord(3, 7)
		h.StoreLineNT(p, 0, 0xA000, &line)
	})
	k.Run()
	if h.DRAM.Store().ReadU64(0xA018) != 7 {
		t.Fatal("NT store to uncached line did not reach memory")
	}
	if h.DRAM.Writes != 1 {
		t.Fatalf("DRAM writes = %d, want 1 (no read-for-ownership)", h.DRAM.Writes)
	}
	if h.DRAM.Reads != 0 {
		t.Fatalf("DRAM reads = %d, want 0", h.DRAM.Reads)
	}
}

func TestEngineAtomicAddAndPersist(t *testing.T) {
	k, h := newH(2)
	k.Go("engine", func(p *sim.Proc) {
		h.EngineAtomicAddWord(p, 0, 0xB000, 3, LevelPrivate)
		h.EngineAtomicAddWord(p, 1, 0xB000, 4, LevelShared)
		var line mem.Line
		line.SetWord(0, 42)
		h.EnginePersistLine(p, 0, 0xC000, &line, LevelPrivate)
	})
	k.Run()
	if got := h.DebugReadWord(0xB000); got != 7 {
		t.Fatalf("engine adds = %d, want 7", got)
	}
	// Persisted line must be in the backing store, not just caches.
	if h.DRAM.Store().ReadU64(0xC000) != 42 {
		t.Fatal("persist did not reach memory")
	}
}

func TestInvalidateRegionDropsAndPreserves(t *testing.T) {
	k, h := newH(2)
	region := mem.Region{Name: "r", Base: 0xD000, Size: 256}
	k.Go("core", func(p *sim.Proc) {
		h.Store(p, 0, 0xD000, 11)
		h.Store(p, 0, 0xD040, 22)
		h.InvalidateRegion(p, region)
	})
	k.Run()
	// Data survived (written back), but no cache holds it.
	if h.DRAM.Store().ReadU64(0xD000) != 11 || h.DRAM.Store().ReadU64(0xD040) != 22 {
		t.Fatal("invalidate lost dirty data")
	}
	for _, tl := range h.tiles {
		for _, c := range tl.privateCaches() {
			if c.Contains(0xD000) || c.Contains(0xD040) {
				t.Fatal("region line still cached")
			}
		}
		if tl.l3.Contains(0xD000) {
			t.Fatal("region line still in L3")
		}
	}
}

func TestHomeTileInterleaving(t *testing.T) {
	_, h := newH(4)
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		seen[h.HomeTile(mem.Addr(i*64))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("consecutive lines map to %d homes, want 4", len(seen))
	}
	if h.HomeTile(0) != h.HomeTile(63) {
		t.Fatal("same line, different homes")
	}
}

func TestPrefetcherStreamReplacement(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(1)
	cfg.PrefetchStreams = 2
	h := New(k, cfg, energy.NewMeter(), nil, nil)
	k.Go("core", func(p *sim.Proc) {
		// Three interleaved streams with only two stream slots: still
		// no crash, and at least one stream trains.
		for i := 0; i < 48; i++ {
			base := mem.Addr(0x100_0000 * (1 + i%3))
			h.Load(p, 0, base+mem.Addr((i/3)*64))
		}
	})
	k.Run()
	if len(h.tiles[0].streams) > 2 {
		t.Fatalf("stream table grew to %d", len(h.tiles[0].streams))
	}
}

func TestRMOBackpressure(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(2)
	cfg.RMOLimit = 2
	h := New(k, cfg, energy.NewMeter(), nil, nil)
	k.Go("core", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			h.AtomicAdd(p, 0, mem.Addr(0x9000+(i%4)*64), 1)
		}
		h.DrainRMOs(p, 0)
	})
	k.Run()
	var total uint64
	for i := 0; i < 4; i++ {
		total += h.DebugReadWord(mem.Addr(0x9000 + i*64))
	}
	if total != 50 {
		t.Fatalf("sum = %d, want 50", total)
	}
}

// Property: a random single-tile op sequence matches a shadow map.
func TestQuickSingleTileShadow(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		k := sim.NewKernel()
		h := New(k, ScaledConfig(1, 8), energy.NewMeter(), nil, nil)
		shadow := map[mem.Addr]uint64{}
		ok := true
		k.Go("core", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < int(nOps)+16; i++ {
				a := mem.Addr(0x4000 + rng.Intn(128)*8)
				switch rng.Intn(4) {
				case 0:
					v := rng.Uint64()
					h.Store(p, 0, a, v)
					shadow[a] = v
				case 1:
					if got := h.Load(p, 0, a); got != shadow[a] {
						ok = false
					}
				case 2:
					h.AtomicAddLocal(p, 0, a, 3)
					shadow[a] += 3
				case 3:
					old := h.AtomicExchange(p, 0, a, 9)
					if old != shadow[a] {
						ok = false
					}
					shadow[a] = 9
				}
			}
		})
		k.Run()
		for a, v := range shadow {
			if h.DebugReadWord(a) != v {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMorphInvariantAfterMixedTraffic(t *testing.T) {
	region := mem.Region{Name: "ph", Base: 0x4000_0000_0000, Size: 1 << 20, Phantom: true}
	reg := &fakeRegistry{bindings: []Binding{phantomBinding(region, LevelShared)}}
	k := sim.NewKernel()
	r := &fakeRunner{k: k, delay: 2}
	h := New(k, ScaledConfig(2, 16), energy.NewMeter(), reg, r)
	for tile := 0; tile < 2; tile++ {
		tile := tile
		k.Go("w", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(int64(tile)))
			for i := 0; i < 800; i++ {
				if rng.Intn(2) == 0 {
					h.AtomicAdd(p, tile, region.Base+mem.Addr(rng.Intn(4096)*64), 1)
				} else {
					h.Load(p, tile, mem.Addr(0x50_0000+rng.Intn(4096)*64))
				}
			}
			h.DrainRMOs(p, tile)
		})
	}
	k.Run()
	if err := h.CheckMorphInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(k.Blocked()) != 0 {
		t.Fatalf("blocked: %v", k.Blocked())
	}
}

func TestTracerCapturesCallbackEvents(t *testing.T) {
	region := mem.Region{Name: "ph", Base: 0x4000_0000_0000, Size: 64 * 1024, Phantom: true}
	reg := &fakeRegistry{bindings: []Binding{phantomBinding(region, LevelPrivate)}}
	k, h, _ := newMorphH(2, reg)
	tr := trace.New(256)
	tr.Filter("cb.*", "flush.*")
	h.AttachTracer(tr)
	k.Go("core", func(p *sim.Proc) {
		h.Load(p, 0, region.Base)
		h.Store(p, 0, region.Base+64, 5)
		h.FlushRegion(p, 0, region, LevelPrivate)
	})
	k.Run()
	counts := tr.CountByKind()
	if counts["cb.onMiss"] != 2 {
		t.Fatalf("traced onMiss = %d, want 2 (counts %v)", counts["cb.onMiss"], counts)
	}
	if counts["cb.onWriteback"] != 1 || counts["cb.onEviction"] != 1 {
		t.Fatalf("traced evictions: %v", counts)
	}
	if counts["flush.start"] != 1 || counts["flush.done"] != 1 {
		t.Fatalf("flush events: %v", counts)
	}
}
