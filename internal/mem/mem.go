// Package mem provides the memory substrate for the täkō simulator:
// physical addresses, 64-byte cache lines with typed accessors, a sparse
// backing store, and an address-space allocator that distinguishes real
// (memory-backed) regions from phantom regions, which exist only in
// caches and are materialized by Morph callbacks (täkō §4.1).
package mem

import (
	"encoding/binary"
	"fmt"
)

// Addr is a (physical) memory address. The simulator uses a single flat
// address space; virtual addresses equal physical addresses except for
// phantom ranges, which have no backing frames at all.
type Addr uint64

const (
	// LineSize is the cache line size in bytes (Table 3: 64 B lines).
	LineSize = 64
	// LineShift is log2(LineSize).
	LineShift = 6
	// WordsPerLine is the number of 64-bit words per line.
	WordsPerLine = LineSize / 8
	// PageSize is the (huge) page granularity used for allocation and
	// TLB modeling. The paper uses 2 MB pages for phantom data (§9);
	// we default allocation alignment to 4 KB and let the TLB model
	// choose its page size.
	PageSize = 4096
)

// Line returns the line-aligned address containing a.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// Offset returns a's byte offset within its cache line.
func (a Addr) Offset() uint64 { return uint64(a) & (LineSize - 1) }

// Page returns the 4 KB-page-aligned address containing a.
func (a Addr) Page() Addr { return a &^ (PageSize - 1) }

func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// Line is the contents of one cache line.
type Line [LineSize]byte

// U64 reads the 64-bit word at byte offset off (must be 8-aligned).
func (l *Line) U64(off uint64) uint64 {
	return binary.LittleEndian.Uint64(l[off : off+8])
}

// SetU64 writes the 64-bit word at byte offset off (must be 8-aligned).
func (l *Line) SetU64(off uint64, v uint64) {
	binary.LittleEndian.PutUint64(l[off:off+8], v)
}

// U32 reads the 32-bit word at byte offset off (must be 4-aligned).
func (l *Line) U32(off uint64) uint32 {
	return binary.LittleEndian.Uint32(l[off : off+4])
}

// SetU32 writes the 32-bit word at byte offset off (must be 4-aligned).
func (l *Line) SetU32(off uint64, v uint32) {
	binary.LittleEndian.PutUint32(l[off:off+4], v)
}

// Word reads the i-th 64-bit word of the line (i in [0, WordsPerLine)).
func (l *Line) Word(i int) uint64 { return l.U64(uint64(i) * 8) }

// SetWord writes the i-th 64-bit word of the line.
func (l *Line) SetWord(i int, v uint64) { l.SetU64(uint64(i)*8, v) }

// IsZero reports whether every byte of the line is zero.
func (l *Line) IsZero() bool {
	for _, b := range l {
		if b != 0 {
			return false
		}
	}
	return true
}

// Memory is a sparse backing store, addressed by line. Missing lines read
// as zero. Memory carries real data so that callback semantics (PHI
// update application, journaling, decompression) can be verified against
// functional baselines.
type Memory struct {
	lines map[Addr]*Line
	// Reads and Writes count line-granularity accesses for DRAM
	// traffic accounting done by callers that bypass the timing model
	// (functional baselines); the timed DRAM model keeps its own stats.
	Reads, Writes uint64
}

// NewMemory returns an empty (all-zero) backing store.
func NewMemory() *Memory {
	return &Memory{lines: make(map[Addr]*Line)}
}

// LineAt returns a mutable pointer to the line containing a, allocating a
// zero line on first touch.
func (m *Memory) LineAt(a Addr) *Line {
	la := a.Line()
	l, ok := m.lines[la]
	if !ok {
		l = new(Line)
		m.lines[la] = l
	}
	return l
}

// PeekLine copies the line containing a into dst without allocating.
func (m *Memory) PeekLine(a Addr, dst *Line) {
	if l, ok := m.lines[a.Line()]; ok {
		*dst = *l
	} else {
		*dst = Line{}
	}
	m.Reads++
}

// WriteLine stores src as the line containing a.
func (m *Memory) WriteLine(a Addr, src *Line) {
	*m.LineAt(a) = *src
	m.Writes++
}

// ReadU64 reads the 64-bit word at a (must be 8-aligned).
func (m *Memory) ReadU64(a Addr) uint64 { return m.LineAt(a).U64(a.Offset()) }

// WriteU64 writes the 64-bit word at a (must be 8-aligned).
func (m *Memory) WriteU64(a Addr, v uint64) { m.LineAt(a).SetU64(a.Offset(), v) }

// ReadU32 reads the 32-bit word at a (must be 4-aligned).
func (m *Memory) ReadU32(a Addr) uint32 { return m.LineAt(a).U32(a.Offset()) }

// WriteU32 writes the 32-bit word at a (must be 4-aligned).
func (m *Memory) WriteU32(a Addr, v uint32) { m.LineAt(a).SetU32(a.Offset(), v) }

// PopulatedLines returns the number of lines that have been touched.
func (m *Memory) PopulatedLines() int { return len(m.lines) }
