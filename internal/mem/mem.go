// Package mem provides the memory substrate for the täkō simulator:
// physical addresses, 64-byte cache lines with typed accessors, a sparse
// backing store, and an address-space allocator that distinguishes real
// (memory-backed) regions from phantom regions, which exist only in
// caches and are materialized by Morph callbacks (täkō §4.1).
package mem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"tako/internal/flat"
)

// Addr is a (physical) memory address. The simulator uses a single flat
// address space; virtual addresses equal physical addresses except for
// phantom ranges, which have no backing frames at all.
type Addr uint64

const (
	// LineSize is the cache line size in bytes (Table 3: 64 B lines).
	LineSize = 64
	// LineShift is log2(LineSize).
	LineShift = 6
	// WordsPerLine is the number of 64-bit words per line.
	WordsPerLine = LineSize / 8
	// PageSize is the (huge) page granularity used for allocation and
	// TLB modeling. The paper uses 2 MB pages for phantom data (§9);
	// we default allocation alignment to 4 KB and let the TLB model
	// choose its page size.
	PageSize = 4096
)

// Line returns the line-aligned address containing a.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// Offset returns a's byte offset within its cache line.
func (a Addr) Offset() uint64 { return uint64(a) & (LineSize - 1) }

// Page returns the 4 KB-page-aligned address containing a.
func (a Addr) Page() Addr { return a &^ (PageSize - 1) }

func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// Line is the contents of one cache line.
type Line [LineSize]byte

// U64 reads the 64-bit word at byte offset off (must be 8-aligned).
func (l *Line) U64(off uint64) uint64 {
	return binary.LittleEndian.Uint64(l[off : off+8])
}

// SetU64 writes the 64-bit word at byte offset off (must be 8-aligned).
func (l *Line) SetU64(off uint64, v uint64) {
	binary.LittleEndian.PutUint64(l[off:off+8], v)
}

// U32 reads the 32-bit word at byte offset off (must be 4-aligned).
func (l *Line) U32(off uint64) uint32 {
	return binary.LittleEndian.Uint32(l[off : off+4])
}

// SetU32 writes the 32-bit word at byte offset off (must be 4-aligned).
func (l *Line) SetU32(off uint64, v uint32) {
	binary.LittleEndian.PutUint32(l[off:off+4], v)
}

// Word reads the i-th 64-bit word of the line (i in [0, WordsPerLine)).
func (l *Line) Word(i int) uint64 { return l.U64(uint64(i) * 8) }

// SetWord writes the i-th 64-bit word of the line.
func (l *Line) SetWord(i int, v uint64) { l.SetU64(uint64(i)*8, v) }

// IsZero reports whether every byte of the line is zero.
func (l *Line) IsZero() bool {
	for _, b := range l {
		if b != 0 {
			return false
		}
	}
	return true
}

const (
	// PageShift is log2(PageSize): the arena's chunk granularity.
	PageShift = 12
	// LinesPerPage is the number of cache lines per arena chunk.
	LinesPerPage = PageSize / LineSize
)

// pageChunk is one page of backing storage: its lines stored inline plus
// a bitmap of which lines have been materialized (touched), so
// PopulatedLines stays line-exact even though allocation is
// page-granular.
type pageChunk struct {
	lines   [LinesPerPage]Line
	touched uint64
}

// slabChunks is how many chunks each allocation slab holds (~256 KB).
// Chunks are handed out from fixed-size slabs, never from a growable
// slice, so *Line pointers returned by LineAt stay valid forever.
const slabChunks = 64

// Memory is a sparse backing store, addressed by line. Missing lines
// read as zero. Memory carries real data so that callback semantics (PHI
// update application, journaling, decompression) can be verified against
// functional baselines.
//
// Storage is a page-granular arena: the first touch of any line in a 4 KB
// page claims a whole pageChunk (64 lines inline) from a slab, and a
// dense open-addressed index maps page number → chunk. Reads and writes
// within a touched page are then one hash probe plus direct array
// indexing — no per-line allocation or per-line map entry.
type Memory struct {
	index  flat.Table[int32] // page number -> index into chunks
	chunks []*pageChunk
	slab   []pageChunk // current slab; chunks are carved off its front
	lines  int64       // materialized lines (PopulatedLines)

	// Reads and Writes count line-granularity accesses for DRAM
	// traffic accounting done by callers that bypass the timing model
	// (functional baselines); the timed DRAM model keeps its own stats.
	// Accounting is symmetric: read accessors (PeekLine, ReadU64,
	// ReadU32) bump Reads; mutating accessors (LineAt, WriteLine,
	// WriteU64, WriteU32) bump Writes.
	Reads, Writes uint64

	// Concurrent mode (SetConcurrent): the page index is guarded by an
	// RWMutex (reads take the read lock; first-touch allocation the write
	// lock), the touched bitmaps and counters become atomic, and line
	// contents rely on the caller's coherence protocol to never write one
	// line from two shards in the same epoch — which the sharded hierarchy
	// guarantees (lines are only written at their home shard).
	conc bool
	mu   sync.RWMutex
}

// NewMemory returns an empty (all-zero) backing store.
func NewMemory() *Memory {
	return &Memory{}
}

// SetConcurrent makes the store safe to share between sharded-kernel
// worker goroutines (see the Memory doc comment). Call before the
// simulation runs. Counter totals and the populated-line count are
// accumulated commutatively, so they are worker-count independent.
func (m *Memory) SetConcurrent() { m.conc = true }

// chunkFor returns the page chunk holding a, claiming one from the slab
// on first touch when alloc is set (nil otherwise).
func (m *Memory) chunkFor(a Addr, alloc bool) *pageChunk {
	page := uint64(a) >> PageShift
	if m.conc {
		m.mu.RLock()
		var ch *pageChunk
		i, ok := m.index.Get(page)
		if ok {
			ch = m.chunks[i]
		}
		m.mu.RUnlock()
		if ok {
			return ch
		}
		if !alloc {
			return nil
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		if i, ok := m.index.Get(page); ok { // raced with another allocator
			return m.chunks[i]
		}
		return m.claim(page)
	}
	if i, ok := m.index.Get(page); ok {
		return m.chunks[i]
	}
	if !alloc {
		return nil
	}
	return m.claim(page)
}

// claim carves a fresh chunk for page (index/slab mutation; callers hold
// the write lock in concurrent mode).
func (m *Memory) claim(page uint64) *pageChunk {
	if len(m.slab) == 0 {
		m.slab = make([]pageChunk, slabChunks)
	}
	ch := &m.slab[0]
	m.slab = m.slab[1:]
	m.index.Put(page, int32(len(m.chunks)))
	m.chunks = append(m.chunks, ch)
	return ch
}

// lineAt is the uncounted accessor behind LineAt and the word helpers:
// it materializes the line (marking it touched) without bumping Reads or
// Writes, so each public accessor charges exactly one counter.
func (m *Memory) lineAt(a Addr) *Line {
	ch := m.chunkFor(a, true)
	li := (uint64(a) >> LineShift) & (LinesPerPage - 1)
	bit := uint64(1) << li
	if m.conc {
		for {
			old := atomic.LoadUint64(&ch.touched)
			if old&bit != 0 {
				break
			}
			if atomic.CompareAndSwapUint64(&ch.touched, old, old|bit) {
				atomic.AddInt64(&m.lines, 1)
				break
			}
		}
	} else if ch.touched&bit == 0 {
		ch.touched |= bit
		m.lines++
	}
	return &ch.lines[li]
}

// addReads/addWrites bump the traffic counters (atomically in concurrent
// mode).
func (m *Memory) addReads() {
	if m.conc {
		atomic.AddUint64(&m.Reads, 1)
		return
	}
	m.Reads++
}

func (m *Memory) addWrites() {
	if m.conc {
		atomic.AddUint64(&m.Writes, 1)
		return
	}
	m.Writes++
}

// LineAt returns a mutable pointer to the line containing a, allocating
// its page on first touch. The pointer stays valid for the Memory's
// lifetime. Because the caller receives mutable access, LineAt counts as
// one line write.
func (m *Memory) LineAt(a Addr) *Line {
	m.addWrites()
	return m.lineAt(a)
}

// PeekLine copies the line containing a into dst without allocating.
func (m *Memory) PeekLine(a Addr, dst *Line) {
	if ch := m.chunkFor(a, false); ch != nil {
		*dst = ch.lines[(uint64(a)>>LineShift)&(LinesPerPage-1)]
	} else {
		*dst = Line{}
	}
	m.addReads()
}

// WriteLine stores src as the line containing a.
func (m *Memory) WriteLine(a Addr, src *Line) {
	*m.lineAt(a) = *src
	m.addWrites()
}

// ReadU64 reads the 64-bit word at a (must be 8-aligned).
func (m *Memory) ReadU64(a Addr) uint64 {
	m.addReads()
	return m.lineAt(a).U64(a.Offset())
}

// WriteU64 writes the 64-bit word at a (must be 8-aligned).
func (m *Memory) WriteU64(a Addr, v uint64) {
	m.addWrites()
	m.lineAt(a).SetU64(a.Offset(), v)
}

// ReadU32 reads the 32-bit word at a (must be 4-aligned).
func (m *Memory) ReadU32(a Addr) uint32 {
	m.addReads()
	return m.lineAt(a).U32(a.Offset())
}

// WriteU32 writes the 32-bit word at a (must be 4-aligned).
func (m *Memory) WriteU32(a Addr, v uint32) {
	m.addWrites()
	m.lineAt(a).SetU32(a.Offset(), v)
}

// PopulatedLines returns the number of lines that have been touched.
func (m *Memory) PopulatedLines() int {
	if m.conc {
		return int(atomic.LoadInt64(&m.lines))
	}
	return int(m.lines)
}
