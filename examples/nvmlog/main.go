// NVM transaction-log example (paper §8.3): append-only transactions on
// persistent memory. The baseline journals every write; täkō stages
// writes in a phantom range and, at commit, lets onWriteback push them
// straight to NVM — journaling only the (rare) lines evicted before
// commit. Reproduces the Fig 19 sweep shape: big wins while transactions
// fit the L2, graceful fallback beyond it.
//
// Run with: go run ./examples/nvmlog
package main

import (
	"fmt"
	"os"

	"tako/internal/morphs"
)

func main() {
	fmt.Println("append-only transactions on NVM (24 txns per size, 4-tile machine)")
	fmt.Println()
	sizes := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 128 << 10}
	res, err := morphs.RunNVMSweep(sizes, 4)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmlog:", err)
		os.Exit(1)
	}
	fmt.Printf("%-8s %14s %14s %9s %12s %16s\n",
		"txn", "journal(cyc)", "täkō(cyc)", "speedup", "energy", "pre-commit-evict")
	for i, size := range sizes {
		base := res[morphs.NVMBaseline][i]
		tako := res[morphs.NVMTako][i]
		fmt.Printf("%5dKB %14d %14d %8.2fx %11.0f%% %16d\n",
			size/1024, base.Cycles, tako.Cycles, tako.Speedup(base),
			-100*tako.EnergySaving(base), int(tako.Extra["journaled_lines"]))
	}
	fmt.Println("\nWhile a transaction fits the 128 KB L2 nothing is evicted before commit,")
	fmt.Println("so the cache IS the journal and täkō skips journaling entirely. At 128 KB")
	fmt.Println("evictions appear and onWriteback journals them — off the core's critical path.")
}
