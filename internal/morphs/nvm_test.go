package morphs

import "testing"

func TestNVMShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	sizes := []int{1 << 10, 16 << 10, 128 << 10}
	res, err := RunNVMSweep(sizes, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, size := range sizes {
		base := res[NVMBaseline][i]
		tako := res[NVMTako][i]
		ideal := res[NVMIdeal][i]
		t.Logf("txn %4dKB: base=%8d tako=%8d ideal=%8d  speedup=%.2fx energy=-%.0f%% instr/8B core %.2f->%.2f total %.2f->%.2f journaled=%v",
			size/1024, base.Cycles, tako.Cycles, ideal.Cycles,
			tako.Speedup(base), 100*tako.EnergySaving(base),
			base.Extra["instr_per_8B_core"], tako.Extra["instr_per_8B_core"],
			base.Extra["instr_per_8B_total"], tako.Extra["instr_per_8B_total"],
			tako.Extra["journaled_lines"])
	}
	// Fig 19 shape: large speedup while transactions fit the L2 (128 KB);
	// falls back toward baseline at 128 KB but still ahead.
	small := res[NVMTako][0].Speedup(res[NVMBaseline][0])
	big := res[NVMTako][len(sizes)-1].Speedup(res[NVMBaseline][len(sizes)-1])
	if small < 1.4 {
		t.Errorf("small-txn speedup %.2fx, want ≥1.4x (paper: up to 2.1x)", small)
	}
	if big >= small {
		t.Errorf("speedup should fall when txns exceed the L2: small %.2fx vs 128KB %.2fx", small, big)
	}
	if big < 1.0 {
		t.Errorf("täkō at 128KB (%.2fx) should still not lose to baseline", big)
	}
	// Fig 20 shape: täkō cuts core instructions per 8B written (paper:
	// ~50% fewer core instructions).
	for i := range sizes {
		base := res[NVMBaseline][i]
		tako := res[NVMTako][i]
		if tako.Extra["instr_per_8B_core"] >= 0.8*base.Extra["instr_per_8B_core"] {
			t.Errorf("txn %dKB: core instr/8B %.2f not well below baseline %.2f",
				sizes[i]/1024, tako.Extra["instr_per_8B_core"], base.Extra["instr_per_8B_core"])
		}
	}
	// Energy: up to 47% savings in the paper.
	if res[NVMTako][0].EnergySaving(res[NVMBaseline][0]) < 0.2 {
		t.Errorf("small-txn energy saving %.0f%%, want ≥20%%",
			100*res[NVMTako][0].EnergySaving(res[NVMBaseline][0]))
	}
}

func TestNVMCrashRecoveryInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prm := DefaultNVMParams(4 << 10)
	prm.Tiles = 2
	prm.Transactions = 12
	// Crash at many points across the run, including mid-transaction
	// and mid-flush: committed transactions must always be intact.
	anyPartial := false
	for _, crash := range []uint64{1, 500, 3_000, 9_000, 17_500, 26_000, 41_000, 60_000, 100_000, 250_000} {
		committed, err := RunNVMCrash(prm, crash)
		if err != nil {
			t.Fatal(err)
		}
		if committed > 0 && committed < prm.Transactions {
			anyPartial = true
		}
	}
	if !anyPartial {
		t.Fatal("no crash point landed mid-run; widen the sweep")
	}
}
