package exp

import (
	"fmt"
	"math/rand"

	"tako/internal/cache"
	"tako/internal/cpu"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/stats"
	"tako/internal/system"
	"tako/internal/workloads"
)

// scaleTier selects the workload tier for experiments that have a
// paper-scale configuration: "quick" (CI-friendly sizes) or "full"
// (uk-2002-class graphs, ≥100M edges). The -scale CLI flag sets it once.
var scaleTier = "quick"

// SetScale selects the workload tier ("quick" or "full") for
// scale-aware experiments (fig25full). Invalid tiers are rejected.
func SetScale(tier string) error {
	switch tier {
	case "quick", "full":
		scaleTier = tier
		return nil
	}
	return fmt.Errorf("unknown scale tier %q (want quick or full)", tier)
}

// Scale returns the active workload tier.
func Scale() string { return scaleTier }

// ffCheckTolerance is the cross-validation oracle's gate: analytical
// and simulated miss ratios must agree within this absolute difference
// at every level, on every golden workload.
const ffCheckTolerance = 0.02

// ffCheckMinReach is the minimum fraction of all accesses that must
// reach a level (in both the simulated and analytical runs) for its
// miss ratio to be gated: below it the ratio is a quotient of near-zero
// counts and carries no signal.
const ffCheckMinReach = 0.01

// ffAccessGen produces the i-th access of a tile's deterministic
// stream, as a line index into the tile's scattered line set and a
// load/store choice.
type ffAccessGen func(rng *rand.Rand, i int) (line int, write bool)

// ffGolden is one golden workload of the cross-validation oracle.
type ffGolden struct {
	name string
	// lines is the per-tile working-set size in cache lines.
	lines int
	// scatter spreads the working set's lines across a sparse region
	// (random set placement, the regime the Poisson hit-probability
	// model assumes); false keeps them consecutive (a real sequential
	// layout, whose perfectly even set spread the model only matches
	// away from the capacity knife edge — docs/performance.md).
	scatter bool
	gen     ffAccessGen
}

// ffScatterSpan is the sparse span (in lines) scattered working sets
// are placed into; only touched lines materialize host memory.
const ffScatterSpan = 1 << 18

// ffGoldenWorkloads are the oracle's golden set, chosen to exercise
// distinct regimes of the reuse-distance spectrum on the scaled
// hierarchy (L1 8 lines, L2 32 lines, 4×128-line L3 banks at the
// oracle's cache scale): L1-straddling reuse, LLC-straddling reuse,
// skewed hot/cold mixes, and a pure sequential stream.
func ffGoldenWorkloads() []ffGolden {
	uniform := func(lines, storePct int) ffAccessGen {
		return func(rng *rand.Rand, i int) (int, bool) {
			return rng.Intn(lines), rng.Intn(100) < storePct
		}
	}
	return []ffGolden{
		{"uniform-l1", 12, true, uniform(12, 10)},
		{"uniform-llc", 256, true, uniform(256, 10)},
		{"hot-cold", 4096, true, func(rng *rand.Rand, i int) (int, bool) {
			line := rng.Intn(6)
			if rng.Intn(10) == 0 {
				line = rng.Intn(4096)
			}
			return line, rng.Intn(100) < 10
		}},
		{"stream", 64, false, func(rng *rand.Rand, i int) (int, bool) {
			return (i / 8) % 64, false // 8 word accesses per line, circular
		}},
	}
}

// ffCheckSystem builds the oracle's machine: a classic-kernel baseline
// hierarchy with true-LRU replacement and no prefetching, the regime
// the analytical model targets (docs/performance.md discusses the
// trrîp and prefetch gaps). ffBudget > 0 arms fast-forward.
func ffCheckSystem(tiles int, ffBudget uint64) *system.System {
	cfg := system.Scaled(tiles, 64)
	cfg.NoTako = true
	cfg.Hier.PrefetchDegree = 0
	cfg.Hier.NewPolicy = func() cache.Policy { return cache.NewLRU() }
	cfg.FastForward = ffBudget
	return system.New(cfg)
}

// ffCheckRun drives one golden workload on one machine: `tiles`
// threads, each issuing `accesses` line-granular loads/stores into a
// disjoint private region from a per-tile deterministic stream.
func ffCheckRun(w ffGolden, tiles, accesses int, ffBudget uint64) *system.System {
	s := ffCheckSystem(tiles, ffBudget)
	for t := 0; t < tiles; t++ {
		t := t
		span := uint64(w.lines)
		if w.scatter {
			span = ffScatterSpan
		}
		r := s.Alloc(fmt.Sprintf("%s.%d", w.name, t), span<<mem.LineShift)
		// The working set's placement: identity for consecutive
		// layouts, a deterministic random spread across the sparse
		// span for scattered ones (both runs draw the same placement).
		place := make([]uint64, w.lines)
		prng := rand.New(rand.NewSource(int64(9000 + t)))
		for i := range place {
			place[i] = uint64(i)
			if w.scatter {
				place[i] = uint64(prng.Intn(ffScatterSpan))
			}
		}
		s.Go(t, "ffcheck", func(p *sim.Proc, _ *cpu.Core) {
			rng := rand.New(rand.NewSource(int64(7000 + t)))
			for i := 0; i < accesses; i++ {
				line, write := w.gen(rng, i)
				a := r.At(place[line] << mem.LineShift)
				if write {
					s.H.Store(p, t, a, uint64(i))
				} else {
					s.H.Load(p, t, a)
				}
			}
		})
	}
	s.Run()
	return s
}

// simLevel is one level's simulated miss ratio plus the share of all
// accesses that reached the level.
type simLevel struct {
	miss, reach float64
}

// simMissRatios extracts the simulator's per-level miss ratios with the
// same denominators the analytical Estimate uses: each level over the
// accesses that reached it, plus each level's traffic share.
func simMissRatios(s *system.System) (l1, l2, l3 simLevel) {
	g := s.H.Metrics.Get
	total := float64(g("l1.hits") + g("l1.misses"))
	level := func(h, m uint64) simLevel {
		if h+m == 0 {
			return simLevel{}
		}
		return simLevel{float64(m) / float64(h+m), float64(h+m) / total}
	}
	l1 = level(g("l1.hits"), g("l1.misses"))
	l2 = level(g("l2.hits"), g("l2.misses"))
	l3 = level(g("l3.hits"), g("l3.misses"))
	return
}

func init() {
	register(Experiment{
		ID:    "ffcheck",
		Title: "Fast-forward cross-validation oracle: analytical vs simulated miss ratios",
		Paper: "standing artifact (not a paper figure): the analytical warmup model must track simulation within 2% absolute per level on LRU golden workloads",
		Run: func(quick bool) (*stats.Table, error) {
			const tiles = 4
			accesses := 96 * 1024
			if quick {
				accesses = 24 * 1024
			}
			t := stats.NewTable("Fast-forward oracle — analytic vs simulated miss ratios",
				"workload", "level", "simulated", "analytic", "abs-delta", "gated")
			var violations []string
			for _, w := range ffGoldenWorkloads() {
				sim := ffCheckRun(w, tiles, accesses, 0)
				ff := ffCheckRun(w, tiles, accesses, 1<<62)
				est, ok := ff.H.FFEstimate()
				if !ok {
					return nil, fmt.Errorf("ffcheck %s: fast-forward produced no estimate", w.name)
				}
				s1, s2, s3 := simMissRatios(sim)
				for _, lv := range []struct {
					name     string
					sim      simLevel
					ana      float64
					anaReach float64
				}{
					{"L1", s1, est.L1Miss, 1},
					{"L2", s2, est.L2Miss, est.L2Reach},
					{"L3", s3, est.L3Miss, est.L3Reach},
				} {
					d := lv.sim.miss - lv.ana
					if d < 0 {
						d = -d
					}
					// A level's miss ratio only means anything when
					// traffic reaches it; ratios of near-zero counts are
					// reported but not gated.
					gated := lv.sim.reach >= ffCheckMinReach && lv.anaReach >= ffCheckMinReach
					mark := "yes"
					if !gated {
						mark = "no (untrafficked)"
					}
					t.AddRowf(w.name, lv.name,
						fmt.Sprintf("%.4f", lv.sim.miss), fmt.Sprintf("%.4f", lv.ana),
						fmt.Sprintf("%.4f", d), mark)
					if gated && d > ffCheckTolerance {
						violations = append(violations, fmt.Sprintf(
							"%s %s: |%.4f - %.4f| = %.4f > %.2f",
							w.name, lv.name, lv.sim.miss, lv.ana, d, ffCheckTolerance))
					}
				}
			}
			if len(violations) > 0 {
				return nil, fmt.Errorf("ffcheck: analytical model diverged from simulation:\n%s\n%s",
					joinLines(violations), t.String())
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "fig25full",
		Title: "Fig 25's graph-size axis at paper scale: fast-forwarded PHI-style scatter",
		Paper: "täkō improves with data size; uk-2002 (|E|≈298M) is its largest graph — this driver reaches ≥100M-edge scale via analytical fast-forward (-scale full)",
		Run: func(quick bool) (*stats.Table, error) {
			type tier struct {
				name   string
				v, e   int
				window uint64
			}
			tr := tier{"quick", 128 * 1024, 2 * 1024 * 1024, 16384}
			if Scale() == "full" {
				// uk-2002-class: ≥100M edges, streamed generation, O(1)
				// graph memory (workloads.EdgeStream).
				tr = tier{"full", 8 << 20, 128 << 20, 131072}
			}
			const tiles = 16
			// Exact closed-form access count: one rank load per vertex,
			// one edge-word load plus one scatter atomic per edge.
			total := uint64(tr.v) + 2*uint64(tr.e)
			cfg := system.Default(tiles)
			cfg.NoTako = true
			cfg.FastForward = total - tr.window

			s := system.New(cfg)
			es := workloads.EdgeStream{V: tr.v, E: tr.e, Seed: 2002}
			ranks := s.Alloc("ranks", uint64(tr.v)*8)
			// Edge words are read-only and zero-filled: the stream's
			// destinations come from the closed form, the loads model the
			// sequential CSR traffic. The region never materializes host
			// pages (reads of untouched simulated pages stay sparse).
			edges := s.Alloc("edges", (uint64(tr.e)*4+7)&^7)
			for t := 0; t < tiles; t++ {
				t := t
				lo, hi := t*tr.v/tiles, (t+1)*tr.v/tiles
				s.Go(t, "scatter", func(p *sim.Proc, _ *cpu.Core) {
					for src := lo; src < hi; src++ {
						contrib := s.H.Load(p, t, ranks.Word(uint64(src)))%16 + 1
						end := es.Offset(src + 1)
						for i := es.Offset(src); i < end; i++ {
							s.H.Load(p, t, edges.At(i*4&^7))
							s.H.AtomicAddLocal(p, t, ranks.Word(es.Dst(i)), contrib)
						}
					}
				})
			}
			cycles := s.Run()

			est, ok := s.H.FFEstimate()
			if !ok {
				return nil, fmt.Errorf("fig25full: fast-forward never engaged")
			}
			ffAcc := s.H.FFAccesses()
			if ffAcc != cfg.FastForward {
				return nil, fmt.Errorf("fig25full: fast-forwarded %d accesses, want %d", ffAcc, cfg.FastForward)
			}
			t := stats.NewTable("Fig 25 (paper scale) — fast-forwarded scatter",
				"tier", "vertices", "edges", "ff-accesses", "window", "est-L1-miss", "est-L2-miss", "est-L3-miss", "window-cycles", "dram-accesses")
			t.AddRowf(tr.name, tr.v, tr.e, ffAcc, tr.window,
				fmt.Sprintf("%.4f", est.L1Miss), fmt.Sprintf("%.4f", est.L2Miss),
				fmt.Sprintf("%.4f", est.L3Miss), uint64(cycles), s.H.DRAMAccesses())
			return t, nil
		},
	})
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n"
		}
		out += "  " + s
	}
	return out
}
