package workloads

// Push-style PageRank with integer contributions: each iteration every
// vertex scatters rank[src]/outdeg(src) to its out-neighbors
// (commutative adds — the access pattern PHI accelerates, §8.1). Integer
// arithmetic keeps the simulated runs bit-exact against these reference
// implementations.

// InitialRank is every vertex's starting rank.
const InitialRank uint64 = 1 << 20

// PageRankRef computes `iters` push iterations functionally and returns
// the final ranks. Dangling vertices (out-degree 0) contribute nothing.
func PageRankRef(g *Graph, iters int) []uint64 {
	ranks := make([]uint64, g.V)
	for i := range ranks {
		ranks[i] = InitialRank
	}
	for it := 0; it < iters; it++ {
		next := make([]uint64, g.V)
		for src := 0; src < g.V; src++ {
			deg := g.OutDegree(src)
			if deg == 0 {
				continue
			}
			contrib := ranks[src] / uint64(deg)
			for _, dst := range g.Neigh(src) {
				next[dst] += contrib
			}
		}
		ranks = next
	}
	return ranks
}

// EdgeVisit is one unit of PageRank edge work: the contribution pushed
// along one edge.
type EdgeVisit struct {
	Src, Dst int
	Contrib  uint64
}

// VertexOrderedEdges enumerates edge visits in vertex (memory) order —
// the baseline traversal whose poor locality HATS attacks (§8.2).
func VertexOrderedEdges(g *Graph, ranks []uint64, visit func(EdgeVisit)) {
	for src := 0; src < g.V; src++ {
		deg := g.OutDegree(src)
		if deg == 0 {
			continue
		}
		contrib := ranks[src] / uint64(deg)
		for _, dst := range g.Neigh(src) {
			visit(EdgeVisit{Src: src, Dst: int(dst), Contrib: contrib})
		}
	}
}

// BDFSEdges enumerates edge visits in bounded depth-first order (HATS
// [92]): from each unvisited root, follow out-edges depth-first up to
// maxDepth, bounding fanout per level, so vertices of one community are
// visited close together. Every edge is visited exactly once: the
// traversal walks the edge array, not the vertex set.
func BDFSEdges(g *Graph, ranks []uint64, maxDepth int, visit func(EdgeVisit)) {
	visited := make([]bool, g.V)
	nextEdge := make([]uint64, g.V)
	for v := range nextEdge {
		nextEdge[v] = g.Offsets[v]
	}
	contrib := func(src int) uint64 {
		deg := g.OutDegree(src)
		if deg == 0 {
			return 0
		}
		return ranks[src] / uint64(deg)
	}
	type frame struct {
		v     int
		depth int
	}
	var stack []frame
	for root := 0; root < g.V; root++ {
		if visited[root] {
			continue
		}
		visited[root] = true
		stack = append(stack[:0], frame{root, 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if nextEdge[f.v] >= g.Offsets[f.v+1] {
				stack = stack[:len(stack)-1]
				continue
			}
			dst := int(g.Neighbors[nextEdge[f.v]])
			nextEdge[f.v]++
			visit(EdgeVisit{Src: f.v, Dst: dst, Contrib: contrib(f.v)})
			if !visited[dst] && f.depth < maxDepth {
				visited[dst] = true
				stack = append(stack, frame{dst, f.depth + 1})
			}
		}
	}
}

// CountEdges returns how many edge visits an enumerator produces (test
// helper: both orders must cover every edge exactly once).
func CountEdges(enumerate func(func(EdgeVisit))) int {
	n := 0
	enumerate(func(EdgeVisit) { n++ })
	return n
}

// ApplyVisits folds edge visits into a rank vector (reference semantics
// for one scatter phase).
func ApplyVisits(g *Graph, enumerate func(func(EdgeVisit))) []uint64 {
	next := make([]uint64, g.V)
	enumerate(func(ev EdgeVisit) { next[ev.Dst] += ev.Contrib })
	return next
}
