// Package noc models the on-chip interconnect: a k×k mesh with
// dimension-ordered routing, per-hop router and link delays, and flit
// serialization (Table 3: mesh, 128-bit flits and links, 2/1-cycle
// router/link delay). Contention is not modeled at the link level; the
// hierarchy's queueing (MSHRs, DRAM controllers, engine buffers) captures
// the congestion effects the paper's studies depend on.
package noc

import (
	"fmt"
	"sync/atomic"

	"tako/internal/energy"
	"tako/internal/sim"
	"tako/internal/stats"
)

// Config describes a mesh interconnect.
type Config struct {
	Width, Height int
	RouterDelay   sim.Cycle // per-hop router pipeline delay
	LinkDelay     sim.Cycle // per-hop link traversal delay
	FlitBytes     int       // flit width in bytes
}

// DefaultConfig returns the Table 3 mesh: 4×4 tiles, 128-bit flits,
// 2-cycle routers, 1-cycle links.
func DefaultConfig(tiles int) Config {
	w := 1
	for w*w < tiles {
		w++
	}
	h := (tiles + w - 1) / w
	return Config{Width: w, Height: h, RouterDelay: 2, LinkDelay: 1, FlitBytes: 16}
}

// Mesh is a mesh interconnect between tiles numbered row-major.
type Mesh struct {
	cfg   Config
	meter *energy.Meter

	// Transfers and FlitHops count completed transfers and total
	// flit-hops, for reports.
	Transfers uint64
	FlitHops  uint64

	// conc (SetConcurrent) switches the counters above to atomic adds so
	// Transfer may be called from any shard of a sharded kernel; adds
	// commute, so totals stay worker-count independent. The registry and
	// meter handles must have been made concurrent by the caller.
	conc bool

	// Registry handles (AttachMetrics; nil-safe when never attached).
	mTransfers *stats.Counter
	mFlitHops  *stats.Counter
	mMsgFlits  *stats.Histogram // flits per message (payload size shape)
}

// NewMesh builds a mesh; meter may be nil to skip energy accounting.
func NewMesh(cfg Config, meter *energy.Meter) *Mesh {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic("noc: non-positive mesh dimensions")
	}
	if cfg.FlitBytes <= 0 {
		panic("noc: non-positive flit size")
	}
	return &Mesh{cfg: cfg, meter: meter}
}

// AttachMetrics resolves the mesh's registry handles: noc.transfers and
// noc.flithops counters plus a noc.msg.flits histogram of message sizes.
func (m *Mesh) AttachMetrics(r *stats.Registry) {
	m.mTransfers = r.Counter("noc.transfers")
	m.mFlitHops = r.Counter("noc.flithops")
	m.mMsgFlits = r.Histogram("noc.msg.flits")
}

// Tiles returns the number of tile positions in the mesh.
func (m *Mesh) Tiles() int { return m.cfg.Width * m.cfg.Height }

// XY returns the mesh coordinates of a tile.
func (m *Mesh) XY(tile int) (x, y int) {
	if tile < 0 || tile >= m.Tiles() {
		panic(fmt.Sprintf("noc: tile %d out of range", tile))
	}
	return tile % m.cfg.Width, tile / m.cfg.Width
}

// Hops returns the Manhattan distance between two tiles.
func (m *Mesh) Hops(from, to int) int {
	fx, fy := m.XY(from)
	tx, ty := m.XY(to)
	dx, dy := tx-fx, ty-fy
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Flits returns the number of flits needed for a payload of n bytes
// (minimum 1: even a control message occupies a head flit).
func (m *Mesh) Flits(bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + m.cfg.FlitBytes - 1) / m.cfg.FlitBytes
}

// Latency returns the cycles for a message of the given payload size to
// travel between two tiles: head latency over the hops plus pipelined
// serialization of the remaining flits. Same-tile messages are free.
func (m *Mesh) Latency(from, to, bytes int) sim.Cycle {
	hops := m.Hops(from, to)
	if hops == 0 {
		return 0
	}
	head := sim.Cycle(hops) * (m.cfg.RouterDelay + m.cfg.LinkDelay)
	return head + sim.Cycle(m.Flits(bytes)-1)
}

// MinCrossTileLatency returns the smallest latency any message between
// two distinct tiles can have: one hop (adjacent tiles) carrying a
// single flit. This is the conservative lookahead for tile-sharded
// parallel simulation — no cross-tile interaction modeled through the
// mesh can take effect sooner, so shards may advance that many cycles
// between synchronization barriers (see sim.Sharded).
func (m *Mesh) MinCrossTileLatency() sim.Cycle {
	if m.Tiles() == 1 {
		// Degenerate single-tile mesh: no cross-tile messages exist; any
		// positive lookahead is safe.
		return 1
	}
	return m.cfg.RouterDelay + m.cfg.LinkDelay
}

// SetConcurrent switches the mesh's accounting to atomic accumulation
// for sharded-kernel runs.
func (m *Mesh) SetConcurrent() { m.conc = true }

// Transfer accounts for a message (energy + stats) and returns its
// latency. Callers add the returned latency into their transaction.
func (m *Mesh) Transfer(from, to, bytes int) sim.Cycle {
	hops := m.Hops(from, to)
	flits := m.Flits(bytes)
	if m.conc {
		atomic.AddUint64(&m.Transfers, 1)
		atomic.AddUint64(&m.FlitHops, uint64(hops*flits))
	} else {
		m.Transfers++
		m.FlitHops += uint64(hops * flits)
	}
	m.mTransfers.Inc()
	m.mFlitHops.Add(uint64(hops * flits))
	m.mMsgFlits.Observe(uint64(flits))
	if m.meter != nil && hops > 0 {
		m.meter.Add(energy.NoCFlitHop, uint64(hops*flits))
	}
	return m.Latency(from, to, bytes)
}

// AverageHops returns the mean hop distance over all tile pairs; used in
// reports to sanity-check configurations.
func (m *Mesh) AverageHops() float64 {
	n := m.Tiles()
	total := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			total += m.Hops(i, j)
		}
	}
	return float64(total) / float64(n*n)
}
