package analytic

import (
	"math/rand"
	"testing"

	"tako/internal/mem"
)

// TestStackMatchesBrute pins the Fenwick-tree stack against the literal
// recency-list reference on random traces across several universe sizes
// and skews.
func TestStackMatchesBrute(t *testing.T) {
	for _, tc := range []struct {
		name     string
		universe int
		accesses int
		skewed   bool
	}{
		{"tiny", 8, 5000, false},
		{"small", 100, 20000, false},
		{"medium", 1500, 40000, false},
		{"skewed", 800, 40000, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(tc.universe)))
			fast := NewStack(tc.universe + 1) // never drops
			brute := &BruteStack{}
			for i := 0; i < tc.accesses; i++ {
				var key uint64
				if tc.skewed {
					// Zipf-ish: square the draw to concentrate on low keys.
					u := rng.Float64()
					key = uint64(float64(tc.universe) * u * u)
				} else {
					key = uint64(rng.Intn(tc.universe))
				}
				fd, fc := fast.Touch(key)
				bd, bc := brute.Touch(key)
				if fc != bc || (!fc && fd != bd) {
					t.Fatalf("access %d key %d: fast (%d,%v) != brute (%d,%v)", i, key, fd, fc, bd, bc)
				}
			}
			if fast.Live() != brute.Live() {
				t.Fatalf("live: fast %d != brute %d", fast.Live(), brute.Live())
			}
			fm, bm := fast.MRU(64), brute.MRU(64)
			if len(fm) != len(bm) {
				t.Fatalf("MRU length: %d != %d", len(fm), len(bm))
			}
			for i := range fm {
				if fm[i] != bm[i] {
					t.Fatalf("MRU[%d]: fast %d != brute %d", i, fm[i], bm[i])
				}
			}
		})
	}
}

// TestStackCompactionExact forces many slot-space compactions (the
// initial Fenwick tree holds ~1K slots) and checks distances stay exact
// when the live set fits the keep bound.
func TestStackCompactionExact(t *testing.T) {
	const universe = 3000
	rng := rand.New(rand.NewSource(7))
	fast := NewStack(universe) // live == keep at steady state: compacts, never drops
	brute := &BruteStack{}
	for i := 0; i < 150000; i++ {
		key := uint64(rng.Intn(universe))
		fd, fc := fast.Touch(key)
		bd, bc := brute.Touch(key)
		if fc != bc || (!fc && fd != bd) {
			t.Fatalf("access %d key %d: fast (%d,%v) != brute (%d,%v)", i, key, fd, fc, bd, bc)
		}
	}
	if fast.Dropped != 0 {
		t.Fatalf("dropped %d keys despite live <= keep", fast.Dropped)
	}
}

// TestStackDropTail checks the bounded stack's contract under pressure:
// non-cold distances stay exact, and every spuriously-cold re-touch is
// of a key whose true distance was at least the keep bound (so any
// finite cache estimate is unperturbed).
func TestStackDropTail(t *testing.T) {
	const universe, keep = 1000, 64
	rng := rand.New(rand.NewSource(11))
	fast := NewStack(keep)
	brute := &BruteStack{}
	spurious := 0
	for i := 0; i < 60000; i++ {
		key := uint64(rng.Intn(universe))
		fd, fc := fast.Touch(key)
		bd, bc := brute.Touch(key)
		if !fc {
			if bc || fd != bd {
				t.Fatalf("access %d key %d: non-cold fast (%d) != brute (%d,%v)", i, key, fd, bd, bc)
			}
		} else if !bc {
			spurious++
			if bd < keep {
				t.Fatalf("access %d key %d: dropped key re-touched at true distance %d < keep %d", i, key, bd, keep)
			}
		}
	}
	if fast.Dropped == 0 || spurious == 0 {
		t.Fatalf("expected drop pressure (dropped=%d spurious=%d)", fast.Dropped, spurious)
	}
}

// TestCollectorMatchesBrute pins the three collector granularities —
// per-tile line, global line, per-tile page — against brute references
// on a multi-tile interleaved trace that mixes real regions with a
// phantom range.
func TestCollectorMatchesBrute(t *testing.T) {
	const tiles = 4
	const pageBits = 12 // small pages so the page stream actually exercises reuse
	space := mem.NewSpace()
	real1 := space.Alloc("ranks", 1<<16)
	real2 := space.Alloc("edges", 1<<17)
	phantom := space.AllocPhantom("ubbuf", 1<<16)
	regions := []mem.Region{real1, real2, phantom}

	c := NewCollector(tiles, pageBits, space)
	bTileLine := make([]*BruteStack, tiles)
	bTilePage := make([]*BruteStack, tiles)
	bGlobal := &BruteStack{}
	for i := range bTileLine {
		bTileLine[i] = &BruteStack{}
		bTilePage[i] = &BruteStack{}
	}

	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 40000; i++ {
		tile := rng.Intn(tiles)
		r := regions[rng.Intn(len(regions))]
		a := r.At(uint64(rng.Intn(int(r.Size))) &^ 7)
		write := rng.Intn(4) == 0
		s := c.Touch(tile, a, write)

		la := uint64(a >> mem.LineShift)
		td, tc := bTileLine[tile].Touch(la)
		gd, gc := bGlobal.Touch(la)
		pd, pc := bTilePage[tile].Touch(uint64(a) >> pageBits)
		if s.TileDist != td || s.TileCold != tc {
			t.Fatalf("access %d: tile dist (%d,%v) != brute (%d,%v)", i, s.TileDist, s.TileCold, td, tc)
		}
		if s.GlobalDist != gd || s.GlobalCold != gc {
			t.Fatalf("access %d: global dist (%d,%v) != brute (%d,%v)", i, s.GlobalDist, s.GlobalCold, gd, gc)
		}
		if s.PageDist != pd || s.PageCold != pc {
			t.Fatalf("access %d: page dist (%d,%v) != brute (%d,%v)", i, s.PageDist, s.PageCold, pd, pc)
		}
	}

	// Range attribution: all three regions (including the phantom one)
	// must appear, and bucket totals must account for every access.
	names := map[string]uint64{}
	var total uint64
	for _, h := range c.Ranges() {
		names[h.Name] = h.Accesses
		total += h.Accesses
		var inBuckets uint64
		for _, b := range h.Buckets {
			inBuckets += b
		}
		if inBuckets+h.Cold != h.Accesses {
			t.Fatalf("range %q: buckets %d + cold %d != accesses %d", h.Name, inBuckets, h.Cold, h.Accesses)
		}
	}
	for _, want := range []string{"ranks", "edges", "ubbuf"} {
		if names[want] == 0 {
			t.Fatalf("range %q missing from histograms (got %v)", want, names)
		}
	}
	if total != c.Accesses {
		t.Fatalf("range totals %d != collector accesses %d", total, c.Accesses)
	}
}

// TestHitProb sanity-checks the set-associative hit-probability model.
func TestHitProb(t *testing.T) {
	fa := Geom{Sets: 1, Ways: 64}
	for d := 0; d < 64; d++ {
		if p := fa.HitProb(d, false); p != 1 {
			t.Fatalf("fully-assoc d=%d: got %v, want 1", d, p)
		}
	}
	if p := fa.HitProb(64, false); p != 0 {
		t.Fatalf("fully-assoc d=64: got %v, want 0", p)
	}
	sa := Geom{Sets: 64, Ways: 8}
	if p := sa.HitProb(3, true); p != 0 {
		t.Fatalf("cold: got %v, want 0", p)
	}
	if p := sa.HitProb(7, false); p != 1 {
		t.Fatalf("d<ways: got %v, want 1", p)
	}
	prev := 1.0
	for d := 8; d < 4096; d += 64 {
		p := sa.HitProb(d, false)
		if p < 0 || p > 1 {
			t.Fatalf("d=%d: p=%v out of range", d, p)
		}
		if p > prev+1e-12 {
			t.Fatalf("d=%d: p=%v not monotone (prev %v)", d, p, prev)
		}
		prev = p
	}
	// At capacity the set-associative hit probability should be well
	// below 1 but nonzero; far beyond capacity it should vanish.
	if p := sa.HitProb(sa.Lines(), false); p <= 0 || p >= 0.9 {
		t.Fatalf("at capacity: p=%v implausible", p)
	}
	if p := sa.HitProb(sa.Lines()*100, false); p != 0 {
		t.Fatalf("far beyond capacity: p=%v, want 0", p)
	}
}
