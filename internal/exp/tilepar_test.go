package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"tako/internal/morphs"
	"tako/internal/system"
)

// TestTileParMatchesSequential is the system-level determinism gate for
// the tile-sharded kernel: a full case-study experiment (fresh
// simulations, no run cache) renders a byte-identical table and
// byte-identical captured run records — labels, ops, cycles, the whole
// metrics registry snapshot — at kernel shard widths 1, 2, 4, and 16.
// Partitioning only moves events between queues; the global
// (cycle, sequence) dispatch order, and therefore every simulated cycle
// count, must not change. CI runs this under -race as the data-race
// probe for the partitioned kernel.
func TestTileParMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prevCache := morphs.SetRunCache(false) // fresh simulations at every width
	defer morphs.SetRunCache(prevCache)
	defer system.SetDefaultTilePar(1)

	system.SetDefaultTilePar(1)
	seqTbl, seqRuns := captureExp(t, "fig6")
	seq, err := json.Marshal(seqRuns)
	if err != nil {
		t.Fatal(err)
	}

	for _, width := range []int{2, 4, 16} {
		t.Run(fmt.Sprintf("tilepar=%d", width), func(t *testing.T) {
			system.SetDefaultTilePar(width)
			tbl, runs := captureExp(t, "fig6")
			if tbl != seqTbl {
				t.Errorf("table differs between -tile-par 1 and %d\n--- 1 ---\n%s--- %d ---\n%s",
					width, seqTbl, width, tbl)
			}
			par, err := json.Marshal(runs)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(seq, par) {
				t.Errorf("captured run records differ between -tile-par 1 and %d", width)
			}
		})
	}
}
