package analytic

import (
	"fmt"
	"sort"

	"tako/internal/mem"
)

// histBuckets is the number of log2 reuse-distance buckets per range:
// bucket i counts distances in [2^i, 2^(i+1)) (bucket 0 is distance 0),
// which comfortably spans line-granular working sets up to 2^38 lines.
const histBuckets = 40

// Sample is the raw reuse-distance observation for one access, exposed
// so property tests can pin the collector against BruteStack and so the
// Model can turn distances into per-level hit probabilities.
type Sample struct {
	Tile int
	Line mem.Addr // line address (byte address >> LineShift)

	// TileDist is the LRU stack distance within the accessing tile's
	// private stream, GlobalDist within the merged unfiltered all-tile
	// stream (occupancy/range diagnostics and warm-state seeding),
	// PageDist within the tile's page-granular stream (models the
	// per-tile dTLB). TileDist is only collected while the level filters
	// are unarmed: once SetFilters has armed the exact private-content
	// filters, they subsume both of its uses (private hit modeling and
	// warm-state seeding) and the per-tile stack is skipped.
	TileDist   int
	TileCold   bool
	GlobalDist int
	GlobalCold bool
	PageDist   int
	PageCold   bool

	// Filtered-stream observations, present when the collector's level
	// filters are armed (SetFilters): the simulator's L2 only observes
	// accesses that missed L1, and the shared L3 only accesses that
	// missed both private levels, so their reuse distances must be
	// measured in those filtered streams. ReachL2/ReachL3 report
	// whether this access reached the level (decided by exact
	// functional LRU content of the level above); the distances are
	// stack distances within that level's own filtered stream.
	ReachL2 bool
	L2Dist  int
	L2Cold  bool
	ReachL3 bool
	L3Dist  int
	L3Cold  bool

	Write bool
}

// RangeHist is a per-address-range log2 reuse-distance histogram over
// the global (all-tile) line stream.
type RangeHist struct {
	Name     string
	Accesses uint64
	Cold     uint64
	Buckets  [histBuckets]uint64
}

// Collector ingests the workload's access stream — with no event kernel
// in the loop — and maintains exact LRU stack distances at the three
// granularities the hierarchy's miss behaviour depends on, plus
// per-address-range histograms for attribution.
//
// Phantom-region addresses are tracked like any others: the hierarchy
// caches phantom lines normally (only their backing data is synthetic),
// so their reuse distances displace real lines exactly as in simulation.
type Collector struct {
	tiles    int
	pageBits uint

	tileLine []*Stack
	tilePage []*Stack
	global   *Stack

	// Level filters (SetFilters): exact functional L1/L2 content per
	// tile gates which accesses feed the filtered L2/L3 stacks.
	filterL1 []*exactCache
	filterL2 []*exactCache
	tileL2   []*Stack // per-tile L1-miss-filtered stream
	globalL3 *Stack   // merged private-miss-filtered stream

	space   *mem.Space
	ranges  []RangeHist
	rangeOf flatTable // page -> range index + 1 (0 = unresolved)

	Accesses uint64
	Writes   uint64
}

// NewCollector builds a collector for a machine with the given tile
// count and TLB page size. space may be nil, in which case range
// histograms are collapsed into a single "all" range.
func NewCollector(tiles int, pageBits uint, space *mem.Space) *Collector {
	c := &Collector{
		tiles:    tiles,
		pageBits: pageBits,
		tileLine: make([]*Stack, tiles),
		tilePage: make([]*Stack, tiles),
		// Global stream bounds the shared-L3 model: keep far above the
		// aggregate L3 capacity (16 tiles x 512 KB = 128K lines).
		global: NewStack(1 << 21),
		space:  space,
	}
	for i := range c.tileLine {
		// Private stream bound: far above L1+L2 capacity (2.5K lines).
		c.tileLine[i] = NewStack(1 << 15)
		c.tilePage[i] = NewStack(1 << 12)
	}
	c.ranges = append(c.ranges, RangeHist{Name: "all"})
	return c
}

// SetFilters arms the level filters with the private caches' geometry:
// subsequent Touches additionally report filtered-stream observations
// (Sample.ReachL2/L2Dist/ReachL3/L3Dist) for the Model.
func (c *Collector) SetFilters(l1, l2 Geom) {
	c.filterL1 = make([]*exactCache, c.tiles)
	c.filterL2 = make([]*exactCache, c.tiles)
	c.tileL2 = make([]*Stack, c.tiles)
	for i := 0; i < c.tiles; i++ {
		c.filterL1[i] = newExactCache(l1)
		c.filterL2[i] = newExactCache(l2)
		c.tileL2[i] = NewStack(1 << 15)
	}
	c.globalL3 = NewStack(1 << 21)
}

// Touch records one access from tile to byte address a and returns the
// raw distances observed.
func (c *Collector) Touch(tile int, a mem.Addr, write bool) Sample {
	la := a >> mem.LineShift
	s := Sample{Tile: tile, Line: la, Write: write}
	s.GlobalDist, s.GlobalCold = c.global.Touch(uint64(la))
	s.PageDist, s.PageCold = c.tilePage[tile].Touch(uint64(a) >> c.pageBits)
	if c.filterL1 == nil {
		s.TileDist, s.TileCold = c.tileLine[tile].Touch(uint64(la))
	} else {
		if hit, _, _ := c.filterL1[tile].access(uint64(la)); !hit {
			s.ReachL2 = true
			s.L2Dist, s.L2Cold = c.tileL2[tile].Touch(uint64(la))
			if l2hit, victim, evicted := c.filterL2[tile].access(uint64(la)); !l2hit {
				s.ReachL3 = true
				s.L3Dist, s.L3Cold = c.globalL3.Touch(uint64(la))
				if evicted {
					// Inclusive hierarchy: an L2 eviction back-invalidates
					// the tile's L1 copy, so the victim must leave the L1
					// filter too. Without this the model never sees the
					// L1-resident-but-L2-evicted lines that re-fetch
					// through (and hit) the shared level.
					c.filterL1[tile].invalidate(victim)
				}
			}
		}
	}
	c.Accesses++
	if write {
		c.Writes++
	}
	h := &c.ranges[c.rangeIdx(a)]
	h.Accesses++
	if s.GlobalCold {
		h.Cold++
	} else {
		h.Buckets[log2Bucket(s.GlobalDist)]++
	}
	return s
}

// rangeIdx resolves a byte address to its histogram range, memoized at
// page granularity (regions are page-aligned in practice; a page
// straddling two regions attributes to the first toucher's region,
// which is fine for a diagnostic histogram).
func (c *Collector) rangeIdx(a mem.Addr) int {
	if c.space == nil {
		return 0
	}
	page := uint64(a) >> c.pageBits
	if v, ok := c.rangeOf.get(page); ok {
		return v
	}
	idx := 0
	if r, ok := c.space.FindRegion(a); ok {
		idx = -1
		for i := range c.ranges {
			if c.ranges[i].Name == r.Name {
				idx = i
				break
			}
		}
		if idx < 0 {
			idx = len(c.ranges)
			c.ranges = append(c.ranges, RangeHist{Name: r.Name})
		}
	}
	c.rangeOf.put(page, idx)
	return idx
}

func log2Bucket(d int) int {
	b := 0
	for d > 1 {
		d >>= 1
		b++
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Ranges returns the per-range histograms, named ranges sorted by
// access count (the catch-all "all" range first when space is nil).
func (c *Collector) Ranges() []RangeHist {
	out := make([]RangeHist, len(c.ranges))
	copy(out, c.ranges)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Accesses > out[j].Accesses })
	return out
}

// TileMRU returns up to n line addresses most recently touched by tile,
// most recent first — the steady-state private-cache occupancy estimate
// used by warm-state seeding when the exact filters are unarmed (with
// SetFilters armed the per-tile stack is skipped and TileMRU is empty;
// use FilterMRU).
func (c *Collector) TileMRU(tile, n int) []uint64 { return c.tileLine[tile].MRU(n) }

// FilterMRU returns the exact content of tile's L1/L2 filters: resident
// line addresses set-major, each set's lines most recent first. This is
// the private levels' exact steady-state occupancy (including inclusion
// back-invalidations), which warm-state seeding prefers over the
// stack-MRU estimate. Returns nils until SetFilters arms the filters.
func (c *Collector) FilterMRU(tile int) (l1, l2 []uint64) {
	if c.filterL1 == nil {
		return nil, nil
	}
	return c.filterL1[tile].content(), c.filterL2[tile].content()
}

// GlobalMRU returns up to n line addresses most recently touched by any
// tile, most recent first.
func (c *Collector) GlobalMRU(n int) []uint64 { return c.global.MRU(n) }

// PageMRU returns up to n page numbers most recently touched by tile.
func (c *Collector) PageMRU(tile, n int) []uint64 { return c.tilePage[tile].MRU(n) }

// String summarizes the collector for diagnostics.
func (c *Collector) String() string {
	return fmt.Sprintf("analytic.Collector{tiles:%d accesses:%d writes:%d live:%d}",
		c.tiles, c.Accesses, c.Writes, c.global.Live())
}
