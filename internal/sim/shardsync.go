package sim

import "fmt"

// This file adds workload-level synchronization primitives for code
// hosted on a Sharded engine. The classic kernel gives workloads a
// global clock and shared-state barriers (sync.go); neither exists on a
// sharded build, where every cross-shard interaction must be a
// lookahead-respecting message. ShardedBarrier is the message-passing
// form of Barrier, and Sharded.RunUntil is the epoch-clamped form of
// Kernel.RunUntil for crash harnesses.

// Rendezvous is the interface shared by the classic Barrier and the
// sharded ShardedBarrier: a reusable all-arrive/all-release point for a
// fixed set of processes. Workload code written against Rendezvous runs
// unchanged on either engine.
type Rendezvous interface {
	Arrive(p *Proc)
}

var (
	_ Rendezvous = (*Barrier)(nil)
	_ Rendezvous = (*ShardedBarrier)(nil)
)

// ShardOf returns the shard index whose kernel is k, panicking for a
// kernel that belongs to no shard of this engine.
func (s *Sharded) ShardOf(k *Kernel) int {
	for i, sh := range s.shards {
		if sh.K == k {
			return i
		}
	}
	panic("sim: kernel belongs to no shard of this engine")
}

// shardedWaiter is one parked barrier participant: the shard it lives on
// and the (participant-owned, pooled) future its release completes.
type shardedWaiter struct {
	origin int
	fut    *Future
}

// ShardedBarrier is a reusable rendezvous for processes spread across
// the shards of one Sharded engine. Arrivals travel to a home shard as
// mailbox messages (delay = lookahead), the home shard counts them, and
// the last arrival releases every waiter — remote waiters by a
// cross-shard future completion, home-shard waiters by a local event.
// Because arrival messages drain in the canonical epoch order and the
// home-side counter is only ever touched from home-shard events, a
// ShardedBarrier round is byte-identical at any worker count. A release
// costs two lookahead crossings where the classic Barrier costs zero
// cycles; sharded cycle counts honestly differ.
type ShardedBarrier struct {
	s       *Sharded
	home    int
	n       int
	arrived int
	waiters []shardedWaiter
}

// NewShardedBarrier returns a barrier for n participants, coordinated on
// shard home.
func NewShardedBarrier(s *Sharded, home, n int) *ShardedBarrier {
	if n <= 0 {
		panic("sim: barrier needs at least one participant")
	}
	return &ShardedBarrier{s: s, home: s.shardIndex(home), n: n}
}

// Arrive blocks p until all participants of the current generation have
// arrived. p may live on any shard; its arrival is shipped to the home
// shard as a message and its wake-up travels back the same way.
func (b *ShardedBarrier) Arrive(p *Proc) {
	origin := b.s.ShardOf(p.Kernel())
	f := p.Kernel().GetFuture()
	if origin == b.home {
		// Home-shard arrival: the barrier state is owned by this shard,
		// and p is running on it, so the count updates directly.
		b.arriveAt(origin, f)
	} else {
		b.s.Shard(origin).Send(b.home, b.s.lookahead, func() {
			b.arriveAt(origin, f)
		})
	}
	p.Wait(f)
	// Pooled futures completed by a completeAt event recycle themselves;
	// home-shard releases complete through the same event path.
}

// arriveAt runs on the home shard (proc context for home-local arrivals,
// event context for remote ones): count the arrival and release the
// generation when full.
func (b *ShardedBarrier) arriveAt(origin int, f *Future) {
	b.waiters = append(b.waiters, shardedWaiter{origin, f})
	b.arrived++
	if b.arrived < b.n {
		return
	}
	if b.arrived > b.n {
		panic(fmt.Sprintf("sim: %d arrivals at a %d-participant barrier", b.arrived, b.n))
	}
	home := b.s.Shard(b.home)
	for _, w := range b.waiters {
		if w.origin == b.home {
			home.K.completeAt(home.K.now, w.fut)
		} else {
			home.SendComplete(w.origin, b.s.lookahead, w.fut)
		}
	}
	b.arrived = 0
	b.waiters = b.waiters[:0]
}

// RunUntil executes the epoch schedule with the given worker count until
// every event at or before limit has run, then advances every shard
// clock to limit — the sharded form of Kernel.RunUntil, used by crash
// harnesses that stop a machine mid-flight. Epochs are clamped at limit,
// so the executed prefix is exactly the events the unbounded run would
// have executed by then; results are byte-identical at any worker count.
func (s *Sharded) RunUntil(limit Cycle, workers int) {
	n := len(s.shards)
	if workers <= 0 || workers > n {
		workers = n
	}
	if workers == 1 {
		s.runUntilSequenced(limit)
	} else {
		s.runUntilParallel(limit, workers)
	}
	for _, sh := range s.shards {
		sh.K.RunUntil(limit) // no events ≤ limit remain; advances the clock
	}
}

func (s *Sharded) runUntilSequenced(limit Cycle) {
	for {
		s.deliver()
		e, ok := s.minNext()
		if !ok || e > limit {
			return
		}
		until := e + s.lookahead - 1
		if until > limit {
			until = limit
		}
		for id := range s.shards {
			s.runShardEpoch(id, until)
		}
		s.stats.Epochs++
		s.checkFailures()
		if s.barrierHook != nil {
			s.barrierHook()
		}
	}
}

func (s *Sharded) runUntilParallel(limit Cycle, workers int) {
	n := len(s.shards)
	start := make([]chan Cycle, workers)
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		start[w] = make(chan Cycle, 1)
		go func(w int) {
			for until := range start[w] {
				for id := w; id < n; id += workers {
					s.runShardEpoch(id, until)
				}
				done <- struct{}{}
			}
		}(w)
	}
	defer func() {
		for _, c := range start {
			close(c)
		}
	}()
	for {
		s.deliver()
		e, ok := s.minNext()
		if !ok || e > limit {
			return
		}
		until := e + s.lookahead - 1
		if until > limit {
			until = limit
		}
		for w := 0; w < workers; w++ {
			start[w] <- until
		}
		for w := 0; w < workers; w++ {
			<-done
		}
		s.stats.Epochs++
		s.checkFailures()
		if s.barrierHook != nil {
			s.barrierHook()
		}
	}
}
