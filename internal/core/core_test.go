package core_test

import (
	"errors"
	"testing"

	"tako/internal/core"
	"tako/internal/cpu"
	"tako/internal/engine"
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/system"
)

// counterMorph fills lines with a marker and counts invocations.
type counts struct {
	miss, evict, wb int
	lastWBWord      uint64
}

func counterSpec(name string, c *counts) core.MorphSpec {
	return core.MorphSpec{
		Name: name,
		OnMiss: &core.Callback{
			Instrs: 8, CritPath: 3,
			Fn: func(ctx *engine.Ctx) {
				c.miss++
				for i := 0; i < mem.WordsPerLine; i++ {
					ctx.Line.SetWord(i, uint64(ctx.Addr)+uint64(i))
				}
			},
		},
		OnEviction: &core.Callback{
			Instrs: 4, CritPath: 2,
			Fn: func(ctx *engine.Ctx) { c.evict++ },
		},
		OnWriteback: &core.Callback{
			Instrs: 6, CritPath: 3,
			Fn: func(ctx *engine.Ctx) {
				c.wb++
				c.lastWBWord = ctx.Line.Word(0)
			},
		},
	}
}

func TestPhantomMorphLifecycle(t *testing.T) {
	s := system.New(system.Default(4))
	var c counts
	var vals [3]uint64
	s.Go(0, "main", func(p *sim.Proc, cc *cpu.Core) {
		m, err := s.Tako.RegisterPhantom(p, counterSpec("ctr", &c), core.Private, 64*1024, 0)
		if err != nil {
			t.Errorf("register: %v", err)
			return
		}
		a := m.Region.Base
		vals[0] = cc.Load(p, a)     // miss → onMiss
		vals[1] = cc.Load(p, a)     // hit
		vals[2] = cc.Load(p, a+128) // different line → onMiss
		cc.Store(p, a, 777)         // dirty the first line
		s.Tako.FlushData(p, m)      // → onWriteback (dirty) + onEviction (clean)
		if got := cc.Load(p, a); got != uint64(a) {
			t.Errorf("reload after flush = %d, want fresh onMiss fill %d", got, uint64(a))
		}
		s.Tako.Unregister(p, m)
		if _, ok := s.Tako.Binding(0, a); ok {
			t.Error("binding survives unregister")
		}
	})
	s.Run()
	if vals[0] == 0 || vals[0] != vals[1] {
		t.Fatalf("phantom values: %v", vals)
	}
	if c.miss != 3 { // a, a+128, reload of a
		t.Fatalf("onMiss count = %d, want 3", c.miss)
	}
	if c.wb != 1 {
		t.Fatalf("onWriteback count = %d, want 1", c.wb)
	}
	if c.lastWBWord != 777 {
		t.Fatalf("onWriteback saw %d, want 777", c.lastWBWord)
	}
	if c.evict < 1 { // line a+128 was clean at flush; reloaded a flushed at unregister
		t.Fatalf("onEviction count = %d, want ≥1", c.evict)
	}
	if s.H.DRAM.Accesses() != 0 {
		t.Fatalf("phantom Morph touched DRAM %d times", s.H.DRAM.Accesses())
	}
}

func TestOverlapRejected(t *testing.T) {
	s := system.New(system.Default(2))
	var c counts
	s.Go(0, "main", func(p *sim.Proc, cc *cpu.Core) {
		spec := counterSpec("a", &c)
		m, err := s.Tako.RegisterPhantom(p, spec, core.Private, 4096, 0)
		if err != nil {
			t.Errorf("first register failed: %v", err)
			return
		}
		_, err = s.Tako.RegisterReal(p, counterSpec("b", &c), core.Shared,
			mem.Region{Name: "overlap", Base: m.Region.Base, Size: 64}, 0)
		if !errors.Is(err, core.ErrOverlap) {
			t.Errorf("overlap not rejected: %v", err)
		}
	})
	s.Run()
}

func TestBadLevelRejected(t *testing.T) {
	s := system.New(system.Default(2))
	var c counts
	s.Go(0, "main", func(p *sim.Proc, cc *cpu.Core) {
		_, err := s.Tako.RegisterPhantom(p, counterSpec("x", &c), hier.LevelNone, 4096, 0)
		if !errors.Is(err, core.ErrBadLevel) {
			t.Errorf("bad level accepted: %v", err)
		}
	})
	s.Run()
}

func TestOversizedMorphRejected(t *testing.T) {
	s := system.New(system.Default(2))
	spec := core.MorphSpec{
		Name:   "huge",
		OnMiss: &core.Callback{Instrs: 10_000, CritPath: 10, Fn: func(*engine.Ctx) {}},
	}
	s.Go(0, "main", func(p *sim.Proc, cc *cpu.Core) {
		if _, err := s.Tako.RegisterPhantom(p, spec, core.Private, 4096, 0); err == nil {
			t.Error("oversized Morph accepted by 400-slot fabric")
		}
	})
	s.Run()
}

func TestRealAddressMorphEvictionOnly(t *testing.T) {
	// The side-channel pattern (§8.4): Morph on real data, onEviction
	// only. Loads keep load-store semantics (data from memory).
	s := system.New(system.Default(2))
	evictions := 0
	spec := core.MorphSpec{
		Name:       "watch",
		OnEviction: &core.Callback{Instrs: 2, CritPath: 1, Fn: func(*engine.Ctx) { evictions++ }},
	}
	region := s.Alloc("secret", 4096)
	s.H.DRAM.Store().WriteU64(region.Base, 4242)
	s.Go(0, "main", func(p *sim.Proc, cc *cpu.Core) {
		m, err := s.Tako.RegisterReal(p, spec, core.Private, region, 0)
		if err != nil {
			t.Errorf("register real: %v", err)
			return
		}
		if v := cc.Load(p, region.Base); v != 4242 {
			t.Errorf("real Morph load = %d, want 4242 (load-store semantics)", v)
		}
		s.Tako.FlushData(p, m)
	})
	s.Run()
	if evictions != 1 {
		t.Fatalf("onEviction count = %d, want 1", evictions)
	}
}

func TestViewsPerLevel(t *testing.T) {
	s := system.New(system.Default(4))
	mkSpec := func(name string) core.MorphSpec {
		return core.MorphSpec{
			Name:    name,
			OnMiss:  &core.Callback{Instrs: 1, CritPath: 1, Fn: func(*engine.Ctx) {}},
			NewView: func(tile int) interface{} { return &counts{} },
		}
	}
	s.Go(0, "main", func(p *sim.Proc, cc *cpu.Core) {
		priv, err := s.Tako.RegisterPhantom(p, mkSpec("p"), core.Private, 4096, 2)
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		if len(priv.Views()) != 1 {
			t.Errorf("PRIVATE views = %d, want 1", len(priv.Views()))
		}
		if priv.View(2) == nil {
			t.Error("registering tile has no view")
		}
		sh, err := s.Tako.RegisterPhantom(p, mkSpec("s"), core.Shared, 4096, 0)
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		if len(sh.Views()) != 4 {
			t.Errorf("SHARED views = %d, want one per bank (4)", len(sh.Views()))
		}
	})
	s.Run()
}

func TestViewVisibleInCallback(t *testing.T) {
	s := system.New(system.Default(2))
	type state struct{ fills int }
	spec := core.MorphSpec{
		Name: "v",
		OnMiss: &core.Callback{
			Instrs: 1, CritPath: 1,
			Fn: func(ctx *engine.Ctx) {
				ctx.View().(*state).fills++
			},
		},
		NewView: func(tile int) interface{} { return &state{} },
	}
	var m *core.Morph
	s.Go(0, "main", func(p *sim.Proc, cc *cpu.Core) {
		var err error
		m, err = s.Tako.RegisterPhantom(p, spec, core.Private, 4096, 0)
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		cc.Load(p, m.Region.Base)
		cc.Load(p, m.Region.Base+64)
	})
	s.Run()
	if got := m.View(0).(*state).fills; got != 2 {
		t.Fatalf("view state fills = %d, want 2", got)
	}
}

func TestMultipleInstancesCoexist(t *testing.T) {
	s := system.New(system.Default(2))
	var c1, c2 counts
	s.Go(0, "main", func(p *sim.Proc, cc *cpu.Core) {
		m1, err1 := s.Tako.RegisterPhantom(p, counterSpec("a", &c1), core.Private, 4096, 0)
		m2, err2 := s.Tako.RegisterPhantom(p, counterSpec("b", &c2), core.Private, 4096, 0)
		if err1 != nil || err2 != nil {
			t.Errorf("register: %v %v", err1, err2)
			return
		}
		cc.Load(p, m1.Region.Base)
		cc.Load(p, m2.Region.Base)
		cc.Load(p, m2.Region.Base+64)
	})
	s.Run()
	if c1.miss != 1 || c2.miss != 2 {
		t.Fatalf("per-instance misses: %d, %d", c1.miss, c2.miss)
	}
}

func TestSharedMorphCallbacksAtHomeBanks(t *testing.T) {
	s := system.New(system.Default(4))
	tiles := map[int]bool{}
	spec := core.MorphSpec{
		Name: "sh",
		OnMiss: &core.Callback{
			Instrs: 2, CritPath: 1,
			Fn: func(ctx *engine.Ctx) { tiles[ctx.Tile] = true },
		},
	}
	s.Go(0, "main", func(p *sim.Proc, cc *cpu.Core) {
		m, err := s.Tako.RegisterPhantom(p, spec, core.Shared, 64*1024, 0)
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		for i := 0; i < 16; i++ {
			cc.Load(p, m.Region.Base+mem.Addr(i*64))
		}
	})
	s.Run()
	if len(tiles) != 4 {
		t.Fatalf("SHARED onMiss ran on %d banks, want 4 (interleaved homes)", len(tiles))
	}
}

func TestProtectHintKeepsLinesLonger(t *testing.T) {
	// The onReplacement extension (§4.5): a Morph protects one hot
	// phantom line; under eviction pressure the protected line should
	// survive while unprotected siblings churn.
	run := func(protect bool) int {
		cfg := system.Default(1)
		cfg.Hier.L2Size = 8 * 1024 // 128 lines: heavy pressure
		cfg.Hier.L1Size = 1 * 1024
		s := system.New(cfg)
		var hotFills int
		var hotLine mem.Addr
		spec := core.MorphSpec{
			Name: "protected",
			OnMiss: &core.Callback{
				Instrs: 2, CritPath: 1,
				Fn: func(ctx *engine.Ctx) {
					if ctx.Addr == hotLine {
						hotFills++
					}
				},
			},
		}
		if protect {
			spec.ProtectHint = func(a mem.Addr) bool { return a.Line() == hotLine }
		}
		s.Go(0, "main", func(p *sim.Proc, cc *cpu.Core) {
			m, err := s.Tako.RegisterPhantom(p, spec, core.Private, 1<<20, 0)
			if err != nil {
				t.Errorf("%v", err)
				return
			}
			hotLine = m.Region.Base
			for i := 0; i < 2000; i++ {
				cc.Load(p, hotLine)                             // hot line
				cc.Load(p, m.Region.Base+mem.Addr((i%2048)*64)) // churn
			}
		})
		s.Run()
		return hotFills
	}
	unprotected := run(false)
	protected := run(true)
	if protected >= unprotected {
		t.Fatalf("protection did not help: %d fills protected vs %d unprotected",
			protected, unprotected)
	}
	if protected > 3 {
		t.Fatalf("protected hot line still refilled %d times", protected)
	}
}
