package engine

import (
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/sim"
)

// Ctx is the environment a callback executes in. The triggering address
// is locked for the callback's duration (§4.3); its line is accessed
// directly through Line. All other memory goes through the engine's
// coherent L1d, paying modeled latency — and must respect täkō's
// restriction: no access to data with a Morph at the same or a higher
// level (enforced by the hierarchy, which panics on violations).
type Ctx struct {
	P       *sim.Proc
	Tile    int
	Level   hier.Level
	Kind    hier.CallbackKind
	MorphID int

	// Addr is the (line-aligned) address that triggered the callback;
	// Line is its data: onMiss fills it, eviction callbacks read it.
	Addr mem.Addr
	Line *mem.Line

	engines  *Engines
	tile     *engTile
	view     interface{}
	extraOps int
	inflight []*sim.Future
}

// View returns the engine-local view of the Morph object on this tile
// (per-engine state shared by this engine's callbacks, §4.2).
func (c *Ctx) View() interface{} { return c.view }

// Compute charges n additional data-dependent fabric operations beyond
// the callback's static cost (e.g., per-element work discovered at run
// time).
func (c *Ctx) Compute(n int) {
	if n > 0 {
		c.extraOps += n
	}
}

// LoadWord loads the 8-byte word at a through the engine L1d.
func (c *Ctx) LoadWord(a mem.Addr) uint64 {
	c.tile.stats.MemAccesses++
	return c.engines.h.EngineLoadWord(c.P, c.Tile, a, c.Level)
}

// LoadLine loads the full line containing a.
func (c *Ctx) LoadLine(a mem.Addr) mem.Line {
	c.tile.stats.MemAccesses++
	return c.engines.h.EngineLoadLine(c.P, c.Tile, a, c.Level)
}

// LoadLineAsync issues a non-blocking line fetch, exposing the
// memory-level parallelism dataflow fabrics exploit (§5.3). On the
// in-order-core engine it degenerates to a synchronous load. Call
// Drain (or wait the future) before reading the fetched data.
func (c *Ctx) LoadLineAsync(a mem.Addr) *sim.Future {
	c.tile.stats.MemAccesses++
	if c.engines.cfg.InOrderCore {
		c.engines.h.EngineLoadLine(c.P, c.Tile, a, c.Level)
		return sim.CompletedFuture(c.P.Kernel())
	}
	f := sim.NewFuture(c.P.Kernel())
	c.engines.h.EngineLoadLineAsync(c.Tile, a, c.Level, f)
	c.inflight = append(c.inflight, f)
	return f
}

// Drain waits for all async loads issued by this callback.
func (c *Ctx) Drain() {
	for _, f := range c.inflight {
		c.P.Wait(f)
	}
	c.inflight = nil
}

// StoreWord writes the 8-byte word at a through the engine L1d.
func (c *Ctx) StoreWord(a mem.Addr, v uint64) {
	c.tile.stats.MemAccesses++
	c.engines.h.EngineStoreWord(c.P, c.Tile, a, v, c.Level)
}

// StoreLine writes a full line.
func (c *Ctx) StoreLine(a mem.Addr, data *mem.Line) {
	c.tile.stats.MemAccesses++
	c.engines.h.EngineStoreLine(c.P, c.Tile, a, data, c.Level)
}

// StoreLineNT writes a full line non-temporally (no read-for-ownership,
// no cache allocation); used for streaming appends like PHI's bins.
func (c *Ctx) StoreLineNT(a mem.Addr, data *mem.Line) {
	c.tile.stats.MemAccesses++
	c.engines.h.StoreLineNT(c.P, c.Tile, a, data)
}

// AtomicAddWord adds delta to the word at a (read-modify-write at the
// engine; used by PHI to apply buffered updates in place, §8.1).
func (c *Ctx) AtomicAddWord(a mem.Addr, delta uint64) {
	c.tile.stats.MemAccesses++
	c.engines.h.EngineAtomicAddWord(c.P, c.Tile, a, delta, c.Level)
}

// RMWWord performs a commutative read-modify-write with the given
// operator at the engine (min/max/add).
func (c *Ctx) RMWWord(a mem.Addr, op hier.RMOOp, v uint64) {
	c.tile.stats.MemAccesses++
	c.engines.h.EngineRMWWord(c.P, c.Tile, a, op, v, c.Level)
}

// AtomicAddRemote pushes a commutative add to the shared level as a
// remote memory operation. PRIVATE-level callbacks use it to forward
// updates into a SHARED Morph's range — the allowed direction of §4.3's
// restriction ("a PRIVATE callback can trigger a SHARED callback") and
// the mechanism behind hierarchical PHI [95].
func (c *Ctx) AtomicAddRemote(a mem.Addr, delta uint64) {
	if c.Level == hier.LevelShared {
		panic("täkō restriction (§4.3): SHARED callbacks may not issue RMOs that could re-enter SHARED Morphs")
	}
	c.tile.stats.MemAccesses++
	c.engines.h.AtomicAddSync(c.P, c.Tile, a, delta)
}

// PersistLine writes a line through to the persistence domain (NVM
// transactions, §8.3).
func (c *Ctx) PersistLine(a mem.Addr, data *mem.Line) {
	c.tile.stats.MemAccesses++
	c.engines.h.EnginePersistLine(c.P, c.Tile, a, data, c.Level)
}

// RaiseInterrupt delivers a user-space interrupt to software (§4.3,
// §8.4) — e.g., the side-channel Morph interrupting the victim thread
// when secure data is evicted.
func (c *Ctx) RaiseInterrupt() {
	c.tile.stats.Interrupts++
	if c.engines.Interrupt != nil {
		c.engines.Interrupt(c.Tile, c.MorphID, c.Addr)
	}
}
