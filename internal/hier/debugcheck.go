package hier

import (
	"fmt"

	"tako/internal/mem"
)

// debugHomeLog records the last few mutations of each home line.
var debugHomeLog = map[mem.Addr][]string{}

func (h *Hierarchy) debugDir(la mem.Addr) string {
	e, ok := h.dir[la]
	if !ok {
		return "dir{}"
	}
	return fmt.Sprintf("dir{sharers=%b owner=%d}", e.sharers, e.owner)
}

func (h *Hierarchy) debugLogHome(la mem.Addr, site string, w0 uint64) {
	if !debugFreshChecks {
		return
	}
	l := append(debugHomeLog[la], fmt.Sprintf("%s@%d w2=%d %s", site, h.K.Now(), w0, h.debugDir(la)))
	if len(l) > 16 {
		l = l[len(l)-16:]
	}
	debugHomeLog[la] = l
}

// debugCheckFresh panics if tileID holds a clean copy of la that differs
// from the home L3 copy — a coherence bug. Enabled by tests.
var debugFreshChecks = false

// SetFreshChecks toggles expensive coherence-freshness assertions; tests
// enable them to catch stale-copy bugs at their source.
func SetFreshChecks(on bool) { debugFreshChecks = on }

func (h *Hierarchy) debugCheckFresh(tileID int, la mem.Addr, where string) {
	if !debugFreshChecks {
		return
	}
	hm := h.tiles[h.HomeTile(la)]
	ls3 := hm.l3.Lookup(la)
	if ls3 == nil {
		return
	}
	t := h.tiles[tileID]
	// A dirty copy anywhere in the tile makes it the owner: its clean
	// copies may legitimately be ahead of home (the dirty truth is in
	// the same private domain and merges on eviction/downgrade).
	for _, c := range t.privateCaches() {
		if ls := c.Lookup(la); ls != nil && ls.Dirty {
			return
		}
	}
	for _, c := range t.privateCaches() {
		if ls := c.Lookup(la); ls != nil && ls.Data != ls3.Data {
			panic(fmt.Sprintf("STALE at %s: tile %d cache %v line %v local=%v home=%v\nhistory: %v",
				where, tileID, c.Config().Name, la, ls.Data, ls3.Data, debugHomeLog[la]))
		}
	}
}

// DebugHomeHistory returns the recorded mutation history of a home line
// (debug builds only).
func DebugHomeHistory(la mem.Addr) []string { return debugHomeLog[la] }
