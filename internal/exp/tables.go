package exp

import (
	"fmt"

	"tako/internal/engine"
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/stats"
)

// HardwareOverhead computes täkō's state overhead per L3 bank (Table 2)
// from the modeled configuration.
func HardwareOverhead(h hier.Config, e engine.Config) *stats.Table {
	t := stats.NewTable("Table 2 — hardware overhead (state per L3 bank)", "component", "bytes", "detail")
	bankLines := h.L3BankSize / mem.LineSize
	tagBits := bankLines / 8 // one Morph bit per line
	t.AddRowf("L3 Morph tag bits", tagBits, fmt.Sprintf("%d lines x 1 bit", bankLines))
	t.AddRowf("Engine L1d", h.EngineL1Size, "coherent engine data cache")
	tlbBytes := 2 * 1024
	t.AddRowf("Engine TLB", tlbBytes, "engine-side translations")
	rtlbBytes := h.RTLB.Entries * 8
	t.AddRowf("Engine rTLB", rtlbBytes, fmt.Sprintf("%d entries", h.RTLB.Entries))
	cbBytes := e.CallbackBuffer * mem.LineSize
	t.AddRowf("Callback buffer", cbBytes, fmt.Sprintf("%d lines x 64 B", e.CallbackBuffer))
	pes := e.FabricW * e.FabricH
	tokenBytes := pes * e.TokensPerPE * mem.LineSize
	t.AddRowf("Token store", tokenBytes, fmt.Sprintf("%d PEs x %d tokens x 64 B", pes, e.TokensPerPE))
	instrBytes := pes * e.InstrPerPE * 4
	t.AddRowf("Instruction memory", instrBytes, fmt.Sprintf("%d PEs x %d instr x 4 B", pes, e.InstrPerPE))
	total := tagBits + h.EngineL1Size + tlbBytes + rtlbBytes + cbBytes + tokenBytes + instrBytes
	t.AddRowf("Total per L3 bank", total,
		fmt.Sprintf("%.1f%% of a %d KB bank", 100*float64(total)/float64(h.L3BankSize), h.L3BankSize/1024))
	return t
}

// SystemParameters renders the modeled Table 3 configuration.
func SystemParameters(h hier.Config, e engine.Config) *stats.Table {
	t := stats.NewTable("Table 3 — system parameters", "component", "configuration")
	t.AddRowf("Cores", fmt.Sprintf("%d tiles, OOO (Goldmont-class), mesh-connected", h.Tiles))
	t.AddRowf("Engines", fmt.Sprintf("%d engines, %dx%d fabric (%d int + %d mem PEs), %d-cycle PEs, %d-entry rTLB",
		h.Tiles, e.FabricW, e.FabricH, e.IntPEs(), e.MemPEs, e.PELatency, h.RTLB.Entries))
	t.AddRowf("L1d", fmt.Sprintf("%d KB, %d-way, %d-cycle", h.L1Size/1024, h.L1Ways, h.L1Latency))
	t.AddRowf("L2", fmt.Sprintf("%d KB, %d-way, %d-cycle tag / %d-cycle data, trrîp, strided prefetcher (degree %d)",
		h.L2Size/1024, h.L2Ways, h.L2TagLat, h.L2DataLat, h.PrefetchDegree))
	t.AddRowf("LLC", fmt.Sprintf("%d KB total (%d KB/bank), %d-way, %d/%d-cycle tag/data, inclusive, trrîp",
		h.Tiles*h.L3BankSize/1024, h.L3BankSize/1024, h.L3Ways, h.L3TagLat, h.L3DataLat))
	t.AddRowf("NoC", fmt.Sprintf("%dx%d mesh, %d B flits, %d/%d-cycle router/link",
		h.NoC.Width, h.NoC.Height, h.NoC.FlitBytes, h.NoC.RouterDelay, h.NoC.LinkDelay))
	t.AddRowf("Memory", fmt.Sprintf("%d controllers, %d-cycle latency, %d cycles/line bandwidth",
		h.DRAM.Controllers, h.DRAM.Latency, h.DRAM.CyclesPerLine))
	t.AddRowf("MSHRs / WB buffer", fmt.Sprintf("%d / %d per tile", h.MSHRsPerTile, h.WBBufPerTile))
	t.AddRowf("Callback buffer", fmt.Sprintf("%d entries per engine", e.CallbackBuffer))
	return t
}

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Hardware overhead: state per L3 bank",
		Paper: "27.1 KB per 512 KB bank = 5.3% state overhead",
		Run: func(quick bool) (*stats.Table, error) {
			return HardwareOverhead(hier.DefaultConfig(16), engine.DefaultConfig()), nil
		},
	})
	register(Experiment{
		ID:    "table3",
		Title: "System parameters",
		Paper: "16 OOO cores, 128 KB L2, 8 MB inclusive LLC, 4x100-cycle memory controllers",
		Run: func(quick bool) (*stats.Table, error) {
			return SystemParameters(hier.DefaultConfig(16), engine.DefaultConfig()), nil
		},
	})
}
