package exp

import (
	"encoding/json"
	"reflect"
	"testing"

	"tako/internal/hier"
	"tako/internal/morphs"
	"tako/internal/system"
)

// TestTxnEdgesDeterministicAndLegal pins the coverage data the reports
// and the introspection heatmap are built from: every captured run
// carries transaction edges, each edge is one of the state machine's
// legal transitions, and re-running the same experiment reproduces the
// edge lists byte-for-byte (the run records they travel in are part of
// the -metrics determinism contract).
func TestTxnEdgesDeterministicAndLegal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prev := morphs.SetRunCache(false) // both passes must really simulate
	defer morphs.SetRunCache(prev)

	legal := map[hier.TxnTransition]bool{}
	for _, e := range hier.LegalEdges() {
		e.Count = 0
		legal[e] = true
	}

	_, runs1 := captureExp(t, "fig6")
	_, runs2 := captureExp(t, "fig6")
	if len(runs1) == 0 || len(runs1) != len(runs2) {
		t.Fatalf("captured %d and %d runs", len(runs1), len(runs2))
	}
	for i := range runs1 {
		if len(runs1[i].TxnEdges) == 0 {
			t.Fatalf("run %s captured no txn edges", runs1[i].Label)
		}
		for _, e := range runs1[i].TxnEdges {
			if e.Count == 0 {
				t.Errorf("run %s reports edge %v with zero count", runs1[i].Label, e)
			}
			e.Count = 0
			if !legal[e] {
				t.Errorf("run %s observed illegal edge %s: %s -> %s",
					runs1[i].Label, e.Kind, e.From, e.To)
			}
		}
		a, err := json.Marshal(runs1[i].TxnEdges)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(runs2[i].TxnEdges)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("run %s: txn edges differ between identical executions\n%s\nvs\n%s",
				runs1[i].Label, a, b)
		}
	}

	// The aggregate visited/unvisited split partitions the legal set.
	agg := system.AggregateTxnEdges(runs1)
	unvisited := hier.UnvisitedEdges(agg)
	if len(agg)+len(unvisited) != len(hier.LegalEdges()) {
		t.Errorf("visited %d + unvisited %d != legal %d",
			len(agg), len(unvisited), len(hier.LegalEdges()))
	}
	seen := map[hier.TxnTransition]bool{}
	for _, e := range agg {
		e.Count = 0
		seen[e] = true
	}
	for _, u := range unvisited {
		if seen[hier.TxnTransition{Kind: u.Kind, From: u.From, To: u.To}] {
			t.Errorf("edge %v reported both visited and unvisited", u)
		}
	}
	if !reflect.DeepEqual(agg, system.AggregateTxnEdges(runs2)) {
		t.Error("aggregated edges differ between identical executions")
	}
}
