package hier

import (
	"fmt"
	"sync/atomic"

	"tako/internal/mem"
)

// Observer receives program-visible memory operations at their commit
// points, plus coarse state-change notifications. The differential
// oracle (internal/oracle) implements it to cross-check every committed
// load against a flat reference memory model.
//
// Commit points are exact: each hook fires in the same kernel event as
// the functional state change it reports, so the order of hook
// invocations is the architectural commit order. Hooks must not call
// back into the hierarchy or block.
type Observer interface {
	// LoadCommitted reports a core load of the 8-byte word containing a
	// returning v.
	LoadCommitted(tile int, a mem.Addr, v uint64)
	// LineLoaded reports a core full-line load.
	LineLoaded(tile int, a mem.Addr, line *mem.Line)
	// StoreCommitted reports a core store of v to the word containing a.
	StoreCommitted(tile int, a mem.Addr, v uint64)
	// LineStored reports a core full-line store (nt marks non-temporal
	// stores that bypass private caches).
	LineStored(tile int, a mem.Addr, line *mem.Line, nt bool)
	// RMOCommitted reports a committed read-modify-write: the word
	// containing a went from old to result under op(old, operand).
	// Local atomics and remote memory operations both land here, in
	// commit order (async RMOs commit when they execute at the home
	// bank, not when issued).
	RMOCommitted(tile int, a mem.Addr, op RMOOp, operand, old, result uint64)
	// ExchangeCommitted reports an atomic exchange writing v and
	// returning old.
	ExchangeCommitted(tile int, a mem.Addr, v, old uint64)
	// EngineAccess reports a callback-issued memory access through a
	// tile engine's L1d (fills marked engine for trrîp accounting).
	EngineAccess(tile int, a mem.Addr, write bool)
	// Event reports that hierarchy state changed at the named site
	// (insert, eviction, upgrade, flush, ...). Observers use it to
	// schedule invariant checks between events.
	Event(site string)
}

// AttachObserver wires an observer into every commit path; nil detaches.
// Sharded hierarchies reject observers: commit points fire on every
// shard concurrently, so a single observer would need its own
// synchronization and would perceive an interleaving, not the
// architectural total order the oracle depends on.
func (h *Hierarchy) AttachObserver(o Observer) {
	if h.sharded && o != nil {
		panic("hier: observers are not supported on a sharded hierarchy")
	}
	h.obs = o
}

// event notes a hierarchy state change: it drives the Config-enabled
// self-check (SelfCheckEvery) and forwards to any attached observer.
//
// On a sharded build the count is an atomic add (events fire from every
// shard) and the inline self-check is skipped: CheckInvariants walks
// every tile's state, which another shard may be mutating mid-epoch.
// Sharded runs check invariants at the epoch barrier instead
// (InstallBarrierChecks), where all shards are parked.
func (h *Hierarchy) event(site string) {
	if h.sharded {
		atomic.AddUint64(&h.eventCount, 1)
		return
	}
	h.eventCount++
	if h.cfg.SelfCheckEvery > 0 && h.eventCount%uint64(h.cfg.SelfCheckEvery) == 0 {
		if err := h.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("hier: invariant violated after %s @%d: %v", site, h.K.Now(), err))
		}
	}
	if h.obs != nil {
		h.obs.Event(site)
	}
}
