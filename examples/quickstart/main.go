// Quickstart: the smallest complete täkō program.
//
// It builds a 4-tile machine, registers a Morph whose onMiss computes
// squares into a phantom address range — turning the cache into a
// memoizing "squares service" — reads some values, and shows that hits
// never re-invoke the callback while evictions hand data back to
// software.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"tako/internal/core"
	"tako/internal/cpu"
	"tako/internal/engine"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/system"
)

func main() {
	// A 4-tile machine with the paper's Table 3 parameters, with the
	// callback tracer attached.
	s := system.New(system.Default(4))
	tr := s.Trace(64, "cb.*", "flush.*")

	var fills, evictions int

	// The Morph: loads to the phantom range return i*i for word i.
	spec := core.MorphSpec{
		Name: "squares",
		OnMiss: &core.Callback{
			Instrs: 10, CritPath: 4, // static dataflow cost on the engine
			Fn: func(ctx *engine.Ctx) {
				fills++
				first := uint64(ctx.Addr-ctx.View().(*view).base) / 8
				for i := 0; i < mem.WordsPerLine; i++ {
					n := first + uint64(i)
					ctx.Line.SetWord(i, n*n)
				}
			},
		},
		OnEviction: &core.Callback{
			Instrs: 2, CritPath: 1,
			Fn: func(ctx *engine.Ctx) { evictions++ },
		},
		NewView: func(tile int) interface{} { return &view{} },
	}

	s.Go(0, "main", func(p *sim.Proc, c *cpu.Core) {
		// Register on a fresh phantom range: 8 KB of squares that live
		// only in the cache, materialized on demand.
		m, err := s.Tako.RegisterPhantom(p, spec, core.Private, 8*1024, 0)
		if err != nil {
			panic(err)
		}
		m.View(0).(*view).base = m.Region.Base

		fmt.Println("reading squares through the cache:")
		for _, i := range []uint64{3, 12, 500, 3, 12, 1000} {
			v := c.Load(p, m.Region.Word(i))
			fmt.Printf("  squares[%4d] = %7d   (cycle %6d)\n", i, v, p.Now())
		}

		// flushData: evict everything, waiting for callbacks (§4.4).
		s.Tako.FlushData(p, m)
		s.Tako.Unregister(p, m)
	})

	cycles := s.Run()
	fmt.Printf("\nonMiss fills:    %d (one per distinct line — hits are free)\n", fills)
	fmt.Printf("onEviction runs: %d (flush handed every line back)\n", evictions)
	fmt.Printf("simulated time:  %d cycles, energy %.1f nJ\n", cycles, s.Meter.TotalPJ()/1000)
	fmt.Printf("\ncallback trace (what the cache asked software to do):\n%s", tr.Dump())
}

type view struct{ base mem.Addr }
