package morphs

import "testing"

func smallDecompParams() DecompParams {
	p := DefaultDecompParams()
	p.Tiles = 4
	return p
}

func TestDecompressionShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := RunDecompressionAll(smallDecompParams())
	if err != nil {
		t.Fatal(err)
	}
	base := res[DecompBaseline]
	tako := res[DecompTako]
	ideal := res[DecompIdeal]
	ndc := res[DecompNDC]
	pre := res[DecompPrecompute]

	t.Logf("baseline:   %v", base)
	t.Logf("precompute: %v", pre)
	t.Logf("ndc:        %v", ndc)
	t.Logf("tako:       %v (speedup %.2fx, energy -%.0f%%)", tako,
		tako.Speedup(base), 100*tako.EnergySaving(base))
	t.Logf("ideal:      %v (speedup %.2fx)", ideal, ideal.Speedup(base))

	// Fig 6 shape: täkō beats the baseline and precompute; NDC does
	// NOT beat the baseline; ideal ≥ täkō and täkō is close to it.
	if tako.Speedup(base) < 1.3 {
		t.Errorf("täkō speedup %.2fx, want ≥1.3x over baseline", tako.Speedup(base))
	}
	if tako.Cycles >= pre.Cycles {
		t.Errorf("täkō (%d) should beat precompute (%d)", tako.Cycles, pre.Cycles)
	}
	if ndc.Cycles <= base.Cycles {
		t.Errorf("NDC (%d) should NOT beat baseline (%d) — offloading loses L1 locality", ndc.Cycles, base.Cycles)
	}
	if ideal.Cycles > tako.Cycles {
		t.Errorf("ideal (%d) slower than täkō (%d)", ideal.Cycles, tako.Cycles)
	}
	gap := float64(tako.Cycles-ideal.Cycles) / float64(ideal.Cycles)
	if gap > 0.15 {
		t.Errorf("täkō %.1f%% from ideal, want close (paper: 1.1%%)", 100*gap)
	}
	// Energy: täkō saves vs baseline.
	if tako.EnergySaving(base) < 0.2 {
		t.Errorf("täkō energy saving %.0f%%, want ≥20%%", 100*tako.EnergySaving(base))
	}

	// Fig 7 shape: baseline decompresses per access (= NumIndices);
	// precompute decompresses everything (= NumValues); täkō only
	// what is touched, less than both.
	prm := smallDecompParams()
	if int(base.Extra["decompressions"]) != prm.NumIndices {
		t.Errorf("baseline decompressions = %v", base.Extra["decompressions"])
	}
	if int(pre.Extra["decompressions"]) != prm.NumValues {
		t.Errorf("precompute decompressions = %v", pre.Extra["decompressions"])
	}
	if tako.Extra["decompressions"] >= pre.Extra["decompressions"] ||
		tako.Extra["decompressions"] >= base.Extra["decompressions"] {
		t.Errorf("täkō decompressions %v not the minimum (base %v, pre %v)",
			tako.Extra["decompressions"], base.Extra["decompressions"], pre.Extra["decompressions"])
	}
	// Memory overhead: only precompute allocates a second array.
	if pre.Extra["extra_memory_bytes"] == 0 || tako.Extra["extra_memory_bytes"] != 0 {
		t.Error("memory-overhead accounting wrong")
	}
}
