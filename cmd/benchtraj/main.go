// Command benchtraj assembles the CI perf-trajectory artifact: it parses
// `go test -bench` text output (any number of files) plus the
// takoreport -bench JSON report and emits one compact JSON document with
// every benchmark's metrics (ns/op, allocs/op, sim-accesses/s, ...) and
// the report's wall/exec timing per experiment. CI uploads the result as
// BENCH_N.json so throughput and allocation trends are diffable across
// the PR sequence without re-parsing free-form bench logs.
//
// Usage:
//
//	benchtraj -o BENCH_7.json [-report bench_report.json] bench1.txt bench2.txt ...
//
// Benchmark lines that repeat (go test -count N) stay separate entries
// in input order, so downstream tooling sees the full sample set.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchEntry is one parsed `go test -bench` result line.
type benchEntry struct {
	Name       string             `json:"name"`
	Iterations uint64             `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// reportExp is the per-experiment slice of the takoreport -bench report
// kept in the trajectory (run records are dropped — the trajectory
// tracks cost, not results).
type reportExp struct {
	ID         string  `json:"id"`
	Ops        uint64  `json:"ops"`
	Cycles     uint64  `json:"cycles"`
	WallMS     float64 `json:"wall_ms"`
	ExecMS     float64 `json:"exec_ms"`
	Speedup    float64 `json:"speedup_vs_serial"`
	CachedRuns int     `json:"cached_runs"`
}

// reportSummary is the aggregate slice of the -bench report.
type reportSummary struct {
	Scale       string      `json:"scale"`
	Jobs        int         `json:"jobs"`
	TilePar     int         `json:"tile_par"`
	WallMS      float64     `json:"wall_ms"`
	ExecMS      float64     `json:"exec_ms"`
	Speedup     float64     `json:"speedup_vs_serial"`
	Experiments []reportExp `json:"experiments"`
}

// trajectory is the emitted document.
type trajectory struct {
	Benchmarks []benchEntry  `json:"benchmarks"`
	Sharded    *shardedSpeed `json:"sharded,omitempty"`
	// ShardedTako is the same speedup column for a täkō machine (live
	// engines running onMiss callbacks at the home tiles), from
	// BenchmarkShardedTakoVsPartitioned.
	ShardedTako *shardedSpeed  `json:"sharded_tako,omitempty"`
	FFWarmup    *ffSpeed       `json:"ff_warmup,omitempty"`
	Report      *reportSummary `json:"report,omitempty"`
}

// ffSpeed is the analytical fast-forward speedup column, assembled from
// the BenchmarkFFWarmup pair: the same warmup-dominated run with the
// warmup executed analytically versus fully simulated. Repeated samples
// reduce to the best (minimum) ns/op of each side.
type ffSpeed struct {
	AnalyticalNsOp float64 `json:"analytical_ns_op"`
	SimulatedNsOp  float64 `json:"simulated_ns_op"`
	// FFSpeedup is simulated ns/op over analytical ns/op (>1: skipping
	// the event kernel during warmup is that many times faster).
	FFSpeedup float64 `json:"ff_speedup"`
}

const ffBenchName = "BenchmarkFFWarmup/"

// buildFFSpeed pairs the fast-forward warmup benchmark's two
// sub-benchmarks into the ff_speedup column. Returns nil unless both
// sides are present with nonzero ns/op.
func buildFFSpeed(entries []benchEntry) *ffSpeed {
	best := map[string]float64{}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name, ffBenchName) {
			continue
		}
		ns, ok := e.Metrics["ns/op"]
		if !ok {
			continue
		}
		v := benchVariant(e.Name)
		if cur, seen := best[v]; !seen || ns < cur {
			best[v] = ns
		}
	}
	ana, sim := best["analytical"], best["simulated"]
	if ana <= 0 || sim <= 0 {
		return nil
	}
	return &ffSpeed{AnalyticalNsOp: ana, SimulatedNsOp: sim, FFSpeedup: sim / ana}
}

// shardedRow is one engine variant of the sharded-vs-partitioned
// machine benchmark, reduced to its best sample.
type shardedRow struct {
	Variant string  `json:"variant"`
	NsOp    float64 `json:"ns_op"`
	// SpeedupVsPartitioned is partitioned ns/op over this variant's
	// ns/op (>1: the sharded engine is faster). Omitted for the
	// partitioned baseline row itself.
	SpeedupVsPartitioned float64 `json:"speedup_vs_partitioned,omitempty"`
	// SingleCore marks a row measured on a host with one usable CPU
	// (cpus or gomaxprocs ≤ 1), where every worker width degenerates to
	// sequenced execution plus barrier overhead. Such rows are
	// annotations: trend tooling must not fold their speedups into
	// multi-core trajectories.
	SingleCore bool `json:"single_core,omitempty"`
}

// shardedSpeed is the sharded-vs-partitioned speedup column assembled
// from BenchmarkShardedVsPartitioned sub-benchmarks.
type shardedSpeed struct {
	Baseline string       `json:"baseline"`
	Rows     []shardedRow `json:"rows"`
	// SingleCore is set when every sample came from a single-core host:
	// the whole column is an annotation, not a speedup measurement.
	SingleCore bool `json:"single_core,omitempty"`
}

const (
	shardedBenchName     = "BenchmarkShardedVsPartitioned/"
	shardedTakoBenchName = "BenchmarkShardedTakoVsPartitioned/"
)

// benchVariant strips the benchmark prefix and Go's -GOMAXPROCS suffix:
// "BenchmarkShardedVsPartitioned/sharded-w2-8" → "sharded-w2".
func benchVariant(name string) string {
	v := name[strings.Index(name, "/")+1:]
	if i := strings.LastIndex(v, "-"); i > 0 {
		if _, err := strconv.Atoi(v[i+1:]); err == nil {
			v = v[:i]
		}
	}
	return v
}

// singleCore reports whether a sample ran on an effectively single-core
// host; samples without the cpus metric are assumed multi-core.
func singleCore(e benchEntry) bool {
	if v, ok := e.Metrics["cpus"]; ok && v <= 1 {
		return true
	}
	if v, ok := e.Metrics["gomaxprocs"]; ok && v <= 1 {
		return true
	}
	return false
}

// buildShardedSpeed pairs one sharded-vs-partitioned machine benchmark's
// sub-benchmarks (selected by name prefix) into a speedup column.
// Repeated samples (-count N) reduce to the best (minimum) ns/op;
// single-core samples are preferred strictly less than multi-core ones —
// a variant's row is marked single_core only when no multi-core sample
// exists for it, so a lone single-core sweep is annotated rather than
// averaged into the column. Returns nil when the benchmark logs carry no
// paired entries.
func buildShardedSpeed(entries []benchEntry, prefix string) *shardedSpeed {
	type acc struct {
		best       float64
		singleCore bool
		seen       bool
	}
	byVariant := map[string]*acc{}
	var order []string
	for _, e := range entries {
		if !strings.HasPrefix(e.Name, prefix) {
			continue
		}
		ns, ok := e.Metrics["ns/op"]
		if !ok {
			continue
		}
		v := benchVariant(e.Name)
		a := byVariant[v]
		if a == nil {
			a = &acc{singleCore: true}
			byVariant[v] = a
			order = append(order, v)
		}
		single := singleCore(e)
		switch {
		case !a.seen, a.singleCore && !single:
			a.best, a.singleCore, a.seen = ns, single, true
		case a.singleCore == single && ns < a.best:
			a.best = ns
		}
	}
	base, ok := byVariant["partitioned"]
	if !ok || len(order) < 2 {
		return nil
	}
	out := &shardedSpeed{Baseline: "partitioned", SingleCore: true}
	for _, v := range order {
		a := byVariant[v]
		row := shardedRow{Variant: v, NsOp: a.best, SingleCore: a.singleCore}
		if v != out.Baseline && a.best > 0 {
			row.SpeedupVsPartitioned = base.best / a.best
		}
		if !a.singleCore {
			out.SingleCore = false
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName/sub-8  1000  1234 ns/op  432 B/op  2 allocs/op  9.5 sim-accesses/s
//
// Returns ok=false for non-benchmark lines (headers, PASS, ok ...).
func parseBenchLine(line string) (benchEntry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchEntry{}, false
	}
	iters, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return benchEntry{}, false
	}
	e := benchEntry{
		Name:       strings.TrimSuffix(fields[0], "\t"),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchEntry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	if len(e.Metrics) == 0 {
		return benchEntry{}, false
	}
	return e, true
}

// parseBenchOutput collects every benchmark line from one bench log.
func parseBenchOutput(r io.Reader) ([]benchEntry, error) {
	var out []benchEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		if e, ok := parseBenchLine(sc.Text()); ok {
			out = append(out, e)
		}
	}
	return out, sc.Err()
}

// loadReport reads a takoreport -bench JSON file into the trimmed
// trajectory shape.
func loadReport(path string) (*reportSummary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var full struct {
		reportSummary
		Experiments []struct {
			reportExp
			Runs json.RawMessage `json:"runs"` // dropped
		} `json:"experiments"`
	}
	if err := json.Unmarshal(data, &full); err != nil {
		return nil, fmt.Errorf("parse %s: %v", path, err)
	}
	sum := full.reportSummary
	sum.Experiments = make([]reportExp, 0, len(full.Experiments))
	for _, e := range full.Experiments {
		sum.Experiments = append(sum.Experiments, e.reportExp)
	}
	return &sum, nil
}

func main() {
	var (
		out    = flag.String("o", "", "write the trajectory JSON here (default stdout)")
		report = flag.String("report", "", "takoreport -bench JSON to fold into the trajectory")
	)
	flag.Parse()

	traj := trajectory{Benchmarks: []benchEntry{}}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: %v\n", err)
			os.Exit(1)
		}
		entries, err := parseBenchOutput(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: %s: %v\n", path, err)
			os.Exit(1)
		}
		traj.Benchmarks = append(traj.Benchmarks, entries...)
	}
	traj.Sharded = buildShardedSpeed(traj.Benchmarks, shardedBenchName)
	traj.ShardedTako = buildShardedSpeed(traj.Benchmarks, shardedTakoBenchName)
	traj.FFWarmup = buildFFSpeed(traj.Benchmarks)
	if *report != "" {
		sum, err := loadReport(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: %v\n", err)
			os.Exit(1)
		}
		traj.Report = sum
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(traj); err != nil {
		fmt.Fprintf(os.Stderr, "benchtraj: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("trajectory written to %s (%d benchmarks)\n", *out, len(traj.Benchmarks))
	}
}
