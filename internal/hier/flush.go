package hier

import (
	"tako/internal/mem"
	"tako/internal/sim"
)

// FlushRegion implements flushData (§4.4): walk the tag arrays at the
// given level, evict every line in the region — triggering onWriteback
// or onEviction for Morph lines — and block until all callbacks
// complete, guaranteeing no further racing writes from callbacks.
//
// PRIVATE flushes walk tileID's L2; SHARED flushes walk every L3 bank.
func (h *Hierarchy) FlushRegion(p *sim.Proc, tileID int, region mem.Region, level Level) {
	if h.sharded {
		h.flushSharded(p, tileID, region, level)
		return
	}
	h.TraceAt(tileID, "flush", "flush.start", region.String())
	var futs []*sim.Future
	switch level {
	case LevelPrivate:
		h.flushPrivate(p, tileID, region, &futs)
	case LevelShared:
		for t := 0; t < h.cfg.Tiles; t++ {
			h.flushBank(p, t, region, &futs)
		}
	default:
		h.flushPrivate(p, tileID, region, &futs)
		for t := 0; t < h.cfg.Tiles; t++ {
			h.flushBank(p, t, region, &futs)
		}
	}
	p.WaitAll(futs...)
	// Callbacks triggered by evictions *before* this flush must also
	// complete: flushData guarantees no further racing writes from any
	// callback (§4.4).
	for _, t := range h.tiles {
		t.cbInflight.Wait(p)
	}
	h.event("flush")
	h.TraceAt(tileID, "flush", "flush.done", region.String())
}

// flushSharded distributes the flush across shards: the private walk
// runs on tileID's shard and each L3 bank walk runs on its home's shard,
// shipped there as flush messages on the ordered channels. Each leg
// drains its own eviction futures and its tile's in-flight callbacks
// before acking the origin, so the classic guarantee — no further racing
// callback writes once FlushRegion returns — holds shard-locally and, by
// the barrier on the acks, globally.
func (h *Hierarchy) flushSharded(p *sim.Proc, tileID int, region mem.Region, level Level) {
	// All channels and ack futures anchor on the *calling* proc's shard,
	// which need not be tileID's (a thread may flush a SHARED Morph
	// registered anywhere).
	origin := h.eng.ShardOf(p.Kernel())
	t := h.tiles[origin]
	h.TraceAt(origin, "flush", "flush.start", region.String())
	// Several acks are outstanding at once; pooled futures recycle on
	// completion, so these must be unpooled.
	var acks []*sim.Future
	spawn := func(dst int, name string, body func(q *sim.Proc)) {
		ack := sim.NewFuture(t.K)
		acks = append(acks, ack)
		dt := h.tiles[dst]
		run := func() {
			dt.K.Go(name, func(q *sim.Proc) {
				body(q)
				if dst == origin {
					ack.Complete()
				} else {
					h.completeOrdered(dt, origin, h.Mesh.Latency(dst, origin, 8), ack)
				}
			})
		}
		if dst == origin {
			run()
		} else {
			h.sendOrdered(t, dst, h.Mesh.Latency(origin, dst, 8), run)
		}
	}
	if level != LevelShared {
		spawn(tileID, "flush-private", func(q *sim.Proc) {
			var futs []*sim.Future
			h.flushPrivate(q, tileID, region, &futs)
			q.WaitAll(futs...)
			h.tiles[tileID].cbInflight.Wait(q)
		})
	}
	if level != LevelPrivate {
		for bank := 0; bank < h.cfg.Tiles; bank++ {
			bank := bank
			spawn(bank, "flush-bank", func(q *sim.Proc) {
				var futs []*sim.Future
				h.flushBank(q, bank, region, &futs)
				q.WaitAll(futs...)
				h.tiles[bank].cbInflight.Wait(q)
			})
		}
	}
	p.WaitAll(acks...)
	h.event("flush")
	h.TraceAt(origin, "flush", "flush.done", region.String())
}

// flushPrivate evicts region's lines from one tile's private domain. On
// a sharded build the calling proc must run on tileID's shard.
func (h *Hierarchy) flushPrivate(p *sim.Proc, tileID int, region mem.Region, futs *[]*sim.Future) {
	t := h.tiles[tileID]
	// Tag-walk cost: the controller checks four tags per cycle.
	p.Sleep(sim.Cycle(t.l2.NumSets()/4 + 1))
	for {
		lines := t.l2.LinesInRegion(region)
		if len(lines) == 0 {
			break
		}
		progressed := false
		for _, la := range lines {
			// Each line is evicted by a kindFlushEvict transaction: one
			// lock check (a locked line is skipped this pass), extract,
			// and the eviction pipeline.
			x := h.getTxn(t)
			x.h, x.p, x.kind = h, p, kindFlushEvict
			x.tileID, x.la = tileID, la
			x.t = t
			x.futs = futs
			x.run()
			if x.evicted {
				progressed = true
			}
			h.putTxn(x)
		}
		if !progressed {
			p.Sleep(1)
		}
	}
	// Lines cached above the L2 but inside the region: engine lines
	// fetched around the L2 (shared-callback path) live only in the
	// engine L1d, so their dirty data must reach the shared level.
	for _, c := range t.privateCaches() {
		for _, la := range c.LinesInRegion(region) {
			if ls, ok := c.ExtractLine(la); ok {
				if ls.Dirty {
					h.writebackToShared(tileID, la, ls.Data)
				} else {
					h.removeSharerIfNoCopies(tileID, la)
				}
			}
		}
	}
}

// flushBank evicts region's lines from one L3 bank. On a sharded build
// the calling proc must run on the bank's shard.
func (h *Hierarchy) flushBank(p *sim.Proc, bankID int, region mem.Region, futs *[]*sim.Future) {
	hm := h.tiles[bankID]
	p.Sleep(sim.Cycle(hm.l3.NumSets()/4 + 1))
	for {
		lines := hm.l3.LinesInRegion(region)
		if len(lines) == 0 {
			break
		}
		progressed := false
		for _, la := range lines {
			x := h.getTxn(hm)
			x.h, x.p, x.kind = h, p, kindFlushEvict
			x.flushBank = true
			x.tileID, x.la = bankID, la
			x.home, x.hm = bankID, hm
			x.futs = futs
			x.run()
			if x.evicted {
				progressed = true
			}
			h.putTxn(x)
		}
		if !progressed {
			p.Sleep(1)
		}
	}
}

// InvalidateRegion drops region's lines from every cache without
// callbacks or writebacks; used when registering a Morph over existing
// data so stale copies cannot bypass the new semantics (§4.1: "when a
// Morph is registered or unregistered, its address range is flushed").
// Dirty lines are written back to memory first to preserve their data.
func (h *Hierarchy) InvalidateRegion(p *sim.Proc, region mem.Region) {
	if h.sharded {
		h.invalidateSharded(p, region)
		return
	}
	for _, t := range h.tiles {
		for _, c := range t.privateCaches() {
			for _, la := range c.LinesInRegion(region) {
				if ls, ok := c.ExtractLine(la); ok && ls.Dirty {
					h.DRAM.WriteLineNoWait(la, &ls.Data)
				}
			}
		}
		for _, la := range t.l3.LinesInRegion(region) {
			if ls, ok := t.l3.ExtractLine(la); ok {
				h.dirT(la).delete(la)
				if ls.Dirty {
					h.DRAM.WriteLineNoWait(la, &ls.Data)
				}
			}
		}
		p.Sleep(sim.Cycle(t.l3.NumSets()))
	}
}

// invalidateSharded is InvalidateRegion as a two-phase message exchange.
//
// Phase 1 extracts every private copy tile by tile, clearing the local
// ownership views; dirty lines ride back to the origin inside the acks
// (the tile→origin FIFO delivers each data closure strictly before its
// ack completion, so by the ack barrier every dirty line is in hand).
// Phase 2 purges each home bank's L3 slice and directory entries on the
// bank's own shard, then applies the phase-1 private dirty data for that
// bank's lines to DRAM last — private data is newer than any L3 copy.
// Racing accesses to a region being (un)registered are a workload bug,
// exactly as on the classic build, so the purge takes no line locks.
func (h *Hierarchy) invalidateSharded(p *sim.Proc, region mem.Region) {
	origin := h.eng.ShardOf(p.Kernel())
	t := h.tiles[origin]
	type extracted struct {
		la   mem.Addr
		data mem.Line
	}
	extract := func(st *tile) []extracted {
		var out []extracted
		for _, c := range st.privateCaches() {
			for _, la := range c.LinesInRegion(region) {
				if ls, ok := c.ExtractLine(la); ok {
					st.owned.Delete(uint64(la))
					if ls.Dirty {
						out = append(out, extracted{la, ls.Data})
					}
				}
			}
		}
		return out
	}
	dirty := make([][]extracted, h.cfg.Tiles)
	var acks []*sim.Future // several outstanding at once: unpooled
	for s := 0; s < h.cfg.Tiles; s++ {
		if s == origin {
			dirty[s] = extract(t)
			continue
		}
		s, st := s, h.tiles[s]
		ack := sim.NewFuture(t.K)
		acks = append(acks, ack)
		h.sendOrdered(t, s, h.Mesh.Latency(origin, s, 8), func() {
			d := extract(st)
			h.sendOrdered(st, origin, h.Mesh.Latency(s, origin, mem.LineSize), func() {
				dirty[s] = d
			})
			h.completeOrdered(st, origin, h.Mesh.Latency(s, origin, 8), ack)
		})
	}
	p.WaitAll(acks...)
	// Group the recovered dirty lines by home bank, in (tile, extraction)
	// order so the phase-2 message contents are deterministic.
	perHome := make([][]extracted, h.cfg.Tiles)
	for s := 0; s < h.cfg.Tiles; s++ {
		for _, ex := range dirty[s] {
			home := h.HomeTile(ex.la)
			perHome[home] = append(perHome[home], ex)
		}
	}
	purge := func(q *sim.Proc, hm *tile, lines []extracted) {
		q.Sleep(sim.Cycle(hm.l3.NumSets()))
		for _, la := range hm.l3.LinesInRegion(region) {
			if ls, ok := hm.l3.ExtractLine(la); ok {
				h.dirT(la).delete(la)
				if ls.Dirty {
					h.dramAt(hm.id).WriteLineNoWait(la, &ls.Data)
				}
			}
		}
		// Phase-1 private data last: at most one domain held each line
		// dirty, and its copy supersedes whatever the L3 held.
		for i := range lines {
			h.dramAt(hm.id).WriteLineNoWait(lines[i].la, &lines[i].data)
		}
	}
	acks = acks[:0]
	for s := 0; s < h.cfg.Tiles; s++ {
		if s == origin {
			purge(p, t, perHome[s])
			continue
		}
		st, lines := h.tiles[s], perHome[s]
		ack := sim.NewFuture(t.K)
		acks = append(acks, ack)
		h.sendOrdered(t, s, h.Mesh.Latency(origin, s, mem.LineSize), func() {
			st.K.Go("inval-region", func(q *sim.Proc) {
				purge(q, st, lines)
				h.completeOrdered(st, origin, h.Mesh.Latency(s, origin, 8), ack)
			})
		})
	}
	p.WaitAll(acks...)
}
