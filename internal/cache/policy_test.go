package cache

import (
	"testing"

	"tako/internal/mem"
)

// TestTRRIPEngineStreamEvictsItself: a stream of engine fills through a
// set churns through the distant-priority slot, evicting its own
// previous line each time, while core-resident lines survive untouched
// (trrîp pollution avoidance, §5.2).
func TestTRRIPEngineStreamEvictsItself(t *testing.T) {
	c := tiny(NewTRRIP())
	for i := 0; i < 3; i++ {
		fill(c, addrFor(0, i), FillOpts{})
	}
	var prev mem.Addr
	for i := 0; i < 20; i++ {
		a := addrFor(0, 10+i)
		ev := fill(c, a, FillOpts{EngineFill: true})
		if ls := c.Lookup(a); ls == nil || !ls.EngineFill || ls.RRPV != rrpvMax {
			t.Fatalf("engine fill %v not inserted at distant priority: %+v", a, ls)
		}
		if i == 0 {
			if ev.Valid {
				t.Fatalf("first engine fill evicted %v from a set with a free way", ev.Tag)
			}
		} else if !ev.Valid || ev.Tag != prev {
			t.Fatalf("engine fill %d evicted %+v, want the previous stream line %v", i, ev, prev)
		}
		prev = a
	}
	for i := 0; i < 3; i++ {
		if c.Lookup(addrFor(0, i)) == nil {
			t.Fatalf("core line %d displaced by the engine stream", i)
		}
	}
}

// TestRRIPVictimTieBreakAndAging pins Victim's determinism at the policy
// level: the first allowed distant way wins, and aging touches only the
// allowed ways.
func TestRRIPVictimTieBreakAndAging(t *testing.T) {
	p := NewTRRIP()
	set := make([]LineState, 4)
	for i := range set {
		set[i].Valid = true
	}
	set[0].RRPV, set[1].RRPV, set[2].RRPV, set[3].RRPV = 2, 3, 1, 3
	all := func(int) bool { return true }
	if w := p.Victim(set, all); w != 1 {
		t.Fatalf("victim = %d, want first distant way 1", w)
	}
	// No distant line among the allowed ways: both age to distant and
	// the lower way wins; disallowed ways must not age.
	set[0].RRPV, set[1].RRPV, set[2].RRPV, set[3].RRPV = 1, 2, 0, 2
	only13 := func(w int) bool { return w == 1 || w == 3 }
	if w := p.Victim(set, only13); w != 1 {
		t.Fatalf("victim = %d, want way 1 after aging", w)
	}
	if set[0].RRPV != 1 || set[2].RRPV != 0 {
		t.Fatalf("aging touched disallowed ways: %+v", set)
	}
}

// TestCallbackFreeVictimUnderMorphPressure: sustained Morph insert
// pressure must never consume a set's last callback-free way. After
// every insert the §5.2 invariant holds and every set can still produce
// a CallbackFree victim, so an engine under writeback-buffer pressure
// always has somewhere deadlock-free to put a line.
func TestCallbackFreeVictimUnderMorphPressure(t *testing.T) {
	c := New(Config{Name: "p", SizeBytes: 4 * 4 * mem.LineSize, Ways: 4, Policy: NewTRRIP()})
	sets := c.NumSets()
	for i := 0; i < 64*sets; i++ {
		a := mem.Addr(uint64(i) * mem.LineSize)
		if c.Lookup(a) != nil {
			continue
		}
		opts := FillOpts{Morph: true, Phantom: i%2 == 0, Dirty: i%3 == 0, EngineFill: i%5 == 0}
		way, ok := c.ChooseVictimForInsert(a, opts, VictimConstraint{})
		if !ok {
			t.Fatalf("insert %d: no victim for a Morph fill", i)
		}
		c.FillAt(a, way, nil, opts)
		if err := c.CheckMorphInvariant(); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		for s := 0; s < sets; s++ {
			probe := mem.Addr(uint64(s) * mem.LineSize)
			if _, ok := c.ChooseVictim(probe, VictimConstraint{CallbackFree: true}); !ok {
				t.Fatalf("insert %d: set %d lost its callback-free victim", i, s)
			}
		}
	}
}
