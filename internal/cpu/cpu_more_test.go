package cpu

import (
	"testing"

	"tako/internal/mem"
	"tako/internal/sim"
)

func TestLoadAsyncVCarriesValues(t *testing.T) {
	k, c := newCore(Goldmont())
	c.H.DRAM.Store().WriteU64(0x3000, 111)
	c.H.DRAM.Store().WriteU64(0x4000, 222)
	var h1, h2 *LoadHandle
	k.Go("t", func(p *sim.Proc) {
		h1 = c.LoadAsyncV(p, 0x3000)
		h2 = c.LoadAsyncV(p, 0x4000)
		c.Drain(p)
	})
	k.Run()
	if h1.Value != 111 || h2.Value != 222 {
		t.Fatalf("values = %d, %d", h1.Value, h2.Value)
	}
	if !h1.F.Done() || !h2.F.Done() {
		t.Fatal("futures incomplete after drain")
	}
}

func TestLoadAsyncVInOrderIsSynchronous(t *testing.T) {
	k, c := newCore(LittleInOrder())
	c.H.DRAM.Store().WriteU64(0x3000, 5)
	k.Go("t", func(p *sim.Proc) {
		h := c.LoadAsyncV(p, 0x3000)
		// In-order: value available immediately, no window entry.
		if h.Value != 5 || !h.F.Done() {
			t.Errorf("in-order async load not synchronous: %+v", h)
		}
		if len(c.window) != 0 {
			t.Errorf("in-order core grew a window")
		}
	})
	k.Run()
}

func TestVectorOps(t *testing.T) {
	k, c := newCore(Goldmont())
	k.Go("t", func(p *sim.Proc) {
		var line mem.Line
		line.SetWord(2, 33)
		c.StoreLine(p, 0x5000, &line)
		got := c.LoadLine(p, 0x5000)
		if got.Word(2) != 33 {
			t.Errorf("vector round trip = %d", got.Word(2))
		}
		c.StoreLineNT(p, 0x6000, &line)
	})
	k.Run()
	if c.H.DebugReadWord(0x6010) != 33 {
		t.Fatal("NT store lost")
	}
	// 3 instructions: StoreLine, LoadLine, StoreLineNT.
	if c.Instrs != 3 {
		t.Fatalf("instrs = %d, want 3 (vector ops are single instructions)", c.Instrs)
	}
}

func TestAtomicAddVariants(t *testing.T) {
	k, c := newCore(Goldmont())
	k.Go("t", func(p *sim.Proc) {
		c.AtomicAddLocal(p, 0x7000, 5)
		c.AtomicAddSync(p, 0x7000, 6)
		c.AtomicAdd(p, 0x7000, 7)
		c.DrainRMOs(p)
	})
	k.Run()
	if got := c.H.DebugReadWord(0x7000); got != 18 {
		t.Fatalf("sum = %d, want 18", got)
	}
}

func TestCoreConfigAccessors(t *testing.T) {
	if Goldmont().Kind != OutOfOrder || LittleInOrder().Kind != InOrder {
		t.Fatal("kinds wrong")
	}
	k, c := newCore(Config{}) // degenerate config gets sane defaults
	_ = k
	if c.Config().MLP < 1 || c.Config().IPC <= 0 {
		t.Fatalf("defaults not applied: %+v", c.Config())
	}
}
