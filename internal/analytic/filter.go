package analytic

// exactCache is a functional set-associative LRU content filter: no
// data, no timing, just which line keys a cache of the given geometry
// would hold. The collector uses one per private level to reproduce the
// simulator's *filtered* streams — the L2 only observes accesses that
// missed L1, and the shared L3 only observes accesses that missed both
// private levels. Feeding the downstream reuse-distance stacks from the
// unfiltered stream would systematically overestimate L2/L3 residency
// of lines that live in the level above (the classic filtered-stream
// bias; docs/performance.md).
type exactCache struct {
	ways int
	sets [][]uint64 // per set, resident keys MRU-first (≤ ways)
}

func newExactCache(g Geom) *exactCache {
	sets := g.Sets
	if sets < 1 {
		sets = 1
	}
	c := &exactCache{ways: g.Ways, sets: make([][]uint64, sets)}
	for i := range c.sets {
		c.sets[i] = make([]uint64, 0, g.Ways)
	}
	return c
}

// access touches key: reports whether it hit, refreshes its recency,
// and on a miss installs it, evicting the set's LRU key when full (the
// victim is returned so callers can propagate inclusion). Set indexing
// matches the hardware caches (low line-address bits; Sets is a power
// of two there, so modulo and masking agree).
func (c *exactCache) access(key uint64) (hit bool, victim uint64, evicted bool) {
	set := c.sets[key%uint64(len(c.sets))]
	for i, k := range set {
		if k == key {
			copy(set[1:i+1], set[:i])
			set[0] = key
			return true, 0, false
		}
	}
	if len(set) == c.ways {
		victim, evicted = set[c.ways-1], true
		set = set[:c.ways-1]
	}
	set = append(set, 0)
	copy(set[1:], set)
	set[0] = key
	c.sets[key%uint64(len(c.sets))] = set
	return false, victim, evicted
}

// content returns every resident key, set-major, each set's keys most
// recent first.
func (c *exactCache) content() []uint64 {
	out := make([]uint64, 0, len(c.sets)*c.ways)
	for _, set := range c.sets {
		out = append(out, set...)
	}
	return out
}

// invalidate drops key if present (inclusion back-invalidation: the
// simulator extracts L1 copies when the L2 evicts a line, so the
// filters must too — otherwise the model misses the L3 hits those
// invalidated-then-refetched lines produce).
func (c *exactCache) invalidate(key uint64) {
	set := c.sets[key%uint64(len(c.sets))]
	for i, k := range set {
		if k == key {
			c.sets[key%uint64(len(c.sets))] = append(set[:i], set[i+1:]...)
			return
		}
	}
}
