// Package engine models täkō's per-tile engines (§5.3): a hardware
// scheduler with a bounded callback buffer and bitstream cache, plus a
// spatial dataflow fabric of simple processing elements that executes
// callbacks in SIMD fashion across cache lines.
//
// Callbacks are Go functions operating on a Ctx; their *timing* comes
// from a static cost model declared per callback (dynamic instruction
// count and dataflow critical path) checked against fabric capacity,
// while their *memory* operations run through the modeled hierarchy via
// the engine's coherent L1d, paying real latencies. This reproduces the
// properties the paper's sensitivity studies probe: fabric size and PE
// latency change compute time (Figs 22, 23), the callback buffer bounds
// concurrency (§9), and an in-order-core engine serializes memory-level
// parallelism and loses SIMD, which is why it "performs very poorly".
package engine

import (
	"fmt"

	"tako/internal/energy"
	"tako/internal/flat"
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/stats"
	"tako/internal/trace"
)

// Config describes the engine microarchitecture (defaults: Table 3 /
// §5.4).
type Config struct {
	FabricW, FabricH int       // PE grid (5×5)
	MemPEs           int       // PEs with memory ports (10)
	PELatency        sim.Cycle // arithmetic PE latency (1 cycle)
	InstrPerPE       int       // instruction-memory slots per PE (16)
	TokensPerPE      int       // token-store entries per PE (8)
	CallbackBuffer   int       // concurrent callbacks (8)
	BitstreamLoad    sim.Cycle // cycles to load a Morph's bitstream
	BitstreamSlots   int       // Morphs resident in the bitstream cache

	// InOrderCore replaces the fabric with an in-order scalar core
	// (the alternative evaluated in Fig 22): no SIMD (line-wide ops
	// pay per-element), higher per-instruction cost, and memory-level
	// parallelism collapses (async loads execute synchronously).
	InOrderCore bool
	// Ideal removes all compute cost and concurrency limits; callback
	// latency is memory latency and data dependencies only (§7).
	Ideal bool

	// SIMDWidth is the number of elements a fabric op processes at
	// once (8 × 64-bit words per line).
	SIMDWidth int
	// InOrderCPI is the in-order core's cycles per instruction.
	InOrderCPI sim.Cycle
}

// DefaultConfig returns the paper's engine: 5×5 fabric, 15 int + 10 mem
// PEs, 1-cycle PEs, 8-entry callback buffer.
func DefaultConfig() Config {
	return Config{
		FabricW: 5, FabricH: 5,
		MemPEs:         10,
		PELatency:      1,
		InstrPerPE:     16,
		TokensPerPE:    8,
		CallbackBuffer: 8,
		BitstreamLoad:  64,
		BitstreamSlots: 4,
		SIMDWidth:      8,
		InOrderCPI:     2,
	}
}

// IdealConfig returns the idealized engine used as the paper's upper
// bound: unlimited, 0-cycle compute.
func IdealConfig() Config {
	c := DefaultConfig()
	c.Ideal = true
	return c
}

// IntPEs returns the number of arithmetic PEs.
func (c Config) IntPEs() int {
	n := c.FabricW*c.FabricH - c.MemPEs
	if n < 1 {
		n = 1
	}
	return n
}

// TotalInstrSlots returns fabric instruction-memory capacity.
func (c Config) TotalInstrSlots() int { return c.FabricW * c.FabricH * c.InstrPerPE }

// TotalTokenSlots returns fabric token-store capacity.
func (c Config) TotalTokenSlots() int { return c.FabricW * c.FabricH * c.TokensPerPE }

// CallbackCost is the static dataflow mapping of one callback: its
// dynamic instruction count and critical-path length in fabric ops.
type CallbackCost struct {
	Instrs   int
	CritPath int
}

// Spec describes one runnable callback to the engine.
type Spec struct {
	Cost CallbackCost
	// Sequential serializes all invocations of this callback on a
	// tile (HATS sequentializes onMiss to protect its shared stack,
	// §8.2); otherwise invocations serialize per address only.
	Sequential bool
	Fn         func(ctx *Ctx)
}

// Program resolves Morph callbacks for the engine; implemented by the
// core täkō package. Lookups name the tile whose registry view should
// answer: on a sharded machine each tile's view is owned by its shard.
type Program interface {
	// Spec returns the callback for (morphID, kind) as tile sees it;
	// ok=false if the Morph does not implement it.
	Spec(morphID, tile int, kind hier.CallbackKind) (Spec, bool)
	// View returns the engine-local view of the Morph on this tile
	// (per-engine state, §4.2).
	View(morphID, tile int) interface{}
}

// Stats aggregates per-engine activity.
type Stats struct {
	Callbacks   uint64
	Instrs      uint64
	BusyCycles  sim.Cycle
	BitLoads    uint64
	MaxQueue    int
	Interrupts  uint64
	MemAccesses uint64
}

type engTile struct {
	buffer *sim.Semaphore
	// addrChain serializes callbacks per address: line address → the
	// done-future of the newest queued callback. Open-addressed — every
	// callback inserts and deletes here.
	addrChain flat.Table[*sim.Future]
	seqChain  map[int]*sim.Future // per-morph sequential chain
	loaded    map[int]uint64      // bitstream cache: morphID -> last use
	tick      uint64
	nextFree  sim.Cycle // fabric issue-bandwidth pipeline
	stats     Stats
	queued    int
}

// Engines implements hier.Runner for every tile. Each tile's engine
// schedules its work on that tile's kernel: classically every entry of
// ks is the same kernel; on a sharded build ks[i] is shard i's kernel,
// making every callback shard-local work.
type Engines struct {
	ks    []*sim.Kernel // per-tile kernels (all identical classically)
	cfg   Config
	prog  Program
	meter *energy.Meter
	h     *hier.Hierarchy
	tiles []*engTile

	// Interrupt delivers a user-space interrupt raised by a callback
	// (§8.4); wired by the system to the victim thread's handler.
	Interrupt func(tile, morphID int, addr mem.Addr)

	// Latency attribution (resolved in AttachHierarchy, indexed by
	// CallbackKind): queueing delay from schedule to buffer admission,
	// engine occupancy while executing, and end-to-end latency.
	queueHist, execHist, totalHist [3]*stats.Histogram
	comp                           []string // pre-rendered "engine.N" labels
}

// New builds engines for `tiles` tiles. The hierarchy is attached later
// with AttachHierarchy (engines and hierarchy reference each other).
func New(k *sim.Kernel, cfg Config, tiles int, prog Program, meter *energy.Meter) *Engines {
	ks := make([]*sim.Kernel, tiles)
	for i := range ks {
		ks[i] = k
	}
	return build(ks, cfg, prog, meter)
}

// NewSharded builds engines for a sharded machine: tile i's engine runs
// on shard i's kernel, so every callback is shard-local work.
func NewSharded(sh *sim.Sharded, cfg Config, tiles int, prog Program, meter *energy.Meter) *Engines {
	if tiles != sh.Shards() {
		panic(fmt.Sprintf("engine: %d tiles on a %d-shard engine", tiles, sh.Shards()))
	}
	ks := make([]*sim.Kernel, tiles)
	for i := range ks {
		ks[i] = sh.Shard(i).K
	}
	return build(ks, cfg, prog, meter)
}

func build(ks []*sim.Kernel, cfg Config, prog Program, meter *energy.Meter) *Engines {
	e := &Engines{ks: ks, cfg: cfg, prog: prog, meter: meter}
	for _, k := range ks {
		e.tiles = append(e.tiles, &engTile{
			buffer:   sim.NewSemaphore(k, maxInt(cfg.CallbackBuffer, 1)),
			seqChain: make(map[int]*sim.Future),
			loaded:   make(map[int]uint64),
		})
	}
	return e
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AttachHierarchy wires the hierarchy the engines load and store through,
// and resolves the callback latency-attribution handles from its metrics
// registry.
func (e *Engines) AttachHierarchy(h *hier.Hierarchy) {
	e.h = h
	if h == nil {
		return
	}
	for k := hier.CbMiss; k <= hier.CbWriteback; k++ {
		l := stats.L("kind", k.String())
		e.queueHist[k] = h.Metrics.Histogram("cb.queue.cycles", l)
		e.execHist[k] = h.Metrics.Histogram("cb.exec.cycles", l)
		e.totalHist[k] = h.Metrics.Histogram("cb.total.cycles", l)
	}
	e.comp = e.comp[:0]
	for i := range e.tiles {
		e.comp = append(e.comp, fmt.Sprintf("engine.%d", i))
	}
}

// tracerAt returns the tracer callback spans on tile must record into:
// the tile's per-shard fork on a sharded build, the hierarchy's shared
// tracer classically (nil when tracing is off).
func (e *Engines) tracerAt(tile int) *trace.Tracer {
	if e.h == nil {
		return nil
	}
	return e.h.TracerAt(tile)
}

// Config returns the engine configuration.
func (e *Engines) Config() Config { return e.cfg }

// Stats returns tile's engine stats.
func (e *Engines) Stats(tile int) Stats { return e.tiles[tile].stats }

// TotalStats sums stats across engines.
func (e *Engines) TotalStats() Stats {
	var s Stats
	for _, t := range e.tiles {
		s.Callbacks += t.stats.Callbacks
		s.Instrs += t.stats.Instrs
		s.BusyCycles += t.stats.BusyCycles
		s.BitLoads += t.stats.BitLoads
		s.Interrupts += t.stats.Interrupts
		s.MemAccesses += t.stats.MemAccesses
		if t.stats.MaxQueue > s.MaxQueue {
			s.MaxQueue = t.stats.MaxQueue
		}
	}
	return s
}

// Saturated implements hier.Runner: the callback buffer is full.
func (e *Engines) Saturated(tile int) bool {
	if e.cfg.Ideal {
		return false
	}
	return e.tiles[tile].buffer.Saturated()
}

// Run implements hier.Runner: schedule a callback on tile's engine.
func (e *Engines) Run(tile int, kind hier.CallbackKind, b hier.Binding, addr mem.Addr, line *mem.Line) (accepted, done *sim.Future) {
	t := e.tiles[tile]
	k := e.ks[tile]
	spec, ok := e.prog.Spec(b.MorphID, tile, kind)
	if !ok {
		// No such callback: complete immediately (hier normally
		// filters these via the Binding Has* flags).
		f := sim.CompletedFuture(k)
		return f, f
	}
	accepted = sim.NewFuture(k)
	done = sim.NewFuture(k)
	t.queued++
	if t.queued > t.stats.MaxQueue {
		t.stats.MaxQueue = t.queued
	}

	// Serialization: per-address always; whole-callback if Sequential.
	var waitOn *sim.Future
	if spec.Sequential {
		waitOn = t.seqChain[b.MorphID]
		t.seqChain[b.MorphID] = done
	} else {
		waitOn, _ = t.addrChain.Get(uint64(addr))
		t.addrChain.Put(uint64(addr), done)
	}

	sched := k.Now()
	k.Go(fmt.Sprintf("cb:%s@%d", kind, tile), func(p *sim.Proc) {
		if waitOn != nil {
			p.Wait(waitOn)
		}
		if !e.cfg.Ideal {
			t.buffer.Acquire(p)
		}
		accepted.Complete()
		start := p.Now()
		e.execute(p, t, tile, spec, b, kind, addr, line)
		end := p.Now()
		t.stats.BusyCycles += end - start
		t.stats.Callbacks++
		// Latency attribution: schedule → admission (queue), admission →
		// completion (exec), and the whole life of the callback.
		e.queueHist[kind].Observe(start - sched)
		e.execHist[kind].Observe(end - start)
		e.totalHist[kind].Observe(end - sched)
		if tr := e.tracerAt(tile); tr != nil && tile < len(e.comp) {
			comp := e.comp[tile]
			// Nested slices on the engine track: the cb.<kind> span
			// encloses its queue and exec phases.
			tr.EmitSpan(sched, end, comp, "cb."+kind.String(), addr.String())
			tr.EmitSpan(sched, start, comp, "cb.queue", "")
			tr.EmitSpan(start, end, comp, "cb.exec", kind.String())
		}
		if !e.cfg.Ideal {
			t.buffer.Release()
		}
		t.queued--
		if spec.Sequential {
			if t.seqChain[b.MorphID] == done {
				delete(t.seqChain, b.MorphID)
			}
		} else if f, _ := t.addrChain.Get(uint64(addr)); f == done {
			t.addrChain.Delete(uint64(addr))
		}
		done.Complete()
	})
	return accepted, done
}

// execute runs one callback: bitstream load, fabric compute cost, and
// the handler's real memory traffic.
func (e *Engines) execute(p *sim.Proc, t *engTile, tile int, spec Spec, b hier.Binding, kind hier.CallbackKind, addr mem.Addr, line *mem.Line) {
	if !e.cfg.Ideal {
		e.ensureBitstream(p, t, b.MorphID)
	}
	ctx := &Ctx{
		P: p, Tile: tile, Level: b.Level, Addr: addr, Line: line,
		Kind: kind, MorphID: b.MorphID,
		engines: e, tile: t,
	}
	if e.prog != nil {
		ctx.view = e.prog.View(b.MorphID, tile)
	}
	spec.Fn(ctx)
	e.chargeCompute(p, t, spec.Cost, ctx.extraOps)
	t.stats.Instrs += uint64(spec.Cost.Instrs + ctx.extraOps)
	if e.meter != nil {
		e.meter.Add(energy.EngineInstr, uint64(spec.Cost.Instrs+ctx.extraOps))
	}
}

// chargeCompute applies the fabric timing model to one invocation.
//
// Dataflow fabric: latency = max(critical path × PE latency, issue
// occupancy), where occupancy = ceil(instrs / int PEs) × PE latency;
// occupancy also serializes through the shared fabric pipeline, so
// concurrent callbacks contend for issue bandwidth.
//
// In-order core: no SIMD (ops multiply by SIMDWidth) and CPI > 1; the
// handler's memory ops were already serialized because async loads
// degrade to synchronous ones (see Ctx.LoadLineAsync).
func (e *Engines) chargeCompute(p *sim.Proc, t *engTile, cost CallbackCost, extraOps int) {
	instrs := cost.Instrs + extraOps
	if e.cfg.Ideal || instrs == 0 {
		return
	}
	if e.cfg.InOrderCore {
		p.Sleep(sim.Cycle(instrs) * e.cfg.InOrderCPI * sim.Cycle(e.cfg.SIMDWidth))
		return
	}
	occ := sim.Cycle((instrs+e.cfg.IntPEs()-1)/e.cfg.IntPEs()) * e.cfg.PELatency
	lat := sim.Cycle(cost.CritPath) * e.cfg.PELatency
	if occ > lat {
		lat = occ
	}
	start := p.Now()
	if t.nextFree > start {
		lat += t.nextFree - start
	}
	if t.nextFree < start {
		t.nextFree = start
	}
	t.nextFree += occ
	p.Sleep(lat)
}

// ensureBitstream charges the bitstream-cache lookup, loading the
// Morph's configuration onto the fabric if it is not resident (§5.3).
func (e *Engines) ensureBitstream(p *sim.Proc, t *engTile, morphID int) {
	t.tick++
	if _, ok := t.loaded[morphID]; ok {
		t.loaded[morphID] = t.tick
		return
	}
	if len(t.loaded) >= maxInt(e.cfg.BitstreamSlots, 1) {
		var victim int
		oldest := uint64(0)
		first := true
		for id, use := range t.loaded {
			if first || use < oldest {
				victim, oldest, first = id, use, false
			}
		}
		delete(t.loaded, victim)
	}
	t.loaded[morphID] = t.tick
	t.stats.BitLoads++
	p.Sleep(e.cfg.BitstreamLoad)
}

// ValidateFit checks a Morph's callbacks fit the fabric's instruction
// memory (the paper's largest Morph uses 94 of 400 slots, §5.3).
func (e *Engines) ValidateFit(totalInstrs int) error {
	if e.cfg.Ideal || e.cfg.InOrderCore {
		return nil
	}
	if totalInstrs > e.cfg.TotalInstrSlots() {
		return fmt.Errorf("engine: Morph needs %d instruction slots, fabric has %d",
			totalInstrs, e.cfg.TotalInstrSlots())
	}
	return nil
}
