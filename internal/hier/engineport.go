package hier

import (
	"tako/internal/mem"
	"tako/internal/sim"
)

// Engine memory port (§5.3): callbacks access memory through the tile
// engine's coherent L1d. Accesses from PRIVATE-level callbacks route
// through the tile's L2 (clustered within the tile); SHARED-level
// callbacks go from the engine L1d straight to the shared level, since
// they run at the L3 bank. Fills issued here are marked engine fills so
// trrîp inserts them at distant re-reference priority (§5.2).
//
// The engine's rTLB is consulted per access for timing; its reach only
// needs to cover cached data (§6).

func (h *Hierarchy) engineOpts(cbLevel Level, write bool) accessOpts {
	return accessOpts{
		write:   write,
		engine:  true,
		viaL2:   cbLevel == LevelPrivate,
		cbLevel: cbLevel,
	}
}

func (h *Hierarchy) engineTLB(p *sim.Proc, tileID int, a mem.Addr) {
	t := h.tiles[tileID]
	if lat, hit := t.rtlb.Lookup(a); !hit {
		p.Sleep(lat)
	}
}

// EngineLoadWord loads the 8-byte word containing a on tileID's engine.
func (h *Hierarchy) EngineLoadWord(p *sim.Proc, tileID int, a mem.Addr, cbLevel Level) uint64 {
	h.engineTLB(p, tileID, a)
	ls := h.access(p, tileID, a, h.engineOpts(cbLevel, false))
	if h.obs != nil {
		h.obs.EngineAccess(tileID, a, false)
	}
	return ls.Data.U64(a.Offset() &^ 7)
}

// EngineLoadLine loads the full line containing a on tileID's engine
// (callback operations are line-wide SIMD, §5.3).
func (h *Hierarchy) EngineLoadLine(p *sim.Proc, tileID int, a mem.Addr, cbLevel Level) mem.Line {
	h.engineTLB(p, tileID, a)
	ls := h.access(p, tileID, a, h.engineOpts(cbLevel, false))
	if h.obs != nil {
		h.obs.EngineAccess(tileID, a, false)
	}
	return ls.Data
}

// EngineStoreWord writes the 8-byte word containing a on tileID's engine.
func (h *Hierarchy) EngineStoreWord(p *sim.Proc, tileID int, a mem.Addr, v uint64, cbLevel Level) {
	h.engineTLB(p, tileID, a)
	ls := h.access(p, tileID, a, h.engineOpts(cbLevel, true))
	ls.Data.SetU64(a.Offset()&^7, v)
	ls.Dirty = true
	if h.obs != nil {
		h.obs.EngineAccess(tileID, a, true)
	}
	h.event("engine.store")
}

// EngineStoreLine writes a full line on tileID's engine.
func (h *Hierarchy) EngineStoreLine(p *sim.Proc, tileID int, a mem.Addr, data *mem.Line, cbLevel Level) {
	h.engineTLB(p, tileID, a)
	ls := h.access(p, tileID, a, h.engineOpts(cbLevel, true))
	ls.Data = *data
	ls.Dirty = true
	if h.obs != nil {
		h.obs.EngineAccess(tileID, a, true)
	}
	h.event("engine.store")
}

// EngineAtomicAddWord performs a read-modify-write add on tileID's
// engine (e.g. PHI applying buffered updates in place).
func (h *Hierarchy) EngineAtomicAddWord(p *sim.Proc, tileID int, a mem.Addr, delta uint64, cbLevel Level) {
	h.engineTLB(p, tileID, a)
	ls := h.access(p, tileID, a, h.engineOpts(cbLevel, true))
	off := a.Offset() &^ 7
	ls.Data.SetU64(off, ls.Data.U64(off)+delta)
	ls.Dirty = true
	if h.obs != nil {
		h.obs.EngineAccess(tileID, a, true)
	}
	h.event("engine.rmw")
}

// EngineLoadLineAsync issues a non-blocking engine line fetch on a
// spawned process, completing f when the line is resident. Dataflow
// engines use this to expose memory-level parallelism within a callback
// (§5.3).
func (h *Hierarchy) EngineLoadLineAsync(tileID int, a mem.Addr, cbLevel Level, f *sim.Future) {
	// The fetch proc runs on the tile's own kernel (= its shard when
	// sharded), like the callback that issued it.
	h.tiles[tileID].K.Go("engine-async-load", func(p *sim.Proc) {
		h.EngineLoadLine(p, tileID, a, cbLevel)
		f.Complete()
	})
}

// EngineRMWWord performs a commutative read-modify-write with operator
// op on tileID's engine (PHI-style in-place application for arbitrary
// commutative operators).
func (h *Hierarchy) EngineRMWWord(p *sim.Proc, tileID int, a mem.Addr, op RMOOp, v uint64, cbLevel Level) {
	h.engineTLB(p, tileID, a)
	ls := h.access(p, tileID, a, h.engineOpts(cbLevel, true))
	off := a.Offset() &^ 7
	ls.Data.SetU64(off, op.apply(ls.Data.U64(off), v))
	ls.Dirty = true
	if h.obs != nil {
		h.obs.EngineAccess(tileID, a, true)
	}
	h.event("engine.rmw")
}

// EnginePersistLine writes a line durably: the data is stored through
// the cache AND written to (NV)DRAM, modeling a write that must reach
// the persistence domain (§8.3).
func (h *Hierarchy) EnginePersistLine(p *sim.Proc, tileID int, a mem.Addr, data *mem.Line, cbLevel Level) {
	h.EngineStoreLine(p, tileID, a, data, cbLevel)
	la := a.Line()
	if !h.sharded {
		p.Wait(h.DRAM.WriteLine(la, data))
		return
	}
	home := h.HomeTile(la)
	if home == tileID {
		p.Wait(h.dramAt(home).WriteLine(la, data))
		return
	}
	// Persist RPC: each DRAM controller is owned by its home shard, so
	// ship the line there, let the home proc wait out the write queue,
	// and ack completion back on the ordered channel.
	t, hm := h.tiles[tileID], h.tiles[home]
	done := t.K.GetFuture()
	line := *data
	h.sendOrdered(t, home, h.Mesh.Transfer(tileID, home, mem.LineSize), func() {
		hm.K.Go("persist", func(q *sim.Proc) {
			q.Wait(h.dramAt(home).WriteLine(la, &line))
			h.completeOrdered(hm, tileID, h.Mesh.Latency(home, tileID, 8), done)
		})
	})
	p.Wait(done)
}
