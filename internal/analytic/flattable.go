package analytic

// flatTable is a minimal open-addressed uint64 -> int map tuned for the
// stack-distance hot loop: power-of-two capacity, linear probing, and
// tombstone-free deletion by full reset at compaction time (the only
// point keys are ever removed). It mirrors internal/flat but stores int
// slots inline and supports cheap iteration for compaction.
type flatTable struct {
	keys []uint64
	vals []int
	used []bool
	n    int
}

const flatMinCap = 1 << 11

func (t *flatTable) init(capHint int) {
	n := flatMinCap
	for n < capHint*2 {
		n *= 2
	}
	t.keys = make([]uint64, n)
	t.vals = make([]int, n)
	t.used = make([]bool, n)
	t.n = 0
}

// reset clears the table, reallocating only when the capacity hint needs
// more room than the current arrays provide.
func (t *flatTable) reset(capHint int) {
	if t.keys == nil || len(t.keys) < capHint*2 {
		t.init(capHint)
		return
	}
	for i := range t.used {
		t.used[i] = false
	}
	t.n = 0
}

func hashKey(k uint64) uint64 {
	// splitmix64 finalizer: strong enough for line/page addresses.
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

func (t *flatTable) get(key uint64) (int, bool) {
	if t.keys == nil {
		return 0, false
	}
	mask := uint64(len(t.keys) - 1)
	i := hashKey(key) & mask
	for t.used[i] {
		if t.keys[i] == key {
			return t.vals[i], true
		}
		i = (i + 1) & mask
	}
	return 0, false
}

// upsert stores key -> val in a single probe chain and returns the
// previous value, if any — the stack-distance hot loop's get+put pair
// collapsed into one table walk.
func (t *flatTable) upsert(key uint64, val int) (old int, existed bool) {
	if t.keys == nil {
		t.init(flatMinCap / 2)
	}
	if (t.n+1)*4 >= len(t.keys)*3 { // grow at 75% load
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := hashKey(key) & mask
	for t.used[i] {
		if t.keys[i] == key {
			old = t.vals[i]
			t.vals[i] = val
			return old, true
		}
		i = (i + 1) & mask
	}
	t.used[i] = true
	t.keys[i] = key
	t.vals[i] = val
	t.n++
	return 0, false
}

func (t *flatTable) put(key uint64, val int) {
	if t.keys == nil {
		t.init(flatMinCap / 2)
	}
	if (t.n+1)*4 >= len(t.keys)*3 { // grow at 75% load
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := hashKey(key) & mask
	for t.used[i] {
		if t.keys[i] == key {
			t.vals[i] = val
			return
		}
		i = (i + 1) & mask
	}
	t.used[i] = true
	t.keys[i] = key
	t.vals[i] = val
	t.n++
}

func (t *flatTable) grow() {
	old := *t
	t.keys = make([]uint64, len(old.keys)*2)
	t.vals = make([]int, len(old.vals)*2)
	t.used = make([]bool, len(old.used)*2)
	t.n = 0
	for i, u := range old.used {
		if u {
			t.put(old.keys[i], old.vals[i])
		}
	}
}

func (t *flatTable) each(fn func(key uint64, val int)) {
	for i, u := range t.used {
		if u {
			fn(t.keys[i], t.vals[i])
		}
	}
}

func (t *flatTable) len() int { return t.n }
