package tako

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its artifact at quick scale and reports simulated
// cycles and the headline ratio as benchmark metrics, so `go test
// -bench=.` reproduces the whole evaluation. EXPERIMENTS.md records
// paper-vs-measured numbers from these runs.

import (
	"fmt"
	"testing"

	"tako/internal/cpu"
	"tako/internal/energy"
	"tako/internal/engine"
	"tako/internal/exp"
	"tako/internal/flat"
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/morphs"
	"tako/internal/sim"
	"tako/internal/stats"
	"tako/internal/system"
	"tako/internal/trace"
)

// runExperiment executes one registered experiment per bench iteration.
func runExperiment(b *testing.B, id string) {
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(true)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows()) == 0 {
			b.Fatal("no rows produced")
		}
	}
}

func BenchmarkTable2Overhead(b *testing.B)   { runExperiment(b, "table2") }
func BenchmarkTable3Parameters(b *testing.B) { runExperiment(b, "table3") }

func BenchmarkFig06Decompression(b *testing.B) {
	prm := morphs.DefaultDecompParams()
	prm.Tiles = 4
	for i := 0; i < b.N; i++ {
		res, err := morphs.RunDecompressionAll(prm)
		if err != nil {
			b.Fatal(err)
		}
		base, tako := res[morphs.DecompBaseline], res[morphs.DecompTako]
		b.ReportMetric(tako.Speedup(base), "speedup")
		b.ReportMetric(float64(tako.Cycles), "sim-cycles")
	}
}

func BenchmarkFig07DecompCount(b *testing.B) {
	prm := morphs.DefaultDecompParams()
	prm.Tiles = 4
	for i := 0; i < b.N; i++ {
		res, err := morphs.RunDecompressionAll(prm)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[morphs.DecompTako].Extra["decompressions"], "tako-decompressions")
		b.ReportMetric(res[morphs.DecompPrecompute].Extra["decompressions"], "precompute-decompressions")
	}
}

func phiBenchParams() morphs.PHIParams {
	prm := morphs.DefaultPHIParams()
	prm.V, prm.E = 16*1024, 160*1024
	prm.Tiles, prm.Threads = 8, 8
	return prm
}

func BenchmarkFig13PHI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := morphs.RunPHIAll(phiBenchParams())
		if err != nil {
			b.Fatal(err)
		}
		base := res[morphs.PHIBaseline]
		b.ReportMetric(res[morphs.PHITako].Speedup(base), "tako-speedup")
		b.ReportMetric(res[morphs.PHIUB].Speedup(base), "ub-speedup")
	}
}

func BenchmarkFig14PHIAccesses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := morphs.RunPHIAll(phiBenchParams())
		if err != nil {
			b.Fatal(err)
		}
		base := float64(res[morphs.PHIBaseline].DRAMAccesses)
		b.ReportMetric(float64(res[morphs.PHITako].DRAMAccesses)/base, "tako-dram-ratio")
		b.ReportMetric(float64(res[morphs.PHIUB].DRAMAccesses)/base, "ub-dram-ratio")
	}
}

func hatsBenchParams() morphs.HATSParams {
	prm := morphs.DefaultHATSParams()
	prm.Tiles = 8
	return prm
}

func BenchmarkFig16HATS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := morphs.RunHATSAll(hatsBenchParams())
		if err != nil {
			b.Fatal(err)
		}
		base := res[morphs.HATSVertexOrdered]
		b.ReportMetric(res[morphs.HATSTako].Speedup(base), "tako-speedup")
		b.ReportMetric(res[morphs.HATSIdeal].Speedup(base), "ideal-speedup")
	}
}

func BenchmarkFig17HATSBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := morphs.RunHATSAll(hatsBenchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[morphs.HATSTako].Extra["load.mean"], "tako-load-lat")
		b.ReportMetric(res[morphs.HATSSoftwareBDFS].Extra["mispredicts.per.edge"], "swbdfs-mispred-per-edge")
	}
}

func BenchmarkFig19NVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := morphs.RunNVMSweep([]int{16 << 10, 128 << 10}, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[morphs.NVMTako][0].Speedup(res[morphs.NVMBaseline][0]), "speedup-16KB")
		b.ReportMetric(res[morphs.NVMTako][1].Speedup(res[morphs.NVMBaseline][1]), "speedup-128KB")
	}
}

func BenchmarkFig20NVMInstrs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := morphs.RunNVMSweep([]int{16 << 10}, 4)
		if err != nil {
			b.Fatal(err)
		}
		base := res[morphs.NVMBaseline][0]
		tako := res[morphs.NVMTako][0]
		b.ReportMetric(tako.Extra["instr_per_8B_core"]/base.Extra["instr_per_8B_core"], "core-instr-ratio")
	}
}

func BenchmarkFig21SideChannel(b *testing.B) {
	prm := morphs.DefaultSideChannelParams()
	for i := 0; i < b.N; i++ {
		base, err := morphs.RunSideChannel(morphs.SCBaseline, prm)
		if err != nil {
			b.Fatal(err)
		}
		tako, err := morphs.RunSideChannel(morphs.SCTako, prm)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(base.TruePositives), "baseline-lines-leaked")
		b.ReportMetric(float64(tako.TruePositives), "tako-lines-leaked")
		b.ReportMetric(float64(tako.DetectionCycle), "detection-cycle")
	}
}

func BenchmarkFig22FabricSize(b *testing.B) {
	prm := hatsBenchParams()
	base, err := morphs.RunHATS(morphs.HATSVertexOrdered, prm)
	if err != nil {
		b.Fatal(err)
	}
	for _, dim := range []int{3, 5, 7} {
		b.Run(sizeName(dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := prm
				p.Engine = engine.DefaultConfig()
				p.Engine.FabricW, p.Engine.FabricH = dim, dim
				p.Engine.MemPEs = dim * dim * 2 / 5
				r, err := morphs.RunHATS(morphs.HATSTako, p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Speedup(base), "speedup")
			}
		})
	}
	b.Run("inorder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := prm
			p.Engine = engine.DefaultConfig()
			p.Engine.InOrderCore = true
			r, err := morphs.RunHATS(morphs.HATSTako, p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.Speedup(base), "speedup")
		}
	})
}

func sizeName(d int) string {
	return string(rune('0'+d)) + "x" + string(rune('0'+d))
}

func BenchmarkFig23PELatency(b *testing.B) {
	prm := hatsBenchParams()
	base, err := morphs.RunHATS(morphs.HATSVertexOrdered, prm)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, lat := range []int{1, 8} {
			p := prm
			p.Engine = engine.DefaultConfig()
			p.Engine.PELatency = uint64(lat)
			r, err := morphs.RunHATS(morphs.HATSTako, p)
			if err != nil {
				b.Fatal(err)
			}
			if lat == 1 {
				b.ReportMetric(r.Speedup(base), "speedup-1cyc")
			} else {
				b.ReportMetric(r.Speedup(base), "speedup-8cyc")
			}
		}
	}
}

func BenchmarkFig24CoreUarch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, _ := exp.ByID("fig24")
		if _, err := e.Run(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig25Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, _ := exp.ByID("fig25")
		if _, err := e.Run(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepCallbackBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, _ := exp.ByID("sweep-cbbuf")
		if _, err := e.Run(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepRTLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, _ := exp.ByID("sweep-rtlb")
		if _, err := e.Run(true); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches: täkō's design choices called out in DESIGN.md §6.

// BenchmarkAblationTRRIP compares trrîp's engine-fill demotion against
// plain RRIP on the decompression study (engine delta fetches pollute
// the caches without it, §5.2).
func BenchmarkAblationTRRIP(b *testing.B) {
	prm := morphs.DefaultDecompParams()
	prm.Tiles = 4
	for i := 0; i < b.N; i++ {
		trrip, err := morphs.RunDecompression(morphs.DecompTako, prm)
		if err != nil {
			b.Fatal(err)
		}
		plain := prm
		plain.PlainRRIP = true
		rrip, err := morphs.RunDecompression(morphs.DecompTako, plain)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(trrip.Cycles), "trrip-cycles")
		b.ReportMetric(float64(rrip.Cycles), "plain-rrip-cycles")
	}
}

// BenchmarkAblationPHIThreshold sweeps PHI's in-place/bin policy knob.
func BenchmarkAblationPHIThreshold(b *testing.B) {
	for _, th := range []int{1, 6, 9} {
		th := th
		b.Run(thName(th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prm := phiBenchParams()
				prm.Threshold = th
				r, err := morphs.RunPHI(morphs.PHITako, prm)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.DRAMAccesses), "dram-accesses")
			}
		})
	}
}

func thName(t int) string { return "threshold-" + string(rune('0'+t)) }

// BenchmarkAblationDecoupling disables the L2 prefetcher for täkō-HATS:
// the phantom stream is no longer filled ahead of the core, so each
// onMiss lands on the critical path (§8.2's decoupling claim).
func BenchmarkAblationDecoupling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prm := hatsBenchParams()
		with, err := morphs.RunHATS(morphs.HATSTako, prm)
		if err != nil {
			b.Fatal(err)
		}
		prm.NoPrefetch = true
		without, err := morphs.RunHATS(morphs.HATSTako, prm)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(with.Cycles), "decoupled-cycles")
		b.ReportMetric(float64(without.Cycles), "coupled-cycles")
	}
}

// BenchmarkExtensionHierPHI compares flat PHI against hierarchical PHI
// (footnote 3 / [95]): a PRIVATE combining buffer per tile forwarding
// into the SHARED Morph. Its advantage grows with core count; at quick
// scale the forwarding cost dominates, so the bench reports both.
func BenchmarkExtensionHierPHI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prm := phiBenchParams()
		flat, err := morphs.RunPHI(morphs.PHITako, prm)
		if err != nil {
			b.Fatal(err)
		}
		hier, err := morphs.RunPHI(morphs.PHIHier, prm)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(flat.Cycles), "flat-cycles")
		b.ReportMetric(float64(hier.Cycles), "hier-cycles")
		b.ReportMetric(hier.Extra["updates.forwarded"], "forwarded")
	}
}

// BenchmarkLayoutMorph runs the AoS→SoA extension study (§5.2's >4x
// example at full scale; a clear win at quick scale).
func BenchmarkLayoutMorph(b *testing.B) {
	prm := morphs.DefaultLayoutParams()
	for i := 0; i < b.N; i++ {
		res, err := morphs.RunLayoutAll(prm)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[morphs.LayoutTako].Speedup(res[morphs.LayoutBaseline]), "speedup")
	}
}

// Observability benches: the metrics registry and tracer live inside the
// hierarchy's hot paths, so the disabled configurations (nil handle, nil
// tracer) must cost a single predictable branch and zero allocations —
// these benches lock that in.

// BenchmarkMetricCounterInc measures the pre-resolved hot-path handle: one
// registry lookup at attach time, then pointer increments forever.
func BenchmarkMetricCounterInc(b *testing.B) {
	c := stats.NewRegistry().Counter("bench.hits", stats.L("tile", 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != uint64(b.N) {
		b.Fatal("lost increments")
	}
}

// BenchmarkMetricCounterIncDisabled is the same increment through a nil
// handle — the metrics-off configuration every component runs with when no
// registry was attached.
func BenchmarkMetricCounterIncDisabled(b *testing.B) {
	var c *stats.Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkMetricHistogramObserve measures the log2-bucketed latency
// histogram's hot path (bits.Len64 + a few field updates, no allocation).
func BenchmarkMetricHistogramObserve(b *testing.B) {
	h := stats.NewRegistry().Histogram("bench.latency")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) & 1023)
	}
}

// BenchmarkMetricHistogramObserveDisabled observes through a nil handle.
func BenchmarkMetricHistogramObserveDisabled(b *testing.B) {
	var h *stats.Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) & 1023)
	}
}

// BenchmarkMetricRegistryColdInc measures the name-based cold path (map
// lookup per increment) that hot paths avoid by pre-resolving handles.
func BenchmarkMetricRegistryColdInc(b *testing.B) {
	r := stats.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Inc("bench.hits")
	}
}

// BenchmarkTracerEmitSpan measures span emission into the ring buffer
// (no sink attached).
func BenchmarkTracerEmitSpan(b *testing.B) {
	tr := trace.New(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := uint64(i)
		tr.EmitSpan(c, c+40, "l2.0", "l2.miss", "")
	}
}

// BenchmarkTracerEmitSpanDisabled emits through a nil tracer — the
// tracing-off configuration wired into every hot path.
func BenchmarkTracerEmitSpanDisabled(b *testing.B) {
	var tr *trace.Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := uint64(i)
		tr.EmitSpan(c, c+40, "l2.0", "l2.miss", "")
	}
}

// BenchmarkTracerEmitSpanFiltered emits spans a kind filter rejects —
// the cost of tracing some kinds while a hot path emits another.
func BenchmarkTracerEmitSpanFiltered(b *testing.B) {
	tr := trace.New(4096)
	tr.Filter("cb.*")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := uint64(i)
		tr.EmitSpan(c, c+40, "l2.0", "l2.miss", "")
	}
}

// BenchmarkHierarchyThroughput measures raw simulator speed (simulated
// memory accesses per host-second) on a strided read loop, for simulator
// engineering rather than paper reproduction.
func BenchmarkHierarchyThroughput(b *testing.B) {
	k := sim.NewKernel()
	h := hier.New(k, hier.DefaultConfig(4), energy.NewMeter(), nil, nil)
	const accesses = 10000
	for i := 0; i < b.N; i++ {
		done := false
		k.Go("chase", func(p *sim.Proc) {
			for j := 0; j < accesses; j++ {
				h.Load(p, 0, mem.Addr(0x10_0000+(j%4096)*64))
			}
			done = true
		})
		k.Run()
		if !done {
			b.Fatal("load loop did not finish")
		}
	}
	b.ReportMetric(float64(accesses*b.N)/b.Elapsed().Seconds(), "sim-accesses/s")
}

// tileParChase runs one strided read loop per tile on a full 16-tile
// system whose kernel is partitioned tilePar ways (1 = the sequential
// single-queue kernel), and returns total simulated accesses.
func tileParChase(tb testing.TB, tilePar, accesses int) int {
	const tiles = 16
	cfg := system.Default(tiles)
	cfg.TilePar = tilePar
	s := system.New(cfg)
	done := 0
	for tile := 0; tile < tiles; tile++ {
		tile := tile
		s.Go(tile, "chase", func(p *sim.Proc, c *cpu.Core) {
			base := mem.Addr(0x10_0000 + tile*0x4_0000)
			for j := 0; j < accesses; j++ {
				s.H.Load(p, tile, base+mem.Addr((j%4096)*64))
			}
			done++
		})
	}
	s.Run()
	if done != tiles {
		tb.Fatalf("only %d/%d chase threads finished", done, tiles)
	}
	return tiles * accesses
}

// BenchmarkHierarchyThroughputParallel sweeps the kernel shard width on
// the 16-tile machine. Events partition across per-tile queues (the
// schedule stays byte-identical — see exp.TestTileParMatchesSequential);
// the sweep records what the partitioned dispatch costs relative to the
// single-queue kernel in the CI bench artifact.
func BenchmarkHierarchyThroughputParallel(b *testing.B) {
	for _, tilePar := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("tilepar=%d", tilePar), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				total += tileParChase(b, tilePar, 2000)
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim-accesses/s")
		})
	}
}

// TestHierarchyAccessAllocsTilePar extends the per-access alloc gate to
// the partitioned kernel: sharded queues must not reintroduce per-access
// allocations (queue routing is index arithmetic, not boxing).
func TestHierarchyAccessAllocsTilePar(t *testing.T) {
	cfg := system.Default(16)
	cfg.TilePar = 16
	s := system.New(cfg)
	const accesses = 2000
	run := func() {
		for tile := 0; tile < 16; tile++ {
			tile := tile
			s.Go(tile, "chase", func(p *sim.Proc, c *cpu.Core) {
				base := mem.Addr(0x10_0000 + tile*0x4_0000)
				for j := 0; j < accesses; j++ {
					s.H.Load(p, tile, base+mem.Addr((j%4096)*64))
				}
			})
		}
		s.K.Run()
	}
	run() // warm: fills caches, grows tables and queues, populates pools
	avg := testing.AllocsPerRun(5, run)
	if per := avg / (16 * accesses); per > 0.01 {
		t.Fatalf("partitioned-kernel access allocates %.4f allocs/access (%.0f per %d accesses), want ≤ 0.01",
			per, avg, 16*accesses)
	}
}

// TestHierarchyAccessAllocs is the alloc-count regression gate for the
// whole per-access hot path (cache lookups, directory, lock tables,
// proc/future/line-buffer pools): once caches, pools, and table
// capacities are warm, a simulated access must be allocation-free. The
// 0.01 allocs/access budget absorbs incidental runtime allocations
// without letting a per-access allocation (1.0+) regress in.
func TestHierarchyAccessAllocs(t *testing.T) {
	k := sim.NewKernel()
	h := hier.New(k, hier.DefaultConfig(4), energy.NewMeter(), nil, nil)
	const accesses = 10000
	run := func() {
		k.Go("chase", func(p *sim.Proc) {
			for j := 0; j < accesses; j++ {
				h.Load(p, 0, mem.Addr(0x10_0000+(j%4096)*64))
			}
		})
		k.Run()
	}
	run() // warm: fills caches, grows tables, populates pools
	avg := testing.AllocsPerRun(5, run)
	if per := avg / accesses; per > 0.01 {
		t.Fatalf("steady-state access allocates %.4f allocs/access (%.0f per %d accesses), want ≤ 0.01",
			per, avg, accesses)
	}
}

// BenchmarkHierarchyAccessAttributed prices transaction-level latency
// attribution against the same pointer-chase the alloc gates use: "off"
// is the production configuration (a nil check per transition), "attr"
// timestamps every state transition into per-(kind,state) dwell
// histograms, and "attr+slowest" additionally maintains the top-K
// slow-access ring with full state timelines. The delta between the
// sub-benchmarks is the observability tax recorded in the CI bench
// artifact.
func BenchmarkHierarchyAccessAttributed(b *testing.B) {
	const accesses = 10000
	for _, mode := range []struct {
		name    string
		attr    bool
		slowest int
	}{{"off", false, 0}, {"attr", true, 0}, {"attr+slowest", true, 8}} {
		b.Run(mode.name, func(b *testing.B) {
			k := sim.NewKernel()
			cfg := hier.DefaultConfig(4)
			cfg.Attribution = mode.attr
			cfg.SlowestK = mode.slowest
			h := hier.New(k, cfg, energy.NewMeter(), nil, nil)
			run := func() {
				k.Go("chase", func(p *sim.Proc) {
					for j := 0; j < accesses; j++ {
						h.Load(p, 0, mem.Addr(0x10_0000+(j%4096)*64))
					}
				})
				k.Run()
			}
			run() // warm caches, pools, and (when armed) timeline capacity
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
			b.ReportMetric(float64(accesses*b.N)/b.Elapsed().Seconds(), "sim-accesses/s")
		})
	}
}

// Data-layout microbenches: the open-addressed table and the arena are
// the substrate under every access (directory entries, MSHR/lock
// entries, memory pages), so their churn costs are pinned here.

// BenchmarkDirectoryTableChurn models the shared directory's lifetime
// pattern: entries inserted on fill, mutated while shared, deleted on
// eviction — a steady insert/delete churn over a long-lived table, the
// case tombstone-based deletion degrades on and backshift deletion keeps
// flat.
func BenchmarkDirectoryTableChurn(b *testing.B) {
	type dirEntry struct {
		sharers uint64
		owner   int8
	}
	var t flat.Table[dirEntry]
	const live = 4096 // resident lines at steady state
	for i := 0; i < live; i++ {
		t.Put(uint64(i)*64, dirEntry{sharers: 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		old := uint64(i%live) * 64
		neu := uint64(live+i%live) * 64
		t.Delete(old)
		e := t.Put(neu, dirEntry{sharers: 1 << (i % 4)})
		e.owner = int8(i % 4)
		t.Delete(neu)
		t.Put(old, dirEntry{sharers: 1})
	}
	b.ReportMetric(float64(4*b.N)/b.Elapsed().Seconds(), "table-ops/s")
}

// BenchmarkMSHRTableLockUnlock models the per-tile MSHR/lock table's
// per-access cycle: GetOrPut on the line address (acquire), Ref (the
// unlock-time lookup), Delete (release). Unlike the directory, entries
// are short-lived — most accesses create and destroy one.
func BenchmarkMSHRTableLockUnlock(b *testing.B) {
	type lockEntry struct {
		seq uint64
		fut uintptr
	}
	var t flat.Table[lockEntry]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		la := uint64(0x10_0000 + (i%512)*64)
		e, _ := t.GetOrPut(la, lockEntry{})
		e.seq++
		if r := t.Ref(la); r != nil {
			t.Delete(la)
		}
	}
	b.ReportMetric(float64(3*b.N)/b.Elapsed().Seconds(), "table-ops/s")
}

// BenchmarkArenaAccess measures the page-granular memory arena on a
// strided word mix spanning many pages — the DRAM backing-store path
// every fill and writeback takes.
func BenchmarkArenaAccess(b *testing.B) {
	m := mem.NewMemory()
	const span = 1 << 24 // 16 MiB: well past one page, sparse pages touched
	for a := uint64(0); a < span; a += 4096 {
		m.WriteU64(mem.Addr(a), a) // pre-fault the pages
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		a := mem.Addr(uint64(i*8192+(i%8)*8) % span)
		m.WriteU64(a, uint64(i))
		sink += m.ReadU64(a)
	}
	_ = sink
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "word-ops/s")
}

// BenchmarkArenaLineCopy measures full-line reads/writes through the
// arena (the granularity fills and writebacks actually move).
func BenchmarkArenaLineCopy(b *testing.B) {
	m := mem.NewMemory()
	var line mem.Line
	for w := 0; w < mem.WordsPerLine; w++ {
		line.SetWord(w, uint64(w)*0x9e3779b97f4a7c15)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		la := mem.Addr((i % 65536) * 64)
		m.WriteLine(la, &line)
		m.PeekLine(la, &line)
	}
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "line-ops/s")
}
