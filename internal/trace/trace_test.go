package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(1, "x", "y", "z")
	tr.Emitf(1, "x", "y", "%d", 5)
	tr.Filter("a")
	if tr.Events() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer recorded something")
	}
}

func TestRecordAndDump(t *testing.T) {
	tr := New(8)
	tr.Emit(10, "l2.0", "miss", "0x1000")
	tr.Emitf(20, "engine.0", "cb.onMiss", "addr=%#x", 0x1000)
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Cycle != 10 || events[1].Kind != "cb.onMiss" {
		t.Fatalf("events: %+v", events)
	}
	dump := tr.Dump()
	if !strings.Contains(dump, "cb.onMiss") || !strings.Contains(dump, "addr=0x1000") {
		t.Fatalf("dump:\n%s", dump)
	}
}

func TestRingWraps(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(uint64(i), "c", "k", "")
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d, want 4", len(events))
	}
	// Chronological: the last four cycles 6,7,8,9.
	for i, e := range events {
		if e.Cycle != uint64(6+i) {
			t.Fatalf("event %d cycle = %d", i, e.Cycle)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestFilters(t *testing.T) {
	tr := New(16)
	tr.Filter("cb.*", "dram")
	tr.Emit(1, "e", "cb.onMiss", "")
	tr.Emit(2, "e", "cb.onWriteback", "")
	tr.Emit(3, "d", "dram", "")
	tr.Emit(4, "l2", "miss", "") // filtered out
	counts := tr.CountByKind()
	if counts["cb.onMiss"] != 1 || counts["cb.onWriteback"] != 1 || counts["dram"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if counts["miss"] != 0 {
		t.Fatal("filter leaked")
	}
}

// Property: the ring always returns min(total, capacity) events, in
// non-decreasing emit order.
func TestQuickRingInvariant(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		capacity := int(capRaw)%32 + 1
		tr := New(capacity)
		for i := 0; i < int(n); i++ {
			tr.Emit(uint64(i), "c", "k", "")
		}
		events := tr.Events()
		want := int(n)
		if want > capacity {
			want = capacity
		}
		if len(events) != want {
			return false
		}
		for i := 1; i < len(events); i++ {
			if events[i].Cycle != events[i-1].Cycle+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// collectSink records everything emitted into it, in emission order.
type collectSink struct{ events []Event }

func (s *collectSink) Emit(e Event) { s.events = append(s.events, e) }
func (s *collectSink) Close() error { return nil }

func TestForkMergeCanonicalOrder(t *testing.T) {
	tr := New(16)
	forks := tr.Fork(3)
	// Deliberately interleaved emission across forks: cycle ties must
	// break by shard index, and within one shard emit order must hold.
	forks[2].Emit(5, "c2", "k", "a")
	forks[0].Emit(5, "c0", "k", "b")
	forks[1].Emit(3, "c1", "k", "c")
	forks[0].Emit(1, "c0", "k", "d")
	forks[2].Emit(5, "c2", "k", "e")
	tr.Merge(forks)
	got := tr.Events()
	want := []struct {
		cycle  uint64
		shard  int
		detail string
	}{{1, 0, "d"}, {3, 1, "c"}, {5, 0, "b"}, {5, 2, "a"}, {5, 2, "e"}}
	if len(got) != len(want) {
		t.Fatalf("merged %d events, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Cycle != w.cycle || got[i].Shard != w.shard || got[i].Detail != w.detail {
			t.Fatalf("event %d = %+v, want cycle=%d shard=%d detail=%q",
				i, got[i], w.cycle, w.shard, w.detail)
		}
	}
	for _, f := range forks {
		if f.Retained() != 0 {
			t.Fatal("Merge must reset the forks")
		}
	}
}

// TestSinkBackedForksRetainEverything pins the streaming contract: when
// the parent tracer feeds a sink, its forks must keep their complete
// history — not a most-recent-capacity ring window — so the merged
// stream carries every event the sink would have seen unforked.
func TestSinkBackedForksRetainEverything(t *testing.T) {
	sink := &collectSink{}
	tr := New(4)
	tr.AttachSink(sink)
	forks := tr.Fork(2)
	const perShard = 20 // 5x the ring capacity
	for i := 0; i < perShard; i++ {
		forks[0].Emit(uint64(2*i), "c0", "k", "")
		forks[1].Emit(uint64(2*i+1), "c1", "k", "")
	}
	tr.Merge(forks)
	if len(sink.events) != 2*perShard {
		t.Fatalf("sink saw %d events, want %d", len(sink.events), 2*perShard)
	}
	for i := 1; i < len(sink.events); i++ {
		if sink.events[i].Cycle < sink.events[i-1].Cycle {
			t.Fatalf("sink stream out of order at %d: %+v after %+v",
				i, sink.events[i], sink.events[i-1])
		}
	}

	// Without a sink the forks stay ring-bounded (live introspection
	// keeps a window, not the full history).
	plain := New(4).Fork(1)
	for i := 0; i < perShard; i++ {
		plain[0].Emit(uint64(i), "c", "k", "")
	}
	if got := plain[0].Retained(); got != 4 {
		t.Fatalf("sinkless fork retained %d events, want ring capacity 4", got)
	}
}
