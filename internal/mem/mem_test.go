package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrLineAndOffset(t *testing.T) {
	cases := []struct {
		a      Addr
		line   Addr
		offset uint64
	}{
		{0, 0, 0},
		{63, 0, 63},
		{64, 64, 0},
		{0x1234, 0x1200, 0x34},
	}
	for _, c := range cases {
		if c.a.Line() != c.line {
			t.Errorf("%v.Line() = %v, want %v", c.a, c.a.Line(), c.line)
		}
		if c.a.Offset() != c.offset {
			t.Errorf("%v.Offset() = %d, want %d", c.a, c.a.Offset(), c.offset)
		}
	}
}

func TestQuickLineDecomposition(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		return addr.Line()+Addr(addr.Offset()) == addr &&
			addr.Line()%LineSize == 0 &&
			addr.Offset() < LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineWordAccessors(t *testing.T) {
	var l Line
	for i := 0; i < WordsPerLine; i++ {
		l.SetWord(i, uint64(i)*0x1111_1111)
	}
	for i := 0; i < WordsPerLine; i++ {
		if l.Word(i) != uint64(i)*0x1111_1111 {
			t.Fatalf("word %d = %x", i, l.Word(i))
		}
	}
	if l.IsZero() {
		t.Fatal("nonzero line reported zero")
	}
	l = Line{}
	if !l.IsZero() {
		t.Fatal("zero line reported nonzero")
	}
}

func TestLineU32(t *testing.T) {
	var l Line
	l.SetU32(4, 0xdeadbeef)
	if l.U32(4) != 0xdeadbeef {
		t.Fatalf("u32 = %x", l.U32(4))
	}
	// Low half of word 0 untouched.
	if l.U32(0) != 0 {
		t.Fatalf("adjacent u32 clobbered: %x", l.U32(0))
	}
}

func TestMemoryZeroFill(t *testing.T) {
	m := NewMemory()
	if got := m.ReadU64(0x1000); got != 0 {
		t.Fatalf("untouched memory = %x, want 0", got)
	}
	m.WriteU64(0x1000, 42)
	if got := m.ReadU64(0x1000); got != 42 {
		t.Fatalf("readback = %d, want 42", got)
	}
	var l Line
	m.PeekLine(0x1008, &l)
	if l.Word(0) != 42 {
		t.Fatalf("PeekLine word0 = %d, want 42", l.Word(0))
	}
}

func TestMemoryLineRoundTrip(t *testing.T) {
	m := NewMemory()
	var src Line
	for i := range src {
		src[i] = byte(i)
	}
	m.WriteLine(0x2000, &src)
	var dst Line
	m.PeekLine(0x2010, &dst) // any addr in the line
	if dst != src {
		t.Fatal("line did not round-trip")
	}
}

func TestQuickMemoryReadBack(t *testing.T) {
	m := NewMemory()
	f := func(slot uint16, v uint64) bool {
		a := Addr(slot) * 8
		m.WriteU64(a, v)
		return m.ReadU64(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMemoryArenaPointerStability verifies LineAt pointers survive
// arbitrary later growth: chunks come from fixed slabs, never a
// reallocating slice, so a held *Line must keep reading and writing the
// same storage.
func TestMemoryArenaPointerStability(t *testing.T) {
	m := NewMemory()
	type held struct {
		a Addr
		p *Line
	}
	var refs []held
	for i := 0; i < 2000; i++ {
		a := Addr(i) * PageSize // one line per page: maximal chunk churn
		p := m.LineAt(a)
		p.SetU64(0, uint64(i)+1)
		refs = append(refs, held{a, p})
	}
	for _, r := range refs {
		if r.p != m.LineAt(r.a) {
			t.Fatalf("LineAt(%v) moved", r.a)
		}
		if got := m.ReadU64(r.a); got != r.p.U64(0) {
			t.Fatalf("held pointer for %v out of sync: %d vs %d", r.a, r.p.U64(0), got)
		}
	}
}

// TestMemoryPopulatedLines verifies the arena's touched bitmap keeps
// PopulatedLines line-exact despite page-granular allocation.
func TestMemoryPopulatedLines(t *testing.T) {
	m := NewMemory()
	if m.PopulatedLines() != 0 {
		t.Fatalf("fresh memory has %d populated lines", m.PopulatedLines())
	}
	m.WriteU64(0x0, 1)      // line 0 of page 0
	m.WriteU64(0x8, 2)      // same line
	m.WriteU64(0x40, 3)     // line 1, same page
	m.WriteU64(0x10_000, 4) // new page
	if got := m.PopulatedLines(); got != 3 {
		t.Fatalf("PopulatedLines = %d, want 3", got)
	}
	var l Line
	m.PeekLine(0x20_000, &l) // peek does not materialize
	if got := m.PopulatedLines(); got != 3 {
		t.Fatalf("PeekLine materialized: PopulatedLines = %d, want 3", got)
	}
	m.ReadU64(0x20_000) // word reads materialize (mutable-path accessor)
	if got := m.PopulatedLines(); got != 4 {
		t.Fatalf("PopulatedLines = %d, want 4", got)
	}
}

// TestMemoryCounterSymmetry audits the Reads/Writes accounting: every
// read accessor charges exactly one Read, every mutating accessor
// exactly one Write (LineAt returns mutable access, so it counts as a
// write).
func TestMemoryCounterSymmetry(t *testing.T) {
	m := NewMemory()
	var l Line

	m.PeekLine(0x100, &l)
	m.ReadU64(0x100)
	m.ReadU32(0x104)
	if m.Reads != 3 || m.Writes != 0 {
		t.Fatalf("after 3 reads: Reads=%d Writes=%d", m.Reads, m.Writes)
	}

	m.WriteLine(0x100, &l)
	m.WriteU64(0x100, 1)
	m.WriteU32(0x104, 2)
	m.LineAt(0x100)
	if m.Reads != 3 || m.Writes != 4 {
		t.Fatalf("after 4 writes: Reads=%d Writes=%d", m.Reads, m.Writes)
	}
}

// TestMemoryArenaMatchesMapReference churns the arena and a plain
// map-backed shadow through random line writes/reads and requires
// identical contents — the memory-side differential check for the
// data-layout overhaul.
func TestMemoryArenaMatchesMapReference(t *testing.T) {
	m := NewMemory()
	ref := make(map[Addr]Line)
	// Deterministic pseudo-random walk over a sparse, page-straddling
	// address set.
	x := uint64(0x243F6A8885A308D3)
	next := func() uint64 { x ^= x << 13; x ^= x >> 7; x ^= x << 17; return x }
	for i := 0; i < 20000; i++ {
		a := Addr(next() % (1 << 22)).Line()
		if next()%3 == 0 {
			var l Line
			l.SetU64(0, next())
			m.WriteLine(a, &l)
			ref[a] = l
		} else {
			var got Line
			m.PeekLine(a, &got)
			if want := ref[a]; got != want {
				t.Fatalf("iteration %d: line %v = %v, shadow has %v", i, a, got.U64(0), want.U64(0))
			}
		}
	}
}

func TestSpaceAllocDisjoint(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 1000)
	b := s.Alloc("b", 5000)
	p := s.AllocPhantom("p", 4096)
	regions := []Region{a, b, p}
	for i := range regions {
		for j := range regions {
			if i == j {
				continue
			}
			if regions[i].Contains(regions[j].Base) {
				t.Fatalf("regions overlap: %v and %v", regions[i], regions[j])
			}
		}
	}
	if !p.Phantom || a.Phantom {
		t.Fatal("phantom flags wrong")
	}
	if a.Base%PageSize != 0 || p.Base%PageSize != 0 {
		t.Fatal("regions not page aligned")
	}
}

func TestSpaceFindRegion(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 128)
	p := s.AllocPhantom("p", 128)
	if got, ok := s.FindRegion(a.Base + 64); !ok || got.Name != "a" {
		t.Fatalf("FindRegion(real) = %v, %v", got, ok)
	}
	if !s.IsPhantom(p.Base) {
		t.Fatal("IsPhantom(phantom base) = false")
	}
	if s.IsPhantom(a.Base) {
		t.Fatal("IsPhantom(real base) = true")
	}
	if _, ok := s.FindRegion(0xdead_beef_0000); ok {
		t.Fatal("found region for wild address")
	}
}

func TestSpaceFree(t *testing.T) {
	s := NewSpace()
	p := s.AllocPhantom("p", 128)
	s.Free(p)
	if _, ok := s.FindRegion(p.Base); ok {
		t.Fatal("freed region still found")
	}
}

func TestRegionAccessors(t *testing.T) {
	s := NewSpace()
	r := s.Alloc("r", 256)
	if r.Lines() != 4 {
		t.Fatalf("Lines = %d, want 4", r.Lines())
	}
	if r.Word(3) != r.Base+24 {
		t.Fatalf("Word(3) = %v", r.Word(3))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range offset")
		}
	}()
	r.At(256)
}

func TestRegionContainsBounds(t *testing.T) {
	r := Region{Name: "x", Base: 0x1000, Size: 64}
	if !r.Contains(0x1000) || !r.Contains(0x103f) {
		t.Fatal("region excludes its own bytes")
	}
	if r.Contains(0xfff) || r.Contains(0x1040) {
		t.Fatal("region includes out-of-range bytes")
	}
}
