package flat

import (
	"math/rand"
	"testing"

	"tako/internal/stats"
)

// TestTableMatchesMapReference churns a Table and a map[uint64]uint64
// through the same randomized insert/overwrite/delete/lookup sequence
// and requires identical observable state throughout. Keys are drawn
// from a small strided pool so the same key is inserted, deleted, and
// re-inserted many times — the pattern that grows tombstone debt in
// tombstone-based designs and exercises backward-shift deletion here.
func TestTableMatchesMapReference(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		var tbl Table[uint64]
		ref := make(map[uint64]uint64)
		keyPool := make([]uint64, 256)
		for i := range keyPool {
			// Strided line addresses (low entropy) plus a few scattered
			// high keys, including 0 — a valid key, not a sentinel.
			if i%8 == 0 {
				keyPool[i] = rng.Uint64()
			} else {
				keyPool[i] = uint64(i) * 64
			}
		}
		keyPool[0] = 0
		for op := 0; op < 50000; op++ {
			k := keyPool[rng.Intn(len(keyPool))]
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // insert/overwrite
				v := rng.Uint64()
				tbl.Put(k, v)
				ref[k] = v
			case 4, 5, 6: // delete
				got := tbl.Delete(k)
				_, want := ref[k]
				if got != want {
					t.Fatalf("seed %d op %d: Delete(%#x)=%v, map says %v", seed, op, k, got, want)
				}
				delete(ref, k)
			default: // lookup
				got, ok := tbl.Get(k)
				want, wok := ref[k]
				if ok != wok || got != want {
					t.Fatalf("seed %d op %d: Get(%#x)=(%d,%v), want (%d,%v)", seed, op, k, got, ok, want, wok)
				}
			}
			if tbl.Len() != len(ref) {
				t.Fatalf("seed %d op %d: Len=%d, map has %d", seed, op, tbl.Len(), len(ref))
			}
		}
		// Full cross-check both directions at the end.
		for k, want := range ref {
			if got, ok := tbl.Get(k); !ok || got != want {
				t.Fatalf("seed %d: final Get(%#x)=(%d,%v), want (%d,true)", seed, k, got, ok, want)
			}
		}
		seen := 0
		tbl.Range(func(k uint64, v *uint64) bool {
			seen++
			if want, ok := ref[k]; !ok || *v != want {
				t.Fatalf("seed %d: Range yielded (%#x,%d) not in map", seed, k, *v)
			}
			return true
		})
		if seen != len(ref) {
			t.Fatalf("seed %d: Range yielded %d entries, want %d", seed, seen, len(ref))
		}
	}
}

// TestTableRefStableAcrossReadOnlyOps verifies Ref/GetOrPut references
// read and write through to the stored value while no mutation occurs.
func TestTableRefStableAcrossReadOnlyOps(t *testing.T) {
	var tbl Table[int]
	ref, existed := tbl.GetOrPut(0x40, 7)
	if existed || *ref != 7 {
		t.Fatalf("GetOrPut insert: existed=%v val=%d", existed, *ref)
	}
	*ref = 11
	if got, _ := tbl.Get(0x40); got != 11 {
		t.Fatalf("write through ref lost: got %d", got)
	}
	ref2, existed := tbl.GetOrPut(0x40, 99)
	if !existed || *ref2 != 11 {
		t.Fatalf("GetOrPut existing: existed=%v val=%d", existed, *ref2)
	}
	if tbl.Ref(0x80) != nil {
		t.Fatal("Ref of absent key not nil")
	}
}

// TestTableBackwardShiftClusters deletes from the middle of forced
// collision clusters (including wraparound past the last slot) and
// verifies every surviving key stays reachable — the exact scenario
// backward-shift deletion must handle.
func TestTableBackwardShiftClusters(t *testing.T) {
	var tbl Table[uint64]
	// Build a dense table (just under the load limit) so clusters are
	// long and wrap the slot array.
	keys := make([]uint64, 0, 3000)
	for i := 0; i < 3000; i++ {
		k := uint64(i) * 64
		keys = append(keys, k)
		tbl.Put(k, k+1)
	}
	rng := rand.New(rand.NewSource(9))
	for len(keys) > 0 {
		i := rng.Intn(len(keys))
		k := keys[i]
		keys[i] = keys[len(keys)-1]
		keys = keys[:len(keys)-1]
		if !tbl.Delete(k) {
			t.Fatalf("Delete(%#x) missed a live key", k)
		}
		if tbl.Delete(k) {
			t.Fatalf("Delete(%#x) double-deleted", k)
		}
		// Every remaining key must still resolve.
		for _, k2 := range keys {
			if got, ok := tbl.Get(k2); !ok || got != k2+1 {
				t.Fatalf("after deleting %#x: Get(%#x)=(%d,%v)", k, k2, got, ok)
			}
		}
		if len(keys) > 64 {
			// Spot-check pace: full verification of every prefix is
			// quadratic; drop to sampling after the dense phase.
			for n := 0; n < 60 && len(keys) > 0; n++ {
				j := rng.Intn(len(keys))
				k := keys[j]
				keys[j] = keys[len(keys)-1]
				keys = keys[:len(keys)-1]
				if !tbl.Delete(k) {
					t.Fatalf("Delete(%#x) missed a live key", k)
				}
			}
		}
	}
	if tbl.Len() != 0 {
		t.Fatalf("table not empty after deleting everything: %d", tbl.Len())
	}
}

// TestTableProbeStats checks the probe-length histogram observes inserts.
func TestTableProbeStats(t *testing.T) {
	r := stats.NewRegistry()
	h := r.Histogram("probe.len")
	var tbl Table[int]
	tbl.SetProbeStats(h)
	for i := 0; i < 100; i++ {
		tbl.Put(uint64(i)*64, i)
	}
	if h.Count() != 100 {
		t.Fatalf("probe histogram saw %d inserts, want 100", h.Count())
	}
	if tbl.MaxProbe() == 0 {
		t.Fatal("MaxProbe never recorded")
	}
}

// TestTableReset verifies Reset empties the table but keeps it usable.
func TestTableReset(t *testing.T) {
	var tbl Table[int]
	for i := 0; i < 100; i++ {
		tbl.Put(uint64(i), i)
	}
	tbl.Reset()
	if tbl.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tbl.Len())
	}
	if _, ok := tbl.Get(5); ok {
		t.Fatal("entry survived Reset")
	}
	tbl.Put(5, 50)
	if got, _ := tbl.Get(5); got != 50 {
		t.Fatal("table unusable after Reset")
	}
}

// BenchmarkTableChurn measures the directory's steady-state pattern:
// get-or-create, mutate, delete, over a strided working set.
func BenchmarkTableChurn(b *testing.B) {
	var tbl Table[uint64]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%4096) * 64
		ref, _ := tbl.GetOrPut(k, 0)
		*ref++
		if i%2 == 1 {
			tbl.Delete(k)
		}
	}
}

// BenchmarkMapChurn is the same pattern over the built-in map, for
// before/after comparison in docs/performance.md.
func BenchmarkMapChurn(b *testing.B) {
	m := make(map[uint64]uint64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%4096) * 64
		m[k]++
		if i%2 == 1 {
			delete(m, k)
		}
	}
}
