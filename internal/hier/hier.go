// Package hier models the tiled cache hierarchy of the täkō multicore
// (paper Fig 2, Table 3): per-tile L1d and private L2, a shared,
// inclusive, banked L3 interleaved across tiles, a directory for
// coherence between private domains, a mesh interconnect, and DRAM.
//
// täkō hooks: the hierarchy consults a Registry for Morph registrations
// and invokes a Runner (the tile engine) on misses, evictions, and
// writebacks of registered lines. Phantom lines are never written back
// below their registration level — they are handed to their callback and
// discarded (§4.3). Addresses are locked for the duration of a callback
// by pending-line futures that later accesses must wait on.
//
// Modeling approach: simulated threads call blocking methods (Load,
// Store, ...) from sim.Procs. Latency is charged with sleeps and queueing
// (MSHRs, writeback buffers, DRAM bandwidth); functional state changes
// apply atomically between sleeps so data results are exact while timing
// is cycle-accounted.
package hier

import (
	"fmt"
	"sync/atomic"

	"tako/internal/cache"
	"tako/internal/dram"
	"tako/internal/energy"
	"tako/internal/flat"
	"tako/internal/mem"
	"tako/internal/noc"
	"tako/internal/sim"
	"tako/internal/stats"
	"tako/internal/tlb"
	"tako/internal/trace"
)

// Level identifies where in the hierarchy a Morph is registered (§4.1).
type Level int

// Morph registration levels.
const (
	LevelNone    Level = iota
	LevelPrivate       // at the tile's private L2
	LevelShared        // at the shared L3
)

func (l Level) String() string {
	switch l {
	case LevelPrivate:
		return "PRIVATE"
	case LevelShared:
		return "SHARED"
	default:
		return "NONE"
	}
}

// CallbackKind identifies which callback a cache event triggers (Table 1).
type CallbackKind int

// Callback kinds.
const (
	CbMiss      CallbackKind = iota // onMiss: generate data for the address
	CbEviction                      // onEviction: handle clean eviction
	CbWriteback                     // onWriteback: handle dirty eviction
)

func (k CallbackKind) String() string {
	switch k {
	case CbMiss:
		return "onMiss"
	case CbEviction:
		return "onEviction"
	case CbWriteback:
		return "onWriteback"
	}
	return "?"
}

// Binding describes a Morph registration to the hierarchy.
type Binding struct {
	MorphID int
	Level   Level
	Phantom bool
	Region  mem.Region
	// HasMiss/HasEviction/HasWriteback say which callbacks the Morph
	// implements, so the hierarchy skips scheduling empty ones.
	HasMiss, HasEviction, HasWriteback bool
	// Protected is the onReplacement extension (§4.5): when non-nil,
	// victim selection avoids lines for which it returns true, unless
	// no other candidate exists.
	Protected func(mem.Addr) bool
}

// Registry resolves addresses to Morph bindings. Implemented by the core
// täkō package; a nil registry means no Morphs (baseline hierarchy).
// Lookups name the tile doing the asking: on a sharded build the registry
// is partitioned per tile (each shard reads only its own view, updated by
// registration broadcast messages), so the tile parameter selects the
// view whose contents are guaranteed visible to the calling shard.
type Registry interface {
	Binding(tile int, a mem.Addr) (Binding, bool)
}

// Runner executes callbacks on a tile's engine. Implemented by the
// engine/core packages.
type Runner interface {
	// Run schedules a callback. The returned accepted future completes
	// when the engine's callback buffer admits the request (freeing
	// the cache's writeback-buffer entry, §5.2); done completes when
	// the callback finishes. For CbMiss the callback fills line; for
	// evictions line holds the evicted data.
	Run(tile int, kind CallbackKind, b Binding, addr mem.Addr, line *mem.Line) (accepted, done *sim.Future)
	// Saturated reports whether the tile's callback buffer is full, in
	// which case eviction prefers callback-free victims (§5.2).
	Saturated(tile int) bool
}

// Config describes the hierarchy geometry and timing (defaults: Table 3).
type Config struct {
	Tiles int

	L1Size, L1Ways             int
	L2Size, L2Ways             int
	L3BankSize, L3Ways         int
	EngineL1Size, EngineL1Ways int

	L1Latency           sim.Cycle
	L2TagLat, L2DataLat sim.Cycle
	L3TagLat, L3DataLat sim.Cycle

	MSHRsPerTile    int
	WBBufPerTile    int
	RMOLimit        int // outstanding remote memory ops per tile
	PrefetchDegree  int
	PrefetchStreams int

	// NewPolicy builds the replacement policy for each cache; nil
	// means trrîp everywhere.
	NewPolicy func() cache.Policy

	// FreshChecks enables per-access coherence-freshness assertions
	// (debugcheck.go); expensive, intended for tests and -verify runs.
	FreshChecks bool
	// SelfCheckEvery > 0 runs the full hierarchy-wide invariant checker
	// (CheckInvariants) every that many state-changing events.
	SelfCheckEvery int

	// Attribution arms transaction-level latency attribution (attr.go):
	// per-state dwell-cycle histograms on every txn transition, plus —
	// when SlowestK > 0 — a bounded ring of the K slowest demand
	// accesses with their full state timelines. Never changes timing or
	// architectural counts; off by default and free when off.
	Attribution bool
	SlowestK    int

	// SamplePeriod is the cycle period for queue-depth gauge sampling
	// (DRAM controller backlogs); 0 uses the dram package default.
	SamplePeriod uint64

	NoC  noc.Config
	DRAM dram.Config

	RTLB tlb.Config
}

// Package-wide verification defaults picked up by DefaultConfig, so
// harnesses (takosim -verify, tests) can arm checking for every
// hierarchy built through the standard config paths without plumbing
// flags through each experiment runner.
var (
	defaultFreshChecks    atomic.Bool
	defaultSelfCheckEvery atomic.Int64
)

// SetVerifyDefaults arms (or disarms) verification for all configs
// subsequently built by DefaultConfig/ScaledConfig: fresh enables
// coherence-freshness assertions, selfCheckEvery > 0 runs the full
// invariant checker every that many hierarchy events.
func SetVerifyDefaults(fresh bool, selfCheckEvery int) {
	defaultFreshChecks.Store(fresh)
	defaultSelfCheckEvery.Store(int64(selfCheckEvery))
}

// DefaultConfig returns the Table 3 system for the given tile count.
func DefaultConfig(tiles int) Config {
	return Config{
		FreshChecks:     defaultFreshChecks.Load(),
		SelfCheckEvery:  int(defaultSelfCheckEvery.Load()),
		Attribution:     defaultAttribution.Load(),
		SlowestK:        int(defaultSlowestK.Load()),
		Tiles:           tiles,
		L1Size:          32 * 1024,
		L1Ways:          8,
		L2Size:          128 * 1024,
		L2Ways:          8,
		L3BankSize:      512 * 1024,
		L3Ways:          16,
		EngineL1Size:    8 * 1024,
		EngineL1Ways:    8,
		L1Latency:       1,
		L2TagLat:        2,
		L2DataLat:       4,
		L3TagLat:        3,
		L3DataLat:       5,
		MSHRsPerTile:    16,
		WBBufPerTile:    8,
		RMOLimit:        16,
		PrefetchDegree:  4,
		PrefetchStreams: 8,
		NoC:             noc.DefaultConfig(tiles),
		DRAM:            dram.DefaultConfig(),
		RTLB:            tlb.DefaultRTLBConfig(),
	}
}

// ScaledConfig shrinks caches by factor (≥1) while keeping geometry
// legal, for experiments that need data ≫ cache at small workload scales.
func ScaledConfig(tiles, factor int) Config {
	c := DefaultConfig(tiles)
	shrink := func(size, ways int) int {
		s := size / factor
		min := ways * mem.LineSize
		// Round down to a power-of-two multiple of the way size.
		sets := s / min
		p := 1
		for p*2 <= sets {
			p *= 2
		}
		if sets < 1 {
			p = 1
		}
		return p * min
	}
	c.L1Size = shrink(c.L1Size, c.L1Ways)
	c.L2Size = shrink(c.L2Size, c.L2Ways)
	c.L3BankSize = shrink(c.L3BankSize, c.L3Ways)
	// The engine L1d is part of the fixed engine microarchitecture
	// (Table 2), not the scaled cache hierarchy.
	return c
}

func log2(n int) uint {
	var s uint
	for 1<<(s+1) <= n {
		s++
	}
	return s
}

// stream is one detected prefetch stream (Table 3: strided prefetcher at
// the L2).
type stream struct {
	lastLine   mem.Addr
	stride     int64
	confidence int
	lastUse    uint64
}

// tile bundles one tile's private state.
type tile struct {
	id int
	// K is the kernel this tile's processes and futures live on: the
	// hierarchy-wide kernel on a classic build, the tile's own shard
	// kernel on a sharded build (sharded.go). Tile-affine spawns
	// (prefetches, writeback timing, RMO issue) go through it so they
	// stay on the tile's shard.
	K *sim.Kernel
	// shard is the tile's mailbox endpoint on a sharded build (nil on a
	// classic kernel): all cross-tile effects leave through it.
	shard *sim.Shard

	l1  *cache.Cache // core L1d
	el1 *cache.Cache // engine L1d
	l2  *cache.Cache // private L2
	l3  *cache.Cache // this tile's bank of the shared L3

	mshr  *sim.Semaphore
	wbbuf *sim.Semaphore
	rmo   *sim.Semaphore

	// pending serializes private-domain line operations: in-flight L2
	// fills and callback locks. Accesses finding an entry wait, then
	// retry.
	pending lockTable
	// l3pending serializes home-bank operations on a line.
	l3pending lockTable
	// l3Busy is the preallocated victim-selection predicate handed to
	// the L3 bank: a line whose home-line lock is held is mid
	// transaction and must not be victimized, or the eviction callback
	// runs on a snapshot the transaction is about to supersede.
	l3Busy func(tag mem.Addr) bool

	rmoInflight *sim.WaitGroup

	streams          []stream
	streamTick       uint64
	prefetchInflight int

	rtlb *tlb.TLB
	dtlb *tlb.TLB

	// txnPool recycles this tile's coherence-transaction objects
	// (txn.go). Pooling per tile (rather than per hierarchy) keeps the
	// pool single-shard on a sharded build, so getTxn/putTxn never
	// synchronize.
	txnPool []*txn
	// txnCounts is this tile's slice of the transaction state-machine
	// coverage table; TxnCoverage sums across tiles.
	txnCounts txnCountTable
	// loadLat records demand-load latencies issued from this tile;
	// merged into Hierarchy.LoadLat when the run finishes (FinishStats).
	// Classic builds observe into Hierarchy.LoadLat directly.
	loadLat stats.Dist

	// cbInflight tracks eviction/writeback callbacks spawned on this
	// tile's kernel, so flushes can block until they complete (§4.4).
	// Per tile (rather than per hierarchy) because a WaitGroup is bound
	// to one kernel: on a sharded build each tile's callbacks must be
	// awaited from that tile's own shard.
	cbInflight *sim.WaitGroup
	// protectedFn is this tile's pre-bound victim-avoid hook (nil
	// without a registry): it resolves §4.5 Protected predicates through
	// the tile's own registry view.
	protectedFn func(tag mem.Addr) bool
	// phantomMissFills counts phantom fills served by callbacks instead
	// of DRAM on this tile; summed into Hierarchy.PhantomMissFills.
	phantomMissFills uint64
	// slow is this tile's slow-access ring on a sharded build (attr.go):
	// demand accesses finish on their issuing tile's shard, so per-tile
	// rings need no locking and merge deterministically at run end.
	slow slowRing

	// Sharded-mode state (sharded.go); unused on a classic build.
	//
	// owned is the tile's local view of which lines it holds with write
	// permission: set when a write grant arrives from home, cleared by
	// invalidation/downgrade handlers and on last-copy drops. It stands
	// in for the classic hasExclusive directory peek, which a remote
	// tile cannot perform under message passing.
	owned flat.Table[struct{}]
	// lastArr[d] is the latest arrival cycle already promised on this
	// tile's ordered channel to tile d; sendOrdered uses it to keep each
	// (src,dst) channel FIFO even when modeled latencies differ.
	lastArr []sim.Cycle
	// reqs pools homeReq message payloads.
	reqs []*homeReq
	// invPool recycles back-invalidation reply scratch (home side).
	invPool [][]invReply
	// homeNames pre-renders home-transaction proc names per kind so
	// arriving requests don't format a string per message.
	homeNames [nTxnKinds]string
}

// Hierarchy is the full modeled memory system.
type Hierarchy struct {
	K     *sim.Kernel
	Mesh  *noc.Mesh
	DRAM  *dram.DRAM
	Meter *energy.Meter

	cfg      Config
	registry Registry
	runner   Runner
	tiles    []*tile
	dir      dirTable
	// dirs banks the directory per home tile on a sharded build (nil
	// classically): each bank is touched only from its home shard, so the
	// open-addressed tables never need locking. Use dirT(la), not the
	// fields, to resolve a line's directory.
	dirs []dirTable

	// tracer records structured events when attached (nil = off). On a
	// sharded build it is the merge target: each tile records into its
	// own fork (tracers) and FinishStats merges the forks into tracer in
	// canonical (cycle, shard, seq) order.
	tracer *trace.Tracer
	// tracers holds one tracer fork per tile on a sharded build (nil
	// classically, and when tracing is off).
	tracers []*trace.Tracer

	// obs receives commit-point notifications (observer.go); nil = off.
	obs Observer
	// eventCount drives the periodic self-check (Config.SelfCheckEvery).
	eventCount uint64

	// Freshness-assertion state (debugcheck.go), per hierarchy so
	// concurrent tests cannot cross-contaminate.
	freshChecks bool
	homeLog     map[mem.Addr][]string

	// Metrics is the typed registry of named event counts, gauges, and
	// histograms (hits, misses, callbacks, queue depths...).
	Metrics *stats.Registry
	// hot caches pre-resolved Metrics handles for hot-path increments.
	hot hotMetrics
	// comp pre-renders per-tile trace component labels.
	comp componentNames
	// LoadLat records demand-load latencies from cores (Fig 17).
	LoadLat stats.Dist
	// Phantom DRAM-avoidance accounting: counted per tile
	// (tile.phantomMissFills) and summed here by PhantomFills /
	// FinishStats.
	PhantomMissFills uint64

	// Pre-bound spawn bodies for the hot asynchronous paths (prefetch
	// issue, writeback timing): built once in New so Kernel.GoArgs sites
	// don't allocate a closure per event. The victim-avoid hook lives per
	// tile (tile.protectedFn) so it reads the tile's own registry view.
	prefetchFn func(p *sim.Proc, a0, a1 uint64)
	wbTimingFn func(p *sim.Proc, a0, a1 uint64)

	// attr is the armed latency-attribution state (attr.go); nil when
	// Config.Attribution is off, so the hot path pays one pointer check.
	attr *txnAttr

	// ff is the analytical fast-forward engine (ff.go); nil when off, so
	// the access hot path pays one pointer check.
	ff *ffState

	// Sharded-mode state (sharded.go). sharded selects the
	// message-passing cross-tile protocol: each tile's state machine
	// runs on its own shard kernel and all cross-tile effects travel as
	// Sharded mailbox messages. eng is the engine hosting the shards.
	// K is nil on a sharded build — every path must use a tile kernel
	// or the running proc's kernel.
	sharded bool
	eng     *sim.Sharded
	// drams holds one DRAM controller instance per home tile on a
	// sharded build (each home's controllers must live on that home's
	// shard kernel); they share one concurrent mem.Memory. Classic
	// builds leave it nil and use DRAM. DRAM aliases drams[0] sharded
	// so Store()/tracer accessors keep working.
	drams []*dram.DRAM
}

// New builds a hierarchy. registry and runner may be nil (no Morphs).
func New(k *sim.Kernel, cfg Config, meter *energy.Meter, registry Registry, runner Runner) *Hierarchy {
	if cfg.Tiles <= 0 {
		panic("hier: need at least one tile")
	}
	newPolicy := cfg.NewPolicy
	if newPolicy == nil {
		newPolicy = func() cache.Policy { return cache.NewTRRIP() }
	}
	h := &Hierarchy{
		K:        k,
		Mesh:     noc.NewMesh(cfg.NoC, meter),
		DRAM:     dram.New(k, cfg.DRAM, mem.NewMemory(), meter),
		Meter:    meter,
		cfg:      cfg,
		registry: registry,
		runner:   runner,
		homeLog:  make(map[mem.Addr][]string),
		Metrics:  stats.NewRegistry(),
		comp:     newComponentNames(cfg.Tiles),
	}
	h.hot.resolve(h.Metrics)
	if cfg.Attribution {
		h.attr = newTxnAttr(h.Metrics, cfg.SlowestK)
	}
	h.DRAM.AttachMetrics(h.Metrics, cfg.SamplePeriod)
	h.Mesh.AttachMetrics(h.Metrics)
	h.freshChecks = cfg.FreshChecks
	h.prefetchFn = func(p *sim.Proc, a0, a1 uint64) {
		h.access(p, int(a0), mem.Addr(a1), accessOpts{prefetch: true})
		h.tiles[a0].prefetchInflight--
	}
	h.wbTimingFn = func(p *sim.Proc, a0, a1 uint64) {
		t := h.tiles[a0]
		t.wbbuf.Acquire(p)
		p.Sleep(h.Mesh.Transfer(int(a0), int(a1), mem.LineSize))
		t.wbbuf.Release()
	}
	// Probe-length distributions for the open-addressed tables (observed
	// on insert): degraded hashing shows up here before it shows up in
	// wall-clock time.
	h.dir.tbl.SetProbeStats(h.Metrics.Histogram("dir.probe.len"))
	mshrProbes := h.Metrics.Histogram("mshr.probe.len")
	homeProbes := h.Metrics.Histogram("mshr.home.probe.len")
	bankShift := log2(cfg.Tiles)
	for i := 0; i < cfg.Tiles; i++ {
		h.tiles = append(h.tiles, h.buildTile(k, i, newPolicy, mshrProbes, homeProbes, bankShift))
	}
	return h
}

// buildTile constructs one tile with all of its kernel-bound resources
// (semaphores, lock tables, wait groups) on k: the hierarchy-wide kernel
// on a classic build, the tile's own shard kernel on a sharded one.
func (h *Hierarchy) buildTile(k *sim.Kernel, i int, newPolicy func() cache.Policy, mshrProbes, homeProbes *stats.Histogram, bankShift uint) *tile {
	cfg := h.cfg
	t := &tile{
		id: i,
		K:  k,
		l1: cache.New(cache.Config{
			Name: fmt.Sprintf("l1.%d", i), SizeBytes: cfg.L1Size, Ways: cfg.L1Ways,
			Policy: newPolicy(),
		}),
		el1: cache.New(cache.Config{
			Name: fmt.Sprintf("el1.%d", i), SizeBytes: cfg.EngineL1Size, Ways: cfg.EngineL1Ways,
			Policy: newPolicy(),
		}),
		l2: cache.New(cache.Config{
			Name: fmt.Sprintf("l2.%d", i), SizeBytes: cfg.L2Size, Ways: cfg.L2Ways,
			Policy: newPolicy(),
		}),
		l3: cache.New(cache.Config{
			Name: fmt.Sprintf("l3.%d", i), SizeBytes: cfg.L3BankSize, Ways: cfg.L3Ways,
			IndexShift: bankShift, Policy: newPolicy(),
		}),
		mshr:        sim.NewSemaphore(k, cfg.MSHRsPerTile),
		wbbuf:       sim.NewSemaphore(k, cfg.WBBufPerTile),
		rmo:         sim.NewSemaphore(k, max(cfg.RMOLimit, 1)),
		rmoInflight: sim.NewWaitGroup(k),
		cbInflight:  sim.NewWaitGroup(k),
		rtlb:        tlb.New(cfg.RTLB),
		// 2 MB pages: täkō's phantom ranges make huge pages
		// easy (§6), and the workloads assume them throughout.
		dtlb: tlb.New(tlb.Config{
			Name: fmt.Sprintf("dtlb.%d", i), Entries: 64, PageBits: 21,
			HitLatency: 0, WalkLatency: 30,
		}),
	}
	t.pending.init(k, fmt.Sprintf("pending@%d", i))
	t.l3pending.init(k, fmt.Sprintf("home@%d", i))
	t.l3Busy = func(tag mem.Addr) bool { return t.l3pending.locked(tag) }
	t.pending.tbl.SetProbeStats(mshrProbes)
	t.l3pending.tbl.SetProbeStats(homeProbes)
	if h.registry != nil {
		t.protectedFn = func(tag mem.Addr) bool {
			b, ok := h.registry.Binding(t.id, tag)
			return ok && b.Protected != nil && b.Protected(tag)
		}
	}
	if h.sharded && h.attr != nil {
		t.slow.k = h.attr.ring.k
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Tiles returns the tile count.
func (h *Hierarchy) Tiles() int { return h.cfg.Tiles }

// HomeTile returns the L3 bank (tile) owning address a's line.
func (h *Hierarchy) HomeTile(a mem.Addr) int {
	return int((uint64(a) >> mem.LineShift) % uint64(h.cfg.Tiles))
}

// dirT resolves the directory bank tracking la: the single table
// classically, la's home-tile bank on a sharded build.
func (h *Hierarchy) dirT(la mem.Addr) *dirTable {
	if h.dirs != nil {
		return &h.dirs[h.HomeTile(la)]
	}
	return &h.dir
}

// dirTables returns every directory bank, for whole-directory walks
// (invariant checking, reports).
func (h *Hierarchy) dirTables() []*dirTable {
	if h.dirs == nil {
		return []*dirTable{&h.dir}
	}
	out := make([]*dirTable, len(h.dirs))
	for i := range h.dirs {
		out[i] = &h.dirs[i]
	}
	return out
}

// eachDirEntry visits every directory entry across all banks in bank
// order; fn returning false stops the walk.
func (h *Hierarchy) eachDirEntry(fn func(la mem.Addr, e *dirEntry) bool) {
	stopped := false
	for _, d := range h.dirTables() {
		d.forEach(func(la mem.Addr, e *dirEntry) bool {
			if !fn(la, e) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// dramAt returns the DRAM controller set serving home tile hm: the
// shared instance classically, the home's own shard-local instance on a
// sharded build. All instances share one backing mem.Memory.
func (h *Hierarchy) dramAt(hm int) *dram.DRAM {
	if h.drams != nil {
		return h.drams[hm]
	}
	return h.DRAM
}

// DRAMAccesses returns total DRAM accesses (reads + writes) across all
// controller instances; reports use it instead of DRAM.Accesses so the
// count is complete on sharded builds too.
func (h *Hierarchy) DRAMAccesses() uint64 {
	if h.drams == nil {
		return h.DRAM.Accesses()
	}
	var total uint64
	for _, d := range h.drams {
		total += d.Accesses()
	}
	return total
}

// SetDRAMPhase labels subsequent DRAM accesses for per-phase breakdowns
// (Figs 14 and 17). Classically — or before the run starts, p == nil —
// it flips every controller directly. On a running sharded build each
// controller is owned by its home shard, so the flip ships to each home
// on the calling shard's ordered channels; attribution around the flip
// point stays deterministic at any worker count.
func (h *Hierarchy) SetDRAMPhase(p *sim.Proc, name string) {
	if !h.sharded || p == nil {
		if h.drams == nil {
			h.DRAM.SetPhase(name)
			return
		}
		for _, d := range h.drams {
			d.SetPhase(name)
		}
		return
	}
	t := h.tiles[h.eng.ShardOf(p.Kernel())]
	for home := 0; home < h.cfg.Tiles; home++ {
		if home == t.id {
			h.dramAt(home).SetPhase(name)
			continue
		}
		d := h.dramAt(home)
		h.sendOrdered(t, home, h.Mesh.Latency(t.id, home, 8), func() { d.SetPhase(name) })
	}
}

// DRAMPhaseAccesses merges the per-phase access counts across controller
// instances (one classically, one per home on a sharded build).
func (h *Hierarchy) DRAMPhaseAccesses() map[string]uint64 {
	out := make(map[string]uint64, len(h.DRAM.PhaseAccesses))
	if h.drams == nil {
		for k, v := range h.DRAM.PhaseAccesses {
			out[k] = v
		}
		return out
	}
	for _, d := range h.drams {
		for k, v := range d.PhaseAccesses {
			out[k] += v
		}
	}
	return out
}

// MarkNVM declares r non-volatile memory on every DRAM controller
// instance; call during setup, before the run starts.
func (h *Hierarchy) MarkNVM(r mem.Region) {
	if h.drams == nil {
		h.DRAM.MarkNVM(r)
		return
	}
	for _, d := range h.drams {
		d.MarkNVM(r)
	}
}

// hasExclusiveT is the tile-local form of hasExclusive: classically it
// peeks at the shared directory; sharded, a remote tile cannot, so it
// consults the tile's owned table (maintained by write grants and
// invalidation handlers). Lines bound to a PRIVATE-level phantom Morph
// never enter the directory — they are filled by the tile's own engine
// and discarded on eviction (§4.3) — so they are implicitly writable,
// mirroring the classic missing-entry→exclusive rule; without that case
// a store to a phantom line would request an upgrade the home can never
// grant.
func (h *Hierarchy) hasExclusiveT(t *tile, la mem.Addr) bool {
	if h.sharded {
		if _, ok := t.owned.Get(uint64(la)); ok {
			return true
		}
		if h.registry != nil {
			if b, ok := h.registry.Binding(t.id, la); ok && b.Phantom && b.Level == LevelPrivate {
				return true
			}
		}
		return false
	}
	return h.hasExclusive(t.id, la)
}

// L1Stats, L2Stats, L3Stats expose per-tile cache stats for reports.
func (h *Hierarchy) L1Stats(tile int) cache.Stats { return h.tiles[tile].l1.Stats }

// L2Stats returns tile's private-L2 stats.
func (h *Hierarchy) L2Stats(tile int) cache.Stats { return h.tiles[tile].l2.Stats }

// L3Stats returns tile's L3 bank stats.
func (h *Hierarchy) L3Stats(tile int) cache.Stats { return h.tiles[tile].l3.Stats }

// RTLB returns the tile engine's reverse TLB (for sensitivity reports).
func (h *Hierarchy) RTLB(tile int) *tlb.TLB { return h.tiles[tile].rtlb }

// CheckMorphInvariants verifies the deadlock-avoidance invariant on every
// cache (§5.2); property tests call it after workloads.
func (h *Hierarchy) CheckMorphInvariants() error {
	for _, t := range h.tiles {
		for _, c := range []*cache.Cache{t.l2, t.l3} {
			if err := c.CheckMorphInvariant(); err != nil {
				return err
			}
		}
	}
	return nil
}

// AttachTracer wires a structured event tracer into the hierarchy (and
// its DRAM, whose controllers emit transfer spans); nil disables tracing.
// On a sharded build the tracer is forked per tile — each shard records
// into its own unsynchronized buffer — and FinishStats merges the forks
// back into t in canonical (cycle, shard, seq) order, so traced sharded
// runs stay byte-identical at any worker count.
func (h *Hierarchy) AttachTracer(t *trace.Tracer) {
	h.tracer = t
	if h.sharded {
		h.tracers = nil
		if t != nil {
			h.tracers = t.Fork(h.cfg.Tiles)
			for i, d := range h.drams {
				d.AttachTracer(h.tracers[i])
			}
		} else {
			for _, d := range h.drams {
				d.AttachTracer(nil)
			}
		}
		return
	}
	h.DRAM.AttachTracer(t)
}

// tracerAt returns the tracer a path running on tile's kernel must
// record into: the tile's fork on a sharded build, the shared tracer
// classically. Nil when tracing is off.
func (h *Hierarchy) tracerAt(tile int) *trace.Tracer {
	if h.tracers != nil {
		return h.tracers[tile]
	}
	return h.tracer
}

// TracerAt exposes tracerAt for the engine package, whose callback spans
// must land in the executing tile's buffer.
func (h *Hierarchy) TracerAt(tile int) *trace.Tracer { return h.tracerAt(tile) }

// TraceAt emits a trace event on tile's track, stamped with tile's own
// clock (no-op without an attached tracer).
func (h *Hierarchy) TraceAt(tile int, component, kind, detail string) {
	tr := h.tracerAt(tile)
	if tr == nil {
		return
	}
	tr.Emit(uint64(h.tiles[tile].K.Now()), component, kind, detail)
}

// PhantomFills sums the per-tile phantom-fill counters (callback fills
// that avoided DRAM) and refreshes the public PhantomMissFills field.
func (h *Hierarchy) PhantomFills() uint64 {
	var total uint64
	for _, t := range h.tiles {
		total += t.phantomMissFills
	}
	h.PhantomMissFills = total
	return total
}
