package hier

import "tako/internal/sim"

// Lookahead returns the conservative parallel-simulation lookahead for
// this hierarchy: the minimum number of cycles any cross-tile
// interaction takes. Every cross-tile effect in the model — directory
// messages, data transfers between sibling caches, engine spawns on
// remote tiles — travels over the mesh and therefore pays at least
// Mesh.MinCrossTileLatency cycles. Tile-sharded execution (sim.Sharded,
// or a Partition-ed kernel driven in epochs) may advance every tile that
// many cycles between synchronization points without reordering any
// observable interaction.
func (h *Hierarchy) Lookahead() sim.Cycle {
	la := h.Mesh.MinCrossTileLatency()
	if la < 1 {
		la = 1
	}
	return la
}
