package hier

import (
	"fmt"

	"tako/internal/cache"
	"tako/internal/mem"
)

// dirEntry tracks which private domains (tiles) hold copies of a line.
// The directory lives logically alongside the inclusive L3 (home bank).
// A tile's "private domain" is its core L1d, engine L1d, and L2 together
// — the paper's clustered coherence, where the engine L1d snoops within
// the tile so the directory sees one sharer per tile (§4.3).
type dirEntry struct {
	sharers uint64 // bitmask of tiles holding copies
	owner   int    // tile holding the line exclusively/dirty; -1 if none
}

func (e *dirEntry) has(tile int) bool { return e.sharers&(1<<uint(tile)) != 0 }
func (e *dirEntry) add(tile int)      { e.sharers |= 1 << uint(tile) }
func (e *dirEntry) remove(tile int)   { e.sharers &^= 1 << uint(tile) }
func (e *dirEntry) empty() bool       { return e.sharers == 0 }

// dirOf returns (creating if needed) the directory entry for line la.
// The pointer follows dirTable's validity rule: use it before the next
// directory create or delete.
func (h *Hierarchy) dirOf(la mem.Addr) *dirEntry {
	return h.dirT(la).getOrCreate(la)
}

// hasExclusive reports whether tile may write la without a coherence
// transaction: it is the registered owner, or the line is untracked
// (private phantom lines never enter the directory).
func (h *Hierarchy) hasExclusive(tileID int, la mem.Addr) bool {
	e := h.dirT(la).get(la)
	if e == nil {
		return true
	}
	return e.owner == tileID
}

// privateCaches returns the caches forming tile t's private domain.
func (t *tile) privateCaches() [3]*cache.Cache {
	return [3]*cache.Cache{t.l1, t.el1, t.l2}
}

// invalidatePrivate extracts every copy of la from tile's private domain,
// returning the newest data (dirty copies win) and whether any copy was
// dirty or present at all.
func (h *Hierarchy) invalidatePrivate(tileID int, la mem.Addr) (data mem.Line, dirty, present bool) {
	t := h.tiles[tileID]
	// privateCaches order is L1, engine L1, L2: the first dirty copy is
	// the newest (L1 writes supersede any stale dirty L2 copy).
	for _, c := range t.privateCaches() {
		if ls, ok := c.ExtractLine(la); ok {
			if ls.Dirty && !dirty {
				data, dirty = ls.Data, true
			} else if !dirty {
				data = ls.Data
			}
			present = true
		}
	}
	return data, dirty, present
}

// downgradeOwner clears dirty state on tile's copies of la (keeping them
// cached shared) and returns the newest data if any copy was dirty.
// Every remaining copy is refreshed to the newest data: dirtiness lives
// at the L1 while the L2 copy underneath goes stale, and once the dirty
// bit is gone that stale copy would otherwise masquerade as current.
func (h *Hierarchy) downgradeOwner(tileID int, la mem.Addr) (data mem.Line, dirty bool) {
	t := h.tiles[tileID]
	for _, c := range t.privateCaches() {
		if ls := c.Lookup(la); ls != nil && ls.Dirty {
			if !dirty { // first (highest) dirty copy is newest
				data, dirty = ls.Data, true
			}
		}
	}
	if dirty {
		for _, c := range t.privateCaches() {
			if ls := c.Lookup(la); ls != nil {
				ls.Data = data
				ls.Dirty = false
			}
		}
	}
	return data, dirty
}

// dirStillGrants reports whether la's directory entry still records
// tileID as a sharer — and as the owner, when write permission is
// required. Fetches re-validate this after any sleep between the home
// grant and the private-side install: a concurrent invalidation cannot
// see (or recall) a line that is in flight between caches.
func (h *Hierarchy) dirStillGrants(tileID int, la mem.Addr, write bool) bool {
	e := h.dirT(la).get(la)
	if e == nil || !e.has(tileID) {
		return false
	}
	return !write || e.owner == tileID
}

// removeSharerIfNoCopies drops tile from la's sharer set once its private
// domain holds no copy, deleting empty entries. Sharded, the tile cannot
// touch the directory: it sends a clean Put to the home shard instead
// (sharded.go), which performs the same removal when the message lands.
func (h *Hierarchy) removeSharerIfNoCopies(tileID int, la mem.Addr) {
	t := h.tiles[tileID]
	if h.sharded {
		for _, c := range t.privateCaches() {
			if c.Contains(la) {
				return
			}
		}
		h.sendPutClean(t, la)
		return
	}
	e := h.dirT(la).get(la)
	if e == nil {
		return
	}
	for _, c := range t.privateCaches() {
		if c.Contains(la) {
			return
		}
	}
	e.remove(tileID)
	if e.owner == tileID {
		e.owner = -1
	}
	empty := e.empty()
	if h.freshChecks {
		h.debugLogHome(la, fmt.Sprintf("removeSharer(%d)", tileID), 0)
	}
	if empty {
		h.dirT(la).delete(la)
	}
}

// DebugReadWord returns the architecturally newest value of the 8-byte
// word containing a, searching dirty private copies, then the L3, then
// memory. Intended for test verification after the system quiesces.
func (h *Hierarchy) DebugReadWord(a mem.Addr) uint64 {
	la := a.Line()
	off := a.Offset() &^ 7
	if e := h.dirT(la).get(la); e != nil && e.owner >= 0 {
		t := h.tiles[e.owner]
		for _, c := range t.privateCaches() {
			if ls := c.Lookup(la); ls != nil && ls.Dirty {
				return ls.Data.U64(off)
			}
		}
	}
	// Private phantom lines live only in one tile's domain; scan.
	for _, t := range h.tiles {
		for _, c := range t.privateCaches() {
			if ls := c.Lookup(la); ls != nil && ls.Dirty {
				return ls.Data.U64(off)
			}
		}
	}
	hm := h.tiles[h.HomeTile(a)]
	if ls := hm.l3.Lookup(la); ls != nil {
		return ls.Data.U64(off)
	}
	for _, t := range h.tiles {
		for _, c := range t.privateCaches() {
			if ls := c.Lookup(la); ls != nil {
				return ls.Data.U64(off)
			}
		}
	}
	return h.DRAM.Store().ReadU64(la + mem.Addr(off))
}
