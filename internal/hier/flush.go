package hier

import (
	"tako/internal/mem"
	"tako/internal/sim"
)

// FlushRegion implements flushData (§4.4): walk the tag arrays at the
// given level, evict every line in the region — triggering onWriteback
// or onEviction for Morph lines — and block until all callbacks
// complete, guaranteeing no further racing writes from callbacks.
//
// PRIVATE flushes walk tileID's L2; SHARED flushes walk every L3 bank.
func (h *Hierarchy) FlushRegion(p *sim.Proc, tileID int, region mem.Region, level Level) {
	if h.sharded {
		panic("hier: FlushRegion is not supported on a sharded build (Morph/flush paths are classic-mode only)")
	}
	h.Trace("flush", "flush.start", region.String())
	var futs []*sim.Future
	switch level {
	case LevelPrivate:
		h.flushPrivate(p, tileID, region, &futs)
	case LevelShared:
		for t := 0; t < h.cfg.Tiles; t++ {
			h.flushBank(p, t, region, &futs)
		}
	default:
		h.flushPrivate(p, tileID, region, &futs)
		for t := 0; t < h.cfg.Tiles; t++ {
			h.flushBank(p, t, region, &futs)
		}
	}
	p.WaitAll(futs...)
	// Callbacks triggered by evictions *before* this flush must also
	// complete: flushData guarantees no further racing writes from any
	// callback (§4.4).
	h.cbInflight.Wait(p)
	h.event("flush")
	h.Trace("flush", "flush.done", region.String())
}

// flushPrivate evicts region's lines from one tile's private domain.
func (h *Hierarchy) flushPrivate(p *sim.Proc, tileID int, region mem.Region, futs *[]*sim.Future) {
	t := h.tiles[tileID]
	// Tag-walk cost: the controller checks four tags per cycle.
	p.Sleep(sim.Cycle(t.l2.NumSets()/4 + 1))
	for {
		lines := t.l2.LinesInRegion(region)
		if len(lines) == 0 {
			break
		}
		progressed := false
		for _, la := range lines {
			// Each line is evicted by a kindFlushEvict transaction: one
			// lock check (a locked line is skipped this pass), extract,
			// and the eviction pipeline.
			x := h.getTxn(t)
			x.h, x.p, x.kind = h, p, kindFlushEvict
			x.tileID, x.la = tileID, la
			x.t = t
			x.futs = futs
			x.run()
			if x.evicted {
				progressed = true
			}
			h.putTxn(x)
		}
		if !progressed {
			p.Sleep(1)
		}
	}
	// Lines cached above the L2 but inside the region: engine lines
	// fetched around the L2 (shared-callback path) live only in the
	// engine L1d, so their dirty data must reach the shared level.
	for _, c := range t.privateCaches() {
		for _, la := range c.LinesInRegion(region) {
			if ls, ok := c.ExtractLine(la); ok {
				if ls.Dirty {
					h.writebackToShared(tileID, la, ls.Data)
				} else {
					h.removeSharerIfNoCopies(tileID, la)
				}
			}
		}
	}
}

// flushBank evicts region's lines from one L3 bank.
func (h *Hierarchy) flushBank(p *sim.Proc, bankID int, region mem.Region, futs *[]*sim.Future) {
	hm := h.tiles[bankID]
	p.Sleep(sim.Cycle(hm.l3.NumSets()/4 + 1))
	for {
		lines := hm.l3.LinesInRegion(region)
		if len(lines) == 0 {
			break
		}
		progressed := false
		for _, la := range lines {
			x := h.getTxn(hm)
			x.h, x.p, x.kind = h, p, kindFlushEvict
			x.flushBank = true
			x.tileID, x.la = bankID, la
			x.home, x.hm = bankID, hm
			x.futs = futs
			x.run()
			if x.evicted {
				progressed = true
			}
			h.putTxn(x)
		}
		if !progressed {
			p.Sleep(1)
		}
	}
}

// InvalidateRegion drops region's lines from every cache without
// callbacks or writebacks; used when registering a Morph over existing
// data so stale copies cannot bypass the new semantics (§4.1: "when a
// Morph is registered or unregistered, its address range is flushed").
// Dirty lines are written back to memory first to preserve their data.
func (h *Hierarchy) InvalidateRegion(p *sim.Proc, region mem.Region) {
	if h.sharded {
		panic("hier: InvalidateRegion is not supported on a sharded build (Morph registration is classic-mode only)")
	}
	for _, t := range h.tiles {
		for _, c := range t.privateCaches() {
			for _, la := range c.LinesInRegion(region) {
				if ls, ok := c.ExtractLine(la); ok && ls.Dirty {
					h.DRAM.WriteLineNoWait(la, &ls.Data)
				}
			}
		}
		for _, la := range t.l3.LinesInRegion(region) {
			if ls, ok := t.l3.ExtractLine(la); ok {
				h.dirT(la).delete(la)
				if ls.Dirty {
					h.DRAM.WriteLineNoWait(la, &ls.Data)
				}
			}
		}
		p.Sleep(sim.Cycle(t.l3.NumSets()))
	}
}
