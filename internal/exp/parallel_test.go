package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"tako/internal/morphs"
	"tako/internal/sched"
	"tako/internal/system"
)

// captureExp runs one experiment at quick scale under a metrics capture
// and returns its rendered table plus the captured run records.
func captureExp(t *testing.T, id string) (string, []system.RunRecord) {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	system.StartCapture(system.CaptureConfig{})
	tbl, err := e.Run(true)
	res, cerr := system.StopCapture()
	if err != nil {
		t.Fatal(err)
	}
	if cerr != nil {
		t.Fatal(cerr)
	}
	return tbl.String(), res.Runs
}

// TestParallelDriversMatchSequential pins the scheduler's determinism
// contract: a driver fanning its variants across 4 workers produces a
// byte-identical table and byte-identical capture log to the same driver
// at 1 worker (which executes inline, exactly like the pre-scheduler
// sequential loop). CI runs this under -race, which also makes it the
// data-race probe for concurrent simulations.
func TestParallelDriversMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prevCache := morphs.SetRunCache(false) // fresh simulations on both sides
	defer morphs.SetRunCache(prevCache)
	defer sched.SetWorkers(0)

	sched.SetWorkers(1)
	seqTbl, seqRuns := captureExp(t, "fig6")
	sched.SetWorkers(4)
	parTbl, parRuns := captureExp(t, "fig6")

	if seqTbl != parTbl {
		t.Errorf("table differs between 1 and 4 workers\n--- j=1 ---\n%s--- j=4 ---\n%s", seqTbl, parTbl)
	}
	if len(seqRuns) != len(morphs.AllDecompVariants) {
		t.Fatalf("captured %d runs, want %d", len(seqRuns), len(morphs.AllDecompVariants))
	}
	seq, err := json.Marshal(seqRuns)
	if err != nil {
		t.Fatal(err)
	}
	par, err := json.Marshal(parRuns)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, par) {
		t.Error("captured run records (labels, ops, cycles, metrics) differ between 1 and 4 workers")
	}
}

// TestRunCacheSharesPairedFigures pins the memo cache's purpose: fig6 and
// fig7 render different tables from the same decompression simulations,
// so with the cache armed the pair costs one set of simulations, and the
// replayed records carry identical op counts (what the CI ops golden
// gates on).
func TestRunCacheSharesPairedFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prev := morphs.SetRunCache(true)
	morphs.ResetRunCache()
	defer func() {
		morphs.SetRunCache(prev)
		morphs.ResetRunCache()
	}()

	start := morphs.SimsExecuted()
	_, runs6 := captureExp(t, "fig6")
	afterFig6 := morphs.SimsExecuted()
	if got, want := int(afterFig6-start), len(morphs.AllDecompVariants); got != want {
		t.Fatalf("fig6 executed %d simulations, want %d", got, want)
	}
	_, runs7 := captureExp(t, "fig7")
	if extra := morphs.SimsExecuted() - afterFig6; extra != 0 {
		t.Errorf("fig7 re-simulated %d runs the cache should have served", extra)
	}
	if len(runs7) != len(runs6) {
		t.Fatalf("fig7 captured %d runs, fig6 %d", len(runs7), len(runs6))
	}
	for i := range runs6 {
		if runs7[i].Label != runs6[i].Label || runs7[i].Ops != runs6[i].Ops {
			t.Errorf("run %d: fig7 (%s, %d ops) != fig6 (%s, %d ops)",
				i, runs7[i].Label, runs7[i].Ops, runs6[i].Label, runs6[i].Ops)
		}
		if !runs7[i].Cached {
			t.Errorf("fig7 run %s not marked cached", runs7[i].Label)
		}
	}
}

// TestSkipDoesNotEvictSharedRuns pins the takoreport -skip interaction:
// skipping one figure of a pair (here fig6, so fig7 runs first and alone)
// must still simulate the shared runs exactly once and leave them cached
// for any later figure — the cache never evicts, it only fills.
func TestSkipDoesNotEvictSharedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prev := morphs.SetRunCache(true)
	morphs.ResetRunCache()
	defer func() {
		morphs.SetRunCache(prev)
		morphs.ResetRunCache()
	}()

	start := morphs.SimsExecuted()
	_, runs7 := captureExp(t, "fig7")
	executed := morphs.SimsExecuted() - start
	if got, want := int(executed), len(morphs.AllDecompVariants); got != want {
		t.Fatalf("fig7 alone executed %d simulations, want %d", got, want)
	}
	for _, r := range runs7 {
		if r.Cached {
			t.Errorf("fig7 run %s marked cached on first execution", r.Label)
		}
	}
	if _, runs6 := captureExp(t, "fig6"); len(runs6) != len(runs7) {
		t.Fatalf("fig6 captured %d runs, want %d", len(runs6), len(runs7))
	}
	if total := morphs.SimsExecuted() - start; total != executed {
		t.Errorf("fig6 after skipped-then-run fig7 re-simulated %d runs", total-executed)
	}
}
