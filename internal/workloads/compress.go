package workloads

import (
	"math/rand"

	"tako/internal/mem"
)

// CompressedData is the base+delta lossy-compressed data set of the
// decompression study (§3, similar to base-delta-immediate [107]):
// values[i] = bases[i/BlockSize] + deltas[i]. The application reads a
// Zipfian stream of indices and needs the decompressed values.
type CompressedData struct {
	N         int
	BlockSize int
	Bases     []uint64
	Deltas    []uint64 // small values (fit in a byte, stored as words)
}

// GenCompressed builds a data set of n values in blocks of blockSize.
func GenCompressed(n, blockSize int, seed int64) *CompressedData {
	rng := rand.New(rand.NewSource(seed))
	d := &CompressedData{N: n, BlockSize: blockSize}
	blocks := (n + blockSize - 1) / blockSize
	d.Bases = make([]uint64, blocks)
	for i := range d.Bases {
		d.Bases[i] = uint64(rng.Intn(1 << 30))
	}
	d.Deltas = make([]uint64, n)
	for i := range d.Deltas {
		d.Deltas[i] = uint64(rng.Intn(256))
	}
	return d
}

// Value decompresses index i functionally.
func (d *CompressedData) Value(i int) uint64 {
	return d.Bases[i/d.BlockSize] + d.Deltas[i]
}

// CompressedMem is the data set laid out in simulated memory.
type CompressedMem struct {
	D      *CompressedData
	Bases  mem.Region
	Deltas mem.Region
}

// Layout writes the compressed arrays into simulated memory.
func (d *CompressedData) Layout(space *mem.Space, store *mem.Memory) *CompressedMem {
	cm := &CompressedMem{
		D:      d,
		Bases:  space.Alloc("comp.bases", uint64(len(d.Bases))*8),
		Deltas: space.Alloc("comp.deltas", uint64(len(d.Deltas))*8),
	}
	for i, b := range d.Bases {
		store.WriteU64(cm.Bases.Word(uint64(i)), b)
	}
	for i, dl := range d.Deltas {
		store.WriteU64(cm.Deltas.Word(uint64(i)), dl)
	}
	return cm
}

// ZipfIndices generates a stream of `count` indices over [0, n) following
// a Zipfian distribution ([21]), the access pattern of the decompression
// study: 32 K indices over 16 K values by default (§3.3).
func ZipfIndices(count, n int, seed int64) []int {
	return ZipfIndicesS(count, n, 1.2, seed)
}

// ZipfIndicesS is ZipfIndices with an explicit skew exponent s (> 1;
// web-trace skews [21] are mild, heavily cached workloads higher).
func ZipfIndicesS(count, n int, s float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	out := make([]int, count)
	perm := rng.Perm(n) // decorrelate popularity from position
	for i := range out {
		out[i] = perm[int(z.Uint64())]
	}
	return out
}
