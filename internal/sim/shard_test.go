package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// This file is the determinism battery for the tile-sharded kernel. The
// contract under test: a Sharded run produces a byte-identical simulation
// at every worker width, identical to the single-threaded RunSequenced
// reference, and unaffected by the order mailboxes are drained in; and a
// partitioned Kernel produces a byte-identical schedule to the
// single-queue kernel at every partition width. Run these under -race to
// also certify the epoch barriers (CI does).

// shardedFixture is a Sharded kernel plus per-shard trace logs. Each
// shard's log is appended only by events executing on that shard, so
// recording is race-free under parallel Run; merged() concatenates in
// shard order for comparison.
type shardedFixture struct {
	s       *Sharded
	traces  [][]string
	workers int
}

func (f *shardedFixture) record(shard int, format string, args ...any) {
	f.traces[shard] = append(f.traces[shard], fmt.Sprintf(format, args...))
}

func (f *shardedFixture) merged() string {
	var b strings.Builder
	for i, tr := range f.traces {
		for _, line := range tr {
			fmt.Fprintf(&b, "shard%d %s\n", i, line)
		}
	}
	return b.String()
}

// buildShardedWorkload wires a deterministic 16-shard program exercising
// every cross-shard path: plain Send callbacks, SendComplete on
// pre-created futures, SendWake on explicitly parked processes, plus
// local event chains and sleeps with pseudo-random (seeded) timing.
func buildShardedWorkload(shards int) *shardedFixture {
	const (
		lookahead = 3
		steps     = 40
		rounds    = 16
	)
	if shards < 3 {
		panic("workload needs ≥3 shards")
	}
	s := NewSharded(shards, lookahead)
	f := &shardedFixture{s: s, traces: make([][]string, shards)}

	// Futures completed cross-shard: futures[i][r] lives on shard i and
	// is completed by shard (i-1)'s driver at its step r. Pre-created so
	// no shard ever reads another shard's state mid-run.
	futures := make([][]*Future, shards)
	for i := range futures {
		futures[i] = make([]*Future, rounds)
		for r := range futures[i] {
			futures[i][r] = NewFuture(s.Shard(i).K)
		}
	}

	// Futures acked by spawned callback procs (the engine-callback
	// message shape: ship work to a remote shard, which runs it as a
	// fresh proc on its own kernel and acks completion back). One per
	// callback round, living on the requesting shard.
	cbAcks := make([][]*Future, shards)
	for i := range cbAcks {
		cbAcks[i] = make([]*Future, steps/4+1)
		for r := range cbAcks[i] {
			cbAcks[i][r] = NewFuture(s.Shard(i).K)
		}
	}

	// Processes parked via block() and woken cross-shard by SendWake:
	// blocker i is woken (rounds times, spaced ≥1 cycle apart) by shard
	// (i-2)'s driver.
	blockers := make([]*Proc, shards)
	for i := 0; i < shards; i++ {
		i := i
		sh := s.Shard(i)
		sh.K.Go("waiter", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Wait(futures[i][r])
				f.record(i, "waiter round %d woke at %d", r, p.Now())
			}
		})
		blockers[i] = sh.K.Go("blocker", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.block()
				f.record(i, "blocker round %d at %d", r, p.Now())
			}
		})
	}
	for i := 0; i < shards; i++ {
		i := i
		sh := s.Shard(i)
		sh.K.Go("driver", func(p *Proc) {
			rng := rand.New(rand.NewSource(int64(i) + 42))
			for step := 0; step < steps; step++ {
				step := step
				f.record(i, "drive step %d at %d", step, p.Now())
				sh.K.After(Cycle(rng.Intn(3)), func() {
					f.record(i, "local fn of step %d at %d", step, sh.K.Now())
				})
				dest := (i + 1 + rng.Intn(shards-1)) % shards
				delay := Cycle(lookahead + rng.Intn(4))
				sh.Send(dest, delay, func() {
					f.record(dest, "msg from %d step %d at %d", i, step, s.Shard(dest).K.Now())
				})
				if step < rounds {
					sh.SendComplete((i+1)%shards, delay, futures[(i+1)%shards][step])
					sh.SendWake((i+2)%shards, lookahead, blockers[(i+2)%shards])
				}
				if step%4 == 0 {
					// The engine-callback pattern from the hierarchy's
					// morph hosting: the request message spawns a callback
					// proc on the destination's own kernel; the proc does
					// local work, then acks the origin, which blocks on
					// the round trip (flush fan-outs, registration
					// broadcasts, persist RPCs all have this shape).
					cbDst := (i + 1 + shards/2) % shards
					ack := cbAcks[i][step/4]
					dt := s.Shard(cbDst)
					sh.Send(cbDst, lookahead, func() {
						dt.K.Go("cb", func(q *Proc) {
							f.record(cbDst, "cb for %d step %d at %d", i, step, q.Now())
							q.Sleep(Cycle(1 + step%3))
							dt.SendComplete(i, lookahead, ack)
						})
					})
					p.Wait(ack)
					f.record(i, "cb ack step %d at %d", step, p.Now())
				}
				p.Sleep(Cycle(1 + rng.Intn(4)))
			}
		})
	}
	return f
}

// TestShardedMatchesSequencedAcrossWidths is the core determinism gate:
// the parallel run is byte-identical to the single-threaded reference at
// worker widths 1/2/4/8/16, including per-event timestamps and the
// coordinator's epoch/message counts.
func TestShardedMatchesSequencedAcrossWidths(t *testing.T) {
	const shards = 16
	ref := buildShardedWorkload(shards)
	ref.s.RunSequenced()
	want := ref.merged()
	if want == "" {
		t.Fatal("reference workload produced no trace")
	}
	refStats := ref.s.Stats()
	if refStats.Epochs < 5 {
		t.Fatalf("workload too shallow to exercise barriers: %d epochs", refStats.Epochs)
	}
	if refStats.Messages == 0 {
		t.Fatal("workload sent no cross-shard messages")
	}
	ref.s.Release()

	for _, workers := range []int{1, 2, 4, 8, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			f := buildShardedWorkload(shards)
			f.s.Run(workers)
			if got := f.merged(); got != want {
				t.Errorf("trace diverged from sequenced reference at %d workers:\n%s",
					workers, firstDiff(got, want))
			}
			if st := f.s.Stats(); st != refStats {
				t.Errorf("stats diverged at %d workers: got %+v want %+v", workers, st, refStats)
			}
			if blocked := f.s.Blocked(); len(blocked) != 0 {
				t.Errorf("deadlocked procs after run: %v", blocked)
			}
			f.s.Release()
		})
	}
}

// TestShardedDrainPermutationInvariant pins that the canonical
// (cycle, sender, sequence) merge key erases the mailbox drain order: a
// run whose per-epoch sender iteration is reversed (and one rotated by
// the epoch number) matches the untouched reference byte for byte.
func TestShardedDrainPermutationInvariant(t *testing.T) {
	const shards = 16
	ref := buildShardedWorkload(shards)
	ref.s.RunSequenced()
	want := ref.merged()
	ref.s.Release()

	perms := map[string]func(epoch, n int) []int{
		"reversed": func(_, n int) []int {
			p := make([]int, n)
			for i := range p {
				p[i] = n - 1 - i
			}
			return p
		},
		"rotating": func(epoch, n int) []int {
			p := make([]int, n)
			for i := range p {
				p[i] = (i + epoch) % n
			}
			return p
		},
	}
	for name, perm := range perms {
		t.Run(name, func(t *testing.T) {
			f := buildShardedWorkload(shards)
			epoch := 0
			f.s.permute = func(n int) []int {
				epoch++
				return perm(epoch, n)
			}
			f.s.Run(4)
			if got := f.merged(); got != want {
				t.Errorf("drain permutation %q changed the schedule:\n%s", name, firstDiff(got, want))
			}
			f.s.Release()
		})
	}
}

// FuzzShardedDrainOrder feeds arbitrary per-epoch drain permutations to
// the coordinator and asserts the simulation is unchanged — the fuzzing
// analog of TestShardedDrainPermutationInvariant.
func FuzzShardedDrainOrder(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 7, 255, 3})
	f.Add([]byte{13, 13, 13, 13, 13, 13, 13, 13})
	ref := buildShardedWorkload(4)
	ref.s.RunSequenced()
	want := ref.merged()
	ref.s.Release()

	f.Fuzz(func(t *testing.T, data []byte) {
		fx := buildShardedWorkload(4)
		idx := 0
		fx.s.permute = func(n int) []int {
			p := make([]int, n)
			for i := range p {
				p[i] = i
			}
			for i := n - 1; i > 0; i-- {
				var b byte
				if len(data) > 0 {
					b = data[idx%len(data)]
					idx++
				}
				j := int(b) % (i + 1)
				p[i], p[j] = p[j], p[i]
			}
			return p
		}
		fx.s.Run(2)
		if got := fx.merged(); got != want {
			t.Errorf("fuzzed drain order changed the schedule:\n%s", firstDiff(got, want))
		}
		fx.s.Release()
	})
}

// TestShardedHorizonBoundary is the epoch off-by-one stress: both shards
// execute an event every single cycle, and every cross-shard message is
// sent with delay exactly equal to the lookahead — so every delivery
// lands exactly on an epoch horizon. A coordinator that ran epochs one
// cycle too long would make the receiver's clock pass the arrival time
// and trip the kernel's scheduling-in-the-past panic; one that ran them
// short would change arrival interleaving. The test also pins the
// absolute arrival cycles and that same-cycle local events (scheduled
// during the epoch) order before barrier-delivered messages.
func TestShardedHorizonBoundary(t *testing.T) {
	const (
		lookahead = 3
		ticks     = 30
	)
	build := func() *shardedFixture {
		s := NewSharded(2, lookahead)
		f := &shardedFixture{s: s, traces: make([][]string, 2)}
		for i := 0; i < 2; i++ {
			i := i
			sh := s.Shard(i)
			var tick func()
			n := 0
			tick = func() {
				now := sh.K.Now()
				f.record(i, "tick at %d", now)
				peer := 1 - i
				sh.Send(peer, lookahead, func() {
					f.record(peer, "msg sent at %d arrives at %d", now, s.Shard(peer).K.Now())
				})
				if n++; n < ticks {
					sh.K.After(1, tick)
				}
			}
			sh.K.After(0, tick)
		}
		return f
	}

	ref := build()
	ref.s.RunSequenced()
	want := ref.merged()
	ref.s.Release()

	// Every message must arrive exactly lookahead cycles after its send.
	for _, line := range strings.Split(strings.TrimSpace(want), "\n") {
		if !strings.Contains(line, "msg sent") {
			continue
		}
		var shard, sent, arrived int
		if _, err := fmt.Sscanf(line, "shard%d msg sent at %d arrives at %d", &shard, &sent, &arrived); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		if arrived != sent+lookahead {
			t.Fatalf("message sent at %d arrived at %d, want exactly +%d: %q", sent, arrived, lookahead, line)
		}
	}
	// Same-cycle merge rule: a barrier-delivered message gets its
	// receiver-side sequence number at the drain, so it orders after
	// local events scheduled in earlier epochs but before ones scheduled
	// later in its own epoch. With this dense workload epochs are exactly
	// [3k, 3k+2]: at an epoch-start cycle (c%3==0) the tick was scheduled
	// pre-drain and runs first; mid-epoch (c%3!=0) the message runs
	// first. Pin that rule — it is the "(cycle, seq, tile)" merge key
	// made observable.
	for i := 0; i < 2; i++ {
		tickAt := map[int]int{} // cycle → trace index of the tick
		msgAt := map[int]int{}  // cycle → trace index of the first arrival
		for idx, line := range ref.traces[i] {
			var at, sent int
			if _, err := fmt.Sscanf(line, "tick at %d", &at); err == nil {
				tickAt[at] = idx
			} else if _, err := fmt.Sscanf(line, "msg sent at %d arrives at %d", &sent, &at); err == nil {
				if _, dup := msgAt[at]; !dup {
					msgAt[at] = idx
				}
			}
		}
		checked := 0
		for at, ti := range tickAt {
			mi, ok := msgAt[at]
			if !ok {
				continue
			}
			checked++
			tickFirst := ti < mi
			wantTickFirst := at%lookahead == 0
			if tickFirst != wantTickFirst {
				t.Fatalf("shard %d cycle %d: tickFirst=%v, want %v (epoch-relative merge rule)", i, at, tickFirst, wantTickFirst)
			}
		}
		if checked < 10 {
			t.Fatalf("shard %d: only %d tick/arrival collisions — workload not dense enough", i, checked)
		}
	}

	for _, workers := range []int{1, 2} {
		f := build()
		f.s.Run(workers)
		if got := f.merged(); got != want {
			t.Errorf("horizon-boundary trace diverged at %d workers:\n%s", workers, firstDiff(got, want))
		}
		f.s.Release()
	}
}

// TestShardedLookaheadViolationPanics pins the causality guard: a
// cross-shard send with delay below the lookahead must panic rather than
// silently corrupt an already-executed window.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	s := NewSharded(2, 3)
	s.Shard(0).K.After(0, func() {
		s.Shard(0).Send(1, 2, func() {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lookahead violation did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "violates lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	s.Run(2)
}

// TestShardedPanicPropagation: a panic on any shard's process surfaces
// on the Run caller as the usual ProcPanic, and when several shards fail
// in the same epoch the lowest shard id wins deterministically.
func TestShardedPanicPropagation(t *testing.T) {
	s := NewSharded(4, 3)
	for _, id := range []int{2, 1} {
		id := id
		s.Shard(id).K.Go("bomb", func(p *Proc) {
			p.Sleep(10)
			panic(fmt.Sprintf("boom%d", id))
		})
	}
	defer func() {
		r := recover()
		pp, ok := r.(*ProcPanic)
		if !ok {
			t.Fatalf("want *ProcPanic, got %T: %v", r, r)
		}
		if pp.Value != "boom1" {
			t.Fatalf("want lowest-shard panic boom1, got %v", pp.Value)
		}
	}()
	s.Run(4)
}

// TestShardedBlockedReportsDeadlock: a process parked forever is visible
// through Blocked with its shard prefix, and Shutdown unwinds it.
func TestShardedBlockedReportsDeadlock(t *testing.T) {
	s := NewSharded(4, 3)
	f := NewFuture(s.Shard(2).K)
	s.Shard(2).K.Go("stuck", func(p *Proc) {
		p.Wait(f) // never completed
	})
	s.Run(2)
	blocked := s.Blocked()
	if len(blocked) != 1 || blocked[0] != "shard2/stuck" {
		t.Fatalf("Blocked = %v, want [shard2/stuck]", blocked)
	}
	s.Shutdown()
	if blocked := s.Blocked(); len(blocked) != 0 {
		t.Fatalf("still blocked after Shutdown: %v", blocked)
	}
}

// TestShardedAllocsPerEvent is the zero-alloc gate for the parallel
// coordinator: once mailboxes and queues are warm, epochs — including
// cross-shard sends, the canonical drain, and the worker barrier — stay
// under 0.01 allocations per executed event.
func TestShardedAllocsPerEvent(t *testing.T) {
	const (
		shards    = 8
		lookahead = 3
		perShard  = 5000
	)
	s := NewSharded(shards, lookahead)
	noop := func() {}
	type load struct {
		sh *Shard
		n  int
		fn func()
	}
	loads := make([]*load, shards)
	for i := 0; i < shards; i++ {
		l := &load{sh: s.Shard(i)}
		next := (i + 1) % shards
		l.fn = func() {
			if l.n--; l.n <= 0 {
				return
			}
			if l.n%8 == 0 {
				l.sh.Send(next, lookahead, noop)
			}
			l.sh.K.After(1, l.fn)
		}
		loads[i] = l
	}
	run := func() {
		for _, l := range loads {
			l.n = perShard
			l.sh.K.After(1, l.fn)
		}
		s.Run(4)
	}
	events := s.Shard(0).K.Events() // 0 before the warm-up inside AllocsPerRun
	avg := testing.AllocsPerRun(5, run)
	var total uint64
	for i := 0; i < shards; i++ {
		total += s.Shard(i).K.Events()
	}
	perRun := total / 7 // warm-up + 1 extra + 5 measured runs
	if events != 0 {
		t.Fatalf("expected a fresh coordinator, saw %d events", events)
	}
	if perEvent := avg / float64(perRun); perEvent > 0.01 {
		t.Fatalf("sharded run allocates %.4f allocs/event over %d events, want ≤0.01", perEvent, perRun)
	}
}

// lastChooser always picks the newest event in a same-cycle batch — the
// opposite of the default FIFO resolution, maximally sensitive to batch
// membership changing across partition widths.
type lastChooser struct{}

func (lastChooser) Choose(n int) int { return n - 1 }

// runPartitionedProgram runs a mixed proc/future/callback program on a
// kernel partitioned parts ways and returns its execution trace. The
// program itself is identical for every parts value; only queue
// placement changes.
func runPartitionedProgram(parts int, chooser Chooser) string {
	k := NewKernel()
	if parts > 1 {
		k.Partition(parts)
	}
	k.SetChooser(chooser)
	var trace []string
	for i := 0; i < 6; i++ {
		i := i
		k.GoOn(i, fmt.Sprintf("p%d", i), func(p *Proc) {
			rng := rand.New(rand.NewSource(int64(i) + 7))
			for s := 0; s < 25; s++ {
				s := s
				trace = append(trace, fmt.Sprintf("p%d step %d at %d", i, s, p.Now()))
				k.After(Cycle(rng.Intn(4)), func() {
					trace = append(trace, fmt.Sprintf("fn p%d step %d at %d", i, s, k.Now()))
				})
				if s%3 == 0 {
					f := NewFuture(k)
					f.CompleteAt(p.Now() + Cycle(rng.Intn(5)))
					p.Wait(f)
				} else {
					p.Sleep(Cycle(rng.Intn(3)))
				}
			}
		})
	}
	k.Run()
	k.Release()
	return strings.Join(trace, "\n")
}

// TestPartitionedKernelMatchesSingleQueue pins the property the system
// driver's -tile-par mode relies on: partitioning the kernel's queue
// changes where events are stored but not the (time, sequence) dispatch
// order, so the schedule is byte-identical at every width — with and
// without a Chooser installed (the explorer's hook must see identical
// same-cycle batches).
func TestPartitionedKernelMatchesSingleQueue(t *testing.T) {
	for _, chooser := range []Chooser{nil, lastChooser{}} {
		name := "fifo"
		if chooser != nil {
			name = "chooser"
		}
		t.Run(name, func(t *testing.T) {
			want := runPartitionedProgram(1, chooser)
			if want == "" {
				t.Fatal("program produced no trace")
			}
			for _, parts := range []int{2, 4, 7, 16} {
				if got := runPartitionedProgram(parts, chooser); got != want {
					t.Errorf("partition width %d changed the schedule:\n%s", parts, firstDiff(got, want))
				}
			}
		})
	}
}

// firstDiff renders the first divergent line of two traces, with context.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n  got:  %q\n  want: %q", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d lines", len(g), len(w))
}
