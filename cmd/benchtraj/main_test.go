package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line    string
		ok      bool
		name    string
		iters   uint64
		metrics map[string]float64
	}{
		{
			line:  "BenchmarkHierarchyAccessAttributed/attr-8         \t       3\t  75043099 ns/op\t    133258 sim-accesses/s\t     432 B/op\t       2 allocs/op",
			ok:    true,
			name:  "BenchmarkHierarchyAccessAttributed/attr-8",
			iters: 3,
			metrics: map[string]float64{
				"ns/op": 75043099, "sim-accesses/s": 133258,
				"B/op": 432, "allocs/op": 2,
			},
		},
		{
			line:    "BenchmarkKernel-8   \t 1000000\t      1052 ns/op",
			ok:      true,
			name:    "BenchmarkKernel-8",
			iters:   1000000,
			metrics: map[string]float64{"ns/op": 1052},
		},
		{
			line:    "BenchmarkFig06Decompression-8  \t      2\t 501034512 ns/op\t         2.080 speedup\t  27373786 sim-cycles",
			ok:      true,
			name:    "BenchmarkFig06Decompression-8",
			iters:   2,
			metrics: map[string]float64{"ns/op": 501034512, "speedup": 2.080, "sim-cycles": 27373786},
		},
		{line: "goos: linux", ok: false},
		{line: "pkg: tako", ok: false},
		{line: "PASS", ok: false},
		{line: "ok  \ttako\t1.439s", ok: false},
		{line: "", ok: false},
		// A benchmark header with no metrics yet (mid-run output).
		{line: "BenchmarkKernel-8", ok: false},
		// Non-numeric iteration count.
		{line: "BenchmarkX notanumber 12 ns/op", ok: false},
	}
	for _, c := range cases {
		e, ok := parseBenchLine(c.line)
		if ok != c.ok {
			t.Errorf("parse(%q) ok = %v, want %v", c.line, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if e.Name != c.name || e.Iterations != c.iters {
			t.Errorf("parse(%q) = %q/%d, want %q/%d", c.line, e.Name, e.Iterations, c.name, c.iters)
		}
		if len(e.Metrics) != len(c.metrics) {
			t.Errorf("parse(%q) metrics = %v, want %v", c.line, e.Metrics, c.metrics)
			continue
		}
		for unit, want := range c.metrics {
			if got := e.Metrics[unit]; got != want {
				t.Errorf("parse(%q) %s = %v, want %v", c.line, unit, got, want)
			}
		}
	}
}

func TestParseBenchOutputKeepsSamplesInOrder(t *testing.T) {
	// -count 3 repeats the same benchmark; all samples survive in order.
	log := `goos: linux
goarch: amd64
pkg: tako
BenchmarkHierarchyThroughput-8   	       5	 200 ns/op	 100 sim-accesses/s
BenchmarkHierarchyThroughput-8   	       5	 210 ns/op	  95 sim-accesses/s
BenchmarkHierarchyThroughput-8   	       5	 190 ns/op	 105 sim-accesses/s
PASS
ok  	tako	3.1s
`
	entries, err := parseBenchOutput(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(entries))
	}
	want := []float64{200, 210, 190}
	for i, e := range entries {
		if e.Name != "BenchmarkHierarchyThroughput-8" {
			t.Errorf("entry %d name = %q", i, e.Name)
		}
		if e.Metrics["ns/op"] != want[i] {
			t.Errorf("entry %d ns/op = %v, want %v (order not preserved)", i, e.Metrics["ns/op"], want[i])
		}
	}
}

const multiCoreLog = `goos: linux
BenchmarkShardedVsPartitioned/partitioned-8     3  11000000 ns/op  8.000 cpus  8.000 gomaxprocs  300000 sim-cycles/s
BenchmarkShardedVsPartitioned/sharded-w1-8      3  12000000 ns/op  8.000 cpus  8.000 gomaxprocs  290000 sim-cycles/s
BenchmarkShardedVsPartitioned/sharded-w4-8      3   5500000 ns/op  8.000 cpus  8.000 gomaxprocs  600000 sim-cycles/s
PASS
`

const singleCoreLog = `BenchmarkShardedVsPartitioned/partitioned     2  11000000 ns/op  1.000 cpus  1.000 gomaxprocs
BenchmarkShardedVsPartitioned/sharded-w4      2  17000000 ns/op  1.000 cpus  1.000 gomaxprocs
`

func parseLog(t *testing.T, log string) []benchEntry {
	t.Helper()
	entries, err := parseBenchOutput(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

func TestBenchVariant(t *testing.T) {
	for name, want := range map[string]string{
		"BenchmarkShardedVsPartitioned/partitioned-8": "partitioned",
		"BenchmarkShardedVsPartitioned/partitioned":   "partitioned",
		"BenchmarkShardedVsPartitioned/sharded-w2-16": "sharded-w2",
		"BenchmarkShardedVsPartitioned/sharded-w2":    "sharded-w2",
	} {
		if got := benchVariant(name); got != want {
			t.Errorf("benchVariant(%q) = %q, want %q", name, got, want)
		}
	}
}

const ffLog = `goos: linux
BenchmarkFFWarmup/analytical-8   10  20000000 ns/op
BenchmarkFFWarmup/analytical-8   10  18000000 ns/op
BenchmarkFFWarmup/simulated-8     2 360000000 ns/op
PASS
`

func TestBuildFFSpeed(t *testing.T) {
	sp := buildFFSpeed(parseLog(t, ffLog))
	if sp == nil {
		t.Fatal("no ff_warmup summary built")
	}
	// Best analytical sample (18ms) against the simulated run (360ms).
	if sp.AnalyticalNsOp != 18000000 || sp.SimulatedNsOp != 360000000 {
		t.Fatalf("ns/op pair = %v/%v", sp.AnalyticalNsOp, sp.SimulatedNsOp)
	}
	if sp.FFSpeedup < 19.99 || sp.FFSpeedup > 20.01 {
		t.Errorf("ff_speedup = %v, want 20.0", sp.FFSpeedup)
	}
	// One-sided logs produce no column at all.
	if buildFFSpeed(parseLog(t, "BenchmarkFFWarmup/analytical-8  10  20000000 ns/op\n")) != nil {
		t.Error("ff_warmup built from the analytical side alone")
	}
	if buildFFSpeed(parseLog(t, multiCoreLog)) != nil {
		t.Error("ff_warmup built with no FFWarmup samples")
	}
}

func TestBuildShardedSpeedMultiCore(t *testing.T) {
	sp := buildShardedSpeed(parseLog(t, multiCoreLog), shardedBenchName)
	if sp == nil {
		t.Fatal("no sharded summary built")
	}
	if sp.SingleCore {
		t.Error("multi-core sweep marked single-core")
	}
	byVariant := map[string]shardedRow{}
	for _, r := range sp.Rows {
		byVariant[r.Variant] = r
	}
	if s := byVariant["sharded-w4"].SpeedupVsPartitioned; s < 1.99 || s > 2.01 {
		t.Errorf("sharded-w4 speedup = %v, want 2.0", s)
	}
	if s := byVariant["partitioned"].SpeedupVsPartitioned; s != 0 {
		t.Errorf("baseline row carries a speedup: %v", s)
	}
}

// A single-core sweep is annotated — per row and summary-wide — not
// silently folded into the speedup column; and when both single- and
// multi-core samples exist for a variant, only the multi-core ones
// count.
func TestBuildShardedSpeedSingleCoreAnnotation(t *testing.T) {
	sp := buildShardedSpeed(parseLog(t, singleCoreLog), shardedBenchName)
	if sp == nil {
		t.Fatal("no sharded summary built")
	}
	if !sp.SingleCore {
		t.Error("single-core sweep not annotated at the summary level")
	}
	for _, r := range sp.Rows {
		if !r.SingleCore {
			t.Errorf("row %s not annotated single-core", r.Variant)
		}
	}

	sp = buildShardedSpeed(parseLog(t, singleCoreLog+multiCoreLog), shardedBenchName)
	if sp.SingleCore {
		t.Error("mixed sweep marked single-core despite multi-core samples")
	}
	for _, r := range sp.Rows {
		if r.SingleCore {
			t.Errorf("row %s kept its single-core sample over the multi-core one", r.Variant)
		}
		if r.Variant == "sharded-w4" && (r.SpeedupVsPartitioned < 1.99 || r.SpeedupVsPartitioned > 2.01) {
			t.Errorf("sharded-w4 speedup = %v, want 2.0 (multi-core samples only)", r.SpeedupVsPartitioned)
		}
	}
}

const takoLog = `goos: linux
BenchmarkShardedTakoVsPartitioned/partitioned-8   3  12000000 ns/op  8.000 cpus  8.000 gomaxprocs
BenchmarkShardedTakoVsPartitioned/sharded-w4-8    3   4000000 ns/op  8.000 cpus  8.000 gomaxprocs
PASS
`

// The täkō-machine column is built from its own benchmark only — the
// baseline-machine samples never leak into it, and vice versa.
func TestBuildShardedTakoSpeedIsolated(t *testing.T) {
	entries := parseLog(t, multiCoreLog+takoLog)
	tako := buildShardedSpeed(entries, shardedTakoBenchName)
	if tako == nil {
		t.Fatal("no sharded_tako summary built")
	}
	if len(tako.Rows) != 2 {
		t.Fatalf("sharded_tako rows = %d, want 2", len(tako.Rows))
	}
	for _, r := range tako.Rows {
		if r.Variant == "sharded-w4" && (r.SpeedupVsPartitioned < 2.99 || r.SpeedupVsPartitioned > 3.01) {
			t.Errorf("sharded-w4 täkō speedup = %v, want 3.0", r.SpeedupVsPartitioned)
		}
	}
	base := buildShardedSpeed(entries, shardedBenchName)
	if len(base.Rows) != 3 {
		t.Fatalf("baseline column rows = %d, want 3 (täkō samples leaked in?)", len(base.Rows))
	}
	if buildShardedSpeed(parseLog(t, multiCoreLog), shardedTakoBenchName) != nil {
		t.Error("sharded_tako column built with no täkō samples")
	}
}
