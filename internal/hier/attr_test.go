package hier

import (
	"testing"

	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/trace"
)

func newAttrH(tiles, slowestK int) (*sim.Kernel, *Hierarchy) {
	k := sim.NewKernel()
	cfg := DefaultConfig(tiles)
	cfg.Attribution = true
	cfg.SlowestK = slowestK
	h := New(k, cfg, energy.NewMeter(), nil, nil)
	return k, h
}

// sumDwell sums the per-state dwell cycles recorded for one kind.
func sumDwell(h *Hierarchy, k txnKind) float64 {
	var sum float64
	for s := 0; s < nTxnStates; s++ {
		sum += h.attr.dwell[k][s].Sum()
	}
	return sum
}

// TestAttributionConservationSingleLoad is the conservation gate from
// the issue: for a single demand load (no stores, no prefetch streams),
// the per-state dwell cycles of the access transaction sum exactly to
// the recorded load.latency, and the tracked timeline sums to the same.
func TestAttributionConservationSingleLoad(t *testing.T) {
	k, h := newAttrH(1, 4)
	h.DRAM.Store().WriteU64(0x1000, 99)
	k.Go("core", func(p *sim.Proc) {
		if v := h.Load(p, 0, 0x1000); v != 99 {
			t.Errorf("load = %d, want 99", v)
		}
	})
	k.Run()

	loadLat := h.Metrics.Histogram("load.latency").Sum()
	if loadLat <= 0 {
		t.Fatalf("load.latency sum = %v, want > 0", loadLat)
	}
	if got := sumDwell(h, kindAccess); got != loadLat {
		t.Fatalf("Σ access dwell = %v, load.latency sum = %v (conservation broken)", got, loadLat)
	}
	if got := h.attr.total[kindAccess].Sum(); got != loadLat {
		t.Fatalf("txn.total.cycles{access} = %v, load.latency = %v", got, loadLat)
	}

	slow := h.SlowestAccesses()
	if len(slow) != 1 {
		t.Fatalf("slowest accesses = %d, want 1", len(slow))
	}
	if slow[0].Latency != uint64(loadLat) {
		t.Fatalf("slowest latency = %d, load.latency = %v", slow[0].Latency, loadLat)
	}
	var tlSum uint64
	for _, seg := range slow[0].Timeline {
		tlSum += seg.Cycles
	}
	if tlSum != slow[0].Latency {
		t.Fatalf("timeline sum = %d, latency = %d", tlSum, slow[0].Latency)
	}
	if slow[0].Truncated {
		t.Fatalf("single load should not truncate its timeline")
	}
}

// TestAttributionConservationWorkload checks the per-kind invariant on a
// mixed multi-tile workload: for every transaction kind, the summed
// per-state dwell equals the summed totals, and every captured slow
// access's timeline sums to its latency.
func TestAttributionConservationWorkload(t *testing.T) {
	k, h := newAttrH(4, 8)
	for i := 0; i < 4; i++ {
		tile := i
		k.Go("core", func(p *sim.Proc) {
			base := mem.Addr(0x10000 * (tile + 1))
			for j := 0; j < 64; j++ {
				a := base + mem.Addr(j*64)
				h.Store(p, tile, a, uint64(j))
				h.Load(p, tile, a)
				h.Load(p, (tile+1)%4, a) // cross-tile sharing: downgrades
			}
			var line mem.Line
			h.StoreLineNT(p, tile, base, &line)
			h.AtomicRMOSync(p, tile, base+8, RMOAdd, 1)
		})
	}
	k.Run()

	for kind := 0; kind < nTxnKinds; kind++ {
		dwell := sumDwell(h, txnKind(kind))
		total := h.attr.total[kind].Sum()
		if dwell != total {
			t.Errorf("kind %v: Σ state dwell = %v, Σ total = %v", txnKind(kind), dwell, total)
		}
	}
	if h.attr.total[kindAccess].Count() == 0 || h.attr.total[kindHomeFetch].Count() == 0 ||
		h.attr.total[kindNTStore].Count() == 0 || h.attr.total[kindRMO].Count() == 0 {
		t.Fatalf("workload should exercise access, home-fetch, nt-store, and rmo kinds")
	}

	slow := h.SlowestAccesses()
	if len(slow) == 0 || len(slow) > 8 {
		t.Fatalf("slowest accesses = %d, want 1..8", len(slow))
	}
	for i, s := range slow {
		if i > 0 && s.Latency > slow[i-1].Latency {
			t.Fatalf("slowest not sorted descending at %d: %d > %d", i, s.Latency, slow[i-1].Latency)
		}
		var sum uint64
		for _, seg := range s.Timeline {
			sum += seg.Cycles
		}
		if !s.Truncated && sum != s.Latency {
			t.Errorf("slow[%d] timeline sum = %d, latency = %d", i, sum, s.Latency)
		}
	}
}

// TestAttributionSnapshotNames checks the registry surface: armed runs
// expose txn.state.cycles{kind,state} and txn.total.cycles{kind}
// histograms in the snapshot, and only for states with outgoing edges.
func TestAttributionSnapshotNames(t *testing.T) {
	k, h := newAttrH(1, 0)
	h.DRAM.Store().WriteU64(0x40, 7)
	k.Go("core", func(p *sim.Proc) { h.Load(p, 0, 0x40) })
	k.Run()

	snap := h.Metrics.Snapshot()
	found := map[string]bool{}
	for _, hs := range snap.Histograms {
		found[hs.Name] = true
	}
	for _, want := range []string{
		"txn.total.cycles{kind=access}",
		"txn.state.cycles{kind=access,state=Idle}",
		"txn.state.cycles{kind=access,state=Lookup}",
		"txn.state.cycles{kind=home-fetch,state=HomeLocked}",
	} {
		if !found[want] {
			t.Errorf("snapshot missing %q", want)
		}
	}
	// Done has no outgoing edges for any kind; it must not be registered.
	for name := range found {
		if name == "txn.state.cycles{kind=access,state=Done}" {
			t.Errorf("snapshot has dwell histogram for terminal state Done")
		}
	}
}

// TestAttributionDisarmedIsInert: the default config records nothing and
// SlowestAccesses returns nil — the disarmed path the alloc gates run on.
func TestAttributionDisarmedIsInert(t *testing.T) {
	k, h := newH(1)
	h.DRAM.Store().WriteU64(0x40, 7)
	k.Go("core", func(p *sim.Proc) { h.Load(p, 0, 0x40) })
	k.Run()
	if h.attr != nil {
		t.Fatalf("attr armed on default config")
	}
	if got := h.SlowestAccesses(); got != nil {
		t.Fatalf("SlowestAccesses = %v, want nil when disarmed", got)
	}
	for _, hs := range h.Metrics.Snapshot().Histograms {
		if len(hs.Name) >= 4 && hs.Name[:4] == "txn." {
			t.Fatalf("disarmed run registered %q", hs.Name)
		}
	}
}

// TestSlowestRingBounded drives many distinct-latency accesses through a
// K=2 ring and checks it keeps exactly the two slowest.
func TestSlowestRingBounded(t *testing.T) {
	k, h := newAttrH(1, 2)
	k.Go("core", func(p *sim.Proc) {
		for j := 0; j < 32; j++ {
			a := mem.Addr(0x1000 + j*64)
			h.Load(p, 0, a) // cold misses, then
			h.Load(p, 0, a) // near-1-cycle hits
		}
	})
	k.Run()
	slow := h.SlowestAccesses()
	if len(slow) != 2 {
		t.Fatalf("ring kept %d, want 2", len(slow))
	}
	// The two survivors must both be misses (slower than any hit).
	if slow[0].Latency < slow[1].Latency {
		t.Fatalf("not sorted: %d < %d", slow[0].Latency, slow[1].Latency)
	}
	if slow[1].Latency <= 5 {
		t.Fatalf("a hit (%d cycles) survived over misses", slow[1].Latency)
	}
}

// TestLegalEdgesCoverage: observed coverage is a subset of LegalEdges,
// UnvisitedEdges is exactly the complement, and the upgrade/flush kinds
// missing from a read-only single-tile run show up as unvisited.
func TestLegalEdgesCoverage(t *testing.T) {
	k, h := newAttrH(1, 0)
	h.DRAM.Store().WriteU64(0x40, 7)
	k.Go("core", func(p *sim.Proc) { h.Load(p, 0, 0x40) })
	k.Run()

	legal := LegalEdges()
	legalSet := make(map[TxnTransition]bool, len(legal))
	for _, e := range legal {
		legalSet[e] = true
	}
	observed := h.TxnCoverage()
	for _, e := range observed {
		e.Count = 0
		if !legalSet[e] {
			t.Fatalf("observed edge %v not in LegalEdges", e)
		}
	}
	unvisited := UnvisitedEdges(observed)
	if len(observed)+len(unvisited) != len(legal) {
		t.Fatalf("observed %d + unvisited %d != legal %d",
			len(observed), len(unvisited), len(legal))
	}
	foundUpgrade := false
	for _, e := range unvisited {
		if e.Kind == "upgrade" {
			foundUpgrade = true
		}
		if e.Count != 0 {
			t.Fatalf("unvisited edge carries a count: %v", e)
		}
	}
	if !foundUpgrade {
		t.Fatalf("read-only run should leave upgrade edges unvisited")
	}
}

// TestTxnOrders pins the exported state/kind orderings reports rely on.
func TestTxnOrders(t *testing.T) {
	states := TxnStateOrder()
	if len(states) != nTxnStates || states[0] != "Idle" || states[len(states)-1] != "Done" {
		t.Fatalf("TxnStateOrder = %v", states)
	}
	kinds := TxnKindOrder()
	if len(kinds) != nTxnKinds || kinds[0] != "access" {
		t.Fatalf("TxnKindOrder = %v", kinds)
	}
}

// TestAttributionSpans: with a tracer attached and attribution armed,
// per-state child spans (txn.State) appear on the component tracks.
func TestAttributionSpans(t *testing.T) {
	k, h := newAttrH(1, 0)
	tr := trace.New(256)
	h.AttachTracer(tr)
	h.DRAM.Store().WriteU64(0x40, 7)
	k.Go("core", func(p *sim.Proc) { h.Load(p, 0, 0x40) })
	k.Run()
	var txnSpans int
	for _, e := range tr.Events() {
		if len(e.Kind) > 4 && e.Kind[:4] == "txn." {
			txnSpans++
			if e.Dur == 0 {
				t.Errorf("zero-duration txn span %q emitted", e.Kind)
			}
		}
	}
	if txnSpans == 0 {
		t.Fatalf("no txn.* state spans traced on an armed run")
	}
}
