package morphs

import (
	"sync"
	"sync/atomic"
	"time"

	"tako/internal/system"
	"tako/internal/tlb"
)

// The memoized run cache: one entry per (study, variant, params)
// simulation. The paper's report regenerates paired figures (fig6/fig7,
// fig13/fig14, fig16/fig17, fig19/fig20) from the exact same runs, and
// the sensitivity sweeps re-run baselines other figures already
// simulated; with the cache enabled each such simulation executes once
// and every later request replays the stored Result — including its
// observability record, which the requesting driver re-submits into its
// own capture window so -bench reports and op-count goldens are
// unchanged by the sharing.
//
// The cache is off by default: tests and `go test -bench` rely on every
// call re-simulating. The CLI drivers (takoreport, takosim) opt in. The
// cache is process-global and never evicts, so a skipped experiment
// (takoreport -skip fig6) neither removes nor invalidates runs a later
// figure shares; whichever figure of a pair runs first simulates, the
// rest reuse.
//
// Keys compare params by value. HATSParams carries a *tlb.Config, which
// would compare by pointer identity — hatsCacheKey flattens it into the
// key so equal configurations hit regardless of allocation.

type runKey struct {
	study   string
	variant string
	params  any // normalized, comparable params value
}

var (
	cacheEnabled atomic.Bool
	cacheMu      sync.Mutex
	runCache     = map[runKey]Result{}

	// simsExecuted counts simulations actually run (cache misses plus
	// all runs while the cache is disabled) — the probe tests use it to
	// assert paired figures share one simulation.
	simsExecuted atomic.Uint64
)

// SetRunCache enables or disables run memoization and returns the
// previous setting. Enabling does not clear previously cached runs.
func SetRunCache(on bool) bool { return cacheEnabled.Swap(on) }

// ResetRunCache drops every cached run (tests; never needed by the
// drivers — params fully determine a run, so entries cannot go stale
// within a process).
func ResetRunCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	runCache = map[runKey]Result{}
}

// SimsExecuted returns the number of simulations executed (not served
// from the cache) so far in this process.
func SimsExecuted() uint64 { return simsExecuted.Load() }

// cachedRun memoizes one variant's simulation. On a miss it executes
// run, stamps the Result with the measured wall-clock, and stores it; on
// a hit it returns the stored Result marked Cached with zero wall-clock,
// so submission accounts the simulation cost exactly once.
func cachedRun(study, variant string, params any, run func() (Result, error)) (Result, error) {
	if !cacheEnabled.Load() {
		simsExecuted.Add(1)
		return run()
	}
	key := runKey{study: study, variant: variant, params: params}
	cacheMu.Lock()
	r, ok := runCache[key]
	cacheMu.Unlock()
	if ok {
		r.Cached = true
		r.WallMS = 0
		return r, nil
	}
	simsExecuted.Add(1)
	start := time.Now()
	r, err := run()
	if err != nil {
		return r, err
	}
	r.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	r.Cached = false
	cacheMu.Lock()
	runCache[key] = r
	cacheMu.Unlock()
	return r, nil
}

// submitResults enters each result's run record into the active capture
// window, in argument order. Drivers call it after parallel fan-outs
// join, so capture logs are deterministic at any -j.
func submitResults(rs ...Result) {
	for _, r := range rs {
		system.Submit(r.Record, r.WallMS, r.Cached)
	}
}

// SubmitResults is submitResults for drivers outside this package (the
// sensitivity sweeps and fig21, which call single-variant runners
// directly).
func SubmitResults(rs ...Result) { submitResults(rs...) }

// hatsKey is HATSParams flattened into a comparable value: the RTLB
// pointer is dereferenced so equal sweep configurations share runs.
type hatsKey struct {
	p       HATSParams
	rtlb    tlb.Config
	hasRTLB bool
}

func hatsCacheKey(p HATSParams) any {
	k := hatsKey{}
	if p.RTLB != nil {
		k.rtlb, k.hasRTLB = *p.RTLB, true
	}
	p.RTLB = nil
	k.p = p
	return k
}
