package morphs

import (
	"encoding/json"
	"fmt"
	"testing"

	"tako/internal/sim"
	"tako/internal/system"
)

// The sharded determinism battery: every täkō case study, hosted on the
// tile-sharded engine, must produce byte-identical results at any
// worker count. Each leg runs its study sequenced (workers ≤ 1) and at
// 2, 4, and 8 workers and compares full result fingerprints — cycles,
// energy, instruction and DRAM counts, phase attribution, and every
// study-specific Extra metric.

// shardedFingerprint renders everything about a Result that must be
// worker-count-invariant. Record and WallMS are host-side observability
// and excluded.
func shardedFingerprint(t *testing.T, r Result) string {
	t.Helper()
	fp := struct {
		Cycles       sim.Cycle
		EnergyPJ     float64
		CoreInstrs   uint64
		EngineInstrs uint64
		DRAMAccesses uint64
		DRAMPhase    map[string]uint64
		Mispredicts  uint64
		Extra        map[string]float64
	}{r.Cycles, r.EnergyPJ, r.CoreInstrs, r.EngineInstrs, r.DRAMAccesses,
		r.DRAMPhase, r.Mispredicts, r.Extra}
	b, err := json.Marshal(fp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// shardedWidthSweep runs one study leg at each worker count and fails on
// the first fingerprint divergence.
func shardedWidthSweep(t *testing.T, run func() (Result, error)) {
	t.Helper()
	prevOn, prevW := system.DefaultSharded()
	defer system.SetDefaultSharded(prevOn, prevW)
	var ref string
	for _, workers := range []int{1, 2, 4, 8} {
		system.SetDefaultSharded(true, workers)
		r, err := run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fp := shardedFingerprint(t, r)
		if ref == "" {
			ref = fp
			continue
		}
		if fp != ref {
			t.Fatalf("workers=%d diverged:\n got %s\nwant %s", workers, fp, ref)
		}
	}
}

func TestShardedDecompDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prm := DefaultDecompParams()
	prm.NumValues, prm.NumIndices = 4096, 2048
	shardedWidthSweep(t, func() (Result, error) { return runDecompression(DecompTako, prm) })
}

func TestShardedLayoutDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prm := DefaultLayoutParams()
	prm.Structs, prm.Passes = 4096, 2
	shardedWidthSweep(t, func() (Result, error) { return runLayout(LayoutTako, prm) })
}

func TestShardedPHIDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prm := DefaultPHIParams()
	prm.V, prm.E = 2048, 16384
	for _, v := range []PHIVariant{PHITako, PHIHier} {
		v := v
		t.Run(string(v), func(t *testing.T) {
			shardedWidthSweep(t, func() (Result, error) { return runPHI(v, prm) })
		})
	}
}

func TestShardedCCDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prm := DefaultCCParams()
	prm.V, prm.E, prm.Rounds = 2048, 16384, 2
	shardedWidthSweep(t, func() (Result, error) { return RunCC(CCTako, prm) })
}

func TestShardedHATSDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prm := DefaultHATSParams()
	prm.V, prm.E = 2048, 16384
	shardedWidthSweep(t, func() (Result, error) { return runHATS(HATSTako, prm) })
}

func TestShardedNVMDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prm := DefaultNVMParams(256)
	prm.Transactions = 64
	shardedWidthSweep(t, func() (Result, error) { return runNVM(NVMTako, prm) })
}

func TestShardedSideChannelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prm := DefaultSideChannelParams()
	prm.Rounds = 3
	shardedWidthSweep(t, func() (Result, error) {
		r, err := RunSideChannel(SCTako, prm)
		if err != nil {
			return Result{}, err
		}
		if !r.Detected {
			return Result{}, fmt.Errorf("täkō victim failed to detect the attack")
		}
		// Fold the attack outcome into the fingerprinted Extra map so
		// detection timing diverging across worker counts fails the leg.
		r.Extra["detection.cycle"] = float64(r.DetectionCycle)
		r.Extra["true.positives"] = float64(r.TruePositives)
		r.Extra["false.positives"] = float64(r.FalsePositives)
		return r.Result, nil
	})
}

// TestShardedNVMCrashDeterminism pins the crash harness on the sharded
// engine: RunUntil stops the epoch loop at the crash cycle, recovery
// replays the journal, and the committed-transaction count is identical
// at every worker count.
func TestShardedNVMCrashDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prm := DefaultNVMParams(256)
	prm.Transactions = 256
	prevOn, prevW := system.DefaultSharded()
	defer system.SetDefaultSharded(prevOn, prevW)
	ref := -1
	for _, workers := range []int{1, 2, 4, 8} {
		system.SetDefaultSharded(true, workers)
		committed, err := RunNVMCrash(prm, 60000)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == -1 {
			if committed <= 0 || committed >= prm.Transactions {
				t.Fatalf("crash at a boundary: committed %d/%d transactions (pick a crash cycle mid-run)",
					committed, prm.Transactions)
			}
			ref = committed
			continue
		}
		if committed != ref {
			t.Fatalf("workers=%d committed %d transactions, workers=1 committed %d", workers, committed, ref)
		}
	}
}
