package hier

import (
	"tako/internal/analytic"
	"tako/internal/cache"
	"tako/internal/mem"
)

// seedWarmState installs the collector's steady-state occupancy estimate
// into the hierarchy at fast-forward switchover: each cache receives the
// most recently used lines that fit its geometry, each dTLB its most
// recently used pages, and the directory learns every seeded private
// copy. The result satisfies CheckInvariants by construction:
//
//   - every line is seeded clean with the backing store's current data,
//     so the strict-freshness rule (clean private copies byte-match the
//     home L3 line) holds trivially — fast-forward wrote all values to
//     the backing store;
//   - every seeded private (L1/L2) copy gets its tile's sharer bit in
//     the directory. This is load-bearing beyond the checker: the
//     classic hasExclusive treats a *missing* entry as exclusive, so an
//     untracked seeded copy would let another tile's write skip the
//     invalidation protocol and leave the copy stale;
//   - private plans are restricted to lines also planned into the L3
//     (inclusive steady state) and L1 plans to lines planned into the
//     L2, mirroring what demand fills would have built;
//   - owners stay -1 (nothing dirty), so no downgrade state exists.
//
// Recency: cache.Seed/TLB.Warm follow the shared fill clocks, so plans
// are collected most-recent-first (the MRU walk) and installed in
// reverse, leaving the most recent line MRU in every set.
func (h *Hierarchy) seedWarmState(col *analytic.Collector) ffSeedCounts {
	var n ffSeedCounts
	store := h.DRAM.Store()
	var line mem.Line

	// Shared L3: plan from the merged all-tile stream under per-bank,
	// per-set way quotas.
	totalL3 := 0
	for _, t := range h.tiles {
		totalL3 += t.l3.NumSets() * t.l3.Config().Ways
	}
	l3Plan := make([][]mem.Addr, len(h.tiles))
	quotas := make([][]int, len(h.tiles))
	for i, t := range h.tiles {
		quotas[i] = make([]int, t.l3.NumSets())
	}
	inL3 := make(map[uint64]struct{}, totalL3)
	planned := 0
	for _, key := range col.GlobalMRU(4 * totalL3) {
		if planned == totalL3 {
			break
		}
		la := mem.Addr(key << mem.LineShift)
		bank := h.HomeTile(la)
		c := h.tiles[bank].l3
		set := c.SetIndex(la)
		if quotas[bank][set] >= c.Config().Ways {
			continue
		}
		quotas[bank][set]++
		l3Plan[bank] = append(l3Plan[bank], la)
		inL3[key] = struct{}{}
		planned++
	}
	for bank, plan := range l3Plan {
		c := h.tiles[bank].l3
		for i := len(plan) - 1; i >= 0; i-- {
			store.PeekLine(plan[i], &line)
			if c.Seed(plan[i], &line) {
				n.L3++
			}
		}
	}

	// Private levels + dTLB, per tile. The collector's exact content
	// filters (armed whenever fast-forward runs) are the private levels'
	// true steady-state occupancy — including inclusion back-invalidation
	// — so they are preferred; the tile-stream MRU estimate is the
	// fallback for filterless collectors.
	for ti, t := range h.tiles {
		keys1, keys2 := col.FilterMRU(ti)
		if keys2 == nil {
			keys2 = col.TileMRU(ti, 4*t.l2.NumSets()*t.l2.Config().Ways)
		}
		plan2 := planPrivate(t.l2, keys2, inL3)
		var plan1 []mem.Addr
		if keys1 != nil {
			// Exact L1 content, restricted to the seeded L2 plan so the
			// installed levels stay inclusive.
			inPlan2 := make(map[mem.Addr]struct{}, len(plan2))
			for _, la := range plan2 {
				inPlan2[la] = struct{}{}
			}
			for _, key := range keys1 {
				la := mem.Addr(key << mem.LineShift)
				if _, ok := inPlan2[la]; ok {
					plan1 = append(plan1, la)
				}
			}
			plan1 = planSubset(t.l1, plan1)
		} else {
			plan1 = planSubset(t.l1, plan2)
		}
		for i := len(plan2) - 1; i >= 0; i-- {
			store.PeekLine(plan2[i], &line)
			if t.l2.Seed(plan2[i], &line) {
				n.L2++
				h.dirOf(plan2[i]).add(ti)
				n.Dir++
			}
		}
		for i := len(plan1) - 1; i >= 0; i-- {
			store.PeekLine(plan1[i], &line)
			if t.l1.Seed(plan1[i], &line) {
				n.L1++
				h.dirOf(plan1[i]).add(ti)
			}
		}
		pageBits := t.dtlb.Config().PageBits
		pages := col.PageMRU(ti, t.dtlb.Config().Entries)
		for i := len(pages) - 1; i >= 0; i-- {
			if t.dtlb.Warm(mem.Addr(pages[i]) << pageBits) {
				n.TLB++
			}
		}
	}
	return n
}

// planPrivate collects the private-cache plan for c from keys (a
// most-recent-first MRU walk of the tile's stream): lines also planned
// into the shared L3, under per-set way quotas, up to capacity.
func planPrivate(c *cache.Cache, keys []uint64, inL3 map[uint64]struct{}) []mem.Addr {
	capacity := c.NumSets() * c.Config().Ways
	quota := make([]int, c.NumSets())
	plan := make([]mem.Addr, 0, capacity)
	for _, key := range keys {
		if len(plan) == capacity {
			break
		}
		if _, ok := inL3[key]; !ok {
			continue
		}
		la := mem.Addr(key << mem.LineShift)
		set := c.SetIndex(la)
		if quota[set] >= c.Config().Ways {
			continue
		}
		quota[set]++
		plan = append(plan, la)
	}
	return plan
}

// planSubset restricts an outer-level plan (already most-recent-first)
// to what fits c's geometry — the L1 plan is a subset of the L2 plan, so
// inclusion between the seeded private levels mirrors demand-fill
// steady state.
func planSubset(c *cache.Cache, outer []mem.Addr) []mem.Addr {
	capacity := c.NumSets() * c.Config().Ways
	quota := make([]int, c.NumSets())
	plan := make([]mem.Addr, 0, capacity)
	for _, la := range outer {
		if len(plan) == capacity {
			break
		}
		set := c.SetIndex(la)
		if quota[set] >= c.Config().Ways {
			continue
		}
		quota[set]++
		plan = append(plan, la)
	}
	return plan
}
