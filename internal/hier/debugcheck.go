package hier

import (
	"fmt"

	"tako/internal/mem"
)

// Freshness checking state lives on the Hierarchy (not in package
// globals) so parallel tests and coexisting hierarchies cannot
// cross-contaminate each other's histories or toggles. Enable it per
// hierarchy with Config.FreshChecks or SetFreshChecks, or process-wide
// for configs built by DefaultConfig with SetVerifyDefaults.

func (h *Hierarchy) debugDir(la mem.Addr) string {
	e := h.dirT(la).get(la)
	if e == nil {
		return "dir{}"
	}
	return fmt.Sprintf("dir{sharers=%b owner=%d}", e.sharers, e.owner)
}

// debugLogHome records the last few mutations of each home line.
func (h *Hierarchy) debugLogHome(la mem.Addr, site string, w0 uint64) {
	if !h.freshChecks {
		return
	}
	l := append(h.homeLog[la], fmt.Sprintf("%s@%d w2=%d %s", site, h.K.Now(), w0, h.debugDir(la)))
	if len(l) > 16 {
		l = l[len(l)-16:]
	}
	h.homeLog[la] = l
}

// SetFreshChecks toggles expensive coherence-freshness assertions on
// this hierarchy; tests enable them to catch stale-copy bugs at their
// source.
func (h *Hierarchy) SetFreshChecks(on bool) {
	h.freshChecks = on
	if on && h.homeLog == nil {
		h.homeLog = make(map[mem.Addr][]string)
	}
}

// debugCheckFresh panics if tileID holds a clean copy of la that differs
// from the home L3 copy — a coherence bug. Enabled by tests.
func (h *Hierarchy) debugCheckFresh(tileID int, la mem.Addr, where string) {
	if !h.freshChecks {
		return
	}
	hm := h.tiles[h.HomeTile(la)]
	ls3 := hm.l3.Lookup(la)
	if ls3 == nil {
		return
	}
	t := h.tiles[tileID]
	// A dirty copy anywhere in the tile makes it the owner: its clean
	// copies may legitimately be ahead of home (the dirty truth is in
	// the same private domain and merges on eviction/downgrade).
	for _, c := range t.privateCaches() {
		if ls := c.Lookup(la); ls != nil && ls.Dirty {
			return
		}
	}
	for _, c := range t.privateCaches() {
		if ls := c.Lookup(la); ls != nil && ls.Data != ls3.Data {
			panic(fmt.Sprintf("STALE at %s: tile %d cache %v line %v local=%v home=%v\nhistory: %v",
				where, tileID, c.Config().Name, la, ls.Data, ls3.Data, h.homeLog[la]))
		}
	}
}

// DebugHomeHistory returns the recorded mutation history of a home line
// (populated only while fresh checks are enabled).
func (h *Hierarchy) DebugHomeHistory(la mem.Addr) []string { return h.homeLog[la] }
