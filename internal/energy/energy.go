// Package energy models dynamic execution energy as per-event costs, in
// the style of the paper's methodology (§7: "dynamic execution energy,
// energy parameters from [114, 133]"). The paper's energy results are
// driven by event counts — DRAM accesses dominate, followed by on-chip
// data movement and core instructions — so any per-event constants in the
// published ballpark preserve the reported shape. Constants below are in
// picojoules per event for a ~14 nm-class multicore.
package energy

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Kind identifies a class of energy-consuming event.
type Kind int

// Event kinds. DefaultCosts gives each a per-event energy.
const (
	CoreInstr   Kind = iota // one committed instruction on an OOO core
	EngineInstr             // one dataflow-fabric operation (SIMD counts once per PE op)
	L1Access                // L1d tag+data access (hit or fill)
	L2Access                // L2 tag+data access
	L3Access                // L3 bank tag+data access
	DRAMAccess              // one 64 B DRAM line transfer
	NVMWrite                // one 64 B persistent write (more expensive than DRAM)
	NoCFlitHop              // one 16 B flit traversing one router+link
	TLBAccess               // TLB/rTLB lookup
	numKinds
)

var kindNames = [numKinds]string{
	"core-instr", "engine-instr", "l1-access", "l2-access", "l3-access",
	"dram-access", "nvm-write", "noc-flit-hop", "tlb-access",
}

func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// DefaultCosts returns per-event dynamic energy in pJ.
//
// Sources of the ballpark: Horowitz ISSCC'14 (ALU ops ~1 pJ, 8 KB SRAM
// ~10 pJ, DRAM interface ~1-2 nJ per 64 b word → ~10 nJ per 64 B line);
// OOO cores pay tens of pJ of pipeline overhead per instruction, while a
// small dataflow PE pays ~1-2 pJ per op (Snafu/Fifer-class fabrics).
func DefaultCosts() [numKinds]float64 {
	return [numKinds]float64{
		CoreInstr:   45,
		EngineInstr: 2,
		L1Access:    10,
		L2Access:    28,
		L3Access:    60,
		DRAMAccess:  10_000,
		NVMWrite:    30_000,
		NoCFlitHop:  4,
		TLBAccess:   2,
	}
}

// Meter accumulates event counts and converts them to energy. By
// default it is single-threaded; SetConcurrent switches Add to atomic
// accumulation for sharded-kernel runs (adds commute, so totals are
// identical at any worker count).
type Meter struct {
	counts [numKinds]uint64
	costs  [numKinds]float64
	conc   bool
}

// NewMeter returns a Meter with DefaultCosts.
func NewMeter() *Meter {
	return &Meter{costs: DefaultCosts()}
}

// SetConcurrent switches the meter to atomic accumulation.
func (m *Meter) SetConcurrent() { m.conc = true }

// Add records n events of kind k.
func (m *Meter) Add(k Kind, n uint64) {
	if m.conc {
		atomic.AddUint64(&m.counts[k], n)
		return
	}
	m.counts[k] += n
}

// Count returns the number of recorded events of kind k.
func (m *Meter) Count(k Kind) uint64 {
	if m.conc {
		return atomic.LoadUint64(&m.counts[k])
	}
	return m.counts[k]
}

// TotalPJ returns total dynamic energy in picojoules.
func (m *Meter) TotalPJ() float64 {
	var total float64
	for k := Kind(0); k < numKinds; k++ {
		total += float64(m.counts[k]) * m.costs[k]
	}
	return total
}

// PJ returns the energy attributed to kind k.
func (m *Meter) PJ(k Kind) float64 { return float64(m.counts[k]) * m.costs[k] }

// Reset zeroes all counts (costs are preserved).
func (m *Meter) Reset() { m.counts = [numKinds]uint64{} }

// AddFrom accumulates another meter's counts into m.
func (m *Meter) AddFrom(o *Meter) {
	for k := Kind(0); k < numKinds; k++ {
		m.counts[k] += o.counts[k]
	}
}

// Breakdown renders a per-kind energy report.
func (m *Meter) Breakdown() string {
	var b strings.Builder
	total := m.TotalPJ()
	for k := Kind(0); k < numKinds; k++ {
		if m.counts[k] == 0 {
			continue
		}
		pj := m.PJ(k)
		pct := 0.0
		if total > 0 {
			pct = 100 * pj / total
		}
		fmt.Fprintf(&b, "%-14s %12d events  %14.0f pJ  %5.1f%%\n",
			kindNames[k], m.counts[k], pj, pct)
	}
	fmt.Fprintf(&b, "%-14s %27s  %14.0f pJ\n", "total", "", total)
	return b.String()
}
