package hier

import (
	"math/rand"
	"testing"

	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/sim"
)

// fakeRegistry serves bindings from a static list.
type fakeRegistry struct {
	bindings []Binding
}

func (r *fakeRegistry) Binding(tile int, a mem.Addr) (Binding, bool) {
	for _, b := range r.bindings {
		if b.Region.Contains(a) {
			return b, true
		}
	}
	return Binding{}, false
}

// fakeRunner executes callbacks instantly (optionally with a delay) and
// records invocations.
type recordedCall struct {
	tile int
	kind CallbackKind
	addr mem.Addr
	data mem.Line
}

type fakeRunner struct {
	k     *sim.Kernel
	delay sim.Cycle
	fill  func(kind CallbackKind, a mem.Addr, line *mem.Line)
	calls []recordedCall
}

func (r *fakeRunner) Run(tile int, kind CallbackKind, b Binding, addr mem.Addr, line *mem.Line) (accepted, done *sim.Future) {
	if r.fill != nil {
		r.fill(kind, addr, line)
	}
	r.calls = append(r.calls, recordedCall{tile, kind, addr, *line})
	acc := sim.CompletedFuture(r.k)
	d := sim.NewFuture(r.k)
	d.CompleteAt(r.k.Now() + r.delay)
	return acc, d
}

func (r *fakeRunner) Saturated(int) bool { return false }

func (r *fakeRunner) count(kind CallbackKind) int {
	n := 0
	for _, c := range r.calls {
		if c.kind == kind {
			n++
		}
	}
	return n
}

func newH(tiles int) (*sim.Kernel, *Hierarchy) {
	k := sim.NewKernel()
	h := New(k, DefaultConfig(tiles), energy.NewMeter(), nil, nil)
	return k, h
}

func newMorphH(tiles int, reg *fakeRegistry) (*sim.Kernel, *Hierarchy, *fakeRunner) {
	k := sim.NewKernel()
	r := &fakeRunner{k: k, delay: 10}
	h := New(k, DefaultConfig(tiles), energy.NewMeter(), reg, r)
	return k, h, r
}

func TestLoadMissThenHit(t *testing.T) {
	k, h := newH(4)
	var missLat, hitLat sim.Cycle
	h.DRAM.Store().WriteU64(0x1000, 77)
	k.Go("core", func(p *sim.Proc) {
		t0 := p.Now()
		if v := h.Load(p, 0, 0x1000); v != 77 {
			t.Errorf("load = %d, want 77", v)
		}
		missLat = p.Now() - t0
		t0 = p.Now()
		h.Load(p, 0, 0x1000)
		hitLat = p.Now() - t0
	})
	k.Run()
	if missLat <= hitLat {
		t.Fatalf("miss latency %d should exceed hit latency %d", missLat, hitLat)
	}
	if hitLat > 5 {
		t.Fatalf("L1 hit latency %d too high", hitLat)
	}
	if h.DRAM.Reads != 1 {
		t.Fatalf("DRAM reads = %d, want 1", h.DRAM.Reads)
	}
	if h.Metrics.Get("l1.hits") != 1 || h.Metrics.Get("l3.misses") != 1 {
		t.Fatalf("counters: %s", h.Metrics.String())
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	k, h := newH(4)
	k.Go("core", func(p *sim.Proc) {
		h.Store(p, 1, 0x2000, 1234)
		if v := h.Load(p, 1, 0x2000); v != 1234 {
			t.Errorf("readback = %d", v)
		}
	})
	k.Run()
	if got := h.DebugReadWord(0x2000); got != 1234 {
		t.Fatalf("DebugReadWord = %d", got)
	}
}

func TestCrossTileCoherence(t *testing.T) {
	k, h := newH(4)
	done := make(chan struct{}, 1)
	k.Go("seq", func(p *sim.Proc) {
		h.Store(p, 0, 0x3000, 10)
		// Tile 1 reads: must see tile 0's dirty data.
		if v := h.Load(p, 1, 0x3000); v != 10 {
			t.Errorf("tile1 read %d, want 10", v)
		}
		// Tile 1 writes: invalidates tile 0.
		h.Store(p, 1, 0x3000, 20)
		if v := h.Load(p, 0, 0x3000); v != 20 {
			t.Errorf("tile0 read %d, want 20", v)
		}
		// And tile 2, never a sharer, also sees it.
		if v := h.Load(p, 2, 0x3000); v != 20 {
			t.Errorf("tile2 read %d, want 20", v)
		}
		done <- struct{}{}
	})
	k.Run()
	select {
	case <-done:
	default:
		t.Fatal("sequence did not finish")
	}
	if h.Metrics.Get("coh.invalidations") == 0 {
		t.Fatal("no invalidations recorded")
	}
}

func TestConcurrentWritersSerialize(t *testing.T) {
	k, h := newH(4)
	const n = 200
	for tile := 0; tile < 4; tile++ {
		tile := tile
		k.Go("w", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				a := mem.Addr(0x8000 + (i%16)*64)
				h.Store(p, tile, a, uint64(tile*1000+i))
				h.Load(p, tile, a)
			}
		})
	}
	k.Run()
	if blocked := k.Blocked(); len(blocked) != 0 {
		t.Fatalf("deadlocked procs: %v", blocked)
	}
}

func TestEvictionWritebackPreservesData(t *testing.T) {
	k, h := newH(1)
	// Write far more distinct lines than the L2 holds; all values must
	// survive eviction to L3/DRAM.
	const lines = 12288 // 768 KB of lines vs 128 KB L2 / 512 KB L3 bank
	k.Go("core", func(p *sim.Proc) {
		for i := 0; i < lines; i++ {
			h.Store(p, 0, mem.Addr(0x10_0000+i*64), uint64(i+1))
		}
	})
	k.Run()
	rng := rand.New(rand.NewSource(7))
	for j := 0; j < 200; j++ {
		i := rng.Intn(lines)
		if got := h.DebugReadWord(mem.Addr(0x10_0000 + i*64)); got != uint64(i+1) {
			t.Fatalf("line %d = %d, want %d", i, got, i+1)
		}
	}
	if h.Metrics.Get("l3.writebacks") == 0 {
		t.Fatal("expected L3 writebacks to DRAM")
	}
}

func TestAtomicAddAccumulates(t *testing.T) {
	k, h := newH(4)
	const per = 100
	a := mem.Addr(0x5000)
	for tile := 0; tile < 4; tile++ {
		tile := tile
		k.Go("rmo", func(p *sim.Proc) {
			for i := 0; i < per; i++ {
				h.AtomicAdd(p, tile, a, 1)
			}
			h.DrainRMOs(p, tile)
		})
	}
	k.Run()
	if got := h.DebugReadWord(a); got != 4*per {
		t.Fatalf("sum = %d, want %d", got, 4*per)
	}
	if h.Metrics.Get("rmo.issued") != 4*per {
		t.Fatalf("rmo.issued = %d", h.Metrics.Get("rmo.issued"))
	}
}

func TestAtomicExchange(t *testing.T) {
	k, h := newH(2)
	k.Go("core", func(p *sim.Proc) {
		h.Store(p, 0, 0x6000, 5)
		old := h.AtomicExchange(p, 0, 0x6000, 9)
		if old != 5 {
			t.Errorf("xchg old = %d, want 5", old)
		}
		if v := h.Load(p, 0, 0x6000); v != 9 {
			t.Errorf("after xchg = %d, want 9", v)
		}
	})
	k.Run()
}

func phantomBinding(region mem.Region, level Level) Binding {
	return Binding{
		MorphID: 1, Level: level, Phantom: true, Region: region,
		HasMiss: true, HasEviction: true, HasWriteback: true,
	}
}

func TestPhantomOnMissFillsLine(t *testing.T) {
	region := mem.Region{Name: "ph", Base: 0x4000_0000_0000, Size: 64 * 1024, Phantom: true}
	reg := &fakeRegistry{bindings: []Binding{phantomBinding(region, LevelPrivate)}}
	k, h, r := newMorphH(4, reg)
	r.fill = func(kind CallbackKind, a mem.Addr, line *mem.Line) {
		if kind == CbMiss {
			line.SetWord(0, uint64(a)) // "decompress": addr-derived value
		}
	}
	k.Go("core", func(p *sim.Proc) {
		a := region.Base + 128
		if v := h.Load(p, 0, a); v != uint64(a.Line()) {
			t.Errorf("phantom load = %x, want %x", v, uint64(a.Line()))
		}
		// Second load: cache hit, no new callback.
		h.Load(p, 0, a)
		// Different word, same line: still no callback.
		h.Load(p, 0, a+8)
	})
	k.Run()
	if got := r.count(CbMiss); got != 1 {
		t.Fatalf("onMiss calls = %d, want 1", got)
	}
	if h.DRAM.Accesses() != 0 {
		t.Fatalf("phantom miss touched DRAM %d times", h.DRAM.Accesses())
	}
}

func TestPhantomEvictionCallbacks(t *testing.T) {
	// Use a tiny L2 so phantom lines get evicted quickly.
	region := mem.Region{Name: "ph", Base: 0x4000_0000_0000, Size: 1 << 20, Phantom: true}
	reg := &fakeRegistry{bindings: []Binding{phantomBinding(region, LevelPrivate)}}
	k := sim.NewKernel()
	r := &fakeRunner{k: k, delay: 5}
	cfg := DefaultConfig(1)
	cfg.L2Size = 8 * 1024 // 128 lines
	cfg.L1Size = 1 * 1024
	h := New(k, cfg, energy.NewMeter(), reg, r)
	k.Go("core", func(p *sim.Proc) {
		// Touch 512 phantom lines read-only: evictions are clean.
		for i := 0; i < 512; i++ {
			h.Load(p, 0, region.Base+mem.Addr(i*64))
		}
		// Now write lines so evictions become writebacks.
		for i := 512; i < 1024; i++ {
			h.Store(p, 0, region.Base+mem.Addr(i*64), 1)
		}
	})
	k.Run()
	if r.count(CbEviction) == 0 {
		t.Fatal("no onEviction callbacks")
	}
	if r.count(CbWriteback) == 0 {
		t.Fatal("no onWriteback callbacks")
	}
	if err := h.CheckMorphInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.DRAM.Accesses() != 0 {
		t.Fatal("phantom evictions reached DRAM")
	}
}

func TestSharedMorphOnMissAtHomeBank(t *testing.T) {
	region := mem.Region{Name: "ph", Base: 0x4000_0000_0000, Size: 64 * 1024, Phantom: true}
	reg := &fakeRegistry{bindings: []Binding{phantomBinding(region, LevelShared)}}
	k, h, r := newMorphH(4, reg)
	r.fill = func(kind CallbackKind, a mem.Addr, line *mem.Line) {
		if kind == CbMiss {
			line.SetWord(0, 42)
		}
	}
	k.Go("core", func(p *sim.Proc) {
		h.AtomicAdd(p, 2, region.Base, 8)
		h.DrainRMOs(p, 2)
	})
	k.Run()
	if got := r.count(CbMiss); got != 1 {
		t.Fatalf("onMiss calls = %d, want 1", got)
	}
	// onMiss ran on the home tile of the address.
	if r.calls[0].tile != h.HomeTile(region.Base) {
		t.Fatalf("onMiss ran on tile %d, want home %d", r.calls[0].tile, h.HomeTile(region.Base))
	}
	if got := h.DebugReadWord(region.Base); got != 50 {
		t.Fatalf("identity+add = %d, want 50", got)
	}
}

func TestFlushRegionRunsCallbacksAndWaits(t *testing.T) {
	region := mem.Region{Name: "ph", Base: 0x4000_0000_0000, Size: 64 * 1024, Phantom: true}
	reg := &fakeRegistry{bindings: []Binding{phantomBinding(region, LevelPrivate)}}
	k, h, r := newMorphH(2, reg)
	var flushDone sim.Cycle
	k.Go("core", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			h.Store(p, 0, region.Base+mem.Addr(i*64), uint64(i))
		}
		h.FlushRegion(p, 0, region, LevelPrivate)
		flushDone = p.Now()
	})
	k.Run()
	if got := r.count(CbWriteback); got != 20 {
		t.Fatalf("flush triggered %d writebacks, want 20", got)
	}
	if flushDone == 0 {
		t.Fatal("flush never completed")
	}
	// All phantom lines gone from the private domain.
	k.Go("check", func(p *sim.Proc) {
		// Re-load triggers fresh onMiss.
		h.Load(p, 0, region.Base)
	})
	k.Run()
	if r.count(CbMiss) == 0 {
		t.Fatal("line still cached after flush")
	}
}

func TestCallbackLockSerializesAccess(t *testing.T) {
	region := mem.Region{Name: "ph", Base: 0x4000_0000_0000, Size: 4096, Phantom: true}
	reg := &fakeRegistry{bindings: []Binding{phantomBinding(region, LevelPrivate)}}
	k := sim.NewKernel()
	r := &fakeRunner{k: k, delay: 500} // slow callbacks
	h := New(k, DefaultConfig(1), energy.NewMeter(), reg, r)
	var first, second sim.Cycle
	k.Go("a", func(p *sim.Proc) {
		h.Load(p, 0, region.Base)
		first = p.Now()
	})
	k.Go("b", func(p *sim.Proc) {
		p.Sleep(10) // arrive mid-callback
		h.Load(p, 0, region.Base)
		second = p.Now()
	})
	k.Run()
	if r.count(CbMiss) != 1 {
		t.Fatalf("onMiss calls = %d, want 1 (second access must reuse the fill)", r.count(CbMiss))
	}
	// Whichever access triggered the fill, neither may complete before
	// the 500-cycle callback does: the address is locked.
	if first < 500 || second < 500 {
		t.Fatalf("access completed before the callback: first=%d second=%d", first, second)
	}
}

func TestEngineRestrictionPanics(t *testing.T) {
	region := mem.Region{Name: "ph", Base: 0x4000_0000_0000, Size: 4096, Phantom: true}
	reg := &fakeRegistry{bindings: []Binding{phantomBinding(region, LevelPrivate)}}
	k, h, _ := newMorphH(1, reg)
	panicked := false
	k.Go("engine", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		// A PRIVATE-level callback touching PRIVATE Morph data: forbidden.
		h.EngineLoadWord(p, 0, region.Base, LevelPrivate)
	})
	k.Run()
	if !panicked {
		t.Fatal("restriction violation did not panic")
	}
}

func TestEngineAccessAllowedOnPlainData(t *testing.T) {
	k, h := newH(2)
	h.DRAM.Store().WriteU64(0x9000, 321)
	var got uint64
	k.Go("engine", func(p *sim.Proc) {
		got = h.EngineLoadWord(p, 0, 0x9000, LevelPrivate)
		h.EngineStoreWord(p, 0, 0x9008, 111, LevelShared)
	})
	k.Run()
	if got != 321 {
		t.Fatalf("engine load = %d", got)
	}
	if h.DebugReadWord(0x9008) != 111 {
		t.Fatal("engine store lost")
	}
}

func TestPrefetcherIssuesOnSequentialStream(t *testing.T) {
	k, h := newH(1)
	k.Go("core", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			h.Load(p, 0, mem.Addr(0x20_0000+i*64))
		}
	})
	k.Run()
	if h.Metrics.Get("prefetch.issued") == 0 {
		t.Fatal("sequential stream trained no prefetches")
	}
}

func TestPrefetchReducesMissLatency(t *testing.T) {
	run := func(degree int) sim.Cycle {
		k := sim.NewKernel()
		cfg := DefaultConfig(1)
		cfg.PrefetchDegree = degree
		h := New(k, cfg, energy.NewMeter(), nil, nil)
		var end sim.Cycle
		k.Go("core", func(p *sim.Proc) {
			for i := 0; i < 256; i++ {
				h.Load(p, 0, mem.Addr(0x20_0000+i*64))
				p.Sleep(20) // compute between loads: prefetch can run ahead
			}
			end = p.Now()
		})
		k.Run()
		return end
	}
	with, without := run(4), run(0)
	if with >= without {
		t.Fatalf("prefetching did not help: %d vs %d cycles", with, without)
	}
}

func TestScaledConfigLegalGeometry(t *testing.T) {
	for _, f := range []int{1, 2, 4, 8, 16, 64} {
		cfg := ScaledConfig(4, f)
		k := sim.NewKernel()
		h := New(k, cfg, energy.NewMeter(), nil, nil)
		k.Go("c", func(p *sim.Proc) { h.Load(p, 0, 0x1000) })
		k.Run()
	}
}

// Property-ish: a random mixed workload with Morphs keeps data correct
// and invariants intact.
func TestRandomWorkloadInvariants(t *testing.T) {
	region := mem.Region{Name: "ph", Base: 0x4000_0000_0000, Size: 1 << 20, Phantom: true}
	reg := &fakeRegistry{bindings: []Binding{phantomBinding(region, LevelPrivate)}}
	k := sim.NewKernel()
	r := &fakeRunner{k: k, delay: 3}
	cfg := DefaultConfig(2)
	cfg.L2Size = 16 * 1024
	cfg.L1Size = 2 * 1024
	h := New(k, cfg, energy.NewMeter(), reg, r)
	shadow := make(map[mem.Addr]uint64)
	k.Go("core", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 3000; i++ {
			// Mix phantom and real addresses.
			var a mem.Addr
			if rng.Intn(2) == 0 {
				a = region.Base + mem.Addr(rng.Intn(2048)*64)
			} else {
				a = mem.Addr(0x40_0000 + rng.Intn(2048)*64)
			}
			if rng.Intn(2) == 0 && !region.Contains(a) {
				v := uint64(rng.Int63())
				h.Store(p, 0, a, v)
				shadow[a] = v
			} else {
				h.Load(p, 0, a)
			}
		}
	})
	k.Run()
	if err := h.CheckMorphInvariants(); err != nil {
		t.Fatal(err)
	}
	if blocked := k.Blocked(); len(blocked) != 0 {
		t.Fatalf("blocked procs: %v", blocked)
	}
	for a, v := range shadow {
		if got := h.DebugReadWord(a); got != v {
			t.Fatalf("addr %v = %d, want %d", a, got, v)
		}
	}
}
