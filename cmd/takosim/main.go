// Command takosim runs a single täkō experiment (one of the paper's
// tables or figures) and prints its rows.
//
// Usage:
//
//	takosim -list
//	takosim -exp fig13 [-full] [-j N] [-verify]
//	takosim -exp fig13 -metrics out.json
//	takosim -exp fig13 -trace out.trace.json -trace-format chrome
//	takosim -exp fig13 -attr -slowest 10
//	takosim -exp fig13 -http :6060
//	takosim -exp fig13 -ff 1000000 [-ff-auto]
//	takosim -exp fig25full -scale full
//	takosim -explore [-explore-runs N] [-explore-scenario substr]
//
// -ff N warms each baseline (NoTako) machine by running its first N
// core memory accesses through the analytical fast-forward engine — a
// reuse-distance collector and per-level hit-probability model, no
// event kernel — then seeds caches, TLBs, and the directory from the
// collector's steady-state occupancy and switches the event kernel on.
// -ff-auto instead ends warmup at analytical miss-ratio convergence
// (bounded by -ff when both are given). Cycle counts then cover only
// the simulated window; architectural counters cover only post-warmup
// traffic. -scale full switches scale-aware experiments (fig25full) to
// the paper-scale workload tier (uk-2002-class graphs, ≥100M edges,
// streamed generation).
//
// -explore runs the coherence interleaving explorer instead of an
// experiment: each seeded race scenario executes under systematically
// permuted same-cycle event orderings, and every schedule must satisfy
// the reference memory model and all hierarchy invariants. A nonzero
// exit reports a schedule that broke the model, with the choice prefix
// needed to replay it.
//
// -metrics writes every run's typed metrics snapshot (counters, gauges,
// latency histograms) as deterministic JSON. -trace streams structured
// events to a file: "chrome" produces a Chrome trace-event file loadable
// in https://ui.perfetto.dev (one process per simulated system, one
// track per component, nested callback spans), "jsonl" one JSON object
// per line. -trace-kinds filters events, -trace-min-dur drops spans
// shorter than the given cycle count to keep large traces focused.
//
// -attr arms transaction-level latency attribution: every state
// transition of the coherence machine is timestamped, so the metrics
// snapshot gains txn.state.cycles{kind,state} dwell histograms and a
// "where cycles go" decomposition prints after the experiment,
// conservation-checked against the transaction totals. -slowest K
// (implies -attr) additionally keeps the K slowest demand accesses per
// run with their full state timelines and prints the global top K.
// Attribution never changes simulated timing or architectural counts.
//
// -http ADDR serves live introspection while the experiment runs: run
// progress and scheduler load (/progress), metrics snapshots (/metrics),
// a transaction-coverage heatmap (/txn), and net/http/pprof under
// /debug/pprof/.
//
// -j fans the experiment's independent simulated systems across worker
// goroutines (each simulation stays single-threaded and deterministic;
// tables and metrics are byte-identical at any -j). Trace streams
// remain well-formed — sinks serialize writers — but spans from
// concurrently-running systems interleave in file order; sort by the
// process id (one per simulated system) when reading jsonl directly.
//
// -tile-par N partitions each simulation's event kernel into N
// tile-sharded queues merged by the global (cycle, sequence) key, so
// every output — tables, metrics, traces, explorer findings — is
// byte-identical at any width. It composes with -j (and with -explore,
// where -j parallelizes schedule evaluation): -j picks how many
// simulations run at once, -tile-par how each one's queue is organized.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tako/internal/exp"
	"tako/internal/hier"
	"tako/internal/introspect"
	"tako/internal/morphs"
	"tako/internal/oracle"
	"tako/internal/prof"
	"tako/internal/sched"
	"tako/internal/system"
	"tako/internal/trace"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		id      = flag.String("exp", "", "experiment id to run (e.g. fig6, table2)")
		full    = flag.Bool("full", false, "run at full (slow) scale instead of quick scale")
		ff      = flag.Uint64("ff", 0, "fast-forward the first N core memory accesses of each baseline machine analytically (reuse-distance warmup, no event kernel), then switch the event kernel on with warm caches/TLBs/directory")
		ffAuto  = flag.Bool("ff-auto", false, "end fast-forward as soon as the analytical per-level miss ratios converge (bounded by -ff when both are given)")
		scale   = flag.String("scale", "quick", "workload tier for scale-aware experiments (fig25full): quick or full (uk-2002-class, ≥100M edges)")
		jobs    = flag.Int("j", 0, "simulations to run in parallel (0 = GOMAXPROCS; output is identical at any -j)")
		tilePar = flag.Int("tile-par", 1, "tile queues to partition each simulation's event kernel into (1 = sequential single-queue kernel; output is identical at any width, and the flag composes with -j)")

		sharded      = flag.Bool("sharded", false, "host the machine (baseline or täkō) on the tile-sharded message-passing engine — one kernel per tile, cross-tile traffic as lookahead-respecting messages; cycle counts differ from the classic engine but are byte-identical at any -shard-workers")
		shardWorkers = flag.Int("shard-workers", 0, "worker goroutines per sharded simulation (≤1 = deterministic sequenced schedule; results identical at any count)")
		verify       = flag.Bool("verify", false, "run with coherence-freshness assertions and the periodic hierarchy-wide invariant checker (slower; panics on the first violation)")

		metricsOut  = flag.String("metrics", "", "write per-run metrics snapshots (JSON) to this file")
		traceOut    = flag.String("trace", "", "stream structured trace events to this file")
		traceFormat = flag.String("trace-format", "chrome", "trace format: chrome (Perfetto-loadable) or jsonl")
		traceKinds  = flag.String("trace-kinds", "", "comma-separated event-kind filters (e.g. 'cb.*,dram.*,l3.*'); empty records everything")
		traceMinDur = flag.Uint64("trace-min-dur", 0, "drop spans shorter than this many cycles (instants are kept)")

		attr     = flag.Bool("attr", false, "arm transaction-level latency attribution (per-state dwell histograms + the where-cycles-go table; never changes simulated timing)")
		slowest  = flag.Int("slowest", 0, "capture and print the K slowest demand accesses with their state timelines (implies -attr)")
		httpAddr = flag.String("http", "", "serve live introspection (progress, metrics, txn coverage, pprof) on this address while running (e.g. :6060)")

		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile (go tool pprof) to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		blockprofile = flag.String("blockprofile", "", "write a goroutine-blocking profile to this file at exit")
		mutexprofile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file at exit")

		explore         = flag.Bool("explore", false, "run the coherence interleaving explorer instead of an experiment (nonzero exit on any model-breaking schedule)")
		exploreRuns     = flag.Int("explore-runs", 0, "schedules to try per explorer scenario (0 = default budget)")
		exploreScenario = flag.String("explore-scenario", "", "restrict the explorer to scenarios whose name contains this substring")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile, *blockprofile, *mutexprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "takosim: %v\n", err)
		os.Exit(1)
	}

	sched.SetWorkers(*jobs)
	system.SetDefaultTilePar(*tilePar)
	system.SetDefaultSharded(*sharded, *shardWorkers)
	system.SetDefaultFastForward(*ff, *ffAuto)
	if err := exp.SetScale(*scale); err != nil {
		fmt.Fprintf(os.Stderr, "takosim: %v\n", err)
		os.Exit(2)
	}
	morphs.SetRunCache(true)

	if *verify {
		hier.SetVerifyDefaults(true, 128)
	}
	if *slowest > 0 {
		*attr = true
	}
	if *attr {
		hier.SetAttributionDefaults(true, *slowest)
	}

	var insp *introspect.Server
	if *httpAddr != "" {
		insp, err = introspect.Start(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "takosim: -http: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("introspection server on http://%s\n", insp.Addr())
		defer insp.Close()
	}

	if *explore {
		cfg := oracle.DefaultExploreConfig()
		cfg.Scenario = *exploreScenario
		if *exploreRuns > 0 {
			cfg.MaxRuns = *exploreRuns
		}
		// -j parallelizes schedule evaluation; -tile-par partitions each
		// schedule's kernel. Findings are identical at any combination.
		cfg.Workers = sched.Workers()
		cfg.TilePar = *tilePar
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
		start := time.Now()
		res, err := oracle.Explore(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "takosim: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("\nexplored %d scenarios, %d schedules (max %d choice points) in %s\n",
			len(res.Scenarios), res.Runs, res.ChoicePoints, time.Since(start).Round(time.Millisecond))
		stopProf()
		if n := len(res.Findings); n > 0 {
			fmt.Fprintf(os.Stderr, "takosim: %d schedule(s) broke the model\n", n)
			os.Exit(1)
		}
		fmt.Println("all schedules satisfied the reference model and invariants")
		return
	}

	if *list || *id == "" {
		fmt.Println("available experiments:")
		for _, e := range exp.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
			fmt.Printf("  %-12s paper: %s\n", "", e.Paper)
		}
		if *id == "" && !*list {
			os.Exit(2)
		}
		stopProf()
		return
	}

	e, ok := exp.ByID(*id)
	if !ok {
		fmt.Fprintf(os.Stderr, "takosim: unknown experiment %q (use -list)\n", *id)
		os.Exit(2)
	}

	// Attribution, coverage, slow-access, and introspection reporting all
	// read from captured run records, so any of them arms the capture.
	capturing := *metricsOut != "" || *traceOut != "" || *attr || *verify || *httpAddr != ""
	var traceFile *os.File
	if capturing {
		cfg := system.CaptureConfig{TraceMinSpan: *traceMinDur}
		for _, k := range strings.Split(*traceKinds, ",") {
			if k = strings.TrimSpace(k); k != "" {
				cfg.TraceKinds = append(cfg.TraceKinds, k)
			}
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "takosim: %v\n", err)
				os.Exit(1)
			}
			traceFile = f
			sink, err := trace.SinkFor(*traceFormat, f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "takosim: %v\n", err)
				os.Exit(2)
			}
			cfg.Sink = sink
		}
		system.StartCapture(cfg)
	}

	if insp != nil {
		insp.SetExperiments(1)
		insp.StartExperiment(e.ID)
	}
	fmt.Printf("== %s: %s ==\npaper: %s\n\n", e.ID, e.Title, e.Paper)
	start := time.Now()
	tbl, err := e.Run(!*full)
	if err != nil {
		fmt.Fprintf(os.Stderr, "takosim: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(tbl.String())
	fmt.Printf("\n(%s wall clock)\n", time.Since(start).Round(time.Millisecond))
	if insp != nil {
		insp.FinishExperiment(e.ID)
	}

	if capturing {
		captured, err := system.StopCapture()
		if err != nil {
			fmt.Fprintf(os.Stderr, "takosim: closing trace: %v\n", err)
			os.Exit(1)
		}
		if insp != nil {
			insp.PublishRuns(captured.Runs)
			insp.SetPhase("done")
		}
		if *attr {
			atbl, err := system.AttributionReport(captured.Runs)
			fmt.Printf("\n%s", atbl.String())
			if err != nil {
				fmt.Fprintf(os.Stderr, "takosim: %v\n", err)
				os.Exit(1)
			}
		}
		if *slowest > 0 {
			if stbl := system.SlowestReport(captured.Runs, *slowest); stbl != nil {
				fmt.Printf("\n%s", stbl.String())
			}
		}
		if *verify {
			edges := system.AggregateTxnEdges(captured.Runs)
			unvisited := hier.UnvisitedEdges(edges)
			fmt.Printf("\ntxn coverage: %d/%d legal edges visited\n",
				len(edges), len(hier.LegalEdges()))
			for _, u := range unvisited {
				fmt.Printf("  unvisited: %-10s %s -> %s\n", u.Kind, u.From, u.To)
			}
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "takosim: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("trace written to %s (%s)\n", *traceOut, *traceFormat)
		}
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "takosim: %v\n", err)
				os.Exit(1)
			}
			if err := system.WriteMetricsReport(f, captured.Runs); err == nil {
				err = f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "takosim: writing metrics: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("metrics written to %s (%d runs)\n", *metricsOut, len(captured.Runs))
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "takosim: writing profile: %v\n", err)
		os.Exit(1)
	}
}
