package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden snapshots")

// TestGoldenCaseStudies pins the rendered stats of the case-study
// drivers (quick configurations; fig25full's row is a warmup-on run, so
// fast-forward gets its own golden). The simulator is
// deterministic, so any diff is a behavior change: either a regression,
// or an intentional change to be re-recorded with
//
//	go test ./internal/exp -run Golden -update
func TestGoldenCaseStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, id := range []string{"fig6", "fig13", "fig16", "fig19", "fig21", "fig25full"} {
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			tbl, err := e.Run(true)
			if err != nil {
				t.Fatal(err)
			}
			got := tbl.String()
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s diverged from its golden snapshot\n--- got ---\n%s--- want ---\n%s", id, got, want)
			}
		})
	}
}
