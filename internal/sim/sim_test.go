package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelOrdersEventsByTime(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != 30 {
		t.Fatalf("clock = %d, want 30", k.Now())
	}
}

func TestKernelFIFOAtSameCycle(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events not FIFO: %v", got)
		}
	}
}

func TestKernelSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	k.At(5, func() {})
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.At(10, func() { ran++ })
	k.At(20, func() { ran++ })
	k.RunUntil(15)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if k.Now() != 15 {
		t.Fatalf("now = %d, want 15", k.Now())
	}
	k.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
}

func TestKernelDeterminism(t *testing.T) {
	run := func(seed int64) []uint64 {
		k := NewKernel()
		rng := rand.New(rand.NewSource(seed))
		var trace []uint64
		var add func(depth int)
		add = func(depth int) {
			if depth > 4 {
				return
			}
			n := rng.Intn(3) + 1
			for i := 0; i < n; i++ {
				d := Cycle(rng.Intn(50))
				k.After(d, func() {
					trace = append(trace, k.Now())
					add(depth + 1)
				})
			}
		}
		add(0)
		k.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	k := NewKernel()
	var t1, t2 Cycle
	k.Go("sleeper", func(p *Proc) {
		t1 = p.Now()
		p.Sleep(100)
		t2 = p.Now()
	})
	k.Run()
	if t1 != 0 || t2 != 100 {
		t.Fatalf("sleep timing: t1=%d t2=%d", t1, t2)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	k := NewKernel()
	var order []string
	mk := func(name string, period Cycle) {
		k.Go(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(period)
				order = append(order, name)
			}
		})
	}
	mk("a", 10)
	mk("b", 15)
	k.Run()
	// a wakes at 10,20,30; b at 15,30,45. At t=30 b's wake event was
	// scheduled first (at t=15 < t=20), so b precedes a.
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFutureWakesWaiters(t *testing.T) {
	k := NewKernel()
	f := NewFuture(k)
	var woke []Cycle
	for i := 0; i < 3; i++ {
		k.Go("w", func(p *Proc) {
			p.Wait(f)
			woke = append(woke, p.Now())
		})
	}
	k.At(50, f.Complete)
	k.Run()
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, w := range woke {
		if w != 50 {
			t.Fatalf("waiter woke at %d, want 50", w)
		}
	}
	if !f.Done() || f.When() != 50 {
		t.Fatalf("future state: done=%v when=%d", f.Done(), f.When())
	}
}

func TestFutureWaitAfterComplete(t *testing.T) {
	k := NewKernel()
	f := CompletedFuture(k)
	ran := false
	k.Go("w", func(p *Proc) {
		p.Wait(f)
		ran = true
		if p.Now() != 0 {
			t.Errorf("completed future advanced time to %d", p.Now())
		}
	})
	k.Run()
	if !ran {
		t.Fatal("process never ran")
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	k := NewKernel()
	f := NewFuture(k)
	f.Complete()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double complete")
		}
	}()
	f.Complete()
}

func TestFutureWatch(t *testing.T) {
	k := NewKernel()
	f := NewFuture(k)
	var at Cycle
	f.Watch(func() { at = k.Now() })
	f.CompleteAt(77)
	k.Run()
	if at != 77 {
		t.Fatalf("watch ran at %d, want 77", at)
	}
	// Watch on an already-complete future fires too.
	ran := false
	f.Watch(func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("late watch never fired")
	}
}

func TestBlockedReportsDeadlock(t *testing.T) {
	k := NewKernel()
	f := NewFuture(k) // never completed
	k.Go("stuck", func(p *Proc) { p.Wait(f) })
	k.Go("fine", func(p *Proc) { p.Sleep(1) })
	k.Run()
	blocked := k.Blocked()
	if len(blocked) != 1 || blocked[0] != "stuck" {
		t.Fatalf("blocked = %v, want [stuck]", blocked)
	}
}

func TestWaitAll(t *testing.T) {
	k := NewKernel()
	f1, f2 := NewFuture(k), NewFuture(k)
	f1.CompleteAt(10)
	f2.CompleteAt(30)
	var end Cycle
	k.Go("w", func(p *Proc) {
		p.WaitAll(f1, f2)
		end = p.Now()
	})
	k.Run()
	if end != 30 {
		t.Fatalf("WaitAll finished at %d, want 30", end)
	}
}

// Property: for any batch of (delay, id) pairs, the kernel executes them
// sorted by (time, insertion order).
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		type rec struct {
			when Cycle
			seq  int
		}
		var got []rec
		for i, d := range delays {
			i, d := i, Cycle(d)
			k.At(d, func() { got = append(got, rec{k.Now(), i}) })
		}
		k.Run()
		if len(got) != len(delays) {
			return false
		}
		sorted := sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].when != got[j].when {
				return got[i].when < got[j].when
			}
			return got[i].seq < got[j].seq
		})
		return sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
