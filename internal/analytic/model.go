package analytic

import (
	"fmt"
	"math"
)

// Geom describes one cache level's geometry for the analytical model.
type Geom struct {
	Sets int
	Ways int
}

// HitProb converts an LRU stack distance into a hit probability for a
// set-associative LRU cache:
//
//   - cold accesses never hit;
//   - d < Ways hits with certainty in any geometry (fewer intervening
//     distinct lines than ways means the line cannot have been evicted,
//     whichever sets the intervenors map to);
//   - a single set is exactly fully-associative LRU (hit iff d < Ways);
//   - otherwise each of the d intervening lines lands in the access's
//     set independently with probability 1/Sets (exact for hash-random
//     placement; see docs/performance.md for where this approximation
//     is honest and where it is not). The line survives iff fewer than
//     Ways intervenors landed in its set:
//     P(hit) = P(X ≤ Ways−1), X ~ Binomial(d, 1/Sets).
//     (Binomial, not its Poisson limit: the binomial's lower variance
//     matters right at the capacity knife edge, where the Poisson tail
//     visibly under-predicts hits.)
func (g Geom) HitProb(dist int, cold bool) float64 {
	if cold || g.Ways <= 0 {
		return 0
	}
	if dist < g.Ways {
		return 1
	}
	if g.Sets <= 1 {
		return 0
	}
	mean := float64(dist) / float64(g.Sets)
	if mean > float64(g.Ways)*4+64 {
		return 0 // tail is numerically zero
	}
	// P(X <= Ways-1) for X ~ Binomial(dist, 1/Sets), accumulated
	// iteratively from P(X=0) = (1-p)^dist.
	p := 1 / float64(g.Sets)
	odds := p / (1 - p)
	term := math.Exp(float64(dist) * math.Log1p(-p))
	sum := term
	for k := 1; k < g.Ways; k++ {
		term *= float64(dist-k+1) / float64(k) * odds
		sum += term
	}
	return sum
}

// Lines returns the capacity in lines.
func (g Geom) Lines() int { return g.Sets * g.Ways }

// Latencies are the per-level access costs used for the analytical
// latency estimate (mirrors hier.Config's tag+data latencies plus an
// average NoC + DRAM cost for the shared levels).
type Latencies struct {
	L1      float64
	L2      float64
	L3      float64
	Mem     float64
	TLBWalk float64
}

// Model accumulates expected per-level hit/miss counts from raw reuse
// distances. Per-level counter semantics mirror the simulator exactly:
// L2 counters only see accesses that missed L1; L3 counters only see
// accesses that missed both private levels.
type Model struct {
	L1, L2 Geom // private levels; geometry for the collector's content filters
	L3     Geom // shared, scored over the private-miss-filtered stream
	TLB    int  // fully-associative entries per tile
	Lat    Latencies

	acc      float64
	l1h      float64
	l2h, l2m float64
	l3h, l3m float64
	tlbm     float64
	lat      float64

	l3memo []float64 // HitProb cache by distance; -1 = not yet computed
}

// l3memoSize bounds the HitProb memo (512 KB); distances beyond it fall
// through to the direct evaluation, which for any realistic geometry is
// already in the cheap tail-is-zero regime.
const l3memoSize = 1 << 16

// l3HitProb memoizes Geom.HitProb for the shared level: Observe calls it
// once per private-miss access, distances repeat heavily, and each
// binomial-CDF evaluation costs an Exp/Log1p pair.
func (m *Model) l3HitProb(dist int, cold bool) float64 {
	if cold || dist >= l3memoSize {
		return m.L3.HitProb(dist, cold)
	}
	if m.l3memo == nil {
		m.l3memo = make([]float64, l3memoSize)
		for i := range m.l3memo {
			m.l3memo[i] = -1
		}
	}
	if p := m.l3memo[dist]; p >= 0 {
		return p
	}
	p := m.L3.HitProb(dist, false)
	m.l3memo[dist] = p
	return p
}

// Observe folds one access's reuse distances into the expectations.
// The sample must carry filtered-stream observations (the collector's
// SetFilters must be armed). The private levels are counted exactly:
// the collector's content filters reproduce the simulator's inclusive
// L1/L2 (including back-invalidation on L2 eviction), so an access hits
// L1 iff it did not reach L2, and hits L2 iff it did not reach L3. Only
// the shared L3 — whose banked global state the collector does not
// replicate — is probabilistic, scored by the binomial hit model over
// the private-miss-filtered stack distance.
func (m *Model) Observe(s Sample) {
	m.acc++
	lat := m.Lat.L1
	if !s.ReachL2 {
		m.l1h++
	} else {
		lat += m.Lat.L2
		if !s.ReachL3 {
			m.l2h++
		} else {
			m.l2m++
			p3 := m.l3HitProb(s.L3Dist, s.L3Cold)
			m.l3h += p3
			m.l3m += 1 - p3
			lat += m.Lat.L3 + (1-p3)*m.Lat.Mem
		}
	}

	if s.PageCold || s.PageDist >= m.TLB {
		m.tlbm++
		lat += m.Lat.TLBWalk
	}
	m.lat += lat
}

// Estimate is the analytical prediction for a stream of accesses.
type Estimate struct {
	Accesses uint64

	// Miss ratios per level, each over the accesses that reached that
	// level (matching the simulator's Stats semantics). TLBMiss is over
	// all accesses.
	L1Miss  float64
	L2Miss  float64
	L3Miss  float64
	TLBMiss float64

	// L2Reach/L3Reach are the fractions of all accesses that reach each
	// level. A level's miss ratio is only meaningful when traffic
	// actually reaches it — validation harnesses use the reach to skip
	// untrafficked levels, whose ratios are quotients of near-zero
	// expectations.
	L2Reach float64
	L3Reach float64

	// AvgLat is the expected latency per access in cycles.
	AvgLat float64
}

// Estimate summarizes the accumulated expectations.
func (m *Model) Estimate() Estimate {
	e := Estimate{Accesses: uint64(m.acc)}
	if m.acc == 0 {
		return e
	}
	e.L1Miss = (m.acc - m.l1h) / m.acc
	if l2acc := m.l2h + m.l2m; l2acc > 0 {
		e.L2Miss = m.l2m / l2acc
		e.L2Reach = l2acc / m.acc
	}
	if l3acc := m.l3h + m.l3m; l3acc > 0 {
		e.L3Miss = m.l3m / l3acc
		e.L3Reach = l3acc / m.acc
	}
	e.TLBMiss = m.tlbm / m.acc
	e.AvgLat = m.lat / m.acc
	return e
}

// DeltaEstimate summarizes only the accesses observed since snap, an
// earlier copy of the model (Model is a plain value; copy it to
// snapshot). Fast-forward auto mode compares consecutive chunk deltas
// to detect miss-ratio convergence.
func (m *Model) DeltaEstimate(snap *Model) Estimate {
	d := *m
	d.acc -= snap.acc
	d.l1h -= snap.l1h
	d.l2h -= snap.l2h
	d.l2m -= snap.l2m
	d.l3h -= snap.l3h
	d.l3m -= snap.l3m
	d.tlbm -= snap.tlbm
	d.lat -= snap.lat
	return d.Estimate()
}

func (e Estimate) String() string {
	return fmt.Sprintf("analytic.Estimate{acc:%d L1:%.4f L2:%.4f L3:%.4f TLB:%.4f lat:%.2f}",
		e.Accesses, e.L1Miss, e.L2Miss, e.L3Miss, e.TLBMiss, e.AvgLat)
}
