package morphs

import (
	"testing"

	"tako/internal/hier"
)

func smallPHIParams() PHIParams {
	p := DefaultPHIParams()
	p.V, p.E = 16*1024, 160*1024
	p.Tiles, p.Threads = 8, 8
	return p
}

func TestPHIShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	hier.SetVerifyDefaults(true, 0)
	defer hier.SetVerifyDefaults(false, 0)
	res, err := RunPHIAll(smallPHIParams())
	if err != nil {
		t.Fatal(err)
	}
	base := res[PHIBaseline]
	ub := res[PHIUB]
	tako := res[PHITako]
	ideal := res[PHIIdeal]
	for _, r := range []Result{base, ub, tako, ideal} {
		t.Logf("%-9s %8d cycles  %12.0f pJ  dram=%6d  phases=%v  extra[inplace]=%v binned=%v",
			r.Variant, r.Cycles, r.EnergyPJ, r.DRAMAccesses, r.DRAMPhase,
			r.Extra["updates.inplace"], r.Extra["updates.binned"])
	}
	t.Logf("speedups: ub=%.2fx tako=%.2fx ideal=%.2fx; energy saving tako=%.0f%%",
		ub.Speedup(base), tako.Speedup(base), ideal.Speedup(base), 100*tako.EnergySaving(base))

	// Fig 13 shape: täkō > UB > baseline; ideal ≥ täkō (close).
	if ub.Speedup(base) < 1.2 {
		t.Errorf("UB speedup %.2fx, want ≥1.2x", ub.Speedup(base))
	}
	if tako.Cycles >= ub.Cycles {
		t.Errorf("täkō (%d) should beat UB (%d)", tako.Cycles, ub.Cycles)
	}
	gap := (float64(tako.Cycles) - float64(ideal.Cycles)) / float64(ideal.Cycles)
	if gap > 0.10 {
		t.Errorf("täkō %.1f%% from ideal, want close (onWriteback off critical path)", 100*gap)
	}
	// Fig 14 shape: DRAM accesses baseline > UB > täkō.
	if ub.DRAMAccesses >= base.DRAMAccesses {
		t.Errorf("UB DRAM (%d) should be below baseline (%d)", ub.DRAMAccesses, base.DRAMAccesses)
	}
	if tako.DRAMAccesses >= ub.DRAMAccesses {
		t.Errorf("täkō DRAM (%d) should be below UB (%d)", tako.DRAMAccesses, ub.DRAMAccesses)
	}
	// PHI's policy actually exercises both paths.
	if tako.Extra["updates.inplace"] == 0 || tako.Extra["updates.binned"] == 0 {
		t.Error("PHI policy did not exercise both in-place and binned paths")
	}
	// Energy: täkō saves vs baseline.
	if tako.EnergySaving(base) <= 0 {
		t.Errorf("täkō energy saving %.0f%%", 100*tako.EnergySaving(base))
	}
}
