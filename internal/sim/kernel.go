// Package sim provides a deterministic discrete-event simulation kernel
// and a blocking-process model on top of it.
//
// The kernel orders events by (time, insertion sequence), so two runs of
// the same program produce identical schedules. Simulated software threads
// (Proc) run as goroutines, but exactly one runs at a time: the kernel
// resumes a process and waits for it to park again before dispatching the
// next event, preserving determinism.
package sim

import "container/heap"

// Cycle is a point in simulated time, measured in clock cycles.
type Cycle = uint64

type event struct {
	when Cycle
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is a deterministic discrete-event simulator clock and queue.
// The zero value is not usable; create kernels with NewKernel.
type Kernel struct {
	now    Cycle
	seq    uint64
	queue  eventHeap
	procs  []*Proc
	events uint64
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated cycle.
func (k *Kernel) Now() Cycle { return k.now }

// Events returns the number of events executed so far.
func (k *Kernel) Events() uint64 { return k.events }

// At schedules fn to run at the given absolute cycle. Scheduling in the
// past panics: it indicates a modeling bug.
func (k *Kernel) At(when Cycle, fn func()) {
	if when < k.now {
		panic("sim: scheduling event in the past")
	}
	k.seq++
	heap.Push(&k.queue, event{when: when, seq: k.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (k *Kernel) After(delay Cycle, fn func()) {
	k.At(k.now+delay, fn)
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(event)
	k.now = e.when
	k.events++
	e.fn()
	return true
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (k *Kernel) RunUntil(t Cycle) {
	for len(k.queue) > 0 && k.queue[0].when <= t {
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.queue) }

// Blocked returns the names of processes that are parked (waiting) right
// now. After Run returns, a non-empty result means those processes are
// deadlocked: no event will ever wake them.
func (k *Kernel) Blocked() []string {
	var out []string
	for _, p := range k.procs {
		if !p.done && p.started {
			out = append(out, p.name)
		}
	}
	return out
}
