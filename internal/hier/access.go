package hier

import (
	"fmt"

	"tako/internal/cache"
	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/sim"
)

// accessOpts parameterizes one memory access.
type accessOpts struct {
	write    bool
	engine   bool  // engine-issued: fills the engine L1d, trrîp demotion
	viaL2    bool  // engine access routed through the tile's L2 (private callbacks)
	cbLevel  Level // level of the issuing callback (engine accesses only)
	prefetch bool  // hardware prefetch: fills the L2 only
}

// Load performs a demand load of the 8-byte word containing a from
// tileID's core, returning its value. Must be called from a sim.Proc.
func (h *Hierarchy) Load(p *sim.Proc, tileID int, a mem.Addr) uint64 {
	if h.ffGate(p) {
		return h.ffLoad(p, tileID, a)
	}
	start := p.Now()
	ls := h.access(p, tileID, a, accessOpts{})
	v := ls.Data.U64(a.Offset() &^ 7)
	if h.obs != nil {
		h.obs.LoadCommitted(tileID, a, v)
	}
	lat := p.Now() - start
	if h.sharded {
		// Per-tile distribution, merged into LoadLat by FinishStats:
		// stats.Dist is not safe for concurrent observation.
		h.tiles[tileID].loadLat.Observe(float64(lat))
	} else {
		h.LoadLat.Observe(float64(lat))
	}
	h.hot.loadLat.Observe(lat)
	h.tracerAt(tileID).EmitSpan(start, p.Now(), h.comp.core[tileID], "load", "")
	return v
}

// Store writes the 8-byte word containing a from tileID's core.
func (h *Hierarchy) Store(p *sim.Proc, tileID int, a mem.Addr, v uint64) {
	if h.ffGate(p) {
		h.ffStore(p, tileID, a, v)
		return
	}
	ls := h.access(p, tileID, a, accessOpts{write: true})
	ls.Data.SetU64(a.Offset()&^7, v)
	ls.Dirty = true
	if h.obs != nil {
		h.obs.StoreCommitted(tileID, a, v)
	}
	h.event("store")
}

// LoadLine reads the full line containing a (a vector load).
func (h *Hierarchy) LoadLine(p *sim.Proc, tileID int, a mem.Addr) mem.Line {
	if h.ffGate(p) {
		return h.ffLoadLine(p, tileID, a)
	}
	ls := h.access(p, tileID, a, accessOpts{})
	if h.obs != nil {
		h.obs.LineLoaded(tileID, a, &ls.Data)
	}
	return ls.Data
}

// StoreLine writes the full line containing a (a vector store).
func (h *Hierarchy) StoreLine(p *sim.Proc, tileID int, a mem.Addr, line *mem.Line) {
	if h.ffGate(p) {
		h.ffStoreLine(p, tileID, a, line, false)
		return
	}
	ls := h.access(p, tileID, a, accessOpts{write: true})
	ls.Data = *line
	ls.Dirty = true
	if h.obs != nil {
		h.obs.LineStored(tileID, a, line, false)
	}
	h.event("storeline")
}

// StoreLineNT performs a non-temporal full-line store: the line is
// written directly to the shared level (or memory) without
// read-for-ownership or cache allocation, like MOVNTDQ streaming stores.
// Update-batching implementations stream their bins this way.
//
// The transaction takes the home-line lock before touching the
// directory: a fetch in flight under the lock may be about to install
// fresh sharers, and invalidating before it completes would let those
// copies survive the supersede and go stale.
func (h *Hierarchy) StoreLineNT(p *sim.Proc, tileID int, a mem.Addr, line *mem.Line) {
	if h.ffGate(p) {
		h.ffStoreLine(p, tileID, a, line, true)
		return
	}
	if h.sharded {
		h.ntStoreSharded(p, tileID, a, line)
		return
	}
	la := a.Line()
	home := h.HomeTile(la)
	x := h.getTxn(h.tiles[tileID])
	x.h, x.p, x.kind = h, p, kindNTStore
	x.tileID, x.a, x.la = tileID, a, la
	x.home, x.hm = home, h.tiles[home]
	x.ext = line
	x.run()
	h.putTxn(x)
}

// AtomicAddLocal performs a read-modify-write add in the local cache
// (acquiring exclusive ownership like an ordinary atomic fetch-add).
// Baselines without remote memory operations update shared data this
// way, paying coherence ping-pong under contention.
func (h *Hierarchy) AtomicAddLocal(p *sim.Proc, tileID int, a mem.Addr, delta uint64) {
	if h.ffGate(p) {
		h.ffAtomicRMO(p, tileID, a, RMOAdd, delta)
		return
	}
	ls := h.access(p, tileID, a, accessOpts{write: true})
	off := a.Offset() &^ 7
	old := ls.Data.U64(off)
	ls.Data.SetU64(off, old+delta)
	ls.Dirty = true
	if h.obs != nil {
		h.obs.RMOCommitted(tileID, a, RMOAdd, delta, old, old+delta)
	}
	h.event("atomic.add")
}

// AtomicRMOLocal performs a commutative read-modify-write with operator
// op in the local cache (ordinary atomic semantics: the line migrates).
func (h *Hierarchy) AtomicRMOLocal(p *sim.Proc, tileID int, a mem.Addr, op RMOOp, v uint64) {
	if h.ffGate(p) {
		h.ffAtomicRMO(p, tileID, a, op, v)
		return
	}
	ls := h.access(p, tileID, a, accessOpts{write: true})
	off := a.Offset() &^ 7
	old := ls.Data.U64(off)
	ls.Data.SetU64(off, op.apply(old, v))
	ls.Dirty = true
	if h.obs != nil {
		h.obs.RMOCommitted(tileID, a, op, v, old, op.apply(old, v))
	}
	h.event("atomic.rmo")
}

// AtomicExchange swaps the word at a with v locally (LL/SC-style, §8.2),
// returning the previous value.
func (h *Hierarchy) AtomicExchange(p *sim.Proc, tileID int, a mem.Addr, v uint64) uint64 {
	if h.ffGate(p) {
		return h.ffAtomicExchange(p, tileID, a, v)
	}
	ls := h.access(p, tileID, a, accessOpts{write: true})
	off := a.Offset() &^ 7
	old := ls.Data.U64(off)
	ls.Data.SetU64(off, v)
	ls.Dirty = true
	if h.obs != nil {
		h.obs.ExchangeCommitted(tileID, a, v, old)
	}
	h.event("atomic.xchg")
	return old
}

// access is the private-domain access path: L1 → L2 → shared level. It
// returns the L1 (or engine-L1) line holding a, with write permission
// when requested. The returned pointer is valid until the next sleep.
//
// The access runs as a kindAccess transaction (txn.go); the lifecycle —
// lock waits, probes, miss allocation, fetch, fill, post-install
// validation — is encoded in the txnLegal state machine rather than an
// inline retry loop.
func (h *Hierarchy) access(p *sim.Proc, tileID int, a mem.Addr, o accessOpts) *cache.LineState {
	t := h.tiles[tileID]
	la := a.Line()
	h.checkEngineRestriction(tileID, a, o)
	start := p.Now() // pre-translation, so attribution covers the TLB walk
	// Engines translate through their own TLB/rTLB (charged at the
	// engine port); core accesses use the core dTLB.
	if !o.engine {
		if lat, hit := t.dtlb.Lookup(a); !hit {
			p.Sleep(lat)
		}
	}
	h.Meter.Add(energy.TLBAccess, 1)
	x := h.getTxn(t)
	x.h, x.p, x.kind = h, p, kindAccess
	x.tileID, x.a, x.la, x.o = tileID, a, la, o
	x.t = t
	x.top = t.l1
	if o.engine {
		x.top = t.el1
	}
	if h.attr != nil {
		// Re-seed the clocks at the pre-TLB start: translation time then
		// lands in the Idle state and the access total matches Load's
		// recorded latency window exactly (the conservation invariant).
		x.stamp(start)
		// Sharded builds track too: each tile offers into its own slow
		// ring (tile.slow), merged deterministically in SlowestAccesses.
		x.track = !o.engine && !o.prefetch
	}
	x.run()
	ls := x.result
	h.putTxn(x)
	return ls
}

// snoopSibling keeps the core and engine L1ds within a tile coherent: a
// write in one invalidates the other's copy (clustered coherence, §4.3).
func (h *Hierarchy) snoopSibling(tileID int, la mem.Addr, writerIsEngine bool) {
	t := h.tiles[tileID]
	sib := t.el1
	if writerIsEngine {
		sib = t.l1
	}
	if ls, ok := sib.ExtractLine(la); ok && ls.Dirty {
		if ls2 := t.l2.Lookup(la); ls2 != nil {
			ls2.Data = ls.Data
			ls2.Dirty = true
		}
	}
}

// checkEngineRestriction enforces täkō's callback restriction (§4.3):
// callbacks may not access data with a Morph registered at the same or
// a higher level of the hierarchy. Violations are programming errors and
// panic with a diagnostic.
func (h *Hierarchy) checkEngineRestriction(tileID int, a mem.Addr, o accessOpts) {
	if !o.engine || h.registry == nil {
		return
	}
	b, ok := h.registry.Binding(tileID, a)
	if !ok {
		return
	}
	if o.cbLevel == LevelShared || (o.cbLevel == LevelPrivate && b.Level == LevelPrivate) {
		panic(fmt.Sprintf(
			"täkō restriction violated (§4.3): %v-level callback on tile %d accessed %v, which has a Morph registered at %v",
			o.cbLevel, tileID, a, b.Level))
	}
}

// lockHomeLine serializes with all home-side operations on la (fetches,
// RMOs, other upgrades), returning the token to pass to unlockHomeLine.
// Token-in/token-out (rather than a returned unlock closure) keeps this
// per-access path allocation-free.
func (h *Hierarchy) lockHomeLine(p *sim.Proc, la mem.Addr) uint64 {
	hm := h.tiles[h.HomeTile(la)]
	for hm.l3pending.waitIfLocked(p, la) {
	}
	return hm.l3pending.lock(la)
}

// unlockHomeLine releases the home-line lock taken by lockHomeLine and
// wakes any queued waiters. Home-line locks are never superseded (every
// taker waits its turn), so a stale token here is a protocol bug and
// panics with the line, home tile, cycle, and both tokens.
func (h *Hierarchy) unlockHomeLine(la mem.Addr, tok uint64) {
	hm := h.tiles[h.HomeTile(la)]
	h.completeLock(hm.K, hm.l3pending.mustUnlock(la, tok))
}

// upgrade obtains write permission for la on tileID: if other tiles hold
// copies, they are invalidated through the home directory. It runs as a
// kindUpgrade transaction, serialized through the home-line lock: a
// concurrent fetch may have copied data that is still in flight, and its
// copy must be visible for invalidation before ownership changes hands.
func (h *Hierarchy) upgrade(p *sim.Proc, tileID int, la mem.Addr) {
	if h.sharded {
		h.upgradeSharded(p, tileID, la)
		return
	}
	home := h.HomeTile(la)
	x := h.getTxn(h.tiles[tileID])
	x.h, x.p, x.kind = h, p, kindUpgrade
	x.tileID, x.a, x.la = tileID, la, la
	x.home, x.hm = home, h.tiles[home]
	x.run()
	h.putTxn(x)
}

// fetchFromHome performs the shared-level access for a private miss as a
// kindHomeFetch transaction: request to the home bank, L3 lookup (with
// SHARED Morph onMiss or DRAM fill on miss), directory action, and the
// data response into out.
func (h *Hierarchy) fetchFromHome(p *sim.Proc, tileID int, a mem.Addr, o accessOpts, out *mem.Line) {
	la := a.Line()
	home := h.HomeTile(a)
	x := h.getTxn(h.tiles[tileID])
	x.h, x.p, x.kind = h, p, kindHomeFetch
	x.tileID, x.a, x.la, x.o = tileID, a, la, o
	x.home, x.hm = home, h.tiles[home]
	x.homeStart, x.spanKind = p.Now(), "l3.hit"
	x.tracing = h.tracer != nil
	x.run()
	*out = x.data
	h.putTxn(x)
}

// dirAction performs the directory side of a fetch: invalidations for
// writes, dirty-owner downgrades for reads. ls3 may be nil when the line
// bypassed the L3 (its fill was immediately victimized); dirty data
// merged from private copies is then written to memory and returned so
// the requester still observes it. Functional changes are immediate;
// latency is slept.
func (h *Hierarchy) dirAction(p *sim.Proc, tileID int, la mem.Addr, o accessOpts, ls3 *cache.LineState) (merged *mem.Line) {
	home := h.HomeTile(la)
	e := h.dirOf(la)
	var extra sim.Cycle
	if o.write {
		for s := 0; s < h.cfg.Tiles; s++ {
			if s == tileID || !e.has(s) {
				continue
			}
			data, dirty, present := h.invalidatePrivate(s, la)
			if present {
				h.hot.cohInvalidations.Inc()
				if dirty {
					site := ""
					if h.freshChecks {
						site = fmt.Sprintf("dirAction-inval-merge(from=%d)", s)
					}
					merged = h.applyDirtyMerge(ls3, la, data, site)
				}
				lat := h.Mesh.Transfer(home, s, 8) + h.Mesh.Transfer(s, home, 8)
				if lat > extra {
					extra = lat
				}
			}
			e.remove(s)
		}
		e.add(tileID)
		e.owner = tileID
		if h.freshChecks {
			h.debugLogHome(la, fmt.Sprintf("dirAction-write-grant(req=%d)", tileID), 0)
		}
	} else {
		if e.owner >= 0 && e.owner != tileID {
			data, dirty := h.downgradeOwner(e.owner, la)
			if dirty {
				site := ""
				if h.freshChecks {
					site = fmt.Sprintf("dirAction-downgrade(owner=%d,req=%d)", e.owner, tileID)
				}
				merged = h.applyDirtyMerge(ls3, la, data, site)
			}
			h.hot.cohDowngrades.Inc()
			extra = h.Mesh.Transfer(home, e.owner, 8) + h.Mesh.Transfer(e.owner, home, mem.LineSize)
			e.owner = -1
		}
		e.add(tileID)
	}
	h.event("dirAction")
	if extra > 0 {
		p.Sleep(extra)
	}
	return merged
}

// applyDirtyMerge applies dirty data recovered from a private copy to the
// home line (or memory when the fill bypassed the L3) and returns a copy
// so the requester still observes the update. site is the pre-formatted
// freshness-log label ("" when fresh checks are off).
func (h *Hierarchy) applyDirtyMerge(ls3 *cache.LineState, la mem.Addr, data mem.Line, site string) *mem.Line {
	if ls3 != nil {
		ls3.Data = data
		ls3.Dirty = true
	} else {
		h.dramAt(h.HomeTile(la)).WriteLineNoWait(la, &data)
	}
	d := data
	if h.freshChecks {
		h.debugLogHome(la, site, data.U64(16))
	}
	return &d
}

// completeLock wakes the waiters parked on a released line lock (nil when
// none materialized) and recycles the pool-originated future into k, the
// kernel owning the lock table (per-tile on a sharded build). Futures
// stored by lockWith (callback locks, which escape to flush waiters) come
// from NewFuture and are left untouched by the recycler.
func (h *Hierarchy) completeLock(k *sim.Kernel, f *sim.Future) {
	if f == nil {
		return
	}
	f.Complete()
	k.RecycleFuture(f)
}
