package sim

import (
	"math/rand"
	"testing"
)

// TestHeapOrdersLikeReference drives the 4-ary heap with random
// schedules and checks events pop in (time, insertion-sequence) order —
// the determinism contract the old container/heap implementation
// provided.
func TestHeapOrdersLikeReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		k := NewKernel()
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			k.push(0, event{when: Cycle(rng.Intn(32)), seq: uint64(i), fn: func() {}})
		}
		var lastWhen Cycle
		var lastSeq uint64
		for i := 0; i < n; i++ {
			e := k.pop(0)
			if i > 0 && (e.when < lastWhen || (e.when == lastWhen && e.seq < lastSeq)) {
				t.Fatalf("trial %d: popped (%d,%d) after (%d,%d)", trial, e.when, e.seq, lastWhen, lastSeq)
			}
			lastWhen, lastSeq = e.when, e.seq
		}
		if len(k.queues[0]) != 0 {
			t.Fatalf("queue not drained: %d left", len(k.queues[0]))
		}
	}
}

// TestPopZeroesVacatedSlots checks pop clears the backing array behind
// the shrinking queue, so completed events' closures (and whatever they
// captured) are GC-able rather than pinned until the kernel dies.
func TestPopZeroesVacatedSlots(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 100; i++ {
		big := make([]byte, 1024)
		k.After(Cycle(i), func() { _ = big })
	}
	k.Run()
	backing := k.queues[0][:cap(k.queues[0])]
	for i, e := range backing {
		if e.fn != nil || e.proc != nil || e.future != nil || e.when != 0 || e.seq != 0 {
			t.Fatalf("slot %d not zeroed after pop: %+v", i, e)
		}
	}
}

// TestScheduleAllocsPerEvent is the alloc-count regression gate for the
// kernel hot path: scheduling and executing a pre-built callback must
// not allocate (the old container/heap path boxed every event into an
// interface{}), and waking a parked process must not allocate a closure.
func TestScheduleAllocsPerEvent(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Warm the queue's backing array so growth isn't counted.
	for i := 0; i < 1024; i++ {
		k.After(1, fn)
	}
	k.Run()
	const events = 1000
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < events; i++ {
			k.After(Cycle(i%7), fn)
		}
		k.Run()
	})
	if perEvent := avg / events; perEvent > 0.01 {
		t.Fatalf("scheduling allocates %.3f allocs/event, want 0", perEvent)
	}
}

// TestFutureWaiterSliceReuse checks completed futures return their
// waiter arrays to the kernel pool and later futures reuse them.
func TestFutureWaiterSliceReuse(t *testing.T) {
	k := NewKernel()
	k.Go("waiter", func(p *Proc) {
		// Warm-up: the first future allocates its waiter array...
		f := NewFuture(k)
		f.CompleteAt(10)
		p.Wait(f)
		// ...then steady-state future churn must stop allocating waiter
		// slices (one Future alloc per iteration is outside this loop).
		futures := make([]*Future, 64)
		for i := range futures {
			futures[i] = NewFuture(k)
		}
		allocs := testing.AllocsPerRun(5, func() {
			for _, f := range futures {
				*f = Future{k: k}
				f.CompleteAt(p.Now() + 1)
				p.Wait(f)
			}
		})
		if allocs > 1 {
			t.Errorf("future wait/complete cycle allocates %.1f per 64 futures, want ≤1", allocs)
		}
	})
	k.Run()
}

// BenchmarkKernelEventChain measures raw event throughput and
// allocs/event on a pure callback chain (no processes): the hot loop is
// push, pop, and the callback itself.
func BenchmarkKernelEventChain(b *testing.B) {
	k := NewKernel()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			k.After(1, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.After(1, step)
	k.Run()
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkKernelFanout measures a wider queue: 64 interleaved event
// chains, so push/pop traverse a few heap levels per event.
func BenchmarkKernelFanout(b *testing.B) {
	k := NewKernel()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			k.After(Cycle(1+n%13), step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < 64 && i < b.N; i++ {
		k.After(Cycle(i), step)
	}
	k.Run()
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkProcSleepWake measures the process wake path: park, timer
// event, dispatch — the cycle every simulated stall goes through.
func BenchmarkProcSleepWake(b *testing.B) {
	k := NewKernel()
	k.Go("sleeper", func(p *Proc) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	k.Run()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "wakes/s")
}

// BenchmarkFutureCompleteWait measures the future rendezvous both sides:
// one process completing futures another waits on.
func BenchmarkFutureCompleteWait(b *testing.B) {
	k := NewKernel()
	k.Go("producer-consumer", func(p *Proc) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := NewFuture(k)
			f.CompleteAt(p.Now() + 1)
			p.Wait(f)
		}
	})
	k.Run()
}
