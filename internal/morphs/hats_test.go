package morphs

import "testing"

func smallHATSParams() HATSParams {
	p := DefaultHATSParams()
	p.Tiles = 8
	return p
}

func TestHATSShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := RunHATSAll(smallHATSParams())
	if err != nil {
		t.Fatal(err)
	}
	vo := res[HATSVertexOrdered]
	sw := res[HATSSoftwareBDFS]
	tako := res[HATSTako]
	ideal := res[HATSIdeal]
	for _, r := range []Result{vo, sw, tako, ideal} {
		t.Logf("%-14s %9d cycles %13.0f pJ dram=%6d mispred/edge=%.3f logged=%v loadlat=%.1f",
			r.Variant, r.Cycles, r.EnergyPJ, r.DRAMAccesses,
			r.Extra["mispredicts.per.edge"], r.Extra["edges.logged"], r.Extra["load.mean"])
	}
	t.Logf("sw=%.2fx tako=%.2fx ideal=%.2fx energy=%.0f%%",
		sw.Speedup(vo), tako.Speedup(vo), ideal.Speedup(vo), 100*tako.EnergySaving(vo))

	// Fig 16 shape: software BDFS ≈ baseline (minimal benefit); täkō
	// clearly faster (+43% in the paper); ideal slightly better.
	if sw.Speedup(vo) > 1.25 {
		t.Errorf("software BDFS %.2fx: paper says minimal benefit", sw.Speedup(vo))
	}
	if tako.Speedup(vo) < 1.15 {
		t.Errorf("täkō speedup %.2fx, want ≥1.15x (paper: 1.43x)", tako.Speedup(vo))
	}
	if tako.Speedup(vo) < sw.Speedup(vo) {
		t.Errorf("täkō (%.2fx) should beat software BDFS (%.2fx)", tako.Speedup(vo), sw.Speedup(vo))
	}
	gap := (float64(tako.Cycles) - float64(ideal.Cycles)) / float64(ideal.Cycles)
	if gap > 0.15 {
		t.Errorf("täkō %.1f%% from ideal (paper: within ~2%%)", 100*gap)
	}
	// Fig 17 shapes: BDFS (sw and täkō) cut edge-phase DRAM accesses vs
	// vertex-ordered; täkō's core mispredicts per edge stay near the
	// baseline's while software BDFS mispredicts much more.
	if tako.DRAMPhase["edge"] >= vo.DRAMPhase["edge"] {
		t.Errorf("täkō edge DRAM (%d) should be below vertex-ordered (%d)",
			tako.DRAMPhase["edge"], vo.DRAMPhase["edge"])
	}
	if sw.Extra["mispredicts.per.edge"] <= 2*vo.Extra["mispredicts.per.edge"]+0.05 {
		t.Errorf("software BDFS mispredicts/edge (%.3f) should far exceed baseline (%.3f)",
			sw.Extra["mispredicts.per.edge"], vo.Extra["mispredicts.per.edge"])
	}
	if tako.Extra["mispredicts.per.edge"] > 1.2*vo.Extra["mispredicts.per.edge"]+0.01 {
		t.Errorf("täkō mispredicts/edge (%.3f) should match baseline (%.3f): traversal moved off-core",
			tako.Extra["mispredicts.per.edge"], vo.Extra["mispredicts.per.edge"])
	}
	// Core load latency: täkō's stream reads are prefetch-decoupled.
	if tako.Extra["load.mean"] >= vo.Extra["load.mean"] {
		t.Errorf("täkō mean load latency (%.1f) should beat vertex-ordered (%.1f)",
			tako.Extra["load.mean"], vo.Extra["load.mean"])
	}
}
