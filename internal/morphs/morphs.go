// Package morphs implements the paper's five case studies (§3, §8) —
// in-cache decompression, PHI commutative scatter-updates, HATS
// decoupled graph traversal, NVM transactions, and prime+probe
// side-channel detection — each as a täkō Morph plus the software
// baselines the paper compares against. Every study verifies its
// functional result against a reference implementation; timing and
// energy come from the modeled system.
package morphs

import (
	"fmt"

	"tako/internal/sim"
	"tako/internal/system"
)

// Result captures one variant's run for the experiment reports.
type Result struct {
	Study   string
	Variant string

	Cycles       sim.Cycle
	EnergyPJ     float64
	CoreInstrs   uint64
	EngineInstrs uint64
	DRAMAccesses uint64
	DRAMPhase    map[string]uint64
	Mispredicts  uint64

	// Extra holds study-specific metrics (e.g. decompression counts,
	// detection flags).
	Extra map[string]float64

	// Record is the run's observability record (nil when no capture is
	// armed). It is built by the run itself and entered into the shared
	// capture log by the driver, in deterministic variant order, once
	// any parallel fan-out has joined. Treat as immutable: cached
	// results share one record across figures.
	Record *system.RunRecord
	// WallMS is the host wall-clock the simulation took; 0 when Cached.
	WallMS float64
	// Cached marks a Result served by the memoized run cache.
	Cached bool
}

// collect snapshots system-wide metrics into a Result after a run.
func collect(s *system.System, study, variant string, cycles sim.Cycle) Result {
	phase := s.H.DRAMPhaseAccesses()
	extra := map[string]float64{}
	for _, name := range []string{
		"l1.hits", "l1.misses", "l2.hits", "l2.misses",
		"l3.hits", "l3.misses", "cb.onMiss", "cb.onEviction", "cb.onWriteback",
		"prefetch.issued", "rmo.hits", "rmo.misses",
	} {
		if v := s.H.Metrics.Get(name); v != 0 {
			extra[name] = float64(v)
		}
	}
	extra["load.mean"] = s.H.LoadLat.Mean()
	extra["load.stddev"] = s.H.LoadLat.Stddev()
	rec := system.LabelRun(s, study+"/"+variant, s.Ops())
	return Result{
		Record:       rec,
		Study:        study,
		Variant:      variant,
		Cycles:       cycles,
		EnergyPJ:     s.Meter.TotalPJ(),
		CoreInstrs:   s.TotalInstrs(),
		EngineInstrs: s.EngineInstrs(),
		DRAMAccesses: s.H.DRAMAccesses(),
		DRAMPhase:    phase,
		Mispredicts:  s.Mispredicts(),
		Extra:        extra,
	}
}

// Speedup returns baseline cycles / r cycles.
func (r Result) Speedup(baseline Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(r.Cycles)
}

// EnergySaving returns the fractional energy reduction vs the baseline.
func (r Result) EnergySaving(baseline Result) float64 {
	if baseline.EnergyPJ == 0 {
		return 0
	}
	return 1 - r.EnergyPJ/baseline.EnergyPJ
}

func (r Result) String() string {
	return fmt.Sprintf("%s/%s: %d cycles, %.0f pJ, %d core + %d engine instrs, %d DRAM",
		r.Study, r.Variant, r.Cycles, r.EnergyPJ, r.CoreInstrs, r.EngineInstrs, r.DRAMAccesses)
}
