package stats

import (
	"math"
	"sync"
	"testing"
)

// TestLabelOrderCanonicalization pins that label argument order never
// creates a second metric: every permutation resolves to the same cell,
// and the registry key always renders labels sorted by (key, value).
func TestLabelOrderCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("txn.cycles", L("kind", "access"), L("state", "Fetch"), L("tile", 3))
	b := r.Counter("txn.cycles", L("tile", 3), L("kind", "access"), L("state", "Fetch"))
	c := r.Counter("txn.cycles", L("state", "Fetch"), L("tile", 3), L("kind", "access"))
	if a != b || b != c {
		t.Fatal("permuted label orders resolved to different handles")
	}
	a.Add(5)
	if got := r.Get("txn.cycles{kind=access,state=Fetch,tile=3}"); got != 5 {
		t.Fatalf("canonical key lookup = %d, want 5:\n%s", got, r.String())
	}
	// The unsorted renderings must not exist as separate metrics.
	if r.Get("txn.cycles{tile=3,kind=access,state=Fetch}") != 0 {
		t.Fatal("non-canonical key exists in the registry")
	}
	// Single label takes the no-sort fast path but lands on the same shape.
	r.Counter("one", L("k", "v")).Inc()
	if r.Get("one{k=v}") != 1 {
		t.Fatal("single-label key mismatch")
	}
	// Same key with different values sorts by value.
	d := r.Counter("dup", L("k", "b"), L("k", "a"))
	e := r.Counter("dup", L("k", "a"), L("k", "b"))
	if d != e {
		t.Fatal("duplicate-key labels with permuted values resolved differently")
	}
	d.Inc()
	if r.Get("dup{k=a,k=b}") != 1 {
		t.Fatalf("duplicate-key canonical form missing:\n%s", r.String())
	}
}

// TestNameAndLabelCollisions pins the collision semantics: identical
// (name, labels) from independent call sites share one cell per metric
// type, label-value variants stay distinct, and the three metric
// namespaces (counter/gauge/histogram) don't collide on a shared name.
func TestNameAndLabelCollisions(t *testing.T) {
	r := NewRegistry()
	// Two call sites, same identity: one cell.
	site1 := r.Counter("hits", L("tile", 0))
	site2 := r.Counter("hits", L("tile", 0))
	if site1 != site2 {
		t.Fatal("same identity resolved to two cells")
	}
	site1.Inc()
	site2.Inc()
	if r.Get("hits{tile=0}") != 2 {
		t.Fatalf("shared cell count = %d, want 2", r.Get("hits{tile=0}"))
	}
	// Different label value: a distinct cell.
	if r.Counter("hits", L("tile", 1)) == site1 {
		t.Fatal("distinct label values share a cell")
	}
	// Labeled and unlabeled are distinct identities.
	if r.Counter("hits") == site1 {
		t.Fatal("unlabeled name collided with its labeled variant")
	}
	// One name across all three types: three independent metrics.
	r.Counter("shared").Add(3)
	r.Gauge("shared").Set(7)
	r.Histogram("shared").Observe(11)
	snap := r.Snapshot()
	if len(snap.Counters) == 0 || len(snap.Gauges) != 1 || len(snap.Histograms) != 1 {
		t.Fatalf("cross-type name did not produce three metrics: %+v", snap)
	}
	if r.Get("shared") != 3 || r.Gauge("shared").Value() != 7 ||
		r.Histogram("shared").Count() != 1 {
		t.Fatal("cross-type metrics interfered with each other")
	}
}

// TestQuantileBucketBoundaries pins quantile behavior exactly at log2
// bucket edges, where interpolation is most likely to drift: exact
// powers of two, the 0 and 1 buckets, and clamping to [Min, Max].
func TestQuantileBucketBoundaries(t *testing.T) {
	// All samples identical at a bucket's lower edge: every quantile is
	// that value — interpolation inside [64, 128) must clamp to max.
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(64)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 64 {
			t.Fatalf("uniform 64: Quantile(%v) = %v, want 64", q, got)
		}
	}

	// Bucket 0 holds only the value 0 but spans [0, 1): with half the
	// mass there, p25 interpolates inside the zero bucket (strictly
	// below 1) and p99 lands in the ones bucket, clamped to max = 1.
	h = &Histogram{}
	for i := 0; i < 50; i++ {
		h.Observe(0)
		h.Observe(1)
	}
	if got := h.Quantile(0.25); got < 0 || got >= 1 {
		t.Fatalf("zeros+ones: p25 = %v, want within [0, 1)", got)
	}
	if got := h.Quantile(0.99); got != 1 {
		t.Fatalf("zeros+ones: p99 = %v, want 1", got)
	}

	// Two adjacent power-of-two populations: quantiles are monotone in q,
	// stay within [min, max], and cross the bucket boundary where the
	// cumulative mass says they should (75% of mass is in [128, 256)).
	h = &Histogram{}
	for i := 0; i < 25; i++ {
		h.Observe(64) // bucket [64, 128)
	}
	for i := 0; i < 75; i++ {
		h.Observe(200) // bucket [128, 256)
	}
	if p10 := h.Quantile(0.10); p10 < 64 || p10 >= 128 {
		t.Fatalf("p10 = %v, want within [64, 128)", p10)
	}
	if p90 := h.Quantile(0.90); p90 < 128 || p90 > 200 {
		t.Fatalf("p90 = %v, want within [128, 200]", p90)
	}
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: Quantile(%v) = %v < %v", q, v, prev)
		}
		if v < float64(h.Min()) || v > float64(h.Max()) {
			t.Fatalf("Quantile(%v) = %v outside [%d, %d]", q, v, h.Min(), h.Max())
		}
		prev = v
	}

	// The bucket-crossing rank: 25 of 100 samples sit in [64, 128), so
	// just below q=0.25 the estimate is inside the first bucket, exactly
	// at q=0.25 interpolation reaches the bucket's upper edge, and just
	// above it the estimate has moved into the second bucket.
	if p := h.Quantile(0.24); p >= 128 {
		t.Fatalf("p24 = %v, crossed the boundary a rank early", p)
	}
	if p := h.Quantile(0.25); p != 128 {
		t.Fatalf("p25 = %v, want the exact bucket edge 128", p)
	}
	if p := h.Quantile(0.26); p < 128 {
		t.Fatalf("p26 = %v, want past the 128 boundary", p)
	}

	// Empty and NaN-adjacent inputs stay defined.
	empty := &Histogram{}
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	if v := h.Quantile(math.SmallestNonzeroFloat64); v != float64(h.Min()) {
		t.Fatalf("tiny q = %v, want min %d", v, h.Min())
	}
}

// TestConcurrentDistinctHandles exercises the supported concurrency
// pattern under the race detector: parallel simulations each hold
// pre-resolved handles to DIFFERENT cells (sched.Map fans kernels out,
// one registry per kernel; here one cell per goroutine in one registry,
// resolution done up front on one goroutine). Distinct cells share no
// state, so -race must stay silent and every count must be exact.
func TestConcurrentDistinctHandles(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 10000
	counters := make([]*Counter, workers)
	hists := make([]*Histogram, workers)
	for i := range counters {
		counters[i] = r.Counter("w.ops", L("worker", i))
		hists[i] = r.Histogram("w.lat", L("worker", i))
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				counters[i].Inc()
				hists[i].Observe(uint64(n % 257))
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if got := counters[i].Value(); got != iters {
			t.Fatalf("worker %d counter = %d, want %d", i, got, iters)
		}
		if got := hists[i].Count(); got != iters {
			t.Fatalf("worker %d histogram count = %d, want %d", i, got, iters)
		}
	}
}
