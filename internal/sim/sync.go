package sim

// Semaphore is a counting semaphore for simulated processes, used to
// model bounded hardware resources (MSHRs, writeback-buffer entries,
// callback-buffer slots, outstanding-RMO limits). Waiters are woken in
// FIFO order.
type Semaphore struct {
	k       *Kernel
	free    int
	cap     int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with n slots.
func NewSemaphore(k *Kernel, n int) *Semaphore {
	if n <= 0 {
		panic("sim: semaphore needs at least one slot")
	}
	return &Semaphore{k: k, free: n, cap: n}
}

// Acquire takes a slot, blocking the process until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.free > 0 {
		s.free--
		return
	}
	s.waiters = append(s.waiters, p)
	p.block() // the releasing side hands its slot directly to us
}

// TryAcquire takes a slot without blocking, reporting success.
func (s *Semaphore) TryAcquire() bool {
	if s.free > 0 {
		s.free--
		return true
	}
	return false
}

// Release returns a slot. If a process is waiting, the slot passes
// directly to the first waiter.
func (s *Semaphore) Release() {
	if n := len(s.waiters); n > 0 {
		p := s.waiters[0]
		// Shift in place rather than reslicing forward, so the backing
		// array is reused across acquire/release cycles.
		copy(s.waiters, s.waiters[1:])
		s.waiters[n-1] = nil
		s.waiters = s.waiters[:n-1]
		s.k.wakeAfter(0, p)
		return
	}
	if s.free == s.cap {
		panic("sim: semaphore over-released")
	}
	s.free++
}

// Free returns the number of available slots.
func (s *Semaphore) Free() int { return s.free }

// Cap returns the total number of slots.
func (s *Semaphore) Cap() int { return s.cap }

// Saturated reports whether no slot is free and processes are waiting or
// the semaphore is fully consumed.
func (s *Semaphore) Saturated() bool { return s.free == 0 }

// Waiters returns the number of blocked processes.
func (s *Semaphore) Waiters() int { return len(s.waiters) }

// WaitGroup tracks a number of in-flight operations; processes can block
// until the count drains to zero. Used to drain asynchronous remote
// memory operations before a flush (täkō §8.1).
type WaitGroup struct {
	k       *Kernel
	n       int
	waiters []*Proc
}

// NewWaitGroup returns an empty wait group.
func NewWaitGroup(k *Kernel) *WaitGroup {
	return &WaitGroup{k: k}
}

// Add increments the in-flight count by delta.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative waitgroup count")
	}
	if w.n == 0 {
		w.wake()
	}
}

// Done decrements the in-flight count.
func (w *WaitGroup) Done() { w.Add(-1) }

// Count returns the current in-flight count.
func (w *WaitGroup) Count() int { return w.n }

func (w *WaitGroup) wake() {
	for _, p := range w.waiters {
		w.k.wakeAfter(0, p)
	}
	w.k.putWaiters(w.waiters)
	w.waiters = nil
}

// Wait blocks p until the count is zero. A zero count returns
// immediately.
func (w *WaitGroup) Wait(p *Proc) {
	if w.n == 0 {
		return
	}
	if w.waiters == nil {
		w.waiters = w.k.getWaiters()
	}
	w.waiters = append(w.waiters, p)
	p.block()
}

// Barrier is a reusable rendezvous for a fixed set of processes: each
// generation releases when all n participants arrive.
type Barrier struct {
	k       *Kernel
	n       int
	arrived int
	waiters []*Proc
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(k *Kernel, n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier needs at least one participant")
	}
	return &Barrier{k: k, n: n}
}

// Arrive blocks p until all participants of the current generation have
// arrived; the last arriver releases everyone and resets the barrier.
func (b *Barrier) Arrive(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		for _, w := range b.waiters {
			b.k.wakeAfter(0, w)
		}
		b.k.putWaiters(b.waiters)
		b.waiters = nil
		return
	}
	if b.waiters == nil {
		b.waiters = b.k.getWaiters()
	}
	b.waiters = append(b.waiters, p)
	p.block()
}
