package hier

import (
	"fmt"

	"tako/internal/cache"
	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/sim"
)

// RMOOp is a commutative reduction operator for remote memory
// operations. PHI supports any commutative update ("e.g., addition",
// §8.1); min/max enable label-propagation algorithms like connected
// components.
type RMOOp int

// Supported commutative operators.
const (
	RMOAdd RMOOp = iota
	RMOMin
	RMOMax
)

func (op RMOOp) apply(old, v uint64) uint64 {
	switch op {
	case RMOMin:
		if v < old {
			return v
		}
		return old
	case RMOMax:
		if v > old {
			return v
		}
		return old
	default:
		return old + v
	}
}

// AtomicAdd issues a relaxed remote memory operation (RMO, §8.1): a
// commutative add pushed to the shared level (or the SHARED Morph's
// lines), executing asynchronously off the core's critical path. The
// core only pays the issue cost; completion is tracked per tile and
// drained by DrainRMOs. Outstanding RMOs per tile are bounded by the
// RMOLimit semaphore — the issuing process blocks when it is exhausted.
func (h *Hierarchy) AtomicAdd(p *sim.Proc, tileID int, a mem.Addr, delta uint64) {
	h.AtomicRMO(p, tileID, a, RMOAdd, delta)
}

// AtomicRMO issues a relaxed remote memory operation with an arbitrary
// commutative operator.
func (h *Hierarchy) AtomicRMO(p *sim.Proc, tileID int, a mem.Addr, op RMOOp, v uint64) {
	t := h.tiles[tileID]
	t.rmo.Acquire(p) // backpressure: bounded in-flight RMOs
	t.rmoInflight.Add(1)
	h.hot.rmoIssued.Inc()
	h.K.Go(fmt.Sprintf("rmo@%d", tileID), func(pp *sim.Proc) {
		h.runRMO(pp, tileID, a, op, v)
		t.rmo.Release()
		t.rmoInflight.Done()
	})
}

// AtomicAddSync performs a blocking remote add (used by baselines
// without RMO support to model an ordinary atomic over the shared
// level).
func (h *Hierarchy) AtomicAddSync(p *sim.Proc, tileID int, a mem.Addr, delta uint64) {
	h.hot.rmoIssued.Inc()
	h.runRMO(p, tileID, a, RMOAdd, delta)
}

// AtomicRMOSync is the blocking form of AtomicRMO.
func (h *Hierarchy) AtomicRMOSync(p *sim.Proc, tileID int, a mem.Addr, op RMOOp, v uint64) {
	h.hot.rmoIssued.Inc()
	h.runRMO(p, tileID, a, op, v)
}

// runRMO executes the add at the home bank. Misses on SHARED Morph lines
// trigger onMiss (phantom lines are materialized in-cache with no memory
// access — PHI's key property); plain lines are fetched from DRAM.
func (h *Hierarchy) runRMO(p *sim.Proc, tileID int, a mem.Addr, op RMOOp, delta uint64) {
	la := a.Line()
	home := h.HomeTile(a)
	hm := h.tiles[home]
	p.Sleep(h.Mesh.Transfer(tileID, home, 16)) // address + operand
	for hm.l3pending.waitIfLocked(p, la) {
	}
	tok := hm.l3pending.lock(la)
	defer h.unlockHomeLine(la, tok)

	h.Meter.Add(energy.L3Access, 1)
	p.Sleep(h.cfg.L3TagLat)
	ls3 := hm.l3.Lookup(a)
	if ls3 == nil {
		h.hot.rmoMisses.Inc()
		// Pooled fill buffer (see fetchFromHome): interface calls would
		// make a stack local escape per RMO miss.
		line := h.getLineBuf()
		defer h.putLineBuf(line)
		meta := fillMeta{}
		handled := false
		if h.registry != nil {
			if b, ok := h.registry.Binding(a); ok && b.Level == LevelShared {
				if b.Phantom {
					h.PhantomMissFills++
				} else {
					h.DRAM.ReadLineWait(p, la, line)
				}
				if b.HasMiss && h.runner != nil {
					h.hot.cb[CbMiss].Inc()
					_, done := h.runner.Run(home, CbMiss, b, la, line)
					p.Wait(done)
				}
				meta.morph, meta.phantom = true, b.Phantom
				handled = true
			}
		}
		if !handled {
			h.DRAM.ReadLineWait(p, la, line)
		}
		for !h.insertL3(home, a, line, meta) {
			p.Sleep(1)
		}
		ls3 = hm.l3.Lookup(a)
		if ls3 == nil {
			// Fill immediately victimized under extreme pressure:
			// invalidate any private copies (merging dirty data) and
			// apply the update straight to memory.
			if e := h.dir.get(la); e != nil {
				for s := 0; s < h.cfg.Tiles; s++ {
					if e.has(s) {
						if data, dirty, _ := h.invalidatePrivate(s, la); dirty {
							*line = data
						}
						e.remove(s)
					}
				}
				h.dir.delete(la)
			}
			off := a.Offset() &^ 7
			old := line.U64(off)
			line.SetU64(off, op.apply(old, delta))
			h.DRAM.WriteLineNoWait(la, line)
			if h.obs != nil {
				h.obs.RMOCommitted(tileID, a, op, delta, old, op.apply(old, delta))
			}
			h.event("rmo.bypass")
			return
		}
	} else {
		h.hot.rmoHits.Inc()
		// Lock before the data-array sleep so a concurrent insert
		// cannot victimize the line mid-update.
		ls3.Locked = true
		p.Sleep(h.cfg.L3DataLat)
		hm.l3.Touch(a)
	}
	ls3.Locked = true
	defer unlockLine(ls3)
	// Invalidate stale private copies so the home copy is authoritative.
	if e := h.dir.get(la); e != nil {
		for s := 0; s < h.cfg.Tiles; s++ {
			if e.has(s) {
				if data, dirty, present := h.invalidatePrivate(s, la); present {
					h.hot.cohInvalidations.Inc()
					if dirty {
						ls3.Data = data
					}
					h.Mesh.Transfer(home, s, 8)
				}
				e.remove(s)
			}
		}
		e.owner = -1
		h.dir.delete(la)
	}
	off := a.Offset() &^ 7
	old := ls3.Data.U64(off)
	ls3.Data.SetU64(off, op.apply(old, delta))
	ls3.Dirty = true
	if h.freshChecks {
		h.debugLogHome(la, fmt.Sprintf("rmo-commit(from=%d)", tileID), ls3.Data.U64(16))
	}
	if h.obs != nil {
		h.obs.RMOCommitted(tileID, a, op, delta, old, op.apply(old, delta))
	}
	h.event("rmo.commit")
}

// unlockLine clears a line's callback/victim lock; used as a deferred
// call (plain function + args, so the defer doesn't allocate a closure).
func unlockLine(ls *cache.LineState) { ls.Locked = false }

// DrainRMOs blocks until every RMO issued by tileID has completed (used
// before flushData so no update is lost, §8.1).
func (h *Hierarchy) DrainRMOs(p *sim.Proc, tileID int) {
	h.tiles[tileID].rmoInflight.Wait(p)
}
