// Package introspect is the live introspection server behind the CLIs'
// -http flag: while a report or experiment runs, it serves run progress
// (experiments, submitted/cached runs, scheduler load), on-demand
// metrics snapshots as the same deterministic JSON the -metrics flag
// writes, a transaction state-machine coverage heatmap, and the standard
// net/http/pprof profiling endpoints. It is read-only and side-effect
// free: handlers snapshot state under locks the simulation paths already
// take per run (never per access), so serving a request perturbs nothing
// the determinism gates check.
//
// Endpoints:
//
//	/               index with a live progress summary
//	/progress       JSON: phase, experiments done/total, capture counters,
//	                scheduler workers/active
//	/metrics        JSON: every published + in-flight run record
//	                (system.MetricsReport shape)
//	/txn            transaction-edge coverage heatmap (HTML); ?format=json
//	                for the aggregated edge list; unvisited legal edges
//	                are listed under the tables
//	/debug/pprof/   CPU/heap/block/mutex profiles and goroutine dumps
package introspect

import (
	"context"
	"encoding/json"
	"fmt"
	"html"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"tako/internal/hier"
	"tako/internal/sched"
	"tako/internal/system"
)

// Server is one live introspection endpoint. All methods are safe for
// concurrent use; the zero value is not usable — construct with Start.
type Server struct {
	srv *http.Server
	ln  net.Listener

	mu        sync.Mutex
	phase     string
	expTotal  int
	expDone   int
	current   string
	published []system.RunRecord
	start     time.Time
}

// progressDoc is the /progress JSON document.
type progressDoc struct {
	Phase       string          `json:"phase"`
	UptimeMS    int64           `json:"uptime_ms"`
	Experiments experimentsDoc  `json:"experiments"`
	Capture     system.Progress `json:"capture"`
	FastForward *ffDoc          `json:"fastforward,omitempty"`
	Published   int             `json:"published_runs"`
	Sched       schedDoc        `json:"sched"`
}

// ffDoc reports the analytical fast-forward phase: how many accesses
// have been fast-forwarded across all hierarchies, the total budget, the
// throughput, and the ETA the throughput implies. Omitted until a run
// enables fast-forward.
type ffDoc struct {
	Active   int     `json:"active"`
	Accesses uint64  `json:"accesses"`
	Budget   uint64  `json:"budget"`
	PerSec   float64 `json:"per_sec"`
	EtaMS    int64   `json:"eta_ms"`
}

type experimentsDoc struct {
	Total   int    `json:"total"`
	Done    int    `json:"done"`
	Current string `json:"current,omitempty"`
}

type schedDoc struct {
	Workers int `json:"workers"`
	Active  int `json:"active"`
}

// Start listens on addr (":6060", "127.0.0.1:0", ...) and serves the
// introspection endpoints until Close. The listener is bound before
// Start returns, so Addr() is immediately valid and a poller never races
// the bind.
func Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, start: time.Now(), phase: "starting"}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/txn", s.handleTxn)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (resolves ":0" to the real port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down gracefully, waiting for in-flight
// requests (bounded) before closing the listener.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// SetPhase labels what the process is doing ("running", "writing
// report", ...) in /progress.
func (s *Server) SetPhase(phase string) {
	s.mu.Lock()
	s.phase = phase
	s.mu.Unlock()
}

// SetExperiments declares how many experiments the run will execute.
func (s *Server) SetExperiments(total int) {
	s.mu.Lock()
	s.expTotal = total
	s.mu.Unlock()
}

// StartExperiment marks id as the experiment currently running.
func (s *Server) StartExperiment(id string) {
	s.mu.Lock()
	s.current = id
	s.phase = "running"
	s.mu.Unlock()
}

// FinishExperiment marks one experiment complete.
func (s *Server) FinishExperiment(id string) {
	s.mu.Lock()
	if s.current == id {
		s.current = ""
	}
	s.expDone++
	s.mu.Unlock()
}

// PublishRuns appends completed run records to the server's published
// set (served by /metrics and /txn alongside the live capture window).
func (s *Server) PublishRuns(runs []system.RunRecord) {
	if len(runs) == 0 {
		return
	}
	s.mu.Lock()
	s.published = append(s.published, runs...)
	s.mu.Unlock()
}

// runs returns published + live-capture records: the published set is
// what drivers already submitted and handed over; the live tail is
// whatever the active capture window has collected since.
func (s *Server) runs() []system.RunRecord {
	s.mu.Lock()
	out := make([]system.RunRecord, len(s.published))
	copy(out, s.published)
	s.mu.Unlock()
	return append(out, system.CaptureRuns()...)
}

func (s *Server) progress() progressDoc {
	s.mu.Lock()
	doc := progressDoc{
		Phase:    s.phase,
		UptimeMS: time.Since(s.start).Milliseconds(),
		Experiments: experimentsDoc{
			Total: s.expTotal, Done: s.expDone, Current: s.current,
		},
		Published: len(s.published),
	}
	s.mu.Unlock()
	doc.Capture = system.CaptureProgress()
	if ff := hier.FFSnapshot(); ff.Budget > 0 {
		d := &ffDoc{Active: ff.Active, Accesses: ff.Accesses,
			Budget: ff.Budget, PerSec: ff.PerSec}
		if ff.PerSec > 0 && ff.Budget > ff.Accesses {
			d.EtaMS = int64(float64(ff.Budget-ff.Accesses) / ff.PerSec * 1000)
		}
		doc.FastForward = d
	}
	doc.Sched = schedDoc{Workers: sched.Workers(), Active: sched.Active()}
	return doc
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.progress())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	system.WriteMetricsReport(w, s.runs()) //nolint:errcheck // client went away
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	p := s.progress()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!doctype html><title>täkō introspection</title>
<style>body{font:14px monospace;margin:2em}a{display:block;margin:.2em 0}</style>
<h1>täkō simulation — live introspection</h1>
<p>phase: <b>%s</b> · experiments %d/%d %s· runs submitted %d (cached %d) · published %d · sched %d/%d busy%s</p>
<a href="/progress">/progress — run progress (JSON)</a>
<a href="/metrics">/metrics — all run metrics snapshots (JSON)</a>
<a href="/txn">/txn — transaction state-machine coverage heatmap</a>
<a href="/debug/pprof/">/debug/pprof/ — CPU, heap, block, mutex profiles</a>
`,
		html.EscapeString(p.Phase), p.Experiments.Done, p.Experiments.Total,
		currentTag(p.Experiments.Current), p.Capture.Submitted, p.Capture.Cached,
		p.Published, p.Sched.Active, p.Sched.Workers, ffTag(p.FastForward))
}

// ffTag renders the fast-forward phase for the index line: accesses
// fast-forwarded against the budget, with the throughput-implied ETA.
func ffTag(ff *ffDoc) string {
	if ff == nil {
		return ""
	}
	tag := fmt.Sprintf(" · fast-forward %d/%d accesses", ff.Accesses, ff.Budget)
	if ff.EtaMS > 0 {
		tag += fmt.Sprintf(" (eta %s)", (time.Duration(ff.EtaMS) * time.Millisecond).Round(time.Second))
	}
	return tag
}

func currentTag(id string) string {
	if id == "" {
		return ""
	}
	return "(" + html.EscapeString(id) + ") "
}

// handleTxn renders the aggregated transaction-edge coverage: per kind a
// from×to matrix shaded by hit count, plus the unvisited legal edges.
// ?format=json returns the aggregated edge list instead.
func (s *Server) handleTxn(w http.ResponseWriter, r *http.Request) {
	edges := system.AggregateTxnEdges(s.runs())
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, struct {
			Edges     []hier.TxnTransition `json:"edges"`
			Unvisited []hier.TxnTransition `json:"unvisited"`
		}{edges, hier.UnvisitedEdges(edges)})
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!doctype html><title>txn coverage</title>
<style>body{font:13px monospace;margin:2em}table{border-collapse:collapse;margin:1em 0}
td,th{border:1px solid #ccc;padding:2px 6px;text-align:right}th{background:#eee}
td.z{color:#bbb}</style><h1>transaction state-machine coverage</h1>`)
	states := hier.TxnStateOrder()
	for _, kind := range hier.TxnKindOrder() {
		// Collect this kind's edges and the states it actually uses.
		var kindEdges []hier.TxnTransition
		usesState := map[string]bool{}
		var maxCount uint64
		for _, e := range edges {
			if e.Kind != kind {
				continue
			}
			kindEdges = append(kindEdges, e)
			usesState[e.From], usesState[e.To] = true, true
			if e.Count > maxCount {
				maxCount = e.Count
			}
		}
		for _, e := range hier.UnvisitedEdges(edges) {
			if e.Kind == kind {
				usesState[e.From], usesState[e.To] = true, true
			}
		}
		var cols []string
		for _, st := range states {
			if usesState[st] {
				cols = append(cols, st)
			}
		}
		if len(cols) == 0 {
			continue
		}
		count := map[[2]string]uint64{}
		for _, e := range kindEdges {
			count[[2]string{e.From, e.To}] = e.Count
		}
		fmt.Fprintf(w, "<h2>%s</h2><table><tr><th>from \\ to</th>", html.EscapeString(kind))
		for _, to := range cols {
			fmt.Fprintf(w, "<th>%s</th>", html.EscapeString(to))
		}
		fmt.Fprint(w, "</tr>")
		for _, from := range cols {
			fmt.Fprintf(w, "<tr><th>%s</th>", html.EscapeString(from))
			for _, to := range cols {
				c := count[[2]string{from, to}]
				if c == 0 {
					fmt.Fprint(w, `<td class=z>·</td>`)
					continue
				}
				fmt.Fprintf(w, `<td style="background:%s">%d</td>`, heat(c, maxCount), c)
			}
			fmt.Fprint(w, "</tr>")
		}
		fmt.Fprint(w, "</table>")
	}
	if unvisited := hier.UnvisitedEdges(edges); len(unvisited) > 0 {
		fmt.Fprintf(w, "<h2>unvisited legal edges (%d)</h2><ul>", len(unvisited))
		for _, e := range unvisited {
			fmt.Fprintf(w, "<li>%s: %s → %s</li>",
				html.EscapeString(e.Kind), html.EscapeString(e.From), html.EscapeString(e.To))
		}
		fmt.Fprint(w, "</ul>")
	}
}

// heat maps a count to a background shade (light → saturated) relative
// to the kind's hottest edge.
func heat(c, max uint64) string {
	if max == 0 {
		return "#fff"
	}
	// Log-ish ramp: edges span orders of magnitude.
	frac := float64(bitsLen(c)) / float64(bitsLen(max))
	if frac > 1 {
		frac = 1
	}
	// White → orange.
	g := 240 - int(120*frac)
	b := 240 - int(200*frac)
	return fmt.Sprintf("#f0%02x%02x", g, b)
}

func bitsLen(v uint64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}
