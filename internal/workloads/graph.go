// Package workloads provides the inputs the paper's evaluation runs on:
// synthetic graphs with and without community structure (standing in for
// uk-2002 and the 160M-edge synthetic graphs, scaled down per DESIGN.md),
// push-style PageRank reference implementations, Zipfian index streams
// for the decompression study [21], and base+delta compressed data sets.
package workloads

import (
	"math/rand"

	"tako/internal/mem"
)

// Graph is a directed graph in CSR form.
type Graph struct {
	V, E      int
	Offsets   []uint64 // V+1 entries into Neighbors
	Neighbors []uint64 // E destination vertex ids
}

// OutDegree returns vertex v's out-degree.
func (g *Graph) OutDegree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neigh returns v's adjacency slice.
func (g *Graph) Neigh(v int) []uint64 {
	return g.Neighbors[g.Offsets[v]:g.Offsets[v+1]]
}

// newCSR allocates an empty CSR shell for the given degree counts
// (deg[i] = out-degree of vertex i on entry; consumed into the prefix-sum
// offsets) and returns per-vertex fill cursors. Generators stream edges
// into the shell in a second pass instead of materializing adjacency
// lists — at 100M+ edges the per-vertex slice headers and append
// doublings of the old adjacency representation cost several times the
// CSR itself.
func newCSR(deg []uint64) (*Graph, []uint32) {
	v := len(deg)
	g := &Graph{V: v, Offsets: make([]uint64, v+1)}
	for i, d := range deg {
		g.Offsets[i+1] = g.Offsets[i] + d
	}
	g.E = int(g.Offsets[v])
	g.Neighbors = make([]uint64, g.E)
	return g, make([]uint32, v)
}

// push appends dst to src's adjacency run in generation order.
func (g *Graph) push(cursor []uint32, src int, dst uint64) {
	g.Neighbors[g.Offsets[src]+uint64(cursor[src])] = dst
	cursor[src]++
}

// GenUniform generates a graph with e edges whose endpoints are chosen
// uniformly at random: no community structure, the worst case for
// locality-oriented traversal scheduling. Generation is two-pass
// streaming — the RNG stream is replayed once to count degrees and once
// to place edges — so peak memory is the CSR arrays themselves.
func GenUniform(v, e int, seed int64) *Graph {
	deg := make([]uint64, v)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < e; i++ {
		src := rng.Intn(v)
		_ = rng.Intn(v) // dst draw kept in stream order for pass 2
		deg[src]++
	}
	g, cursor := newCSR(deg)
	rng = rand.New(rand.NewSource(seed))
	for i := 0; i < e; i++ {
		src := rng.Intn(v)
		dst := rng.Intn(v)
		g.push(cursor, src, uint64(dst))
	}
	return g
}

// GenCommunity generates a graph with strong community structure
// ([13, 78]; the property HATS exploits, §8.2): vertices are partitioned
// into communities and each edge stays inside its source's community
// with probability pIntra. Vertex ids are shuffled so memory order does
// not coincide with community order — exactly the situation where
// vertex-ordered traversal loses locality and BDFS recovers it. Same
// two-pass streaming scheme as GenUniform.
func GenCommunity(v, e, communities int, pIntra float64, seed int64) *Graph {
	if communities < 1 {
		communities = 1
	}
	commOf := make([]int, v)
	members := make([][]int, communities)
	edge := func(rng *rand.Rand) (int, int) {
		src := rng.Intn(v)
		var dst int
		if rng.Float64() < pIntra {
			m := members[commOf[src]]
			dst = m[rng.Intn(len(m))]
		} else {
			dst = rng.Intn(v)
		}
		return src, dst
	}

	rng := rand.New(rand.NewSource(seed))
	// Assign shuffled ids to communities.
	perm := rng.Perm(v)
	for i, p := range perm {
		c := i * communities / v
		commOf[p] = c
		members[c] = append(members[c], p)
	}
	deg := make([]uint64, v)
	for i := 0; i < e; i++ {
		src, _ := edge(rng)
		deg[src]++
	}

	g, cursor := newCSR(deg)
	rng = rand.New(rand.NewSource(seed))
	_ = rng.Perm(v) // replay the shuffle to realign the RNG stream
	for i := 0; i < e; i++ {
		src, dst := edge(rng)
		g.push(cursor, src, uint64(dst))
	}
	return g
}

// Symmetrize returns a graph with every edge duplicated in reverse, so
// directed scatter along its edges propagates information both ways
// (how undirected algorithms like connected components run on push
// frameworks). Two-pass streaming like the generators.
func Symmetrize(g *Graph) *Graph {
	deg := make([]uint64, g.V)
	for src := 0; src < g.V; src++ {
		for _, d := range g.Neigh(src) {
			deg[src]++
			deg[d]++
		}
	}
	out, cursor := newCSR(deg)
	for src := 0; src < g.V; src++ {
		for _, d := range g.Neigh(src) {
			out.push(cursor, src, d)
			out.push(cursor, int(d), uint64(src))
		}
	}
	return out
}

// EdgeStream is a lazily generated uniform graph for the `-scale full`
// paper-scale tier (uk-2002-class sizes, ≥100M edges): degrees and edge
// destinations are closed-form functions of the vertex/edge index, so no
// CSR arrays are ever materialized and memory stays O(1) regardless of
// edge count. Edges are spread evenly (deg = E/V, +1 for the first E%V
// vertices) with splitmix64-hashed destinations — the same
// no-community-structure worst case as GenUniform, without its RNG
// replay cost.
type EdgeStream struct {
	V, E int
	Seed uint64
}

// OutDegree returns vertex v's out-degree.
func (s EdgeStream) OutDegree(v int) int {
	d := s.E / s.V
	if v < s.E%s.V {
		d++
	}
	return d
}

// Offset returns the CSR offset of vertex v's first edge.
func (s EdgeStream) Offset(v int) uint64 {
	q, r := s.E/s.V, s.E%s.V
	if v < r {
		return uint64(v) * uint64(q+1)
	}
	return uint64(v)*uint64(q) + uint64(r)
}

// Dst returns the destination of global edge index i.
func (s EdgeStream) Dst(i uint64) uint64 {
	return splitmix64(s.Seed+i) % uint64(s.V)
}

// splitmix64 is the finalizer of the splitmix64 PRNG: a bijective
// avalanche over the edge index, so destinations are deterministic,
// uniform, and computable at any offset without replaying a stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// GraphMem is a graph laid out in simulated memory: 8-byte words for
// offsets, neighbor ids, and per-vertex data.
type GraphMem struct {
	G          *Graph
	Offsets    mem.Region
	Neighbors  mem.Region
	VertexData mem.Region
}

// Layout writes the graph into the simulated address space and backing
// store. Vertex data is allocated zeroed.
func (g *Graph) Layout(space *mem.Space, store *mem.Memory) *GraphMem {
	gm := &GraphMem{
		G:          g,
		Offsets:    space.Alloc("graph.offsets", uint64(g.V+1)*8),
		Neighbors:  space.Alloc("graph.neighbors", uint64(maxI(g.E, 1))*8),
		VertexData: space.Alloc("graph.vertexdata", uint64(g.V)*8),
	}
	for i, off := range g.Offsets {
		store.WriteU64(gm.Offsets.Word(uint64(i)), off)
	}
	for i, n := range g.Neighbors {
		store.WriteU64(gm.Neighbors.Word(uint64(i)), n)
	}
	return gm
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// OffsetAddr returns the address of vertex v's CSR offset.
func (gm *GraphMem) OffsetAddr(v int) mem.Addr { return gm.Offsets.Word(uint64(v)) }

// NeighborAddr returns the address of the i-th neighbor entry.
func (gm *GraphMem) NeighborAddr(i uint64) mem.Addr { return gm.Neighbors.Word(i) }

// VertexAddr returns the address of vertex v's data word.
func (gm *GraphMem) VertexAddr(v int) mem.Addr { return gm.VertexData.Word(uint64(v)) }
