// Package flat provides the purpose-built data structures on the
// simulator's per-access hot path: an open-addressed hash table keyed by
// uint64 with entries stored inline. Go's built-in map is general — it
// hashes with runtime calls, boxes entries in buckets, and (for the
// access-path use cases here: directory entries, MSHR locks, page
// indexes) forces a pointer per entry to get a stable reference. Table
// stores values inline in one contiguous slot array, probes linearly
// from a multiplicative hash, and deletes without tombstones by
// backward-shifting the displaced cluster, so long-lived tables churned
// by insert/delete cycles (directory entries come and go with every
// eviction) never degrade.
//
// The zero value is an empty, usable table. Tables are not safe for
// concurrent use — the simulator's event kernel is single-threaded by
// construction.
//
// Pointer validity: *V references returned by Ref, Put, and GetOrPut are
// invalidated by the next Put, GetOrPut, or Delete (inserts may grow and
// rehash; deletes backward-shift the cluster). Callers hold them only
// across operations that do not mutate the table.
package flat

import "tako/internal/stats"

// slot is one table entry. used distinguishes occupancy explicitly so
// key 0 (a valid line address) needs no sentinel.
type slot[V any] struct {
	key  uint64
	used bool
	val  V
}

// Table is an open-addressed hash table from uint64 keys to inline V
// values, with linear probing and tombstone-free deletion.
type Table[V any] struct {
	slots []slot[V] // power-of-two length
	mask  uint64
	shift uint // 64 - log2(len(slots)); home() uses the hash's high bits
	n     int

	// probes, when set, observes the probe length (slots examined) of
	// every insert; stats.Histogram is nil-safe so the hot path pays
	// only this field load when unset.
	probes *stats.Histogram
	// maxProbe tracks the worst insert displacement since creation.
	maxProbe uint64
}

const minCap = 8

// fibMul scrambles keys multiplicatively (Fibonacci hashing); line
// addresses are highly regular (strided, low-entropy low bits), and the
// high product bits diffuse them well.
const fibMul = 0x9E3779B97F4A7C15

// SetProbeStats attaches a histogram observing insert probe lengths.
func (t *Table[V]) SetProbeStats(h *stats.Histogram) { t.probes = h }

// Len returns the number of entries.
func (t *Table[V]) Len() int { return t.n }

// MaxProbe returns the longest insert probe sequence seen so far.
func (t *Table[V]) MaxProbe() uint64 { return t.maxProbe }

func (t *Table[V]) home(key uint64) uint64 {
	return (key * fibMul) >> t.shift
}

// find returns the slot index holding key, or ok=false.
func (t *Table[V]) find(key uint64) (uint64, bool) {
	if t.n == 0 {
		return 0, false
	}
	i := t.home(key)
	for {
		s := &t.slots[i]
		if !s.used {
			return 0, false
		}
		if s.key == key {
			return i, true
		}
		i = (i + 1) & t.mask
	}
}

// Get returns the value stored under key.
func (t *Table[V]) Get(key uint64) (V, bool) {
	if i, ok := t.find(key); ok {
		return t.slots[i].val, true
	}
	var zero V
	return zero, false
}

// Ref returns a pointer to key's value, or nil if absent. See the
// package comment for pointer validity.
func (t *Table[V]) Ref(key uint64) *V {
	if i, ok := t.find(key); ok {
		return &t.slots[i].val
	}
	return nil
}

// Put stores v under key (replacing any existing value) and returns a
// reference to the stored value.
func (t *Table[V]) Put(key uint64, v V) *V {
	ref, _ := t.GetOrPut(key, v)
	*ref = v
	return ref
}

// GetOrPut returns a reference to key's value, inserting def first if
// the key is absent. existed reports whether the key was already
// present (in which case def is ignored).
func (t *Table[V]) GetOrPut(key uint64, def V) (ref *V, existed bool) {
	if t.slots == nil {
		t.init(minCap)
	} else if (t.n+1)*4 > len(t.slots)*3 {
		t.grow()
	}
	i := t.home(key)
	probe := uint64(1)
	for {
		s := &t.slots[i]
		if !s.used {
			s.key, s.used, s.val = key, true, def
			t.n++
			t.probes.Observe(probe)
			if probe > t.maxProbe {
				t.maxProbe = probe
			}
			return &s.val, false
		}
		if s.key == key {
			return &s.val, true
		}
		i = (i + 1) & t.mask
		probe++
	}
}

// Delete removes key, reporting whether it was present. Deletion is
// tombstone-free: the displaced tail of the probe cluster is shifted
// back over the vacated slot, so lookups never scan dead slots and churn
// (the directory's insert/delete cycle per line eviction) cannot degrade
// the table.
func (t *Table[V]) Delete(key uint64) bool {
	i, ok := t.find(key)
	if !ok {
		return false
	}
	mask := t.mask
	j := i
	for {
		j = (j + 1) & mask
		s := &t.slots[j]
		if !s.used {
			break
		}
		// s lives at j but probes from home(s.key); it may fill the
		// hole at i only if i lies on that probe path (cyclically in
		// [home, j)), else lookups for it would stop early at i.
		if h := t.home(s.key); (i-h)&mask < (j-h)&mask {
			t.slots[i] = *s
			i = j
		}
	}
	t.slots[i] = slot[V]{} // clear value so V's references are collectable
	t.n--
	return true
}

// Range calls fn for every entry until fn returns false. Iteration
// order is the (deterministic) slot order; fn must not mutate the table.
func (t *Table[V]) Range(fn func(key uint64, v *V) bool) {
	for i := range t.slots {
		if t.slots[i].used && !fn(t.slots[i].key, &t.slots[i].val) {
			return
		}
	}
}

// Reset drops every entry, keeping the allocated capacity.
func (t *Table[V]) Reset() {
	clear(t.slots)
	t.n = 0
}

func (t *Table[V]) init(capacity int) {
	t.slots = make([]slot[V], capacity)
	t.mask = uint64(capacity - 1)
	t.shift = 64
	for c := capacity; c > 1; c >>= 1 {
		t.shift--
	}
}

// grow doubles capacity and reinserts every entry (probe lengths during
// rehash are not observed; the histogram records steady-state inserts).
func (t *Table[V]) grow() {
	old := t.slots
	t.init(len(old) * 2)
	t.n = 0
	for i := range old {
		if !old[i].used {
			continue
		}
		j := t.home(old[i].key)
		for t.slots[j].used {
			j = (j + 1) & t.mask
		}
		t.slots[j] = old[i]
		t.n++
	}
}
