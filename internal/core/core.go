// Package core implements the täkō programming interface — the paper's
// primary contribution (§4): Morphs bundle software callbacks (onMiss,
// onEviction, onWriteback) that the cache hierarchy invokes when data
// moves, transforming the semantics of an address range. Morphs register
// on phantom ranges (cache-only, not backed by memory) or on real
// addresses, at the PRIVATE (L2) or SHARED (L3) level.
//
// The Tako runtime owns registration bookkeeping, implements the
// hierarchy's Registry (address → Morph binding) and the engines'
// Program (Morph → callback specs and per-engine views), and provides
// flushData for synchronization between callbacks and threads (§4.4).
package core

import (
	"errors"
	"fmt"

	"tako/internal/engine"
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/sim"
)

// Level re-exports the hierarchy's Morph registration levels for API
// users.
type Level = hier.Level

// Registration levels (§4.1): PRIVATE registers at the tile's L2,
// SHARED at the L3. täkō supports neither L1 nor memory-side Morphs.
const (
	Private = hier.LevelPrivate
	Shared  = hier.LevelShared
)

// Callback is one Morph callback: a handler plus its static dataflow
// mapping (dynamic instruction count and critical-path length on the
// fabric).
type Callback struct {
	Instrs   int
	CritPath int
	Fn       func(*engine.Ctx)
}

// MorphSpec declares a Morph type: its callbacks and per-engine view
// constructor. Nil callbacks are not invoked (Table 1 rows marked "-").
type MorphSpec struct {
	Name        string
	OnMiss      *Callback
	OnEviction  *Callback
	OnWriteback *Callback
	// SequentialMiss serializes all onMiss invocations on an engine
	// (HATS protects its traversal stack this way, §8.2).
	SequentialMiss bool
	// NewView builds the engine-local view of the Morph object for a
	// tile (§4.2): state shared by all callbacks on that engine.
	// PRIVATE Morphs get one view; SHARED Morphs one per L3 bank.
	NewView func(tile int) interface{}
	// ProtectHint is the onReplacement extension the paper leaves to
	// future work (§4.5): when non-nil, victim selection avoids the
	// Morph's lines for which it returns true, letting software bias
	// the eviction policy (in the spirit of P-OPT [10]). Hints are
	// advisory: a set with no other candidate evicts anyway.
	ProtectHint func(mem.Addr) bool
}

// TotalInstrs returns the fabric instruction-memory footprint of the
// Morph's callbacks.
func (s MorphSpec) TotalInstrs() int {
	n := 0
	for _, cb := range []*Callback{s.OnMiss, s.OnEviction, s.OnWriteback} {
		if cb != nil {
			n += cb.Instrs
		}
	}
	return n
}

// Morph is a registered Morph instance (§4.2). Multiple instances of the
// same or different specs may be live simultaneously on disjoint ranges.
type Morph struct {
	ID     int
	Spec   MorphSpec
	Level  Level
	Region mem.Region
	// Tile is the registering tile: PRIVATE Morphs flush there.
	Tile int

	tako         *Tako
	views        map[int]interface{}
	unregistered bool
}

// Views returns the Morph's engine views keyed by tile, letting software
// initialize local state (§4.2: "views are gathered in the views
// array").
func (m *Morph) Views() map[int]interface{} { return m.views }

// View returns (creating if needed) the view on one tile.
func (m *Morph) View(tile int) interface{} {
	if v, ok := m.views[tile]; ok {
		return v
	}
	if m.Spec.NewView == nil {
		return nil
	}
	v := m.Spec.NewView(tile)
	m.views[tile] = v
	return v
}

// Tako is the runtime connecting software, the cache hierarchy, and the
// engines. It implements hier.Registry and engine.Program.
type Tako struct {
	K     *sim.Kernel
	Space *mem.Space
	H     *hier.Hierarchy
	E     *engine.Engines

	morphs []*Morph
	nextID int

	// RegisterCost models the OS work of (un)registration: page-table
	// style bookkeeping plus TLB shootdowns (§6).
	RegisterCost sim.Cycle
}

// New creates the runtime. Attach the hierarchy and engines with Attach
// before registering Morphs.
func New(k *sim.Kernel, space *mem.Space) *Tako {
	return &Tako{K: k, Space: space, RegisterCost: 1000}
}

// Attach wires the runtime to its hierarchy and engines.
func (t *Tako) Attach(h *hier.Hierarchy, e *engine.Engines) {
	t.H = h
	t.E = e
}

// Binding implements hier.Registry.
func (t *Tako) Binding(a mem.Addr) (hier.Binding, bool) {
	for _, m := range t.morphs {
		if m.Region.Contains(a) {
			return hier.Binding{
				MorphID:      m.ID,
				Level:        m.Level,
				Phantom:      m.Region.Phantom,
				Region:       m.Region,
				HasMiss:      m.Spec.OnMiss != nil,
				HasEviction:  m.Spec.OnEviction != nil,
				HasWriteback: m.Spec.OnWriteback != nil,
				Protected:    m.Spec.ProtectHint,
			}, true
		}
	}
	return hier.Binding{}, false
}

// Spec implements engine.Program.
func (t *Tako) Spec(morphID int, kind hier.CallbackKind) (engine.Spec, bool) {
	m := t.byID(morphID)
	if m == nil {
		return engine.Spec{}, false
	}
	var cb *Callback
	seq := false
	switch kind {
	case hier.CbMiss:
		cb, seq = m.Spec.OnMiss, m.Spec.SequentialMiss
	case hier.CbEviction:
		cb = m.Spec.OnEviction
	case hier.CbWriteback:
		cb = m.Spec.OnWriteback
	}
	if cb == nil {
		return engine.Spec{}, false
	}
	return engine.Spec{
		Cost:       engine.CallbackCost{Instrs: cb.Instrs, CritPath: cb.CritPath},
		Sequential: seq,
		Fn:         cb.Fn,
	}, true
}

// View implements engine.Program.
func (t *Tako) View(morphID, tile int) interface{} {
	m := t.byID(morphID)
	if m == nil {
		return nil
	}
	return m.View(tile)
}

func (t *Tako) byID(id int) *Morph {
	for _, m := range t.morphs {
		if m.ID == id {
			return m
		}
	}
	return nil
}

// Morphs returns the live registrations.
func (t *Tako) Morphs() []*Morph { return t.morphs }

var (
	// ErrOverlap is returned when a registration overlaps a live Morph
	// (§4.1: only one Morph per address).
	ErrOverlap = errors.New("tako: address range already has a Morph registered")
	// ErrBadLevel rejects registrations outside PRIVATE/SHARED.
	ErrBadLevel = errors.New("tako: Morphs register at PRIVATE or SHARED only")
)

func (t *Tako) validate(spec MorphSpec, level Level, region mem.Region) error {
	if level != Private && level != Shared {
		return ErrBadLevel
	}
	for _, m := range t.morphs {
		if region.Base < m.Region.End() && m.Region.Base < region.End() {
			return fmt.Errorf("%w: %v overlaps %v", ErrOverlap, region, m.Region)
		}
	}
	if t.E != nil {
		if err := t.E.ValidateFit(spec.TotalInstrs()); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tako) install(p *sim.Proc, spec MorphSpec, level Level, region mem.Region, tile int) *Morph {
	t.nextID++
	m := &Morph{
		ID: t.nextID, Spec: spec, Level: level, Region: region, Tile: tile,
		tako: t, views: make(map[int]interface{}),
	}
	// Eagerly create views so software can initialize local state:
	// one for PRIVATE, one per bank for SHARED (§4.2).
	if spec.NewView != nil {
		if level == Private {
			m.View(tile)
		} else {
			for i := 0; i < t.H.Tiles(); i++ {
				m.View(i)
			}
		}
	}
	t.morphs = append(t.morphs, m)
	p.Sleep(t.RegisterCost) // OS bookkeeping + TLB shootdown (§6)
	return m
}

// RegisterPhantom allocates a phantom address range of the given size
// and registers the Morph on it (§4.1). Phantom data lives only in
// caches; onMiss and onWriteback define the semantics of loads and
// stores to the range.
func (t *Tako) RegisterPhantom(p *sim.Proc, spec MorphSpec, level Level, size uint64, tile int) (*Morph, error) {
	region := t.Space.AllocPhantom(spec.Name, size)
	if err := t.validate(spec, level, region); err != nil {
		t.Space.Free(region)
		return nil, err
	}
	return t.install(p, spec, level, region, tile), nil
}

// RegisterReal registers the Morph over existing, memory-backed
// addresses. The range is flushed from all caches first so stale copies
// cannot bypass the new semantics (§4.1).
func (t *Tako) RegisterReal(p *sim.Proc, spec MorphSpec, level Level, region mem.Region, tile int) (*Morph, error) {
	if region.Phantom {
		return nil, errors.New("tako: RegisterReal requires a real region")
	}
	if err := t.validate(spec, level, region); err != nil {
		return nil, err
	}
	t.H.InvalidateRegion(p, region)
	return t.install(p, spec, level, region, tile), nil
}

// FlushData flushes all of the Morph's cached data, triggering
// onEviction/onWriteback, and blocks until every callback completes:
// afterwards there are no further racing writes from callbacks (§4.4).
func (t *Tako) FlushData(p *sim.Proc, m *Morph) {
	t.H.FlushRegion(p, m.Tile, m.Region, m.Level)
}

// Unregister removes the Morph: its range is flushed (with callbacks),
// the registration is dropped, and phantom ranges are de-allocated
// (§4.1).
func (t *Tako) Unregister(p *sim.Proc, m *Morph) {
	if m.unregistered {
		return
	}
	t.FlushData(p, m)
	m.unregistered = true
	for i, mm := range t.morphs {
		if mm == m {
			t.morphs = append(t.morphs[:i], t.morphs[i+1:]...)
			break
		}
	}
	if m.Region.Phantom {
		t.Space.Free(m.Region)
	}
	p.Sleep(t.RegisterCost)
}
