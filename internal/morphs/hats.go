package morphs

import (
	"fmt"

	"tako/internal/core"
	"tako/internal/cpu"
	"tako/internal/engine"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/system"
	"tako/internal/tlb"
	"tako/internal/workloads"
)

// HATSVariant selects an implementation of the decoupled graph-traversal
// study (§8.2, Figs 16-17): one PageRank scatter iteration on a single
// thread over a community graph.
type HATSVariant string

// HATS variants (Fig 16's bars).
const (
	HATSVertexOrdered HATSVariant = "vertex-ordered" // baseline memory-order traversal
	HATSSoftwareBDFS  HATSVariant = "sw-bdfs"        // BDFS on the core: better locality, worse control flow
	HATSTako          HATSVariant = "tako"           // HATS on täkō: phantom edge stream filled by onMiss
	HATSIdeal         HATSVariant = "ideal"          // täkō with the idealized engine
)

// AllHATSVariants lists Fig 16's bars in order.
var AllHATSVariants = []HATSVariant{HATSVertexOrdered, HATSSoftwareBDFS, HATSTako, HATSIdeal}

// HATSParams sizes the study: a community-structured graph (uk-2002's
// key property) scaled with the caches so vertex data exceeds the LLC.
type HATSParams struct {
	V, E        int
	Communities int
	PIntra      float64
	MaxDepth    int
	Tiles       int
	CacheScale  int
	Seed        int64
	Core        cpu.Config
	Engine      engine.Config
	// RTLB overrides the engines' reverse-TLB configuration (the §9
	// rTLB sweep); nil keeps the default (256 entries, 2 MB pages).
	RTLB *tlb.Config
	// NoPrefetch disables the L2 strided prefetcher — an ablation of
	// the stream decoupling: without prefetches running ahead of the
	// core, every stream line's onMiss lands on the critical path.
	NoPrefetch bool
}

// DefaultHATSParams returns the scaled study configuration.
func DefaultHATSParams() HATSParams {
	return HATSParams{
		V: 32 * 1024, E: 320 * 1024,
		Communities: 512, PIntra: 0.95, MaxDepth: 8,
		Tiles: 16, CacheScale: 32,
		Seed:   7,
		Core:   cpu.Goldmont(),
		Engine: engine.DefaultConfig(),
	}
}

// hatsView is the engine-local state of the HATS Morph: the traversal
// iterator (stack, visited, cursors — the scheduler state HATS keeps in
// hardware [92]) and the unprocessed-edge log cursor.
type hatsView struct {
	iter      *workloads.BDFSIter
	logCursor uint64
	logged    uint64
}

// RunHATS executes one variant of the single-threaded edge phase plus
// the vertex phase, verifies against the reference, and returns its
// Result. Runs are memoized under the run cache when enabled
// (SetRunCache).
func RunHATS(v HATSVariant, prm HATSParams) (Result, error) {
	return cachedRun("hats", string(v), hatsCacheKey(prm), func() (Result, error) {
		return runHATS(v, prm)
	})
}

func runHATS(v HATSVariant, prm HATSParams) (Result, error) {
	cfg := system.Scaled(prm.Tiles, prm.CacheScale)
	cfg.Core = prm.Core
	cfg.Engine = prm.Engine
	if prm.RTLB != nil {
		cfg.Hier.RTLB = *prm.RTLB
	}
	if prm.NoPrefetch {
		cfg.Hier.PrefetchDegree = 0
	}
	switch v {
	case HATSVertexOrdered, HATSSoftwareBDFS:
		cfg.NoTako = true
	case HATSIdeal:
		cfg.Engine = engine.IdealConfig()
	}
	s := system.New(cfg)

	g := workloads.GenCommunity(prm.V, prm.E, prm.Communities, prm.PIntra, prm.Seed)
	gm := g.Layout(s.Space, s.H.DRAM.Store())
	ranks := s.Alloc("ranks", uint64(prm.V)*8)
	initRanks := make([]uint64, prm.V)
	for i := range initRanks {
		initRanks[i] = workloads.InitialRank
		s.H.DRAM.Store().WriteU64(ranks.Word(uint64(i)), workloads.InitialRank)
	}
	// Packed visited bitmap for the software BDFS.
	visitedRegion := s.Alloc("visited", uint64(prm.V/64+1)*8)
	// Unprocessed-edge log for täkō (generously sized; evictions of
	// unread stream lines are rare, §8.2).
	logRegion := s.Alloc("hats.log", uint64(prm.E)*8+4096)

	want := workloads.ApplyVisits(g, func(f func(workloads.EdgeVisit)) {
		workloads.VertexOrderedEdges(g, initRanks, f)
	})

	var runErr error
	var processed, logProcessed uint64

	// update applies one edge visit on the core (single thread: plain
	// read-modify-write).
	update := func(p *sim.Proc, c *cpu.Core, dst int, contrib uint64) {
		old := c.Load(p, gm.VertexAddr(dst))
		c.Compute(p, 1)
		c.Store(p, gm.VertexAddr(dst), old+contrib)
	}

	vertexPhase := func(p *sim.Proc, c *cpu.Core) {
		s.H.SetDRAMPhase(p, "vertex")
		for vtx := 0; vtx < prm.V; vtx++ {
			nv := c.Load(p, gm.VertexAddr(vtx))
			c.Compute(p, 3)
			c.Store(p, ranks.Word(uint64(vtx)), nv)
		}
	}

	switch v {
	case HATSVertexOrdered:
		s.H.SetDRAMPhase(nil, "edge")
		s.Go(0, "hats-vo", func(p *sim.Proc, c *cpu.Core) {
			for src := 0; src < prm.V; src++ {
				off := c.Load(p, gm.OffsetAddr(src))
				end := c.Load(p, gm.OffsetAddr(src+1))
				c.Branch(p, false) // vertex loop: well predicted
				if off == end {
					continue
				}
				rank := c.Load(p, ranks.Word(uint64(src)))
				contrib := rank / (end - off)
				c.Compute(p, 2)
				for e := off; e < end; e++ {
					dst := int(c.Load(p, gm.NeighborAddr(e)))
					c.Compute(p, 2)
					c.Branch(p, false)
					update(p, c, dst, contrib)
					processed++
				}
			}
			vertexPhase(p, c)
		})

	case HATSSoftwareBDFS:
		s.H.SetDRAMPhase(nil, "edge")
		s.Go(0, "hats-bdfs", func(p *sim.Proc, c *cpu.Core) {
			it := workloads.NewBDFSIter(g, initRanks, prm.MaxDepth)
			it.Touch = func(kind workloads.TouchKind, idx int) {
				// The traversal's bookkeeping runs on the core. The
				// visited set is a packed bitmap (64 vertices per
				// word); the top-of-stack edge cursor stays in a
				// register.
				switch kind {
				case workloads.TouchOffset:
					c.Load(p, gm.OffsetAddr(idx))
					c.Store(p, visitedRegion.Word(uint64(idx/64)), 1) // mark visited
				case workloads.TouchNeighbor:
					c.Load(p, gm.NeighborAddr(uint64(idx)))
				case workloads.TouchRank:
					c.Load(p, ranks.Word(uint64(idx)))
				case workloads.TouchVisited:
					c.Load(p, visitedRegion.Word(uint64(idx/64)))
				case workloads.TouchCursor:
					c.Compute(p, 1)
				}
			}
			for {
				ev, ok := it.Next()
				// BDFS control flow is data dependent: the stack
				// push/pop and visited checks mispredict often (the
				// reason HATS moved it off the core, §8.2).
				c.Compute(p, 4)
				c.Branch(p, it.Emitted()%5 == 0)
				if !ok {
					break
				}
				update(p, c, ev.Dst, ev.Contrib)
				processed++
			}
			vertexPhase(p, c)
		})

	case HATSTako, HATSIdeal:
		var morph *core.Morph
		spec := core.MorphSpec{
			Name:           "hats",
			SequentialMiss: true, // shared traversal stack (§8.2)
			// onMiss: run BDFS to fill the line with 8 packed edge
			// visits (94 instrs across the HATS Morph in the paper).
			OnMiss: &core.Callback{
				Instrs: 60, CritPath: 6,
				Fn: func(ctx *engine.Ctx) {
					view := ctx.View().(*hatsView)
					it := view.iter
					it.Touch = func(kind workloads.TouchKind, idx int) {
						// Graph structure reads run on the engine
						// through its L1d; the scheduler state
						// (stack/visited/cursors) lives in the
						// engine (HATS hardware state [92]).
						switch kind {
						case workloads.TouchOffset:
							ctx.LoadWord(gm.OffsetAddr(idx))
						case workloads.TouchNeighbor:
							ctx.LoadWord(gm.NeighborAddr(uint64(idx)))
						case workloads.TouchRank:
							ctx.LoadWord(ranks.Word(uint64(idx)))
						}
					}
					for i := 0; i < mem.WordsPerLine; i++ {
						ev, ok := it.Next()
						if !ok {
							break
						}
						ctx.Line.SetWord(i, packUpdate(ev.Dst, ev.Contrib))
					}
				},
			},
			// onEviction/onWriteback: log unprocessed edges (Table 5).
			OnEviction:  &core.Callback{Instrs: 18, CritPath: 4, Fn: func(ctx *engine.Ctx) { hatsLogUnread(ctx, logRegion) }},
			OnWriteback: &core.Callback{Instrs: 18, CritPath: 4, Fn: func(ctx *engine.Ctx) { hatsLogUnread(ctx, logRegion) }},
			NewView: func(tile int) interface{} {
				return &hatsView{iter: workloads.NewBDFSIter(g, initRanks, prm.MaxDepth)}
			},
		}
		s.H.SetDRAMPhase(nil, "edge")
		s.Go(0, "hats-tako", func(p *sim.Proc, c *cpu.Core) {
			m, err := s.Tako.RegisterPhantom(p, spec, core.Private, uint64(prm.E)*8, 0)
			if err != nil {
				runErr = err
				return
			}
			morph = m
			// Stream phase: read packed visits in order, marking each
			// processed with an atomic exchange (§8.2).
			for i := 0; i < prm.E; i++ {
				w := c.AtomicExchange(p, m.Region.Word(uint64(i)), 0)
				c.Branch(p, false)
				if w == 0 {
					continue // unfilled slot (visit was logged)
				}
				dst, contrib := unpackUpdate(w)
				c.Compute(p, 1)
				update(p, c, dst, contrib)
				processed++
			}
			// Recover edges evicted before processing: flush the
			// stream (logging leftovers), then drain the log.
			s.H.SetDRAMPhase(p, "log")
			s.Tako.FlushData(p, morph)
			view := morph.View(0).(*hatsView)
			for j := uint64(0); j < view.logCursor; j++ {
				w := c.Load(p, logRegion.Word(j))
				if w == 0 {
					continue
				}
				dst, contrib := unpackUpdate(w)
				c.Compute(p, 1)
				update(p, c, dst, contrib)
				processed++
				logProcessed++
			}
			s.Tako.Unregister(p, morph)
			vertexPhase(p, c)
		})

	default:
		return Result{}, fmt.Errorf("unknown HATS variant %q", v)
	}

	cycles := s.Run()
	if runErr != nil {
		return Result{}, runErr
	}
	if processed != uint64(prm.E) {
		return Result{}, fmt.Errorf("%s: processed %d edges, want %d (log drained %d)",
			v, processed, prm.E, logProcessed)
	}
	for i := 0; i < prm.V; i++ {
		if got := s.H.DebugReadWord(ranks.Word(uint64(i))); got != want[i] {
			return Result{}, fmt.Errorf("%s: vertex %d = %d, want %d", v, i, got, want[i])
		}
	}
	r := collect(s, "hats", string(v), cycles)
	r.Extra["edges.logged"] = float64(logProcessed)
	r.Extra["mispredicts.per.edge"] = float64(r.Mispredicts) / float64(prm.E)
	return r, nil
}

// hatsLogUnread appends a stream line's unprocessed visits to the log.
func hatsLogUnread(ctx *engine.Ctx, logRegion mem.Region) {
	view := ctx.View().(*hatsView)
	for i := 0; i < mem.WordsPerLine; i++ {
		w := ctx.Line.Word(i)
		if w == 0 {
			continue
		}
		cur := view.logCursor
		view.logCursor = cur + 1
		view.logged++
		ctx.StoreWord(logRegion.Word(cur), w)
	}
}

// RunHATSAll runs every variant (Fig 16 + Fig 17 inputs), fanning
// independent variants across the scheduler's workers.
func RunHATSAll(prm HATSParams) (map[HATSVariant]Result, error) {
	return runAllVariants(AllHATSVariants, func(v HATSVariant) (Result, error) {
		return RunHATS(v, prm)
	})
}
