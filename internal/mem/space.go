package mem

import (
	"fmt"
	"sync"
)

// Region is a named, contiguous address range. Phantom regions are not
// backed by memory: their contents exist only in caches and are defined
// by Morph callbacks (täkō §4.1). Real regions are backed by a Memory.
type Region struct {
	Name    string
	Base    Addr
	Size    uint64
	Phantom bool
}

// End returns one past the last address of the region.
func (r Region) End() Addr { return r.Base + Addr(r.Size) }

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// Lines returns the number of cache lines the region spans.
func (r Region) Lines() uint64 { return (r.Size + LineSize - 1) / LineSize }

// At returns the address of byte offset off within the region, panicking
// on out-of-range offsets: region overflow is always a workload bug.
func (r Region) At(off uint64) Addr {
	if off >= r.Size {
		panic(fmt.Sprintf("mem: offset %d out of region %q (size %d)", off, r.Name, r.Size))
	}
	return r.Base + Addr(off)
}

// Word returns the address of the i-th 64-bit word of the region.
func (r Region) Word(i uint64) Addr { return r.At(i * 8) }

func (r Region) String() string {
	kind := "real"
	if r.Phantom {
		kind = "phantom"
	}
	return fmt.Sprintf("%s[%s: %v+%d)", r.Name, kind, r.Base, r.Size)
}

// Space hands out non-overlapping regions of the simulated address space.
// Real regions grow upward from lowBase; phantom regions grow downward
// from the top of a dedicated phantom window, mirroring how täkō's OS
// support tracks phantom ranges separately from the page table (§6).
// The allocator is safe for concurrent use: registrations on a sharded
// machine allocate phantom ranges from different shards, and the striped
// per-tile phantom windows (AllocPhantomAt) keep the handed-out
// addresses independent of the allocation order, so concurrent
// registrations stay deterministic.
type Space struct {
	mu          sync.Mutex
	nextReal    Addr
	nextPhantom Addr
	tilePhantom map[int]Addr // per-tile phantom cursors (AllocPhantomAt)
	regions     []Region
}

const (
	realBase    Addr = 0x0001_0000
	phantomBase Addr = 0x4000_0000_0000 // 64 TB: far from any real data
	// tileStripe is the size of each tile's private phantom window:
	// stripe t starts at phantomBase + (t+1)*tileStripe, above the shared
	// bump window at phantomBase, so per-tile and shared phantom
	// allocations never collide.
	tileStripe Addr = 1 << 40
)

// NewSpace returns an empty address-space allocator.
func NewSpace() *Space {
	return &Space{nextReal: realBase, nextPhantom: phantomBase}
}

func alignUp(a Addr, align Addr) Addr {
	return (a + align - 1) &^ (align - 1)
}

// Alloc reserves a real (memory-backed) region of size bytes, page
// aligned.
func (s *Space) Alloc(name string, size uint64) Region {
	if size == 0 {
		panic("mem: zero-size allocation")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	base := alignUp(s.nextReal, PageSize)
	r := Region{Name: name, Base: base, Size: size}
	s.nextReal = base + Addr(size)
	s.regions = append(s.regions, r)
	return r
}

// AllocPhantom reserves a phantom region of size bytes, page aligned.
// Phantom ranges are requested only by their size (täkō §4.1).
func (s *Space) AllocPhantom(name string, size uint64) Region {
	if size == 0 {
		panic("mem: zero-size phantom allocation")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	base := alignUp(s.nextPhantom, PageSize)
	r := Region{Name: name, Base: base, Size: size, Phantom: true}
	s.nextPhantom = base + Addr(size)
	s.regions = append(s.regions, r)
	return r
}

// AllocPhantomAt reserves a phantom region inside tile's private phantom
// stripe. Each tile bump-allocates from its own window, so the address a
// registration receives depends only on that tile's own allocation
// history — never on how concurrent registrations on other tiles
// interleave in real time. Sharded machines route phantom registration
// through this form to stay byte-identical at any worker count.
func (s *Space) AllocPhantomAt(tile int, name string, size uint64) Region {
	if size == 0 {
		panic("mem: zero-size phantom allocation")
	}
	if tile < 0 {
		panic("mem: negative tile for phantom stripe")
	}
	if Addr(size) > tileStripe {
		panic(fmt.Sprintf("mem: phantom allocation %q (%d bytes) exceeds the per-tile stripe", name, size))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tilePhantom == nil {
		s.tilePhantom = make(map[int]Addr)
	}
	cur, ok := s.tilePhantom[tile]
	if !ok {
		cur = phantomBase + Addr(tile+1)*tileStripe
	}
	base := alignUp(cur, PageSize)
	if base+Addr(size) > phantomBase+Addr(tile+2)*tileStripe {
		panic(fmt.Sprintf("mem: tile %d phantom stripe exhausted", tile))
	}
	r := Region{Name: name, Base: base, Size: size, Phantom: true}
	s.tilePhantom[tile] = base + Addr(size)
	s.regions = append(s.regions, r)
	return r
}

// Free releases a region. The allocator is a bump allocator, so Free only
// removes bookkeeping; address reuse is not attempted (matching
// unregister's semantics of de-allocating the phantom range without
// recycling it within a run).
func (s *Space) Free(r Region) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.regions {
		if s.regions[i].Base == r.Base {
			s.regions = append(s.regions[:i], s.regions[i+1:]...)
			return
		}
	}
}

// FindRegion returns the region containing a, if any.
func (s *Space) FindRegion(a Addr) (Region, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.regions {
		if r.Contains(a) {
			return r, true
		}
	}
	return Region{}, false
}

// IsPhantom reports whether a falls in any phantom region.
func (s *Space) IsPhantom(a Addr) bool {
	r, ok := s.FindRegion(a)
	return ok && r.Phantom
}

// Regions returns a snapshot of all live regions.
func (s *Space) Regions() []Region {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Region, len(s.regions))
	copy(out, s.regions)
	return out
}
