package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(1, "x", "y", "z")
	tr.Emitf(1, "x", "y", "%d", 5)
	tr.Filter("a")
	if tr.Events() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer recorded something")
	}
}

func TestRecordAndDump(t *testing.T) {
	tr := New(8)
	tr.Emit(10, "l2.0", "miss", "0x1000")
	tr.Emitf(20, "engine.0", "cb.onMiss", "addr=%#x", 0x1000)
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Cycle != 10 || events[1].Kind != "cb.onMiss" {
		t.Fatalf("events: %+v", events)
	}
	dump := tr.Dump()
	if !strings.Contains(dump, "cb.onMiss") || !strings.Contains(dump, "addr=0x1000") {
		t.Fatalf("dump:\n%s", dump)
	}
}

func TestRingWraps(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(uint64(i), "c", "k", "")
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d, want 4", len(events))
	}
	// Chronological: the last four cycles 6,7,8,9.
	for i, e := range events {
		if e.Cycle != uint64(6+i) {
			t.Fatalf("event %d cycle = %d", i, e.Cycle)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestFilters(t *testing.T) {
	tr := New(16)
	tr.Filter("cb.*", "dram")
	tr.Emit(1, "e", "cb.onMiss", "")
	tr.Emit(2, "e", "cb.onWriteback", "")
	tr.Emit(3, "d", "dram", "")
	tr.Emit(4, "l2", "miss", "") // filtered out
	counts := tr.CountByKind()
	if counts["cb.onMiss"] != 1 || counts["cb.onWriteback"] != 1 || counts["dram"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if counts["miss"] != 0 {
		t.Fatal("filter leaked")
	}
}

// Property: the ring always returns min(total, capacity) events, in
// non-decreasing emit order.
func TestQuickRingInvariant(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		capacity := int(capRaw)%32 + 1
		tr := New(capacity)
		for i := 0; i < int(n); i++ {
			tr.Emit(uint64(i), "c", "k", "")
		}
		events := tr.Events()
		want := int(n)
		if want > capacity {
			want = capacity
		}
		if len(events) != want {
			return false
		}
		for i := 1; i < len(events); i++ {
			if events[i].Cycle != events[i-1].Cycle+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
