// Command takoreport regenerates every table and figure of the paper's
// evaluation, printing each and optionally writing a combined report.
//
// Usage:
//
//	takoreport [-full] [-j N] [-out report.txt] [-skip fig25,fig22]
//	takoreport -bench bench.json [-golden ops.golden.json]
//	takoreport -metrics runs.json -trace all.trace.json -trace-format chrome
//	takoreport -attr -slowest 10
//	takoreport -http :6060
//
// Every simulated system is an independent deterministic kernel, so the
// experiments' variant fan-outs and sensitivity sweeps run -j
// simulations in parallel (default GOMAXPROCS); results always assemble
// in variant order, so the report and all gated counts are byte-identical
// at any -j. -tile-par N additionally partitions each simulation's event
// kernel into N tile-sharded queues merged on the global (cycle,
// sequence) key; like -j it never changes any output, so CI runs the
// ops-golden gate at several -j/-tile-par combinations against one
// golden. Runs are also memoized for the duration of the process:
// paired figures drawn from the same simulations (fig6/fig7, fig13/fig14,
// fig16/fig17, fig19/fig20) and sweeps that revisit an already-simulated
// configuration share one run instead of recomputing. Per-experiment
// wall-clock timing is printed to stdout but kept out of the -out report,
// so the written report is reproducible byte-for-byte.
//
// -bench captures every run's typed metrics (per-experiment cycle and
// architectural-op counts, latency histograms) into a JSON report,
// along with each experiment's wall-clock, the summed execution time of
// the simulations behind it, and the resulting parallel+cache speedup.
// With -golden, each experiment's op count is compared against the
// golden file and any drift fails the command — ops (committed core +
// engine instructions + DRAM transfers) are deterministic and
// insensitive to timing-model tuning, so CI gates on them while cycle
// counts are only reported. -update-golden rewrites the golden from the
// current run.
//
// -metrics writes every run of every experiment into one combined JSON
// document (the same shape as takosim -metrics). -trace streams every
// experiment's events into one shared trace file; each simulated system
// keeps a globally unique process id across experiments, so a full
// report loads as one Perfetto timeline. -trace-format / -trace-kinds /
// -trace-min-dur behave exactly as in takosim.
//
// -attr arms transaction-level latency attribution for every run and
// appends the conservation-checked "where cycles go" decomposition table
// to the report. -slowest K (implies -attr) prints the K slowest demand
// accesses across all experiments with their per-state timelines.
//
// -http ADDR serves live introspection while the report runs: progress
// across experiments (/progress), all metrics captured so far
// (/metrics), the aggregated transaction-coverage heatmap (/txn), and
// net/http/pprof under /debug/pprof/.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tako/internal/exp"
	"tako/internal/hier"
	"tako/internal/introspect"
	"tako/internal/morphs"
	"tako/internal/prof"
	"tako/internal/sched"
	"tako/internal/system"
	"tako/internal/trace"
)

// benchEntry aggregates one experiment's captured runs.
type benchEntry struct {
	ID     string `json:"id"`
	Ops    uint64 `json:"ops"`    // summed over runs; gated against the golden
	Cycles uint64 `json:"cycles"` // summed over runs; reported, never gated
	// WallMS is the experiment's wall-clock; ExecMS sums the wall-clock
	// of the simulations it executed (cache-served runs contribute 0),
	// i.e. the serial cost of the same work. Speedup = ExecMS / WallMS:
	// the combined effect of the parallel scheduler and the run cache
	// for this experiment at this -j.
	WallMS     float64            `json:"wall_ms"`
	ExecMS     float64            `json:"exec_ms"`
	Speedup    float64            `json:"speedup_vs_serial"`
	CachedRuns int                `json:"cached_runs"`
	Runs       []system.RunRecord `json:"runs"`
}

// benchReport is the document written by -bench.
type benchReport struct {
	Scale   string `json:"scale"`
	Jobs    int    `json:"jobs"`
	TilePar int    `json:"tile_par"` // kernel shard width each simulation ran with
	// Aggregate perf trajectory: total report wall-clock vs the summed
	// serial cost of every simulation executed or reused.
	WallMS      float64      `json:"wall_ms"`
	ExecMS      float64      `json:"exec_ms"`
	Speedup     float64      `json:"speedup_vs_serial"`
	Experiments []benchEntry `json:"experiments"`
}

func main() {
	var (
		full      = flag.Bool("full", false, "run at full (slow) scale")
		ff        = flag.Uint64("ff", 0, "fast-forward the first N core memory accesses of each baseline machine analytically before switching the event kernel on (see takosim -ff)")
		ffAuto    = flag.Bool("ff-auto", false, "end fast-forward at analytical miss-ratio convergence (bounded by -ff when both are given)")
		scaleTier = flag.String("scale", "quick", "workload tier for scale-aware experiments (fig25full): quick or full")
		jobs      = flag.Int("j", 0, "simulations to run in parallel (0 = GOMAXPROCS)")
		tilePar   = flag.Int("tile-par", 1, "tile queues to partition each simulation's event kernel into (1 = sequential single-queue kernel; the report is identical at any width)")

		sharded      = flag.Bool("sharded", false, "host the machine (baseline or täkō) on the tile-sharded message-passing engine (cycle counts differ from the classic engine; byte-identical at any -shard-workers)")
		shardWorkers = flag.Int("shard-workers", 0, "worker goroutines per sharded simulation (≤1 = deterministic sequenced schedule)")
		out          = flag.String("out", "", "also write the report to this file")
		skip         = flag.String("skip", "", "comma-separated experiment ids to skip")
		bench        = flag.String("bench", "", "write per-experiment metrics (JSON) to this file")

		golden       = flag.String("golden", "", "compare each experiment's op count against this golden JSON (requires -bench)")
		updateGolden = flag.Bool("update-golden", false, "rewrite the -golden file from this run instead of comparing")

		metricsOut  = flag.String("metrics", "", "write every run's metrics snapshot (JSON, all experiments combined) to this file")
		traceOut    = flag.String("trace", "", "stream every experiment's trace events into this one file")
		traceFormat = flag.String("trace-format", "chrome", "trace format: chrome (Perfetto-loadable) or jsonl")
		traceKinds  = flag.String("trace-kinds", "", "comma-separated event-kind filters (e.g. 'cb.*,dram.*,l3.*'); empty records everything")
		traceMinDur = flag.Uint64("trace-min-dur", 0, "drop spans shorter than this many cycles (instants are kept)")

		attr     = flag.Bool("attr", false, "arm transaction-level latency attribution and append the where-cycles-go decomposition to the report")
		slowest  = flag.Int("slowest", 0, "print the K slowest demand accesses across all experiments with their state timelines (implies -attr)")
		httpAddr = flag.String("http", "", "serve live introspection (progress, metrics, txn coverage, pprof) on this address while the report runs")

		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile (go tool pprof) to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		blockprofile = flag.String("blockprofile", "", "write a goroutine-blocking profile to this file at exit")
		mutexprofile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile, *blockprofile, *mutexprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "takoreport: %v\n", err)
		os.Exit(1)
	}

	sched.SetWorkers(*jobs)
	system.SetDefaultTilePar(*tilePar)
	system.SetDefaultSharded(*sharded, *shardWorkers)
	system.SetDefaultFastForward(*ff, *ffAuto)
	if err := exp.SetScale(*scaleTier); err != nil {
		fmt.Fprintf(os.Stderr, "takoreport: %v\n", err)
		os.Exit(2)
	}
	// The run cache is process-global and never evicts, so -skip only
	// changes which figure of a pair simulates first — the survivors
	// still share runs rather than recomputing.
	morphs.SetRunCache(true)

	if *slowest > 0 {
		*attr = true
	}
	if *attr {
		hier.SetAttributionDefaults(true, *slowest)
	}

	var insp *introspect.Server
	if *httpAddr != "" {
		insp, err = introspect.Start(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "takoreport: -http: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("introspection server on http://%s\n", insp.Addr())
		defer insp.Close()
	}

	// Everything below the bench report — combined metrics, the shared
	// trace, attribution tables, introspection — reads captured run
	// records, so any of those flags arms the per-experiment capture.
	capturing := *bench != "" || *metricsOut != "" || *traceOut != "" ||
		*attr || *httpAddr != ""

	// One trace sink is shared by every experiment's capture window.
	// StopCapture closes its sink at each window boundary, so the real
	// sink is wrapped in KeepOpen and closed once after the loop; FirstPid
	// threads the running system count through so process ids stay
	// globally unique across windows in the one output file.
	var traceFile *os.File
	var traceSink trace.MultiSink
	capCfg := system.CaptureConfig{TraceMinSpan: *traceMinDur}
	for _, k := range strings.Split(*traceKinds, ",") {
		if k = strings.TrimSpace(k); k != "" {
			capCfg.TraceKinds = append(capCfg.TraceKinds, k)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "takoreport: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		traceSink, err = trace.SinkFor(*traceFormat, f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "takoreport: %v\n", err)
			os.Exit(2)
		}
		capCfg.Sink = trace.KeepOpen(traceSink)
	}

	skipped := map[string]bool{}
	for _, id := range strings.Split(*skip, ",") {
		if id != "" {
			skipped[id] = true
		}
	}

	// emit goes to stdout and the -out report; status lines (timing,
	// progress) go to stdout only, keeping the written report
	// byte-reproducible across -j values and host speeds.
	var report strings.Builder
	emit := func(format string, args ...interface{}) {
		s := fmt.Sprintf(format, args...)
		fmt.Print(s)
		report.WriteString(s)
	}

	scale := "quick"
	if *full {
		scale = "full"
	}
	emit("täkō reproduction report — every table and figure of the evaluation\n")
	emit("scale: %s\n\n", scale)
	fmt.Printf("parallelism: %d workers, memoized run cache\n\n", sched.Workers())
	var entries []benchEntry
	var allRuns []system.RunRecord
	var totalWall, totalExec float64
	nextPid := 0
	failures := 0
	reportStart := time.Now()
	if insp != nil {
		n := 0
		for _, e := range exp.All() {
			if !skipped[e.ID] {
				n++
			}
		}
		insp.SetExperiments(n)
	}
	for _, e := range exp.All() {
		if skipped[e.ID] {
			emit("== %s: SKIPPED ==\n\n", e.ID)
			continue
		}
		emit("== %s: %s ==\npaper: %s\n", e.ID, e.Title, e.Paper)
		if insp != nil {
			insp.StartExperiment(e.ID)
		}
		if capturing {
			cfg := capCfg
			cfg.FirstPid = nextPid
			system.StartCapture(cfg)
		}
		start := time.Now()
		tbl, err := e.Run(!*full)
		wallMS := float64(time.Since(start)) / float64(time.Millisecond)
		if capturing {
			captured, capErr := system.StopCapture()
			if capErr != nil {
				fmt.Fprintf(os.Stderr, "takoreport: capture: %v\n", capErr)
				os.Exit(1)
			}
			nextPid += captured.Systems
			if err == nil {
				allRuns = append(allRuns, captured.Runs...)
				if insp != nil {
					insp.PublishRuns(captured.Runs)
				}
			}
			if *bench != "" {
				entry := benchEntry{
					ID:         e.ID,
					WallMS:     wallMS,
					ExecMS:     captured.ExecMS,
					CachedRuns: captured.Cached,
					Runs:       captured.Runs,
				}
				if entry.Runs == nil {
					entry.Runs = []system.RunRecord{}
				}
				if entry.WallMS > 0 {
					entry.Speedup = entry.ExecMS / entry.WallMS
				}
				for _, r := range entry.Runs {
					entry.Ops += r.Ops
					entry.Cycles += r.Cycles
				}
				if err == nil {
					entries = append(entries, entry)
					totalExec += captured.ExecMS
				}
			}
		}
		totalWall += wallMS
		if err != nil {
			emit("ERROR: %v\n\n", err)
			failures++
			if insp != nil {
				insp.FinishExperiment(e.ID)
			}
			continue
		}
		emit("%s", tbl.String())
		emit("\n")
		fmt.Printf("(%s)\n\n", time.Since(start).Round(time.Millisecond))
		if insp != nil {
			insp.FinishExperiment(e.ID)
		}
	}
	if insp != nil {
		insp.SetPhase("writing report")
	}
	if *attr {
		atbl, err := system.AttributionReport(allRuns)
		emit("%s\n", atbl.String())
		if err != nil {
			fmt.Fprintf(os.Stderr, "takoreport: %v\n", err)
			os.Exit(1)
		}
	}
	if *slowest > 0 {
		if stbl := system.SlowestReport(allRuns, *slowest); stbl != nil {
			emit("%s\n", stbl.String())
		}
	}
	fmt.Printf("report total: %s wall clock\n", time.Since(reportStart).Round(time.Millisecond))
	if traceFile != nil {
		err := traceSink.Close()
		if cerr := traceFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "takoreport: closing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%s)\n", *traceOut, *traceFormat)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "takoreport: %v\n", err)
			os.Exit(1)
		}
		if err := system.WriteMetricsReport(f, allRuns); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "takoreport: writing metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s (%d runs)\n", *metricsOut, len(allRuns))
	}
	if insp != nil {
		insp.SetPhase("done")
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "takoreport: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if *bench != "" {
		doc := benchReport{
			Scale:       scale,
			Jobs:        sched.Workers(),
			TilePar:     *tilePar,
			WallMS:      totalWall,
			ExecMS:      totalExec,
			Experiments: entries,
		}
		if doc.WallMS > 0 {
			doc.Speedup = doc.ExecMS / doc.WallMS
		}
		if err := writeBench(*bench, doc); err != nil {
			fmt.Fprintf(os.Stderr, "takoreport: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("bench metrics written to %s (%d experiments, %.1fx vs serial)\n",
			*bench, len(entries), doc.Speedup)
		if *golden != "" {
			if err := checkGolden(*golden, scale, entries, *updateGolden); err != nil {
				fmt.Fprintf(os.Stderr, "takoreport: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "takoreport: writing profile: %v\n", err)
		os.Exit(1)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "takoreport: %d experiments failed\n", failures)
		os.Exit(1)
	}
}

func writeBench(path string, doc benchReport) error {
	if doc.Experiments == nil {
		doc.Experiments = []benchEntry{}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// opsGolden is the golden-file shape: per-scale maps of experiment id to
// expected architectural op count.
type opsGolden map[string]map[string]uint64

// checkGolden gates each experiment's op count against the golden file
// (or rewrites the file when update is set). Experiments absent from the
// golden are reported but don't fail, so adding an experiment doesn't
// break CI before the golden is refreshed.
func checkGolden(path, scale string, entries []benchEntry, update bool) error {
	g := opsGolden{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &g); err != nil {
			return fmt.Errorf("parse golden %s: %v", path, err)
		}
	} else if !update {
		return fmt.Errorf("read golden %s: %v (run with -update-golden to create it)", path, err)
	}
	if update {
		m := map[string]uint64{}
		for _, e := range entries {
			m[e.ID] = e.Ops
		}
		g[scale] = m
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("ops golden updated: %s [%s]\n", path, scale)
		return nil
	}
	want, ok := g[scale]
	if !ok {
		return fmt.Errorf("golden %s has no %q scale (run with -update-golden)", path, scale)
	}
	var drift []string
	for _, e := range entries {
		w, ok := want[e.ID]
		if !ok {
			fmt.Printf("ops gate: %s not in golden (ops=%d); refresh with -update-golden\n", e.ID, e.Ops)
			continue
		}
		if e.Ops != w {
			drift = append(drift, fmt.Sprintf("%s: ops %d, golden %d", e.ID, e.Ops, w))
		}
	}
	if len(drift) > 0 {
		return fmt.Errorf("op counts drifted from golden %s:\n  %s", path, strings.Join(drift, "\n  "))
	}
	fmt.Printf("ops gate: %d experiments match golden\n", len(entries))
	return nil
}
