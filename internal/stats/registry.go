package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is the typed metrics registry shared by the modeled
// components: named counters, gauges, and log-bucketed histograms, each
// optionally labeled (per tile, per controller, per callback kind).
//
// Hot paths resolve a handle once (Counter/Gauge/Histogram) and
// increment through it with no map lookup and no allocation; cold paths
// may use the name-based Inc/Add/Get. All handle methods are safe on nil
// receivers, so components whose registry was never attached pay a single
// predictable branch — see bench_test.go for the zero-cost-when-off
// measurements.
//
// The simulation kernel is single-threaded (one Proc runs at a time), so
// the registry does no locking by default; a Registry must not be shared
// between concurrently running kernels unless SetConcurrent was called.
// Concurrent mode switches every handle to commutative atomic updates
// (adds, CAS min/max), whose final values are independent of update
// interleaving — sharded runs stay byte-deterministic at any worker
// count. Handle resolution is always mutex-guarded (it is a cold path).
type Registry struct {
	mu       sync.Mutex
	conc     bool
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	order    []string // first-touch order, for String()
}

// Label attaches a dimension to a metric name ("tile"=3, "ctrl"=0).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label with a formatted value.
func L(key string, value interface{}) Label {
	return Label{Key: key, Value: fmt.Sprint(value)}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// key renders name plus labels into the registry key:
// "dram.queue.depth{ctrl=2}". Labels are canonicalized by sorting on
// (key, value), so every argument order — and duplicate resolutions from
// different call sites — produces the same metric identity. Resolution
// is a cold path; the handles it returns are what hot paths hold.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels) > 1 && !sort.SliceIsSorted(labels, labelLess(labels)) {
		sorted := make([]Label, len(labels))
		copy(sorted, labels)
		sort.Slice(sorted, labelLess(sorted))
		labels = sorted
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// labelLess orders labels by (key, value) for canonicalization.
func labelLess(ls []Label) func(i, j int) bool {
	return func(i, j int) bool {
		if ls[i].Key != ls[j].Key {
			return ls[i].Key < ls[j].Key
		}
		return ls[i].Value < ls[j].Value
	}
}

// SetConcurrent switches the registry and every handle it has resolved
// (or will resolve) to atomic updates, making them safe to share across
// sharded-kernel worker goroutines. All updates are commutative — adds,
// CAS min/max — so the registry's final state is identical regardless of
// worker count or interleaving. Call before the simulation runs.
func (r *Registry) SetConcurrent() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.conc = true
	for _, c := range r.counters {
		c.conc = true
	}
	for _, g := range r.gauges {
		g.conc = true
	}
	for _, h := range r.hists {
		h.markConc()
	}
}

// Counter returns the handle for the named counter, creating it if
// needed. A nil registry returns a nil handle, which drops increments.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{conc: r.conc}
		r.counters[k] = c
		r.order = append(r.order, k)
	}
	return c
}

// Gauge returns the handle for the named gauge, creating it if needed.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{conc: r.conc}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the handle for the named histogram, creating it if
// needed.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{}
		if r.conc {
			h.markConc()
		}
		r.hists[k] = h
	}
	return h
}

// Inc increments the named counter by 1 (cold-path convenience).
func (r *Registry) Inc(name string) { r.Counter(name).Inc() }

// Add increments the named counter by n (cold-path convenience).
func (r *Registry) Add(name string, n uint64) { r.Counter(name).Add(n) }

// Get returns the named counter's value (0 if absent or nil registry).
func (r *Registry) Get(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c, ok := r.counters[name]
	r.mu.Unlock()
	if ok {
		return c.Value()
	}
	return 0
}

// String renders the counters one per line in sorted order, for
// debugging and determinism fingerprints.
func (r *Registry) String() string {
	if r == nil {
		return ""
	}
	keys := make([]string, 0, len(r.counters))
	for k := range r.counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-32s %12d\n", k, r.counters[k].Value())
	}
	return b.String()
}

// Counter is a monotonically increasing event count. The nil handle is
// valid and drops all updates.
type Counter struct {
	v    uint64
	conc bool
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	if c.conc {
		atomic.AddUint64(&c.v, 1)
		return
	}
	c.v++
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	if c.conc {
		atomic.AddUint64(&c.v, n)
		return
	}
	c.v += n
}

// Value returns the current count (0 for a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	if c.conc {
		return atomic.LoadUint64(&c.v)
	}
	return c.v
}

// atomicMaxInt64 raises *p to at least v.
func atomicMaxInt64(p *int64, v int64) {
	for {
		old := atomic.LoadInt64(p)
		if v <= old || atomic.CompareAndSwapInt64(p, old, v) {
			return
		}
	}
}

// atomicMinUint64 lowers *p to at most v.
func atomicMinUint64(p *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(p)
		if v >= old || atomic.CompareAndSwapUint64(p, old, v) {
			return
		}
	}
}

// atomicMaxUint64 raises *p to at least v.
func atomicMaxUint64(p *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(p)
		if v <= old || atomic.CompareAndSwapUint64(p, old, v) {
			return
		}
	}
}

// Gauge records a sampled instantaneous value (queue depth, occupancy).
// It keeps the last sample plus max and mean over all samples. The nil
// handle is valid and drops all updates.
//
// The sum is kept as an exact integer so sequential and concurrent
// accumulation agree bit-for-bit. In concurrent mode, max/count/sum are
// commutative (CAS/adds) and therefore interleaving-independent; `last`
// is only deterministic when the gauge has a single writer shard (every
// gauge in the sharded hierarchy is per-instance-labeled for exactly
// this reason), and conc max is clamped at ≥ 0 (no modeled gauge samples
// negative values).
type Gauge struct {
	last, max int64
	n         uint64
	sum       int64
	conc      bool
}

// Set records one sample.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	if g.conc {
		atomic.StoreInt64(&g.last, v)
		atomicMaxInt64(&g.max, v)
		atomic.AddUint64(&g.n, 1)
		atomic.AddInt64(&g.sum, v)
		return
	}
	g.last = v
	if g.n == 0 || v > g.max {
		g.max = v
	}
	g.n++
	g.sum += v
}

// Value returns the last sample.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	if g.conc {
		return atomic.LoadInt64(&g.last)
	}
	return g.last
}

// Max returns the maximum sample seen.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	if g.conc {
		return atomic.LoadInt64(&g.max)
	}
	return g.max
}

// Samples returns how many samples were recorded.
func (g *Gauge) Samples() uint64 {
	if g == nil {
		return 0
	}
	if g.conc {
		return atomic.LoadUint64(&g.n)
	}
	return g.n
}

// Mean returns the mean over all samples (0 when empty).
func (g *Gauge) Mean() float64 {
	if g == nil || g.Samples() == 0 {
		return 0
	}
	if g.conc {
		return float64(atomic.LoadInt64(&g.sum)) / float64(atomic.LoadUint64(&g.n))
	}
	return float64(g.sum) / float64(g.n)
}

// histBuckets is the bucket count: bucket i holds values whose bit length
// is i, i.e. [2^(i-1), 2^i), with bucket 0 holding the value 0.
const histBuckets = 65

// Histogram is a log2-bucketed histogram of non-negative integer samples
// (latencies in cycles, queue depths). Observe is O(1) with no
// allocation; quantiles interpolate within the matching power-of-two
// bucket. The nil handle is valid and drops all updates.
//
// The sum is an exact integer (samples are integers), so sequential and
// concurrent accumulation agree bit-for-bit; in concurrent mode every
// update is commutative (atomic adds, CAS min/max), making the final
// state independent of worker interleaving.
type Histogram struct {
	n        uint64
	sum      uint64
	min, max uint64
	buckets  [histBuckets]uint64
	conc     bool
}

// markConc switches the histogram to atomic updates. The min field uses
// MaxUint64 as the "no samples yet" sentinel so CAS-min works without a
// racy first-sample branch; accessors guard on Count()==0.
func (h *Histogram) markConc() {
	h.conc = true
	if h.n == 0 {
		h.min = math.MaxUint64
	}
}

// Observe adds one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	if h.conc {
		atomicMinUint64(&h.min, v)
		atomicMaxUint64(&h.max, v)
		atomic.AddUint64(&h.n, 1)
		atomic.AddUint64(&h.sum, v)
		atomic.AddUint64(&h.buckets[bits.Len64(v)], 1)
		return
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	if h.conc {
		return atomic.LoadUint64(&h.n)
	}
	return h.n
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	if h.conc {
		return float64(atomic.LoadUint64(&h.sum))
	}
	return float64(h.sum)
}

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.Count() == 0 {
		return 0
	}
	if h.conc {
		return atomic.LoadUint64(&h.min)
	}
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	if h.conc {
		return atomic.LoadUint64(&h.max)
	}
	return h.max
}

// Quantile returns an estimate of the q-th quantile (0 ≤ q ≤ 1) by
// linear interpolation within the log2 bucket where the cumulative count
// crosses q·n. Estimates are exact to within a factor of 2 and clamped
// to [Min, Max].
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.min)
	}
	if q >= 1 {
		return float64(h.max)
	}
	rank := q * float64(h.n)
	var cum float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		// Bucket i spans [lo, hi): interpolate the rank's position.
		var lo, hi float64
		if i == 0 {
			lo, hi = 0, 1
		} else {
			lo = math.Exp2(float64(i - 1))
			hi = math.Exp2(float64(i))
		}
		est := lo + (hi-lo)*(rank-prev)/float64(c)
		if est < float64(h.min) {
			est = float64(h.min)
		}
		if est > float64(h.max) {
			est = float64(h.max)
		}
		return est
	}
	return float64(h.max)
}

// Snapshot is a deterministic, JSON-serializable view of a registry.
// Entries are sorted by full metric key, so identical runs produce
// byte-identical serializations.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
}

// CounterSnap is one counter in a Snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge in a Snapshot.
type GaugeSnap struct {
	Name    string  `json:"name"`
	Value   int64   `json:"value"`
	Max     int64   `json:"max"`
	Mean    float64 `json:"mean"`
	Samples uint64  `json:"samples"`
}

// HistSnap is one histogram in a Snapshot.
type HistSnap struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot captures the registry's current state. Safe on nil (returns an
// empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	s.Counters = []CounterSnap{}
	s.Gauges = []GaugeSnap{}
	s.Histograms = []HistSnap{}
	if r == nil {
		return s
	}
	for k, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: k, Value: c.Value()})
	}
	for k, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{
			Name: k, Value: g.Value(), Max: g.Max(), Mean: round6(g.Mean()), Samples: g.Samples(),
		})
	}
	for k, h := range r.hists {
		s.Histograms = append(s.Histograms, HistSnap{
			Name: k, Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
			Mean: round6(h.Mean()), P50: round6(h.Quantile(0.50)),
			P90: round6(h.Quantile(0.90)), P99: round6(h.Quantile(0.99)),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// round6 rounds to 6 decimal places so snapshots serialize to short,
// stable decimal strings.
func round6(v float64) float64 {
	return math.Round(v*1e6) / 1e6
}

// WriteJSON serializes the snapshot as indented JSON. Field order is
// fixed by the struct definitions and entries are sorted, so the output
// is byte-deterministic.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
