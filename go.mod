module tako

go 1.22
