// Package dram models main memory: multiple memory controllers with a
// fixed access latency and a per-controller bandwidth limit (Table 3:
// 4 controllers, 100-cycle latency, 11.8 GB/s per controller). Lines are
// interleaved across controllers. Address ranges may be marked as NVM;
// writes there are persistent and charged at NVM energy (used by the §8.3
// transactions study).
package dram

import (
	"fmt"

	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/stats"
	"tako/internal/trace"
)

// Config describes the memory system.
type Config struct {
	Controllers   int
	Latency       sim.Cycle // fixed access latency per request
	CyclesPerLine sim.Cycle // per-controller occupancy per 64 B line (bandwidth)
}

// DefaultConfig returns the Table 3 memory system. 11.8 GB/s per
// controller at 2.4 GHz is 4.92 B/cycle, i.e. ~13 cycles of controller
// occupancy per 64 B line.
func DefaultConfig() Config {
	return Config{Controllers: 4, Latency: 100, CyclesPerLine: 13}
}

// DRAM is the backing memory with timing. Data lives in a mem.Memory so
// functional results can be checked against the timing simulation.
type DRAM struct {
	k     *sim.Kernel
	cfg   Config
	store *mem.Memory
	meter *energy.Meter

	nextFree []sim.Cycle // per-controller bandwidth queue
	nvm      []mem.Region

	// Stats.
	Reads, Writes  uint64
	PerCtrl        []uint64
	phase          string
	PhaseAccesses  map[string]uint64
	StallCycles    sim.Cycle // total cycles requests waited for a free controller
	persistedLines map[mem.Addr]struct{}

	// Observability (AttachMetrics/AttachTracer; all handles nil-safe).
	mReads, mWrites *stats.Counter
	mQueueWait      *stats.Histogram // cycles each request waited for its controller
	mDepth          []*stats.Gauge   // per-controller backlog, sampled periodically
	samplePeriod    sim.Cycle
	lastSample      sim.Cycle
	tracer          *trace.Tracer
	compCtrl        []string // pre-rendered "dram.N" component labels
}

// New builds a DRAM model over the given backing store.
func New(k *sim.Kernel, cfg Config, store *mem.Memory, meter *energy.Meter) *DRAM {
	if cfg.Controllers <= 0 {
		panic("dram: need at least one controller")
	}
	return &DRAM{
		k:              k,
		cfg:            cfg,
		store:          store,
		meter:          meter,
		nextFree:       make([]sim.Cycle, cfg.Controllers),
		PerCtrl:        make([]uint64, cfg.Controllers),
		PhaseAccesses:  make(map[string]uint64),
		persistedLines: make(map[mem.Addr]struct{}),
	}
}

// DefaultSamplePeriod is the queue-depth sampling period used when the
// caller does not configure one.
const DefaultSamplePeriod sim.Cycle = 1024

// AttachMetrics resolves this DRAM's registry handles: dram.reads and
// dram.writes counters, a dram.queue.wait latency histogram, and one
// dram.queue.depth{ctrl=N} gauge per controller sampled lazily every
// samplePeriod cycles (0 = DefaultSamplePeriod). Sampling is lazy — the
// backlog is inspected at request time, never via kernel events — so it
// adds no events to the simulation and cannot perturb timing.
//
// Extra labels distinguish multiple DRAM instances sharing one registry
// (the sharded hierarchy hosts one single-controller instance per home
// shard); gauges in particular must stay single-writer to keep their
// last-sample field deterministic.
func (d *DRAM) AttachMetrics(r *stats.Registry, samplePeriod sim.Cycle, labels ...stats.Label) {
	d.mReads = r.Counter("dram.reads", labels...)
	d.mWrites = r.Counter("dram.writes", labels...)
	d.mQueueWait = r.Histogram("dram.queue.wait", labels...)
	d.mDepth = make([]*stats.Gauge, d.cfg.Controllers)
	d.compCtrl = make([]string, d.cfg.Controllers)
	for i := range d.mDepth {
		d.mDepth[i] = r.Gauge("dram.queue.depth", append([]stats.Label{stats.L("ctrl", i)}, labels...)...)
		d.compCtrl[i] = fmt.Sprintf("dram.%d", i)
	}
	if samplePeriod == 0 {
		samplePeriod = DefaultSamplePeriod
	}
	d.samplePeriod = samplePeriod
}

// AttachTracer makes each controller emit one span per line transfer
// (dram.N track, kind dram.read/dram.write); nil disables.
func (d *DRAM) AttachTracer(t *trace.Tracer) { d.tracer = t }

// sampleDepth records each controller's backlog — how many whole requests
// deep its bandwidth queue currently is — at most once per sample period.
func (d *DRAM) sampleDepth(now sim.Cycle) {
	if d.mDepth == nil || (d.lastSample != 0 && now-d.lastSample < d.samplePeriod) {
		return
	}
	d.lastSample = now
	for i, free := range d.nextFree {
		depth := int64(0)
		if free > now {
			depth = int64((free - now + d.cfg.CyclesPerLine - 1) / d.cfg.CyclesPerLine)
		}
		d.mDepth[i].Set(depth)
	}
}

// Store returns the functional backing store.
func (d *DRAM) Store() *mem.Memory { return d.store }

// MarkNVM declares an address range to be non-volatile memory.
func (d *DRAM) MarkNVM(r mem.Region) { d.nvm = append(d.nvm, r) }

// IsNVM reports whether a falls in a non-volatile range.
func (d *DRAM) IsNVM(a mem.Addr) bool {
	for _, r := range d.nvm {
		if r.Contains(a) {
			return true
		}
	}
	return false
}

// SetPhase labels subsequent accesses for per-phase breakdowns (Figs 14
// and 17 report DRAM accesses split by PageRank phase).
func (d *DRAM) SetPhase(name string) { d.phase = name }

// Phase returns the current phase label.
func (d *DRAM) Phase() string { return d.phase }

// ControllerFor returns the controller index serving address a. Lines are
// interleaved across controllers.
func (d *DRAM) ControllerFor(a mem.Addr) int {
	return int((uint64(a) >> mem.LineShift) % uint64(d.cfg.Controllers))
}

// occupy reserves controller bandwidth and returns the completion time of
// one line transfer starting no earlier than now.
func (d *DRAM) occupy(ctrl int) sim.Cycle {
	now := d.k.Now()
	d.sampleDepth(now)
	start := now
	if d.nextFree[ctrl] > start {
		d.StallCycles += d.nextFree[ctrl] - start
		start = d.nextFree[ctrl]
	}
	d.mQueueWait.Observe(start - now)
	d.nextFree[ctrl] = start + d.cfg.CyclesPerLine
	return start + d.cfg.Latency
}

// transfer runs one line transfer through a's controller, emitting its
// span (request arrival through transfer completion) when traced.
func (d *DRAM) transfer(a mem.Addr, kind string) sim.Cycle {
	ctrl := d.ControllerFor(a)
	now := d.k.Now()
	done := d.occupy(ctrl)
	if d.tracer != nil && d.compCtrl != nil {
		d.tracer.EmitSpan(now, done, d.compCtrl[ctrl], kind, a.Line().String())
	}
	return done
}

func (d *DRAM) account(a mem.Addr, write bool) {
	ctrl := d.ControllerFor(a)
	d.PerCtrl[ctrl]++
	if d.phase != "" {
		d.PhaseAccesses[d.phase]++
	}
	if d.meter != nil {
		d.meter.Add(energy.DRAMAccess, 1)
		if write && d.IsNVM(a) {
			d.meter.Add(energy.NVMWrite, 1)
		}
	}
}

// ReadLine fetches the line containing a: the data is copied into dst
// immediately (the simulator serializes conflicting accesses above this
// layer), and the returned future completes when the transfer finishes.
func (d *DRAM) ReadLine(a mem.Addr, dst *mem.Line) *sim.Future {
	d.Reads++
	d.mReads.Inc()
	d.account(a, false)
	d.store.PeekLine(a, dst)
	f := sim.NewFuture(d.k)
	f.CompleteAt(d.transfer(a, "dram.read"))
	return f
}

// ReadLineWait is ReadLine for callers that wait immediately: it blocks
// p until the transfer finishes. The completion future comes from the
// kernel's pool (and returns to it when its event fires), so a steady
// stream of misses allocates nothing here.
func (d *DRAM) ReadLineWait(p *sim.Proc, a mem.Addr, dst *mem.Line) {
	d.Reads++
	d.mReads.Inc()
	d.account(a, false)
	d.store.PeekLine(a, dst)
	f := d.k.GetFuture()
	f.CompleteAt(d.transfer(a, "dram.read"))
	p.Wait(f)
}

// WriteLineNoWait is WriteLine for fire-and-forget writebacks: identical
// functional and timing behavior (the completion event still holds the
// simulation open until the transfer drains), but the internal future is
// pooled rather than returned.
func (d *DRAM) WriteLineNoWait(a mem.Addr, src *mem.Line) {
	d.Writes++
	d.mWrites.Inc()
	d.account(a, true)
	d.store.WriteLine(a, src)
	if d.IsNVM(a) {
		d.persistedLines[a.Line()] = struct{}{}
	}
	f := d.k.GetFuture()
	f.CompleteAt(d.transfer(a, "dram.write"))
}

// WriteLine writes the line containing a. Data is applied immediately;
// the future completes when the controller finishes the transfer.
func (d *DRAM) WriteLine(a mem.Addr, src *mem.Line) *sim.Future {
	d.Writes++
	d.mWrites.Inc()
	d.account(a, true)
	d.store.WriteLine(a, src)
	if d.IsNVM(a) {
		d.persistedLines[a.Line()] = struct{}{}
	}
	f := sim.NewFuture(d.k)
	f.CompleteAt(d.transfer(a, "dram.write"))
	return f
}

// Persisted reports whether the line containing a has ever been written
// to NVM, used by the transactions study to check durability invariants.
func (d *DRAM) Persisted(a mem.Addr) bool {
	_, ok := d.persistedLines[a.Line()]
	return ok
}

// Accesses returns total line transfers (reads + writes).
func (d *DRAM) Accesses() uint64 { return d.Reads + d.Writes }
