package morphs

import "testing"

func TestSideChannelShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prm := DefaultSideChannelParams()
	base, err := RunSideChannel(SCBaseline, prm)
	if err != nil {
		t.Fatal(err)
	}
	tako, err := RunSideChannel(SCTako, prm)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline: TP=%d/%d FP=%d detected=%v", base.TruePositives, prm.HotLines, base.FalsePositives, base.Detected)
	t.Logf("tako:     TP=%d/%d FP=%d detected=%v at cycle %d (interrupts=%v)",
		tako.TruePositives, prm.HotLines, tako.FalsePositives, tako.Detected,
		tako.DetectionCycle, tako.Extra["interrupts"])

	// Fig 21a: the unprotected attack identifies most hot lines and
	// the victim never knows.
	if base.Detected {
		t.Error("baseline victim cannot detect evictions")
	}
	if base.TruePositives < prm.HotLines/2 {
		t.Errorf("attack should succeed without täkō: identified %d of %d hot lines",
			base.TruePositives, prm.HotLines)
	}
	// Fig 21b: with täkō the victim is interrupted during the prime
	// phase, defends itself, and the attacker learns (almost) nothing.
	if !tako.Detected {
		t.Fatal("täkō victim never detected the attack")
	}
	if tako.DetectionCycle == 0 || tako.DetectionCycle > base.Cycles {
		t.Errorf("detection at cycle %d not early", tako.DetectionCycle)
	}
	if tako.TruePositives > base.TruePositives/4 {
		t.Errorf("defended victim still leaked: TP %d vs baseline %d",
			tako.TruePositives, base.TruePositives)
	}
}
