package sim

import "testing"

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := NewKernel()
	s := NewSemaphore(k, 2)
	active, maxActive := 0, 0
	for i := 0; i < 5; i++ {
		k.Go("w", func(p *Proc) {
			s.Acquire(p)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(10)
			active--
			s.Release()
		})
	}
	k.Run()
	if maxActive != 2 {
		t.Fatalf("max concurrent holders = %d, want 2", maxActive)
	}
	if s.Free() != 2 {
		t.Fatalf("free = %d after drain, want 2", s.Free())
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	k := NewKernel()
	s := NewSemaphore(k, 1)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Go("w", func(p *Proc) {
			p.Sleep(Cycle(i)) // stagger arrival: 0, 1, 2
			s.Acquire(p)
			order = append(order, i)
			p.Sleep(10)
			s.Release()
		})
	}
	k.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := NewKernel()
	s := NewSemaphore(k, 1)
	if !s.TryAcquire() {
		t.Fatal("TryAcquire on free semaphore failed")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire on empty semaphore succeeded")
	}
	if !s.Saturated() {
		t.Fatal("should be saturated")
	}
	s.Release()
	if s.Saturated() {
		t.Fatal("should not be saturated")
	}
}

func TestSemaphoreOverReleasePanics(t *testing.T) {
	k := NewKernel()
	s := NewSemaphore(k, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Release()
}

func TestWaitGroupDrains(t *testing.T) {
	k := NewKernel()
	w := NewWaitGroup(k)
	var doneAt Cycle
	w.Add(2)
	k.Go("waiter", func(p *Proc) {
		w.Wait(p)
		doneAt = p.Now()
	})
	k.Go("op1", func(p *Proc) {
		p.Sleep(10)
		w.Done()
	})
	k.Go("op2", func(p *Proc) {
		p.Sleep(25)
		w.Done()
	})
	k.Run()
	if doneAt != 25 {
		t.Fatalf("waiter released at %d, want 25", doneAt)
	}
	if w.Count() != 0 {
		t.Fatalf("count = %d", w.Count())
	}
}

func TestWaitGroupZeroWaitImmediate(t *testing.T) {
	k := NewKernel()
	w := NewWaitGroup(k)
	ran := false
	k.Go("w", func(p *Proc) {
		w.Wait(p)
		ran = true
	})
	k.Run()
	if !ran {
		t.Fatal("wait on empty group blocked forever")
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, 3)
	var released []Cycle
	for i := 0; i < 3; i++ {
		i := i
		k.Go("w", func(p *Proc) {
			p.Sleep(Cycle(10 * (i + 1))) // arrive at 10, 20, 30
			b.Arrive(p)
			released = append(released, p.Now())
		})
	}
	k.Run()
	if len(released) != 3 {
		t.Fatalf("released %d", len(released))
	}
	for _, r := range released {
		if r != 30 {
			t.Fatalf("released at %v, want all at 30", released)
		}
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, 2)
	hits := 0
	for i := 0; i < 2; i++ {
		k.Go("w", func(p *Proc) {
			for g := 0; g < 3; g++ {
				p.Sleep(5)
				b.Arrive(p)
				hits++
			}
		})
	}
	k.Run()
	if hits != 6 {
		t.Fatalf("hits = %d, want 6 (3 generations x 2 procs)", hits)
	}
	if blocked := k.Blocked(); len(blocked) != 0 {
		t.Fatalf("blocked: %v", blocked)
	}
}
