package sim

// Proc is a simulated software thread. Procs run as goroutines, but the
// kernel admits only one at a time: when a Proc blocks (Sleep, Wait), it
// parks its goroutine and control returns to the kernel's event loop.
//
// All Proc methods must be called from the Proc's own goroutine (i.e.,
// inside the function passed to Kernel.Go), except Done.
type Proc struct {
	k       *Kernel
	name    string
	resume  chan struct{}
	parked  chan struct{}
	started bool
	done    bool
}

// Go creates a simulated process named name running fn, and schedules it
// to start at the current cycle. fn runs on its own goroutine; it blocks
// the simulation only while actively computing between blocking calls.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		p.parked <- struct{}{}
	}()
	k.After(0, func() {
		p.started = true
		p.dispatch()
	})
	return p
}

// dispatch hands control to the process and waits for it to park or
// finish. Must be called from the kernel's event loop.
func (p *Proc) dispatch() {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.parked
}

// block parks the calling process until something dispatches it again.
func (p *Proc) block() {
	p.parked <- struct{}{}
	<-p.resume
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated cycle.
func (p *Proc) Now() Cycle { return p.k.now }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep advances the process by d cycles of simulated time.
func (p *Proc) Sleep(d Cycle) {
	p.k.wakeAfter(d, p)
	p.block()
}

// Wait blocks the process until f completes. If f is already complete it
// returns immediately without advancing time.
func (p *Proc) Wait(f *Future) {
	if f.done {
		return
	}
	if f.waiters == nil {
		f.waiters = f.k.getWaiters()
	}
	f.waiters = append(f.waiters, p)
	p.block()
}

// Future is a one-shot completion signal that processes can Wait on and
// events can Watch.
type Future struct {
	k       *Kernel
	done    bool
	when    Cycle
	waiters []*Proc
	watches []func()
}

// NewFuture returns an incomplete future on kernel k.
func NewFuture(k *Kernel) *Future {
	return &Future{k: k}
}

// Complete marks the future done at the current cycle and wakes all
// waiters (in registration order, at the current cycle). Completing twice
// panics.
func (f *Future) Complete() {
	if f.done {
		panic("sim: future completed twice")
	}
	f.done = true
	f.when = f.k.now
	for _, p := range f.waiters {
		f.k.wakeAfter(0, p)
	}
	f.k.putWaiters(f.waiters)
	f.waiters = nil
	for _, fn := range f.watches {
		f.k.After(0, fn)
	}
	f.watches = nil
}

// CompleteAt schedules the future to complete at absolute cycle t.
func (f *Future) CompleteAt(t Cycle) {
	f.k.completeAt(t, f)
}

// Done reports whether the future has completed.
func (f *Future) Done() bool { return f.done }

// When returns the cycle at which the future completed; valid only if
// Done.
func (f *Future) When() Cycle { return f.when }

// Watch registers fn to run (as an event) when the future completes. If
// the future is already complete, fn is scheduled immediately.
func (f *Future) Watch(fn func()) {
	if f.done {
		f.k.After(0, fn)
		return
	}
	f.watches = append(f.watches, fn)
}

// CompletedFuture returns an already-completed future, useful for
// zero-latency fast paths.
func CompletedFuture(k *Kernel) *Future {
	return &Future{k: k, done: true, when: k.now}
}

// WaitAll blocks the process until every future in fs is complete.
func (p *Proc) WaitAll(fs ...*Future) {
	for _, f := range fs {
		p.Wait(f)
	}
}
