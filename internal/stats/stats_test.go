package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	var d Dist
	if d.Mean() != 0 {
		t.Fatal("empty mean != 0")
	}
	for _, v := range []float64{2, 4, 6} {
		d.Observe(v)
	}
	if d.N != 3 || d.Min != 2 || d.Max != 6 || d.Mean() != 4 {
		t.Fatalf("dist = %+v mean=%v", d, d.Mean())
	}
}

func TestDistWelford(t *testing.T) {
	var d Dist
	if d.Var() != 0 || d.Stddev() != 0 {
		t.Fatal("empty dist variance != 0")
	}
	samples := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range samples {
		d.Observe(v)
	}
	// Classic example: mean 5, population variance 4, stddev 2.
	if d.Mean() != 5 {
		t.Fatalf("mean = %v", d.Mean())
	}
	if math.Abs(d.Var()-4) > 1e-9 || math.Abs(d.Stddev()-2) > 1e-9 {
		t.Fatalf("var = %v stddev = %v", d.Var(), d.Stddev())
	}
}

// Property: Welford matches the two-pass variance on random samples.
func TestQuickDistWelfordMatchesTwoPass(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var d Dist
		var sum float64
		for _, v := range raw {
			d.Observe(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, v := range raw {
			m2 += (float64(v) - mean) * (float64(v) - mean)
		}
		want := m2 / float64(len(raw))
		diff := math.Abs(d.Var() - want)
		scale := math.Max(1, want)
		return diff/scale < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistBounds(t *testing.T) {
	f := func(raw []int16) bool {
		var d Dist
		for _, v := range raw {
			d.Observe(float64(v))
		}
		vals := raw
		if len(vals) == 0 {
			return d.N == 0
		}
		return d.Min <= d.Mean() && d.Mean() <= d.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Fig X", "variant", "speedup")
	tbl.AddRowf("baseline", 1.0)
	tbl.AddRowf("tako", 4.2)
	s := tbl.String()
	for _, want := range []string{"Fig X", "variant", "baseline", "4.200"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
	if len(tbl.Rows()) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows()))
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("ratio wrong")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("ratio by zero should be 0")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]uint64{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
}
