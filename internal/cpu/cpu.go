// Package cpu models the cores that run software threads. The model is
// deliberately abstract — workloads emit compute, load/store, atomic,
// and branch operations — but captures the knobs the paper's studies
// vary (§9, Fig 24): out-of-order cores overlap independent misses up to
// a memory-level-parallelism window, in-order cores block on every load,
// and branch mispredictions cost a pipeline refill (HATS's baseline BDFS
// suffers exactly there, Fig 17).
package cpu

import (
	"math"

	"tako/internal/energy"
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/sim"
)

// Kind selects the core microarchitecture.
type Kind int

// Core kinds evaluated in Fig 24.
const (
	OutOfOrder Kind = iota
	InOrder
)

// Config describes a core.
type Config struct {
	Name              string
	Kind              Kind
	MLP               int     // outstanding independent loads (OOO window)
	IPC               float64 // non-memory instruction throughput
	MispredictPenalty sim.Cycle
}

// Goldmont returns the paper's baseline core (Table 3: OOO Goldmont).
func Goldmont() Config {
	return Config{Name: "goldmont-ooo", Kind: OutOfOrder, MLP: 8, IPC: 2, MispredictPenalty: 13}
}

// BigOOO returns a beefier core for the Fig 24 sweep.
func BigOOO() Config {
	return Config{Name: "big-ooo", Kind: OutOfOrder, MLP: 16, IPC: 4, MispredictPenalty: 16}
}

// LittleInOrder returns a small in-order core for the Fig 24 sweep.
func LittleInOrder() Config {
	return Config{Name: "little-inorder", Kind: InOrder, MLP: 1, IPC: 1, MispredictPenalty: 8}
}

// Core executes one software thread's operations on a tile.
type Core struct {
	H    *hier.Hierarchy
	Tile int

	cfg   Config
	meter *energy.Meter

	// Instrs counts committed instructions (loads/stores/atomics/
	// branches/compute); Mispredicts counts taken penalties.
	Instrs      uint64
	Mispredicts uint64

	window []*sim.Future
}

// New builds a core on the given tile.
func New(h *hier.Hierarchy, tile int, cfg Config, meter *energy.Meter) *Core {
	if cfg.MLP < 1 {
		cfg.MLP = 1
	}
	if cfg.IPC <= 0 {
		cfg.IPC = 1
	}
	return &Core{H: h, Tile: tile, cfg: cfg, meter: meter}
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

func (c *Core) instr(n int) {
	c.Instrs += uint64(n)
	if c.meter != nil {
		c.meter.Add(energy.CoreInstr, uint64(n))
	}
}

// Compute executes n non-memory instructions.
func (c *Core) Compute(p *sim.Proc, n int) {
	if n <= 0 {
		return
	}
	c.instr(n)
	p.Sleep(sim.Cycle(math.Ceil(float64(n) / c.cfg.IPC)))
}

// Load performs a dependent load: the thread blocks until data returns.
func (c *Core) Load(p *sim.Proc, a mem.Addr) uint64 {
	c.instr(1)
	return c.H.Load(p, c.Tile, a)
}

// LoadAsync issues an independent load. Out-of-order cores overlap up to
// MLP of these; in-order cores execute them synchronously. The returned
// future completes when the data is resident (the value is discarded —
// use Load for values the thread consumes).
func (c *Core) LoadAsync(p *sim.Proc, a mem.Addr) *sim.Future {
	c.instr(1)
	if c.cfg.Kind == InOrder {
		c.H.Load(p, c.Tile, a)
		return sim.CompletedFuture(p.Kernel())
	}
	for len(c.window) >= c.cfg.MLP {
		p.Wait(c.window[0])
		c.window = c.window[1:]
	}
	f := sim.NewFuture(p.Kernel())
	h, tile := c.H, c.Tile
	p.Kernel().Go("ooo-load", func(pp *sim.Proc) {
		h.Load(pp, tile, a)
		f.Complete()
	})
	c.window = append(c.window, f)
	return f
}

// LoadHandle is an in-flight value-carrying asynchronous load. Value is
// valid once F completes (wait it, or Drain the core).
type LoadHandle struct {
	F     *sim.Future
	Value uint64
}

// LoadAsyncV issues an independent load whose value is delivered through
// the returned handle — the OOO pattern for reductions over independent
// addresses (e.g., the decompression study's average loop).
func (c *Core) LoadAsyncV(p *sim.Proc, a mem.Addr) *LoadHandle {
	c.instr(1)
	lh := &LoadHandle{}
	if c.cfg.Kind == InOrder {
		lh.Value = c.H.Load(p, c.Tile, a)
		lh.F = sim.CompletedFuture(p.Kernel())
		return lh
	}
	for len(c.window) >= c.cfg.MLP {
		p.Wait(c.window[0])
		c.window = c.window[1:]
	}
	f := sim.NewFuture(p.Kernel())
	lh.F = f
	h, tile := c.H, c.Tile
	p.Kernel().Go("ooo-load", func(pp *sim.Proc) {
		lh.Value = h.Load(pp, tile, a)
		f.Complete()
	})
	c.window = append(c.window, f)
	return lh
}

// Drain waits for every outstanding asynchronous load.
func (c *Core) Drain(p *sim.Proc) {
	for _, f := range c.window {
		p.Wait(f)
	}
	c.window = nil
}

// Store writes the word at a.
func (c *Core) Store(p *sim.Proc, a mem.Addr, v uint64) {
	c.instr(1)
	c.H.Store(p, c.Tile, a, v)
}

// LoadLine performs a vector load of the full line containing a,
// counting as one instruction.
func (c *Core) LoadLine(p *sim.Proc, a mem.Addr) mem.Line {
	c.instr(1)
	return c.H.LoadLine(p, c.Tile, a)
}

// StoreLine performs a vector store of a full line, one instruction.
func (c *Core) StoreLine(p *sim.Proc, a mem.Addr, line *mem.Line) {
	c.instr(1)
	c.H.StoreLine(p, c.Tile, a, line)
}

// StoreLineNT performs a non-temporal (streaming) full-line store that
// bypasses the private caches, one instruction.
func (c *Core) StoreLineNT(p *sim.Proc, a mem.Addr, line *mem.Line) {
	c.instr(1)
	c.H.StoreLineNT(p, c.Tile, a, line)
}

// AtomicAdd issues a relaxed remote atomic add (RMO, §8.1) — off the
// critical path on any core kind; the issue slot costs one instruction.
func (c *Core) AtomicAdd(p *sim.Proc, a mem.Addr, delta uint64) {
	c.instr(1)
	c.H.AtomicAdd(p, c.Tile, a, delta)
}

// AtomicRMO issues a relaxed remote memory operation with an arbitrary
// commutative operator (min/max enable label-propagation algorithms).
func (c *Core) AtomicRMO(p *sim.Proc, a mem.Addr, op hier.RMOOp, v uint64) {
	c.instr(1)
	c.H.AtomicRMO(p, c.Tile, a, op, v)
}

// AtomicAddSync performs a blocking atomic add at the shared level, for
// baselines without RMO support.
func (c *Core) AtomicAddSync(p *sim.Proc, a mem.Addr, delta uint64) {
	c.instr(1)
	c.H.AtomicAddSync(p, c.Tile, a, delta)
}

// AtomicAddLocal performs an ordinary atomic fetch-add in the local
// cache (baseline semantics: the line migrates to this core).
func (c *Core) AtomicAddLocal(p *sim.Proc, a mem.Addr, delta uint64) {
	c.instr(2)
	c.H.AtomicAddLocal(p, c.Tile, a, delta)
}

// AtomicRMOLocal performs an ordinary local atomic read-modify-write
// with the given commutative operator.
func (c *Core) AtomicRMOLocal(p *sim.Proc, a mem.Addr, op hier.RMOOp, v uint64) {
	c.instr(2)
	c.H.AtomicRMOLocal(p, c.Tile, a, op, v)
}

// AtomicExchange swaps the word at a (LL/SC-style local atomic, §8.2).
func (c *Core) AtomicExchange(p *sim.Proc, a mem.Addr, v uint64) uint64 {
	c.instr(2)
	return c.H.AtomicExchange(p, c.Tile, a, v)
}

// DrainRMOs waits for this tile's outstanding remote atomic adds.
func (c *Core) DrainRMOs(p *sim.Proc) {
	c.H.DrainRMOs(p, c.Tile)
}

// Branch executes a branch; mispredicted branches pay the pipeline
// refill penalty.
func (c *Core) Branch(p *sim.Proc, mispredicted bool) {
	c.instr(1)
	if mispredicted {
		c.Mispredicts++
		p.Sleep(c.cfg.MispredictPenalty)
	}
}
