package system

import (
	"testing"

	"tako/internal/cpu"
	"tako/internal/mem"
	"tako/internal/sim"
)

func TestSystemAssemblesAndRuns(t *testing.T) {
	s := New(Default(4))
	region := s.Alloc("data", 4096)
	s.Go(0, "w", func(p *sim.Proc, c *cpu.Core) {
		c.Store(p, region.Base, 5)
	})
	s.Go(1, "r", func(p *sim.Proc, c *cpu.Core) {
		p.Sleep(2000)
		if v := c.Load(p, region.Base); v != 5 {
			t.Errorf("cross-core read = %d", v)
		}
	})
	cycles := s.Run()
	if cycles == 0 {
		t.Fatal("no simulated time elapsed")
	}
	if s.TotalInstrs() != 2 {
		t.Fatalf("instrs = %d", s.TotalInstrs())
	}
}

func TestNoTakoBaseline(t *testing.T) {
	cfg := Default(2)
	cfg.NoTako = true
	s := New(cfg)
	if s.Tako != nil || s.E != nil {
		t.Fatal("NoTako config built täkō components")
	}
	s.Go(0, "w", func(p *sim.Proc, c *cpu.Core) {
		c.Load(p, mem.Addr(0x1000))
	})
	s.Run()
	if s.EngineInstrs() != 0 {
		t.Fatal("engine instrs nonzero without engines")
	}
}

func TestScaledConfigRuns(t *testing.T) {
	s := New(Scaled(2, 16))
	s.Go(0, "w", func(p *sim.Proc, c *cpu.Core) {
		for i := 0; i < 100; i++ {
			c.Store(p, mem.Addr(0x1000+i*64), uint64(i))
		}
	})
	s.Run()
}

func TestSystemTraceHook(t *testing.T) {
	s := New(Default(2))
	tr := s.Trace(32, "cb.*")
	s.Go(0, "w", func(p *sim.Proc, c *cpu.Core) {
		c.Load(p, mem.Addr(0x2000))
	})
	s.Run()
	// Plain loads produce no callback events; the tracer is attached
	// and filtered.
	if tr.Total() != 0 {
		t.Fatalf("unexpected events: %d", tr.Total())
	}
}
