package morphs

import (
	"fmt"
	"math"

	"tako/internal/core"
	"tako/internal/cpu"
	"tako/internal/engine"
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/system"
	"tako/internal/workloads"
)

// Connected components via min-label propagation is not one of the
// paper's figures — it demonstrates the generality claim behind PHI
// (§8.1): the buffered-update Morph works for *any* commutative
// operator, not just addition. Labels start as vertex ids; each round
// scatters min(label) along every edge (both directions); after R
// rounds, labels equal the functional reference exactly.

// CCVariant selects the implementation.
type CCVariant string

// Connected-components variants.
const (
	CCBaseline CCVariant = "baseline" // local atomic min per edge
	CCTako     CCVariant = "tako"     // min-PHI: phantom buffer of partial minima
)

// CCParams sizes the study.
type CCParams struct {
	V, E        int
	Communities int
	PIntra      float64
	Rounds      int
	Tiles       int
	Threads     int
	CacheScale  int
	Seed        int64
}

// DefaultCCParams returns the study configuration.
func DefaultCCParams() CCParams {
	return CCParams{
		V: 16 * 1024, E: 160 * 1024,
		Communities: 64, PIntra: 0.9,
		Rounds: 3,
		Tiles:  8, Threads: 8, CacheScale: 64,
		Seed: 21,
	}
}

// ccReference computes the fixed-round label propagation functionally
// (pure scatter over the already-symmetrized graph).
func ccReference(g *workloads.Graph, rounds int) []uint64 {
	cur := make([]uint64, g.V)
	for i := range cur {
		cur[i] = uint64(i)
	}
	for r := 0; r < rounds; r++ {
		next := make([]uint64, g.V)
		copy(next, cur)
		for src := 0; src < g.V; src++ {
			for _, d := range g.Neigh(src) {
				if cur[src] < next[d] {
					next[d] = cur[src]
				}
			}
		}
		cur = next
	}
	return cur
}

const ccIdentity = math.MaxUint64

// RunCC executes one variant of fixed-round connected components,
// verifying labels against the functional reference.
func RunCC(v CCVariant, prm CCParams) (Result, error) {
	cfg := system.Scaled(prm.Tiles, prm.CacheScale)
	if v == CCBaseline {
		cfg.NoTako = true
	}
	s := system.New(cfg)

	g := workloads.Symmetrize(workloads.GenCommunity(prm.V, prm.E, prm.Communities, prm.PIntra, prm.Seed))
	gm := g.Layout(s.Space, s.H.DRAM.Store())
	labels := s.Alloc("cc.labels", uint64(prm.V)*8)
	for i := 0; i < prm.V; i++ {
		s.H.DRAM.Store().WriteU64(labels.Word(uint64(i)), uint64(i))
	}
	want := ccReference(g, prm.Rounds)

	threads := prm.Threads
	if threads > prm.Tiles {
		threads = prm.Tiles
	}
	sliceOf := func(t int) (lo, hi int) {
		return t * prm.V / threads, (t + 1) * prm.V / threads
	}
	var runErr error

	// edgeLoop scatters each vertex's label along its (symmetrized)
	// out-edges — pure scatter, the access pattern PHI targets.
	edgeLoop := func(p *sim.Proc, c *cpu.Core, t int, push func(p *sim.Proc, c *cpu.Core, dst int, label uint64)) {
		lo, hi := sliceOf(t)
		for src := lo; src < hi; src++ {
			off := c.Load(p, gm.OffsetAddr(src))
			end := c.Load(p, gm.OffsetAddr(src+1))
			if off == end {
				continue
			}
			srcLabel := c.Load(p, labels.Word(uint64(src)))
			c.Compute(p, 1)
			for e := off; e < end; e++ {
				dst := int(c.Load(p, gm.NeighborAddr(e)))
				c.Compute(p, 1)
				push(p, c, dst, srcLabel)
			}
		}
	}

	switch v {
	case CCBaseline:
		// next[] accumulates minima with local atomics.
		next := s.Alloc("cc.next", uint64(prm.V)*8)
		bar := s.Barrier(threads)
		for t := 0; t < threads; t++ {
			t := t
			s.Go(t, "cc-base", func(p *sim.Proc, c *cpu.Core) {
				for r := 0; r < prm.Rounds; r++ {
					if t == 0 && r == 0 {
						// next starts as a copy of cur.
						for i := 0; i < prm.V; i++ {
							s.H.DRAM.Store().WriteU64(next.Word(uint64(i)), uint64(i))
						}
					}
					bar.Arrive(p)
					edgeLoop(p, c, t, func(p *sim.Proc, c *cpu.Core, dst int, label uint64) {
						c.AtomicRMOLocal(p, next.Word(uint64(dst)), hier.RMOMin, label)
					})
					bar.Arrive(p)
					// Vertex phase: cur = next (and next stays for the
					// following round: minima only tighten).
					lo, hi := sliceOf(t)
					for vtx := lo; vtx < hi; vtx++ {
						nv := c.Load(p, next.Word(uint64(vtx)))
						c.Store(p, labels.Word(uint64(vtx)), nv)
					}
					bar.Arrive(p)
				}
			})
		}

	case CCTako:
		var morph *core.Morph
		spec := core.MorphSpec{
			Name: "cc-min",
			// onMiss: set the identity for MIN (all ones).
			OnMiss: &core.Callback{
				Instrs: 3, CritPath: 1,
				Fn: func(ctx *engine.Ctx) {
					for i := 0; i < mem.WordsPerLine; i++ {
						ctx.Line.SetWord(i, ccIdentity)
					}
				},
			},
			// onWriteback: apply buffered minima in place.
			OnWriteback: &core.Callback{
				Instrs: 18, CritPath: 7,
				Fn: func(ctx *engine.Ctx) {
					view := ctx.View().(*ccView)
					firstVtx := int((ctx.Addr - view.base) / 8)
					for i := 0; i < mem.WordsPerLine; i++ {
						if val := ctx.Line.Word(i); val != ccIdentity {
							ctx.RMWWord(view.next.Word(uint64(firstVtx+i)), hier.RMOMin, val)
						}
					}
				},
			},
			NewView: func(tile int) interface{} { return &ccView{} },
		}
		next := s.Alloc("cc.next", uint64(prm.V)*8)
		bar := s.Barrier(threads)
		for t := 0; t < threads; t++ {
			t := t
			s.Go(t, "cc-tako", func(p *sim.Proc, c *cpu.Core) {
				if t == 0 {
					for i := 0; i < prm.V; i++ {
						s.H.DRAM.Store().WriteU64(next.Word(uint64(i)), uint64(i))
					}
					m, err := s.Tako.RegisterPhantom(p, spec, core.Shared, uint64(prm.V)*8, 0)
					if err != nil {
						runErr = err
					} else {
						for i := 0; i < s.H.Tiles(); i++ {
							vw := m.View(i).(*ccView)
							vw.base = m.Region.Base
							vw.next = next
						}
						morph = m
					}
				}
				for r := 0; r < prm.Rounds; r++ {
					// The round-opening barrier doubles as the publish
					// edge for morph/runErr, replacing the classic
					// clock-poll loop (which has no deterministic sharded
					// equivalent).
					bar.Arrive(p)
					if runErr != nil {
						return
					}
					edgeLoop(p, c, t, func(p *sim.Proc, c *cpu.Core, dst int, label uint64) {
						c.AtomicRMO(p, morph.Region.Word(uint64(dst)), hier.RMOMin, label)
					})
					c.DrainRMOs(p)
					bar.Arrive(p)
					if t == 0 {
						s.Tako.FlushData(p, morph)
					}
					bar.Arrive(p)
					lo, hi := sliceOf(t)
					for vtx := lo; vtx < hi; vtx++ {
						nv := c.Load(p, next.Word(uint64(vtx)))
						c.Store(p, labels.Word(uint64(vtx)), nv)
					}
					bar.Arrive(p)
				}
			})
		}

	default:
		return Result{}, fmt.Errorf("unknown CC variant %q", v)
	}

	cycles := s.Run()
	if runErr != nil {
		return Result{}, runErr
	}
	for i := 0; i < prm.V; i++ {
		if got := s.H.DebugReadWord(labels.Word(uint64(i))); got != want[i] {
			return Result{}, fmt.Errorf("%s: label[%d] = %d, want %d", v, i, got, want[i])
		}
	}
	return collect(s, "components", string(v), cycles), nil
}

type ccView struct {
	base mem.Addr
	next mem.Region
}
