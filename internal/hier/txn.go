package hier

import (
	"fmt"

	"tako/internal/cache"
	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/sim"
)

// txn is one coherence transaction: a private-domain access, a home-bank
// fetch, a remote memory operation, a non-temporal store, an ownership
// upgrade, or a flush eviction. All transaction state that used to live
// implicitly in locals, futures, and lock tokens spread across the
// access path is explicit here, and advance() is the only place state
// changes — each call performs the current state's action and moves to a
// txnLegal-checked successor.
//
// Transactions are pooled on the Hierarchy (getTxn/putTxn) so the
// per-access hot path stays allocation-free; a private access that
// misses drives a nested home-fetch transaction, so the pool routinely
// holds one object per concurrently-running proc plus one.
type txn struct {
	h     *Hierarchy
	p     *sim.Proc
	kind  txnKind
	state txnState

	tileID int
	a      mem.Addr
	la     mem.Addr
	o      accessOpts

	t   *tile        // requesting tile (private-side kinds)
	top *cache.Cache // core or engine L1d, per o.engine

	// Private-side miss bookkeeping.
	usedMSHR   bool
	haveLock   bool
	lockTok    uint64
	meta       fillMeta
	viaHome    bool
	cb         Binding // binding whose onMiss owns the buffer in CbPending
	fetchStart sim.Cycle

	// result is the line a successful access resolves to (valid at Done
	// for kindAccess; nil for prefetches whose fill was evicted).
	result    *cache.LineState
	resultSet bool

	// Home-side state.
	home      int
	hm        *tile
	homeTok   uint64
	ls3       *cache.LineState
	bypass    bool // home fill immediately victimized: serve without caching
	tracing   bool
	spanKind  string
	homeStart sim.Cycle
	maxLat    sim.Cycle // upgrade: slowest recall round-trip

	// data is the transaction's line buffer. It replaces the pooled
	// fill buffers of the old access path: the line is threaded through
	// interface calls (DRAM reads, the Morph runner), and a pooled txn
	// keeps it from escaping to the heap on every miss. putTxn zeroes
	// the whole object, so the buffer starts with `var line mem.Line`
	// semantics exactly like the old pool.
	data mem.Line

	// RMO operands.
	op  RMOOp
	val uint64

	// NT-store input line (caller-owned).
	ext *mem.Line

	// Flush-eviction bookkeeping.
	flushBank bool // walk an L3 bank instead of the private L2
	futs      *[]*sim.Future
	evicted   bool // the flush txn extracted (and processed) its line
	aborted   bool // the line was locked; the flush walk retries later

	// Latency-attribution clocks (attr.go), meaningful only while
	// Hierarchy.attr is armed: opStart is the transaction's (or, for
	// demand accesses, the pre-TLB) start; stateEnter is when the
	// current state was entered. track marks demand accesses whose
	// per-state timeline (tl) feeds the slowest-access ring.
	opStart    sim.Cycle
	stateEnter sim.Cycle
	track      bool
	tl         []tlSeg
	tlTrunc    bool

	// pt is the pool tile the transaction was drawn from: the tile whose
	// kernel (and, sharded, shard) the transaction runs on. Requester-side
	// kinds draw from the requesting tile, home-side kinds from the home.
	pt *tile
	// req is the cross-tile request this home-side transaction serves on
	// a sharded build (sharded.go); nil classically and on requester-side
	// transactions.
	req *homeReq
	// invs is pooled scratch for home-side invalidation/recall round
	// trips on a sharded build; capacity survives putTxn like tl.
	invs []invReply
}

// getTxn returns a zeroed transaction from tl's pool. Pools are per tile
// so a sharded build never shares them across shards; the transaction
// runs on tl's kernel.
func (h *Hierarchy) getTxn(tl *tile) *txn {
	var t *txn
	if n := len(tl.txnPool); n > 0 {
		t = tl.txnPool[n-1]
		tl.txnPool[n-1] = nil
		tl.txnPool = tl.txnPool[:n-1]
	} else {
		t = &txn{}
	}
	t.pt = tl
	if h.attr != nil {
		t.stamp(tl.K.Now())
	}
	return t
}

// putTxn zeroes and recycles a finished transaction. The timeline and
// reply-scratch slices' capacities survive the reset so armed
// attribution and the sharded home paths stop allocating once the pool
// is warm.
func (h *Hierarchy) putTxn(t *txn) {
	pt := t.pt
	tl := t.tl[:0]
	invs := t.invs[:0]
	*t = txn{}
	t.tl = tl
	t.invs = invs
	if len(pt.txnPool) < 64 {
		pt.txnPool = append(pt.txnPool, t)
	}
}

// to moves the machine to next, asserting the edge against txnLegal and
// recording it in the pool tile's coverage table (TxnCoverage sums the
// tiles). An illegal edge is a state-machine bug (or an interleaving no
// one modeled): panic with full context rather than continue with
// corrupt coherence state.
func (t *txn) to(next txnState) {
	if txnLegal[t.kind][t.state]&(1<<next) == 0 {
		panic(fmt.Sprintf(
			"hier: illegal %v transaction transition %v -> %v (tile %d, line %v, cycle %d)",
			t.kind, t.state, next, t.tileID, t.la, t.p.Now()))
	}
	t.pt.txnCounts[t.kind][t.state][next]++
	if a := t.h.attr; a != nil {
		t.observeDwell(a, t.p.Now())
	}
	t.state = next
}

// run drives the transaction to completion. This loop plus advance() is
// the whole control flow of the access path; there is no other driver.
func (t *txn) run() {
	for t.state != txnDone {
		t.advance()
	}
	if a := t.h.attr; a != nil {
		t.finishAttr(a)
	}
}

// advance is the single transition function: it executes the current
// state's action and selects the successor. Kind-specific behavior
// (what "DirAction" means for a fetch vs. an RMO vs. an NT store) is
// dispatched inside the state's step, so the lifecycle shape stays
// readable in one place.
func (t *txn) advance() {
	switch t.state {
	case txnIdle:
		t.stepStart()
	case txnLookup:
		t.stepLookup()
	case txnL1Probe:
		t.stepL1Probe()
	case txnSibSnoop:
		t.stepSibSnoop()
	case txnL2Probe:
		t.stepL2Probe()
	case txnMissAlloc:
		t.stepMissAlloc()
	case txnFetch:
		t.stepFetch()
	case txnCbPending:
		t.stepCbPending()
	case txnFill:
		t.stepFill()
	case txnValidate:
		t.stepValidate()
	case txnHomeLocked:
		t.stepHomeLocked()
	case txnHomeProbe:
		t.stepHomeProbe()
	case txnHomeFetch:
		t.stepHomeFetch()
	case txnHomeFill:
		t.stepHomeFill()
	case txnDirAction:
		t.stepDirAction()
	case txnRespond:
		t.stepRespond()
	case txnCommit:
		t.stepCommit()
	case txnUnlock:
		t.stepUnlock()
	default:
		panic(fmt.Sprintf("hier: %v transaction advanced in state %v", t.kind, t.state))
	}
}

// stepStart routes Idle to each kind's entry state.
func (t *txn) stepStart() {
	switch t.kind {
	case kindAccess, kindFlushEvict:
		t.to(txnLookup)
	default:
		t.to(txnHomeLocked)
	}
}

// ---- private side (kindAccess, kindFlushEvict) ----

// stepLookup waits out pending-line locks on the requesting tile; it is
// the universal retry target. A flush eviction does not wait repeatedly:
// a locked line is skipped this pass and retried by the flush walk.
func (t *txn) stepLookup() {
	if t.kind == kindFlushEvict {
		var lt *lockTable
		if t.flushBank {
			lt = &t.hm.l3pending
		} else {
			lt = &t.t.pending
		}
		if lt.waitIfLocked(t.p, t.la) {
			t.aborted = true
			t.to(txnDone)
			return
		}
		t.to(txnCommit)
		return
	}
	// Respect callback locks and in-flight fills on this line.
	if t.t.pending.waitIfLocked(t.p, t.la) {
		t.to(txnLookup)
		return
	}
	if t.o.prefetch {
		t.to(txnL2Probe) // prefetches fill the L2 only; no L1 probe
		return
	}
	t.to(txnL1Probe)
}

// stepL1Probe is the top-level (core or engine L1d) probe.
func (t *txn) stepL1Probe() {
	h, p := t.h, t.p
	topHits, topMisses := h.hot.top(t.o.engine)
	h.Meter.Add(energy.L1Access, 1)
	p.Sleep(h.cfg.L1Latency)
	if t.t.pending.waitIfLocked(p, t.la) { // lock raced in during sleep
		t.to(txnLookup)
		return
	}
	if ls := t.top.Lookup(t.a); ls != nil {
		h.debugCheckFresh(t.tileID, t.la, "l1-hit")
		if t.o.write && !h.hasExclusiveT(t.t, t.la) {
			h.upgrade(p, t.tileID, t.la)
			t.to(txnLookup)
			return
		}
		t.top.Touch(t.a)
		t.top.Stats.Hits++
		topHits.Inc()
		if t.o.write {
			h.snoopSibling(t.tileID, t.la, t.o.engine)
		}
		t.result, t.resultSet = ls, true
		t.to(txnCommit)
		return
	}
	t.top.Stats.Misses++
	topMisses.Inc()
	// Clustered coherence (§4.3): the core and engine L1ds snoop within
	// the tile. A miss in one that hits in the other migrates the line
	// (with its dirty state) instead of fetching stale data from the
	// shared level — the directory tracks the tile as one domain, so
	// the home copy may be behind this tile's own sibling L1.
	sib := t.t.el1
	if t.o.engine {
		sib = t.t.l1
	}
	if sib.Contains(t.la) {
		t.to(txnSibSnoop)
		return
	}
	t.to(txnL2Probe)
}

// stepSibSnoop migrates the line from the tile's sibling L1d.
func (t *txn) stepSibSnoop() {
	h, p := t.h, t.p
	sib := t.t.el1
	if t.o.engine {
		sib = t.t.l1
	}
	h.hot.snoopMigrations.Inc()
	h.Meter.Add(energy.L1Access, 1)
	p.Sleep(h.cfg.L1Latency)
	// Extract only after the latency sleep: a line held in a local
	// variable across a sleep is invisible to concurrent invalidations
	// and downgrades, and re-installing it would resurrect dirty data
	// they could not see. If the copy vanished during the sleep, the
	// retry refetches it.
	if ls, ok := sib.ExtractLine(t.la); ok {
		meta := fillMeta{phantom: ls.Phantom, dirty: ls.Dirty, engine: t.o.engine}
		h.fillTop(t.tileID, t.a, &ls.Data, meta, t.o.engine)
	}
	// Retry from the top: the hit path applies write permission checks
	// and replacement updates.
	t.to(txnLookup)
}

// stepL2Probe probes the tile's private L2. All accesses probe it
// (engines are clustered with it, §4.3); only core accesses and
// private-callback engine accesses allocate there on a miss.
func (t *txn) stepL2Probe() {
	h, p := t.h, t.p
	h.Meter.Add(energy.L2Access, 1)
	p.Sleep(h.cfg.L2TagLat)
	if t.t.pending.waitIfLocked(p, t.la) {
		t.to(txnLookup)
		return
	}
	if ls2 := t.t.l2.Lookup(t.a); ls2 != nil {
		h.debugCheckFresh(t.tileID, t.la, "l2-hit")
		if t.o.write && !h.hasExclusiveT(t.t, t.la) {
			h.upgrade(p, t.tileID, t.la)
			t.to(txnLookup)
			return
		}
		p.Sleep(h.cfg.L2DataLat)
		t.t.l2.Touch(t.a)
		t.t.l2.Stats.Hits++
		h.hot.l2Hits.Inc()
		ls2 = t.t.l2.Lookup(t.a)
		if ls2 == nil {
			t.to(txnLookup) // evicted during the data-array sleep
			return
		}
		if t.o.write && !h.hasExclusiveT(t.t, t.la) {
			// Ownership was revoked during the data-array sleep (a
			// concurrent read downgraded us): dirtying the line now
			// would skip the invalidation of the new sharers. Retry,
			// which re-upgrades.
			t.to(txnLookup)
			return
		}
		if t.o.prefetch {
			t.result, t.resultSet = ls2, true
			t.to(txnCommit)
			return
		}
		meta := fillMeta{phantom: ls2.Phantom, dirty: false, engine: t.o.engine}
		h.fillTop(t.tileID, t.a, &ls2.Data, meta, t.o.engine)
		t.to(txnCommit) // Commit re-probes the L1 and retries if the fill vanished
		return
	}
	t.t.l2.Stats.Misses++
	h.hot.l2Misses.Inc()
	if !t.o.engine {
		h.notifyPrefetcher(p, t.tileID, t.a)
	}
	t.to(txnMissAlloc)
}

// stepMissAlloc allocates an MSHR (core accesses only; engines have
// dedicated slots so callbacks can always make progress, §5.2) and takes
// the pending-line lock for the fetch.
func (t *txn) stepMissAlloc() {
	p := t.p
	if t.t.pending.waitIfLocked(p, t.la) {
		t.to(txnLookup)
		return
	}
	t.usedMSHR = !t.o.engine && !t.o.prefetch
	if t.usedMSHR {
		t.t.mshr.Acquire(p)
		if t.t.pending.locked(t.la) {
			t.t.mshr.Release()
			t.usedMSHR = false
			t.t.pending.waitIfLocked(p, t.la)
			t.to(txnLookup)
			return
		}
	}
	t.lockTok = t.t.pending.lock(t.la)
	t.haveLock = true
	t.fetchStart = p.Now()
	t.to(txnFetch)
}

// stepFetch obtains the line for the private domain: either via a
// PRIVATE Morph's onMiss (phantom lines never touch the levels below,
// §4.3) or by driving a home-side fetch transaction.
func (t *txn) stepFetch() {
	h := t.h
	if h.registry != nil {
		if b, ok := h.registry.Binding(t.tileID, t.a); ok && b.Level == LevelPrivate {
			if !b.Phantom {
				// Real-address Morph: read backing data (the paper
				// overlaps this with the callback; we serialize, see
				// DESIGN.md).
				t.fetchFromHome()
			} else {
				t.t.phantomMissFills++
			}
			t.meta = fillMeta{morph: true, phantom: b.Phantom, dirty: t.o.write}
			if b.HasMiss && h.runner != nil {
				t.cb = b
				t.to(txnCbPending)
				return
			}
			t.to(txnFill)
			return
		}
	}
	t.fetchFromHome()
	t.meta = fillMeta{dirty: t.o.write}
	t.to(txnFill)
}

// fetchFromHome obtains la's line with read (or write) permission from
// its home tile, filling dst. Classically this drives a nested home
// transaction inline; sharded it is an RPC to the home shard
// (sharded.go), which leaves the request attached as t.req so stepFill
// can ack the install.
func (t *txn) fetchFromHome() {
	if t.h.sharded {
		t.req = t.h.fetchFromHomeSharded(t.p, t.t, t.a, t.o, &t.data)
		return
	}
	t.h.fetchFromHome(t.p, t.tileID, t.a, t.o, &t.data)
}

// stepCbPending runs the Morph onMiss callback that owns the line
// buffer, waiting for the engine to finish. A private access runs the
// callback on the requesting tile; home-side transactions run it on the
// home tile (RMOs without a per-callback trace span, as before).
func (t *txn) stepCbPending() {
	h, p := t.h, t.p
	h.hot.cb[CbMiss].Inc()
	switch t.kind {
	case kindAccess:
		if h.tracer != nil {
			h.TraceAt(t.tileID, h.comp.l2[t.tileID], "cb.onMiss", t.la.String())
		}
		_, done := h.runner.Run(t.tileID, CbMiss, t.cb, t.la, &t.data)
		p.Wait(done)
		t.to(txnFill)
	case kindHomeFetch:
		if h.tracer != nil {
			h.TraceAt(t.home, h.comp.l3[t.home], "cb.onMiss", t.la.String())
		}
		_, done := h.runner.Run(t.home, CbMiss, t.cb, t.la, &t.data)
		p.Wait(done)
		t.to(txnHomeFill)
	default: // kindRMO
		_, done := h.runner.Run(t.home, CbMiss, t.cb, t.la, &t.data)
		p.Wait(done)
		t.to(txnHomeFill)
	}
}

// stepFill installs the fetched line into the private caches.
func (t *txn) stepFill() {
	h, p := t.h, t.p
	if h.tracer != nil {
		h.tracerAt(t.tileID).EmitSpan(t.fetchStart, p.Now(), h.comp.l2[t.tileID], "l2.miss", t.la.String())
	}
	t.meta.engine = t.o.engine
	// Everything except private phantom lines went through the home
	// directory, which registered us as a sharer (and owner, for
	// writes) during the fetch.
	t.viaHome = !(t.meta.morph && t.meta.phantom)
	// The grant is re-checked in the same synchronous continuation as
	// each install attempt: the fetched line is invisible to concurrent
	// invalidations while in flight, so a grant revoked during any sleep
	// since the home response (transfer, insertL2 retry) means t.data is
	// stale. Checking after the last sleep with no event boundary before
	// the install means a stale copy is never made visible — not even to
	// the invariant checker, which runs from the insert's own event.
	if allocL2 := !t.o.engine || t.o.viaL2; allocL2 {
		// The L2 copy stays clean: dirtiness is tracked at the writing
		// L1 and merged down on eviction, so a stale L2 copy can never
		// masquerade as the newest data.
		l2meta := t.meta
		l2meta.dirty = false
		for t.stillGranted() {
			if h.insertL2(t.tileID, t.a, &t.data, l2meta) {
				if !t.o.prefetch {
					topMeta := t.meta
					topMeta.morph = false
					h.fillTop(t.tileID, t.a, &t.data, topMeta, t.o.engine)
				}
				break
			}
			p.Sleep(1)
		}
	} else if !t.o.prefetch && t.stillGranted() {
		topMeta := t.meta
		topMeta.morph = false
		h.fillTop(t.tileID, t.a, &t.data, topMeta, t.o.engine)
	}
	if h.sharded && t.req != nil {
		// Ack the install so the home can drop the line's Locked bit and
		// home-line lock; until then no other transaction can touch the
		// line, which is what makes the in-flight copy invisible to
		// invalidations without a classic revoke-and-retry.
		h.sendInstallAck(t.p, t.t, t.req)
		t.req = nil
	}
	t.to(txnValidate)
}

// stillGranted reports whether the directory still grants this tile the
// line fetched via the home (private phantom fills never touch the
// directory and are always granted). On a sharded build the home holds
// the home-line lock (and the L3 line's Locked bit) until the requester
// acks the install, so a grant can never be revoked while the line is in
// flight — it is always granted by protocol.
func (t *txn) stillGranted() bool {
	return !t.viaHome || t.h.sharded || t.h.dirStillGrants(t.tileID, t.la, t.o.write)
}

// stepValidate bails out of a fetch whose directory grant was revoked
// while the line was in flight (a concurrent RMO, NT store, back-inval,
// or downgrade could not see it): nothing was installed, so release the
// pending lock and MSHR and retry the whole access. The extracts are
// defensive no-ops on this path.
func (t *txn) stepValidate() {
	h := t.h
	if h.sharded {
		// The install-ack protocol makes revocation-in-flight impossible
		// (see stillGranted); a remote tile also cannot peek at the
		// directory to check.
		t.to(txnCommit)
		return
	}
	if t.viaHome && !h.dirStillGrants(t.tileID, t.la, t.o.write) {
		t.top.ExtractLine(t.la)
		t.t.l2.ExtractLine(t.la)
		h.removeSharerIfNoCopies(t.tileID, t.la)
		lockFut := t.t.pending.unlock(t.la, t.lockTok)
		t.haveLock = false
		if t.usedMSHR {
			t.t.mshr.Release()
			t.usedMSHR = false
		}
		h.completeLock(t.t.K, lockFut)
		t.to(txnLookup)
		return
	}
	t.to(txnCommit)
}

// ---- home side (kindHomeFetch, kindRMO, kindNTStore, kindUpgrade) ----

// stepHomeLocked charges the request transfer (fetch and RMO kinds) and
// acquires the home-bank line lock.
func (t *txn) stepHomeLocked() {
	h, p := t.h, t.p
	if !h.sharded {
		// Sharded, the request transfer is charged by the requester at
		// send time and modeled as the message delay; the home-side
		// transaction starts when the request arrives.
		switch t.kind {
		case kindHomeFetch:
			p.Sleep(h.Mesh.Transfer(t.tileID, t.home, 8))
		case kindRMO:
			p.Sleep(h.Mesh.Transfer(t.tileID, t.home, 16)) // address + operand
		}
	}
	t.homeTok = h.lockHomeLine(p, t.la)
	switch t.kind {
	case kindNTStore, kindUpgrade:
		t.to(txnDirAction)
	default:
		t.to(txnHomeProbe)
	}
}

// stepHomeProbe probes the home L3 bank under the lock. On a hit the
// line is locked before the data-array sleep so a concurrent insert
// cannot victimize it mid-access.
func (t *txn) stepHomeProbe() {
	h, p := t.h, t.p
	h.Meter.Add(energy.L3Access, 1)
	p.Sleep(h.cfg.L3TagLat)
	t.ls3 = t.hm.l3.Lookup(t.a)
	if t.ls3 == nil {
		if t.kind == kindRMO {
			h.hot.rmoMisses.Inc()
		} else {
			t.hm.l3.Stats.Misses++
			h.hot.l3Misses.Inc()
			t.spanKind = "l3.miss"
		}
		t.to(txnHomeFetch)
		return
	}
	if t.kind == kindRMO {
		h.hot.rmoHits.Inc()
	} else {
		t.hm.l3.Stats.Hits++
		h.hot.l3Hits.Inc()
	}
	t.ls3.Locked = true
	p.Sleep(h.cfg.L3DataLat)
	t.hm.l3.Touch(t.a)
	t.to(txnDirAction)
}

// stepHomeFetch materializes the line on a home miss: a SHARED Morph's
// onMiss (phantom lines never reach DRAM), or a DRAM read.
func (t *txn) stepHomeFetch() {
	h, p := t.h, t.p
	if t.kind == kindHomeFetch {
		// Engine fills and prefetched lines insert at distant
		// re-reference priority in the shared cache (trrîp, §5.2):
		// streamed-once data should not displace reused lines.
		t.meta = fillMeta{engine: t.o.engine || t.o.prefetch}
	} else {
		t.meta = fillMeta{}
	}
	if h.registry != nil {
		if b, ok := h.registry.Binding(t.home, t.a); ok && b.Level == LevelShared {
			if b.Phantom {
				t.hm.phantomMissFills++
			} else {
				h.dramAt(t.home).ReadLineWait(p, t.la, &t.data)
			}
			t.meta.morph, t.meta.phantom = true, b.Phantom
			if t.kind == kindHomeFetch {
				// Morph lines are demand-bound even when a prefetch
				// materialized them: insert at normal priority (only
				// true engine-port fills demote).
				t.meta.engine = t.o.engine
			}
			if b.HasMiss && h.runner != nil {
				t.cb = b
				t.to(txnCbPending)
				return
			}
			t.to(txnHomeFill)
			return
		}
	}
	h.dramAt(t.home).ReadLineWait(p, t.la, &t.data)
	t.to(txnHomeFill)
}

// stepHomeFill installs the fetched line into the home bank. If the
// fill is immediately victimized under extreme pressure, the line is
// served (or updated) without caching — the bypass flag routes the
// directory action and commit around the missing L3 copy. The home line
// stays locked throughout so no other writer can race the in-flight
// data.
func (t *txn) stepHomeFill() {
	h, p := t.h, t.p
	for !h.insertL3(p, t.home, t.a, &t.data, t.meta) {
		p.Sleep(1)
	}
	t.ls3 = t.hm.l3.Lookup(t.a)
	if t.ls3 == nil {
		t.bypass = true
	}
	t.to(txnDirAction)
}

// stepDirAction performs the directory side of the transaction under
// the home lock. What that means is kind-specific — invalidations and
// downgrades for a fetch, dropping every copy for an RMO, superseding
// for an NT store, recall-and-grant for an upgrade — but it is the only
// state in which sharer sets and ownership change.
func (t *txn) stepDirAction() {
	h, p := t.h, t.p
	switch t.kind {
	case kindHomeFetch:
		if h.sharded {
			if t.bypass {
				if merged := t.dirActionSharded(nil); merged != nil {
					t.data = *merged
				}
			} else {
				t.ls3.Locked = true
				t.dirActionSharded(t.ls3)
			}
			t.to(txnRespond)
			return
		}
		if t.bypass {
			if merged := h.dirAction(p, t.tileID, t.la, t.o, nil); merged != nil {
				t.data = *merged
			}
		} else {
			t.ls3.Locked = true
			h.dirAction(p, t.tileID, t.la, t.o, t.ls3)
		}
		t.to(txnRespond)

	case kindRMO:
		if h.sharded {
			t.rmoDirActionSharded()
			t.to(txnCommit)
			return
		}
		if t.bypass {
			// Fill immediately victimized under extreme pressure:
			// invalidate any private copies (merging dirty data); the
			// commit applies the update straight to memory.
			if e := h.dirT(t.la).get(t.la); e != nil {
				for s := 0; s < h.cfg.Tiles; s++ {
					if e.has(s) {
						if data, dirty, _ := h.invalidatePrivate(s, t.la); dirty {
							t.data = data
						}
						e.remove(s)
					}
				}
				h.dirT(t.la).delete(t.la)
			}
			t.to(txnCommit)
			return
		}
		t.ls3.Locked = true
		// Invalidate stale private copies so the home copy is
		// authoritative.
		if e := h.dirT(t.la).get(t.la); e != nil {
			for s := 0; s < h.cfg.Tiles; s++ {
				if e.has(s) {
					if data, dirty, present := h.invalidatePrivate(s, t.la); present {
						h.hot.cohInvalidations.Inc()
						if dirty {
							t.ls3.Data = data
						}
						h.Mesh.Transfer(t.home, s, 8)
					}
					e.remove(s)
				}
			}
			e.owner = -1
			h.dirT(t.la).delete(t.la)
		}
		t.to(txnCommit)

	case kindNTStore:
		if h.sharded {
			t.ntDirActionSharded()
			t.to(txnCommit)
			return
		}
		// A full-line store supersedes all cached copies.
		if e := h.dirT(t.la).get(t.la); e != nil {
			for s := 0; s < h.cfg.Tiles; s++ {
				if e.has(s) {
					h.invalidatePrivate(s, t.la)
					e.remove(s)
				}
			}
			h.dirT(t.la).delete(t.la)
		}
		t.to(txnCommit)

	case kindUpgrade:
		t.stepUpgradeDir()
	}
}

// stepUpgradeDir is kindUpgrade's directory action: recall every other
// private copy through the home directory and grant ownership. Fast
// paths (untracked line, already owner, sole-sharer silent upgrade) skip
// the recall latency and go straight to Unlock.
func (t *txn) stepUpgradeDir() {
	h := t.h
	if h.sharded {
		t.upgradeDirSharded()
		return
	}
	e := h.dirT(t.la).get(t.la)
	if e == nil || e.owner == t.tileID {
		t.to(txnUnlock)
		return
	}
	if e.sharers == 1<<uint(t.tileID) {
		e.owner = t.tileID // sole sharer: silent upgrade
		h.debugCheckFresh(t.tileID, t.la, "silent-upgrade")
		t.to(txnUnlock)
		return
	}
	h.hot.cohUpgrades.Inc()
	for s := 0; s < h.cfg.Tiles; s++ {
		if s == t.tileID || !e.has(s) {
			continue
		}
		data, dirty, present := h.invalidatePrivate(s, t.la)
		if !present {
			e.remove(s)
			continue
		}
		h.hot.cohInvalidations.Inc()
		if dirty {
			if ls3 := t.hm.l3.Lookup(t.la); ls3 != nil {
				ls3.Data = data
				ls3.Dirty = true
				if h.freshChecks {
					h.debugLogHome(t.la, fmt.Sprintf("upgrade-merge(from=%d)", s), data.U64(16))
				}
			}
		}
		lat := h.Mesh.Transfer(t.home, s, 8) + h.Mesh.Transfer(s, t.home, 8)
		if lat > t.maxLat {
			t.maxLat = lat
		}
		e.remove(s)
	}
	e.add(t.tileID)
	e.owner = t.tileID
	if h.freshChecks {
		h.debugLogHome(t.la, fmt.Sprintf("upgrade-grant(%d)", t.tileID), 0)
	}
	h.debugCheckFresh(t.tileID, t.la, "upgrade")
	h.event("upgrade")
	t.to(txnRespond)
}

// stepRespond charges the response latency back to the requester, still
// under the home lock. For a fetch, releasing the lock before the data
// lands would let another requester modify the line while our (now
// stale) copy is in flight, losing its update when we install the copy.
func (t *txn) stepRespond() {
	h, p := t.h, t.p
	if h.sharded {
		t.respondSharded()
		t.to(txnUnlock)
		return
	}
	switch t.kind {
	case kindHomeFetch:
		if !t.bypass {
			t.data = t.ls3.Data
		}
		p.Sleep(h.Mesh.Transfer(t.home, t.tileID, mem.LineSize))
		if !t.bypass {
			t.ls3.Locked = false
		}
	case kindNTStore:
		p.Sleep(h.Mesh.Transfer(t.tileID, t.home, mem.LineSize))
	case kindUpgrade:
		p.Sleep(h.Mesh.Latency(t.tileID, t.home, 8) + t.maxLat + h.Mesh.Latency(t.home, t.tileID, 8))
	}
	t.to(txnUnlock)
}

// stepCommit applies the transaction's architectural effect and, on the
// private side, finalizes the result (releasing the miss resources).
func (t *txn) stepCommit() {
	h := t.h
	switch t.kind {
	case kindAccess:
		if t.haveLock {
			lockFut := t.t.pending.unlock(t.la, t.lockTok)
			t.haveLock = false
			if t.usedMSHR {
				t.t.mshr.Release()
				t.usedMSHR = false
			}
			h.completeLock(t.t.K, lockFut)
			if t.o.prefetch {
				t.result, t.resultSet = t.t.l2.Lookup(t.a), true
				t.to(txnDone)
				return
			}
		}
		if t.resultSet {
			t.to(txnDone)
			return
		}
		if ls := t.top.Lookup(t.a); ls != nil {
			if t.o.write {
				h.snoopSibling(t.tileID, t.la, t.o.engine)
			}
			t.result, t.resultSet = ls, true
			t.to(txnDone)
			return
		}
		// Extremely rare: our fill was evicted before we committed.
		t.to(txnLookup)

	case kindRMO:
		off := t.a.Offset() &^ 7
		if t.bypass {
			old := t.data.U64(off)
			t.data.SetU64(off, t.op.apply(old, t.val))
			h.dramAt(t.home).WriteLineNoWait(t.la, &t.data)
			if h.obs != nil {
				h.obs.RMOCommitted(t.tileID, t.a, t.op, t.val, old, t.op.apply(old, t.val))
			}
			h.event("rmo.bypass")
			t.to(txnUnlock)
			return
		}
		old := t.ls3.Data.U64(off)
		t.ls3.Data.SetU64(off, t.op.apply(old, t.val))
		t.ls3.Dirty = true
		if h.freshChecks {
			h.debugLogHome(t.la, fmt.Sprintf("rmo-commit(from=%d)", t.tileID), t.ls3.Data.U64(16))
		}
		if h.obs != nil {
			h.obs.RMOCommitted(t.tileID, t.a, t.op, t.val, old, t.op.apply(old, t.val))
		}
		h.event("rmo.commit")
		t.to(txnUnlock)

	case kindNTStore:
		if ls3 := t.hm.l3.Lookup(t.la); ls3 != nil {
			ls3.Data = *t.ext
			ls3.Dirty = true
			h.Meter.Add(energy.L3Access, 1)
		} else {
			h.dramAt(t.home).WriteLineNoWait(t.la, t.ext) // bypasses the cache entirely
		}
		if h.obs != nil {
			h.obs.LineStored(t.tileID, t.a, t.ext, true)
		}
		h.event("nt.store")
		h.hot.ntStores.Inc()
		t.to(txnRespond)

	case kindFlushEvict:
		var c *cache.Cache
		if t.flushBank {
			c = t.hm.l3
		} else {
			c = t.t.l2
		}
		ls, ok := c.ExtractLine(t.la)
		if !ok {
			t.to(txnDone)
			return
		}
		t.evicted = true
		h.hot.flushLines.Inc()
		if t.flushBank {
			h.handleL3Eviction(t.p, t.home, ls, t.futs)
		} else {
			h.handleL2Eviction(t.tileID, ls, t.futs)
		}
		t.to(txnDone)
	}
}

// stepUnlock releases the home-bank line lock, waking queued waiters,
// and closes out the home-side trace span.
func (t *txn) stepUnlock() {
	h, p := t.h, t.p
	if t.kind == kindRMO && !t.bypass {
		t.ls3.Locked = false
	}
	h.unlockHomeLine(t.la, t.homeTok)
	if h.sharded && t.req != nil {
		// RMO / NT-store / upgrade completion back to the requester. The
		// data (or request) transfer was charged at send time, so the
		// completion models only the return latency, uncounted — matching
		// the classic response sleeps, which bypass the transfer counters
		// for these kinds. Fetches respond (and nil t.req) in stepRespond.
		// After completing done the requester may recycle the request, so
		// drop our reference first.
		req := t.req
		t.req = nil
		h.completeOrdered(t.hm, req.tile, h.Mesh.Latency(t.home, req.tile, 8), req.done)
	}
	if t.tracing {
		// One span per home-bank service on the bank's track: request
		// arrival through data response (covers queueing on the home
		// line, DRAM fills, and SHARED callbacks).
		h.tracerAt(t.home).EmitSpan(t.homeStart, p.Now(), h.comp.l3[t.home], t.spanKind, t.la.String())
	}
	t.to(txnDone)
}
