// Command takoreport regenerates every table and figure of the paper's
// evaluation, printing each and optionally writing a combined report.
//
// Usage:
//
//	takoreport [-full] [-out report.txt] [-skip fig25,fig22]
//	takoreport -bench bench.json [-golden ops.golden.json]
//
// -bench captures every run's typed metrics (per-experiment cycle and
// architectural-op counts, latency histograms) into a JSON report. With
// -golden, each experiment's op count is compared against the golden
// file and any drift fails the command — ops (committed core + engine
// instructions + DRAM transfers) are deterministic and insensitive to
// timing-model tuning, so CI gates on them while cycle counts are only
// reported. -update-golden rewrites the golden from the current run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tako/internal/exp"
	"tako/internal/system"
)

// benchEntry aggregates one experiment's captured runs.
type benchEntry struct {
	ID     string             `json:"id"`
	Ops    uint64             `json:"ops"`    // summed over runs; gated against the golden
	Cycles uint64             `json:"cycles"` // summed over runs; reported, never gated
	Runs   []system.RunRecord `json:"runs"`
}

// benchReport is the document written by -bench.
type benchReport struct {
	Scale       string       `json:"scale"`
	Experiments []benchEntry `json:"experiments"`
}

func main() {
	var (
		full  = flag.Bool("full", false, "run at full (slow) scale")
		out   = flag.String("out", "", "also write the report to this file")
		skip  = flag.String("skip", "", "comma-separated experiment ids to skip")
		bench = flag.String("bench", "", "write per-experiment metrics (JSON) to this file")

		golden       = flag.String("golden", "", "compare each experiment's op count against this golden JSON (requires -bench)")
		updateGolden = flag.Bool("update-golden", false, "rewrite the -golden file from this run instead of comparing")
	)
	flag.Parse()

	skipped := map[string]bool{}
	for _, id := range strings.Split(*skip, ",") {
		if id != "" {
			skipped[id] = true
		}
	}

	var report strings.Builder
	emit := func(format string, args ...interface{}) {
		s := fmt.Sprintf(format, args...)
		fmt.Print(s)
		report.WriteString(s)
	}

	scale := "quick"
	if *full {
		scale = "full"
	}
	emit("täkō reproduction report — every table and figure of the evaluation\n")
	emit("scale: %s\n\n", scale)
	var entries []benchEntry
	failures := 0
	for _, e := range exp.All() {
		if skipped[e.ID] {
			emit("== %s: SKIPPED ==\n\n", e.ID)
			continue
		}
		emit("== %s: %s ==\npaper: %s\n", e.ID, e.Title, e.Paper)
		if *bench != "" {
			system.StartCapture(system.CaptureConfig{})
		}
		start := time.Now()
		tbl, err := e.Run(!*full)
		if *bench != "" {
			runs, _ := system.StopCapture()
			entry := benchEntry{ID: e.ID, Runs: runs}
			if entry.Runs == nil {
				entry.Runs = []system.RunRecord{}
			}
			for _, r := range runs {
				entry.Ops += r.Ops
				entry.Cycles += r.Cycles
			}
			if err == nil {
				entries = append(entries, entry)
			}
		}
		if err != nil {
			emit("ERROR: %v\n\n", err)
			failures++
			continue
		}
		emit("%s(%s)\n\n", tbl.String(), time.Since(start).Round(time.Millisecond))
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "takoreport: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if *bench != "" {
		if err := writeBench(*bench, scale, entries); err != nil {
			fmt.Fprintf(os.Stderr, "takoreport: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("bench metrics written to %s (%d experiments)\n", *bench, len(entries))
		if *golden != "" {
			if err := checkGolden(*golden, scale, entries, *updateGolden); err != nil {
				fmt.Fprintf(os.Stderr, "takoreport: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "takoreport: %d experiments failed\n", failures)
		os.Exit(1)
	}
}

func writeBench(path, scale string, entries []benchEntry) error {
	if entries == nil {
		entries = []benchEntry{}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(benchReport{Scale: scale, Experiments: entries}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// opsGolden is the golden-file shape: per-scale maps of experiment id to
// expected architectural op count.
type opsGolden map[string]map[string]uint64

// checkGolden gates each experiment's op count against the golden file
// (or rewrites the file when update is set). Experiments absent from the
// golden are reported but don't fail, so adding an experiment doesn't
// break CI before the golden is refreshed.
func checkGolden(path, scale string, entries []benchEntry, update bool) error {
	g := opsGolden{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &g); err != nil {
			return fmt.Errorf("parse golden %s: %v", path, err)
		}
	} else if !update {
		return fmt.Errorf("read golden %s: %v (run with -update-golden to create it)", path, err)
	}
	if update {
		m := map[string]uint64{}
		for _, e := range entries {
			m[e.ID] = e.Ops
		}
		g[scale] = m
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("ops golden updated: %s [%s]\n", path, scale)
		return nil
	}
	want, ok := g[scale]
	if !ok {
		return fmt.Errorf("golden %s has no %q scale (run with -update-golden)", path, scale)
	}
	var drift []string
	for _, e := range entries {
		w, ok := want[e.ID]
		if !ok {
			fmt.Printf("ops gate: %s not in golden (ops=%d); refresh with -update-golden\n", e.ID, e.Ops)
			continue
		}
		if e.Ops != w {
			drift = append(drift, fmt.Sprintf("%s: ops %d, golden %d", e.ID, e.Ops, w))
		}
	}
	if len(drift) > 0 {
		return fmt.Errorf("op counts drifted from golden %s:\n  %s", path, strings.Join(drift, "\n  "))
	}
	fmt.Printf("ops gate: %d experiments match golden\n", len(entries))
	return nil
}
