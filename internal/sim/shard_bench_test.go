package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// benchShardedRun drives a 16-shard workload to completion at the given
// worker width and returns the total events executed. Each event does
// `work` rounds of local integer mixing (standing in for cache/directory
// model compute) and every 16th event posts a cross-shard message, so
// the benchmark exercises mailboxes and barriers, not just private
// queues.
func benchShardedRun(b *testing.B, workers, work int) uint64 {
	const (
		shards    = 16
		lookahead = 3
		chains    = 8 // concurrent event chains per shard (in-flight txns per tile)
	)
	s := NewSharded(shards, lookahead)
	perChain := b.N / (shards * chains)
	if perChain < 1 {
		perChain = 1
	}
	sink := make([]uint64, shards*8) // one cache line apart per shard
	noop := func() {}
	type load struct {
		sh *Shard
		n  int
		fn func()
	}
	for i := 0; i < shards; i++ {
		slot := &sink[i*8]
		next := (i + 1) % shards
		for c := 0; c < chains; c++ {
			l := &load{sh: s.Shard(i), n: perChain}
			l.fn = func() {
				x := *slot + 0x9e3779b97f4a7c15
				for w := 0; w < work; w++ {
					x ^= x >> 33
					x *= 0xff51afd7ed558ccd
					x ^= x >> 29
				}
				*slot = x
				if l.n--; l.n <= 0 {
					return
				}
				if l.n%16 == 0 {
					l.sh.Send(next, lookahead, noop)
				}
				l.sh.K.After(1, l.fn)
			}
			s.Shard(i).K.After(Cycle(1+c%lookahead), l.fn)
		}
	}
	if workers == 1 {
		s.RunSequenced()
	} else {
		s.Run(workers)
	}
	var total uint64
	for i := 0; i < shards; i++ {
		total += s.Shard(i).K.Events()
	}
	return total
}

// BenchmarkShardedThroughput sweeps worker widths over a 16-shard
// workload with per-event model compute (8 concurrent chains per shard,
// so each 3-cycle epoch carries ~24 events per shard and the barrier
// amortizes). The w1/w8 ratio is the single-run speedup headline; CI
// records the sweep in the bench artifact next to the sequential kernel
// benches. Speedup scales with real cores — on a single-core host every
// width degenerates to sequential plus barrier overhead — so every
// sub-benchmark records the host's core count and GOMAXPROCS alongside
// its throughput: trajectory tooling (cmd/benchtraj) annotates sweeps
// from effectively single-core runners instead of averaging them into
// speedup trends.
func BenchmarkShardedThroughput(b *testing.B) {
	for _, work := range []int{0, 64, 512} {
		for _, workers := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("work=%d/w=%d", work, workers), func(b *testing.B) {
				b.ReportAllocs()
				total := benchShardedRun(b, workers, work)
				b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "events/s")
				b.ReportMetric(float64(runtime.NumCPU()), "cpus")
				b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			})
		}
	}
}
