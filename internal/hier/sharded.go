package hier

import (
	"fmt"

	"tako/internal/cache"
	"tako/internal/dram"
	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/noc"
	"tako/internal/sim"
	"tako/internal/stats"
)

// This file is the message-passing form of the cross-tile protocol: the
// hierarchy hosted on a sim.Sharded engine, one tile per shard. Every
// cross-tile effect of the classic build — home-bank fetch service,
// directory invalidations and downgrades, upgrade recalls, writebacks,
// inclusive back-invalidations, DRAM reads and writes from remote tiles
// — becomes a mailbox message with a modeled mesh delay, so tiles
// advance in parallel under the conservative lookahead without ever
// touching another shard's state directly.
//
// Ownership discipline (who may touch what, from which shard):
//
//   - A tile's private caches, MSHRs, pending table, owned table, txn
//     and request pools, and lastArr channel clocks: that tile's shard
//     only.
//   - A home tile's L3 bank, l3pending table, directory bank
//     (h.dirs[home]), and DRAM controllers (h.drams[home]): the home
//     shard only. Remote requesters reach them by RPC (homeReq).
//   - Shared counters (Metrics, Meter, Mesh transfer counts, eventCount)
//     are concurrent-safe atomics, so totals are independent of the
//     worker count.
//
// Message ordering: each (src, dst) tile pair is a FIFO channel.
// sendOrdered stretches a message's delay past the last arrival already
// promised on that channel (deliver() breaks same-cycle ties by sender
// sequence), which the protocol leans on in three places: a writeback
// Put lands at the home before the same tile's later invalidation reply
// (so merges are never reordered behind the response that copies the
// line), a write grant lands at a requester before a later revocation,
// and an upgrade denial lands after the invalidation that caused it was
// already processed — so the denied requester's retry misses cleanly
// instead of looping.

// homeReq is one cross-tile request message: a private miss (fetch), a
// remote memory operation, a non-temporal store, or an ownership
// upgrade, sent from the requesting tile's shard to the home shard,
// which runs it as a home-side transaction. The requester parks on done;
// the home completes it when the transaction unlocks (or, for fetches,
// when the data response is sent). Requests are pooled per requesting
// tile; the home reads every field it needs before completing done and
// never touches the request afterwards, so the requester may recycle it
// immediately after its own final read.
type homeReq struct {
	kind txnKind
	tile int // requesting tile
	a    mem.Addr
	o    accessOpts

	// RMO operands.
	op  RMOOp
	val uint64

	// NT-store payload, copied in so the caller's buffer never crosses
	// shards; fetch response payload travels back in data.
	ext  mem.Line
	data mem.Line

	// granted is the upgrade verdict: false means the requester's copy
	// was invalidated while the request was in flight, and it must retry.
	granted bool

	// done (requester-owned, pooled) is completed by the home to finish
	// the RPC. ack (home-owned, pooled) is set on fetch responses and
	// completed by the requester once its install finishes; the home
	// holds the home-line lock until then, which is what makes in-flight
	// response data impossible to revoke (see txn.stillGranted).
	done *sim.Future
	ack  *sim.Future
}

func (h *Hierarchy) getReq(t *tile) *homeReq {
	if n := len(t.reqs); n > 0 {
		r := t.reqs[n-1]
		t.reqs[n-1] = nil
		t.reqs = t.reqs[:n-1]
		return r
	}
	return &homeReq{}
}

func (h *Hierarchy) putReq(t *tile, r *homeReq) {
	*r = homeReq{}
	if len(t.reqs) < 64 {
		t.reqs = append(t.reqs, r)
	}
}

// invReply is one invalidation/downgrade/recall round trip: the home
// fills in the target tile and a fresh (unpooled — several are
// outstanding at once) future, the remote handler fills in the extracted
// data and completes the future with the reply's mesh delay.
type invReply struct {
	tile    int
	data    mem.Line
	dirty   bool
	present bool
	fut     *sim.Future
}

// waitInvals parks p until every reply in invs has landed.
func waitInvals(p *sim.Proc, invs []invReply) {
	for i := range invs {
		p.Wait(invs[i].fut)
	}
}

// invKind classifies the cross-tile invalidation-style messages. The
// accounting per kind mirrors the classic inline paths: the request leg
// is charged at the home, the reply leg at the remote tile, and the
// remote handler increments the same coherence counters the classic
// code incremented at the directory.
type invKind uint8

const (
	invFetchWrite invKind = iota // write fetch: invalidate a sharer copy
	invDowngrade                 // read fetch: downgrade the dirty owner
	invUpgrade                   // upgrade: recall a sharer copy
	invRMO                       // RMO: drop a sharer copy
	invNT                        // NT store: supersede a sharer copy
	invBack                      // L3 eviction: inclusive back-invalidation
)

// ---- ordered channels ----

// orderDelay finalizes a message delay on t's channel to dst: clamped up
// to the engine lookahead when crossing shards (the modeled mesh latency
// is never below it when RouterDelay+LinkDelay ≥ lookahead, which
// NewSharded asserts — the clamp is a defensive floor), then stretched
// past the last arrival already promised on the channel so every
// (src, dst) pair stays FIFO even when modeled latencies differ.
func (h *Hierarchy) orderDelay(t *tile, dst int, lat sim.Cycle) sim.Cycle {
	if dst != t.id {
		if min := h.eng.Lookahead(); lat < min {
			lat = min
		}
	}
	now := t.K.Now()
	if now+lat < t.lastArr[dst] {
		lat = t.lastArr[dst] - now
	}
	t.lastArr[dst] = now + lat
	return lat
}

// sendOrdered sends fn to dst's shard on t's FIFO channel.
func (h *Hierarchy) sendOrdered(t *tile, dst int, lat sim.Cycle, fn func()) {
	t.shard.Send(dst, h.orderDelay(t, dst, lat), fn)
}

// completeOrdered completes f (owned by dst's shard) on t's FIFO channel.
func (h *Hierarchy) completeOrdered(t *tile, dst int, lat sim.Cycle, f *sim.Future) {
	t.shard.SendComplete(dst, h.orderDelay(t, dst, lat), f)
}

// ---- requester side: RPCs to the home shard ----

// sendHomeReq ships req to home, where it runs as a home-side
// transaction on the home's own shard.
func (h *Hierarchy) sendHomeReq(t *tile, home int, lat sim.Cycle, req *homeReq) {
	hm := h.tiles[home]
	h.sendOrdered(t, home, lat, func() {
		hm.K.Go(hm.homeNames[req.kind], func(p *sim.Proc) {
			h.runHomeTxn(p, hm, req)
		})
	})
}

// runHomeTxn drives one arrived request through the home-side state
// machine. The transaction is drawn from the home tile's pool and runs
// entirely on the home shard; req stays attached so the response steps
// (respondSharded, stepUnlock) can complete it.
func (h *Hierarchy) runHomeTxn(p *sim.Proc, hm *tile, req *homeReq) {
	x := h.getTxn(hm)
	x.h, x.p, x.kind = h, p, req.kind
	x.tileID, x.a, x.la, x.o = req.tile, req.a, req.a.Line(), req.o
	x.home, x.hm = hm.id, hm
	x.op, x.val = req.op, req.val
	if req.kind == kindHomeFetch {
		// Home-side span bookkeeping, mirroring fetchFromHome: the span
		// covers arrival to unlock and is re-labeled by the miss path.
		x.homeStart, x.spanKind = p.Now(), "l3.hit"
		x.tracing = h.tracer != nil
	}
	if req.kind == kindNTStore {
		x.ext = &req.ext
	}
	x.req = req
	x.run()
	h.putTxn(x)
}

// fetchFromHomeSharded is the message form of fetchFromHome: request out
// (the transfer charged at send, its latency the message delay), park on
// done, copy the response. The returned request is still live — the home
// is parked on its ack holding the home-line lock — and the caller
// (stepFill) completes the handshake with sendInstallAck after the
// install.
func (h *Hierarchy) fetchFromHomeSharded(p *sim.Proc, t *tile, a mem.Addr, o accessOpts, out *mem.Line) *homeReq {
	home := h.HomeTile(a)
	req := h.getReq(t)
	req.kind = kindHomeFetch
	req.tile = t.id
	req.a = a
	req.o = o
	req.done = t.K.GetFuture()
	h.sendHomeReq(t, home, h.Mesh.Transfer(t.id, home, 8), req)
	p.Wait(req.done)
	*out = req.data
	if o.write {
		// The home registered us as owner before responding; mirror the
		// grant in the tile-local permission view (hasExclusiveT).
		t.owned.Put(uint64(a.Line()), struct{}{})
	}
	return req
}

// sendInstallAck completes the fetch handshake after the private install:
// the home drops the L3 line's Locked bit and the home-line lock when the
// ack lands. Uncounted latency — the classic path has no such message.
func (h *Hierarchy) sendInstallAck(p *sim.Proc, t *tile, req *homeReq) {
	home := h.HomeTile(req.a)
	ack := req.ack
	h.putReq(t, req)
	h.completeOrdered(t, home, h.Mesh.Latency(t.id, home, 8), ack)
}

// upgradeSharded is the message form of upgrade. Request and completion
// are uncounted latency, matching the classic response sleep (which used
// Latency, not Transfer). A denial means the copy was invalidated while
// the request was in flight; the caller retries from Lookup and, because
// the invalidation was delivered on the home→tile FIFO ahead of the
// denial, the retry misses and fetches fresh data — no livelock.
func (h *Hierarchy) upgradeSharded(p *sim.Proc, tileID int, la mem.Addr) {
	t := h.tiles[tileID]
	home := h.HomeTile(la)
	req := h.getReq(t)
	req.kind = kindUpgrade
	req.tile = tileID
	req.a = la
	req.done = t.K.GetFuture()
	h.sendHomeReq(t, home, h.Mesh.Latency(tileID, home, 8), req)
	p.Wait(req.done)
	if req.granted {
		// Re-validate presence before recording ownership: the tile may
		// have evicted its last copy while the request was in flight (a
		// concurrent access's victim selection). That eviction's Put was
		// sent after this request, so it lands at the home after the
		// grant and undoes it (applyPut clears the sharer bit and
		// owner); recording ownership here would leave a stale owned
		// bit with no copy and no directory entry behind it. The caller
		// retries from Lookup either way, so a declined grant just
		// becomes a fresh write miss.
		still := false
		for _, c := range t.privateCaches() {
			if c.Contains(la) {
				still = true
				break
			}
		}
		if still {
			t.owned.Put(uint64(la), struct{}{})
		}
	}
	h.putReq(t, req)
}

// ntStoreSharded is the message form of StoreLineNT: the full-line
// transfer is charged at send (the classic path charged it in
// stepRespond) and the payload travels in the request.
func (h *Hierarchy) ntStoreSharded(p *sim.Proc, tileID int, a mem.Addr, line *mem.Line) {
	t := h.tiles[tileID]
	home := h.HomeTile(a)
	req := h.getReq(t)
	req.kind = kindNTStore
	req.tile = tileID
	req.a = a
	req.ext = *line
	req.done = t.K.GetFuture()
	h.sendHomeReq(t, home, h.Mesh.Transfer(tileID, home, mem.LineSize), req)
	p.Wait(req.done)
	h.putReq(t, req)
}

// rmoSharded is the message form of runRMO: address + operand out
// (16 bytes, as classic), commit at the home, completion back.
func (h *Hierarchy) rmoSharded(p *sim.Proc, tileID int, a mem.Addr, op RMOOp, delta uint64) {
	t := h.tiles[tileID]
	home := h.HomeTile(a)
	req := h.getReq(t)
	req.kind = kindRMO
	req.tile = tileID
	req.a = a
	req.op, req.val = op, delta
	req.done = t.K.GetFuture()
	h.sendHomeReq(t, home, h.Mesh.Transfer(tileID, home, 16), req)
	p.Wait(req.done)
	h.putReq(t, req)
}

// ---- invalidation round trips (home → remote tile → home) ----

// sendInval dispatches one invalidation-style message to tile s. The
// request leg's transfer is charged here (classic charged it at the
// directory); NT supersedes charge nothing, as classic charged nothing.
// The reply leg is charged by the remote handler, which knows whether a
// copy was present.
func (h *Hierarchy) sendInval(hm *tile, s int, la mem.Addr, kind invKind, r *invReply) {
	r.tile = s
	r.fut = sim.NewFuture(hm.K)
	var out sim.Cycle
	if kind == invNT {
		out = h.Mesh.Latency(hm.id, s, 8)
	} else {
		out = h.Mesh.Transfer(hm.id, s, 8)
	}
	st := h.tiles[s]
	home := hm.id
	h.sendOrdered(hm, s, out, func() {
		h.applyInval(st, home, la, kind, r)
	})
}

// applyInval is the remote tile's handler: extract (or downgrade) the
// local copies at event level — it never blocks — fill the reply, and
// complete it back to the home with the reply leg's delay. Counter
// increments mirror the classic directory loops exactly: invalidations
// count only when a copy was present, downgrades are counted at the home
// (which knows it is recalling the owner), back-invalidations count into
// l3.backinval.
func (h *Hierarchy) applyInval(st *tile, home int, la mem.Addr, kind invKind, r *invReply) {
	if kind == invDowngrade {
		data, dirty := h.downgradeOwner(st.id, la)
		st.owned.Delete(uint64(la))
		r.data, r.dirty, r.present = data, dirty, true
		h.completeOrdered(st, home, h.Mesh.Transfer(st.id, home, mem.LineSize), r.fut)
		return
	}
	data, dirty, present := h.invalidatePrivate(st.id, la)
	st.owned.Delete(uint64(la))
	r.data, r.dirty, r.present = data, dirty, present
	var back sim.Cycle
	switch kind {
	case invFetchWrite, invUpgrade:
		if present {
			h.hot.cohInvalidations.Inc()
			back = h.Mesh.Transfer(st.id, home, 8)
		} else {
			back = h.Mesh.Latency(st.id, home, 8)
		}
	case invRMO:
		// Classic charged the request leg only; the reply is uncounted
		// latency (but, unlike classic, a real wait — see
		// docs/performance.md on timing divergence).
		if present {
			h.hot.cohInvalidations.Inc()
		}
		back = h.Mesh.Latency(st.id, home, 8)
	case invNT:
		back = h.Mesh.Latency(st.id, home, 8)
	case invBack:
		if present {
			h.hot.l3Backinval.Inc()
			bytes := 8
			if dirty {
				bytes = mem.LineSize
			}
			back = h.Mesh.Transfer(st.id, home, bytes)
		} else {
			back = h.Mesh.Latency(st.id, home, 8)
		}
	}
	h.completeOrdered(st, home, back, r.fut)
}

// ---- home-side directory actions (txn steps) ----

// dirActionSharded is the message form of dirAction, running on the home
// shard under the home-line lock: write fetches invalidate every other
// sharer, read fetches downgrade a dirty owner, and dirty data recovered
// from the replies merges into ls3 (or memory, when the fill bypassed).
// Directory pointers are re-fetched after every wait — writeback Puts
// land as home events mid-park and may move or delete the entry — and
// new sharers cannot appear while we park because every fetch of this
// line queues on the lock we hold.
func (t *txn) dirActionSharded(ls3 *cache.LineState) (merged *mem.Line) {
	h := t.h
	e := h.dirOf(t.la)
	if t.o.write {
		mask := e.sharers
		t.invs = t.invs[:0]
		for s := 0; s < h.cfg.Tiles; s++ {
			if s != t.tileID && mask&(1<<uint(s)) != 0 {
				t.invs = append(t.invs, invReply{})
			}
		}
		// Second pass sends: the slice is fully grown, so the reply
		// pointers handed to sendInval stay stable.
		i := 0
		for s := 0; s < h.cfg.Tiles; s++ {
			if s != t.tileID && mask&(1<<uint(s)) != 0 {
				h.sendInval(t.hm, s, t.la, invFetchWrite, &t.invs[i])
				i++
			}
		}
		waitInvals(t.p, t.invs)
		for i := range t.invs {
			if r := &t.invs[i]; r.present && r.dirty {
				merged = h.applyDirtyMerge(ls3, t.la, r.data, "")
			}
		}
		e = h.dirOf(t.la)
		for s := 0; s < h.cfg.Tiles; s++ {
			if s != t.tileID && mask&(1<<uint(s)) != 0 {
				e.remove(s)
			}
		}
		e.add(t.tileID)
		e.owner = t.tileID
	} else {
		if owner := e.owner; owner >= 0 && owner != t.tileID {
			h.hot.cohDowngrades.Inc()
			t.invs = t.invs[:0]
			t.invs = append(t.invs, invReply{})
			h.sendInval(t.hm, owner, t.la, invDowngrade, &t.invs[0])
			waitInvals(t.p, t.invs)
			if r := &t.invs[0]; r.dirty {
				merged = h.applyDirtyMerge(ls3, t.la, r.data, "")
			}
			e = h.dirOf(t.la)
			e.owner = -1
		}
		e.add(t.tileID)
	}
	h.event("dirAction")
	return merged
}

// rmoDirActionSharded drops every private copy ahead of an RMO commit,
// merging dirty data into the home copy (or the transaction buffer when
// the fill bypassed), then deletes the directory entry — nil-tolerantly,
// since a Put landing mid-park may already have drained it.
func (t *txn) rmoDirActionSharded() {
	h := t.h
	if !t.bypass {
		t.ls3.Locked = true
	}
	e := h.dirT(t.la).get(t.la)
	if e == nil {
		return
	}
	mask := e.sharers
	t.invs = t.invs[:0]
	for s := 0; s < h.cfg.Tiles; s++ {
		if mask&(1<<uint(s)) != 0 {
			t.invs = append(t.invs, invReply{})
		}
	}
	i := 0
	for s := 0; s < h.cfg.Tiles; s++ {
		if mask&(1<<uint(s)) != 0 {
			h.sendInval(t.hm, s, t.la, invRMO, &t.invs[i])
			i++
		}
	}
	waitInvals(t.p, t.invs)
	for i := range t.invs {
		if r := &t.invs[i]; r.present && r.dirty {
			if t.bypass {
				t.data = r.data
			} else {
				t.ls3.Data = r.data
			}
		}
	}
	if e := h.dirT(t.la).get(t.la); e != nil {
		h.dirT(t.la).delete(t.la)
	}
}

// ntDirActionSharded supersedes every private copy ahead of an NT store;
// extracted data is deliberately dropped (the store overwrites the whole
// line), matching the classic supersede.
func (t *txn) ntDirActionSharded() {
	h := t.h
	e := h.dirT(t.la).get(t.la)
	if e == nil {
		return
	}
	mask := e.sharers
	t.invs = t.invs[:0]
	for s := 0; s < h.cfg.Tiles; s++ {
		if mask&(1<<uint(s)) != 0 {
			t.invs = append(t.invs, invReply{})
		}
	}
	i := 0
	for s := 0; s < h.cfg.Tiles; s++ {
		if mask&(1<<uint(s)) != 0 {
			h.sendInval(t.hm, s, t.la, invNT, &t.invs[i])
			i++
		}
	}
	waitInvals(t.p, t.invs)
	if e := h.dirT(t.la).get(t.la); e != nil {
		h.dirT(t.la).delete(t.la)
	}
}

// upgradeDirSharded is kindUpgrade's directory action under message
// passing. Unlike classic, a requester whose sharer bit vanished while
// the request was in flight is denied rather than silently granted: the
// invalidation that removed the bit was delivered to the requester on
// the home→tile FIFO before this denial, so its retry re-fetches instead
// of dirtying a dropped line. All paths exit through Unlock (the legal
// edge DirAction→Unlock); the completion message back to the requester
// is sent by stepUnlock.
func (t *txn) upgradeDirSharded() {
	h := t.h
	e := h.dirT(t.la).get(t.la)
	if e == nil || !e.has(t.tileID) {
		t.req.granted = false
		t.to(txnUnlock)
		return
	}
	if e.owner == t.tileID {
		t.req.granted = true
		t.to(txnUnlock)
		return
	}
	if e.sharers == 1<<uint(t.tileID) {
		e.owner = t.tileID // sole sharer: silent upgrade
		t.req.granted = true
		t.to(txnUnlock)
		return
	}
	h.hot.cohUpgrades.Inc()
	mask := e.sharers
	t.invs = t.invs[:0]
	for s := 0; s < h.cfg.Tiles; s++ {
		if s != t.tileID && mask&(1<<uint(s)) != 0 {
			t.invs = append(t.invs, invReply{})
		}
	}
	i := 0
	for s := 0; s < h.cfg.Tiles; s++ {
		if s != t.tileID && mask&(1<<uint(s)) != 0 {
			h.sendInval(t.hm, s, t.la, invUpgrade, &t.invs[i])
			i++
		}
	}
	waitInvals(t.p, t.invs)
	for i := range t.invs {
		if r := &t.invs[i]; r.present && r.dirty {
			// Mirror the classic upgrade merge exactly: dirty recalled
			// data lands in the home L3 copy (inclusion guarantees one).
			if ls3 := t.hm.l3.Lookup(t.la); ls3 != nil {
				ls3.Data = r.data
				ls3.Dirty = true
			}
		}
	}
	e = h.dirOf(t.la)
	for s := 0; s < h.cfg.Tiles; s++ {
		if s != t.tileID && mask&(1<<uint(s)) != 0 {
			e.remove(s)
		}
	}
	e.add(t.tileID)
	e.owner = t.tileID
	t.req.granted = true
	h.event("upgrade")
	t.to(txnUnlock)
}

// respondSharded sends a fetch's data response and parks until the
// requester acks its install; the home-line lock (and the L3 line's
// Locked bit) is held across the park, which is what replaces the
// classic revoke-and-retry validation. NT stores are a no-op here: their
// line transfer was charged at request send, and their completion is
// sent by stepUnlock.
func (t *txn) respondSharded() {
	h := t.h
	if t.kind != kindHomeFetch {
		return
	}
	req := t.req
	t.req = nil
	if !t.bypass {
		t.data = t.ls3.Data
	}
	req.data = t.data
	ack := t.hm.K.GetFuture()
	req.ack = ack
	h.completeOrdered(t.hm, req.tile, h.Mesh.Transfer(t.home, req.tile, mem.LineSize), req.done)
	t.p.Wait(ack)
	if !t.bypass {
		t.ls3.Locked = false
	}
}

// ---- writeback Puts (tile → home, non-blocking at both ends) ----

// sendPutDirty ships a dirty private writeback to the home shard. The
// local owner view clears unconditionally, matching the classic
// writebackToShared owner-clear; drop reports whether the domain still
// caches the line (the home then also clears the sharer bit). The
// message delay is the uncounted line transfer — the tile-side wb-timing
// proc charges the classic path's one counted transfer plus writeback
// buffer occupancy.
func (h *Hierarchy) sendPutDirty(t *tile, la mem.Addr, data *mem.Line) {
	home := h.HomeTile(la)
	drop := true
	for _, c := range t.privateCaches() {
		if c.Contains(la) {
			drop = false
			break
		}
	}
	t.owned.Delete(uint64(la))
	hm := h.tiles[home]
	line := *data
	h.sendOrdered(t, home, h.Mesh.Latency(t.id, home, mem.LineSize), func() {
		h.applyPut(hm, t.id, la, &line, true, drop)
	})
}

// sendPutClean drops this tile from la's sharer set at the home after
// the last clean copy left the private domain (the message form of
// removeSharerIfNoCopies).
func (h *Hierarchy) sendPutClean(t *tile, la mem.Addr) {
	home := h.HomeTile(la)
	t.owned.Delete(uint64(la))
	hm := h.tiles[home]
	h.sendOrdered(t, home, h.Mesh.Latency(t.id, home, 8), func() {
		h.applyPut(hm, t.id, la, nil, false, true)
	})
}

// applyPut is the home's Put handler, at event level (never blocks, so
// it is safe while home-side transactions are parked mid-wait on the
// same line): merge dirty data into the L3 copy or straight to DRAM
// (never inserting — an insert could evict, which needs a proc), clear
// ownership, and drop the sharer bit when the sender's domain emptied.
func (h *Hierarchy) applyPut(hm *tile, tileID int, la mem.Addr, data *mem.Line, dirty, drop bool) {
	if dirty {
		if ls3 := hm.l3.Lookup(la); ls3 != nil {
			ls3.Data = *data
			ls3.Dirty = true
		} else {
			h.dramAt(hm.id).WriteLineNoWait(la, data)
		}
	}
	e := h.dirT(la).get(la)
	if e == nil {
		return
	}
	if e.owner == tileID {
		e.owner = -1
	}
	if drop {
		e.remove(tileID)
		if e.empty() {
			h.dirT(la).delete(la)
		}
	}
}

// ---- inclusive back-invalidation on L3 eviction ----

func (t *tile) getInvs() []invReply {
	if n := len(t.invPool); n > 0 {
		s := t.invPool[n-1]
		t.invPool[n-1] = nil
		t.invPool = t.invPool[:n-1]
		return s[:0]
	}
	return nil
}

func (t *tile) putInvs(s []invReply) {
	if len(t.invPool) < 8 {
		t.invPool = append(t.invPool, s[:0])
	}
}

// backInvalSharded recalls every private copy of an evicted L3 line with
// real message round trips. Because the recalls park p, the eviction is
// no longer atomic the way the classic one is, and two orderings must be
// pinned down:
//
//   - A concurrent fetch of the victim must not read DRAM before the
//     dirty data lands there. The victim's home-line lock is free by
//     construction (victim selection excludes busy lines, and selection
//     and this lock happen in one event), so we take it for the duration
//     and any fetch queues behind it.
//
//   - Dirty data must reach DRAM newest-last. The evicted copy is
//     written before the recalls go out; a sharer that evicted its own
//     dirty copy mid-flight sent a Put that lands (FIFO) before its
//     recall reply, and the reply then finds no copy; a sharer still
//     holding a dirty copy returns it in the reply, written last. At
//     most one domain holds dirty data, so the final write is the newest.
func (h *Hierarchy) backInvalSharded(p *sim.Proc, homeID int, ev *cache.LineState) {
	la := ev.Tag
	hm := h.tiles[homeID]
	var b Binding
	morph := false
	if ev.Morph && h.registry != nil {
		b, morph = h.registry.Binding(homeID, la)
	}
	if ev.Phantom && !morph {
		panic(fmt.Sprintf("hier: phantom line %v in L3 with no Morph bound", la))
	}
	e := h.dirT(la).get(la)
	if e == nil {
		if morph {
			h.morphEvictShared(homeID, *ev, b, nil)
			return
		}
		if ev.Dirty {
			h.hot.l3Writebacks.Inc()
			h.dramAt(homeID).WriteLineNoWait(la, &ev.Data)
		}
		return
	}
	tok := hm.l3pending.lock(la)
	anyDirty := false
	if ev.Dirty && !morph {
		h.hot.l3Writebacks.Inc()
		h.dramAt(homeID).WriteLineNoWait(la, &ev.Data)
	}
	mask := e.sharers
	invs := hm.getInvs()
	for s := 0; s < h.cfg.Tiles; s++ {
		if mask&(1<<uint(s)) != 0 {
			invs = append(invs, invReply{})
		}
	}
	i := 0
	for s := 0; s < h.cfg.Tiles; s++ {
		if mask&(1<<uint(s)) != 0 {
			h.sendInval(hm, s, la, invBack, &invs[i])
			i++
		}
	}
	waitInvals(p, invs)
	for i := range invs {
		if r := &invs[i]; r.present && r.dirty {
			if morph {
				// A recalled dirty copy is newer than the evicted L3 data;
				// hand it to the callback (and the non-phantom writeback
				// inside morphEvictShared) instead of DRAM directly.
				ev.Data = r.data
				ev.Dirty = true
				continue
			}
			if !ev.Dirty && !anyDirty {
				h.hot.l3Writebacks.Inc()
			}
			anyDirty = true
			h.dramAt(homeID).WriteLineNoWait(la, &r.data)
		}
	}
	if e := h.dirT(la).get(la); e != nil {
		h.dirT(la).delete(la)
	}
	hm.putInvs(invs)
	if morph {
		// Spawn the callback before releasing the home-line lock so its
		// proc queues first: a racing fetch cannot re-materialize the line
		// (and accept stores) ahead of the eviction/writeback callback.
		h.morphEvictShared(homeID, *ev, b, nil)
	}
	h.completeLock(hm.K, hm.l3pending.mustUnlock(la, tok))
}

// ---- construction and lifecycle ----

// NewSharded builds a hierarchy hosted on a sim.Sharded engine, one tile
// per shard. täkō machines are fully supported: the registry must be
// partitioned per tile (hier.Registry's tile parameter selects the
// shard-local view) and the runner must schedule each callback on its
// tile's own shard kernel (engine.NewSharded does). The verification
// hooks that peek at remote state mid-epoch (fresh checks) are rejected
// in favor of epoch-barrier invariant checking (InstallBarrierChecks).
func NewSharded(eng *sim.Sharded, cfg Config, meter *energy.Meter, registry Registry, runner Runner) *Hierarchy {
	if cfg.Tiles <= 0 {
		panic("hier: need at least one tile")
	}
	if eng.Shards() != cfg.Tiles {
		panic(fmt.Sprintf("hier: sharded build needs one shard per tile (%d shards, %d tiles)",
			eng.Shards(), cfg.Tiles))
	}
	if cfg.FreshChecks {
		panic("hier: -sharded with -verify fresh checks is unsupported (per-access freshness assertions read " +
			"remote tiles mid-epoch); drop -sharded, or use SelfCheckEvery (epoch-barrier invariant checks) instead")
	}
	newPolicy := cfg.NewPolicy
	if newPolicy == nil {
		newPolicy = func() cache.Policy { return cache.NewTRRIP() }
	}
	meter.SetConcurrent()
	mesh := noc.NewMesh(cfg.NoC, meter)
	if mesh.MinCrossTileLatency() < 1 {
		panic("hier: sharded build needs RouterDelay+LinkDelay ≥ 1 (zero cross-tile latency leaves no lookahead)")
	}
	if eng.Lookahead() > mesh.MinCrossTileLatency() {
		panic(fmt.Sprintf("hier: engine lookahead %d exceeds minimum cross-tile latency %d; messages would violate it",
			eng.Lookahead(), mesh.MinCrossTileLatency()))
	}
	mesh.SetConcurrent()
	store := mem.NewMemory()
	store.SetConcurrent()
	reg := stats.NewRegistry()
	reg.SetConcurrent()
	h := &Hierarchy{
		K:        nil, // every path must use a tile kernel or the running proc's
		Mesh:     mesh,
		Meter:    meter,
		cfg:      cfg,
		registry: registry,
		runner:   runner,
		homeLog:  make(map[mem.Addr][]string),
		Metrics:  reg,
		comp:     newComponentNames(cfg.Tiles),
		sharded:  true,
		eng:      eng,
	}
	h.hot.resolve(reg)
	if cfg.Attribution {
		// The dwell/total histograms are commutative atomics; the SlowestK
		// ring is kept per tile (tile.slow) and merged deterministically in
		// SlowestAccesses, so both arms work sharded.
		h.attr = newTxnAttr(reg, cfg.SlowestK)
	}
	h.Mesh.AttachMetrics(reg)
	h.prefetchFn = func(p *sim.Proc, a0, a1 uint64) {
		h.access(p, int(a0), mem.Addr(a1), accessOpts{prefetch: true})
		h.tiles[a0].prefetchInflight--
	}
	h.wbTimingFn = func(p *sim.Proc, a0, a1 uint64) {
		t := h.tiles[a0]
		t.wbbuf.Acquire(p)
		p.Sleep(h.Mesh.Transfer(int(a0), int(a1), mem.LineSize))
		t.wbbuf.Release()
	}
	// One directory bank and one DRAM controller set per home tile, each
	// owned by (and only touched from) that home's shard; the DRAM
	// controllers share one concurrent backing memory.
	h.dirs = make([]dirTable, cfg.Tiles)
	dirProbes := reg.Histogram("dir.probe.len")
	for i := range h.dirs {
		h.dirs[i].tbl.SetProbeStats(dirProbes)
	}
	h.drams = make([]*dram.DRAM, cfg.Tiles)
	for i := range h.drams {
		d := dram.New(eng.Shard(i).K, cfg.DRAM, store, meter)
		d.AttachMetrics(reg, cfg.SamplePeriod, stats.L("home", i))
		h.drams[i] = d
	}
	h.DRAM = h.drams[0] // alias so Store() and friends keep working
	mshrProbes := reg.Histogram("mshr.probe.len")
	homeProbes := reg.Histogram("mshr.home.probe.len")
	bankShift := log2(cfg.Tiles)
	for i := 0; i < cfg.Tiles; i++ {
		t := h.buildTile(eng.Shard(i).K, i, newPolicy, mshrProbes, homeProbes, bankShift)
		t.shard = eng.Shard(i)
		t.lastArr = make([]sim.Cycle, cfg.Tiles)
		for k := 0; k < nTxnKinds; k++ {
			t.homeNames[k] = fmt.Sprintf("%s@%d", txnKind(k), i)
		}
		h.tiles = append(h.tiles, t)
	}
	if cfg.SelfCheckEvery > 0 {
		// Inline event-driven self-checks would walk tiles another shard
		// is mutating; check at epoch barriers instead, every N barriers.
		h.InstallBarrierChecks(uint64(cfg.SelfCheckEvery))
	}
	return h
}

// InstallBarrierChecks arms the full invariant checker at the engine's
// epoch barriers (every everyN-th barrier), the only points in a
// parallel run where every shard is parked and cross-shard state is
// quiescent. Panics on violation with the barrier count for replay.
func (h *Hierarchy) InstallBarrierChecks(everyN uint64) {
	if !h.sharded {
		panic("hier: InstallBarrierChecks requires a sharded hierarchy")
	}
	if everyN == 0 {
		everyN = 1
	}
	var n uint64
	h.eng.SetBarrierHook(func() {
		n++
		if n%everyN != 0 {
			return
		}
		if err := h.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("hier: invariant violated at epoch barrier %d: %v", n, err))
		}
	})
}

// FinishStats folds per-tile statistics into the hierarchy-wide views
// after a run quiesces: demand-load latencies recorded per tile (shard)
// merge into LoadLat via the parallel-variance merge. Harmless to call
// on a classic build (the per-tile distributions stay empty).
func (h *Hierarchy) FinishStats() {
	for _, t := range h.tiles {
		h.LoadLat.Merge(&t.loadLat)
		t.loadLat = stats.Dist{}
	}
	h.PhantomFills()
	if h.tracer != nil && h.tracers != nil {
		// Fold the per-shard trace forks into the attached tracer in
		// canonical (cycle, shard, emit-order) order.
		h.tracer.Merge(h.tracers)
	}
}
