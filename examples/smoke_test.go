// Package examples holds end-to-end smoke tests: every example program
// must build, and the quickstart and decompression walkthroughs must run
// to completion with non-trivial stats.
package examples

import (
	"os/exec"
	"regexp"
	"strconv"
	"testing"
)

func runExample(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = ".."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestExamplesBuild(t *testing.T) {
	cmd := exec.Command("go", "build", "-o", t.TempDir(), "./examples/...")
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./examples/...: %v\n%s", err, out)
	}
}

func TestQuickstartEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child simulation")
	}
	out := runExample(t, "./examples/quickstart")
	for _, stat := range []string{
		`onMiss fills:\s+(\d+)`,
		`onEviction runs:\s+(\d+)`,
		`simulated time:\s+(\d+) cycles`,
	} {
		m := regexp.MustCompile(stat).FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("output missing %q:\n%s", stat, out)
		}
		if n, _ := strconv.Atoi(m[1]); n == 0 {
			t.Fatalf("stat %q is zero:\n%s", stat, out)
		}
	}
	if !regexp.MustCompile(`squares\[ *500\] = +250000`).MatchString(out) {
		t.Fatalf("quickstart computed wrong squares:\n%s", out)
	}
}

func TestDecompressionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child simulation")
	}
	out := runExample(t, "./examples/decompression", "-values", "2048", "-reads", "4096")
	// Every variant row reports non-zero cycles.
	rows := regexp.MustCompile(`(?m)^(\S+)\s+(\d+)\s`).FindAllStringSubmatch(out, -1)
	if len(rows) < 5 {
		t.Fatalf("want >= 5 variant rows, got %d:\n%s", len(rows), out)
	}
	for _, r := range rows {
		if n, _ := strconv.Atoi(r[2]); n == 0 {
			t.Fatalf("variant %s reports zero cycles:\n%s", r[1], out)
		}
	}
	if !regexp.MustCompile(`(\d+\.\d+)x faster than the baseline`).MatchString(out) {
		t.Fatalf("no speedup summary:\n%s", out)
	}
}
