package hier

import (
	"fmt"
	"sync/atomic"
	"time"

	"tako/internal/analytic"
	"tako/internal/mem"
	"tako/internal/sim"
)

// Analytical fast-forward (ROADMAP item 2): the first N core memory
// accesses are executed functionally against the backing store while an
// exact reuse-distance collector (internal/analytic) observes the
// stream — no transactions, no coherence protocol, no event-kernel
// churn per access. When the budget is exhausted (or, in auto mode, the
// analytical miss ratios converge), the caches, TLBs, and directory are
// seeded from the collector's steady-state occupancy (seed.go) and the
// full event kernel takes over for the capture window.
//
// Fast-forward is exact functionally (values, including atomics, are
// bit-identical to full simulation on the cooperative kernel) and
// approximate temporally (warmup cycles are estimated, not simulated),
// so it is default-off and runs only on classic-kernel baseline
// (NoTako) machines: morph callbacks and the sharded message protocol
// both need the event kernel per access.

// ffChunk is the access count between auto-convergence checks; ffRetime
// the count between sleep-batch latency refreshes.
const (
	ffChunk  = 1 << 20
	ffRetime = 1 << 16
	// ffAutoCap bounds auto mode: convergence or not, switch over after
	// this many accesses.
	ffAutoCap = 256 << 20
	// ffConvergeTol is the per-level absolute miss-ratio delta between
	// consecutive chunks under which a chunk counts as stable;
	// ffConvergeRuns consecutive stable chunks trigger the switch.
	ffConvergeTol  = 0.005
	ffConvergeRuns = 2
	// ffSleepEvery batches virtual time: each proc sleeps once per this
	// many fast-forwarded accesses, keeping the cooperative kernel fair
	// (a proc that never sleeps would starve its siblings) while
	// spending a small fraction of the event-heap traffic. The batch
	// width is a fidelity/speed trade: it coarsens how tile streams
	// interleave into the merged shared-level stack, which the
	// capacity-straddling oracle workloads are sensitive to (at 256 the
	// uniform-llc L3 row drifts past 6% absolute; at 64 it stays within
	// ~1%, indistinguishable from per-access interleaving).
	ffSleepEvery = 64
)

// ffState is one hierarchy's fast-forward engine.
type ffState struct {
	budget   uint64
	auto     bool
	done     uint64
	switched bool

	col   *analytic.Collector
	model analytic.Model

	// Convergence tracking (auto mode): the model snapshot at the last
	// chunk boundary and the previous chunk's delta estimate.
	chunkSnap analytic.Model
	prevChunk analytic.Estimate
	haveChunk bool
	stable    int

	// Per-tile access counters driving the batched fairness sleeps, and
	// the per-batch latency (re-derived from the model every ffRetime
	// accesses so fast-forwarded virtual time tracks the estimate).
	counts   []uint32
	batchLat sim.Cycle

	// reported is the done count already folded into the process-wide
	// progress gauges (updated periodically, not per access).
	reported uint64

	seeded ffSeedCounts
}

// ffSeedCounts records how much warm state the switchover installed.
type ffSeedCounts struct {
	L1, L2, L3, TLB, Dir int
}

// Process-wide fast-forward progress, aggregated across all hierarchies
// (report generation runs many systems concurrently); introspect's
// /progress endpoint renders it with an ETA.
var (
	ffActiveSystems atomic.Int64
	ffDoneTotal     atomic.Uint64
	ffBudgetTotal   atomic.Uint64
	ffStartNanos    atomic.Int64
)

// FFView is a snapshot of process-wide fast-forward progress.
type FFView struct {
	Active   int    // hierarchies currently fast-forwarding
	Accesses uint64 // accesses fast-forwarded so far (all runs)
	Budget   uint64 // total accesses budgeted (all runs)
	PerSec   float64
}

// FFSnapshot returns process-wide fast-forward progress for live
// introspection.
func FFSnapshot() FFView {
	v := FFView{
		Active:   int(ffActiveSystems.Load()),
		Accesses: ffDoneTotal.Load(),
		Budget:   ffBudgetTotal.Load(),
	}
	if start := ffStartNanos.Load(); start != 0 && v.Accesses > 0 {
		if el := time.Since(time.Unix(0, start)).Seconds(); el > 0 {
			v.PerSec = float64(v.Accesses) / el
		}
	}
	return v
}

// EnableFastForward arms analytical fast-forward for the first budget
// core accesses (auto mode may switch earlier once per-level miss
// ratios converge; budget 0 with auto selects the default cap). space
// attributes the collector's reuse histograms to named regions and may
// be nil. Classic-kernel baseline machines only.
func (h *Hierarchy) EnableFastForward(budget uint64, auto bool, space *mem.Space) {
	if h.sharded {
		panic("hier: -ff/-ff-auto with -sharded is unsupported (the analytical warmup replays one global " +
			"access stream on the classic kernel); drop -sharded, or drop the fast-forward flags")
	}
	if h.registry != nil {
		panic("hier: -ff/-ff-auto on a täkō machine is unsupported (morph callbacks need the event kernel " +
			"per access); fast-forward baseline (Config.NoTako) machines, or drop the fast-forward flags")
	}
	if budget == 0 {
		if !auto {
			return
		}
		budget = ffAutoCap
	}
	cfg := h.cfg
	lineGeom := func(size, ways, banks int) analytic.Geom {
		return analytic.Geom{Sets: banks * size / (mem.LineSize * ways), Ways: ways}
	}
	dtlbCfg := h.tiles[0].dtlb.Config()
	f := &ffState{
		budget: budget,
		auto:   auto,
		col:    analytic.NewCollector(cfg.Tiles, uint(dtlbCfg.PageBits), space),
		counts: make([]uint32, cfg.Tiles),
		model: analytic.Model{
			L1:  lineGeom(cfg.L1Size, cfg.L1Ways, 1),
			L2:  lineGeom(cfg.L2Size, cfg.L2Ways, 1),
			L3:  lineGeom(cfg.L3BankSize, cfg.L3Ways, cfg.Tiles),
			TLB: dtlbCfg.Entries,
			Lat: analytic.Latencies{
				L1:      float64(cfg.L1Latency),
				L2:      float64(cfg.L2TagLat + cfg.L2DataLat),
				L3:      float64(cfg.L3TagLat+cfg.L3DataLat) + 10, // + average mesh round trip
				Mem:     60,                                       // average controller + device
				TLBWalk: 30,
			},
		},
		batchLat: ffSleepEvery, // until the first retime
	}
	// The L2/L3 models observe the filtered streams the simulator's
	// counters see (L1 misses, private misses), gated by exact
	// functional LRU content of the level above.
	f.col.SetFilters(f.model.L1, f.model.L2)
	h.ff = f
	ffActiveSystems.Add(1)
	ffBudgetTotal.Add(budget)
	ffStartNanos.CompareAndSwap(0, time.Now().UnixNano())
	h.Metrics.Counter("ff.accesses")
	h.Metrics.Counter("ff.switch.cycle")
}

// ffGate reports whether the calling access should take the analytical
// fast path. When the budget is exhausted it performs the switchover —
// seeding warm state and handing control to the event kernel — and the
// triggering access runs the normal path against a warm hierarchy.
func (h *Hierarchy) ffGate(p *sim.Proc) bool {
	f := h.ff
	if f == nil || f.switched {
		return false
	}
	if f.done >= f.budget {
		h.ffSwitch(p)
		return false
	}
	return true
}

// ffTouch records one fast-forwarded access: the collector observes its
// reuse distances, the model folds them into the running estimate, and
// every ffSleepEvery-th access per tile sleeps the batched latency so
// virtual time advances and sibling procs stay scheduled.
//
// Fast paths call ffTouch AFTER their functional effect: the sleep must
// come last, because another proc can reach the budget and switch over
// (seeding caches from the backing store) while this one is parked — a
// store performed after that seed would be invisible to the now-live
// caches. With the sleep trailing, every fast-path effect is already in
// the backing store before any switchover can observe it.
func (h *Hierarchy) ffTouch(p *sim.Proc, tileID int, a mem.Addr, write bool) {
	f := h.ff
	f.model.Observe(f.col.Touch(tileID, a, write))
	f.done++
	f.counts[tileID]++
	if f.counts[tileID]%ffSleepEvery == 0 {
		p.Sleep(f.batchLat)
	}
	if f.done%ffRetime == 0 {
		f.retime()
		ffDoneTotal.Add(f.done - f.reported)
		f.reported = f.done
	}
	if f.auto && f.done%ffChunk == 0 {
		f.checkConverged()
	}
}

// retime re-derives the per-batch sleep from the analytical average
// latency, so fast-forwarded virtual time approximates what simulation
// would have charged. Deterministic: derived only from the access
// stream itself.
func (f *ffState) retime() {
	avg := f.model.Estimate().AvgLat
	lat := sim.Cycle(avg * ffSleepEvery)
	if lat < 1 {
		lat = 1
	}
	f.batchLat = lat
}

// checkConverged compares the last chunk's per-level miss ratios to the
// chunk before it; ffConvergeRuns consecutive deltas under
// ffConvergeTol shrink the budget so the next access switches over.
func (f *ffState) checkConverged() {
	cur := f.model.DeltaEstimate(&f.chunkSnap)
	f.chunkSnap = f.model
	if f.haveChunk {
		d := maxAbsDelta(cur, f.prevChunk)
		if d < ffConvergeTol {
			f.stable++
		} else {
			f.stable = 0
		}
		if f.stable >= ffConvergeRuns {
			f.budget = f.done
		}
	}
	f.prevChunk = cur
	f.haveChunk = true
}

func maxAbsDelta(a, b analytic.Estimate) float64 {
	m := abs(a.L1Miss - b.L1Miss)
	if d := abs(a.L2Miss - b.L2Miss); d > m {
		m = d
	}
	if d := abs(a.L3Miss - b.L3Miss); d > m {
		m = d
	}
	if d := abs(a.TLBMiss - b.TLBMiss); d > m {
		m = d
	}
	return m
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ffSwitch ends fast-forward: warm state is seeded from the collector's
// steady-state occupancy (seed.go) and subsequent accesses run the full
// event-kernel protocol.
func (h *Hierarchy) ffSwitch(p *sim.Proc) {
	f := h.ff
	f.switched = true
	f.seeded = h.seedWarmState(f.col)
	h.Metrics.Counter("ff.accesses").Add(f.done)
	h.Metrics.Counter("ff.switch.cycle").Add(uint64(p.Now()))
	h.Metrics.Counter("ff.seed.l1").Add(uint64(f.seeded.L1))
	h.Metrics.Counter("ff.seed.l2").Add(uint64(f.seeded.L2))
	h.Metrics.Counter("ff.seed.l3").Add(uint64(f.seeded.L3))
	h.Metrics.Counter("ff.seed.tlb").Add(uint64(f.seeded.TLB))
	ffDoneTotal.Add(f.done - f.reported)
	f.reported = f.done
	ffActiveSystems.Add(-1)
}

// FinishFF closes the books on a run that ended before its fast-forward
// budget was spent (the whole workload fit in the warmup window): the
// progress gauges are settled and the estimate stays available. No-op
// when fast-forward was off or already switched.
func (h *Hierarchy) FinishFF() {
	f := h.ff
	if f == nil || f.switched {
		return
	}
	f.switched = true
	h.Metrics.Counter("ff.accesses").Add(f.done)
	ffDoneTotal.Add(f.done - f.reported)
	f.reported = f.done
	ffActiveSystems.Add(-1)
}

// FFAccesses returns the number of accesses that were fast-forwarded
// (0 when fast-forward is off).
func (h *Hierarchy) FFAccesses() uint64 {
	if h.ff == nil {
		return 0
	}
	return h.ff.done
}

// FFEstimate returns the analytical estimate accumulated over the
// fast-forwarded prefix and whether fast-forward was enabled.
func (h *Hierarchy) FFEstimate() (analytic.Estimate, bool) {
	if h.ff == nil {
		return analytic.Estimate{}, false
	}
	return h.ff.model.Estimate(), true
}

// FFRanges returns the per-address-range reuse-distance histograms
// collected during fast-forward.
func (h *Hierarchy) FFRanges() []analytic.RangeHist {
	if h.ff == nil {
		return nil
	}
	return h.ff.col.Ranges()
}

// The functional fast paths below implement each public access's
// architectural semantics directly against the backing store. The
// cooperative kernel guarantees atomicity: none of them sleep
// mid-operation.

func (h *Hierarchy) ffLoad(p *sim.Proc, tileID int, a mem.Addr) uint64 {
	v := h.DRAM.Store().ReadU64(a &^ 7)
	if h.obs != nil {
		h.obs.LoadCommitted(tileID, a, v)
	}
	h.ffTouch(p, tileID, a, false)
	return v
}

func (h *Hierarchy) ffStore(p *sim.Proc, tileID int, a mem.Addr, v uint64) {
	h.DRAM.Store().WriteU64(a&^7, v)
	if h.obs != nil {
		h.obs.StoreCommitted(tileID, a, v)
	}
	h.ffTouch(p, tileID, a, true)
}

func (h *Hierarchy) ffLoadLine(p *sim.Proc, tileID int, a mem.Addr) mem.Line {
	var line mem.Line
	h.DRAM.Store().PeekLine(a.Line(), &line)
	if h.obs != nil {
		h.obs.LineLoaded(tileID, a, &line)
	}
	h.ffTouch(p, tileID, a, false)
	return line
}

func (h *Hierarchy) ffStoreLine(p *sim.Proc, tileID int, a mem.Addr, line *mem.Line, nt bool) {
	h.DRAM.Store().WriteLine(a.Line(), line)
	if h.obs != nil {
		h.obs.LineStored(tileID, a, line, nt)
	}
	h.ffTouch(p, tileID, a, true)
}

func (h *Hierarchy) ffAtomicRMO(p *sim.Proc, tileID int, a mem.Addr, op RMOOp, v uint64) {
	st := h.DRAM.Store()
	aa := a &^ 7
	old := st.ReadU64(aa)
	st.WriteU64(aa, op.apply(old, v))
	if h.obs != nil {
		h.obs.RMOCommitted(tileID, a, op, v, old, op.apply(old, v))
	}
	h.ffTouch(p, tileID, a, true)
}

func (h *Hierarchy) ffAtomicExchange(p *sim.Proc, tileID int, a mem.Addr, v uint64) uint64 {
	st := h.DRAM.Store()
	aa := a &^ 7
	old := st.ReadU64(aa)
	st.WriteU64(aa, v)
	if h.obs != nil {
		h.obs.ExchangeCommitted(tileID, a, v, old)
	}
	h.ffTouch(p, tileID, a, true)
	return old
}

// FFString describes the fast-forward state for diagnostics.
func (h *Hierarchy) FFString() string {
	f := h.ff
	if f == nil {
		return "ff: off"
	}
	return fmt.Sprintf("ff: done=%d budget=%d auto=%v switched=%v seeded=%+v",
		f.done, f.budget, f.auto, f.switched, f.seeded)
}
