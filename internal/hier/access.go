package hier

import (
	"fmt"

	"tako/internal/cache"
	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/sim"
)

// accessOpts parameterizes one memory access.
type accessOpts struct {
	write    bool
	engine   bool  // engine-issued: fills the engine L1d, trrîp demotion
	viaL2    bool  // engine access routed through the tile's L2 (private callbacks)
	cbLevel  Level // level of the issuing callback (engine accesses only)
	prefetch bool  // hardware prefetch: fills the L2 only
}

// Load performs a demand load of the 8-byte word containing a from
// tileID's core, returning its value. Must be called from a sim.Proc.
func (h *Hierarchy) Load(p *sim.Proc, tileID int, a mem.Addr) uint64 {
	start := p.Now()
	ls := h.access(p, tileID, a, accessOpts{})
	v := ls.Data.U64(a.Offset() &^ 7)
	if h.obs != nil {
		h.obs.LoadCommitted(tileID, a, v)
	}
	lat := p.Now() - start
	h.LoadLat.Observe(float64(lat))
	h.hot.loadLat.Observe(lat)
	if h.tracer != nil {
		h.tracer.EmitSpan(start, p.Now(), h.comp.core[tileID], "load", "")
	}
	return v
}

// Store writes the 8-byte word containing a from tileID's core.
func (h *Hierarchy) Store(p *sim.Proc, tileID int, a mem.Addr, v uint64) {
	ls := h.access(p, tileID, a, accessOpts{write: true})
	ls.Data.SetU64(a.Offset()&^7, v)
	ls.Dirty = true
	if h.obs != nil {
		h.obs.StoreCommitted(tileID, a, v)
	}
	h.event("store")
}

// LoadLine reads the full line containing a (a vector load).
func (h *Hierarchy) LoadLine(p *sim.Proc, tileID int, a mem.Addr) mem.Line {
	ls := h.access(p, tileID, a, accessOpts{})
	if h.obs != nil {
		h.obs.LineLoaded(tileID, a, &ls.Data)
	}
	return ls.Data
}

// StoreLine writes the full line containing a (a vector store).
func (h *Hierarchy) StoreLine(p *sim.Proc, tileID int, a mem.Addr, line *mem.Line) {
	ls := h.access(p, tileID, a, accessOpts{write: true})
	ls.Data = *line
	ls.Dirty = true
	if h.obs != nil {
		h.obs.LineStored(tileID, a, line, false)
	}
	h.event("storeline")
}

// StoreLineNT performs a non-temporal full-line store: the line is
// written directly to the shared level (or memory) without
// read-for-ownership or cache allocation, like MOVNTDQ streaming stores.
// Update-batching implementations stream their bins this way.
func (h *Hierarchy) StoreLineNT(p *sim.Proc, tileID int, a mem.Addr, line *mem.Line) {
	la := a.Line()
	home := h.HomeTile(la)
	// Take the home-line lock before touching the directory: a fetch in
	// flight under the lock may be about to install fresh sharers, and
	// invalidating before it completes would let those copies survive
	// the supersede and go stale.
	tok := h.lockHomeLine(p, la)
	// A full-line store supersedes all cached copies.
	if e := h.dir.get(la); e != nil {
		for s := 0; s < h.cfg.Tiles; s++ {
			if e.has(s) {
				h.invalidatePrivate(s, la)
				e.remove(s)
			}
		}
		h.dir.delete(la)
	}
	hm := h.tiles[home]
	if ls3 := hm.l3.Lookup(la); ls3 != nil {
		ls3.Data = *line
		ls3.Dirty = true
		h.Meter.Add(energy.L3Access, 1)
	} else {
		h.DRAM.WriteLineNoWait(la, line) // bypasses the cache entirely
	}
	if h.obs != nil {
		h.obs.LineStored(tileID, a, line, true)
	}
	h.event("nt.store")
	h.hot.ntStores.Inc()
	p.Sleep(h.Mesh.Transfer(tileID, home, mem.LineSize))
	h.unlockHomeLine(la, tok)
}

// AtomicAddLocal performs a read-modify-write add in the local cache
// (acquiring exclusive ownership like an ordinary atomic fetch-add).
// Baselines without remote memory operations update shared data this
// way, paying coherence ping-pong under contention.
func (h *Hierarchy) AtomicAddLocal(p *sim.Proc, tileID int, a mem.Addr, delta uint64) {
	ls := h.access(p, tileID, a, accessOpts{write: true})
	off := a.Offset() &^ 7
	old := ls.Data.U64(off)
	ls.Data.SetU64(off, old+delta)
	ls.Dirty = true
	if h.obs != nil {
		h.obs.RMOCommitted(tileID, a, RMOAdd, delta, old, old+delta)
	}
	h.event("atomic.add")
}

// AtomicRMOLocal performs a commutative read-modify-write with operator
// op in the local cache (ordinary atomic semantics: the line migrates).
func (h *Hierarchy) AtomicRMOLocal(p *sim.Proc, tileID int, a mem.Addr, op RMOOp, v uint64) {
	ls := h.access(p, tileID, a, accessOpts{write: true})
	off := a.Offset() &^ 7
	old := ls.Data.U64(off)
	ls.Data.SetU64(off, op.apply(old, v))
	ls.Dirty = true
	if h.obs != nil {
		h.obs.RMOCommitted(tileID, a, op, v, old, op.apply(old, v))
	}
	h.event("atomic.rmo")
}

// AtomicExchange swaps the word at a with v locally (LL/SC-style, §8.2),
// returning the previous value.
func (h *Hierarchy) AtomicExchange(p *sim.Proc, tileID int, a mem.Addr, v uint64) uint64 {
	ls := h.access(p, tileID, a, accessOpts{write: true})
	off := a.Offset() &^ 7
	old := ls.Data.U64(off)
	ls.Data.SetU64(off, v)
	ls.Dirty = true
	if h.obs != nil {
		h.obs.ExchangeCommitted(tileID, a, v, old)
	}
	h.event("atomic.xchg")
	return old
}

// access is the private-domain access path: L1 → L2 → shared level. It
// returns the L1 (or engine-L1) line holding a, with write permission
// when requested. The returned pointer is valid until the next sleep.
func (h *Hierarchy) access(p *sim.Proc, tileID int, a mem.Addr, o accessOpts) *cache.LineState {
	t := h.tiles[tileID]
	la := a.Line()
	h.checkEngineRestriction(tileID, a, o)
	// Engines translate through their own TLB/rTLB (charged at the
	// engine port); core accesses use the core dTLB.
	if !o.engine {
		if lat, hit := t.dtlb.Lookup(a); !hit {
			p.Sleep(lat)
		}
	}
	h.Meter.Add(energy.TLBAccess, 1)
	for {
		// Respect callback locks and in-flight fills on this line.
		if t.pending.waitIfLocked(p, la) {
			continue
		}
		top := t.l1
		if o.engine {
			top = t.el1
		}
		topHits, topMisses := h.hot.top(o.engine)
		if !o.prefetch {
			h.Meter.Add(energy.L1Access, 1)
			p.Sleep(h.cfg.L1Latency)
			if t.pending.waitIfLocked(p, la) { // lock raced in during sleep
				continue
			}
			if ls := top.Lookup(a); ls != nil {
				h.debugCheckFresh(tileID, la, "l1-hit")
				if o.write && !h.hasExclusive(tileID, la) {
					h.upgrade(p, tileID, la)
					continue
				}
				top.Touch(a)
				top.Stats.Hits++
				topHits.Inc()
				if o.write {
					h.snoopSibling(tileID, la, o.engine)
				}
				return ls
			}
			top.Stats.Misses++
			topMisses.Inc()
			// Clustered coherence (§4.3): the core and engine L1ds
			// snoop within the tile. A miss in one that hits in the
			// other migrates the line (with its dirty state) instead
			// of fetching stale data from the shared level — the
			// directory tracks the tile as one domain, so the home
			// copy may be behind this tile's own sibling L1.
			sib := t.el1
			if o.engine {
				sib = t.l1
			}
			if sib.Contains(la) {
				h.hot.snoopMigrations.Inc()
				h.Meter.Add(energy.L1Access, 1)
				p.Sleep(h.cfg.L1Latency)
				// Extract only after the latency sleep: a line held in
				// a local variable across a sleep is invisible to
				// concurrent invalidations and downgrades, and
				// re-installing it would resurrect dirty data they
				// could not see. If the copy vanished during the
				// sleep, the retry refetches it.
				if ls, ok := sib.ExtractLine(la); ok {
					meta := fillMeta{phantom: ls.Phantom, dirty: ls.Dirty, engine: o.engine}
					h.fillTop(tileID, a, &ls.Data, meta, o.engine)
				}
				// Retry from the top: the hit path applies write
				// permission checks and replacement updates.
				continue
			}
		}
		// All accesses probe the tile's L2 (engines are clustered with
		// it, §4.3); only core accesses and private-callback engine
		// accesses allocate there on a miss.
		allocL2 := !o.engine || o.viaL2
		{
			h.Meter.Add(energy.L2Access, 1)
			p.Sleep(h.cfg.L2TagLat)
			if t.pending.waitIfLocked(p, la) {
				continue
			}
			if ls2 := t.l2.Lookup(a); ls2 != nil {
				h.debugCheckFresh(tileID, la, "l2-hit")
				if o.write && !h.hasExclusive(tileID, la) {
					h.upgrade(p, tileID, la)
					continue
				}
				p.Sleep(h.cfg.L2DataLat)
				t.l2.Touch(a)
				t.l2.Stats.Hits++
				h.hot.l2Hits.Inc()
				ls2 = t.l2.Lookup(a)
				if ls2 == nil {
					continue // evicted during the data-array sleep
				}
				if o.write && !h.hasExclusive(tileID, la) {
					// Ownership was revoked during the data-array
					// sleep (a concurrent read downgraded us):
					// dirtying the line now would skip the
					// invalidation of the new sharers. Retry, which
					// re-upgrades.
					continue
				}
				if o.prefetch {
					return ls2
				}
				meta := fillMeta{phantom: ls2.Phantom, dirty: false, engine: o.engine}
				h.fillTop(tileID, a, &ls2.Data, meta, o.engine)
				if ls := top.Lookup(a); ls != nil {
					if o.write {
						h.snoopSibling(tileID, la, o.engine)
					}
					return ls
				}
				continue
			}
			t.l2.Stats.Misses++
			h.hot.l2Misses.Inc()
			if !o.engine {
				h.notifyPrefetcher(p, tileID, a)
			}
		}
		// Private-domain miss: allocate an MSHR (core accesses only;
		// engines have dedicated slots so callbacks can always make
		// progress, §5.2) and fetch.
		if t.pending.waitIfLocked(p, la) {
			continue
		}
		usedMSHR := !o.engine && !o.prefetch
		if usedMSHR {
			t.mshr.Acquire(p)
			if t.pending.locked(la) {
				t.mshr.Release()
				t.pending.waitIfLocked(p, la)
				continue
			}
		}
		tok := t.pending.lock(la)
		fetchStart := p.Now()
		data, meta := h.fetchLine(p, tileID, a, o)
		if h.tracer != nil {
			h.tracer.EmitSpan(fetchStart, p.Now(), h.comp.l2[tileID], "l2.miss", la.String())
		}
		meta.engine = o.engine
		// Everything except private phantom lines went through the home
		// directory, which registered us as a sharer (and owner, for
		// writes) during the fetch.
		viaHome := !(meta.morph && meta.phantom)
		if allocL2 {
			// The L2 copy stays clean: dirtiness is tracked at the
			// writing L1 and merged down on eviction, so a stale L2
			// copy can never masquerade as the newest data.
			l2meta := meta
			l2meta.dirty = false
			for !h.insertL2(tileID, a, &data, l2meta) {
				p.Sleep(1)
			}
		}
		if !o.prefetch {
			topMeta := meta
			topMeta.morph = false
			h.fillTop(tileID, a, &data, topMeta, o.engine)
		}
		if viaHome && !h.dirStillGrants(tileID, la, o.write) {
			// The insertL2 retry loop slept with the fetched line in
			// flight, where a concurrent RMO, NT store, back-inval, or
			// downgrade could not see it. The directory no longer
			// grants this tile the line: the just-installed copies are
			// stale, so drop them and retry the whole access.
			top.ExtractLine(la)
			t.l2.ExtractLine(la)
			h.removeSharerIfNoCopies(tileID, la)
			lockFut := t.pending.unlock(la, tok)
			if usedMSHR {
				t.mshr.Release()
			}
			h.completeLock(lockFut)
			continue
		}
		lockFut := t.pending.unlock(la, tok)
		if usedMSHR {
			t.mshr.Release()
		}
		h.completeLock(lockFut)
		if o.prefetch {
			return t.l2.Lookup(a)
		}
		if ls := top.Lookup(a); ls != nil {
			if o.write {
				h.snoopSibling(tileID, la, o.engine)
			}
			return ls
		}
		// Extremely rare: our fill was evicted before we returned.
	}
}

// snoopSibling keeps the core and engine L1ds within a tile coherent: a
// write in one invalidates the other's copy (clustered coherence, §4.3).
func (h *Hierarchy) snoopSibling(tileID int, la mem.Addr, writerIsEngine bool) {
	t := h.tiles[tileID]
	sib := t.el1
	if writerIsEngine {
		sib = t.l1
	}
	if ls, ok := sib.ExtractLine(la); ok && ls.Dirty {
		if ls2 := t.l2.Lookup(la); ls2 != nil {
			ls2.Data = ls.Data
			ls2.Dirty = true
		}
	}
}

// checkEngineRestriction enforces täkō's callback restriction (§4.3):
// callbacks may not access data with a Morph registered at the same or
// a higher level of the hierarchy. Violations are programming errors and
// panic with a diagnostic.
func (h *Hierarchy) checkEngineRestriction(tileID int, a mem.Addr, o accessOpts) {
	if !o.engine || h.registry == nil {
		return
	}
	b, ok := h.registry.Binding(a)
	if !ok {
		return
	}
	if o.cbLevel == LevelShared || (o.cbLevel == LevelPrivate && b.Level == LevelPrivate) {
		panic(fmt.Sprintf(
			"täkō restriction violated (§4.3): %v-level callback on tile %d accessed %v, which has a Morph registered at %v",
			o.cbLevel, tileID, a, b.Level))
	}
}

// lockHomeLine serializes with all home-side operations on la (fetches,
// RMOs, other upgrades), returning the token to pass to unlockHomeLine.
// Token-in/token-out (rather than a returned unlock closure) keeps this
// per-access path allocation-free.
func (h *Hierarchy) lockHomeLine(p *sim.Proc, la mem.Addr) uint64 {
	hm := h.tiles[h.HomeTile(la)]
	for hm.l3pending.waitIfLocked(p, la) {
	}
	return hm.l3pending.lock(la)
}

// unlockHomeLine releases the home-line lock taken by lockHomeLine and
// wakes any queued waiters.
func (h *Hierarchy) unlockHomeLine(la mem.Addr, tok uint64) {
	hm := h.tiles[h.HomeTile(la)]
	h.completeLock(hm.l3pending.unlock(la, tok))
}

// upgrade obtains write permission for la on tileID: if other tiles hold
// copies, they are invalidated through the home directory. It serializes
// through the home-line lock: a concurrent fetch may have copied data
// that is still in flight, and its copy must be visible for invalidation
// before ownership changes hands.
func (h *Hierarchy) upgrade(p *sim.Proc, tileID int, la mem.Addr) {
	tok := h.lockHomeLine(p, la)
	defer h.unlockHomeLine(la, tok)
	e := h.dir.get(la)
	if e == nil || e.owner == tileID {
		return
	}
	if e.sharers == 1<<uint(tileID) {
		e.owner = tileID // sole sharer: silent upgrade
		h.debugCheckFresh(tileID, la, "silent-upgrade")
		return
	}
	home := h.HomeTile(la)
	hm := h.tiles[home]
	h.hot.cohUpgrades.Inc()
	var maxLat sim.Cycle
	for s := 0; s < h.cfg.Tiles; s++ {
		if s == tileID || !e.has(s) {
			continue
		}
		data, dirty, present := h.invalidatePrivate(s, la)
		if !present {
			e.remove(s)
			continue
		}
		h.hot.cohInvalidations.Inc()
		if dirty {
			if ls3 := hm.l3.Lookup(la); ls3 != nil {
				ls3.Data = data
				ls3.Dirty = true
				if h.freshChecks {
					h.debugLogHome(la, fmt.Sprintf("upgrade-merge(from=%d)", s), data.U64(16))
				}
			}
		}
		lat := h.Mesh.Transfer(home, s, 8) + h.Mesh.Transfer(s, home, 8)
		if lat > maxLat {
			maxLat = lat
		}
		e.remove(s)
	}
	e.add(tileID)
	e.owner = tileID
	if h.freshChecks {
		h.debugLogHome(la, fmt.Sprintf("upgrade-grant(%d)", tileID), 0)
	}
	h.debugCheckFresh(tileID, la, "upgrade")
	h.event("upgrade")
	p.Sleep(h.Mesh.Latency(tileID, home, 8) + maxLat + h.Mesh.Latency(home, tileID, 8))
}

// fetchLine obtains a's line for tileID's private domain on an L2 miss:
// either by invoking a PRIVATE Morph's onMiss (phantom lines never touch
// the levels below, §4.3) or from the shared level.
func (h *Hierarchy) fetchLine(p *sim.Proc, tileID int, a mem.Addr, o accessOpts) (mem.Line, fillMeta) {
	la := a.Line()
	if h.registry != nil {
		if b, ok := h.registry.Binding(a); ok && b.Level == LevelPrivate {
			// Pooled buffer: the runner interface call would make a
			// stack local escape per private Morph miss.
			buf := h.getLineBuf()
			if !b.Phantom {
				// Real-address Morph: read backing data (the
				// paper overlaps this with the callback; we
				// serialize, see DESIGN.md).
				*buf = h.fetchFromHome(p, tileID, a, o)
			} else {
				h.PhantomMissFills++
			}
			if b.HasMiss && h.runner != nil {
				h.hot.cb[CbMiss].Inc()
				h.Trace(h.comp.l2[tileID], "cb.onMiss", la.String())
				_, done := h.runner.Run(tileID, CbMiss, b, la, buf)
				p.Wait(done)
			}
			line := *buf
			h.putLineBuf(buf)
			return line, fillMeta{morph: true, phantom: b.Phantom, dirty: o.write}
		}
	}
	line := h.fetchFromHome(p, tileID, a, o)
	return line, fillMeta{dirty: o.write}
}

// fetchFromHome performs the shared-level access for a private miss:
// request to the home bank, L3 lookup (with SHARED Morph onMiss or DRAM
// fill on miss), directory action, and the data response.
func (h *Hierarchy) fetchFromHome(p *sim.Proc, tileID int, a mem.Addr, o accessOpts) mem.Line {
	la := a.Line()
	home := h.HomeTile(a)
	hm := h.tiles[home]
	homeStart := p.Now()
	spanKind := "l3.hit"
	if h.tracer != nil {
		// One span per home-bank service on the bank's track: request
		// arrival through data response (covers queueing on the home
		// line, DRAM fills, and SHARED callbacks).
		defer func() {
			h.tracer.EmitSpan(homeStart, p.Now(), h.comp.l3[home], spanKind, la.String())
		}()
	}
	p.Sleep(h.Mesh.Transfer(tileID, home, 8))
	for hm.l3pending.waitIfLocked(p, la) {
	}
	tok := hm.l3pending.lock(la)

	h.Meter.Add(energy.L3Access, 1)
	p.Sleep(h.cfg.L3TagLat)
	ls3 := hm.l3.Lookup(a)
	if ls3 == nil {
		hm.l3.Stats.Misses++
		h.hot.l3Misses.Inc()
		spanKind = "l3.miss"
		// Pooled fill buffer: the line is threaded through interface
		// calls (DRAM, Morph runner), so a stack local would escape on
		// every miss.
		line := h.getLineBuf()
		// Engine fills and prefetched lines insert at distant
		// re-reference priority in the shared cache (trrîp, §5.2):
		// streamed-once data should not displace reused lines.
		meta := fillMeta{engine: o.engine || o.prefetch}
		handled := false
		if h.registry != nil {
			if b, ok := h.registry.Binding(a); ok && b.Level == LevelShared {
				if b.Phantom {
					h.PhantomMissFills++
				} else {
					h.DRAM.ReadLineWait(p, la, line)
				}
				if b.HasMiss && h.runner != nil {
					h.hot.cb[CbMiss].Inc()
					h.Trace(h.comp.l3[home], "cb.onMiss", la.String())
					_, done := h.runner.Run(home, CbMiss, b, la, line)
					p.Wait(done)
				}
				meta.morph, meta.phantom = true, b.Phantom
				// Morph lines are demand-bound even when a prefetch
				// materialized them: insert at normal priority (only
				// true engine-port fills demote).
				meta.engine = o.engine
				handled = true
			}
		}
		if !handled {
			h.DRAM.ReadLineWait(p, la, line)
		}
		for !h.insertL3(home, a, line, meta) {
			p.Sleep(1)
		}
		ls3 = hm.l3.Lookup(a)
		if ls3 == nil {
			// Our fill was immediately victimized; serve the data
			// we fetched without caching it. The home line stays
			// locked until the response lands so no other writer
			// can race the in-flight data.
			data := *line
			h.putLineBuf(line)
			if merged := h.dirAction(p, tileID, la, o, nil); merged != nil {
				data = *merged
			}
			p.Sleep(h.Mesh.Transfer(home, tileID, mem.LineSize))
			h.completeLock(hm.l3pending.unlock(la, tok))
			return data
		}
		h.putLineBuf(line)
	} else {
		hm.l3.Stats.Hits++
		h.hot.l3Hits.Inc()
		// Lock the line before the data-array sleep so a concurrent
		// insert cannot victimize it mid-access.
		ls3.Locked = true
		p.Sleep(h.cfg.L3DataLat)
		hm.l3.Touch(a)
	}
	ls3.Locked = true
	h.dirAction(p, tileID, la, o, ls3)
	data := ls3.Data
	// Hold the home-line lock through the data response: releasing
	// earlier would let another requester modify the line while our
	// (now stale) copy is still in flight, losing its update when we
	// install the copy.
	p.Sleep(h.Mesh.Transfer(home, tileID, mem.LineSize))
	ls3.Locked = false
	h.completeLock(hm.l3pending.unlock(la, tok))
	return data
}

// dirAction performs the directory side of a fetch: invalidations for
// writes, dirty-owner downgrades for reads. ls3 may be nil when the line
// bypassed the L3 (its fill was immediately victimized); dirty data
// merged from private copies is then written to memory and returned so
// the requester still observes it. Functional changes are immediate;
// latency is slept.
func (h *Hierarchy) dirAction(p *sim.Proc, tileID int, la mem.Addr, o accessOpts, ls3 *cache.LineState) (merged *mem.Line) {
	home := h.HomeTile(la)
	e := h.dirOf(la)
	var extra sim.Cycle
	if o.write {
		for s := 0; s < h.cfg.Tiles; s++ {
			if s == tileID || !e.has(s) {
				continue
			}
			data, dirty, present := h.invalidatePrivate(s, la)
			if present {
				h.hot.cohInvalidations.Inc()
				if dirty {
					site := ""
					if h.freshChecks {
						site = fmt.Sprintf("dirAction-inval-merge(from=%d)", s)
					}
					merged = h.applyDirtyMerge(ls3, la, data, site)
				}
				lat := h.Mesh.Transfer(home, s, 8) + h.Mesh.Transfer(s, home, 8)
				if lat > extra {
					extra = lat
				}
			}
			e.remove(s)
		}
		e.add(tileID)
		e.owner = tileID
		if h.freshChecks {
			h.debugLogHome(la, fmt.Sprintf("dirAction-write-grant(req=%d)", tileID), 0)
		}
	} else {
		if e.owner >= 0 && e.owner != tileID {
			data, dirty := h.downgradeOwner(e.owner, la)
			if dirty {
				site := ""
				if h.freshChecks {
					site = fmt.Sprintf("dirAction-downgrade(owner=%d,req=%d)", e.owner, tileID)
				}
				merged = h.applyDirtyMerge(ls3, la, data, site)
			}
			h.hot.cohDowngrades.Inc()
			extra = h.Mesh.Transfer(home, e.owner, 8) + h.Mesh.Transfer(e.owner, home, mem.LineSize)
			e.owner = -1
		}
		e.add(tileID)
	}
	h.event("dirAction")
	if extra > 0 {
		p.Sleep(extra)
	}
	return merged
}

// applyDirtyMerge applies dirty data recovered from a private copy to the
// home line (or memory when the fill bypassed the L3) and returns a copy
// so the requester still observes the update. site is the pre-formatted
// freshness-log label ("" when fresh checks are off).
func (h *Hierarchy) applyDirtyMerge(ls3 *cache.LineState, la mem.Addr, data mem.Line, site string) *mem.Line {
	if ls3 != nil {
		ls3.Data = data
		ls3.Dirty = true
	} else {
		h.DRAM.WriteLineNoWait(la, &data)
	}
	d := data
	if h.freshChecks {
		h.debugLogHome(la, site, data.U64(16))
	}
	return &d
}

// completeLock wakes the waiters parked on a released line lock (nil when
// none materialized) and recycles the pool-originated future. Futures
// stored by lockWith (callback locks, which escape to flush waiters) come
// from NewFuture and are left untouched by the recycler.
func (h *Hierarchy) completeLock(f *sim.Future) {
	if f == nil {
		return
	}
	f.Complete()
	h.K.RecycleFuture(f)
}
