package sched

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaultAndOverride(t *testing.T) {
	SetWorkers(0)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	SetWorkers(3)
	defer SetWorkers(0)
	if got := Workers(); got != 3 {
		t.Fatalf("workers = %d, want 3", got)
	}
	SetWorkers(-5)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative reset: workers = %d", got)
	}
}

// TestMapResultsOrder checks results land in task order regardless of
// completion order, at several pool widths.
func TestMapResultsOrder(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 2, 4, 16} {
		SetWorkers(w)
		out, err := MapResults(64, func(i int) (int, error) {
			// Make early tasks finish late so ordering would break if
			// results were appended in completion order.
			for s := 0; s < (64-i)*100; s++ {
				runtime.Gosched()
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

// TestMapFirstErrorByIndex checks the surfaced error is the lowest-index
// failure, not whichever failed first on the wall clock.
func TestMapFirstErrorByIndex(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	e3, e7 := errors.New("task 3"), errors.New("task 7")
	var ran atomic.Int64
	err := Map(16, func(i int) error {
		ran.Add(1)
		switch i {
		case 3:
			return e3
		case 7:
			return e7
		}
		return nil
	})
	if err != e3 {
		t.Fatalf("err = %v, want %v", err, e3)
	}
	if ran.Load() != 16 {
		t.Fatalf("ran %d tasks, want all 16 (tasks must complete even on error)", ran.Load())
	}
}

func TestMapInlineWhenSingleWorker(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	// Inline execution means strict sequential order.
	var order []int
	err := Map(8, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order = %v", order)
		}
	}
}

func TestMapZeroTasks(t *testing.T) {
	if err := Map(0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	out, err := MapResults(0, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
