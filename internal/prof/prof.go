// Package prof wires the standard runtime profilers into the CLIs:
// -cpuprofile / -memprofile flags map onto runtime/pprof's CPU and heap
// profiles, written as files for `go tool pprof`.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpu is non-empty and returns a stop
// function that finishes the CPU profile and, when mem is non-empty,
// writes a heap profile. Call stop at the end of the run, before any
// os.Exit on the success path.
func Start(cpu, mem string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				return err
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
