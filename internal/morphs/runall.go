package morphs

import "tako/internal/sched"

// runAllVariants fans one study's variants across the scheduler's worker
// pool — every variant is an independent deterministic simulation — then
// assembles the map and submits run records in declared variant order,
// so tables, goldens, and bench reports are byte-identical at any -j.
func runAllVariants[V ~string](variants []V, run func(V) (Result, error)) (map[V]Result, error) {
	results, err := sched.MapResults(len(variants), func(i int) (Result, error) {
		return run(variants[i])
	})
	if err != nil {
		return nil, err
	}
	submitResults(results...)
	out := make(map[V]Result, len(variants))
	for i, v := range variants {
		out[v] = results[i]
	}
	return out, nil
}
