package exp

import (
	"math/rand"
	"testing"
)

// TestFFCheckOracle is the standing cross-validation gate: the ffcheck
// experiment errors whenever the analytical fast-forward model's
// per-level miss ratios drift more than ffCheckTolerance absolute from
// event-kernel simulation on any golden workload. CI runs this test, so
// a model or hierarchy change that opens the gap fails the build.
func TestFFCheckOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	e, ok := ByID("ffcheck")
	if !ok {
		t.Fatal("ffcheck experiment not registered")
	}
	tbl, err := e.Run(true)
	if err != nil {
		t.Fatalf("analytical model diverged from simulation: %v", err)
	}
	// 4 workloads x 3 levels.
	if got := len(tbl.Rows()); got != 12 {
		t.Fatalf("oracle table has %d rows, want 12", got)
	}
}

// TestSetScale pins the tier validation and restores the default.
func TestSetScale(t *testing.T) {
	if err := SetScale("full"); err != nil {
		t.Fatal(err)
	}
	if Scale() != "full" {
		t.Fatalf("Scale() = %q after SetScale(full)", Scale())
	}
	if err := SetScale("paper"); err == nil {
		t.Fatal("SetScale(paper) accepted")
	}
	if err := SetScale("quick"); err != nil {
		t.Fatal(err)
	}
}

// TestFig25FullQuickTierFastForwards checks the scale-aware driver's
// invariants at the quick tier: fast-forward engages for exactly the
// configured prefix and the estimate columns are populated.
func TestFig25FullQuickTier(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	e, _ := ByID("fig25full")
	tbl, err := e.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	if len(rows) != 1 || rows[0][0] != "quick" {
		t.Fatalf("rows = %v", rows)
	}
}

// BenchmarkFFWarmup compares a warmup-dominated run (a long skewed
// hot/cold warmup — the locality profile of real pre-roi phases — then
// a short measured window) with the warmup executed analytically
// (fast-forward) versus fully simulated. The benchtraj trajectory
// derives its ff_speedup column from this pair; the acceptance bar is
// >=10x.
func BenchmarkFFWarmup(b *testing.B) {
	w := ffGolden{name: "bench", lines: 512, scatter: true,
		gen: func(rng *rand.Rand, i int) (int, bool) {
			return rng.Intn(512), rng.Intn(4) == 0
		}}
	const tiles = 4
	const accesses = 256 * 1024 // per tile; warmup-dominated
	const window = 2048
	b.Run("analytical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := ffCheckRun(w, tiles, accesses, uint64(tiles*accesses-window))
			if acc := s.H.FFAccesses(); acc == 0 {
				b.Fatal("fast-forward never engaged")
			}
		}
	})
	b.Run("simulated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ffCheckRun(w, tiles, accesses, 0)
		}
	})
}
