// Package tlb models translation lookaside buffers. The simulator's
// virtual and physical addresses coincide, so TLBs exist for timing and
// capacity effects: a bounded number of page entries with LRU
// replacement, a page-walk penalty on misses, and shootdown flushes when
// Morph registrations change (täkō §6).
//
// The engine's reverse TLB (rTLB) — which recovers the virtual address of
// a cache tag when a callback is scheduled — is the same structure; its
// small reach suffices because it only needs to cover data currently in
// the cache (§6), which the rTLB sensitivity sweep (§9) demonstrates.
package tlb

import (
	"tako/internal/mem"
	"tako/internal/sim"
)

// Config describes one TLB.
type Config struct {
	Name        string
	Entries     int
	PageBits    uint      // log2 of page size: 12 for 4 KB, 21 for 2 MB
	HitLatency  sim.Cycle // lookup cost
	WalkLatency sim.Cycle // miss (page walk / tag probe) cost
}

// DefaultRTLBConfig returns the paper's engine rTLB: 256 entries, 2 MB
// pages (§9).
func DefaultRTLBConfig() Config {
	return Config{Name: "rtlb", Entries: 256, PageBits: 21, HitLatency: 1, WalkLatency: 30}
}

// TLB is a bounded page-translation cache with LRU replacement.
type TLB struct {
	cfg   Config
	pages map[mem.Addr]uint64 // page base -> last-use tick
	tick  uint64

	Hits, Misses uint64
	Shootdowns   uint64
}

// New builds a TLB.
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 {
		panic("tlb: need at least one entry")
	}
	if cfg.PageBits < mem.LineShift {
		panic("tlb: page smaller than a line")
	}
	return &TLB{cfg: cfg, pages: make(map[mem.Addr]uint64)}
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

func (t *TLB) pageOf(a mem.Addr) mem.Addr {
	return a &^ (mem.Addr(1)<<t.cfg.PageBits - 1)
}

// Lookup translates a, returning the latency charged and whether it hit.
// Misses install the entry, evicting the LRU entry when full.
func (t *TLB) Lookup(a mem.Addr) (latency sim.Cycle, hit bool) {
	page := t.pageOf(a)
	t.tick++
	if _, ok := t.pages[page]; ok {
		t.pages[page] = t.tick
		t.Hits++
		return t.cfg.HitLatency, true
	}
	t.Misses++
	if len(t.pages) >= t.cfg.Entries {
		var victim mem.Addr
		oldest := uint64(0)
		first := true
		for p, use := range t.pages {
			if first || use < oldest {
				victim, oldest, first = p, use, false
			}
		}
		delete(t.pages, victim)
	}
	t.pages[page] = t.tick
	return t.cfg.HitLatency + t.cfg.WalkLatency, false
}

// FlushRegion removes entries overlapping r (a shootdown, issued when a
// Morph is registered or unregistered on the range).
func (t *TLB) FlushRegion(r mem.Region) {
	t.Shootdowns++
	for p := range t.pages {
		if p >= t.pageOf(r.Base) && p < r.End() {
			delete(t.pages, p)
		}
	}
}

// Entries returns the number of live entries.
func (t *TLB) Entries() int { return len(t.pages) }

// HitRate returns hits/(hits+misses), or 1 with no traffic.
func (t *TLB) HitRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 1
	}
	return float64(t.Hits) / float64(total)
}
