package hier

// Transaction lifecycle states. Every coherence-relevant operation on
// the access path — demand/prefetch/engine accesses, home-bank fetch
// service, remote memory operations, non-temporal stores, ownership
// upgrades, and flush evictions — runs as a txn stepping through these
// states under a single transition function (txn.advance). The legal
// transitions per transaction kind are enumerated in txnLegal below;
// txn.to asserts every transition against that table, so an interleaving
// that drives the machine somewhere unexpected fails loudly instead of
// silently corrupting coherence state. docs/coherence.md renders the
// same table as the state diagram.
type txnState uint8

// Lifecycle states. Private-side states (Lookup..Validate) run on the
// requesting tile; home-side states (HomeLocked..Respond) run under the
// home bank's line lock. Commit/Unlock/Done are shared by both sides.
const (
	txnIdle       txnState = iota // pooled, not attached to an operation
	txnLookup                     // wait out pending-line locks; every retry re-enters here
	txnL1Probe                    // top-level (core or engine L1d) probe
	txnSibSnoop                   // intra-tile sibling L1d migration (clustered coherence)
	txnL2Probe                    // private L2 probe
	txnMissAlloc                  // MSHR + pending-line lock acquisition for a private miss
	txnFetch                      // obtain the line: PRIVATE Morph onMiss or a home-side fetch txn
	txnCbPending                  // a Morph onMiss callback owns the line buffer; waiting on the engine
	txnFill                       // install into private caches (insertL2 + fillTop)
	txnValidate                   // post-install dirStillGrants re-check (in-flight revocation)
	txnHomeLocked                 // acquire the home-bank line lock (incl. request transfer)
	txnHomeProbe                  // L3 tag (and data) probe under the home lock
	txnHomeFetch                  // materialize the line: DRAM read and/or SHARED Morph fill
	txnHomeFill                   // insertL3 + re-lookup (detects immediate victimization)
	txnDirAction                  // directory work: invalidations, downgrades, supersede, upgrade
	txnRespond                    // response/transfer latency back to the requester
	txnCommit                     // apply the architectural effect and finalize the result
	txnUnlock                     // release the home-bank line lock
	txnDone                       // finished; result (if any) is valid

	nTxnStates = int(txnDone) + 1
)

var txnStateNames = [nTxnStates]string{
	"Idle", "Lookup", "L1Probe", "SibSnoop", "L2Probe", "MissAlloc",
	"Fetch", "CbPending", "Fill", "Validate", "HomeLocked", "HomeProbe",
	"HomeFetch", "HomeFill", "DirAction", "Respond", "Commit", "Unlock",
	"Done",
}

func (s txnState) String() string {
	if int(s) < nTxnStates {
		return txnStateNames[s]
	}
	return "?"
}

// txnKind identifies which operation a transaction performs; the legal
// state graph is per kind.
type txnKind uint8

// Transaction kinds.
const (
	kindAccess     txnKind = iota // core/engine/prefetch private-domain access
	kindHomeFetch                 // home-bank service of a private miss
	kindRMO                       // remote memory operation at the home bank
	kindNTStore                   // non-temporal full-line store (supersede)
	kindUpgrade                   // write-permission upgrade through the directory
	kindFlushEvict                // one line evicted by a flush walk

	nTxnKinds = int(kindFlushEvict) + 1
)

var txnKindNames = [nTxnKinds]string{
	"access", "home-fetch", "rmo", "nt-store", "upgrade", "flush-evict",
}

func (k txnKind) String() string {
	if int(k) < nTxnKinds {
		return txnKindNames[k]
	}
	return "?"
}

// stateMask is a bitset over txnState values.
type stateMask uint32

func maskOf(states ...txnState) stateMask {
	var m stateMask
	for _, s := range states {
		m |= 1 << s
	}
	return m
}

// txnLegal[kind][state] is the set of states the machine may enter next.
// This is the transition table from docs/coherence.md; txn.to enforces
// it on every transition, and the interleaving explorer leans on it to
// catch schedules that drive an access down an impossible path.
var txnLegal = func() [nTxnKinds][nTxnStates]stateMask {
	var t [nTxnKinds][nTxnStates]stateMask

	// Demand / engine / prefetch access (private side). Lookup is the
	// universal retry target: lock contention, upgrade races, lost
	// ownership, and revoked fills all re-enter there.
	a := &t[kindAccess]
	a[txnIdle] = maskOf(txnLookup)
	a[txnLookup] = maskOf(txnLookup, txnL1Probe, txnL2Probe)
	a[txnL1Probe] = maskOf(txnLookup, txnSibSnoop, txnL2Probe, txnCommit)
	a[txnSibSnoop] = maskOf(txnLookup)
	a[txnL2Probe] = maskOf(txnLookup, txnMissAlloc, txnCommit)
	a[txnMissAlloc] = maskOf(txnLookup, txnFetch)
	a[txnFetch] = maskOf(txnCbPending, txnFill)
	a[txnCbPending] = maskOf(txnFill)
	a[txnFill] = maskOf(txnValidate)
	a[txnValidate] = maskOf(txnLookup, txnCommit)
	a[txnCommit] = maskOf(txnLookup, txnDone)

	// Home-bank fetch service (runs under the home line lock).
	f := &t[kindHomeFetch]
	f[txnIdle] = maskOf(txnHomeLocked)
	f[txnHomeLocked] = maskOf(txnHomeProbe)
	f[txnHomeProbe] = maskOf(txnHomeFetch, txnDirAction)
	f[txnHomeFetch] = maskOf(txnCbPending, txnHomeFill)
	f[txnCbPending] = maskOf(txnHomeFill)
	f[txnHomeFill] = maskOf(txnDirAction)
	f[txnDirAction] = maskOf(txnRespond)
	f[txnRespond] = maskOf(txnUnlock)
	f[txnUnlock] = maskOf(txnDone)

	// Remote memory operation: same home-side shape, but the directory
	// action drops every private copy and the commit applies the
	// operator at the home copy (or memory, when the fill bypassed).
	r := &t[kindRMO]
	r[txnIdle] = maskOf(txnHomeLocked)
	r[txnHomeLocked] = maskOf(txnHomeProbe)
	r[txnHomeProbe] = maskOf(txnHomeFetch, txnDirAction)
	r[txnHomeFetch] = maskOf(txnCbPending, txnHomeFill)
	r[txnCbPending] = maskOf(txnHomeFill)
	r[txnHomeFill] = maskOf(txnDirAction)
	r[txnDirAction] = maskOf(txnCommit)
	r[txnCommit] = maskOf(txnUnlock)
	r[txnUnlock] = maskOf(txnDone)

	// Non-temporal store: supersede all copies under the home lock,
	// write the home level, charge the transfer, unlock.
	n := &t[kindNTStore]
	n[txnIdle] = maskOf(txnHomeLocked)
	n[txnHomeLocked] = maskOf(txnDirAction)
	n[txnDirAction] = maskOf(txnCommit)
	n[txnCommit] = maskOf(txnRespond)
	n[txnRespond] = maskOf(txnUnlock)
	n[txnUnlock] = maskOf(txnDone)

	// Ownership upgrade: directory invalidations under the home lock.
	// Fast paths (untracked line, already owner, silent upgrade) skip
	// straight to Unlock.
	u := &t[kindUpgrade]
	u[txnIdle] = maskOf(txnHomeLocked)
	u[txnHomeLocked] = maskOf(txnDirAction)
	u[txnDirAction] = maskOf(txnRespond, txnUnlock)
	u[txnRespond] = maskOf(txnUnlock)
	u[txnUnlock] = maskOf(txnDone)

	// Flush eviction of one line: a single lock check (a locked line is
	// skipped this pass and retried by the flush walk), then extraction
	// and the eviction pipeline.
	e := &t[kindFlushEvict]
	e[txnIdle] = maskOf(txnLookup)
	e[txnLookup] = maskOf(txnCommit, txnDone)
	e[txnCommit] = maskOf(txnDone)

	return t
}()

// txnCountTable is one tile's slice of the transaction coverage table:
// observed transitions per (kind, from, to). Counts live per tile so a
// sharded build increments without synchronization; TxnCoverage sums.
type txnCountTable [nTxnKinds][nTxnStates][nTxnStates]uint64

// TxnTransition is one observed state-machine edge with its hit count;
// the coverage table is exposed for tests, the explorer, and reports.
type TxnTransition struct {
	Kind     string
	From, To string
	Count    uint64
}

// TxnStateOrder returns the state names in machine order (Idle first,
// Done last), for reports that render states as columns.
func TxnStateOrder() []string {
	out := make([]string, nTxnStates)
	copy(out, txnStateNames[:])
	return out
}

// TxnKindOrder returns the transaction kind names in machine order.
func TxnKindOrder() []string {
	out := make([]string, nTxnKinds)
	copy(out, txnKindNames[:])
	return out
}

// LegalEdges enumerates every edge the txnLegal table permits, in
// deterministic (kind, from, to) order with zero counts — the universe
// that TxnCoverage results are a subset of.
func LegalEdges() []TxnTransition {
	var out []TxnTransition
	for k := 0; k < nTxnKinds; k++ {
		for from := 0; from < nTxnStates; from++ {
			for to := 0; to < nTxnStates; to++ {
				if txnLegal[k][from]&(1<<to) != 0 {
					out = append(out, TxnTransition{
						Kind: txnKind(k).String(),
						From: txnState(from).String(),
						To:   txnState(to).String(),
					})
				}
			}
		}
	}
	return out
}

// UnvisitedEdges returns the legal edges absent from observed (counts
// ignored), in LegalEdges order — the state-machine paths a run or run
// set never exercised. takosim -verify prints them so coverage holes in
// the coherence machine are visible, not just violations.
func UnvisitedEdges(observed []TxnTransition) []TxnTransition {
	seen := make(map[TxnTransition]bool, len(observed))
	for _, e := range observed {
		e.Count = 0
		seen[e] = true
	}
	var out []TxnTransition
	for _, e := range LegalEdges() {
		if !seen[e] {
			out = append(out, e)
		}
	}
	return out
}

// TxnCoverage returns every state transition observed on this hierarchy
// since construction, in deterministic (kind, from, to) order.
func (h *Hierarchy) TxnCoverage() []TxnTransition {
	var out []TxnTransition
	for k := 0; k < nTxnKinds; k++ {
		for from := 0; from < nTxnStates; from++ {
			for to := 0; to < nTxnStates; to++ {
				var c uint64
				for _, t := range h.tiles {
					c += t.txnCounts[k][from][to]
				}
				if c > 0 {
					out = append(out, TxnTransition{
						Kind:  txnKind(k).String(),
						From:  txnState(from).String(),
						To:    txnState(to).String(),
						Count: c,
					})
				}
			}
		}
	}
	return out
}
