package hier

import (
	"testing"

	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/sim"
)

func TestAtomicAddLocalNoLostUpdates(t *testing.T) {
	k := sim.NewKernel()
	cfg := ScaledConfig(4, 16)
	h := New(k, cfg, energy.NewMeter(), nil, nil)
	h.SetFreshChecks(true)
	const per = 500
	const nLines = 8
	for tile := 0; tile < 4; tile++ {
		tile := tile
		k.Go("w", func(p *sim.Proc) {
			for i := 0; i < per; i++ {
				a := mem.Addr(0x9000 + (i%nLines)*64)
				h.AtomicAddLocal(p, tile, a, 1)
			}
		})
	}
	k.Run()
	var total uint64
	for j := 0; j < nLines; j++ {
		total += h.DebugReadWord(mem.Addr(0x9000 + j*64))
	}
	if total != 4*per {
		t.Fatalf("lost updates: total = %d, want %d", total, 4*per)
	}
}
