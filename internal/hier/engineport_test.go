package hier

import (
	"testing"

	"tako/internal/mem"
	"tako/internal/sim"
)

// The engine-port API (§5.3) is exercised indirectly by every morph
// case study; these tests pin its contract directly: routing (SHARED
// callbacks bypass the private L2, PRIVATE callbacks cluster in it),
// coherence with the cores, read-modify-write semantics, async-load
// completion ordering, and persistence-domain accounting.

func TestEngineLoadRouting(t *testing.T) {
	k, h := newH(4)
	h.DRAM.Store().WriteU64(0x1000, 41)
	h.DRAM.Store().WriteU64(0x2000, 42)
	k.Go("engine", func(p *sim.Proc) {
		if v := h.EngineLoadWord(p, 0, 0x1000, LevelShared); v != 41 {
			t.Errorf("EngineLoadWord(shared) = %d, want 41", v)
		}
		if ln := h.EngineLoadLine(p, 0, 0x2000, LevelPrivate); ln.U64(0) != 42 {
			t.Errorf("EngineLoadLine(private) word 0 = %d, want 42", ln.U64(0))
		}
	})
	k.Run()
	tl := h.tiles[0]
	// SHARED-level fills go from the engine L1d straight to the shared
	// level: the private L2 must not hold the line.
	if tl.el1.Lookup(0x1000) == nil {
		t.Error("shared-level engine load did not fill the engine L1d")
	}
	if tl.l2.Lookup(0x1000) != nil {
		t.Error("shared-level engine load leaked into the private L2")
	}
	// PRIVATE-level fills cluster within the tile: the L2 holds them.
	if tl.l2.Lookup(0x2000) == nil {
		t.Error("private-level engine load did not fill the private L2")
	}
}

func TestEngineStoreCoherentWithCore(t *testing.T) {
	k, h := newH(4)
	k.Go("engine", func(p *sim.Proc) {
		h.EngineStoreWord(p, 1, 0x3000, 777, LevelPrivate)
		if v := h.EngineLoadWord(p, 1, 0x3000, LevelPrivate); v != 777 {
			t.Errorf("engine readback = %d, want 777", v)
		}
		// A core on another tile must observe the engine's store through
		// the ordinary coherence protocol.
		if v := h.Load(p, 2, 0x3000); v != 777 {
			t.Errorf("cross-tile core load = %d, want 777", v)
		}
	})
	k.Run()
}

func TestEngineStoreLineAndRMW(t *testing.T) {
	k, h := newH(2)
	var line mem.Line
	line.SetU64(0, 100)
	line.SetU64(8, 200)
	k.Go("engine", func(p *sim.Proc) {
		h.EngineStoreLine(p, 0, 0x4000, &line, LevelShared)
		h.EngineAtomicAddWord(p, 0, 0x4000, 5, LevelShared)
		h.EngineRMWWord(p, 0, 0x4008, RMOAdd, 30, LevelShared)
		if v := h.EngineLoadWord(p, 0, 0x4000, LevelShared); v != 105 {
			t.Errorf("atomic add result = %d, want 105", v)
		}
		if v := h.EngineLoadWord(p, 0, 0x4008, LevelShared); v != 230 {
			t.Errorf("RMW add result = %d, want 230", v)
		}
	})
	k.Run()
}

// TestEngineLoadLineAsyncOrdering issues two async fetches in the same
// cycle — one for a line already resident in the engine L1d, one that
// must come from DRAM — and checks both that every future completes and
// that the resident line's future completes strictly earlier (the async
// path exposes real memory-level parallelism rather than serializing on
// issue order).
func TestEngineLoadLineAsyncOrdering(t *testing.T) {
	k, h := newH(2)
	h.DRAM.Store().WriteU64(0x5000, 1)
	h.DRAM.Store().WriteU64(0x6000, 2)
	var hitDone, missDone sim.Cycle
	k.Go("engine", func(p *sim.Proc) {
		// Warm 0x5000 into the engine L1d.
		h.EngineLoadLine(p, 0, 0x5000, LevelShared)
		fHit := sim.NewFuture(k)
		fMiss := sim.NewFuture(k)
		// Issue the cold fetch first: completion order must follow
		// residency, not issue order.
		h.EngineLoadLineAsync(0, 0x6000, LevelShared, fMiss)
		h.EngineLoadLineAsync(0, 0x5000, LevelShared, fHit)
		p.Wait(fHit)
		hitDone = p.Now()
		p.Wait(fMiss)
		missDone = p.Now()
	})
	k.Run()
	if hitDone == 0 || missDone == 0 {
		t.Fatal("async load futures never completed")
	}
	if hitDone >= missDone {
		t.Fatalf("resident-line async load completed at %d, after the DRAM fetch at %d", hitDone, missDone)
	}
}

// TestEnginePersistLine checks the §8.3 persistence contract: the write
// is visible through the cache AND reaches the backing (NV)DRAM before
// the call returns, with the write accounted to the persistence domain.
func TestEnginePersistLine(t *testing.T) {
	k, h := newH(2)
	var line mem.Line
	line.SetU64(0, 0xDEAD)
	wbefore := h.DRAM.Writes
	k.Go("engine", func(p *sim.Proc) {
		h.EnginePersistLine(p, 0, 0x7000, &line, LevelShared)
		if v := h.EngineLoadWord(p, 0, 0x7000, LevelShared); v != 0xDEAD {
			t.Errorf("cached readback = %#x, want 0xdead", v)
		}
	})
	k.Run()
	// Durable: the backing store holds the data even though the cached
	// copy is dirty and was never evicted.
	if v := h.DRAM.Store().ReadU64(0x7000); v != 0xDEAD {
		t.Errorf("DRAM readback = %#x, want 0xdead (persist did not reach the persistence domain)", v)
	}
	if got := h.DRAM.Writes - wbefore; got != 1 {
		t.Errorf("DRAM writes = %d, want exactly 1 (the persist)", got)
	}
}
