package exp

import (
	"fmt"

	"tako/internal/cpu"
	"tako/internal/engine"
	"tako/internal/morphs"
	"tako/internal/sim"
	"tako/internal/stats"
	"tako/internal/tlb"
)

func init() {
	register(Experiment{
		ID:    "fig22",
		Title: "HATS sensitivity to engine fabric size",
		Paper: "dataflow vastly outperforms an in-order core; performance plateaus by 5x5, within 1.8% of ideal",
		Run: func(quick bool) (*stats.Table, error) {
			prm := hatsParams(quick)
			t := stats.NewTable("Fig 22 — fabric size (HATS)", "engine", "cycles", "speedup-vs-baseline")
			type cfgRow struct {
				name string
				cfg  engine.Config
			}
			rows := []cfgRow{}
			for _, dim := range []int{3, 4, 5, 6, 7} {
				c := engine.DefaultConfig()
				c.FabricW, c.FabricH = dim, dim
				c.MemPEs = dim * dim * 2 / 5 // keep the paper's int:mem PE ratio
				rows = append(rows, cfgRow{fmt.Sprintf("%dx%d", dim, dim), c})
			}
			inorder := engine.DefaultConfig()
			inorder.InOrderCore = true
			rows = append(rows, cfgRow{"in-order core", inorder})
			rows = append(rows, cfgRow{"ideal", engine.IdealConfig()})
			// Task 0 is the baseline; tasks 1..N the engine configs.
			results, err := runResults(len(rows)+1, func(i int) (morphs.Result, error) {
				if i == 0 {
					return morphs.RunHATS(morphs.HATSVertexOrdered, prm)
				}
				p := prm
				p.Engine = rows[i-1].cfg
				return morphs.RunHATS(morphs.HATSTako, p)
			})
			if err != nil {
				return nil, err
			}
			base := results[0]
			for i, row := range rows {
				r := results[i+1]
				t.AddRowf(row.name, r.Cycles, r.Speedup(base))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "fig23",
		Title: "HATS sensitivity to PE latency",
		Paper: "even at 8-cycle PEs speedup only drops from 43% to ~30%: MLP matters, not arithmetic throughput",
		Run: func(quick bool) (*stats.Table, error) {
			prm := hatsParams(quick)
			t := stats.NewTable("Fig 23 — PE latency (HATS)", "pe-latency", "cycles", "speedup-vs-baseline")
			lats := []sim.Cycle{1, 2, 4, 8}
			results, err := runResults(len(lats)+1, func(i int) (morphs.Result, error) {
				if i == 0 {
					return morphs.RunHATS(morphs.HATSVertexOrdered, prm)
				}
				p := prm
				p.Engine = engine.DefaultConfig()
				p.Engine.PELatency = lats[i-1]
				return morphs.RunHATS(morphs.HATSTako, p)
			})
			if err != nil {
				return nil, err
			}
			base := results[0]
			for i, lat := range lats {
				t.AddRowf(fmt.Sprintf("%d cycles", lat), results[i+1].Cycles, results[i+1].Speedup(base))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "fig24",
		Title: "PHI across core microarchitectures",
		Paper: "PageRank is memory-bound: täkō's speedup is essentially unchanged across cores",
		Run: func(quick bool) (*stats.Table, error) {
			t := stats.NewTable("Fig 24 — core microarchitecture (PHI)",
				"core", "baseline-cycles", "täkō-cycles", "speedup")
			cores := []cpu.Config{cpu.LittleInOrder(), cpu.Goldmont(), cpu.BigOOO()}
			// Core-major, baseline-then-täkō: the sequential loop's order.
			results, err := runResults(len(cores)*2, func(i int) (morphs.Result, error) {
				prm := phiParams(quick)
				prm.Core = cores[i/2]
				v := morphs.PHIBaseline
				if i%2 == 1 {
					v = morphs.PHITako
				}
				return morphs.RunPHI(v, prm)
			})
			if err != nil {
				return nil, err
			}
			for i, core := range cores {
				base, tako := results[2*i], results[2*i+1]
				t.AddRowf(core.Name, base.Cycles, tako.Cycles, tako.Speedup(base))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "fig25",
		Title: "PHI scalability: cores and graph sizes",
		Paper: "täkō consistently outperforms UB (≈34%, 32%, 21% at 8, 16, 36 cores) and improves with data size",
		Run: func(quick bool) (*stats.Table, error) {
			t := stats.NewTable("Fig 25 — PHI scalability",
				"cores", "edges", "UB-speedup", "täkō-speedup", "täkō-vs-UB")
			type row struct {
				tiles int
				sz    [2]int
			}
			rows := []row{
				{8, [2]int{16 * 1024, 160 * 1024}},
				{8, [2]int{32 * 1024, 320 * 1024}},
				{16, [2]int{32 * 1024, 320 * 1024}},
			}
			if quick {
				rows = rows[:2]
			}
			variants := []morphs.PHIVariant{morphs.PHIBaseline, morphs.PHIUB, morphs.PHITako}
			// Row-major, baseline/UB/täkō within each row.
			results, err := runResults(len(rows)*len(variants), func(i int) (morphs.Result, error) {
				rw := rows[i/len(variants)]
				prm := phiParams(true)
				prm.Tiles, prm.Threads = rw.tiles, rw.tiles
				prm.V, prm.E = rw.sz[0], rw.sz[1]
				return morphs.RunPHI(variants[i%len(variants)], prm)
			})
			if err != nil {
				return nil, err
			}
			for i, rw := range rows {
				base, ub, tako := results[3*i], results[3*i+1], results[3*i+2]
				t.AddRowf(rw.tiles, rw.sz[1], ub.Speedup(base), tako.Speedup(base),
					pct(float64(ub.Cycles)/float64(tako.Cycles)-1))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "sweep-cbbuf",
		Title: "Callback-buffer size sweep (NVM flush pressure)",
		Paper: "performance plateaus at 4 entries; the paper uses 8",
		Run: func(quick bool) (*stats.Table, error) {
			t := stats.NewTable("§9 — callback-buffer size (NVM)", "entries", "cycles", "vs-8-entries")
			sizes := []int{1, 2, 4, 8, 16, 64}
			results, err := runResults(len(sizes), func(i int) (morphs.Result, error) {
				prm := morphs.DefaultNVMParams(64 << 10)
				prm.Tiles = 4
				prm.Engine = engine.DefaultConfig()
				prm.Engine.CallbackBuffer = sizes[i]
				return morphs.RunNVM(morphs.NVMTako, prm)
			})
			if err != nil {
				return nil, err
			}
			var ref morphs.Result
			for i, n := range sizes {
				if n == 8 {
					ref = results[i]
				}
			}
			for i, n := range sizes {
				r := results[i]
				t.AddRowf(n, r.Cycles, pct(float64(r.Cycles)/float64(ref.Cycles)-1))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "sweep-rtlb",
		Title: "rTLB size sweep (HATS)",
		Paper: "performance varies by at most 2.1% from 256 to 1024 entries; 256 entries with 2MB pages suffice",
		Run: func(quick bool) (*stats.Table, error) {
			prm := hatsParams(true)
			t := stats.NewTable("§9 — rTLB size (HATS)", "entries", "pages", "cycles", "vs-256/2MB")
			type cfg struct {
				entries int
				bits    uint
			}
			cfgs := []cfg{{256, 21}, {512, 21}, {1024, 21}, {256, 12}, {1024, 12}}
			results, err := runResults(len(cfgs), func(i int) (morphs.Result, error) {
				p := prm
				// rTLB config lives in the hierarchy config; thread it
				// through a dedicated engine run.
				p.RTLB = &tlb.Config{
					Name: "rtlb", Entries: cfgs[i].entries, PageBits: cfgs[i].bits,
					HitLatency: 1, WalkLatency: 30,
				}
				return morphs.RunHATS(morphs.HATSTako, p)
			})
			if err != nil {
				return nil, err
			}
			ref := results[0]
			for i, c := range cfgs {
				pages := "2MB"
				if c.bits == 12 {
					pages = "4KB"
				}
				t.AddRowf(c.entries, pages, results[i].Cycles,
					pct(float64(results[i].Cycles)/float64(ref.Cycles)-1))
			}
			return t, nil
		},
	})
}
