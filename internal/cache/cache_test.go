package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tako/internal/mem"
)

// tiny returns a 2-set, 4-way cache for focused tests.
func tiny(p Policy) *Cache {
	return New(Config{Name: "t", SizeBytes: 2 * 4 * 64, Ways: 4, Policy: p})
}

// addrFor returns the i-th distinct line address mapping to the given set
// of a 2-set cache.
func addrFor(set, i int) mem.Addr {
	return mem.Addr(uint64(set)*64 + uint64(i)*2*64)
}

func fill(c *Cache, a mem.Addr, opts FillOpts) LineState {
	way, ok := c.ChooseVictimForInsert(a, opts, VictimConstraint{})
	if !ok {
		panic("no victim")
	}
	return c.FillAt(a, way, nil, opts)
}

func TestGeometry(t *testing.T) {
	c := New(Config{Name: "l2", SizeBytes: 128 * 1024, Ways: 8})
	if c.NumSets() != 256 {
		t.Fatalf("sets = %d, want 256", c.NumSets())
	}
	// Same line maps to same set; consecutive lines to consecutive sets.
	if c.SetIndex(0) != 0 || c.SetIndex(64) != 1 || c.SetIndex(63) != 0 {
		t.Fatal("set indexing wrong")
	}
	// IndexShift skips bank-interleave bits.
	cb := New(Config{Name: "l3", SizeBytes: 8 * 1024, Ways: 2, IndexShift: 4})
	if cb.SetIndex(0) != cb.SetIndex(64) {
		t.Fatal("IndexShift should make adjacent lines share a set index")
	}
	if cb.SetIndex(0) == cb.SetIndex(64*16) {
		t.Fatal("IndexShift skipped too many bits")
	}
}

func TestLookupMissHitAndData(t *testing.T) {
	c := tiny(NewLRU())
	a := addrFor(0, 0)
	if c.Lookup(a) != nil {
		t.Fatal("hit in empty cache")
	}
	var data mem.Line
	data.SetWord(0, 99)
	way, ok := c.ChooseVictimForInsert(a, FillOpts{}, VictimConstraint{})
	if !ok {
		t.Fatal("no victim in empty set")
	}
	ev := c.FillAt(a, way, &data, FillOpts{})
	if ev.Valid {
		t.Fatal("eviction from empty way")
	}
	l := c.Lookup(a + 8) // any addr within the line
	if l == nil || l.Data.Word(0) != 99 {
		t.Fatal("fill did not stick")
	}
	if c.Stats.Fills != 1 {
		t.Fatalf("fills = %d", c.Stats.Fills)
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c := tiny(NewLRU())
	for i := 0; i < 4; i++ {
		fill(c, addrFor(0, i), FillOpts{})
	}
	c.Touch(addrFor(0, 0)) // 0 is now MRU; 1 is LRU
	ev := fill(c, addrFor(0, 4), FillOpts{})
	if !ev.Valid || ev.Tag != addrFor(0, 1) {
		t.Fatalf("evicted %v, want %v", ev.Tag, addrFor(0, 1))
	}
}

func TestRRIPAgingAndPromotion(t *testing.T) {
	c := tiny(NewRRIP())
	for i := 0; i < 4; i++ {
		fill(c, addrFor(0, i), FillOpts{})
	}
	c.Touch(addrFor(0, 2)) // promoted to near
	// All start at long(2); victim search ages everyone to 3 except
	// the promoted line, then picks the first distant: way 0.
	ev := fill(c, addrFor(0, 4), FillOpts{})
	if !ev.Valid || ev.Tag != addrFor(0, 0) {
		t.Fatalf("evicted %v, want %v", ev.Tag, addrFor(0, 0))
	}
	if c.Lookup(addrFor(0, 2)) == nil {
		t.Fatal("promoted line was evicted")
	}
}

func TestTRRIPDemotesEngineFills(t *testing.T) {
	c := tiny(NewTRRIP())
	fill(c, addrFor(0, 0), FillOpts{})                 // core fill: RRPV 2
	fill(c, addrFor(0, 1), FillOpts{EngineFill: true}) // engine fill: RRPV 3
	fill(c, addrFor(0, 2), FillOpts{})
	fill(c, addrFor(0, 3), FillOpts{})
	ev := fill(c, addrFor(0, 4), FillOpts{})
	if ev.Tag != addrFor(0, 1) {
		t.Fatalf("trrîp evicted %v, want the engine-filled line", ev.Tag)
	}
	// Plain RRIP treats them equally: victim is the first aged way.
	c2 := tiny(NewRRIP())
	fill(c2, addrFor(0, 0), FillOpts{})
	fill(c2, addrFor(0, 1), FillOpts{EngineFill: true})
	fill(c2, addrFor(0, 2), FillOpts{})
	fill(c2, addrFor(0, 3), FillOpts{})
	ev = fill(c2, addrFor(0, 4), FillOpts{})
	if ev.Tag != addrFor(0, 0) {
		t.Fatalf("rrip evicted %v, want way 0", ev.Tag)
	}
}

func TestTRRIPHitRescuesEngineLine(t *testing.T) {
	c := tiny(NewTRRIP())
	fill(c, addrFor(0, 0), FillOpts{EngineFill: true})
	c.Touch(addrFor(0, 0)) // core demand hit: promoted, EngineFill cleared
	l := c.Lookup(addrFor(0, 0))
	if l.EngineFill || l.RRPV != 0 {
		t.Fatalf("engine line not rescued: %+v", l)
	}
}

func TestLockedLinesNotVictimized(t *testing.T) {
	c := tiny(NewLRU())
	for i := 0; i < 4; i++ {
		fill(c, addrFor(0, i), FillOpts{Locked: i == 0})
	}
	// Way 0 is the LRU line but locked.
	ev := fill(c, addrFor(0, 4), FillOpts{})
	if ev.Tag == addrFor(0, 0) {
		t.Fatal("evicted a locked line")
	}
	if c.Lookup(addrFor(0, 0)) == nil {
		t.Fatal("locked line gone")
	}
}

func TestAllLockedNoVictim(t *testing.T) {
	c := tiny(NewLRU())
	for i := 0; i < 4; i++ {
		fill(c, addrFor(0, i), FillOpts{Locked: true})
	}
	if _, ok := c.ChooseVictim(addrFor(0, 9), VictimConstraint{}); ok {
		t.Fatal("found victim among all-locked set")
	}
}

func TestCallbackFreeConstraint(t *testing.T) {
	c := tiny(NewLRU())
	fill(c, addrFor(0, 0), FillOpts{Morph: true})
	fill(c, addrFor(0, 1), FillOpts{Morph: true})
	fill(c, addrFor(0, 2), FillOpts{Morph: true})
	fill(c, addrFor(0, 3), FillOpts{}) // the callback-free line
	way, ok := c.ChooseVictim(addrFor(0, 4), VictimConstraint{CallbackFree: true})
	if !ok {
		t.Fatal("no callback-free victim found")
	}
	set := c.SetIndex(addrFor(0, 4))
	if got := c.set(set)[way].Tag; got != addrFor(0, 3) {
		t.Fatalf("callback-free victim = %v, want %v", got, addrFor(0, 3))
	}
}

func TestMorphInsertInvariant(t *testing.T) {
	c := tiny(NewLRU())
	// Fill 3 Morph lines + 1 normal; inserting a 4th Morph line must
	// victimize a Morph line, not the last callback-free one.
	fill(c, addrFor(0, 0), FillOpts{Morph: true})
	fill(c, addrFor(0, 1), FillOpts{Morph: true})
	fill(c, addrFor(0, 2), FillOpts{Morph: true})
	fill(c, addrFor(0, 3), FillOpts{})
	ev := fill(c, addrFor(0, 4), FillOpts{Morph: true})
	if !ev.Valid || !ev.Morph {
		t.Fatalf("evicted %+v, want a Morph line", ev)
	}
	if err := c.CheckMorphInvariant(); err != nil {
		t.Fatal(err)
	}
	// And a Morph insert under CallbackFree constraint in that state
	// is refused rather than violating the invariant.
	if _, ok := c.ChooseVictimForInsert(addrFor(0, 5), FillOpts{Morph: true},
		VictimConstraint{CallbackFree: true}); ok {
		t.Fatal("morph insert with CallbackFree should have been refused")
	}
}

// Property: any random mix of Morph and plain fills preserves the per-set
// callback-free invariant.
func TestQuickMorphInvariantPreserved(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		c := New(Config{Name: "q", SizeBytes: 4 * 4 * 64, Ways: 4, Policy: NewTRRIP()})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n)+8; i++ {
			a := mem.Addr(rng.Intn(256) * 64)
			if c.Contains(a) {
				continue // refills are handled above the array
			}
			opts := FillOpts{
				Morph:      rng.Intn(2) == 0,
				EngineFill: rng.Intn(4) == 0,
				Dirty:      rng.Intn(2) == 0,
			}
			way, ok := c.ChooseVictimForInsert(a, opts, VictimConstraint{})
			if !ok {
				return false
			}
			c.FillAt(a, way, nil, opts)
			if err := c.CheckMorphInvariant(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractLine(t *testing.T) {
	c := tiny(NewLRU())
	fill(c, addrFor(0, 0), FillOpts{Dirty: true})
	ls, ok := c.ExtractLine(addrFor(0, 0) + 16)
	if !ok || !ls.Dirty || ls.Tag != addrFor(0, 0) {
		t.Fatalf("extract = %+v, %v", ls, ok)
	}
	if c.Contains(addrFor(0, 0)) {
		t.Fatal("extracted line still present")
	}
	if _, ok := c.ExtractLine(addrFor(0, 0)); ok {
		t.Fatal("double extract succeeded")
	}
}

func TestLinesInRegion(t *testing.T) {
	c := New(Config{Name: "w", SizeBytes: 16 * 4 * 64, Ways: 4})
	r := mem.Region{Name: "r", Base: 0x1000, Size: 0x200}
	fill(c, 0x1000, FillOpts{})
	fill(c, 0x1040, FillOpts{})
	fill(c, 0x3000, FillOpts{}) // outside
	got := c.LinesInRegion(r)
	if len(got) != 2 {
		t.Fatalf("lines in region = %v", got)
	}
}

func TestStatsOnEvict(t *testing.T) {
	c := tiny(NewLRU())
	for i := 0; i < 4; i++ {
		fill(c, addrFor(0, i), FillOpts{Dirty: i == 0, Morph: i == 1})
	}
	fill(c, addrFor(0, 4), FillOpts{}) // evicts way 0 (dirty)
	if c.Stats.Evictions != 1 || c.Stats.Writebacks != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestWalkAndValidLines(t *testing.T) {
	c := tiny(NewLRU())
	fill(c, addrFor(0, 0), FillOpts{})
	fill(c, addrFor(1, 0), FillOpts{})
	if c.ValidLines() != 2 {
		t.Fatalf("valid = %d", c.ValidLines())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two sets")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 3 * 64, Ways: 1})
}
