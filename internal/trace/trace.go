// Package trace is the simulator's structured event tracer: components
// emit (cycle, component, event, detail) records — points and *spans*
// (records with a duration, e.g. a callback's life from schedule to
// completion) — into a bounded ring buffer that can be filtered and
// rendered, and optionally stream into a structured Sink (export.go:
// JSONL, Chrome trace-event/Perfetto). Tracing is optional and zero-cost
// when disabled (a nil *Tracer ignores all emits), so it can stay wired
// into hot paths.
//
// Typical use:
//
//	tr := trace.New(4096)
//	tr.Filter("cb.*", "l3.*")
//	h.AttachTracer(tr)
//	... run ...
//	fmt.Print(tr.Dump())
//
// Or streaming to Perfetto:
//
//	chrome := trace.NewChrome(f)
//	tr.AttachSink(chrome.Process(0))
//	... run ...
//	chrome.Close()
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Event is one trace record. Dur == 0 is an instant event; Dur > 0 is a
// span starting at Cycle and covering [Cycle, Cycle+Dur).
type Event struct {
	Cycle     uint64
	Dur       uint64 // span duration in cycles (0 = instant)
	Component string // e.g. "l2.3", "engine.0", "dram.1"
	Kind      string // e.g. "miss", "cb.onMiss", "evict"
	Detail    string
	// Shard is the shard whose buffer recorded the event on a sharded
	// run (Tracer.Fork); 0 on a classic run. It is the second key of the
	// canonical (cycle, shard, seq) merge order.
	Shard int `json:",omitempty"`
}

func (e Event) String() string {
	if e.Dur > 0 {
		return fmt.Sprintf("%10d  %-10s %-16s [%d cyc] %s", e.Cycle, e.Component, e.Kind, e.Dur, e.Detail)
	}
	return fmt.Sprintf("%10d  %-10s %-16s %s", e.Cycle, e.Component, e.Kind, e.Detail)
}

// Sink receives every recorded event as it is emitted (export.go).
// Implementations must tolerate events arriving with non-monotonic start
// cycles: spans are emitted at completion time, so a long span can start
// before an already-emitted short one.
type Sink interface {
	Emit(e Event)
	Close() error
}

// Tracer collects events into a ring buffer and forwards them to an
// optional sink. A nil Tracer is valid and drops everything, so callers
// never need nil checks beyond the one in Emit.
type Tracer struct {
	ring    []Event
	next    int
	wrapped bool
	total   uint64
	filters []string
	sink    Sink
	minSpan uint64
	// shard labels every recorded event (Fork); 0 on an unforked tracer.
	shard int
	// spill retains every recorded event (not just the last `capacity`)
	// when retainAll is set: forks of a sink-backed tracer buffer here so
	// Merge can stream the complete per-shard history into the sink, the
	// same contract an unforked tracer's sink gets.
	spill     []Event
	retainAll bool
}

// New returns a tracer holding the most recent `capacity` events.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// Filter restricts recording to events whose Kind matches one of the
// given patterns. A pattern matches exactly, or by prefix when it ends
// in "*" ("cb.*" matches "cb.onMiss"). No filters = record everything.
func (t *Tracer) Filter(patterns ...string) {
	if t == nil {
		return
	}
	t.filters = append(t.filters, patterns...)
}

// AttachSink streams all recorded events (post-filter) into s, in
// addition to the ring buffer. Closing the sink is the caller's job.
func (t *Tracer) AttachSink(s Sink) {
	if t == nil {
		return
	}
	t.sink = s
}

// SetMinSpan drops spans shorter than n cycles (instant events are
// unaffected). Demand accesses that hit close to the core emit very
// short spans in enormous numbers; a threshold around the L2 latency
// keeps traces focused on the shared level, engines, and DRAM.
func (t *Tracer) SetMinSpan(n uint64) {
	if t == nil {
		return
	}
	t.minSpan = n
}

func (t *Tracer) matches(kind string) bool {
	if len(t.filters) == 0 {
		return true
	}
	for _, p := range t.filters {
		if strings.HasSuffix(p, "*") {
			if strings.HasPrefix(kind, p[:len(p)-1]) {
				return true
			}
		} else if kind == p {
			return true
		}
	}
	return false
}

// Emit records an instant event. Safe on a nil Tracer.
func (t *Tracer) Emit(cycle uint64, component, kind, detail string) {
	if t == nil || !t.matches(kind) {
		return
	}
	t.record(Event{Cycle: cycle, Component: component, Kind: kind, Detail: detail})
}

// EmitSpan records a span covering [start, end). Spans shorter than the
// SetMinSpan threshold are dropped. Safe on a nil Tracer.
func (t *Tracer) EmitSpan(start, end uint64, component, kind, detail string) {
	if t == nil || !t.matches(kind) {
		return
	}
	dur := uint64(0)
	if end > start {
		dur = end - start
	}
	if dur < t.minSpan {
		return
	}
	t.record(Event{Cycle: start, Dur: dur, Component: component, Kind: kind, Detail: detail})
}

func (t *Tracer) record(e Event) {
	e.Shard = t.shard
	t.total++
	if t.retainAll {
		t.spill = append(t.spill, e)
	} else {
		t.ring[t.next] = e
		t.next++
		if t.next == len(t.ring) {
			t.next = 0
			t.wrapped = true
		}
	}
	if t.sink != nil {
		t.sink.Emit(e)
	}
}

// Fork returns n per-shard tracers mirroring t's capacity, filters, and
// span threshold. Each fork buffers its shard's events unsynchronized —
// no sink, no sharing — so every shard of a parallel run can record
// without locking; Merge folds the forks back into t afterwards. When t
// streams into a sink, its forks retain their full history (not a ring
// window) so the merged stream carries every event, matching what the
// sink would have seen from an unforked tracer. Safe on a nil Tracer
// (returns nil, and nil forks drop everything).
func (t *Tracer) Fork(n int) []*Tracer {
	if t == nil {
		return nil
	}
	out := make([]*Tracer, n)
	for i := range out {
		f := New(len(t.ring))
		f.filters = append([]string(nil), t.filters...)
		f.minSpan = t.minSpan
		f.shard = i
		f.retainAll = t.sink != nil
		out[i] = f
	}
	return out
}

// Merge folds per-shard fork buffers into t in the canonical (cycle,
// shard, seq) order: all retained events sorted by start cycle, ties
// broken by shard index, ties within one shard kept in that shard's emit
// order. The order depends only on what each shard recorded — never on
// how shards interleaved in real time — so a merged sharded trace is
// byte-identical at any worker count. Merged events flow through t's
// ring and sink like locally emitted ones (t's own filters were already
// applied by the forks). The forks are reset empty.
func (t *Tracer) Merge(forks []*Tracer) {
	if t == nil {
		return
	}
	var all []Event
	for _, f := range forks {
		if f == nil {
			continue
		}
		all = append(all, f.Events()...)
		f.next, f.wrapped, f.spill = 0, false, nil
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Cycle != all[j].Cycle {
			return all[i].Cycle < all[j].Cycle
		}
		return all[i].Shard < all[j].Shard
	})
	for _, e := range all {
		t.shard = e.Shard
		t.record(e)
	}
	t.shard = 0
}

// Emitf is Emit with a formatted detail string. The formatting cost is
// paid only when the event would be recorded.
func (t *Tracer) Emitf(cycle uint64, component, kind, format string, args ...interface{}) {
	if t == nil || !t.matches(kind) {
		return
	}
	t.Emit(cycle, component, kind, fmt.Sprintf(format, args...))
}

// Events returns the buffered events in true emit order: after the ring
// wraps, the oldest retained event comes first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if t.retainAll {
		out := make([]Event, len(t.spill))
		copy(out, t.spill)
		return out
	}
	if !t.wrapped {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total returns how many events were recorded (including ones that have
// rotated out of the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Retained returns how many events the buffer currently holds.
func (t *Tracer) Retained() int {
	if t == nil {
		return 0
	}
	if t.retainAll {
		return len(t.spill)
	}
	if t.wrapped {
		return len(t.ring)
	}
	return t.next
}

// Dump renders the buffered events one per line, oldest first, headed by
// a summary of how many events were recorded versus retained — after the
// ring wraps, the dropped count says how much history rotated out.
func (t *Tracer) Dump() string {
	var b strings.Builder
	total, retained := t.Total(), t.Retained()
	fmt.Fprintf(&b, "# trace: %d events total, %d retained", total, retained)
	if dropped := total - uint64(retained); dropped > 0 {
		fmt.Fprintf(&b, " (%d oldest dropped)", dropped)
	}
	b.WriteByte('\n')
	for _, e := range t.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CountByKind aggregates buffered events per kind.
func (t *Tracer) CountByKind() map[string]int {
	out := map[string]int{}
	for _, e := range t.Events() {
		out[e.Kind]++
	}
	return out
}
