package system

import (
	"encoding/json"
	"io"
	"sync"

	"tako/internal/hier"
	"tako/internal/stats"
	"tako/internal/trace"
)

// This file is the observability capture point: the CLI tools arm a
// process-wide capture (StartCapture) before running experiments, every
// System built afterwards attaches a tracer streaming into the shared
// exporter, and each run labels itself (LabelRun, called by the study
// drivers once the study/variant is known) to build its metrics
// snapshot. StopCapture closes the exporter and hands back the run
// records for -metrics / -bench reports.
//
// Record construction is confined to the run: LabelRun reads only the
// run's own System and returns the record; nothing about a run's
// contents lives in shared state. Runs enter the shared capture log only
// through an explicit Submit, which the drivers call in deterministic
// (variant/sweep) order after any parallel fan-out has joined — so the
// capture log, and everything serialized from it, is byte-identical no
// matter how many simulations ran concurrently.
//
// When no capture is armed — every test and library use — all of this is
// a single mutex-guarded nil check per System, and runs record nothing.

// CaptureConfig configures a capture session.
type CaptureConfig struct {
	// Sink receives every traced event; nil captures metrics only.
	Sink trace.MultiSink
	// TraceKinds filters traced event kinds ("cb.*", "dram.*"; empty =
	// all). TraceMinSpan drops spans shorter than that many cycles.
	TraceKinds   []string
	TraceMinSpan uint64
	// TraceCapacity sizes each run's in-memory ring (default 4096).
	TraceCapacity int
	// FirstPid offsets the pids this capture assigns to its systems.
	// Pids reset per capture window by default (so repeated captures are
	// byte-identical); a driver running several capture windows into ONE
	// shared trace file (takoreport) threads the previous window's
	// Systems count through here to keep pids globally unique.
	FirstPid int
}

// RunRecord is one simulated system's captured run.
type RunRecord struct {
	Label        string         `json:"label"`
	Cycles       uint64         `json:"cycles"`
	Ops          uint64         `json:"ops"` // core + engine instrs + DRAM accesses
	KernelEvents uint64         `json:"kernel_events"`
	Cached       bool           `json:"cached,omitempty"` // served by the memo cache, not re-simulated
	Metrics      stats.Snapshot `json:"metrics"`
	// TxnEdges is the run's transaction state-machine coverage: every
	// observed (kind, from, to) edge with its hit count, in deterministic
	// order. Always captured — it is cheap, and reports/introspection
	// aggregate it into coverage heatmaps.
	TxnEdges []hier.TxnTransition `json:"txn_edges,omitempty"`
	// Slowest is the run's top-K slowest demand accesses with their
	// state timelines; present only when attribution armed a slow ring
	// (takosim/takoreport -slowest).
	Slowest []hier.SlowAccess `json:"slowest,omitempty"`
}

// CaptureResult is everything one capture window collected: the run
// records in submission order (deterministic — drivers submit in
// variant/sweep order), plus the window's aggregate timing. ExecMS sums
// the wall-clock of simulations actually executed; cached submissions
// contribute no ExecMS, so ExecMS is the serial-time estimate a
// parallel run is compared against.
type CaptureResult struct {
	Runs   []RunRecord
	ExecMS float64
	Cached int
	// Systems counts the systems built (pids assigned) in this window;
	// multi-window drivers add it to CaptureConfig.FirstPid for the next
	// window so one shared trace file never reuses a pid.
	Systems int
}

type capture struct {
	cfg     CaptureConfig
	result  CaptureResult
	nextPid int
}

var (
	captureMu sync.Mutex
	active    *capture
)

// StartCapture arms observability capture for all Systems built until
// StopCapture. Panics if a capture is already active (captures don't
// nest; the CLI tools arm exactly one).
func StartCapture(cfg CaptureConfig) {
	captureMu.Lock()
	defer captureMu.Unlock()
	if active != nil {
		panic("system: capture already active")
	}
	active = &capture{cfg: cfg, nextPid: cfg.FirstPid}
}

// StopCapture disarms the capture, closes the trace sink, and returns
// every submitted run in submission order.
func StopCapture() (CaptureResult, error) {
	captureMu.Lock()
	defer captureMu.Unlock()
	if active == nil {
		return CaptureResult{}, nil
	}
	res := active.result
	res.Systems = active.nextPid - active.cfg.FirstPid
	var err error
	if active.cfg.Sink != nil {
		err = active.cfg.Sink.Close()
	}
	active = nil
	return res, err
}

// Progress is a point-in-time view of the active capture window, served
// by the live introspection endpoint (/progress). All zero when no
// capture is armed.
type Progress struct {
	Active    bool    `json:"active"`
	Systems   int     `json:"systems"`   // systems built this window
	Submitted int     `json:"submitted"` // run records submitted
	Cached    int     `json:"cached"`    // of those, served by the memo cache
	ExecMS    float64 `json:"exec_ms"`   // summed serial cost of executed runs
}

// CaptureProgress snapshots the active capture window's counters.
func CaptureProgress() Progress {
	captureMu.Lock()
	defer captureMu.Unlock()
	if active == nil {
		return Progress{}
	}
	return Progress{
		Active:    true,
		Systems:   active.nextPid - active.cfg.FirstPid,
		Submitted: len(active.result.Runs),
		Cached:    active.result.Cached,
		ExecMS:    active.result.ExecMS,
	}
}

// CaptureRuns copies the run records submitted to the active capture so
// far (nil when no capture is armed) — the live half of an introspection
// metrics snapshot, alongside whatever the driver already published.
func CaptureRuns() []RunRecord {
	captureMu.Lock()
	defer captureMu.Unlock()
	if active == nil || len(active.result.Runs) == 0 {
		return nil
	}
	out := make([]RunRecord, len(active.result.Runs))
	copy(out, active.result.Runs)
	return out
}

// attachCapture wires a freshly built System into the active capture (if
// any): a tracer streaming into the shared sink, and a pid for LabelRun.
func (s *System) attachCapture() {
	captureMu.Lock()
	defer captureMu.Unlock()
	if active == nil {
		return
	}
	s.capPid = active.nextPid
	active.nextPid++
	s.captured = true
	if active.cfg.Sink != nil {
		// Sharded hierarchies fork the tracer per tile and merge the
		// buffers back in canonical (cycle, shard, seq) order at
		// FinishStats, so the same wiring serves both build shapes.
		capacity := active.cfg.TraceCapacity
		if capacity == 0 {
			capacity = 4096
		}
		tr := trace.New(capacity)
		tr.Filter(active.cfg.TraceKinds...)
		tr.SetMinSpan(active.cfg.TraceMinSpan)
		tr.AttachSink(active.cfg.Sink.Process(s.capPid))
		s.H.AttachTracer(tr)
	}
}

// LabelRun builds a completed run's record under the given label
// ("study/variant") — its cycle count, architectural op count, and a
// deterministic metrics snapshot — and names the run's track group in
// the trace output. The record is NOT entered into the capture log;
// the driver submits it (Submit) once fan-out order is known. Returns
// nil unless a capture armed before the System was built is still
// active.
func LabelRun(s *System, label string, ops uint64) *RunRecord {
	if !s.captured {
		return nil
	}
	captureMu.Lock()
	defer captureMu.Unlock()
	if active == nil {
		return nil
	}
	if active.cfg.Sink != nil {
		active.cfg.Sink.SetProcessName(s.capPid, label)
	}
	return &RunRecord{
		Label:        label,
		Cycles:       s.Cycles(),
		Ops:          ops,
		KernelEvents: s.KernelEvents(),
		Metrics:      s.H.Metrics.Snapshot(),
		TxnEdges:     s.H.TxnCoverage(),
		Slowest:      s.H.SlowestAccesses(),
	}
}

// Submit enters a run record into the active capture log. Drivers call
// it in deterministic variant/sweep order after parallel sections join.
// wallMS is the wall-clock the simulation took to execute (0 for a
// cache-served record); cached marks records replayed from the memo
// cache so paired figures account for shared runs without re-simulating.
// No-op when rec is nil or no capture is active.
func Submit(rec *RunRecord, wallMS float64, cached bool) {
	if rec == nil {
		return
	}
	captureMu.Lock()
	defer captureMu.Unlock()
	if active == nil {
		return
	}
	r := *rec
	r.Cached = cached
	if cached {
		active.result.Cached++
	} else {
		active.result.ExecMS += wallMS
	}
	active.result.Runs = append(active.result.Runs, r)
}

// MetricsReport is the JSON document written by takosim -metrics and
// takoreport -bench: every captured run with its metrics snapshot.
type MetricsReport struct {
	Runs []RunRecord `json:"runs"`
}

// WriteMetricsReport serializes the runs as indented, deterministic JSON.
func WriteMetricsReport(w io.Writer, runs []RunRecord) error {
	if runs == nil {
		runs = []RunRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(MetricsReport{Runs: runs})
}
