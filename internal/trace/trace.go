// Package trace is the simulator's structured event tracer: components
// emit (cycle, component, event, detail) records into a bounded ring
// buffer that can be filtered and rendered. Tracing is optional and
// zero-cost when disabled (a nil *Tracer ignores all emits), so it can
// stay wired into hot paths.
//
// Typical use:
//
//	tr := trace.New(4096)
//	tr.Filter("cb.*", "l3.*")
//	h.AttachTracer(tr)
//	... run ...
//	fmt.Print(tr.Dump())
package trace

import (
	"fmt"
	"strings"
)

// Event is one trace record.
type Event struct {
	Cycle     uint64
	Component string // e.g. "l2.3", "engine.0", "dram"
	Kind      string // e.g. "miss", "cb.onMiss", "evict"
	Detail    string
}

func (e Event) String() string {
	return fmt.Sprintf("%10d  %-10s %-16s %s", e.Cycle, e.Component, e.Kind, e.Detail)
}

// Tracer collects events into a ring buffer. A nil Tracer is valid and
// drops everything, so callers never need nil checks beyond the one in
// Emit.
type Tracer struct {
	ring    []Event
	next    int
	wrapped bool
	total   uint64
	filters []string
}

// New returns a tracer holding the most recent `capacity` events.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// Filter restricts recording to events whose Kind matches one of the
// given patterns. A pattern matches exactly, or by prefix when it ends
// in "*" ("cb.*" matches "cb.onMiss"). No filters = record everything.
func (t *Tracer) Filter(patterns ...string) {
	if t == nil {
		return
	}
	t.filters = append(t.filters, patterns...)
}

func (t *Tracer) matches(kind string) bool {
	if len(t.filters) == 0 {
		return true
	}
	for _, p := range t.filters {
		if strings.HasSuffix(p, "*") {
			if strings.HasPrefix(kind, p[:len(p)-1]) {
				return true
			}
		} else if kind == p {
			return true
		}
	}
	return false
}

// Emit records an event. Safe on a nil Tracer.
func (t *Tracer) Emit(cycle uint64, component, kind, detail string) {
	if t == nil || !t.matches(kind) {
		return
	}
	t.total++
	t.ring[t.next] = Event{Cycle: cycle, Component: component, Kind: kind, Detail: detail}
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
}

// Emitf is Emit with a formatted detail string. The formatting cost is
// paid only when the event would be recorded.
func (t *Tracer) Emitf(cycle uint64, component, kind, format string, args ...interface{}) {
	if t == nil || !t.matches(kind) {
		return
	}
	t.Emit(cycle, component, kind, fmt.Sprintf(format, args...))
}

// Events returns the recorded events in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total returns how many events were recorded (including ones that have
// rotated out of the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dump renders the buffered events, one per line.
func (t *Tracer) Dump() string {
	var b strings.Builder
	for _, e := range t.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CountByKind aggregates buffered events per kind.
func (t *Tracer) CountByKind() map[string]int {
	out := map[string]int{}
	for _, e := range t.Events() {
		out[e.Kind]++
	}
	return out
}
