package hier

import (
	"fmt"

	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/sim"
)

// RMOOp is a commutative reduction operator for remote memory
// operations. PHI supports any commutative update ("e.g., addition",
// §8.1); min/max enable label-propagation algorithms like connected
// components.
type RMOOp int

// Supported commutative operators.
const (
	RMOAdd RMOOp = iota
	RMOMin
	RMOMax
)

func (op RMOOp) apply(old, v uint64) uint64 {
	switch op {
	case RMOMin:
		if v < old {
			return v
		}
		return old
	case RMOMax:
		if v > old {
			return v
		}
		return old
	default:
		return old + v
	}
}

// AtomicAdd issues a relaxed remote memory operation (RMO, §8.1): a
// commutative add pushed to the shared level (or the SHARED Morph's
// lines), executing asynchronously off the core's critical path. The
// core only pays the issue cost; completion is tracked per tile and
// drained by DrainRMOs. Outstanding RMOs per tile are bounded by the
// RMOLimit semaphore — the issuing process blocks when it is exhausted.
func (h *Hierarchy) AtomicAdd(p *sim.Proc, tileID int, a mem.Addr, delta uint64) {
	h.AtomicRMO(p, tileID, a, RMOAdd, delta)
}

// AtomicRMO issues a relaxed remote memory operation with an arbitrary
// commutative operator.
func (h *Hierarchy) AtomicRMO(p *sim.Proc, tileID int, a mem.Addr, op RMOOp, v uint64) {
	t := h.tiles[tileID]
	t.rmo.Acquire(p) // backpressure: bounded in-flight RMOs
	t.rmoInflight.Add(1)
	h.hot.rmoIssued.Inc()
	h.K.Go(fmt.Sprintf("rmo@%d", tileID), func(pp *sim.Proc) {
		h.runRMO(pp, tileID, a, op, v)
		t.rmo.Release()
		t.rmoInflight.Done()
	})
}

// AtomicAddSync performs a blocking remote add (used by baselines
// without RMO support to model an ordinary atomic over the shared
// level).
func (h *Hierarchy) AtomicAddSync(p *sim.Proc, tileID int, a mem.Addr, delta uint64) {
	h.hot.rmoIssued.Inc()
	h.runRMO(p, tileID, a, RMOAdd, delta)
}

// AtomicRMOSync is the blocking form of AtomicRMO.
func (h *Hierarchy) AtomicRMOSync(p *sim.Proc, tileID int, a mem.Addr, op RMOOp, v uint64) {
	h.hot.rmoIssued.Inc()
	h.runRMO(p, tileID, a, op, v)
}

// runRMO executes the add at the home bank. Misses on SHARED Morph lines
// trigger onMiss (phantom lines are materialized in-cache with no memory
// access — PHI's key property); plain lines are fetched from DRAM.
func (h *Hierarchy) runRMO(p *sim.Proc, tileID int, a mem.Addr, op RMOOp, delta uint64) {
	la := a.Line()
	home := h.HomeTile(a)
	hm := h.tiles[home]
	p.Sleep(h.Mesh.Transfer(tileID, home, 16)) // address + operand
	for {
		f := hm.l3pending[la]
		if f == nil {
			break
		}
		p.Wait(f)
	}
	fut := sim.NewFuture(h.K)
	hm.l3pending[la] = fut
	defer func() {
		if hm.l3pending[la] == fut {
			delete(hm.l3pending, la)
		}
		fut.Complete()
	}()

	h.Meter.Add(energy.L3Access, 1)
	p.Sleep(h.cfg.L3TagLat)
	ls3 := hm.l3.Lookup(a)
	if ls3 == nil {
		h.hot.rmoMisses.Inc()
		var line mem.Line
		meta := fillMeta{}
		handled := false
		if h.registry != nil {
			if b, ok := h.registry.Binding(a); ok && b.Level == LevelShared {
				if b.Phantom {
					h.PhantomMissFills++
				} else {
					p.Wait(h.DRAM.ReadLine(la, &line))
				}
				if b.HasMiss && h.runner != nil {
					h.hot.cb[CbMiss].Inc()
					_, done := h.runner.Run(home, CbMiss, b, la, &line)
					p.Wait(done)
				}
				meta.morph, meta.phantom = true, b.Phantom
				handled = true
			}
		}
		if !handled {
			p.Wait(h.DRAM.ReadLine(la, &line))
		}
		for !h.insertL3(home, a, &line, meta) {
			p.Sleep(1)
		}
		ls3 = hm.l3.Lookup(a)
		if ls3 == nil {
			// Fill immediately victimized under extreme pressure:
			// invalidate any private copies (merging dirty data) and
			// apply the update straight to memory.
			if e, ok := h.dir[la]; ok {
				for s := 0; s < h.cfg.Tiles; s++ {
					if e.has(s) {
						if data, dirty, _ := h.invalidatePrivate(s, la); dirty {
							line = data
						}
						e.remove(s)
					}
				}
				delete(h.dir, la)
			}
			off := a.Offset() &^ 7
			old := line.U64(off)
			line.SetU64(off, op.apply(old, delta))
			h.DRAM.WriteLine(la, &line)
			if h.obs != nil {
				h.obs.RMOCommitted(tileID, a, op, delta, old, op.apply(old, delta))
			}
			h.event("rmo.bypass")
			return
		}
	} else {
		h.hot.rmoHits.Inc()
		// Lock before the data-array sleep so a concurrent insert
		// cannot victimize the line mid-update.
		ls3.Locked = true
		p.Sleep(h.cfg.L3DataLat)
		hm.l3.Touch(a)
	}
	ls3.Locked = true
	defer func() { ls3.Locked = false }()
	// Invalidate stale private copies so the home copy is authoritative.
	if e, ok := h.dir[la]; ok {
		for s := 0; s < h.cfg.Tiles; s++ {
			if e.has(s) {
				if data, dirty, present := h.invalidatePrivate(s, la); present {
					h.hot.cohInvalidations.Inc()
					if dirty {
						ls3.Data = data
					}
					h.Mesh.Transfer(home, s, 8)
				}
				e.remove(s)
			}
		}
		e.owner = -1
		delete(h.dir, la)
	}
	off := a.Offset() &^ 7
	old := ls3.Data.U64(off)
	ls3.Data.SetU64(off, op.apply(old, delta))
	ls3.Dirty = true
	h.debugLogHome(la, fmt.Sprintf("rmo-commit(from=%d)", tileID), ls3.Data.U64(16))
	if h.obs != nil {
		h.obs.RMOCommitted(tileID, a, op, delta, old, op.apply(old, delta))
	}
	h.event("rmo.commit")
}

// DrainRMOs blocks until every RMO issued by tileID has completed (used
// before flushData so no update is lost, §8.1).
func (h *Hierarchy) DrainRMOs(p *sim.Proc, tileID int) {
	h.tiles[tileID].rmoInflight.Wait(p)
}
