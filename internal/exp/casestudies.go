package exp

import (
	"fmt"

	"tako/internal/morphs"
	"tako/internal/stats"
)

func decompParams(quick bool) morphs.DecompParams {
	prm := morphs.DefaultDecompParams()
	if quick {
		prm.Tiles = 4
	}
	return prm
}

func phiParams(quick bool) morphs.PHIParams {
	prm := morphs.DefaultPHIParams()
	if quick {
		prm.V, prm.E = 16*1024, 160*1024
		prm.Tiles, prm.Threads = 8, 8
	}
	return prm
}

func hatsParams(quick bool) morphs.HATSParams {
	prm := morphs.DefaultHATSParams()
	if quick {
		// Keep the default graph (vertex data must exceed the scaled
		// LLC for the locality effects to exist) but fewer tiles.
		prm.Tiles = 8
	}
	return prm
}

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Decompression: speedup and energy per variant",
		Paper: "täkō 2.2x speedup, -61% energy; NDC hurts; within 1.1% of ideal",
		Run: func(quick bool) (*stats.Table, error) {
			res, err := morphs.RunDecompressionAll(decompParams(quick))
			if err != nil {
				return nil, err
			}
			base := res[morphs.DecompBaseline]
			t := stats.NewTable("Fig 6 — decompression",
				"variant", "cycles", "speedup", "energy(pJ)", "energy-vs-base")
			for _, v := range morphs.AllDecompVariants {
				r := res[v]
				t.AddRowf(string(v), r.Cycles, r.Speedup(base), r.EnergyPJ,
					pct(-r.EnergySaving(base)))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "fig7",
		Title: "Decompression: number of decompressions per variant",
		Paper: "täkō memoizes: fewest decompressions; precompute does all values; baseline repeats per access",
		Run: func(quick bool) (*stats.Table, error) {
			res, err := morphs.RunDecompressionAll(decompParams(quick))
			if err != nil {
				return nil, err
			}
			t := stats.NewTable("Fig 7 — decompressions", "variant", "decompressions", "extra-memory(B)")
			for _, v := range morphs.AllDecompVariants {
				r := res[v]
				t.AddRowf(string(v), int(r.Extra["decompressions"]), int(r.Extra["extra_memory_bytes"]))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "fig13",
		Title: "PHI: PageRank speedup and energy per variant",
		Paper: "UB 3.2x, täkō 4.2x speedup; täkō -36% energy",
		Run: func(quick bool) (*stats.Table, error) {
			res, err := morphs.RunPHIAll(phiParams(quick))
			if err != nil {
				return nil, err
			}
			base := res[morphs.PHIBaseline]
			t := stats.NewTable("Fig 13 — PHI PageRank",
				"variant", "cycles", "speedup", "energy(pJ)", "energy-vs-base")
			for _, v := range morphs.AllPHIVariants {
				r := res[v]
				t.AddRowf(string(v), r.Cycles, r.Speedup(base), r.EnergyPJ, pct(-r.EnergySaving(base)))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "fig14",
		Title: "PHI: DRAM accesses per PageRank phase",
		Paper: "UB -43%, täkō -60% total DRAM accesses vs baseline",
		Run: func(quick bool) (*stats.Table, error) {
			res, err := morphs.RunPHIAll(phiParams(quick))
			if err != nil {
				return nil, err
			}
			base := res[morphs.PHIBaseline]
			t := stats.NewTable("Fig 14 — DRAM accesses per phase",
				"variant", "edge", "bin", "vertex", "total", "vs-base")
			for _, v := range morphs.AllPHIVariants {
				r := res[v]
				total := r.DRAMPhase["edge"] + r.DRAMPhase["bin"] + r.DRAMPhase["vertex"]
				t.AddRowf(string(v), r.DRAMPhase["edge"], r.DRAMPhase["bin"],
					r.DRAMPhase["vertex"], total,
					pct(stats.Ratio(float64(total), float64(base.DRAMAccesses))-1))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "fig16",
		Title: "HATS: PageRank speedup and energy per variant",
		Paper: "täkō +43% speedup, -17% energy; software BDFS gives minimal benefit",
		Run: func(quick bool) (*stats.Table, error) {
			res, err := morphs.RunHATSAll(hatsParams(quick))
			if err != nil {
				return nil, err
			}
			base := res[morphs.HATSVertexOrdered]
			t := stats.NewTable("Fig 16 — HATS PageRank",
				"variant", "cycles", "speedup", "energy(pJ)", "energy-vs-base")
			for _, v := range morphs.AllHATSVariants {
				r := res[v]
				t.AddRowf(string(v), r.Cycles, r.Speedup(base), r.EnergyPJ, pct(-r.EnergySaving(base)))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "fig17",
		Title: "HATS: DRAM per phase, mispredicts per edge, load latency",
		Paper: "BDFS cuts edge-phase vertex misses; täkō regularizes core control flow; decoupling cuts load latency",
		Run: func(quick bool) (*stats.Table, error) {
			res, err := morphs.RunHATSAll(hatsParams(quick))
			if err != nil {
				return nil, err
			}
			t := stats.NewTable("Fig 17 — HATS breakdown",
				"variant", "edge-dram", "log-dram", "vertex-dram", "mispred/edge", "mean-load-lat", "sd-load-lat", "edges-logged")
			for _, v := range morphs.AllHATSVariants {
				r := res[v]
				// Mean alone hides the tail the decoupling helps most; the
				// stddev column shows the latency spread collapsing.
				t.AddRowf(string(v), r.DRAMPhase["edge"], r.DRAMPhase["log"], r.DRAMPhase["vertex"],
					r.Extra["mispredicts.per.edge"], r.Extra["load.mean"], r.Extra["load.stddev"], int(r.Extra["edges.logged"]))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "fig19",
		Title: "NVM transactions: speedup and energy vs transaction size",
		Paper: "up to 2.1x speedup and -47% energy while txns fit the L2; falls back near baseline at 128KB",
		Run: func(quick bool) (*stats.Table, error) {
			sizes := morphs.TxnSizes
			tiles := 16
			if quick {
				sizes = []int{1 << 10, 16 << 10, 128 << 10}
				tiles = 4
			}
			res, err := morphs.RunNVMSweep(sizes, tiles)
			if err != nil {
				return nil, err
			}
			t := stats.NewTable("Fig 19 — NVM transactions",
				"txn-size", "base-cycles", "täkō-cycles", "ideal-cycles", "speedup", "energy-vs-base", "journaled-lines")
			for i, size := range sizes {
				base := res[morphs.NVMBaseline][i]
				tako := res[morphs.NVMTako][i]
				ideal := res[morphs.NVMIdeal][i]
				t.AddRowf(fmt.Sprintf("%dKB", size/1024), base.Cycles, tako.Cycles, ideal.Cycles,
					tako.Speedup(base), pct(-tako.EnergySaving(base)), int(tako.Extra["journaled_lines"]))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "fig20",
		Title: "NVM transactions: instructions per 8B written",
		Paper: "täkō: ~50% fewer core instructions, ~36% fewer total",
		Run: func(quick bool) (*stats.Table, error) {
			sizes := morphs.TxnSizes
			tiles := 16
			if quick {
				sizes = []int{1 << 10, 16 << 10, 128 << 10}
				tiles = 4
			}
			res, err := morphs.RunNVMSweep(sizes, tiles)
			if err != nil {
				return nil, err
			}
			t := stats.NewTable("Fig 20 — instructions per 8B written",
				"txn-size", "base-core", "täkō-core", "täkō-engine", "täkō-total", "core-reduction")
			for i, size := range sizes {
				base := res[morphs.NVMBaseline][i]
				tako := res[morphs.NVMTako][i]
				t.AddRowf(fmt.Sprintf("%dKB", size/1024),
					base.Extra["instr_per_8B_core"],
					tako.Extra["instr_per_8B_core"],
					tako.Extra["instr_per_8B_total"]-tako.Extra["instr_per_8B_core"],
					tako.Extra["instr_per_8B_total"],
					pct(1-tako.Extra["instr_per_8B_core"]/base.Extra["instr_per_8B_core"]))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "fig21",
		Title: "Prime+probe attack: success without täkō, detection with",
		Paper: "attack leaks the victim's sets unnoticed; täkō interrupts during the prime phase before any leak",
		Run: func(quick bool) (*stats.Table, error) {
			prm := morphs.DefaultSideChannelParams()
			base, err := morphs.RunSideChannel(morphs.SCBaseline, prm)
			if err != nil {
				return nil, err
			}
			tako, err := morphs.RunSideChannel(morphs.SCTako, prm)
			if err != nil {
				return nil, err
			}
			morphs.SubmitResults(base.Result, tako.Result)
			t := stats.NewTable("Fig 21 — prime+probe on AES tables",
				"variant", "detected", "detection-cycle", "hot-lines-identified", "false-positives", "interrupts")
			t.AddRowf(string(morphs.SCBaseline), base.Detected, base.DetectionCycle,
				fmt.Sprintf("%d/%d", base.TruePositives, prm.HotLines), base.FalsePositives,
				int(base.Extra["interrupts"]))
			t.AddRowf(string(morphs.SCTako), tako.Detected, tako.DetectionCycle,
				fmt.Sprintf("%d/%d", tako.TruePositives, prm.HotLines), tako.FalsePositives,
				int(tako.Extra["interrupts"]))
			return t, nil
		},
	})
}

func init() {
	register(Experiment{
		ID:    "layout",
		Title: "AoS→SoA layout Morph (extension; paper §5.2 example)",
		Paper: "\"in a simple Morph that maps array-of-structs to struct-of-arrays, we have observed speedup of >4x\"",
		Run: func(quick bool) (*stats.Table, error) {
			prm := morphs.DefaultLayoutParams()
			if !quick {
				prm.Structs *= 2
				prm.Passes = 4
			}
			res, err := morphs.RunLayoutAll(prm)
			if err != nil {
				return nil, err
			}
			base := res[morphs.LayoutBaseline]
			t := stats.NewTable("§5.2 — AoS→SoA layout Morph",
				"variant", "cycles", "speedup", "dram-accesses")
			for _, v := range morphs.AllLayoutVariants {
				r := res[v]
				t.AddRowf(string(v), r.Cycles, r.Speedup(base), r.DRAMAccesses)
			}
			return t, nil
		},
	})
}
