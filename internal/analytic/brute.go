package analytic

// BruteStack is the O(n)-per-access reference implementation of LRU
// stack distance: a literal recency list searched linearly. It exists
// only to pin Stack's Fenwick-tree implementation in property tests and
// is far too slow for real traces.
type BruteStack struct {
	order []uint64 // most recent first
}

// Touch records an access and returns the stack distance (number of
// distinct keys touched since key's previous access) or cold=true on a
// first touch.
func (b *BruteStack) Touch(key uint64) (dist int, cold bool) {
	for i, k := range b.order {
		if k == key {
			copy(b.order[1:i+1], b.order[:i])
			b.order[0] = key
			return i, false
		}
	}
	b.order = append(b.order, 0)
	copy(b.order[1:], b.order)
	b.order[0] = key
	return 0, true
}

// MRU returns up to n keys, most recently touched first.
func (b *BruteStack) MRU(n int) []uint64 {
	if n > len(b.order) {
		n = len(b.order)
	}
	out := make([]uint64, n)
	copy(out, b.order[:n])
	return out
}

// Live returns the number of distinct keys seen.
func (b *BruteStack) Live() int { return len(b.order) }
