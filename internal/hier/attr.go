package hier

import (
	"sort"
	"sync/atomic"

	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/stats"
)

// This file is the transaction-level latency attribution layer: when
// armed (Config.Attribution), every txn.to transition observes the
// cycles the machine dwelt in the state it is leaving, so each txn kind
// accumulates a per-state cycle decomposition — how much of a 400-cycle
// load was lock queueing vs. directory probe vs. DRAM. The histograms
// are ordinary registry entries (txn.state.cycles{kind,state} and
// txn.total.cycles{kind}), so they ride the existing snapshot/report
// plumbing; a bounded ring additionally keeps the K slowest demand
// accesses with their full state timeline for takosim -slowest.
//
// Everything here is nil-gated on Hierarchy.attr: a disarmed hierarchy
// pays one pointer check in to() and getTxn() and allocates nothing,
// preserving the ≤0.01 allocs/access gate (bench_test.go).

// Attribution conservation invariant: for one transaction, the per-state
// dwell observations sum exactly to its txn.total.cycles observation —
// both windows span first stamp (getTxn, or the pre-TLB override in
// access()) to the final transition into Done, and run() observes the
// total in the same cycle as that transition. Summed per kind over a
// run, Σ_state Sum(txn.state.cycles{kind,state}) == Sum(txn.total.
// cycles{kind}); for a pure demand-load workload the kind=access total
// additionally equals the load.latency sum (attr_test.go locks both in).

// maxTimelineSegs caps one tracked access's recorded timeline; a
// pathological lock-retry storm would otherwise grow it without bound.
// Dwell accounting is unaffected — only the per-segment record truncates.
const maxTimelineSegs = 128

// tlSeg is one internal timeline segment: the state and how long the
// transaction dwelt in it before the transition out.
type tlSeg struct {
	st     txnState
	cycles uint64
}

// SlowSegment is one rendered state-timeline segment of a SlowAccess.
type SlowSegment struct {
	State  string `json:"state"`
	Cycles uint64 `json:"cycles"`
}

// SlowAccess is one of the K slowest demand accesses of a run, with its
// full (possibly truncated) state timeline in transition order.
type SlowAccess struct {
	Tile      int           `json:"tile"`
	Addr      string        `json:"addr"`
	Write     bool          `json:"write,omitempty"`
	Start     uint64        `json:"start_cycle"`
	Latency   uint64        `json:"latency"`
	Timeline  []SlowSegment `json:"timeline"`
	Truncated bool          `json:"truncated,omitempty"`
}

// slowEntry is the ring's internal record; the timeline is kept in the
// compact internal form and rendered on demand.
type slowEntry struct {
	tile      int
	la        mem.Addr
	write     bool
	start     sim.Cycle
	lat       uint64
	tl        []tlSeg
	truncated bool
}

// slowRing is one top-K ring of slow accesses, sorted ascending by
// latency so the cheapest survivor is always slow[0]. K == 0 keeps none.
// Classic builds keep a single ring (txnAttr.ring); sharded builds keep
// one per tile (tile.slow) — each touched only from its own shard — and
// merge them deterministically in SlowestAccesses.
type slowRing struct {
	k    int
	slow []slowEntry
}

// txnAttr is the armed attribution state of one hierarchy: pre-resolved
// dwell/total histogram handles (nil for states a kind can never leave,
// so a bogus observation would fault loudly in tests) and the classic
// slow ring.
type txnAttr struct {
	dwell [nTxnKinds][nTxnStates]*stats.Histogram
	total [nTxnKinds]*stats.Histogram

	ring slowRing
}

// txnSpanNames pre-renders the per-state trace span kinds so armed
// tracing formats nothing per transition.
var txnSpanNames = func() [nTxnStates]string {
	var n [nTxnStates]string
	for i := range n {
		n[i] = "txn." + txnStateNames[i]
	}
	return n
}()

// newTxnAttr registers the attribution histograms. Only (kind, state)
// pairs with at least one outgoing legal edge get a dwell histogram:
// dwell is observed when leaving a state, so states a kind never leaves
// (or never enters) would only bloat every snapshot with dead entries.
func newTxnAttr(r *stats.Registry, slowestK int) *txnAttr {
	a := &txnAttr{ring: slowRing{k: slowestK}}
	if a.ring.k > 0 {
		a.ring.slow = make([]slowEntry, 0, a.ring.k)
	}
	for k := 0; k < nTxnKinds; k++ {
		kl := stats.L("kind", txnKindNames[k])
		a.total[k] = r.Histogram("txn.total.cycles", kl)
		for s := 0; s < nTxnStates; s++ {
			if txnLegal[k][s] == 0 {
				continue
			}
			a.dwell[k][s] = r.Histogram("txn.state.cycles", kl, stats.L("state", txnStateNames[s]))
		}
	}
	return a
}

// stamp seeds a fresh transaction's attribution clocks; access()
// overrides both with its pre-TLB start so translation time lands in the
// Idle state and the access total matches the recorded load latency.
func (t *txn) stamp(now sim.Cycle) {
	t.opStart, t.stateEnter = now, now
}

// observeDwell records the dwell time of the state being left (called by
// to(), before the state changes) into the kind/state histogram, the
// tracked timeline, and — when a tracer is attached — a nested child
// span on the owning component's track.
func (t *txn) observeDwell(a *txnAttr, now sim.Cycle) {
	d := uint64(now - t.stateEnter)
	a.dwell[t.kind][t.state].Observe(d)
	if t.track {
		if len(t.tl) < maxTimelineSegs {
			t.tl = append(t.tl, tlSeg{st: t.state, cycles: d})
		} else {
			t.tlTrunc = true
		}
	}
	if t.h.tracer != nil && d > 0 {
		// The track (and, sharded, the per-shard buffer) follows the tile
		// whose kernel runs this transaction: the issuing tile for access
		// and private-flush txns, the home bank otherwise.
		comp, tile := t.h.comp.l2[t.tileID], t.tileID
		if t.kind != kindAccess && (t.kind != kindFlushEvict || t.flushBank) {
			comp, tile = t.h.comp.l3[t.home], t.home
		}
		t.h.tracerAt(tile).EmitSpan(uint64(t.stateEnter), uint64(now), comp, txnSpanNames[t.state], "")
	}
	t.stateEnter = now
}

// finishAttr closes out a completed transaction: the total window
// (opStart → now) goes to the kind's total histogram, and tracked demand
// accesses are offered to the slow ring. Called by run() in the same
// cycle as the final transition, so the total equals the summed dwell.
func (t *txn) finishAttr(a *txnAttr) {
	total := uint64(t.p.Now() - t.opStart)
	a.total[t.kind].Observe(total)
	if t.track {
		// Demand accesses finish on their issuing tile's kernel, so on a
		// sharded build each tile offers into its own ring — no locking,
		// and the ring contents depend only on that tile's own accesses.
		r := &a.ring
		if t.h.sharded {
			r = &t.h.tiles[t.tileID].slow
		}
		r.offer(t, total)
	}
}

// offer inserts a tracked access into the ring if it is slower than the
// cheapest survivor (or the ring has room). The evicted entry's timeline
// slice is reused for the copy, so a warmed ring stops allocating.
func (r *slowRing) offer(t *txn, lat uint64) {
	if r.k == 0 {
		return
	}
	var reuse []tlSeg
	if len(r.slow) >= r.k {
		if lat <= r.slow[0].lat {
			return
		}
		reuse = r.slow[0].tl[:0]
		copy(r.slow, r.slow[1:])
		r.slow = r.slow[:len(r.slow)-1]
	}
	e := slowEntry{
		tile:      t.tileID,
		la:        t.la,
		write:     t.o.write,
		start:     t.opStart,
		lat:       lat,
		tl:        append(reuse, t.tl...),
		truncated: t.tlTrunc,
	}
	// Insert keeping ascending latency order; among equals the earlier
	// access stays closer to eviction, so the newest equal survivor wins
	// ties deterministically.
	i := sort.Search(len(r.slow), func(i int) bool { return r.slow[i].lat > lat })
	r.slow = append(r.slow, slowEntry{})
	copy(r.slow[i+1:], r.slow[i:])
	r.slow[i] = e
}

// SlowestAccesses returns the captured slowest demand accesses, slowest
// first, with rendered state timelines. Nil when attribution is disarmed
// or SlowestK is 0. On a sharded build the per-tile rings are merged
// here: every survivor is collected, sorted by a total order (latency,
// then tile, then start, then address), and the global top K kept — each
// tile's ring is deterministic, so the merge is byte-identical at any
// worker count.
func (h *Hierarchy) SlowestAccesses() []SlowAccess {
	if h.attr == nil {
		return nil
	}
	entries := h.attr.ring.slow
	if h.sharded {
		var all []slowEntry
		for _, t := range h.tiles {
			all = append(all, t.slow.slow...)
		}
		sort.SliceStable(all, func(i, j int) bool {
			a, b := &all[i], &all[j]
			if a.lat != b.lat {
				return a.lat < b.lat
			}
			if a.tile != b.tile {
				return a.tile < b.tile
			}
			if a.start != b.start {
				return a.start < b.start
			}
			return a.la < b.la
		})
		if len(all) > h.attr.ring.k {
			all = all[len(all)-h.attr.ring.k:]
		}
		entries = all
	}
	if len(entries) == 0 {
		return nil
	}
	out := make([]SlowAccess, 0, len(entries))
	for i := len(entries) - 1; i >= 0; i-- {
		e := &entries[i]
		s := SlowAccess{
			Tile:      e.tile,
			Addr:      e.la.String(),
			Write:     e.write,
			Start:     uint64(e.start),
			Latency:   e.lat,
			Timeline:  make([]SlowSegment, len(e.tl)),
			Truncated: e.truncated,
		}
		for j, seg := range e.tl {
			s.Timeline[j] = SlowSegment{State: txnStateNames[seg.st], Cycles: seg.cycles}
		}
		out = append(out, s)
	}
	return out
}

// Package-wide attribution defaults picked up by DefaultConfig, mirroring
// SetVerifyDefaults: the CLIs arm attribution for every hierarchy built
// through the standard config paths without plumbing flags through each
// experiment runner.
var (
	defaultAttribution atomic.Bool
	defaultSlowestK    atomic.Int64
)

// SetAttributionDefaults arms (or disarms) transaction-level latency
// attribution for all configs subsequently built by DefaultConfig/
// ScaledConfig; slowestK bounds the per-run ring of slowest demand
// accesses kept with full state timelines (0 keeps none).
func SetAttributionDefaults(on bool, slowestK int) {
	defaultAttribution.Store(on)
	defaultSlowestK.Store(int64(slowestK))
}
