package sim

import (
	"fmt"
	"slices"
)

// This file implements the tile-sharded parallel event kernel: a
// conservative parallel-discrete-event-simulation (PDES) coordinator
// over per-shard Kernels.
//
// Each shard owns a full Kernel (queue, clock, proc/future pools) and is
// only ever touched by one goroutine at a time. Shards advance together
// through epochs derived from the lookahead — the minimum latency any
// cross-shard interaction is modeled with (for the täkō CMP, the minimum
// NoC hop latency; see hier.Lookahead). Within an epoch a shard may
// execute every event strictly before the epoch horizon without
// synchronizing, because any message another shard sends during the same
// epoch cannot arrive before the horizon. Cross-shard events travel
// through per-(sender,receiver) mailboxes that are drained at the epoch
// barrier in a canonical (arrival cycle, sender shard, sender sequence)
// order, so the merged schedule — and therefore every simulated outcome —
// is byte-identical regardless of worker count or real-time execution
// interleaving.
//
// The coordinator is deterministic by construction:
//
//   - a shard's epoch execution is a pure function of its own queue;
//   - mailbox contents depend only on that execution (per-sender send
//     order is stamped with a sender-local sequence);
//   - the drain sorts by a total key that no real-time ordering can
//     perturb, and receiver-side sequence numbers are assigned in that
//     canonical order.
//
// Run(workers) executes epochs on worker goroutines; RunSequenced is the
// single-threaded reference that executes the identical epoch schedule
// inline (shard 0 first, then 1, ...). Because shards are independent
// within an epoch, both produce the same simulation; the determinism
// battery (shard_test.go) pins that equivalence at widths 1/2/4/16 under
// the race detector.

// message is one cross-shard event in flight: exactly one of
// fn/proc/future is set, mirroring Kernel's event payloads.
type message struct {
	when   Cycle
	from   int
	seq    uint64 // sender-local send counter: total order per sender
	fn     func()
	proc   *Proc
	future *Future
}

// Shard is one tile's slice of a Sharded kernel: a private Kernel plus
// outgoing mailboxes. All access to a Shard (building processes on K,
// sending) must happen either before Run or from code executing on this
// shard's own events.
type Shard struct {
	s  *Sharded
	id int
	// K is the shard's private event kernel. Procs that live on this
	// shard are created on it.
	K *Kernel

	out     [][]message // outgoing mailbox per destination shard
	sendSeq uint64
	failure any // panic captured during an epoch; re-raised by the coordinator
}

// ID returns the shard's index.
func (sh *Shard) ID() int { return sh.id }

// Send schedules fn on shard to, delay cycles from this shard's current
// time. Cross-shard sends must respect the lookahead: delay <
// lookahead panics, because delivery happens at epoch barriers and a
// shorter delay could land inside the receiver's already-executed
// window (the classic conservative-PDES causality violation).
// Same-shard sends are ordinary local events with no minimum delay.
func (sh *Shard) Send(to int, delay Cycle, fn func()) {
	if to == sh.id {
		sh.K.After(delay, fn)
		return
	}
	sh.post(to, delay, message{fn: fn})
}

// SendWake schedules p — a process living on shard to — to be
// dispatched delay cycles from now. Lookahead rules are as in Send.
func (sh *Shard) SendWake(to int, delay Cycle, p *Proc) {
	if p.k != sh.s.shards[sh.s.shardIndex(to)].K {
		panic(fmt.Sprintf("sim: SendWake to shard %d for a proc of a different shard", to))
	}
	if to == sh.id {
		sh.K.wakeAfter(delay, p)
		return
	}
	sh.post(to, delay, message{proc: p})
}

// SendComplete schedules future f — owned by shard to — to complete
// delay cycles from now. Lookahead rules are as in Send.
func (sh *Shard) SendComplete(to int, delay Cycle, f *Future) {
	if f.k != sh.s.shards[sh.s.shardIndex(to)].K {
		panic(fmt.Sprintf("sim: SendComplete to shard %d for a future of a different shard", to))
	}
	if to == sh.id {
		sh.K.completeAt(sh.K.now+delay, f)
		return
	}
	sh.post(to, delay, message{future: f})
}

// post stamps and buffers one cross-shard message.
func (sh *Shard) post(to int, delay Cycle, m message) {
	if delay < sh.s.lookahead {
		panic(fmt.Sprintf(
			"sim: cross-shard send %d→%d with delay %d violates lookahead %d",
			sh.id, to, delay, sh.s.lookahead))
	}
	to = sh.s.shardIndex(to)
	m.when = sh.K.now + delay
	m.from = sh.id
	sh.sendSeq++
	m.seq = sh.sendSeq
	sh.out[to] = append(sh.out[to], m)
}

// ShardedStats counts coordinator work for reports and tests.
type ShardedStats struct {
	Epochs   uint64 // barrier rounds executed
	Messages uint64 // cross-shard messages delivered
}

// Sharded coordinates n shard kernels through conservative epochs.
type Sharded struct {
	lookahead Cycle
	shards    []*Shard
	stats     ShardedStats

	// scratch is the reusable drain buffer (cleared after each use so
	// pooled messages don't pin closures).
	scratch []message

	// permute, when set (tests only), reorders the sender iteration of a
	// drain; the canonical sort must erase any such reordering, which
	// FuzzEpochSchedule pins.
	permute func(senders int) []int

	// barrierHook, when set, runs on the coordinator after every epoch
	// barrier, while no shard worker is executing. Model-level checkers
	// (hier.CheckInvariants) use it to inspect cross-shard state at the
	// only points where that state is quiescent and the inspection cannot
	// perturb the schedule.
	barrierHook func()
}

// NewSharded builds a sharded kernel with n shards and the given
// lookahead (the minimum cross-shard event latency, in cycles; ≥ 1).
func NewSharded(n int, lookahead Cycle) *Sharded {
	if n < 1 {
		panic("sim: sharded kernel needs at least one shard")
	}
	if lookahead < 1 {
		panic("sim: sharded kernel needs lookahead ≥ 1")
	}
	s := &Sharded{lookahead: lookahead}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, &Shard{
			s:   s,
			id:  i,
			K:   NewKernel(),
			out: make([][]message, n),
		})
	}
	return s
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Lookahead returns the configured conservative lookahead.
func (s *Sharded) Lookahead() Cycle { return s.lookahead }

// Shard returns shard i.
func (s *Sharded) Shard(i int) *Shard { return s.shards[s.shardIndex(i)] }

// Stats returns coordinator counters.
func (s *Sharded) Stats() ShardedStats { return s.stats }

// SetBarrierHook installs fn to run after every epoch barrier, on the
// coordinator goroutine, with every shard parked. Because it runs at a
// point that is totally ordered with all shard execution, anything fn
// observes is identical at any worker count.
func (s *Sharded) SetBarrierHook(fn func()) { s.barrierHook = fn }

func (s *Sharded) shardIndex(i int) int {
	if i < 0 || i >= len(s.shards) {
		panic(fmt.Sprintf("sim: shard %d out of range [0,%d)", i, len(s.shards)))
	}
	return i
}

// minNext returns the earliest pending event time across all shards.
func (s *Sharded) minNext() (Cycle, bool) {
	var best Cycle
	ok := false
	for _, sh := range s.shards {
		if when, has := sh.K.next(); has && (!ok || when < best) {
			best, ok = when, true
		}
	}
	return best, ok
}

// runShardEpoch advances one shard to the (inclusive) epoch end,
// converting a panic on the shard — modeling bug, invariant violation,
// ProcPanic — into a stored failure the coordinator re-raises
// deterministically (lowest shard id first).
func (s *Sharded) runShardEpoch(id int, until Cycle) {
	sh := s.shards[id]
	defer func() {
		if r := recover(); r != nil {
			sh.failure = r
		}
	}()
	sh.K.RunUntil(until)
}

// checkFailures re-raises the lowest-shard panic captured during an
// epoch, after tearing down every shard's parked processes so the
// caller can recover without leaking goroutines.
func (s *Sharded) checkFailures() {
	for _, sh := range s.shards {
		if sh.failure != nil {
			r := sh.failure
			s.Shutdown()
			panic(r)
		}
	}
}

// deliver drains every mailbox into its destination queue in the
// canonical (arrival cycle, sender shard, sender sequence) order. The
// receiver assigns fresh local sequence numbers in that order, so the
// merged schedule is independent of both worker interleaving and the
// sender-iteration order (which the permute test hook deliberately
// scrambles).
func (s *Sharded) deliver() {
	n := len(s.shards)
	for dest := 0; dest < n; dest++ {
		buf := s.scratch[:0]
		if s.permute != nil {
			for _, src := range s.permute(n) {
				buf = s.collect(buf, src, dest)
			}
		} else {
			for src := 0; src < n; src++ {
				buf = s.collect(buf, src, dest)
			}
		}
		if len(buf) == 0 {
			continue
		}
		slices.SortFunc(buf, func(a, b message) int {
			if a.when != b.when {
				if a.when < b.when {
					return -1
				}
				return 1
			}
			if a.from != b.from {
				return a.from - b.from
			}
			// Per-sender sequences are unique, so the key is total.
			if a.seq < b.seq {
				return -1
			}
			return 1
		})
		k := s.shards[dest].K
		for i := range buf {
			m := &buf[i]
			switch {
			case m.proc != nil:
				k.wakeAt(m.when, m.proc)
			case m.future != nil:
				k.completeAt(m.when, m.future)
			default:
				k.At(m.when, m.fn)
			}
		}
		s.stats.Messages += uint64(len(buf))
		clear(buf) // don't pin closures/procs from the scratch buffer
		s.scratch = buf[:0]
	}
}

// collect appends shard src's mailbox for dest to buf and resets it,
// keeping the backing array pooled.
func (s *Sharded) collect(buf []message, src, dest int) []message {
	out := s.shards[src].out[dest]
	if len(out) == 0 {
		return buf
	}
	buf = append(buf, out...)
	clear(out)
	s.shards[src].out[dest] = out[:0]
	return buf
}

// RunSequenced executes the epoch schedule single-threaded: every epoch
// runs shard 0, then 1, ... inline. It is the reference semantics the
// parallel Run must match byte-for-byte (shards are independent within
// an epoch, so their execution order cannot matter; the determinism
// battery enforces exactly that).
func (s *Sharded) RunSequenced() {
	for {
		s.deliver()
		e, ok := s.minNext()
		if !ok {
			return
		}
		until := e + s.lookahead - 1
		for id := range s.shards {
			s.runShardEpoch(id, until)
		}
		s.stats.Epochs++
		s.checkFailures()
		if s.barrierHook != nil {
			s.barrierHook()
		}
	}
}

// Run executes epochs with the given number of worker goroutines
// (clamped to the shard count; ≤ 0 uses one worker per shard). Worker w
// owns shards w, w+workers, ...; ownership is fixed for the whole run,
// so a shard's kernel is only ever touched by one goroutine per epoch
// and never concurrently with the coordinator (the epoch barrier
// orders them). The simulated outcome is byte-identical at any worker
// count and to RunSequenced.
func (s *Sharded) Run(workers int) {
	n := len(s.shards)
	if workers <= 0 || workers > n {
		workers = n
	}
	if workers == 1 {
		s.RunSequenced()
		return
	}
	start := make([]chan Cycle, workers)
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		start[w] = make(chan Cycle, 1)
		go func(w int) {
			for until := range start[w] {
				for id := w; id < n; id += workers {
					s.runShardEpoch(id, until)
				}
				done <- struct{}{}
			}
		}(w)
	}
	defer func() {
		for _, c := range start {
			close(c)
		}
	}()
	for {
		s.deliver()
		e, ok := s.minNext()
		if !ok {
			return
		}
		until := e + s.lookahead - 1
		for w := 0; w < workers; w++ {
			start[w] <- until
		}
		for w := 0; w < workers; w++ {
			<-done
		}
		s.stats.Epochs++
		s.checkFailures()
		if s.barrierHook != nil {
			s.barrierHook()
		}
	}
}

// Blocked returns the names of parked processes across all shards
// (prefixed with their shard id). Non-empty after Run means deadlock.
func (s *Sharded) Blocked() []string {
	var out []string
	for _, sh := range s.shards {
		for _, name := range sh.K.Blocked() {
			out = append(out, fmt.Sprintf("shard%d/%s", sh.id, name))
		}
	}
	return out
}

// Release retires every shard kernel's pooled worker goroutines (see
// Kernel.Release).
func (s *Sharded) Release() {
	for _, sh := range s.shards {
		sh.K.Release()
	}
}

// Shutdown abandons an in-flight sharded simulation: every shard kernel
// is shut down (parked processes unwound, pooled goroutines retired) and
// undelivered mailbox messages are dropped.
func (s *Sharded) Shutdown() {
	for _, sh := range s.shards {
		sh.failure = nil
		sh.K.Shutdown()
		for d := range sh.out {
			clear(sh.out[d])
			sh.out[d] = sh.out[d][:0]
		}
	}
}
