package morphs

import "testing"

// Connected components exercises the generality claim behind PHI (§8.1):
// the same buffered-update Morph pattern with a *different* commutative
// operator (min). The assertion is bit-exact correctness of both
// implementations against the functional reference — the performance
// balance at this scale is reported, not asserted (min-propagation is
// read-heavier than PageRank's pure scatter, and our scaled caches give
// the baseline's local atomics community locality).
func TestConnectedComponentsCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prm := DefaultCCParams()
	prm.V, prm.E = 8*1024, 80*1024
	prm.Rounds = 2
	base, err := RunCC(CCBaseline, prm)
	if err != nil {
		t.Fatal(err) // includes bit-exact label verification
	}
	tako, err := RunCC(CCTako, prm)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline %d cycles, min-PHI %d cycles (%.2fx), dram %d vs %d",
		base.Cycles, tako.Cycles, tako.Speedup(base), base.DRAMAccesses, tako.DRAMAccesses)
	// Guard against gross regressions in the generalized-RMO path.
	if tako.Speedup(base) < 0.5 {
		t.Errorf("min-PHI collapsed: %.2fx", tako.Speedup(base))
	}
}
