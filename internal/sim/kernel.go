// Package sim provides a deterministic discrete-event simulation kernel
// and a blocking-process model on top of it.
//
// The kernel orders events by (time, insertion sequence), so two runs of
// the same program produce identical schedules. Simulated software threads
// (Proc) run as goroutines, but exactly one runs at a time: the kernel
// resumes a process and waits for it to park again before dispatching the
// next event, preserving determinism.
package sim

// Cycle is a point in simulated time, measured in clock cycles.
type Cycle = uint64

// event is one queue entry. Exactly one of fn/proc/future is set: fn is
// an arbitrary scheduled callback, proc is a parked process to resume,
// future is a Future to complete. Carrying the target directly keeps the
// wake paths (Sleep, Future, Semaphore, WaitGroup, Barrier, CompleteAt)
// free of per-event closure allocations. start marks a proc event as the
// process's first dispatch (set by Go/GoArgs rather than a closure).
type event struct {
	when   Cycle
	seq    uint64
	fn     func()
	proc   *Proc
	future *Future
	start  bool
}

// Kernel is a deterministic discrete-event simulator clock and queue.
// The zero value is not usable; create kernels with NewKernel.
//
// Each queue is a 4-ary min-heap stored flat in a slice. Compared to
// container/heap this is monomorphic (no interface{} boxing, so pushes
// don't allocate) and shallower (half the levels of a binary heap), and
// popping zeroes the vacated slot so completed events — and everything
// their closures captured — are collectable instead of pinned by the
// backing array.
//
// A kernel normally holds one queue. Partition splits it into several
// tile-sharded queues (see Partition): events carry a shard affinity and
// live in their shard's queue, and dispatch merges the queue heads by
// the global (time, sequence) key. The merged execution order is
// byte-identical to the single-queue order at any partition width,
// because the key is assigned at scheduling time and is independent of
// which queue an event sits in.
type Kernel struct {
	now    Cycle
	seq    uint64
	queues [][]event
	cur    int // queue index of the executing event: the routing affinity for events it schedules
	procs  []*Proc
	events uint64

	// waiterPool recycles Future waiter slices: futures are one-shot
	// and allocated in large numbers on memory-access hot paths, so
	// their waiter backing arrays are worth reusing.
	waiterPool [][]*Proc

	// freeProcs holds finished Procs whose goroutines are parked awaiting
	// a next task: spawning recycles them (struct, channels, and goroutine)
	// instead of allocating. Only the kernel loop and the currently-running
	// proc touch this list, and never at the same time, so no locking is
	// needed. Release tears the idle goroutines down.
	freeProcs []*Proc

	// futurePool recycles one-shot Futures on paths that guarantee no
	// references survive completion (DRAM transfers, lazy line-lock
	// futures). See GetFuture/RecycleFuture.
	futurePool []*Future

	// chooser, when set, resolves same-cycle scheduling ties (see
	// SetChooser); batch is its reusable scratch slice and batchQ records
	// each batched event's origin queue so unchosen events reinsert where
	// they came from. nil on every normal run — the default schedule pays
	// nothing for the hook.
	chooser Chooser
	batch   []event
	batchQ  []int

	// procPanic holds a panic captured on a Proc goroutine; dispatch
	// re-raises it on the kernel goroutine so drivers can recover it.
	procPanic *ProcPanic
}

// A Chooser resolves scheduling ties. When the kernel is about to run an
// event and n ≥ 2 events share the minimum timestamp, it calls Choose(n)
// and runs the i-th of them (counting in insertion order) first; the
// remaining n-1 keep their relative order. Choose must return a value in
// [0, n) — out-of-range values fall back to 0, and a chooser that always
// returns 0 reproduces the kernel's default FIFO schedule exactly.
//
// Every schedule a Chooser can produce is a legal timing of the modeled
// hardware: same-cycle events represent concurrent components whose
// relative order the architecture does not define. The interleaving
// explorer uses this hook to search those orders for coherence races.
type Chooser interface {
	Choose(n int) int
}

// SetChooser installs (or, with nil, removes) a scheduling-tie chooser.
// Without one, same-cycle events run in insertion order.
func (k *Kernel) SetChooser(c Chooser) { k.chooser = c }

// NewKernel returns an empty kernel at cycle 0 with a single queue.
func NewKernel() *Kernel {
	return &Kernel{queues: make([][]event, 1)}
}

// Partition splits the kernel's event queue into n tile-sharded queues.
// Queue 0 is the home (shared/uncore) queue; queues 1..n-1 hold
// tile-affine events. Events route by affinity — proc events to their
// proc's shard, callback and future events to the shard of the event
// that scheduled them — and dispatch merges all queue heads by the
// global (time, sequence) key, so the schedule is byte-identical to the
// unpartitioned kernel at any n. Must be called before any event is
// scheduled; repartitioning or shrinking an active kernel panics.
func (k *Kernel) Partition(n int) {
	if n < 1 {
		panic("sim: partition needs at least one queue")
	}
	if k.Pending() != 0 || k.seq != 0 {
		panic("sim: cannot partition a kernel with scheduled events")
	}
	k.queues = make([][]event, n)
}

// Shards returns the number of event queues (1 for an unpartitioned
// kernel).
func (k *Kernel) Shards() int { return len(k.queues) }

// shardFor clamps a requested shard affinity to the kernel's queues, so
// affinity-tagged call sites work unchanged on unpartitioned kernels.
func (k *Kernel) shardFor(shard int) int {
	if shard < 0 || shard >= len(k.queues) {
		return 0
	}
	return shard
}

// Now returns the current simulated cycle.
func (k *Kernel) Now() Cycle { return k.now }

// Events returns the number of events executed so far.
func (k *Kernel) Events() uint64 { return k.events }

// At schedules fn to run at the given absolute cycle. Scheduling in the
// past panics: it indicates a modeling bug.
func (k *Kernel) At(when Cycle, fn func()) {
	if when < k.now {
		panic("sim: scheduling event in the past")
	}
	k.seq++
	k.push(k.cur, event{when: when, seq: k.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (k *Kernel) After(delay Cycle, fn func()) {
	k.At(k.now+delay, fn)
}

// wakeAt schedules p to be dispatched at the given absolute cycle,
// without allocating a closure.
func (k *Kernel) wakeAt(when Cycle, p *Proc) {
	if when < k.now {
		panic("sim: scheduling event in the past")
	}
	k.seq++
	k.push(p.shard, event{when: when, seq: k.seq, proc: p})
}

// wakeAfter schedules p to be dispatched delay cycles from now.
func (k *Kernel) wakeAfter(delay Cycle, p *Proc) {
	k.wakeAt(k.now+delay, p)
}

// completeAt schedules f to complete at the given absolute cycle,
// without allocating a closure.
func (k *Kernel) completeAt(when Cycle, f *Future) {
	if when < k.now {
		panic("sim: scheduling event in the past")
	}
	k.seq++
	k.push(k.cur, event{when: when, seq: k.seq, future: f})
}

// minQueue returns the index of the queue whose head is the global
// minimum by (time, sequence), or -1 when every queue is empty. With a
// single queue this is a branch; partitioned kernels scan the (at most
// tiles+1) heads.
func (k *Kernel) minQueue() int {
	if len(k.queues) == 1 {
		if len(k.queues[0]) == 0 {
			return -1
		}
		return 0
	}
	best := -1
	for i := range k.queues {
		if len(k.queues[i]) == 0 {
			continue
		}
		if best < 0 || k.queues[i][0].before(&k.queues[best][0]) {
			best = i
		}
	}
	return best
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (k *Kernel) Step() bool {
	qi := k.minQueue()
	if qi < 0 {
		return false
	}
	if k.chooser != nil {
		return k.stepChoose(qi)
	}
	k.exec(qi, k.pop(qi))
	return true
}

// exec runs one dequeued event, advancing the clock to its time. qi is
// the queue the event came from: it becomes the routing affinity for
// events scheduled while it runs.
func (k *Kernel) exec(qi int, e event) {
	k.now = e.when
	k.cur = qi
	k.events++
	switch {
	case e.proc != nil:
		if e.start {
			e.proc.started = true
		}
		e.proc.dispatch()
	case e.future != nil:
		e.future.Complete()
		// Pool-originated futures completed by their scheduled event have
		// no remaining references (waiters were converted to proc wakes);
		// recycle immediately.
		k.RecycleFuture(e.future)
	default:
		e.fn()
	}
}

// stepChoose is Step with a chooser installed: pop every event tied at
// the minimum time (in insertion order, across all queues), let the
// chooser pick which one runs, and reinsert the rest into the queues
// they came from. Reinserted events keep their original sequence
// numbers, so the unchosen events' relative order — and hence the
// meaning of future choices — is unchanged by the pick.
func (k *Kernel) stepChoose(qi int) bool {
	b := append(k.batch[:0], k.pop(qi))
	bq := append(k.batchQ[:0], qi)
	for {
		next := k.minQueue()
		if next < 0 || k.queues[next][0].when != b[0].when {
			break
		}
		b = append(b, k.pop(next))
		bq = append(bq, next)
	}
	idx := 0
	if len(b) > 1 {
		if c := k.chooser.Choose(len(b)); c > 0 && c < len(b) {
			idx = c
		}
	}
	e, eq := b[idx], bq[idx]
	for i := range b {
		if i != idx {
			k.push(bq[i], b[i])
		}
	}
	clear(b) // don't pin closures from the scratch slice
	k.batch, k.batchQ = b[:0], bq[:0]
	k.exec(eq, e)
	return true
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// next returns the time of the earliest pending event; ok is false when
// every queue is empty.
func (k *Kernel) next() (when Cycle, ok bool) {
	qi := k.minQueue()
	if qi < 0 {
		return 0, false
	}
	return k.queues[qi][0].when, true
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (k *Kernel) RunUntil(t Cycle) {
	for {
		when, ok := k.next()
		if !ok || when > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// Pending returns the number of queued events across all queues.
func (k *Kernel) Pending() int {
	n := 0
	for i := range k.queues {
		n += len(k.queues[i])
	}
	return n
}

// Blocked returns the names of processes that are parked (waiting) right
// now. After Run returns, a non-empty result means those processes are
// deadlocked: no event will ever wake them.
func (k *Kernel) Blocked() []string {
	var out []string
	for _, p := range k.procs {
		if !p.done && p.started {
			out = append(out, p.name)
		}
	}
	return out
}

// before orders events by (time, insertion sequence).
func (a *event) before(b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// push inserts e into queue qi, sifting it up from the tail.
func (k *Kernel) push(qi int, e event) {
	q := append(k.queues[qi], e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !q[i].before(&q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	k.queues[qi] = q
}

// pop removes and returns queue qi's minimum event, zeroing the vacated
// tail slot so the popped event's closure (and captured state) is
// GC-able.
func (k *Kernel) pop(qi int) event {
	q := k.queues[qi]
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	k.queues[qi] = q

	// Sift the relocated tail element down: swap with the smallest of
	// up to four children until in place.
	i := 0
	for {
		min := i
		first := i<<2 + 1
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if q[c].before(&q[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// getWaiters returns an empty waiter slice, reusing a pooled backing
// array when one is available.
func (k *Kernel) getWaiters() []*Proc {
	if n := len(k.waiterPool); n > 0 {
		s := k.waiterPool[n-1]
		k.waiterPool[n-1] = nil
		k.waiterPool = k.waiterPool[:n-1]
		return s
	}
	return make([]*Proc, 0, 4)
}

// putWaiters returns a drained waiter slice to the pool. Entries are
// cleared so pooled arrays don't pin processes.
func (k *Kernel) putWaiters(s []*Proc) {
	if cap(s) == 0 || len(k.waiterPool) >= 64 {
		return
	}
	clear(s[:cap(s)])
	k.waiterPool = append(k.waiterPool, s[:0])
}

// GetFuture returns an incomplete future from the kernel's pool,
// allocating only when the pool is empty. Pool-originated futures are
// recycled automatically when completed by a CompleteAt event, or
// explicitly via RecycleFuture; callers must guarantee no reference to
// the future survives its completion. Futures that escape to unknown
// holders must use NewFuture instead.
func (k *Kernel) GetFuture() *Future {
	if n := len(k.futurePool); n > 0 {
		f := k.futurePool[n-1]
		k.futurePool[n-1] = nil
		k.futurePool = k.futurePool[:n-1]
		return f
	}
	return &Future{k: k, pooled: true}
}

// RecycleFuture returns a completed pool-originated future for reuse. It
// is a no-op for futures from NewFuture (or nil), so wake paths can call
// it unconditionally. Recycling an incomplete future panics: it would
// let two owners race on one object.
func (k *Kernel) RecycleFuture(f *Future) {
	if f == nil || !f.pooled {
		return
	}
	if !f.done {
		panic("sim: recycling incomplete future")
	}
	f.done = false
	f.when = 0
	if len(k.futurePool) < 64 {
		k.futurePool = append(k.futurePool, f)
	}
}

// Release tears down the pooled worker goroutines of finished processes.
// The kernel stays fully usable — subsequent Go calls simply allocate
// fresh processes — so callers (simulation drivers, benchmarks) should
// invoke it when a run completes to avoid accumulating parked goroutines
// across many kernels in one process.
func (k *Kernel) Release() {
	for i, p := range k.freeProcs {
		p.exit = true
		p.resume <- struct{}{}
		k.freeProcs[i] = nil
	}
	k.freeProcs = k.freeProcs[:0]
}

// Shutdown abandons an in-flight simulation: every parked process is
// unwound (via an abort panic its worker loop swallows) and all pooled
// goroutines are torn down, so a driver that recovered a *ProcPanic can
// discard the kernel without leaking the goroutines of processes still
// blocked mid-simulation. The kernel must not be stepped again after
// Shutdown.
func (k *Kernel) Shutdown() {
	for _, p := range k.procs {
		if p.done {
			continue // pooled in freeProcs; Release retires it below
		}
		if !p.started {
			// Never dispatched: the goroutine is parked at its loop head,
			// where the exit flag retires it directly.
			p.exit = true
			p.resume <- struct{}{}
			continue
		}
		// Parked mid-run: resume with abort set so block() unwinds the
		// task. The worker loop swallows the abort and pools itself.
		p.abort = true
		p.resume <- struct{}{}
		<-p.parked
		p.abort = false
	}
	k.procPanic = nil
	k.Release()
}
