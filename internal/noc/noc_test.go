package noc

import (
	"testing"
	"testing/quick"

	"tako/internal/energy"
)

func TestDefaultConfig16Tiles(t *testing.T) {
	cfg := DefaultConfig(16)
	if cfg.Width != 4 || cfg.Height != 4 {
		t.Fatalf("16 tiles => %dx%d, want 4x4", cfg.Width, cfg.Height)
	}
	cfg = DefaultConfig(36)
	if cfg.Width != 6 || cfg.Height != 6 {
		t.Fatalf("36 tiles => %dx%d, want 6x6", cfg.Width, cfg.Height)
	}
	cfg = DefaultConfig(8)
	if cfg.Width*cfg.Height < 8 {
		t.Fatalf("8 tiles => %dx%d too small", cfg.Width, cfg.Height)
	}
}

func TestHopsManhattan(t *testing.T) {
	m := NewMesh(DefaultConfig(16), nil)
	// Tile 0 is (0,0); tile 15 is (3,3) in a 4x4 mesh.
	if h := m.Hops(0, 15); h != 6 {
		t.Fatalf("Hops(0,15) = %d, want 6", h)
	}
	if h := m.Hops(5, 5); h != 0 {
		t.Fatalf("Hops(self) = %d, want 0", h)
	}
	if m.Hops(0, 1) != 1 || m.Hops(0, 4) != 1 {
		t.Fatal("adjacent tiles should be 1 hop")
	}
}

func TestQuickHopsSymmetric(t *testing.T) {
	m := NewMesh(DefaultConfig(16), nil)
	f := func(a, b uint8) bool {
		from, to := int(a)%16, int(b)%16
		h := m.Hops(from, to)
		return h == m.Hops(to, from) && h >= 0 && h <= 6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlits(t *testing.T) {
	m := NewMesh(DefaultConfig(16), nil)
	cases := map[int]int{0: 1, 1: 1, 16: 1, 17: 2, 64: 4, 8: 1}
	for bytes, want := range cases {
		if got := m.Flits(bytes); got != want {
			t.Errorf("Flits(%d) = %d, want %d", bytes, got, want)
		}
	}
}

func TestLatency(t *testing.T) {
	m := NewMesh(DefaultConfig(16), nil)
	// 1 hop, 64B = 4 flits: head 3 cycles + 3 serialization = 6.
	if got := m.Latency(0, 1, 64); got != 6 {
		t.Fatalf("Latency(1 hop, 64B) = %d, want 6", got)
	}
	// Control message (8B = 1 flit), 6 hops: 6*3 = 18.
	if got := m.Latency(0, 15, 8); got != 18 {
		t.Fatalf("Latency(6 hops, 8B) = %d, want 18", got)
	}
	if got := m.Latency(7, 7, 64); got != 0 {
		t.Fatalf("same-tile latency = %d, want 0", got)
	}
}

// TestMinCrossTileLatencyIsLowerBound pins the conservative-lookahead
// property the sharded kernel relies on: no message between distinct
// tiles can ever be faster than MinCrossTileLatency, and the bound is
// tight (adjacent tiles, single-flit payload, achieve it exactly).
func TestMinCrossTileLatencyIsLowerBound(t *testing.T) {
	for _, tiles := range []int{4, 16, 36} {
		m := NewMesh(DefaultConfig(tiles), nil)
		min := m.MinCrossTileLatency()
		if min < 1 {
			t.Fatalf("%d tiles: lookahead %d not positive", tiles, min)
		}
		n := m.Tiles()
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				if from == to {
					continue
				}
				for _, bytes := range []int{0, 1, 8, 16, 64, 1024} {
					if lat := m.Latency(from, to, bytes); lat < min {
						t.Fatalf("%d tiles: Latency(%d,%d,%dB) = %d below lookahead %d",
							tiles, from, to, bytes, lat, min)
					}
				}
			}
		}
		// Tight: one hop with a ≤1-flit payload is exactly the bound.
		if lat := m.Latency(0, 1, 8); lat != min {
			t.Fatalf("%d tiles: adjacent single-flit latency %d != lookahead %d", tiles, lat, min)
		}
	}
	// Table 3 mesh: 2-cycle router + 1-cycle link = lookahead 3.
	if min := NewMesh(DefaultConfig(16), nil).MinCrossTileLatency(); min != 3 {
		t.Fatalf("Table 3 lookahead = %d, want 3", min)
	}
	// Degenerate 1×1 mesh still yields a usable positive lookahead.
	if min := NewMesh(Config{Width: 1, Height: 1, FlitBytes: 16, RouterDelay: 2, LinkDelay: 1}, nil).MinCrossTileLatency(); min != 1 {
		t.Fatalf("single-tile lookahead = %d, want 1", min)
	}
}

func TestTransferAccountsEnergy(t *testing.T) {
	meter := energy.NewMeter()
	m := NewMesh(DefaultConfig(16), meter)
	m.Transfer(0, 15, 64) // 6 hops * 4 flits = 24 flit-hops
	if meter.Count(energy.NoCFlitHop) != 24 {
		t.Fatalf("flit-hop energy events = %d, want 24", meter.Count(energy.NoCFlitHop))
	}
	if m.Transfers != 1 || m.FlitHops != 24 {
		t.Fatalf("stats: transfers=%d flithops=%d", m.Transfers, m.FlitHops)
	}
	// Same-tile transfer: no energy.
	m.Transfer(3, 3, 64)
	if meter.Count(energy.NoCFlitHop) != 24 {
		t.Fatal("same-tile transfer charged energy")
	}
}

func TestAverageHopsReasonable(t *testing.T) {
	m := NewMesh(DefaultConfig(16), nil)
	avg := m.AverageHops()
	// 4x4 mesh uniform traffic: average Manhattan distance is 2.5.
	if avg < 2.4 || avg > 2.6 {
		t.Fatalf("average hops = %v, want ~2.5", avg)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := NewMesh(DefaultConfig(16), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range tile")
		}
	}()
	m.Hops(0, 16)
}
