package exp

import (
	"fmt"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig6", "fig7", "table2", "table3", "fig13", "fig14", "fig16",
		"fig17", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
		"fig25", "fig25full", "ffcheck", "sweep-cbbuf", "sweep-rtlb",
		"sharded", "layout",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registered %d experiments (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v", got)
		}
	}
	for _, id := range want {
		e, ok := ByID(id)
		if !ok || e.Run == nil || e.Title == "" || e.Paper == "" {
			t.Fatalf("experiment %q incomplete", id)
		}
	}
}

func TestTablesRender(t *testing.T) {
	for _, id := range []string{"table2", "table3"} {
		e, _ := ByID(id)
		tbl, err := e.Run(true)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows()) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}

func TestTable2MatchesPaperBallpark(t *testing.T) {
	e, _ := ByID("table2")
	tbl, err := e.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	total := rows[len(rows)-1]
	if !strings.Contains(total[2], "%") {
		t.Fatalf("no overhead percentage: %v", total)
	}
	// Paper: 27.1 KB / 512 KB = 5.3%. Accept 4-7%.
	var p float64
	if _, err := fmt.Sscanf(total[2], "%f%%", &p); err != nil {
		t.Fatalf("parse %q: %v", total[2], err)
	}
	if p < 4 || p > 7 {
		t.Fatalf("overhead %.1f%%, want ~5.3%%", p)
	}
}

func TestFig21DriverRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	e, _ := ByID("fig21")
	tbl, err := e.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][1] != "false" || rows[1][1] != "true" {
		t.Fatalf("detection column wrong: %v / %v", rows[0], rows[1])
	}
}
