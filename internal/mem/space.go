package mem

import "fmt"

// Region is a named, contiguous address range. Phantom regions are not
// backed by memory: their contents exist only in caches and are defined
// by Morph callbacks (täkō §4.1). Real regions are backed by a Memory.
type Region struct {
	Name    string
	Base    Addr
	Size    uint64
	Phantom bool
}

// End returns one past the last address of the region.
func (r Region) End() Addr { return r.Base + Addr(r.Size) }

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// Lines returns the number of cache lines the region spans.
func (r Region) Lines() uint64 { return (r.Size + LineSize - 1) / LineSize }

// At returns the address of byte offset off within the region, panicking
// on out-of-range offsets: region overflow is always a workload bug.
func (r Region) At(off uint64) Addr {
	if off >= r.Size {
		panic(fmt.Sprintf("mem: offset %d out of region %q (size %d)", off, r.Name, r.Size))
	}
	return r.Base + Addr(off)
}

// Word returns the address of the i-th 64-bit word of the region.
func (r Region) Word(i uint64) Addr { return r.At(i * 8) }

func (r Region) String() string {
	kind := "real"
	if r.Phantom {
		kind = "phantom"
	}
	return fmt.Sprintf("%s[%s: %v+%d)", r.Name, kind, r.Base, r.Size)
}

// Space hands out non-overlapping regions of the simulated address space.
// Real regions grow upward from lowBase; phantom regions grow downward
// from the top of a dedicated phantom window, mirroring how täkō's OS
// support tracks phantom ranges separately from the page table (§6).
type Space struct {
	nextReal    Addr
	nextPhantom Addr
	regions     []Region
}

const (
	realBase    Addr = 0x0001_0000
	phantomBase Addr = 0x4000_0000_0000 // 64 TB: far from any real data
)

// NewSpace returns an empty address-space allocator.
func NewSpace() *Space {
	return &Space{nextReal: realBase, nextPhantom: phantomBase}
}

func alignUp(a Addr, align Addr) Addr {
	return (a + align - 1) &^ (align - 1)
}

// Alloc reserves a real (memory-backed) region of size bytes, page
// aligned.
func (s *Space) Alloc(name string, size uint64) Region {
	if size == 0 {
		panic("mem: zero-size allocation")
	}
	base := alignUp(s.nextReal, PageSize)
	r := Region{Name: name, Base: base, Size: size}
	s.nextReal = base + Addr(size)
	s.regions = append(s.regions, r)
	return r
}

// AllocPhantom reserves a phantom region of size bytes, page aligned.
// Phantom ranges are requested only by their size (täkō §4.1).
func (s *Space) AllocPhantom(name string, size uint64) Region {
	if size == 0 {
		panic("mem: zero-size phantom allocation")
	}
	base := alignUp(s.nextPhantom, PageSize)
	r := Region{Name: name, Base: base, Size: size, Phantom: true}
	s.nextPhantom = base + Addr(size)
	s.regions = append(s.regions, r)
	return r
}

// Free releases a region. The allocator is a bump allocator, so Free only
// removes bookkeeping; address reuse is not attempted (matching
// unregister's semantics of de-allocating the phantom range without
// recycling it within a run).
func (s *Space) Free(r Region) {
	for i := range s.regions {
		if s.regions[i].Base == r.Base {
			s.regions = append(s.regions[:i], s.regions[i+1:]...)
			return
		}
	}
}

// FindRegion returns the region containing a, if any.
func (s *Space) FindRegion(a Addr) (Region, bool) {
	for _, r := range s.regions {
		if r.Contains(a) {
			return r, true
		}
	}
	return Region{}, false
}

// IsPhantom reports whether a falls in any phantom region.
func (s *Space) IsPhantom(a Addr) bool {
	r, ok := s.FindRegion(a)
	return ok && r.Phantom
}

// Regions returns a snapshot of all live regions.
func (s *Space) Regions() []Region {
	out := make([]Region, len(s.regions))
	copy(out, s.regions)
	return out
}
