// Command takosim runs a single täkō experiment (one of the paper's
// tables or figures) and prints its rows.
//
// Usage:
//
//	takosim -list
//	takosim -exp fig13 [-full] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tako/internal/exp"
	"tako/internal/hier"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		id     = flag.String("exp", "", "experiment id to run (e.g. fig6, table2)")
		full   = flag.Bool("full", false, "run at full (slow) scale instead of quick scale")
		verify = flag.Bool("verify", false, "run with coherence-freshness assertions and the periodic hierarchy-wide invariant checker (slower; panics on the first violation)")
	)
	flag.Parse()

	if *verify {
		hier.SetVerifyDefaults(true, 128)
	}

	if *list || *id == "" {
		fmt.Println("available experiments:")
		for _, e := range exp.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
			fmt.Printf("  %-12s paper: %s\n", "", e.Paper)
		}
		if *id == "" && !*list {
			os.Exit(2)
		}
		return
	}

	e, ok := exp.ByID(*id)
	if !ok {
		fmt.Fprintf(os.Stderr, "takosim: unknown experiment %q (use -list)\n", *id)
		os.Exit(2)
	}
	fmt.Printf("== %s: %s ==\npaper: %s\n\n", e.ID, e.Title, e.Paper)
	start := time.Now()
	tbl, err := e.Run(!*full)
	if err != nil {
		fmt.Fprintf(os.Stderr, "takosim: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(tbl.String())
	fmt.Printf("\n(%s wall clock)\n", time.Since(start).Round(time.Millisecond))
}
