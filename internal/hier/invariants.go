package hier

import (
	"fmt"

	"tako/internal/cache"
	"tako/internal/mem"
)

// CheckInvariants validates the hierarchy-wide correctness invariants
// that must hold between kernel events (functional state changes are
// atomic between sleeps, so every event() site is a consistent cut):
//
//   - per-cache replacement state is sane (no duplicate tags, RRPV in
//     range, line-aligned tags);
//   - every L2/L3 set retains a callback-free victim (trrîp deadlock
//     avoidance, §5.2);
//   - Morph and phantom tag bits refer to a live registration at the
//     matching level;
//   - directory entries are well-formed (owner is a sharer, sharer bits
//     within range);
//   - every directory-tracked line cached in a private domain has its
//     sharer bit set;
//   - dirty copies exist in at most one private domain, and only in the
//     registered owner's;
//   - clean private copies match the home L3 data (freshness), unless
//     the same domain holds the dirty truth.
//
// It is driven automatically every Config.SelfCheckEvery events, by the
// oracle's Observer, and directly by property tests.
func (h *Hierarchy) CheckInvariants() error {
	for _, t := range h.tiles {
		for _, c := range []*cache.Cache{t.l1, t.el1, t.l2, t.l3} {
			if err := c.CheckReplacementState(); err != nil {
				return err
			}
		}
		for _, c := range []*cache.Cache{t.l2, t.l3} {
			if err := c.CheckMorphInvariant(); err != nil {
				return err
			}
		}
		if err := h.checkMorphBits(t); err != nil {
			return err
		}
	}
	// Sharded runs check at epoch barriers (InstallBarrierChecks), where
	// coherence replies can legitimately still be in flight: a downgraded
	// or written-back line's data reaches the home only when the reply
	// message lands, so a clean private copy may briefly be ahead of the
	// home L3. The freshness clause is relaxed there; every structural
	// invariant still holds at every barrier.
	if err := h.checkDirectory(!h.sharded); err != nil {
		return err
	}
	if h.sharded {
		return h.checkOwnedTables()
	}
	return nil
}

// checkOwnedTables validates each tile's local write-permission view
// against the directory on a sharded build: a line a tile believes it
// owns must be registered to that tile at its home bank. (The converse
// is legitimately false in flight: a grant sets the directory owner
// before the response message delivers the owned bit.) The per-channel
// FIFO ordering of grants before revocations makes this direction exact
// at every epoch barrier.
func (h *Hierarchy) checkOwnedTables() error {
	var err error
	for _, t := range h.tiles {
		t.owned.Range(func(key uint64, _ *struct{}) bool {
			la := mem.Addr(key)
			e := h.dirT(la).get(la)
			if e == nil || e.owner != t.id {
				held := ""
				for _, c := range t.privateCaches() {
					if ls := c.Lookup(la); ls != nil {
						held += fmt.Sprintf(" %s(dirty=%v)", c.Config().Name, ls.Dirty)
					}
				}
				if held == "" {
					held = " none"
				}
				err = fmt.Errorf("hier: tile %d owned-table lists %v but %s; private copies:%s",
					t.id, la, h.debugDir(la), held)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// checkMorphBits validates Morph/Phantom tag bits against the registry.
func (h *Hierarchy) checkMorphBits(t *tile) error {
	var err error
	check := func(c *cache.Cache, level Level) {
		c.Walk(func(l *cache.LineState) {
			if err != nil || (!l.Morph && !l.Phantom) {
				return
			}
			if h.registry == nil {
				err = fmt.Errorf("hier: %s line %v has Morph/Phantom bits with no registry",
					c.Config().Name, l.Tag)
				return
			}
			b, ok := h.registry.Binding(t.id, l.Tag)
			if !ok {
				err = fmt.Errorf("hier: %s line %v has Morph/Phantom bits with no live binding",
					c.Config().Name, l.Tag)
				return
			}
			if l.Phantom && !b.Phantom {
				err = fmt.Errorf("hier: %s line %v marked phantom but bound to real region %v",
					c.Config().Name, l.Tag, b.Region)
				return
			}
			// The Morph bit is set only at the registration level.
			if l.Morph && level != LevelNone && b.Level != level {
				err = fmt.Errorf("hier: %s line %v has Morph bit at %v but binding is %v",
					c.Config().Name, l.Tag, level, b.Level)
			}
		})
	}
	// L1s carry only the Phantom bit (level none); the Morph bit lives
	// at the registration level.
	check(t.l1, LevelNone)
	check(t.el1, LevelNone)
	check(t.l2, LevelPrivate)
	check(t.l3, LevelShared)
	return err
}

// checkDirectory validates directory entries against the actual cache
// contents of every private domain. strictFresh additionally requires
// clean private copies to match the home L3 data; barrier-time checks on
// sharded builds drop that clause (see CheckInvariants).
func (h *Hierarchy) checkDirectory(strictFresh bool) error {
	var dirErr error
	h.eachDirEntry(func(la mem.Addr, e *dirEntry) bool {
		if e.sharers>>uint(h.cfg.Tiles) != 0 {
			dirErr = fmt.Errorf("hier: dir %v sharer mask %b has bits beyond %d tiles",
				la, e.sharers, h.cfg.Tiles)
			return false
		}
		if e.owner >= 0 && !e.has(e.owner) {
			dirErr = fmt.Errorf("hier: dir %v owner %d not in sharer mask %b", la, e.owner, e.sharers)
			return false
		}
		home := h.tiles[h.HomeTile(la)]
		ls3 := home.l3.Lookup(la)
		for tid, t := range h.tiles {
			domainDirty := false
			for _, c := range t.privateCaches() {
				if ls := c.Lookup(la); ls != nil && ls.Dirty {
					domainDirty = true
				}
			}
			for _, c := range t.privateCaches() {
				ls := c.Lookup(la)
				if ls == nil {
					continue
				}
				if !e.has(tid) {
					dirErr = fmt.Errorf("hier: tile %d caches dir-tracked line %v (%s) without a sharer bit (%s)",
						tid, la, c.Config().Name, h.debugDir(la))
					return false
				}
				if ls.Dirty && e.owner != tid {
					dirErr = fmt.Errorf("hier: tile %d holds dirty %v in %s but owner is %d\nhistory: %v",
						tid, la, c.Config().Name, e.owner, h.DebugHomeHistory(la))
					return false
				}
				// Freshness: a clean copy in a domain with no dirty
				// truth of its own must match home (debugcheck.go's
				// per-access assertion, applied globally).
				if strictFresh && !domainDirty && ls3 != nil && ls.Data != ls3.Data {
					dirErr = fmt.Errorf("hier: stale copy of %v in tile %d %s: local=%v home=%v\nhistory: %v",
						la, tid, c.Config().Name, ls.Data, ls3.Data, h.DebugHomeHistory(la))
					return false
				}
			}
		}
		return true
	})
	if dirErr != nil {
		return dirErr
	}
	// The inverse direction: every private copy of a coherence-tracked
	// line has a directory entry. Lines bound to a PRIVATE phantom Morph
	// are cache-only and deliberately untracked (§4.3).
	for tid, t := range h.tiles {
		for _, c := range t.privateCaches() {
			var err error
			c.Walk(func(l *cache.LineState) {
				if err != nil {
					return
				}
				if h.registry != nil {
					if b, ok := h.registry.Binding(tid, l.Tag); ok && b.Level == LevelPrivate && b.Phantom {
						return
					}
				}
				e := h.dirT(l.Tag).get(l.Tag)
				if e == nil || !e.has(tid) {
					err = fmt.Errorf("hier: tile %d caches untracked line %v (%s), dir=%s",
						tid, l.Tag, c.Config().Name, h.debugDir(l.Tag))
				}
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// DirSharers returns la's directory sharer mask and owner (-1 when
// unowned or untracked); exposed for verification harnesses.
func (h *Hierarchy) DirSharers(la mem.Addr) (sharers uint64, owner int) {
	e := h.dirT(la).get(la)
	if e == nil {
		return 0, -1
	}
	return e.sharers, e.owner
}
