package morphs

import (
	"fmt"

	"tako/internal/core"
	"tako/internal/cpu"
	"tako/internal/engine"
	"tako/internal/mem"
	"tako/internal/sched"
	"tako/internal/sim"
	"tako/internal/system"
)

// NVMVariant selects an implementation of the direct-access NVM
// transaction study (§8.3, Figs 19-20): append-only transactions on a
// filesystem-style log in persistent memory with battery-backed caches
// (Intel eADR-style: data is durable once written back to NVM).
type NVMVariant string

// NVM variants (Fig 19's lines).
const (
	NVMBaseline NVMVariant = "baseline" // redo journaling: journal + commit + apply
	NVMTako     NVMVariant = "tako"     // phantom staging: journal only if evicted pre-commit
	NVMIdeal    NVMVariant = "ideal"    // täkō with the idealized engine
)

// AllNVMVariants lists Fig 19's lines in order.
var AllNVMVariants = []NVMVariant{NVMBaseline, NVMTako, NVMIdeal}

// NVMParams sizes the study (§8.3: transaction sizes 1 KB – 128 KB; the
// L2 is 128 KB, so the largest transactions no longer fit and täkō falls
// back to journaling).
type NVMParams struct {
	TxnBytes     int
	Transactions int
	Tiles        int
	Seed         int64
	Engine       engine.Config
}

// DefaultNVMParams returns the study configuration for one transaction
// size.
func DefaultNVMParams(txnBytes int) NVMParams {
	return NVMParams{
		TxnBytes:     txnBytes,
		Transactions: 24,
		Tiles:        16,
		Seed:         3,
		Engine:       engine.DefaultConfig(),
	}
}

var nvmDebug = false

// TxnSizes are the paper's swept transaction sizes (Fig 19).
var TxnSizes = []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 128 << 10}

// nvmView is the per-engine state of the transaction Morph.
type nvmView struct {
	committed      bool
	dataBase       mem.Addr
	phantomBase    mem.Addr
	journalCur     uint64
	evictedPre     uint64 // lines journaled before commit (current txn)
	journaledTotal uint64 // cumulative journaled lines
	applied        uint64 // lines written directly to NVM data
}

// RunNVM executes one variant: `Transactions` append-only transactions
// of TxnBytes each, verifying that the NVM data region ends up with the
// expected contents and that every committed byte was persisted. Runs
// are memoized under the run cache when enabled (SetRunCache).
func RunNVM(v NVMVariant, prm NVMParams) (Result, error) {
	return cachedRun("nvm", string(v), prm, func() (Result, error) {
		return runNVM(v, prm)
	})
}

func runNVM(v NVMVariant, prm NVMParams) (Result, error) {
	cfg := system.Default(prm.Tiles)
	cfg.Engine = prm.Engine
	if v == NVMBaseline {
		cfg.NoTako = true
	}
	if v == NVMIdeal {
		cfg.Engine = engine.IdealConfig()
	}
	s := system.New(cfg)

	words := prm.TxnBytes / 8
	totalWords := words * prm.Transactions
	lines := (words + mem.WordsPerLine - 1) / mem.WordsPerLine
	data := s.Alloc("nvm.data", uint64(totalWords)*8)
	// Journal: per-record tag words followed by line-aligned payload
	// slots (reused across transactions for täkō; linear for baseline).
	journal := s.Alloc("nvm.journal", uint64(totalWords)*8+uint64(lines)*8+8192)
	tagBase := journal.Base
	lineBase := (journal.Base + mem.Addr(lines*8) + 63) &^ 63
	s.H.MarkNVM(data)
	s.H.MarkNVM(journal)

	// Expected contents: word i of txn t = payload(t, i).
	payload := func(t, i int) uint64 { return uint64(t)<<32 | uint64(i) | 1<<63 }

	var runErr error
	var view *nvmView

	switch v {
	case NVMBaseline:
		// Redo journaling: write every word to the journal, persist a
		// commit record, then apply every word to the data region —
		// twice the writes plus journaling instructions (§8.3).
		s.Go(0, "nvm-journal", func(p *sim.Proc, c *cpu.Core) {
			jcur := uint64(0)
			for t := 0; t < prm.Transactions; t++ {
				base := t * words
				// Journal phase: copy every word into the redo log
				// with per-word bookkeeping (address tag/checksum)
				// and a record header per line.
				for i := 0; i < words; i++ {
					if i%mem.WordsPerLine == 0 {
						c.Compute(p, 4)
					}
					c.Compute(p, 1)
					c.Store(p, journal.Word(jcur), payload(t, i))
					jcur++
				}
				// Commit record must be durable before applying.
				c.Store(p, journal.Word(jcur), uint64(t)|1<<62)
				jcur++
				c.Compute(p, 2)
				p.Sleep(30) // persist fence
				// Apply phase: write the data in place.
				for i := 0; i < words; i++ {
					c.Store(p, data.Word(uint64(base+i)), payload(t, i))
				}
			}
		})

	case NVMTako, NVMIdeal:
		spec := core.MorphSpec{
			Name: "nvm-txn",
			// onMiss: initialize the staging line (INVALID marker).
			OnMiss: &core.Callback{Instrs: 2, CritPath: 1, Fn: func(ctx *engine.Ctx) {}},
			// onWriteback: if the transaction committed, write the
			// line directly to NVM data; otherwise journal it
			// (Table 6).
			OnWriteback: &core.Callback{
				Instrs: 12, CritPath: 5,
				Fn: func(ctx *engine.Ctx) {
					vw := ctx.View().(*nvmView)
					off := uint64(ctx.Addr - vw.phantomBase)
					if vw.committed {
						line := *ctx.Line
						ctx.StoreLine(vw.dataBase+mem.Addr(off), &line)
						vw.applied++
						return
					}
					// Evicted before commit: journal the line (tag +
					// payload), persisting the payload.
					rec := vw.journalCur
					vw.journalCur = rec + 1
					line := *ctx.Line
					if nvmDebug {
						fmt.Printf("journal rec=%d off=%d w0=%x committed=%v\n", rec, off, line.Word(0), vw.committed)
					}
					ctx.StoreWord(tagBase+mem.Addr(rec*8), off)
					ctx.StoreLine(lineBase+mem.Addr(rec*64), &line)
					vw.evictedPre++
					vw.journaledTotal++
				},
			},
			NewView: func(tile int) interface{} { return &nvmView{} },
		}
		s.Go(0, "nvm-tako", func(p *sim.Proc, c *cpu.Core) {
			// One Morph instance per in-flight transaction; we reuse
			// a single instance serially (§8.3 allows many).
			m, err := s.Tako.RegisterPhantom(p, spec, core.Private, uint64(words)*8, 0)
			if err != nil {
				runErr = err
				return
			}
			view = m.View(0).(*nvmView)
			view.phantomBase = m.Region.Base
			for t := 0; t < prm.Transactions; t++ {
				view.dataBase = data.Word(uint64(t * words))
				view.committed = false
				// Write the transaction into the phantom staging
				// range (cache-resident; no journaling).
				for i := 0; i < words; i++ {
					c.Store(p, m.Region.Word(uint64(i)), payload(t, i))
				}
				// Commit: flush the phantom data; onWriteback pushes
				// it straight to NVM (the cache was the journal).
				view.committed = true
				c.Compute(p, 2)
				s.Tako.FlushData(p, m)
				// If lines were evicted pre-commit, their journaled
				// copies must be applied (§8.3's fallback).
				if view.evictedPre > 0 {
					for rec := uint64(0); rec < view.journalCur; rec++ {
						off := c.Load(p, tagBase+mem.Addr(rec*8))
						ln := c.LoadLine(p, lineBase+mem.Addr(rec*64))
						if nvmDebug {
							fmt.Printf("replay rec=%d off=%d w0=%x\n", rec, off, ln.Word(0))
						}
						c.Compute(p, 2)
						c.StoreLine(p, view.dataBase+mem.Addr(off), &ln)
					}
					view.journalCur = 0
					view.evictedPre = 0
				}
			}
			s.Tako.Unregister(p, m)
		})

	default:
		return Result{}, fmt.Errorf("unknown NVM variant %q", v)
	}

	cycles := s.Run()
	if runErr != nil {
		return Result{}, runErr
	}
	// Verify: every committed word has its payload in the data region.
	for t := 0; t < prm.Transactions; t++ {
		for i := 0; i < words; i += 97 {
			a := data.Word(uint64(t*words + i))
			if got := s.H.DebugReadWord(a); got != payload(t, i) {
				return Result{}, fmt.Errorf("%s txn %d word %d = %x, want %x",
					v, t, i, got, payload(t, i))
			}
		}
	}
	r := collect(s, "nvm", string(v), cycles)
	r.Extra["txn_bytes"] = float64(prm.TxnBytes)
	r.Extra["bytes_written"] = float64(prm.TxnBytes * prm.Transactions)
	r.Extra["instr_per_8B_core"] = float64(r.CoreInstrs) / float64(totalWords)
	r.Extra["instr_per_8B_total"] = float64(r.CoreInstrs+r.EngineInstrs) / float64(totalWords)
	if view != nil {
		r.Extra["journaled_lines"] = float64(view.journaledTotal)
	}
	return r, nil
}

// RunNVMCrash is failure injection for the täkō transaction Morph: it
// runs the täkō variant and "crashes" the machine at the given cycle
// (stopping the simulation), then checks the durability invariant of
// §8.3 with eADR semantics (caches are in the persistence domain):
// every transaction whose commit flush completed before the crash must
// be fully present in the persistence domain. It returns how many
// transactions had committed.
func RunNVMCrash(prm NVMParams, crashAt sim.Cycle) (committed int, err error) {
	cfg := system.Default(prm.Tiles)
	cfg.Engine = prm.Engine
	s := system.New(cfg)

	words := prm.TxnBytes / 8
	totalWords := words * prm.Transactions
	lines := (words + mem.WordsPerLine - 1) / mem.WordsPerLine
	data := s.Alloc("nvm.data", uint64(totalWords)*8)
	journal := s.Alloc("nvm.journal", uint64(totalWords)*8+uint64(lines)*8+8192)
	tagBase := journal.Base
	lineBase := (journal.Base + mem.Addr(lines*8) + 63) &^ 63
	s.H.MarkNVM(data)
	s.H.MarkNVM(journal)
	payload := func(t, i int) uint64 { return uint64(t)<<32 | uint64(i) | 1<<63 }

	committedCount := 0
	spec := core.MorphSpec{
		Name:   "nvm-txn-crash",
		OnMiss: &core.Callback{Instrs: 2, CritPath: 1, Fn: func(ctx *engine.Ctx) {}},
		OnWriteback: &core.Callback{
			Instrs: 12, CritPath: 5,
			Fn: func(ctx *engine.Ctx) {
				vw := ctx.View().(*nvmView)
				off := uint64(ctx.Addr - vw.phantomBase)
				line := *ctx.Line
				if vw.committed {
					ctx.PersistLine(vw.dataBase+mem.Addr(off), &line)
					return
				}
				rec := vw.journalCur
				vw.journalCur = rec + 1
				ctx.StoreWord(tagBase+mem.Addr(rec*8), off)
				ctx.PersistLine(lineBase+mem.Addr(rec*64), &line)
				vw.evictedPre++
			},
		},
		NewView: func(tile int) interface{} { return &nvmView{} },
	}
	s.Go(0, "nvm-crash", func(p *sim.Proc, c *cpu.Core) {
		m, rerr := s.Tako.RegisterPhantom(p, spec, core.Private, uint64(words)*8, 0)
		if rerr != nil {
			panic(rerr)
		}
		view := m.View(0).(*nvmView)
		view.phantomBase = m.Region.Base
		for t := 0; t < prm.Transactions; t++ {
			view.dataBase = data.Word(uint64(t * words))
			view.committed = false
			for i := 0; i < words; i++ {
				c.Store(p, m.Region.Word(uint64(i)), payload(t, i))
			}
			view.committed = true
			s.Tako.FlushData(p, m)
			if view.evictedPre > 0 {
				for rec := uint64(0); rec < view.journalCur; rec++ {
					off := c.Load(p, tagBase+mem.Addr(rec*8))
					ln := c.LoadLine(p, lineBase+mem.Addr(rec*64))
					c.StoreLine(p, view.dataBase+mem.Addr(off), &ln)
				}
				view.journalCur = 0
				view.evictedPre = 0
			}
			committedCount = t + 1 // commit point: flush (+replay) done
		}
	})

	// Crash: stop the machine at crashAt.
	s.RunUntil(crashAt)

	// Recovery check (eADR: caches are durable, so DebugReadWord sees
	// the persistence domain): committed transactions must be intact.
	for t := 0; t < committedCount; t++ {
		for i := 0; i < words; i += 61 {
			a := data.Word(uint64(t*words + i))
			if got := s.H.DebugReadWord(a); got != payload(t, i) {
				return committedCount, fmt.Errorf(
					"crash@%d: committed txn %d word %d = %x, want %x (atomicity violated)",
					crashAt, t, i, got, payload(t, i))
			}
		}
	}
	return committedCount, nil
}

// RunNVMSweep runs all variants across TxnSizes (Fig 19 + Fig 20). All
// (size, variant) points are independent simulations, so the whole
// sweep fans across the scheduler's workers; results assemble — and run
// records submit — in size-major, variant-minor order, matching the
// sequential sweep.
func RunNVMSweep(sizes []int, tiles int) (map[NVMVariant][]Result, error) {
	type point struct {
		size int
		v    NVMVariant
	}
	var points []point
	for _, size := range sizes {
		for _, v := range AllNVMVariants {
			points = append(points, point{size, v})
		}
	}
	results, err := sched.MapResults(len(points), func(i int) (Result, error) {
		prm := DefaultNVMParams(points[i].size)
		prm.Tiles = tiles
		return RunNVM(points[i].v, prm)
	})
	if err != nil {
		return nil, err
	}
	submitResults(results...)
	out := map[NVMVariant][]Result{}
	for i, pt := range points {
		out[pt.v] = append(out[pt.v], results[i])
	}
	return out, nil
}
