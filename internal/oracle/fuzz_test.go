package oracle

import (
	"testing"
)

// FuzzTrace decodes arbitrary bytes into an operation trace (6 bytes
// per op, round-robin across 2 tiles) and runs it through the full
// hierarchy with the oracle attached. Any interleaving the fuzzer finds
// must still satisfy the reference model and every invariant.
func FuzzTrace(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 2})  // load then store, same line
	f.Add([]byte{1, 4, 3, 0, 2, 9, 0, 4, 3, 0, 2, 9})  // phantom store/load
	f.Add([]byte{8, 0, 1, 0, 0, 5, 10, 0, 0, 0, 0, 0}) // remote add + drain
	f.Add([]byte{11, 4, 0, 0, 0, 0, 0, 4, 0, 0, 0, 0}) // flush phantom, reload
	f.Add([]byte{3, 5, 2, 0, 0, 7, 5, 5, 2, 0, 1, 7})  // private phantom line ops
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) == 0 {
			t.Skip()
		}
		if len(script) > 1200 { // ≤200 ops bounds simulated time
			script = script[:1200]
		}
		cfg := TraceConfig{Tiles: 2, CacheScale: 32, CheckEvery: 64, Script: script}
		res, err := RunTrace(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Oracle.Err(); err != nil {
			t.Fatal(err)
		}
	})
}
