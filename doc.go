// Package tako is a Go reproduction of "täkō: A Polymorphic Cache
// Hierarchy for General-Purpose Optimization of Data Movement"
// (Schwedock, Yoovidhya, Seibert, Beckmann — ISCA 2022).
//
// The repository contains an execution-driven simulator of a tiled
// multicore with täkō's cache-triggered software callbacks and
// near-cache dataflow engines, the paper's five case studies with their
// software baselines, and a harness that regenerates every table and
// figure of the evaluation. See README.md for a tour, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for paper-vs-measured results.
package tako
