package hier

import (
	"fmt"
	"math/rand"
	"testing"

	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/noc"
	"tako/internal/sim"
)

// newShardedH builds a sharded hierarchy on its own engine, one shard
// per tile, with the engine lookahead set to the mesh's minimum
// cross-tile latency (the widest legal epoch).
func newShardedH(cfg Config) (*sim.Sharded, *Hierarchy) {
	cfg.FreshChecks = false
	m := noc.NewMesh(cfg.NoC, nil)
	eng := sim.NewSharded(cfg.Tiles, m.MinCrossTileLatency())
	h := NewSharded(eng, cfg, energy.NewMeter(), nil, nil)
	return eng, h
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// TestShardedLookaheadIsLowerBound is the lookahead soundness property:
// for randomized NoC configurations (router/link delays, flit widths,
// grid shapes), every cross-tile message of any size costs at least
// Mesh.MinCrossTileLatency — the epoch width the sharded engine runs
// with — and configurations where no positive lower bound exists are
// rejected at construction rather than silently under-synchronized.
func TestShardedLookaheadIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 200; it++ {
		tiles := []int{2, 4, 6, 9, 16}[rng.Intn(5)]
		nc := noc.DefaultConfig(tiles)
		nc.RouterDelay = sim.Cycle(rng.Intn(5))
		nc.LinkDelay = sim.Cycle(rng.Intn(5))
		nc.FlitBytes = []int{8, 16, 32}[rng.Intn(3)]
		m := noc.NewMesh(nc, nil)
		min := m.MinCrossTileLatency()

		if nc.RouterDelay+nc.LinkDelay == 0 {
			// A zero-cost hop means a 1-flit message arrives in 0 cycles:
			// no positive lookahead is a lower bound, and the sharded
			// build must refuse the configuration.
			cfg := ScaledConfig(tiles, 64)
			cfg.NoC = nc
			cfg.FreshChecks = false
			mustPanic(t, "NewSharded with zero cross-tile latency", func() {
				NewSharded(sim.NewSharded(tiles, 1), cfg, energy.NewMeter(), nil, nil)
			})
			continue
		}
		if min < 1 {
			t.Fatalf("config %+v: MinCrossTileLatency = %d < 1 with nonzero hop cost", nc, min)
		}
		for from := 0; from < tiles; from++ {
			for to := 0; to < tiles; to++ {
				if from == to {
					continue
				}
				for _, bytes := range []int{1, 8, 64, 256} {
					if lat := m.Latency(from, to, bytes); lat < min {
						t.Fatalf("config %+v: Latency(%d,%d,%dB) = %d < lookahead %d",
							nc, from, to, bytes, lat, min)
					}
				}
			}
		}
	}
}

// TestShardedLookaheadPanics pins the two guard rails around the epoch
// width: an engine whose lookahead exceeds the mesh's minimum cross-tile
// latency is rejected by NewSharded (its messages would have to violate
// the lookahead), and the engine itself panics on any cross-shard send
// below its lookahead.
func TestShardedLookaheadPanics(t *testing.T) {
	cfg := ScaledConfig(4, 64)
	cfg.FreshChecks = false
	m := noc.NewMesh(cfg.NoC, nil)
	min := m.MinCrossTileLatency()

	mustPanic(t, "NewSharded with lookahead > min cross-tile latency", func() {
		NewSharded(sim.NewSharded(4, min+1), cfg, energy.NewMeter(), nil, nil)
	})

	eng := sim.NewSharded(2, 3)
	mustPanic(t, "cross-shard send below the engine lookahead", func() {
		eng.Shard(0).Send(1, 2, func() {})
	})
}

// TestShardedLookaheadRandomNoCEndToEnd drives the full message protocol
// on randomized legal NoC configurations: whatever the router/link
// delays, the per-channel ordering layer must keep every cross-tile
// message at or above the engine lookahead (the engine panics if not)
// and the workload must still commit the right values.
func TestShardedLookaheadRandomNoCEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for it := 0; it < 8; it++ {
		cfg := ScaledConfig(4, 64)
		cfg.NoC.RouterDelay = sim.Cycle(1 + rng.Intn(4))
		cfg.NoC.LinkDelay = sim.Cycle(rng.Intn(4))
		eng, h := newShardedH(cfg)
		for i := 0; i < 4; i++ {
			i := i
			eng.Shard(i).K.Go("w", func(p *sim.Proc) {
				base := mem.Addr(0x40000 + i*0x8000)
				for j := 0; j < 32; j++ {
					h.Store(p, i, base+mem.Addr(j*64), uint64(i*100+j))
				}
				// Cross-tile reads of the neighbor's stripe: downgrades
				// and fetches at whatever latency this config produces.
				nb := mem.Addr(0x40000 + ((i + 1) % 4 * 0x8000))
				for j := 0; j < 32; j++ {
					if v := h.Load(p, i, nb+mem.Addr(j*64)); v != uint64(((i+1)%4)*100+j) {
						t.Errorf("iter %d tile %d: neighbor word %d = %d", it, i, j, v)
					}
				}
			})
		}
		eng.Run(2)
		if blocked := eng.Blocked(); len(blocked) > 0 {
			t.Fatalf("iter %d deadlocked: %v", it, blocked)
		}
		h.FinishStats()
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}
		eng.Release()
	}
}

// TestShardedAttributionConservation is the attribution conservation
// invariant under sharded execution: per transaction kind, the summed
// per-state dwell cycles equal the summed transaction totals (the
// histograms are commutative atomics, so this holds at any worker
// count), and for a pure demand-load workload the access-kind total
// equals the summed load latency exactly.
func TestShardedAttributionConservation(t *testing.T) {
	const tiles = 4
	cfg := DefaultConfig(tiles)
	cfg.FreshChecks = false
	cfg.Attribution = true
	eng, h := newShardedH(cfg)

	// Irregular line offsets: no two consecutive misses share a stride,
	// so the L2 prefetcher never gains confidence and every kindAccess
	// transaction is a demand load (a prefetch access would add dwell
	// the load-latency histogram can't see).
	offs := []int{0, 3, 1, 7, 2, 11, 5, 13}
	for i := 0; i < tiles; i++ {
		for j, o := range offs {
			h.DRAM.Store().WriteU64(mem.Addr(0x100000*(i+1)+o*64), uint64(100*i+j))
		}
	}
	for i := 0; i < tiles; i++ {
		i := i
		eng.Shard(i).K.Go("core", func(p *sim.Proc) {
			for j, o := range offs {
				// Own stripe, then the neighbor's (cross-tile fetches).
				if v := h.Load(p, i, mem.Addr(0x100000*(i+1)+o*64)); v != uint64(100*i+j) {
					t.Errorf("tile %d own word %d = %d", i, j, v)
				}
				nb := (i + 1) % tiles
				if v := h.Load(p, i, mem.Addr(0x100000*(nb+1)+o*64)); v != uint64(100*nb+j) {
					t.Errorf("tile %d neighbor word %d = %d", i, j, v)
				}
			}
		})
	}
	eng.Run(2)
	if blocked := eng.Blocked(); len(blocked) > 0 {
		t.Fatalf("deadlocked: %v", blocked)
	}
	h.FinishStats()
	eng.Release()

	for kind := 0; kind < nTxnKinds; kind++ {
		dwell := sumDwell(h, txnKind(kind))
		total := h.attr.total[kind].Sum()
		if dwell != total {
			t.Errorf("kind %v: Σ state dwell = %v, Σ total = %v", txnKind(kind), dwell, total)
		}
	}
	if h.attr.total[kindAccess].Count() == 0 || h.attr.total[kindHomeFetch].Count() == 0 {
		t.Fatal("workload should exercise access and home-fetch kinds")
	}
	if at, ll := h.attr.total[kindAccess].Sum(), h.hot.loadLat.Sum(); at != ll {
		t.Errorf("Σ access total = %v, Σ load latency = %v", at, ll)
	}
	if want := float64(h.hot.loadLat.Sum()); h.LoadLat.Sum != want {
		t.Errorf("merged LoadLat sum = %v, load.latency histogram = %v", h.LoadLat.Sum, want)
	}
}

// TestShardedSlowestKCapture pins the sharded slow-access capture: each
// tile offers its demand accesses into its own top-K ring, and
// SlowestAccesses merges the rings into one global top K — slowest
// first, byte-identical at any worker count.
func TestShardedSlowestKCapture(t *testing.T) {
	run := func(workers int) []SlowAccess {
		const tiles = 4
		cfg := DefaultConfig(tiles)
		cfg.FreshChecks = false
		cfg.Attribution = true
		cfg.SlowestK = 6
		eng, h := newShardedH(cfg)
		for i := 0; i < tiles; i++ {
			i := i
			eng.Shard(i).K.Go("core", func(p *sim.Proc) {
				for j := 0; j < 8; j++ {
					// Own stripe then the neighbor's: a mix of local and
					// cross-tile miss latencies to rank.
					h.Load(p, i, mem.Addr(0x100000*(i+1)+j*64))
					h.Load(p, i, mem.Addr(0x100000*((i+1)%tiles+1)+j*64))
				}
			})
		}
		eng.Run(workers)
		if blocked := eng.Blocked(); len(blocked) > 0 {
			t.Fatalf("workers=%d deadlocked: %v", workers, blocked)
		}
		h.FinishStats()
		eng.Release()
		return h.SlowestAccesses()
	}
	got := run(1)
	if len(got) != 6 {
		t.Fatalf("captured %d slow accesses, want 6", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Latency > got[i-1].Latency {
			t.Fatalf("entry %d (%d cyc) slower than entry %d (%d cyc): not sorted slowest-first",
				i, got[i].Latency, i-1, got[i-1].Latency)
		}
	}
	for _, workers := range []int{2, 4} {
		other := run(workers)
		if len(other) != len(got) {
			t.Fatalf("workers=%d captured %d entries, workers=1 captured %d", workers, len(other), len(got))
		}
		for i := range got {
			if fmt.Sprintf("%+v", got[i]) != fmt.Sprintf("%+v", other[i]) {
				t.Fatalf("workers=%d entry %d = %+v, workers=1 entry = %+v", workers, i, other[i], got[i])
			}
		}
	}
}
