package hier

import (
	"testing"

	"tako/internal/energy"
	"tako/internal/mem"
	"tako/internal/sim"
)

// TestSharedFlushRecallsDirtyDataFromOwnerTile: a SHARED-level flush
// issued by one tile must recall dirty data held in another tile's
// private domain (back-invalidation through the directory) before the
// line reaches memory.
func TestSharedFlushRecallsDirtyDataFromOwnerTile(t *testing.T) {
	k, h := newH(4)
	region := mem.Region{Name: "r", Base: 0x7000, Size: 4 * mem.LineSize}
	k.Go("seq", func(p *sim.Proc) {
		// Tile 1 dirties every line; the newest data lives in its L1.
		for i := 0; i < 4; i++ {
			h.Store(p, 1, region.Base+mem.Addr(i*mem.LineSize), uint64(100+i))
		}
		// Tile 0 — not the owner — flushes at the shared level.
		h.FlushRegion(p, 0, region, LevelShared)
	})
	k.Run()
	for i := 0; i < 4; i++ {
		a := region.Base + mem.Addr(i*mem.LineSize)
		if got := h.DRAM.Store().ReadU64(a); got != uint64(100+i) {
			t.Fatalf("DRAM[%v] = %d, want %d (dirty data lost in flush)", a, got, 100+i)
		}
	}
	// The owner's private copies were back-invalidated, not orphaned.
	owner := h.tiles[1]
	for i := 0; i < 4; i++ {
		a := region.Base + mem.Addr(i*mem.LineSize)
		if owner.l1.Lookup(a) != nil || owner.l2.Lookup(a) != nil {
			t.Fatalf("tile 1 still caches %v after shared flush", a)
		}
	}
	if h.Metrics.Get("l3.backinval") == 0 {
		t.Fatal("flush of remotely-owned dirty lines recorded no back-invalidations")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedFlushPhantomLines: flushing a phantom range at the shared
// level runs onWriteback (with the final data) for dirty lines and
// onEviction for clean ones, at the home tile, discarding the lines so
// the next access re-materializes through onMiss (§4.3, §4.4).
func TestSharedFlushPhantomLines(t *testing.T) {
	region := mem.Region{Name: "ph", Base: 0x4000_0000_0000, Size: 64 * 1024, Phantom: true}
	reg := &fakeRegistry{bindings: []Binding{phantomBinding(region, LevelShared)}}
	k, h, r := newMorphH(4, reg)
	r.fill = func(kind CallbackKind, a mem.Addr, line *mem.Line) {
		if kind == CbMiss {
			line.SetWord(0, 42)
		}
	}
	dirty := region.Base                // written via remote add
	clean := region.Base + mem.LineSize // only loaded
	k.Go("core", func(p *sim.Proc) {
		h.AtomicAdd(p, 2, dirty, 8)
		h.DrainRMOs(p, 2)
		if v := h.Load(p, 2, clean); v != 42 {
			t.Errorf("phantom load = %d, want onMiss fill 42", v)
		}
		h.FlushRegion(p, 2, region, LevelShared)
	})
	k.Run()
	if got := r.count(CbWriteback); got != 1 {
		t.Fatalf("flush ran %d onWriteback, want 1 (the dirty line)", got)
	}
	if got := r.count(CbEviction); got != 1 {
		t.Fatalf("flush ran %d onEviction, want 1 (the clean line)", got)
	}
	home := h.HomeTile(dirty)
	for _, call := range r.calls {
		switch call.kind {
		case CbWriteback:
			if call.data.Word(0) != 50 {
				t.Fatalf("onWriteback saw word0 = %d, want 42+8 = 50", call.data.Word(0))
			}
			if call.tile != home {
				t.Fatalf("onWriteback ran on tile %d, want home %d", call.tile, home)
			}
		case CbEviction:
			if call.tile != h.HomeTile(clean) {
				t.Fatalf("onEviction ran on tile %d, want home %d", call.tile, h.HomeTile(clean))
			}
		}
	}
	// The reader's private copy of the clean line is gone too.
	reader := h.tiles[2]
	if reader.l1.Lookup(clean) != nil || reader.l2.Lookup(clean) != nil {
		t.Fatal("tile 2 still caches the phantom line after shared flush")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Phantom data is discarded on flush: re-access starts over via onMiss.
	missesBefore := r.count(CbMiss)
	k.Go("again", func(p *sim.Proc) {
		h.AtomicAdd(p, 0, dirty, 8)
		h.DrainRMOs(p, 0)
	})
	k.Run()
	if r.count(CbMiss) != missesBefore+1 {
		t.Fatalf("onMiss calls = %d, want %d (line must be gone after flush)",
			r.count(CbMiss), missesBefore+1)
	}
}

// TestFlushRacesInFlightFill: a flush that walks the tags while an
// onMiss fill for the region is still in flight must neither deadlock
// nor corrupt state. The in-flight line is not yet visible to the tag
// walk, so it lands after the flush; a subsequent flush evicts it
// normally.
func TestFlushRacesInFlightFill(t *testing.T) {
	region := mem.Region{Name: "ph", Base: 0x4000_0000_0000, Size: 4096, Phantom: true}
	reg := &fakeRegistry{bindings: []Binding{phantomBinding(region, LevelPrivate)}}
	k := sim.NewKernel()
	r := &fakeRunner{k: k, delay: 400} // slow onMiss: the fill stays in flight
	r.fill = func(kind CallbackKind, a mem.Addr, line *mem.Line) {
		if kind == CbMiss {
			line.SetWord(0, 42)
		}
	}
	h := New(k, DefaultConfig(2), energy.NewMeter(), reg, r)
	var v uint64
	var loadDone, flushDone sim.Cycle
	k.Go("loader", func(p *sim.Proc) {
		v = h.Load(p, 0, region.Base)
		loadDone = p.Now()
	})
	k.Go("flusher", func(p *sim.Proc) {
		p.Sleep(10) // arrive while the 400-cycle onMiss is running
		h.FlushRegion(p, 0, region, LevelPrivate)
		flushDone = p.Now()
	})
	k.Run()
	if blocked := k.Blocked(); len(blocked) != 0 {
		t.Fatalf("flush racing an in-flight fill deadlocked: %v", blocked)
	}
	if flushDone >= loadDone {
		t.Fatalf("race not exercised: flush finished at %d, after the fill at %d", flushDone, loadDone)
	}
	if v != 42 {
		t.Fatalf("racing load = %d, want the onMiss fill 42", v)
	}
	// The fill was invisible to the flush's tag walk, so no eviction
	// callback ran and the line is resident now.
	if n := r.count(CbEviction) + r.count(CbWriteback); n != 0 {
		t.Fatalf("flush ran %d eviction callbacks for a line not yet filled", n)
	}
	if h.tiles[0].l2.Lookup(region.Base) == nil {
		t.Fatal("in-flight fill lost: line absent after load completed")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A second flush sees the landed (clean) line and evicts it via
	// onEviction.
	k.Go("reflush", func(p *sim.Proc) {
		h.FlushRegion(p, 0, region, LevelPrivate)
	})
	k.Run()
	if got := r.count(CbEviction); got != 1 {
		t.Fatalf("re-flush ran %d onEviction, want 1", got)
	}
	if h.tiles[0].l2.Lookup(region.Base) != nil {
		t.Fatal("line survived the second flush")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
