package cache

// Policy is a cache replacement policy over one set. Victim is called
// with a filter of allowed ways (never all-false) and must return one of
// the allowed ways.
type Policy interface {
	Name() string
	// OnInsert updates replacement state for a newly filled way.
	// engineFill marks fills issued by a täkō engine rather than a
	// core (trrîp demotes those).
	OnInsert(set []LineState, way int, engineFill bool)
	// OnHit updates replacement state for a demand hit.
	OnHit(set []LineState, way int)
	// Victim selects an allowed way to evict.
	Victim(set []LineState, allowed func(way int) bool) int
}

// LRU is least-recently-used replacement using global timestamps.
type LRU struct{}

// NewLRU returns an LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements Policy.
func (*LRU) Name() string { return "lru" }

// OnInsert implements Policy (timestamps are set by the Cache).
func (*LRU) OnInsert(set []LineState, way int, engineFill bool) {}

// OnHit implements Policy.
func (*LRU) OnHit(set []LineState, way int) {}

// Victim implements Policy: the allowed way with the oldest timestamp.
func (*LRU) Victim(set []LineState, allowed func(int) bool) int {
	best := -1
	for i := range set {
		if !allowed(i) {
			continue
		}
		if best == -1 || set[i].LRU < set[best].LRU {
			best = i
		}
	}
	if best == -1 {
		panic("cache: Victim called with no allowed ways")
	}
	return best
}

// RRIP re-reference interval prediction constants (2-bit SRRIP, [62]).
const (
	rrpvMax      = 3 // distant re-reference
	rrpvLong     = 2 // long re-reference (insertion)
	rrpvNear     = 0 // near re-reference (promotion on hit)
	rrpvHitPromo = rrpvNear
)

// RRIP is 2-bit static RRIP: insert at long (2), promote to near (0) on
// hit, evict distant (3), aging when no distant line exists.
type RRIP struct {
	// InsertEngineDistant enables trrîp's pollution avoidance: fills
	// issued by engines insert at distant (3) so data touched only by
	// callbacks is evicted first (§5.2).
	InsertEngineDistant bool
	name                string
}

// NewRRIP returns plain SRRIP (engine fills treated like core fills).
func NewRRIP() *RRIP { return &RRIP{name: "rrip"} }

// NewTRRIP returns trrîp: RRIP with engine fills inserted at distant
// priority. The per-set callback-free-victim invariant, trrîp's other
// half, is enforced by the Cache insert path for any policy.
func NewTRRIP() *RRIP { return &RRIP{InsertEngineDistant: true, name: "trrip"} }

// Name implements Policy.
func (r *RRIP) Name() string { return r.name }

// OnInsert implements Policy.
func (r *RRIP) OnInsert(set []LineState, way int, engineFill bool) {
	if engineFill && r.InsertEngineDistant {
		set[way].RRPV = rrpvMax
	} else {
		set[way].RRPV = rrpvLong
	}
}

// OnHit implements Policy.
func (r *RRIP) OnHit(set []LineState, way int) {
	set[way].RRPV = rrpvHitPromo
	// A demand hit by a core rescues an engine-filled line from the
	// pollution fast path.
	set[way].EngineFill = false
}

// Victim implements Policy: first allowed way at distant RRPV, aging all
// allowed ways until one reaches distant. Ties break toward lower way.
func (r *RRIP) Victim(set []LineState, allowed func(int) bool) int {
	for {
		for i := range set {
			if allowed(i) && set[i].RRPV >= rrpvMax {
				return i
			}
		}
		aged := false
		for i := range set {
			if allowed(i) && set[i].RRPV < rrpvMax {
				set[i].RRPV++
				aged = true
			}
		}
		if !aged {
			panic("cache: Victim called with no allowed ways")
		}
	}
}
